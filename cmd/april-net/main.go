// Command april-net runs standalone network experiments (E8): average
// packet latency versus offered load on the k-ary n-cube under uniform
// random traffic — the latency behavior T(p) that the Section 8 model
// summarizes, and the bandwidth ceiling behind the paper's ~0.80
// utilization plateau.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"april/internal/network"
)

func main() {
	var (
		dim    = flag.Int("dim", 3, "network dimension n")
		radix  = flag.Int("radix", 4, "network radix k")
		size   = flag.Int("packet", 4, "packet size in flits (Table 4: 4)")
		cycles = flag.Int("cycles", 20000, "cycles per measurement")
		seed   = flag.Int64("seed", 1, "traffic seed")
	)
	flag.Parse()

	geo := network.Geometry{Dim: *dim, Radix: *radix}
	fmt.Printf("E8: %d-ary %d-cube (%d nodes), %d-flit packets, uniform random traffic\n",
		geo.Radix, geo.Dim, geo.Nodes(), *size)
	fmt.Printf("%12s  %12s  %12s\n", "offered", "avg latency", "max latency")
	fmt.Printf("%12s  %12s  %12s\n", "(msgs/node/cyc)", "(cycles)", "(cycles)")

	for _, load := range []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35} {
		avg, maxLat, err := measure(geo, *size, load, *cycles, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-net:", err)
			os.Exit(1)
		}
		fmt.Printf("%12.3f  %12.1f  %12d\n", load, avg, maxLat)
	}
	fmt.Println("\nLatency rises sharply near saturation — \"when available network")
	fmt.Println("bandwidth is used up, adding more processes will not improve")
	fmt.Println("processor utilization\" (Section 8).")
}

func measure(geo network.Geometry, size int, load float64, cycles int, seed int64) (float64, uint64, error) {
	tor, err := network.NewTorus(geo)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := geo.Nodes()
	var buf []*network.Message
	var pend []int
	for c := 0; c < cycles; c++ {
		for node := 0; node < n; node++ {
			if rng.Float64() < load {
				m := tor.Alloc()
				m.Src, m.Dst, m.Size = node, rng.Intn(n), size
				tor.Send(m)
			}
		}
		tor.Tick()
		pend = tor.PendingNodes(pend[:0])
		for _, node := range pend {
			buf = tor.Deliveries(node, buf[:0])
			tor.Recycle(buf)
		}
	}
	// Drain in-flight packets so the average includes queued ones.
	for i := 0; i < 200000 && tor.InFlight() > 0; i++ {
		tor.Tick()
		pend = tor.PendingNodes(pend[:0])
		for _, node := range pend {
			buf = tor.Deliveries(node, buf[:0])
			tor.Recycle(buf)
		}
	}
	s := tor.Stats()
	return s.AvgLatency(), s.MaxLatency, nil
}
