// Command april compiles and runs a Mul-T mini program on a simulated
// APRIL/ALEWIFE machine.
//
//	april [flags] program.mt        # or - for stdin
//
// Examples:
//
//	april -n 8 examples/progs/fib.mt
//	april -n 16 -lazy -machine april-custom prog.mt
//	april -n 8 -alewife -stats prog.mt
//	april -n 256 -alewife -shards 4 prog.mt
//	april -n 8 -alewife -trace trace.json -timeline util.csv prog.mt
//	april -n 64 -alewife -shards 2 -serve :8080 prog.mt
//	april -n 8 -alewife -faults -fault-seed 3 -check prog.mt
//	april -n 8 -alewife -check -autopsy prog.mt
//	april -interp prog.mt           # reference interpreter
//
// Checkpoint/restore and divergence bisection:
//
//	april -n 8 -alewife -checkpoint-every 100000 -checkpoint-dir ckpt prog.mt
//	april -restore ckpt/ckpt-000000400000.img       # resume a killed run
//	april -bisect ckpt                              # pin the first violating cycle
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"april"
)

func main() {
	var (
		nProcs           = flag.Int("n", 1, "number of processors")
		machine          = flag.String("machine", "april", "machine profile: april | april-custom | encore")
		lazy             = flag.Bool("lazy", false, "lazy task creation (instead of eager futures)")
		seq              = flag.Bool("seq", false, "strip futures (sequential 'T seq' compilation)")
		alewife          = flag.Bool("alewife", false, "simulate the full memory system (caches + directory + network)")
		stats            = flag.Bool("stats", false, "print execution statistics")
		interp           = flag.Bool("interp", false, "run the reference interpreter instead of the simulator")
		dis              = flag.Bool("S", false, "print the compiled assembly listing and exit")
		asm              = flag.Bool("asm", false, "treat the input as raw APRIL assembly instead of Mul-T")
		cycles           = flag.Uint64("max-cycles", 0, "simulation cycle budget (0 = default)")
		memMB            = flag.Int("mem", 0, "simulated physical memory in MiB (0 = default 256)")
		ref              = flag.Bool("reference", false, "run the simulator's oracle paths (per-cycle loop, switch interpreter); results are bit-identical, only slower")
		compile          = flag.Bool("compile", true, "enable the compiled execution tier (profile-guided basic-block superinstructions); results are bit-identical on or off, only host speed changes")
		compileThreshold = flag.Int("compile-threshold", 0, "block executions before translation (0 = default 8)")
		epoch            = flag.Bool("epoch", true, "enable epoch execution (multi-node lockstep windows across provably safe horizons); results are bit-identical on or off, only host speed changes")
		horizon          = flag.Uint64("horizon", 0, "cap epoch windows at this many simulated cycles (0 = unbounded, 1 = per-cycle stepping); results are bit-identical at any cap")
		shards           = flag.Int("shards", 1, "split the simulated machine across this many host goroutines; results are bit-identical at any shard count (<= 1 keeps the sequential loop)")
		serve            = flag.String("serve", "", "serve live run introspection on this host:port (e.g. :8080; /progress, /counters, /metrics, /timeline, /trace); observation-only")

		faults    = flag.Bool("faults", false, "arm seeded timing perturbations (requires -alewife): hop jitter, transient link stalls, delayed directory replies; answers are unaffected, cycle counts shift")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for -faults")
		check     = flag.Bool("check", false, "enable runtime invariant checkers (coherence, full/empty, scheduler conservation, message-pool ownership)")
		autopsy   = flag.Bool("autopsy", false, "on a crashed run (deadlock, livelock, cycle budget, invariant violation), print the full machine snapshot")

		traceOut    = flag.String("trace", "", "write the event trace as Chrome trace-event JSON (open in Perfetto) to this path")
		timelineOut = flag.String("timeline", "", "write the per-node utilization timeline to this path (CSV, or JSON rows with a .json extension)")
		countersOut = flag.String("counters", "", "write the unified end-of-run counter snapshot as JSON to this path")
		sample      = flag.Uint64("sample", 0, "timeline sampling interval in cycles (0 = default 4096)")
		traceCap    = flag.Int("trace-cap", 0, "per-node event ring capacity; the ring keeps the most recent events (0 = default 16384)")

		ckptEvery = flag.Uint64("checkpoint-every", 0, "write a restorable machine image every N simulated cycles (atomic write-rename into -checkpoint-dir)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory (default: current directory)")
		ckptKeep  = flag.Int("checkpoint-keep", 0, "retain the last K checkpoint images (0 = default 8)")
		restore   = flag.String("restore", "", "resume from a checkpoint image instead of compiling a program; machine-defining flags are ignored (the image is self-contained), host-side flags still apply")
		bisect    = flag.String("bisect", "", "bisect the checkpoint directory for the first invariant-violating cycle and print its autopsy")
		sabotage  = flag.Uint64("sabotage", 0, "deliberately corrupt scheduler state at this cycle (deterministic invariant violation; checkpoint/bisect test hook)")
		statsJSON = flag.Bool("stats-json", false, "print the simulated run statistics as one JSON object (host-side perf excluded; stable across tiers, shards, and restores)")
	)
	flag.Parse()

	if *bisect != "" {
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-bisect takes no program argument"))
		}
		res, err := april.Bisect(april.BisectOptions{Dir: *bisect, Log: os.Stderr})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("first violating cycle: %d\n", res.FirstBadCycle)
		fmt.Printf("clean through cycle:   %d\n", res.CleanCycle)
		fmt.Printf("replay from:           %s\n", res.Checkpoint)
		if res.Report != nil {
			fmt.Print(res.Report.Render())
		}
		return
	}

	var src string
	var err error
	if *restore != "" {
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-restore takes no program argument"))
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: april [flags] program.mt   (use - for stdin)")
			flag.Usage()
			os.Exit(2)
		}
		src, err = readSource(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	}

	if *interp {
		v, err := april.Interpret(src, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=> %s\n", v)
		return
	}

	opts := april.Options{
		Processors:  *nProcs,
		Machine:     april.MachineType(*machine),
		LazyFutures: *lazy,
		Sequential:  *seq,
		Output:      os.Stdout,
		MaxCycles:   *cycles,
		MemoryBytes: uint32(*memMB) << 20,
		Reference:   *ref,
		Shards:      *shards,

		DisableCompile:   !*compile,
		CompileThreshold: *compileThreshold,
		DisableEpoch:     !*epoch,
		Horizon:          *horizon,

		CheckpointEvery: *ckptEvery,
		CheckpointDir:   *ckptDir,
		CheckpointKeep:  *ckptKeep,
		SabotageCycle:   *sabotage,
	}
	if *alewife {
		opts.Alewife = &april.AlewifeOptions{}
	}
	opts.Check = *check
	if *faults {
		fc := april.DefaultFaultOptions(*faultSeed)
		opts.Faults = &fc
	}
	if *serve != "" {
		opts.Serve = *serve
		opts.ServeNotify = func(url string) {
			fmt.Fprintf(os.Stderr, "april: observatory listening on %s\n", url)
		}
	}

	var traceFiles []*os.File
	if *traceOut != "" || *timelineOut != "" || *countersOut != "" {
		topts := &april.TraceOptions{SampleInterval: *sample, Capacity: *traceCap}
		open := func(path string) *os.File {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			traceFiles = append(traceFiles, f)
			return f
		}
		if *traceOut != "" {
			topts.ChromeOut = open(*traceOut)
		}
		if *timelineOut != "" {
			topts.TimelineOut = open(*timelineOut)
			topts.TimelineJSON = strings.HasSuffix(*timelineOut, ".json")
		}
		if *countersOut != "" {
			topts.CountersOut = open(*countersOut)
		}
		opts.Trace = topts
	}

	if *dis {
		listing, err := april.Disassemble(src, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(listing)
		return
	}

	var res april.Result
	switch {
	case *restore != "":
		res, err = april.RestoreFile(*restore, opts)
	case *asm:
		res, err = april.RunAssembly(src, opts)
	default:
		res, err = april.Run(src, opts)
	}
	if err != nil {
		if *autopsy {
			if r, ok := april.Autopsy(err); ok {
				fmt.Fprint(os.Stderr, r.Render())
			}
		}
		fatal(err)
	}
	for _, f := range traceFiles {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("=> %s\n", res.Value)
	if *statsJSON {
		payload, err := json.Marshal(map[string]any{
			"value":              res.Value,
			"cycles":             res.Cycles,
			"instructions":       res.Instructions,
			"utilization":        res.Utilization,
			"context_switches":   res.ContextSwitches,
			"tasks_created":      res.TasksCreated,
			"steals":             res.Steals,
			"touches_resolved":   res.TouchesResolved,
			"touches_unresolved": res.TouchesUnresolved,
			"cache_miss_traps":   res.CacheMissTraps,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", payload)
	}
	if *stats {
		fmt.Printf("cycles:            %d\n", res.Cycles)
		fmt.Printf("instructions:      %d\n", res.Instructions)
		fmt.Printf("utilization:       %.3f\n", res.Utilization)
		fmt.Printf("context switches:  %d\n", res.ContextSwitches)
		fmt.Printf("tasks created:     %d\n", res.TasksCreated)
		fmt.Printf("lazy steals:       %d\n", res.Steals)
		fmt.Printf("touches resolved:  %d (unresolved: %d)\n", res.TouchesResolved, res.TouchesUnresolved)
		if opts.Alewife != nil {
			fmt.Printf("cache-miss traps:  %d\n", res.CacheMissTraps)
		}
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "april:", err)
	os.Exit(1)
}
