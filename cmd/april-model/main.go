// Command april-model evaluates the Section 8 analytical model of
// multithreaded processor utilization and its validation experiments:
//
//	april-model -fig5      # Figure 5 component curves
//	april-model -headline  # the paper's headline numbers
//	april-model -sweepC    # utilization vs context switch cost (§6.1)
//	april-model -validate  # measure m(p), T(p), U(p) on the simulator (E6)
package main

import (
	"flag"
	"fmt"
	"os"

	"april"
)

func main() {
	var (
		fig5     = flag.Bool("fig5", false, "print the Figure 5 component curves")
		headline = flag.Bool("headline", false, "print the Section 8 headline numbers")
		sweepC   = flag.Bool("sweepC", false, "sweep the context switch cost (Section 6.1 ablation)")
		validate = flag.Bool("validate", false, "validate the model's m(p)/T(p) assumptions by simulation (E6)")
		maxP     = flag.Int("p", 8, "maximum resident threads")
		workers  = flag.Int("workers", 0, "parallel host workers for -validate (0 = one per core)")

		switchCost = flag.Float64("C", 10, "context switch overhead in cycles")
		fixedMiss  = flag.Float64("miss", 0.02, "fixed miss rate per cycle")
		cacheKB    = flag.Int("cache", 64, "cache size in KB")
		dim        = flag.Int("dim", 3, "network dimension n")
		radix      = flag.Int("radix", 20, "network radix k")
	)
	flag.Parse()

	params := april.DefaultModelParams()
	params.SwitchCost = *switchCost
	params.FixedMiss = *fixedMiss
	params.CacheBytes = *cacheKB << 10
	params.Dim = *dim
	params.Radix = *radix

	ran := false
	if *headline || (!*fig5 && !*sweepC && !*validate) {
		ran = true
		printHeadline(params)
	}
	if *fig5 {
		ran = true
		fmt.Printf("\nFigure 5: processor utilization components (C=%.0f, %d nodes, base latency %.0f)\n\n",
			params.SwitchCost, params.Nodes(), params.BaseLatency())
		fmt.Print(april.FormatFigure5(april.Figure5(params, *maxP)))
	}
	if *sweepC {
		ran = true
		printSweepC(params, *maxP)
	}
	if *validate {
		ran = true
		if err := printValidation(*workers); err != nil {
			fmt.Fprintln(os.Stderr, "april-model:", err)
			os.Exit(1)
		}
	}
	_ = ran
}

func printHeadline(params april.ModelParams) {
	fmt.Printf("System: %d processors (%d-ary %d-cube), %d KB caches, C=%.0f cycles\n",
		params.Nodes(), params.Radix, params.Dim, params.CacheBytes>>10, params.SwitchCost)
	fmt.Printf("Average unloaded round-trip network latency: %.0f cycles (paper: 55)\n\n", params.BaseLatency())
	for _, p := range []float64{1, 2, 3, 4, 6, 8} {
		b := april.Utilization(params, p)
		sat := ""
		if b.Saturated {
			sat = " (saturated)"
		}
		fmt.Printf("p=%1.0f  U=%.3f  m=%.4f/cycle  T=%.1f cycles  channel load %.2f%s\n",
			p, b.Utilization, b.MissRate, b.Latency, b.ChannelLoad, sat)
	}
	u3 := april.Utilization(params, 3).Utilization
	fmt.Printf("\nHeadline: U(3) = %.1f%%  — paper: \"close to 80%% processor utilization\n"+
		"with as few as three resident threads per processor\".\n", 100*u3)
}

func printSweepC(params april.ModelParams, maxP int) {
	costs := []float64{1, 4, 10, 16, 64}
	curves := april.SweepSwitchCost(params, costs, maxP)
	fmt.Printf("\nUtilization vs context switch cost (SPARC APRIL: C=11; custom: C=4)\n\n   p")
	for _, c := range costs {
		fmt.Printf("   C=%-4.0f", c)
	}
	fmt.Println()
	for i := 0; i < maxP; i++ {
		fmt.Printf("%4d", i+1)
		for _, c := range costs {
			fmt.Printf("   %.3f ", curves[c][i].Utilization)
		}
		fmt.Println()
	}
}

func printValidation(workers int) error {
	cfg := april.DefaultValidationConfig()
	cfg.Workers = workers
	fmt.Printf("\nE6: measured m(p), T(p), U(p) on the cache+directory+network simulator\n")
	fmt.Printf("(%d nodes, %d KB caches, %d-block working sets)\n\n",
		cfg.Nodes, cfg.CacheBytes>>10, cfg.WorkingSetBlocks)
	points, err := april.ValidateModel(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Printf("%2s  %8s  %10s  %8s\n", "p", "U(p)", "m(p)/cyc", "T(p)")
	var ps, ms, ts []float64
	for _, pt := range points {
		fmt.Printf("%2d  %8.3f  %10.5f  %8.1f\n", pt.ThreadsPerNode, pt.Utilization, pt.MissPerCycle, pt.RemoteLatency)
		ps = append(ps, float64(pt.ThreadsPerNode))
		ms = append(ms, pt.MissPerCycle)
		ts = append(ts, pt.RemoteLatency)
	}
	a, b, r2 := april.LinearFit(ps, ms)
	fmt.Printf("\nm(p) ~ %.5f + %.5f*p   (R^2 = %.3f)\n", a, b, r2)
	a, b, r2 = april.LinearFit(ps, ts)
	fmt.Printf("T(p) ~ %.2f + %.2f*p     (R^2 = %.3f)\n", a, b, r2)
	fmt.Println("\nPaper: both terms are \"the sum of two components: one component")
	fmt.Println("independent of the number of threads p and the other linearly related to p\".")
	return nil
}
