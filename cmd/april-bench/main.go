// Command april-bench regenerates Table 3 of the paper: normalized
// execution times of fib, factor, queens and speech on the Encore
// Multimax baseline and on APRIL with normal and lazy task creation,
// at 1-16 processors.
//
// The grid's independent runs are fanned across host cores (-workers),
// and each machine can itself be sharded across goroutines (-shards;
// workers*shards is budgeted against GOMAXPROCS). -perf runs the whole
// grid three times — reference per-cycle loop on one worker, then
// fast-forward with and without the compiled tier on all workers —
// plus a 64-node ALEWIFE comparison and a shard-count sweep over
// 256/512/1024-node tori, and writes the throughput report to
// BENCH_simperf.json.
//
// -model-check cross-validates the Section 8 analytical model: it runs
// fib/queens on the full ALEWIFE memory system across the Figure 5
// processor range, measures the model's inputs (resident threads, miss
// rate, remote latency) from each run, and reports measured vs.
// predicted utilization with per-config errors.
//
// -fault-matrix runs the robustness grid instead: fib/queens on
// perfect and ALEWIFE memory at several machine sizes, each ALEWIFE
// cell repeated under seeded fault plans with the invariant checkers
// armed; any answer drift, invariant violation, or wedge fails the
// run.
//
// -cpuprofile and -memprofile write pprof profiles of whatever mode
// ran (see README.md, "Profiling the simulator").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"april"
)

// main delegates to run so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	var (
		sizes            = flag.String("sizes", "paper", "workload scale: paper | test")
		verbose          = flag.Bool("v", false, "log each measurement as it completes")
		frames           = flag.Bool("frames", false, "run the task-frame ablation (E9) instead of Table 3")
		workers          = flag.Int("workers", 0, "parallel host workers (0 = one per core)")
		shards           = flag.Int("shards", 1, "simulation shards per machine (sim.Config.Shards); results are bit-identical at any count; workers*shards is capped at GOMAXPROCS")
		naive            = flag.Bool("naive", false, "use the reference per-cycle loop and switch interpreter (no fast-forward, no predecode)")
		compile          = flag.Bool("compile", true, "enable the compiled execution tier (profile-guided basic-block superinstructions); results are bit-identical on or off")
		compileThreshold = flag.Int("compile-threshold", 0, "block executions before the compiled tier translates (0 = default 8)")
		epoch            = flag.Bool("epoch", true, "enable epoch execution (multi-node lockstep windows through the compiled tier); results are bit-identical on or off")
		horizon          = flag.Uint64("horizon", 0, "cap epoch windows at this many simulated cycles (0 = unbounded, 1 = per-cycle stepping); results are bit-identical at any cap")
		perf             = flag.Bool("perf", false, "measure simulator throughput and host allocator pressure (naive/serial vs fast/parallel, plus a 64-node ALEWIFE run) and write BENCH_simperf.json")
		perfOut          = flag.String("perf-out", "BENCH_simperf.json", "output path for -perf")

		statsJSON = flag.String("stats-json", "", "write every grid run's full statistics (totals, per-node, throughput) as JSON to this path")

		modelCheck = flag.Bool("model-check", false, "run the measured-vs-model utilization grid (fib/queens on the full ALEWIFE memory system across the Figure 5 processor range) and compare measured U(p) against the Section 8 analytical model; writes the report to -stats-json (default BENCH_modelcheck.json)")

		faultMatrix = flag.Bool("fault-matrix", false, "run the robustness fault matrix (fib/queens × perfect/alewife × machine sizes × seeded fault plans, invariant checkers armed) instead of Table 3; exit 1 on any failing cell")
		faultSeeds  = flag.Int("fault-seeds", 8, "seeded fault plans per ALEWIFE cell for -fault-matrix")

		traceOut    = flag.String("trace", "", "trace one representative run (see -trace-bench) instead of the grid; writes Chrome trace-event JSON to this path")
		timelineOut = flag.String("timeline", "", "like -trace but for the per-node utilization timeline (CSV, or JSON rows with a .json extension)")
		traceBench  = flag.String("trace-bench", "fib", "benchmark for the traced run: fib | factor | queens | speech")
		traceProcs  = flag.Int("trace-procs", 8, "processor count for the traced run")
		sample      = flag.Uint64("sample", 0, "timeline sampling interval in cycles (0 = default 4096)")
		serve       = flag.String("serve", "", "run one representative benchmark (see -trace-bench/-trace-procs/-shards) with the live introspection server on this host:port: /progress, /counters, /metrics, /timeline, /trace")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this path")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "april-bench:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "april-bench: heap profile:", err)
			}
			f.Close()
		}()
	}

	if *frames {
		cfg := april.DefaultFramesSweep()
		cfg.Workers = *workers
		pts, err := april.FramesSweep(cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Println("E9: utilization vs hardware task frames (fib on the full ALEWIFE memory system)")
		fmt.Println()
		fmt.Print(april.FormatFramesSweep(pts))
		return 0
	}

	var benchSizes april.Table3Sizes
	switch *sizes {
	case "paper":
		benchSizes = april.PaperSizes
	case "test":
		benchSizes = april.TestSizes
	default:
		fmt.Fprintf(os.Stderr, "april-bench: unknown -sizes %q\n", *sizes)
		return 2
	}

	if *modelCheck {
		mcfg := april.DefaultModelCheckConfig()
		mcfg.Sizes = benchSizes
		mcfg.Workers = *workers
		if *verbose {
			mcfg.Verbose = os.Stderr
		}
		rep, err := april.ModelCheck(mcfg)
		if err != nil {
			return fail(err)
		}
		rep.Sizes = *sizes
		out := *statsJSON
		if out == "" {
			out = "BENCH_modelcheck.json"
		}
		if err := os.WriteFile(out, rep.JSON(), 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("Measured vs. model utilization (-sizes %s; m, T, p measured per run; C = %d cycles):\n\n",
			*sizes, int(rep.Rows[0].SwitchCost))
		fmt.Print(april.FormatModelCheck(rep))
		fmt.Println("\nwritten to", out)
		return 0
	}

	if *faultMatrix {
		mcfg := april.DefaultFaultMatrixConfig()
		mcfg.Seeds = *faultSeeds
		mcfg.Sizes = benchSizes
		mcfg.Workers = *workers
		if *verbose {
			mcfg.Verbose = true
			mcfg.Out = os.Stderr
		}
		res, err := april.FaultMatrix(mcfg)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("Fault matrix (-sizes %s, %d seeds per ALEWIFE cell, invariant checkers on):\n\n", *sizes, mcfg.Seeds)
		fmt.Print(april.FormatFaultMatrix(res))
		if res.Failures > 0 {
			return fail(fmt.Errorf("%d failing cells", res.Failures))
		}
		return 0
	}

	cfg := april.DefaultTable3Config()
	cfg.Sizes = benchSizes
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg.Verbose = log
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.Naive = *naive
	cfg.NoCompile = !*compile
	cfg.CompileThreshold = *compileThreshold
	cfg.NoEpoch = !*epoch
	cfg.Horizon = *horizon

	if *traceOut != "" || *timelineOut != "" || *serve != "" {
		// Tracing (or serving) the whole grid would interleave hundreds
		// of machines; observe one representative run on the full ALEWIFE
		// memory system instead.
		if err := runTraced(cfg.Sizes, *traceBench, *traceProcs, *shards, *traceOut, *timelineOut, *serve, *sample); err != nil {
			return fail(err)
		}
		return 0
	}

	if *perf {
		rep, err := april.Table3Perf(cfg, *sizes)
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*perfOut, rep.JSON(), 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("Simulator throughput on the full Table 3 grid (-sizes %s):\n  %s\n", *sizes, rep.Summary())
		fmt.Printf("  baseline : %s\n  predecode: %s\n  compiled : %s\n", rep.Baseline, rep.Predecode, rep.Optimized)
		fmt.Println("written to", *perfOut)
		if !rep.RowsIdentical || (rep.Alewife != nil && !rep.Alewife.Identical) || !rep.ShardsIdentical() {
			return fail(fmt.Errorf("simulated results differ between loops"))
		}
		return 0
	}

	var gridPerf april.RunPerf
	cfg.Perf = &gridPerf
	var gridStats []april.RunStats
	if *statsJSON != "" {
		cfg.Stats = &gridStats
	}
	rows, err := april.Table3(cfg)
	if err != nil {
		return fail(err)
	}
	if *statsJSON != "" {
		b, err := json.MarshalIndent(gridStats, "", "  ")
		if err == nil {
			err = os.WriteFile(*statsJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "run statistics written to %s (%d runs)\n", *statsJSON, len(gridStats))
	}
	fmt.Println("Table 3: Execution time for Mul-T benchmarks, normalized to sequential T")
	fmt.Println("(paper reference: fib 28.9/14.2/1.5 at 1p for Encore/APRIL/Apr-lazy;")
	fmt.Println(" Mul-T seq overhead ~1.4-2.0x on Encore, ~1.0 on APRIL)")
	fmt.Println()
	fmt.Print(april.FormatTable3(rows, cfg.AprilProcs))
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid throughput: %s\n", gridPerf)
	}
	return 0
}

// runTraced executes one benchmark with the observability subsystem
// enabled: file outputs for -trace/-timeline and, when serve is
// non-empty, the live introspection server for the duration of the
// run.
func runTraced(sizes april.Table3Sizes, benchName string, procs, shards int, traceOut, timelineOut, serve string, sample uint64) error {
	switch benchName {
	case "fib", "factor", "queens", "speech":
	default:
		return fmt.Errorf("unknown -trace-bench %q", benchName)
	}
	src := april.BenchmarkSource(benchName, sizes)
	topts := &april.TraceOptions{SampleInterval: sample}
	var files []*os.File
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	var err error
	if traceOut != "" {
		if topts.ChromeOut, err = open(traceOut); err != nil {
			return err
		}
	}
	if timelineOut != "" {
		if topts.TimelineOut, err = open(timelineOut); err != nil {
			return err
		}
		topts.TimelineJSON = strings.HasSuffix(timelineOut, ".json")
	}
	opts := april.Options{
		Processors: procs,
		Machine:    april.APRIL,
		Alewife:    &april.AlewifeOptions{},
		Output:     io.Discard,
		Trace:      topts,
		Shards:     shards,
	}
	if serve != "" {
		opts.Serve = serve
		opts.ServeNotify = func(url string) {
			fmt.Fprintf(os.Stderr, "april-bench: observatory listening on %s\n", url)
		}
	}
	res, err := april.Run(src, opts)
	if err != nil {
		return err
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("traced %s on %d ALEWIFE processors: %s in %d cycles (utilization %.3f)\n",
		benchName, procs, res.Value, res.Cycles, res.Utilization)
	if traceOut != "" {
		fmt.Printf("event trace written to %s (open in Perfetto: https://ui.perfetto.dev)\n", traceOut)
	}
	if timelineOut != "" {
		fmt.Printf("utilization timeline written to %s\n", timelineOut)
	}
	return nil
}
