// Command april-bench regenerates Table 3 of the paper: normalized
// execution times of fib, factor, queens and speech on the Encore
// Multimax baseline and on APRIL with normal and lazy task creation,
// at 1-16 processors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"april"
)

func main() {
	var (
		sizes   = flag.String("sizes", "paper", "workload scale: paper | test")
		verbose = flag.Bool("v", false, "log each measurement as it completes")
		frames  = flag.Bool("frames", false, "run the task-frame ablation (E9) instead of Table 3")
	)
	flag.Parse()

	if *frames {
		pts, err := april.FramesSweep(april.DefaultFramesSweep())
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Println("E9: utilization vs hardware task frames (fib on the full ALEWIFE memory system)")
		fmt.Println()
		fmt.Print(april.FormatFramesSweep(pts))
		return
	}

	cfg := april.DefaultTable3Config()
	switch *sizes {
	case "paper":
		cfg.Sizes = april.PaperSizes
	case "test":
		cfg.Sizes = april.TestSizes
	default:
		fmt.Fprintf(os.Stderr, "april-bench: unknown -sizes %q\n", *sizes)
		os.Exit(2)
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg.Verbose = log

	rows, err := april.Table3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "april-bench:", err)
		os.Exit(1)
	}
	fmt.Println("Table 3: Execution time for Mul-T benchmarks, normalized to sequential T")
	fmt.Println("(paper reference: fib 28.9/14.2/1.5 at 1p for Encore/APRIL/Apr-lazy;")
	fmt.Println(" Mul-T seq overhead ~1.4-2.0x on Encore, ~1.0 on APRIL)")
	fmt.Println()
	fmt.Print(april.FormatTable3(rows, cfg.AprilProcs))
}
