// Command april-bench regenerates Table 3 of the paper: normalized
// execution times of fib, factor, queens and speech on the Encore
// Multimax baseline and on APRIL with normal and lazy task creation,
// at 1-16 processors.
//
// The grid's independent runs are fanned across host cores (-workers);
// -perf runs the whole grid twice — reference per-cycle loop on one
// worker vs. fast-forward on all workers — and writes the throughput
// comparison to BENCH_simperf.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"april"
)

func main() {
	var (
		sizes   = flag.String("sizes", "paper", "workload scale: paper | test")
		verbose = flag.Bool("v", false, "log each measurement as it completes")
		frames  = flag.Bool("frames", false, "run the task-frame ablation (E9) instead of Table 3")
		workers = flag.Int("workers", 0, "parallel host workers (0 = one per core)")
		naive   = flag.Bool("naive", false, "use the reference per-cycle loop (no fast-forward)")
		perf    = flag.Bool("perf", false, "measure simulator throughput (naive/serial vs fast/parallel) and write BENCH_simperf.json")
		perfOut = flag.String("perf-out", "BENCH_simperf.json", "output path for -perf")
	)
	flag.Parse()

	if *frames {
		cfg := april.DefaultFramesSweep()
		cfg.Workers = *workers
		pts, err := april.FramesSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Println("E9: utilization vs hardware task frames (fib on the full ALEWIFE memory system)")
		fmt.Println()
		fmt.Print(april.FormatFramesSweep(pts))
		return
	}

	cfg := april.DefaultTable3Config()
	switch *sizes {
	case "paper":
		cfg.Sizes = april.PaperSizes
	case "test":
		cfg.Sizes = april.TestSizes
	default:
		fmt.Fprintf(os.Stderr, "april-bench: unknown -sizes %q\n", *sizes)
		os.Exit(2)
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg.Verbose = log
	cfg.Workers = *workers
	cfg.Naive = *naive

	if *perf {
		rep, err := april.Table3Perf(cfg, *sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*perfOut, rep.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("Simulator throughput on the full Table 3 grid (-sizes %s):\n  %s\n", *sizes, rep.Summary())
		fmt.Printf("  baseline : %s\n  optimized: %s\n", rep.Baseline, rep.Optimized)
		fmt.Println("written to", *perfOut)
		if !rep.RowsIdentical {
			fmt.Fprintln(os.Stderr, "april-bench: simulated results differ between loops")
			os.Exit(1)
		}
		return
	}

	var gridPerf april.RunPerf
	cfg.Perf = &gridPerf
	rows, err := april.Table3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "april-bench:", err)
		os.Exit(1)
	}
	fmt.Println("Table 3: Execution time for Mul-T benchmarks, normalized to sequential T")
	fmt.Println("(paper reference: fib 28.9/14.2/1.5 at 1p for Encore/APRIL/Apr-lazy;")
	fmt.Println(" Mul-T seq overhead ~1.4-2.0x on Encore, ~1.0 on APRIL)")
	fmt.Println()
	fmt.Print(april.FormatTable3(rows, cfg.AprilProcs))
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid throughput: %s\n", gridPerf)
	}
}
