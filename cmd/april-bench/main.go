// Command april-bench regenerates Table 3 of the paper: normalized
// execution times of fib, factor, queens and speech on the Encore
// Multimax baseline and on APRIL with normal and lazy task creation,
// at 1-16 processors.
//
// The grid's independent runs are fanned across host cores (-workers);
// -perf runs the whole grid twice — reference per-cycle loop on one
// worker vs. fast-forward on all workers — and writes the throughput
// comparison to BENCH_simperf.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"april"
)

func main() {
	var (
		sizes   = flag.String("sizes", "paper", "workload scale: paper | test")
		verbose = flag.Bool("v", false, "log each measurement as it completes")
		frames  = flag.Bool("frames", false, "run the task-frame ablation (E9) instead of Table 3")
		workers = flag.Int("workers", 0, "parallel host workers (0 = one per core)")
		naive   = flag.Bool("naive", false, "use the reference per-cycle loop (no fast-forward)")
		perf    = flag.Bool("perf", false, "measure simulator throughput (naive/serial vs fast/parallel) and write BENCH_simperf.json")
		perfOut = flag.String("perf-out", "BENCH_simperf.json", "output path for -perf")

		statsJSON = flag.String("stats-json", "", "write every grid run's full statistics (totals, per-node, throughput) as JSON to this path")

		traceOut    = flag.String("trace", "", "trace one representative run (see -trace-bench) instead of the grid; writes Chrome trace-event JSON to this path")
		timelineOut = flag.String("timeline", "", "like -trace but for the per-node utilization timeline (CSV, or JSON rows with a .json extension)")
		traceBench  = flag.String("trace-bench", "fib", "benchmark for the traced run: fib | factor | queens | speech")
		traceProcs  = flag.Int("trace-procs", 8, "processor count for the traced run")
		sample      = flag.Uint64("sample", 0, "timeline sampling interval in cycles (0 = default 4096)")
	)
	flag.Parse()

	if *frames {
		cfg := april.DefaultFramesSweep()
		cfg.Workers = *workers
		pts, err := april.FramesSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Println("E9: utilization vs hardware task frames (fib on the full ALEWIFE memory system)")
		fmt.Println()
		fmt.Print(april.FormatFramesSweep(pts))
		return
	}

	cfg := april.DefaultTable3Config()
	switch *sizes {
	case "paper":
		cfg.Sizes = april.PaperSizes
	case "test":
		cfg.Sizes = april.TestSizes
	default:
		fmt.Fprintf(os.Stderr, "april-bench: unknown -sizes %q\n", *sizes)
		os.Exit(2)
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg.Verbose = log
	cfg.Workers = *workers
	cfg.Naive = *naive

	if *traceOut != "" || *timelineOut != "" {
		// Tracing the whole grid would interleave hundreds of machines;
		// trace one representative run on the full ALEWIFE memory system
		// instead.
		runTraced(cfg.Sizes, *traceBench, *traceProcs, *traceOut, *timelineOut, *sample)
		return
	}

	if *perf {
		rep, err := april.Table3Perf(cfg, *sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*perfOut, rep.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("Simulator throughput on the full Table 3 grid (-sizes %s):\n  %s\n", *sizes, rep.Summary())
		fmt.Printf("  baseline : %s\n  optimized: %s\n", rep.Baseline, rep.Optimized)
		fmt.Println("written to", *perfOut)
		if !rep.RowsIdentical {
			fmt.Fprintln(os.Stderr, "april-bench: simulated results differ between loops")
			os.Exit(1)
		}
		return
	}

	var gridPerf april.RunPerf
	cfg.Perf = &gridPerf
	var gridStats []april.RunStats
	if *statsJSON != "" {
		cfg.Stats = &gridStats
	}
	rows, err := april.Table3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "april-bench:", err)
		os.Exit(1)
	}
	if *statsJSON != "" {
		b, err := json.MarshalIndent(gridStats, "", "  ")
		if err == nil {
			err = os.WriteFile(*statsJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run statistics written to %s (%d runs)\n", *statsJSON, len(gridStats))
	}
	fmt.Println("Table 3: Execution time for Mul-T benchmarks, normalized to sequential T")
	fmt.Println("(paper reference: fib 28.9/14.2/1.5 at 1p for Encore/APRIL/Apr-lazy;")
	fmt.Println(" Mul-T seq overhead ~1.4-2.0x on Encore, ~1.0 on APRIL)")
	fmt.Println()
	fmt.Print(april.FormatTable3(rows, cfg.AprilProcs))
	if *verbose {
		fmt.Fprintf(os.Stderr, "grid throughput: %s\n", gridPerf)
	}
}

// runTraced executes one benchmark with tracing enabled and writes the
// requested observability outputs.
func runTraced(sizes april.Table3Sizes, benchName string, procs int, traceOut, timelineOut string, sample uint64) {
	switch benchName {
	case "fib", "factor", "queens", "speech":
	default:
		fmt.Fprintf(os.Stderr, "april-bench: unknown -trace-bench %q\n", benchName)
		os.Exit(2)
	}
	src := april.BenchmarkSource(benchName, sizes)
	topts := &april.TraceOptions{SampleInterval: sample}
	var files []*os.File
	open := func(path string) *os.File {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
		files = append(files, f)
		return f
	}
	if traceOut != "" {
		topts.ChromeOut = open(traceOut)
	}
	if timelineOut != "" {
		topts.TimelineOut = open(timelineOut)
		topts.TimelineJSON = strings.HasSuffix(timelineOut, ".json")
	}
	res, err := april.Run(src, april.Options{
		Processors: procs,
		Machine:    april.APRIL,
		Alewife:    &april.AlewifeOptions{},
		Output:     io.Discard,
		Trace:      topts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "april-bench:", err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "april-bench:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("traced %s on %d ALEWIFE processors: %s in %d cycles (utilization %.3f)\n",
		benchName, procs, res.Value, res.Cycles, res.Utilization)
	if traceOut != "" {
		fmt.Printf("event trace written to %s (open in Perfetto: https://ui.perfetto.dev)\n", traceOut)
	}
	if timelineOut != "" {
		fmt.Printf("utilization timeline written to %s\n", timelineOut)
	}
}
