package mult

import (
	"strings"
	"testing"
)

func TestReaderBasics(t *testing.T) {
	forms, err := ReadAll(`(a 1 -2 #t #f "str" (nested ()))  ; comment
	'quoted`)
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 2 {
		t.Fatalf("forms: %d", len(forms))
	}
	got := FormatSexp(forms[0])
	if got != `(a 1 -2 #t #f "str" (nested ()))` {
		t.Errorf("reread: %s", got)
	}
	if FormatSexp(forms[1]) != "(quote quoted)" {
		t.Errorf("quote sugar: %s", FormatSexp(forms[1]))
	}
}

func TestReaderBrackets(t *testing.T) {
	forms, err := ReadAll(`(let ([x 1] [y 2]) x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 1 {
		t.Fatal("bracket form lost")
	}
	if _, err := ReadAll(`(a [b)`); err == nil {
		t.Error("mismatched brackets accepted")
	}
}

func TestReaderStringEscapes(t *testing.T) {
	forms, err := ReadAll(`"a\nb\t\"q\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if forms[0].(string) != "a\nb\t\"q\"\\" {
		t.Errorf("escapes: %q", forms[0])
	}
	for _, bad := range []string{`"unterminated`, `"bad \x escape"`, "\"newline\nin string\""} {
		if _, err := ReadAll(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		"(unclosed",
		")",
		"(a . b)",     // no dotted pairs: '.' reads as a symbol, fine — skip
		"1073741824",  // fixnum overflow (2^30)
		"-1073741825", // fixnum underflow
		"#q",          // unknown hash
		"'",           // quote with nothing
	}
	for _, src := range bad {
		if src == "(a . b)" {
			continue
		}
		if _, err := ReadAll(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Line numbers in errors.
	_, err := ReadAll("(ok)\n(broken")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`(if)`,
		`(if 1 2 3 4)`,
		`(lambda x x)`, // rest args unsupported
		`(lambda (x x) x)`,
		`(set! 3 4)`,
		`(let ((x)) x)`,
		`(let loop 3)`,
		`(letrec ((f 3)) f)`, // non-lambda letrec init
		`(cond)`,
		`(cond (else 1) (#t 2))`, // else not last
		`(future 1 2)`,
		`(touch)`,
		`(begin)`,
		`(define x 1)(define x 2)`,
		`(f (define y 1))`, // define not at top level
		`()`,
		`(quote)`,
		`(set! if 3)`,
		`(lambda (if) 1)`,
	}
	for _, src := range bad {
		forms, err := ReadAll(src)
		if err != nil {
			continue // reader rejected: also fine
		}
		p, err := Parse(forms)
		if err != nil {
			continue
		}
		if _, err := Resolve(p, Mode{HardwareFutures: true}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	bad := []string{
		`(undefined-var)`,
		`(+ 1 2 3)`,                // arity of builtin
		`car`,                      // builtin as value
		`(define (f a b) a) (f 1)`, // known-call arity
	}
	for _, src := range bad {
		forms, err := ReadAll(src)
		if err != nil {
			t.Fatalf("read %q: %v", src, err)
		}
		p, err := Parse(forms)
		if err != nil {
			continue
		}
		if _, err := Resolve(p, Mode{HardwareFutures: true}); err == nil {
			t.Errorf("resolved %q", src)
		}
	}
}

func TestStripFutures(t *testing.T) {
	forms, err := ReadAll(`(define (f n) (+ (future (f n)) (touch n))) (f 1)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(forms)
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripFutures(p.Defs[0].Value)
	var found bool
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Future, *Touch:
			found = true
		case *Lambda:
			walk(v.Body)
		case *Call:
			walk(v.Fn)
			for _, a := range v.Args {
				walk(a)
			}
		case *If:
			walk(v.Cond)
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *Begin:
			for _, b := range v.Body {
				walk(b)
			}
		}
	}
	walk(stripped)
	if found {
		t.Error("StripFutures left future/touch nodes")
	}
}

func TestResolveCaptures(t *testing.T) {
	forms, _ := ReadAll(`
(define (outer a)
  (lambda (b)
    (lambda (c) (+ a (+ b c)))))
(outer 1)`)
	p, err := Parse(forms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(p, Mode{HardwareFutures: true}); err != nil {
		t.Fatal(err)
	}
	// outer's lambda captures a; the innermost captures a (through the
	// middle) and b.
	var inner *Lambda
	for _, lam := range p.Lambdas {
		if len(lam.Params) == 1 && lam.Params[0] == "c" {
			inner = lam
		}
	}
	if inner == nil {
		t.Fatal("inner lambda not found")
	}
	if len(inner.Free) != 2 {
		t.Fatalf("inner free vars: %d, want 2 (a, b)", len(inner.Free))
	}
	for _, fb := range inner.Free {
		if fb.Outer == nil {
			t.Errorf("capture %s lacks outer chain", fb.Name)
		}
	}
}

func TestResolveBoxing(t *testing.T) {
	forms, _ := ReadAll(`
(define (counter)
  (let ((n 0))
    (lambda () (set! n (+ n 1)) n)))
(counter)`)
	p, err := Parse(forms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(p, Mode{HardwareFutures: true}); err != nil {
		t.Fatal(err)
	}
	boxed := 0
	for _, lam := range p.Lambdas {
		for _, fb := range lam.Free {
			if fb.Boxed {
				boxed++
			}
		}
	}
	if boxed == 0 {
		t.Error("mutated captured variable not boxed")
	}
}

func TestModeSpecificFutureResolution(t *testing.T) {
	src := `(future (+ 1 2))`
	build := func(mode Mode) *Program {
		forms, _ := ReadAll(src)
		p, err := Parse(forms)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Resolve(p, mode); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Eager: the future body becomes a thunk lambda.
	eager := build(Mode{HardwareFutures: true})
	foundThunk := false
	for _, lam := range eager.Lambdas {
		if lam.Name == "future-thunk" {
			foundThunk = true
		}
	}
	if !foundThunk {
		t.Error("eager mode did not create a thunk")
	}
	// Lazy: no thunk lambda.
	lazy := build(Mode{HardwareFutures: true, LazyFutures: true})
	for _, lam := range lazy.Lambdas {
		if lam.Name == "future-thunk" {
			t.Error("lazy mode created a thunk")
		}
	}
	// Sequential: no Future nodes at all (checked via compile running
	// in the differential suite).
	_ = build(Mode{HardwareFutures: true, Sequential: true})
}
