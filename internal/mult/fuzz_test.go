package mult_test

import (
	"fmt"
	"math/rand"
	"testing"

	"april/internal/mult"
	"april/internal/rts"
)

// Random-program differential testing: generate well-typed Mul-T
// expressions, evaluate them with the reference interpreter, and check
// the compiled result matches under several machine configurations.
// Programs are generated from a grammar of integer-valued expressions
// over a small environment of integer variables, so every generated
// program is closed and deterministic.

type progGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *progGen) intExpr(depth int) string {
	if depth <= 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return g.vars[g.rng.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(2001)-1000)
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		return fmt.Sprintf("(+ %s %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(- %s %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		return fmt.Sprintf("(* %s %s)", g.intExpr(depth-1), g.intExpr(g.rng.Intn(2)))
	case 4:
		// Keep divisors nonzero.
		return fmt.Sprintf("(quotient %s %d)", g.intExpr(depth-1), 1+g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("(remainder %s %d)", g.intExpr(depth-1), 1+g.rng.Intn(9))
	case 6:
		return fmt.Sprintf("(if %s %s %s)", g.boolExpr(depth-1), g.intExpr(depth-1), g.intExpr(depth-1))
	case 7:
		// let with a fresh variable.
		name := fmt.Sprintf("v%d", len(g.vars))
		g.vars = append(g.vars, name)
		body := g.intExpr(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		return fmt.Sprintf("(let ((%s %s)) %s)", name, g.intExpr(depth-1), body)
	case 8:
		return fmt.Sprintf("(future %s)", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(min %s (max %s %s))",
			g.intExpr(depth-1), g.intExpr(depth-1), g.intExpr(g.rng.Intn(2)))
	}
}

func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return "#t"
		}
		return "#f"
	}
	ops := []string{"<", ">", "=", "<=", ">="}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", ops[g.rng.Intn(len(ops))], g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(not %s)", g.boolExpr(depth-1))
	case 2:
		return fmt.Sprintf("(and %s %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(or %s %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	}
}

func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		g := &progGen{rng: rng}
		// The strict addition forces any (possibly nested) future the
		// expression returns, so the final value is never an
		// unresolved placeholder.
		src := fmt.Sprintf("(+ %s 0)", g.intExpr(3+rng.Intn(3)))

		want := runInterp(t, src)
		// A rotating subset of configurations keeps runtime bounded.
		cfgs := []modeCase{
			{"seq", mult.Mode{HardwareFutures: true, Sequential: true}, rts.APRIL, false, 1},
			{"eager2", mult.Mode{HardwareFutures: true}, rts.APRIL, false, 2},
			{"lazy3", mult.Mode{HardwareFutures: true, LazyFutures: true}, rts.APRIL, true, 3},
			{"encore", mult.Mode{HardwareFutures: false}, rts.Encore, false, 1},
		}
		mc := cfgs[i%len(cfgs)]
		got, _ := runCompiled(t, src, mc.mode, mc.prof, mc.lazy, mc.nodes)
		if got != want {
			t.Fatalf("program %d under %s diverged\nsource: %s\n got: %q\nwant: %q",
				i, mc.name, src, got, want)
		}
	}
}

// TestDifferentialFuzzListPrograms exercises list/vector structure:
// build a vector from generated expressions, map over it, and print.
func TestDifferentialFuzzStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 12
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		g := &progGen{rng: rng}
		var items []string
		for k := 0; k < 3+rng.Intn(3); k++ {
			items = append(items, fmt.Sprintf("(future %s)", g.intExpr(2)))
		}
		// Printing a structure holding UNRESOLVED futures legitimately
		// shows placeholders (printing does not touch), so force every
		// element before comparing against the sequential oracle.
		src := fmt.Sprintf(`
(define (build) %s)
(define (force-list l)
  (if (null? l) '() (cons (touch (car l)) (force-list (cdr l)))))
(define l (force-list (build)))
(print l)
(print (reverse l))
(print (length l))
(print (map (lambda (x) (* 2 x)) l))
(car l)`,
			buildList(items))

		want := runInterp(t, src)
		mode := mult.Mode{HardwareFutures: true, LazyFutures: i%2 == 1}
		got, _ := runCompiled(t, src, mode, rts.APRIL, i%2 == 1, 1+i%4)
		if got != want {
			t.Fatalf("structured program %d diverged\nsource: %s\n got: %q\nwant: %q", i, src, got, want)
		}
	}
}

func buildList(items []string) string {
	out := "'()"
	for i := len(items) - 1; i >= 0; i-- {
		out = fmt.Sprintf("(cons %s %s)", items[i], out)
	}
	return out
}
