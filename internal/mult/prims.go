package mult

import (
	"fmt"

	"april/internal/abi"
	"april/internal/isa"
)

// boolFromCond materializes #t/#f in regAcc from the current condition
// codes: op is the branch taken when the answer is true.
func (f *fnCtx) boolFromCond(op isa.Opcode) {
	a := &f.c.asm
	lTrue := a.newLabel()
	lEnd := a.newLabel()
	a.branch(op, lTrue)
	a.emit(isa.MovI(regAcc, isa.False))
	a.branch(isa.OpBa, lEnd)
	a.bind(lTrue)
	a.emit(isa.MovI(regAcc, isa.True))
	a.bind(lEnd)
}

// touchRaw forces the tagged value in reg before a non-strict
// shift/mul/div sequence: one strict no-op on APRIL (the Encore path
// already emitted its software check in binaryOperands).
func (f *fnCtx) touchRaw(reg uint8) {
	if f.c.mode.HardwareFutures {
		f.c.asm.emit(isa.R3(isa.OpOr, reg, reg, isa.RZero))
	}
}

// binaryRegs compiles two operands into registers (no immediate path).
func (f *fnCtx) binaryRegs(x, y Expr) (ra, rb uint8, err error) {
	ra, rb, imm, useImm, err := f.binaryOperands(x, y)
	if err != nil {
		return 0, 0, err
	}
	if useImm {
		f.c.asm.emit(isa.MovI(regT1, isa.Word(imm)))
		return ra, regT1, nil
	}
	return ra, rb, nil
}

// ternaryOperands compiles three operands left to right, yielding the
// first two in regT1/regT2 and the third in regAcc.
func (f *fnCtx) ternaryOperands(x, y, z Expr) error {
	a := &f.c.asm
	var sx, sy = -1, -1
	if !isSimple(x) {
		if err := f.expr(x, false); err != nil {
			return err
		}
		sx = f.newSlot()
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(sx), regAcc))
	}
	if !isSimple(y) {
		if err := f.expr(y, false); err != nil {
			return err
		}
		sy = f.newSlot()
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(sy), regAcc))
	}
	if err := f.expr(z, false); err != nil {
		return err
	}
	if sx >= 0 {
		a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(sx)))
	} else if err := f.loadSimple(x, regT1); err != nil {
		return err
	}
	if sy >= 0 {
		a.emit(isa.Ld(isa.OpLdnt, regT2, isa.RFP, slotOff(sy)))
	} else if err := f.loadSimple(y, regT2); err != nil {
		return err
	}
	f.emitCheck(regT1)
	f.emitCheck(regT2)
	return nil
}

// vecEA returns the instruction pieces for addressing a vector slot:
// the element offset relative to the tagged pointer.
const vecElemDisp = int32(abi.VecElemOff) - int32(isa.OtherTag)

func (f *fnCtx) prim(v *Prim) error {
	a := &f.c.asm
	emitBin := func(op isa.Opcode) error {
		ra, rb, imm, useImm, err := f.binaryOperands(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		if useImm {
			a.emit(isa.RI(op, regAcc, ra, imm))
		} else {
			a.emit(isa.R3(op, regAcc, ra, rb))
		}
		return nil
	}
	emitCmp := func(trueBr isa.Opcode) error {
		ra, rb, imm, useImm, err := f.binaryOperands(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		if useImm {
			a.emit(isa.RI(isa.OpSubCC, isa.RZero, ra, imm))
		} else {
			a.emit(isa.R3(isa.OpSubCC, isa.RZero, ra, rb))
		}
		f.boolFromCond(trueBr)
		return nil
	}
	touchUnary := func() error {
		if err := f.expr(v.Args[0], false); err != nil {
			return err
		}
		f.emitTouch(regAcc)
		return nil
	}

	switch v.Name {
	case "+":
		return emitBin(isa.OpAdd)
	case "-":
		return emitBin(isa.OpSub)
	case "bit-and":
		return emitBin(isa.OpAnd)
	case "bit-or":
		return emitBin(isa.OpOr)
	case "bit-xor":
		return emitBin(isa.OpXor)

	case "*":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		a.emit(isa.RI(isa.OpSra, regT3, ra, 2)) // untag one factor
		a.emit(isa.R3(isa.OpMul, regAcc, regT3, rb))
		return nil

	case "quotient":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		a.emit(isa.R3(isa.OpDiv, regAcc, ra, rb)) // (4a)/(4b) = a/b
		a.emit(isa.RI(isa.OpSll, regAcc, regAcc, 2))
		return nil

	case "remainder":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		a.emit(isa.R3(isa.OpMod, regAcc, ra, rb)) // (4a)%(4b) = 4(a%b)
		return nil

	case "modulo":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		done := a.newLabel()
		a.emit(isa.R3(isa.OpMod, regAcc, ra, rb))
		a.emit(isa.R3(isa.OpOrCC, regT3, regAcc, isa.RZero)) // Z from remainder
		a.branch(isa.OpBe, done)
		a.emit(isa.R3(isa.OpXorCC, regT3, regAcc, rb)) // N iff signs differ
		a.branch(isa.OpBge, done)
		a.emit(isa.R3(isa.OpAdd, regAcc, regAcc, rb))
		a.bind(done)
		return nil

	case "shift-left":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		a.emit(isa.RI(isa.OpSra, regT3, rb, 2))
		a.emit(isa.R3(isa.OpSll, regAcc, ra, regT3))
		return nil

	case "shift-right":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		f.touchRaw(ra)
		f.touchRaw(rb)
		a.emit(isa.RI(isa.OpSra, regT3, rb, 2))
		a.emit(isa.R3(isa.OpSra, regAcc, ra, regT3))
		a.emit(isa.RI(isa.OpRawAnd, regAcc, regAcc, -4)) // clear tag bits
		return nil

	case "=":
		return emitCmp(isa.OpBe)
	case "<":
		return emitCmp(isa.OpBl)
	case ">":
		return emitCmp(isa.OpBg)
	case "<=":
		return emitCmp(isa.OpBle)
	case ">=":
		return emitCmp(isa.OpBge)
	case "eq?":
		return emitCmp(isa.OpBe)

	case "zero?":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, 0))
		f.boolFromCond(isa.OpBe)
		return nil

	case "not":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, int32(isa.False)))
		f.boolFromCond(isa.OpBe)
		return nil

	case "null?":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, int32(isa.Nil)))
		f.boolFromCond(isa.OpBe)
		return nil

	case "pair?":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpTagCmp, isa.RZero, regAcc, int32(isa.ConsTag)))
		f.boolFromCond(isa.OpBe)
		return nil

	case "fixnum?":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpTagCmp, isa.RZero, regAcc, int32(isa.FixnumTag)))
		f.boolFromCond(isa.OpBe)
		return nil

	case "future?":
		// The one predicate that must NOT touch.
		if err := f.expr(v.Args[0], false); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpTagCmp, isa.RZero, regAcc, int32(isa.FutureTag)))
		f.boolFromCond(isa.OpBe)
		return nil

	case "procedure?":
		if err := touchUnary(); err != nil {
			return err
		}
		lFalse := a.newLabel()
		lEnd := a.newLabel()
		a.emit(isa.RI(isa.OpTagCmp, isa.RZero, regAcc, int32(isa.OtherTag)))
		a.branch(isa.OpBne, lFalse)
		a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, int32(isa.HeapBase)))
		a.branch(isa.OpBcs, lFalse) // below the heap: an immediate
		a.emit(isa.Ld(isa.OpLdnt, regT1, regAcc, -int32(isa.OtherTag)))
		a.emit(isa.RI(isa.OpRawAnd, regT1, regT1, abi.HeaderKindMask))
		a.emit(isa.RI(isa.OpSubCC, isa.RZero, regT1, abi.KindClosure))
		a.branch(isa.OpBne, lFalse)
		a.emit(isa.MovI(regAcc, isa.True))
		a.branch(isa.OpBa, lEnd)
		a.bind(lFalse)
		a.emit(isa.MovI(regAcc, isa.False))
		a.bind(lEnd)
		return nil

	case "cons":
		var carSlot = -1
		if !isSimple(v.Args[0]) {
			if err := f.expr(v.Args[0], false); err != nil {
				return err
			}
			carSlot = f.newSlot()
			a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(carSlot), regAcc))
		}
		if err := f.expr(v.Args[1], false); err != nil {
			return err
		}
		f.emitAllocFixed(abi.ConsBytes)
		if carSlot >= 0 {
			a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(carSlot)))
		} else if err := f.loadSimple(v.Args[0], regT1); err != nil {
			return err
		}
		a.emit(isa.St(isa.OpStnt, regT2, abi.ConsCarOff, regT1))
		a.emit(isa.St(isa.OpStnt, regT2, abi.ConsCdrOff, regAcc))
		a.emit(isa.RI(isa.OpRawAdd, regAcc, regT2, int32(isa.ConsTag)))
		return nil

	case "car", "cdr":
		if err := f.expr(v.Args[0], false); err != nil {
			return err
		}
		f.emitCheck(regAcc) // software mode; hardware traps on the address
		off := int32(abi.ConsCarOff) - int32(isa.ConsTag)
		if v.Name == "cdr" {
			off = int32(abi.ConsCdrOff) - int32(isa.ConsTag)
		}
		a.emit(isa.Ld(isa.OpLdnt, regAcc, regAcc, off))
		return nil

	case "set-car!", "set-cdr!":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		off := int32(abi.ConsCarOff) - int32(isa.ConsTag)
		if v.Name == "set-cdr!" {
			off = int32(abi.ConsCdrOff) - int32(isa.ConsTag)
		}
		a.emit(isa.St(isa.OpStnt, ra, off, rb))
		a.emit(isa.MovI(regAcc, isa.Unspec))
		return nil

	case "make-vector":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpRawAdd, isa.RArg0, ra, 0))
		a.emit(isa.RI(isa.OpRawAdd, isa.RArg0+1, rb, 0))
		a.emit(isa.Trap(abi.TrapImm(abi.SvcMakeVector, 0, 0)))
		a.emit(isa.RI(isa.OpRawAdd, regAcc, isa.RArg0, 0))
		return nil

	case "vector-length":
		if err := touchUnary(); err != nil {
			return err
		}
		a.emit(isa.Ld(isa.OpLdnt, regT1, regAcc, -int32(isa.OtherTag)))
		a.emit(isa.RI(isa.OpSrl, regT1, regT1, abi.HeaderShift))
		a.emit(isa.RI(isa.OpSll, regAcc, regT1, 2))
		return nil

	case "vector-ref", "vector-ref-sync":
		op := isa.OpLdnt
		if v.Name == "vector-ref-sync" {
			// Trap on an empty slot (the handler switch-spins until a
			// producer fills it); wait on a local miss.
			op = isa.OpLdtw
		}
		ra, rb, imm, useImm, err := f.binaryOperands(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		if useImm {
			// The fixnum index is already the byte offset (i<<2).
			a.emit(isa.Ld(op, regAcc, ra, imm+vecElemDisp))
		} else {
			a.emit(isa.Inst{Op: op, Rd: regAcc, Rs1: ra, Rs2: rb, Imm: vecElemDisp})
		}
		return nil

	case "vector-set!", "vector-set-sync!":
		op := isa.OpStnt
		if v.Name == "vector-set-sync!" {
			// Fill the slot; trap if it is already full (the producer
			// must wait for a consumer to empty it).
			op = isa.OpStftw
		}
		if err := f.ternaryOperands(v.Args[0], v.Args[1], v.Args[2]); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: regAcc, Rs1: regT1, Rs2: regT2, Imm: vecElemDisp})
		a.emit(isa.MovI(regAcc, isa.Unspec))
		return nil

	case "vector-empty!":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		// Load-and-empty, discarding the value.
		a.emit(isa.Inst{Op: isa.OpLdenw, Rd: regT3, Rs1: ra, Rs2: rb, Imm: vecElemDisp})
		a.emit(isa.MovI(regAcc, isa.Unspec))
		return nil

	case "vector-full?":
		ra, rb, err := f.binaryRegs(v.Args[0], v.Args[1])
		if err != nil {
			return err
		}
		// A non-trapping probe sets the full/empty condition bit.
		a.emit(isa.Inst{Op: isa.OpLdnw, Rd: regT3, Rs1: ra, Rs2: rb, Imm: vecElemDisp})
		f.boolFromCond(isa.OpJfull)
		return nil

	case "print":
		if err := f.expr(v.Args[0], false); err != nil {
			return err
		}
		a.emit(isa.RI(isa.OpRawAdd, isa.RArg0, regAcc, 0))
		a.emit(isa.Trap(abi.TrapImm(abi.SvcPrint, 0, 0)))
		a.emit(isa.MovI(regAcc, isa.Unspec))
		return nil
	}
	return fmt.Errorf("unimplemented primitive %s", v.Name)
}
