package mult_test

import (
	"fmt"
	"testing"

	"april/internal/mult"
	"april/internal/rts"
)

// corpus programs must be deterministic (same result sequential and
// parallel) so the interpreter's sequential elaboration is the oracle.
var corpus = []struct {
	name string
	src  string
}{
	{"arith", `(print (+ 3 4)) (print (- 3 4)) (print (* 35 -4)) (print (quotient 17 5))
	           (print (quotient -17 5)) (print (remainder 17 5)) (print (remainder -17 5))
	           (print (modulo -17 5)) (print (modulo 17 -5)) (+ 1 2)`},
	{"compare", `(print (< 1 2)) (print (< 2 1)) (print (<= 2 2)) (print (> 5 -5))
	             (print (>= -1 0)) (print (= 4 4)) (print (zero? 0)) (print (zero? 3))
	             (print (eq? 'a 'a)) (print (eq? 'a 'b)) #t`},
	{"bits", `(print (bit-and 12 10)) (print (bit-or 12 10)) (print (bit-xor 12 10))
	          (print (shift-left 3 4)) (print (shift-right -16 2)) 0`},
	{"bools", `(print (not #f)) (print (not 3)) (print (and 1 2 3)) (print (and 1 #f 3))
	           (print (or #f #f 7)) (print (or #f #f)) (if 0 'zero-is-true 'no)`},
	{"lists", `(define l (cons 1 (cons 2 (cons 3 '()))))
	           (print (car l)) (print (car (cdr l))) (print (length l))
	           (print (null? '())) (print (null? l)) (print (pair? l)) (print (pair? 5))
	           (print (reverse l)) (print (append l '(9 8)))
	           (print (map (lambda (x) (* x x)) l))
	           (print (list-ref l 2)) (print (iota 5)) 'done`},
	{"quote", `(print 'sym) (print '(1 2 (3 4) #t)) (print (car '(a b c))) (cdr '(1 2))`},
	{"strings", `(print "hello world") "result string"`},
	{"let-forms", `(let ((x 2) (y 3)) (print (+ x y)))
	               (let* ((x 2) (y (* x x))) (print y))
	               (let ((x 1)) (let ((x 2) (y x)) (print y)))
	               (let loop ((i 0) (acc 0)) (if (= i 5) acc (loop (+ i 1) (+ acc i))))`},
	{"set", `(define counter 0)
	         (define (bump!) (set! counter (+ counter 1)) counter)
	         (bump!) (bump!) (print (bump!))
	         (let ((x 1)) (set! x 42) (print x)) counter`},
	{"closures", `(define (make-adder n) (lambda (x) (+ x n)))
	              (define add3 (make-adder 3))
	              (print (add3 4))
	              (define (make-counter)
	                (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
	              (define c1 (make-counter))
	              (define c2 (make-counter))
	              (c1) (c1) (c2)
	              (print (c1))
	              (print (c2))
	              ((lambda (f) (f (f 10))) (lambda (x) (* x 2)))`},
	{"higher-order", `(define (compose f g) (lambda (x) (f (g x))))
	                  (define (inc x) (+ x 1))
	                  (define (dbl x) (* x 2))
	                  (print ((compose inc dbl) 10))
	                  (print ((compose dbl inc) 10))
	                  (for-each (lambda (x) (print x)) '(1 2 3))
	                  (procedure? inc)`},
	{"cond", `(define (classify n)
	            (cond ((< n 0) 'negative) ((= n 0) 'zero) ((< n 10) 'small) (else 'big)))
	          (print (classify -5)) (print (classify 0)) (print (classify 3))
	          (print (classify 99)) (when (= 1 1) (print 'when-works))
	          (unless (= 1 2) (print 'unless-works)) 'ok`},
	{"vectors", `(define v (make-vector 5 0))
	             (let fill ((i 0)) (when (< i 5) (vector-set! v i (* i i)) (fill (+ i 1))))
	             (print (vector-ref v 3)) (print (vector-length v)) (print v)
	             (vector-set! v 0 'sym) (print (vector-ref v 0)) (vector-ref v 4)`},
	{"vector-sync", `(define v (make-ivector 3))
	                 (print (vector-full? v 0))
	                 (vector-set-sync! v 0 11)
	                 (print (vector-full? v 0))
	                 (print (vector-ref-sync v 0))
	                 (vector-empty! v 0)
	                 (print (vector-full? v 0))
	                 (vector-set-sync! v 0 22)
	                 (vector-ref-sync v 0)`},
	{"recursion", `(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
	               (print (fact 10))
	               (define (even? n) (if (= n 0) #t (odd? (- n 1))))
	               (define (odd? n) (if (= n 0) #f (even? (- n 1))))
	               (print (even? 10)) (print (odd? 7))
	               (fact 12)`},
	{"deep-loop", `(let loop ((i 0) (sum 0))
	                 (if (= i 10000) sum (loop (+ i 1) (+ sum i))))`},
	{"letrec", `(letrec ((e? (lambda (n) (if (= n 0) #t (o? (- n 1)))))
	                     (o? (lambda (n) (if (= n 0) #f (e? (- n 1))))))
	              (print (e? 6)) (o? 9))`},
	{"mutual-capture", `(define (twice f x) (f (f x)))
	                    (let ((base 100))
	                      (twice (lambda (x) (+ x base)) 5))`},
	{"fib-futures", `(define (fib n)
	                   (if (< n 2) n
	                       (+ (future (fib (- n 1))) (future (fib (- n 2))))))
	                 (print (fib 12)) (fib 10)`},
	{"future-chain", `(define (work n) (future (+ n 1)))
	                  (print (touch (work 1)))
	                  (let ((a (future (* 3 3))) (b (future (* 4 4))))
	                    (+ (touch a) b))`},
	{"future-list", `(define (par-map f l)
	                   (if (null? l) '() (cons (future (f (car l))) (par-map f (cdr l)))))
	                 (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
	                 (sum (par-map (lambda (x) (* x x)) (iota 10)))`},
	{"future-pred", `(let ((f (future (cons 1 2))))
	                   (print (pair? f))
	                   (print (null? f))
	                   (car f))`},
	{"nested-futures", `(define (tree n)
	                      (if (= n 0) 1
	                          (+ (future (tree (- n 1))) (future (tree (- n 1))))))
	                    (tree 6)`},
	{"future-in-vector", `(define v (make-vector 4 0))
	                      (let go ((i 0))
	                        (when (< i 4) (vector-set! v i (future (* i 10))) (go (+ i 1))))
	                      (+ (vector-ref v 1) (+ (vector-ref v 2) (vector-ref v 3)))`},
	{"min-max-abs", `(print (min 3 5)) (print (max 3 5)) (print (abs -7)) (abs 7)`},
}

type modeCase struct {
	name  string
	mode  mult.Mode
	prof  rts.Profile
	lazy  bool
	nodes int
}

func modeCases() []modeCase {
	hw := mult.Mode{HardwareFutures: true}
	sw := mult.Mode{HardwareFutures: false}
	return []modeCase{
		{"seq-april", mult.Mode{HardwareFutures: true, Sequential: true}, rts.APRIL, false, 1},
		{"seq-encore", mult.Mode{HardwareFutures: false, Sequential: true}, rts.Encore, false, 1},
		{"eager-april-1p", hw, rts.APRIL, false, 1},
		{"eager-april-4p", hw, rts.APRIL, false, 4},
		{"eager-encore-2p", sw, rts.Encore, false, 2},
		{"lazy-april-1p", mult.Mode{HardwareFutures: true, LazyFutures: true}, rts.APRIL, true, 1},
		{"lazy-april-4p", mult.Mode{HardwareFutures: true, LazyFutures: true}, rts.APRIL, true, 4},
		{"lazy-custom-3p", mult.Mode{HardwareFutures: true, LazyFutures: true}, rts.APRILCustom, true, 3},
	}
}

// TestDifferential compares every corpus program under every
// compilation mode and machine configuration against the reference
// interpreter.
func TestDifferential(t *testing.T) {
	for _, prog := range corpus {
		want := runInterp(t, prog.src)
		for _, mc := range modeCases() {
			t.Run(fmt.Sprintf("%s/%s", prog.name, mc.name), func(t *testing.T) {
				got, _ := runCompiled(t, prog.src, mc.mode, mc.prof, mc.lazy, mc.nodes)
				if got != want {
					t.Errorf("compiled output differs\n got: %q\nwant: %q", got, want)
				}
			})
		}
	}
}

// TestDifferentialParallelDeterminism: parallel runs of deterministic
// future programs must match sequential results at every machine size.
func TestDifferentialParallelDeterminism(t *testing.T) {
	src := `
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 13)`
	want := runInterp(t, src)
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		for _, lazy := range []bool{false, true} {
			mode := mult.Mode{HardwareFutures: true, LazyFutures: lazy}
			got, _ := runCompiled(t, src, mode, rts.APRIL, lazy, nodes)
			if got != want {
				t.Errorf("nodes=%d lazy=%v: got %q want %q", nodes, lazy, got, want)
			}
		}
	}
}
