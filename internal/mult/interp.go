package mult

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// The reference interpreter: a sequential tree-walking evaluator over
// the parsed (unresolved) AST. It defines the semantics the compiler
// is tested against differentially — every program must produce the
// same result interpreted and compiled. Futures evaluate inline
// (sequential Scheme semantics), which is the correct sequential
// elaboration of a deterministic Mul-T program.

// Interpreter values: int32, bool, string, Symbol, *Pair, *IVector,
// *IClosure, nilVal, unspecVal.
type Value interface{}

type nilType struct{}
type unspecType struct{}

// NilVal and UnspecVal are the interpreter's '() and unspecified value.
var (
	NilVal    = nilType{}
	UnspecVal = unspecType{}
)

// Pair is a mutable cons cell.
type Pair struct{ Car, Cdr Value }

// IVector is a vector with per-slot full/empty bits.
type IVector struct {
	Items []Value
	Full  []bool
}

// IClosure is an interpreted procedure.
type IClosure struct {
	Params []Symbol
	Body   Expr
	Env    *IEnv
	Name   string
}

// IEnv is a lexical environment frame.
type IEnv struct {
	vars   map[Symbol]*Value
	parent *IEnv
}

func newEnv(parent *IEnv) *IEnv { return &IEnv{vars: map[Symbol]*Value{}, parent: parent} }

func (e *IEnv) lookup(n Symbol) *Value {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[n]; ok {
			return v
		}
	}
	return nil
}

func (e *IEnv) define(n Symbol, v Value) {
	val := v
	e.vars[n] = &val
}

// ErrFuel is returned when evaluation exceeds its step budget.
var ErrFuel = errors.New("mult: interpreter out of fuel")

// Interp evaluates programs.
type Interp struct {
	Out  io.Writer
	fuel int64
}

// NewInterp creates an interpreter with the given output sink and step
// budget (0 means a generous default).
func NewInterp(out io.Writer, fuel int64) *Interp {
	if out == nil {
		out = io.Discard
	}
	if fuel <= 0 {
		fuel = 200_000_000
	}
	return &Interp{Out: out, fuel: fuel}
}

// RunSource parses and evaluates src (with the prelude), returning the
// value of the last top-level expression.
func (in *Interp) RunSource(src string) (Value, error) {
	forms, err := ReadAll(Prelude + "\n" + src)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(forms)
	if err != nil {
		return nil, err
	}
	return in.RunProgram(prog)
}

// RunProgram evaluates a parsed (unresolved) program.
func (in *Interp) RunProgram(p *Program) (Value, error) {
	global := newEnv(nil)
	for _, d := range p.Defs {
		v, err := in.eval(d.Value, global)
		if err != nil {
			return nil, fmt.Errorf("in (define %s ...): %w", d.Name, err)
		}
		global.define(d.Name, v)
	}
	return in.eval(p.Main, global)
}

func truthy(v Value) bool {
	b, isBool := v.(bool)
	return !isBool || b
}

func (in *Interp) eval(e Expr, env *IEnv) (Value, error) {
	in.fuel--
	if in.fuel < 0 {
		return nil, ErrFuel
	}
	switch v := e.(type) {
	case *Const:
		switch c := v.Value.(type) {
		case int32:
			return c, nil
		case bool:
			return c, nil
		case string:
			return c, nil
		}
		return nil, fmt.Errorf("mult: bad constant %v", v.Value)

	case *Quote:
		return quoteValue(v.Datum), nil

	case *Var:
		slot := env.lookup(v.Name)
		if slot == nil {
			return nil, fmt.Errorf("mult: unbound variable %s", v.Name)
		}
		return *slot, nil

	case *Set:
		slot := env.lookup(v.Name)
		if slot == nil {
			return nil, fmt.Errorf("mult: set! of unbound variable %s", v.Name)
		}
		val, err := in.eval(v.Value, env)
		if err != nil {
			return nil, err
		}
		*slot = val
		return UnspecVal, nil

	case *If:
		c, err := in.eval(v.Cond, env)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return in.eval(v.Then, env)
		}
		if v.Else == nil {
			return UnspecVal, nil
		}
		return in.eval(v.Else, env)

	case *Begin:
		var out Value = UnspecVal
		for _, b := range v.Body {
			var err error
			out, err = in.eval(b, env)
			if err != nil {
				return nil, err
			}
		}
		return out, nil

	case *Let:
		inner := newEnv(env)
		for i, init := range v.Inits {
			val, err := in.eval(init, env)
			if err != nil {
				return nil, err
			}
			inner.define(v.Names[i], val)
		}
		return in.eval(v.Body, inner)

	case *Letrec:
		inner := newEnv(env)
		for _, n := range v.Names {
			inner.define(n, UnspecVal)
		}
		for i, lam := range v.Inits {
			val, err := in.eval(lam, inner)
			if err != nil {
				return nil, err
			}
			*inner.lookup(v.Names[i]) = val
		}
		return in.eval(v.Body, inner)

	case *Lambda:
		return &IClosure{Params: v.Params, Body: v.Body, Env: env, Name: v.Name}, nil

	case *Future:
		// Sequential elaboration: evaluate now.
		if v.Thunk != nil {
			return in.eval(v.Thunk.Body, env)
		}
		return in.eval(v.Body, env)

	case *Touch:
		return in.eval(v.Body, env)

	case *Prim:
		return in.evalPrimNode(v, env)

	case *Call:
		// Builtin in call position (unresolved tree): a name that is
		// not lexically bound and matches the builtin table.
		if name, ok := v.Fn.(*Var); ok {
			if _, isPrim := builtins[name.Name]; isPrim && env.lookup(name.Name) == nil {
				return in.evalPrim(name.Name, v.Args, env)
			}
		}
		fnv, err := in.eval(v.Fn, env)
		if err != nil {
			return nil, err
		}
		clos, ok := fnv.(*IClosure)
		if !ok {
			return nil, fmt.Errorf("mult: calling non-procedure %s", FormatValue(fnv))
		}
		if len(v.Args) != len(clos.Params) {
			return nil, fmt.Errorf("mult: %s takes %d args, got %d", clos.Name, len(clos.Params), len(v.Args))
		}
		inner := newEnv(clos.Env)
		for i, a := range v.Args {
			av, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			inner.define(clos.Params[i], av)
		}
		return in.eval(clos.Body, inner)
	}
	return nil, fmt.Errorf("mult: cannot evaluate %T", e)
}

func quoteValue(d Sexp) Value {
	switch v := d.(type) {
	case int32, bool:
		return v
	case string:
		return v
	case Symbol:
		return v
	case []Sexp:
		var out Value = NilVal
		for i := len(v) - 1; i >= 0; i-- {
			out = &Pair{Car: quoteValue(v[i]), Cdr: out}
		}
		return out
	}
	return UnspecVal
}

func (in *Interp) evalPrimNode(p *Prim, env *IEnv) (Value, error) {
	return in.evalPrim(p.Name, p.Args, env)
}

func (in *Interp) evalPrim(name Symbol, argExprs []Expr, env *IEnv) (Value, error) {
	if arity := builtins[name]; arity >= 0 && len(argExprs) != arity {
		return nil, fmt.Errorf("mult: %s takes %d arguments, got %d", name, builtins[name], len(argExprs))
	}
	args := make([]Value, len(argExprs))
	for i, a := range argExprs {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	fix := func(i int) (int32, error) {
		n, ok := args[i].(int32)
		if !ok {
			return 0, fmt.Errorf("mult: %s: argument %d is not a fixnum: %s", name, i+1, FormatValue(args[i]))
		}
		return n, nil
	}
	pair := func(i int) (*Pair, error) {
		p, ok := args[i].(*Pair)
		if !ok {
			return nil, fmt.Errorf("mult: %s: argument %d is not a pair: %s", name, i+1, FormatValue(args[i]))
		}
		return p, nil
	}
	vec := func(i int) (*IVector, error) {
		v, ok := args[i].(*IVector)
		if !ok {
			return nil, fmt.Errorf("mult: %s: argument %d is not a vector", name, i+1)
		}
		return v, nil
	}
	vecSlot := func() (*IVector, int32, error) {
		v, err := vec(0)
		if err != nil {
			return nil, 0, err
		}
		i, err := fix(1)
		if err != nil {
			return nil, 0, err
		}
		if i < 0 || int(i) >= len(v.Items) {
			return nil, 0, fmt.Errorf("mult: %s: index %d out of range [0,%d)", name, i, len(v.Items))
		}
		return v, i, nil
	}
	arith := func(f func(a, b int32) (int32, error)) (Value, error) {
		a, err := fix(0)
		if err != nil {
			return nil, err
		}
		b, err := fix(1)
		if err != nil {
			return nil, err
		}
		n, err := f(a, b)
		if err != nil {
			return nil, err
		}
		return n << 2 >> 2, nil // 30-bit fixnum wraparound, as on APRIL
	}
	cmp := func(f func(a, b int32) bool) (Value, error) {
		a, err := fix(0)
		if err != nil {
			return nil, err
		}
		b, err := fix(1)
		if err != nil {
			return nil, err
		}
		return f(a, b), nil
	}

	switch name {
	case "+":
		return arith(func(a, b int32) (int32, error) { return a + b, nil })
	case "-":
		return arith(func(a, b int32) (int32, error) { return a - b, nil })
	case "*":
		return arith(func(a, b int32) (int32, error) { return a * b, nil })
	case "quotient":
		return arith(func(a, b int32) (int32, error) {
			if b == 0 {
				return 0, errors.New("mult: division by zero")
			}
			return a / b, nil
		})
	case "remainder", "modulo":
		return arith(func(a, b int32) (int32, error) {
			if b == 0 {
				return 0, errors.New("mult: modulo by zero")
			}
			r := a % b
			if name == "modulo" && r != 0 && (r < 0) != (b < 0) {
				r += b
			}
			return r, nil
		})
	case "=":
		return cmp(func(a, b int32) bool { return a == b })
	case "<":
		return cmp(func(a, b int32) bool { return a < b })
	case ">":
		return cmp(func(a, b int32) bool { return a > b })
	case "<=":
		return cmp(func(a, b int32) bool { return a <= b })
	case ">=":
		return cmp(func(a, b int32) bool { return a >= b })
	case "zero?":
		n, err := fix(0)
		if err != nil {
			return nil, err
		}
		return n == 0, nil
	case "bit-and":
		return arith(func(a, b int32) (int32, error) { return a & b, nil })
	case "bit-or":
		return arith(func(a, b int32) (int32, error) { return a | b, nil })
	case "bit-xor":
		return arith(func(a, b int32) (int32, error) { return a ^ b, nil })
	case "shift-left":
		return arith(func(a, b int32) (int32, error) { return a << (uint32(b) & 31), nil })
	case "shift-right":
		return arith(func(a, b int32) (int32, error) { return a >> (uint32(b) & 31), nil })
	case "not":
		return !truthy(args[0]), nil
	case "eq?":
		return eqv(args[0], args[1]), nil
	case "cons":
		return &Pair{Car: args[0], Cdr: args[1]}, nil
	case "car":
		p, err := pair(0)
		if err != nil {
			return nil, err
		}
		return p.Car, nil
	case "cdr":
		p, err := pair(0)
		if err != nil {
			return nil, err
		}
		return p.Cdr, nil
	case "set-car!":
		p, err := pair(0)
		if err != nil {
			return nil, err
		}
		p.Car = args[1]
		return UnspecVal, nil
	case "set-cdr!":
		p, err := pair(0)
		if err != nil {
			return nil, err
		}
		p.Cdr = args[1]
		return UnspecVal, nil
	case "pair?":
		_, ok := args[0].(*Pair)
		return ok, nil
	case "null?":
		_, ok := args[0].(nilType)
		return ok, nil
	case "fixnum?":
		_, ok := args[0].(int32)
		return ok, nil
	case "future?":
		return false, nil // sequential semantics: futures are resolved
	case "procedure?":
		_, ok := args[0].(*IClosure)
		return ok, nil
	case "make-vector":
		n, err := fix(0)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("mult: make-vector of negative length %d", n)
		}
		v := &IVector{Items: make([]Value, n), Full: make([]bool, n)}
		for i := range v.Items {
			v.Items[i] = args[1]
			v.Full[i] = true
		}
		return v, nil
	case "vector-length":
		v, err := vec(0)
		if err != nil {
			return nil, err
		}
		return int32(len(v.Items)), nil
	case "vector-ref":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		return v.Items[i], nil
	case "vector-set!":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		v.Items[i] = args[2]
		return UnspecVal, nil
	case "vector-ref-sync":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		if !v.Full[i] {
			return nil, fmt.Errorf("mult: vector-ref-sync of empty slot %d (sequential deadlock)", i)
		}
		return v.Items[i], nil
	case "vector-set-sync!":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		if v.Full[i] {
			return nil, fmt.Errorf("mult: vector-set-sync! of full slot %d (sequential deadlock)", i)
		}
		v.Items[i] = args[2]
		v.Full[i] = true
		return UnspecVal, nil
	case "vector-empty!":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		v.Full[i] = false
		return UnspecVal, nil
	case "vector-full?":
		v, i, err := vecSlot()
		if err != nil {
			return nil, err
		}
		return v.Full[i], nil
	case "print":
		fmt.Fprintln(in.Out, FormatValue(args[0]))
		return UnspecVal, nil
	}
	return nil, fmt.Errorf("mult: unknown primitive %s", name)
}

func eqv(a, b Value) bool {
	switch av := a.(type) {
	case int32:
		bv, ok := b.(int32)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case Symbol:
		bv, ok := b.(Symbol)
		return ok && av == bv
	case nilType:
		_, ok := b.(nilType)
		return ok
	case unspecType:
		_, ok := b.(unspecType)
		return ok
	default:
		return a == b // pointer identity for pairs, vectors, closures
	}
}

// FormatValue renders an interpreter value like the machine's printer.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case int32:
		return fmt.Sprintf("%d", x)
	case bool:
		if x {
			return "#t"
		}
		return "#f"
	case string:
		return fmt.Sprintf("%q", x)
	case Symbol:
		return string(x)
	case nilType:
		return "()"
	case unspecType:
		return "#!unspecific"
	case *Pair:
		var b strings.Builder
		b.WriteByte('(')
		var cur Value = x
		first := true
		for {
			p, ok := cur.(*Pair)
			if !ok {
				break
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			b.WriteString(FormatValue(p.Car))
			cur = p.Cdr
		}
		if _, isNil := cur.(nilType); !isNil {
			b.WriteString(" . ")
			b.WriteString(FormatValue(cur))
		}
		b.WriteByte(')')
		return b.String()
	case *IVector:
		var b strings.Builder
		b.WriteString("#(")
		for i, e := range x.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(FormatValue(e))
		}
		b.WriteByte(')')
		return b.String()
	case *IClosure:
		return "#[procedure]"
	}
	return fmt.Sprintf("#[?%v]", v)
}
