package mult

import "fmt"

// Prim is a call to a compiler-known primitive, produced by resolution
// when an unbound name in call position matches the builtin table.
type Prim struct {
	Name Symbol
	Args []Expr
}

func (*Prim) exprNode() {}

// builtins maps primitive names to their arities (-1 = handled
// specially). The code generator and the reference interpreter both
// implement exactly this set.
var builtins = map[Symbol]int{
	"+": 2, "-": 2, "*": 2, "quotient": 2, "remainder": 2, "modulo": 2,
	"=": 2, "<": 2, ">": 2, "<=": 2, ">=": 2,
	"zero?": 1, "not": 1, "eq?": 2,
	"cons": 2, "car": 1, "cdr": 1, "set-car!": 2, "set-cdr!": 2,
	"pair?": 1, "null?": 1, "fixnum?": 1, "future?": 1, "procedure?": 1,
	"make-vector": 2, "vector-ref": 2, "vector-set!": 3, "vector-length": 1,
	// Fine-grain synchronization on vector slots via full/empty bits
	// (Section 3.3): vector-ref-sync traps (switch-spins) until the
	// slot is full; vector-set-sync! fills it; vector-empty! resets it.
	"vector-ref-sync": 2, "vector-set-sync!": 3, "vector-empty!": 2, "vector-full?": 2,
	"print":   1,
	"bit-and": 2, "bit-or": 2, "bit-xor": 2, "shift-left": 2, "shift-right": 2,
}

// Mode selects how futures and future detection compile.
type Mode struct {
	// HardwareFutures: rely on APRIL's tag traps for future detection.
	// When false (the Encore Multimax baseline), every strict operand
	// gets a compiled-in software check.
	HardwareFutures bool

	// LazyFutures: compile (future X) to a lazy task creation marker
	// (Section 3.2, [17]) instead of an eager task.
	LazyFutures bool

	// Sequential: strip futures entirely (the "T seq" column).
	Sequential bool
}

type lamState struct {
	lam    *Lambda
	vars   map[Symbol]*Binding
	free   map[Symbol]*Binding
	parent *lamState
	slots  int
}

func (ls *lamState) newLocal(name Symbol) *Binding {
	b := &Binding{Name: name, Kind: BindLocal, Slot: ls.slots, Lam: ls.lam}
	ls.slots++
	return b
}

type resolver struct {
	prog    *Program
	globals map[Symbol]*Binding
	defLams map[*Binding]*Lambda // top-level lambda defs (for direct calls)
	lambdas []*Lambda
	mode    Mode
}

// Resolve performs scope resolution, free-variable analysis, and
// builtin recognition over a parsed program, specializing future
// expressions for the compilation mode. It rewrites the AST in place
// and returns it.
func Resolve(p *Program, mode Mode) (*Program, error) {
	r := &resolver{
		prog:    p,
		globals: map[Symbol]*Binding{},
		defLams: map[*Binding]*Lambda{},
		mode:    mode,
	}
	for i, d := range p.Defs {
		if _, dup := r.globals[d.Name]; dup {
			return nil, fmt.Errorf("mult: duplicate definition of %s", d.Name)
		}
		b := &Binding{Name: d.Name, Kind: BindGlobal, Slot: i}
		r.globals[d.Name] = b
		d.Bind = b
	}
	if mode.Sequential {
		for _, d := range p.Defs {
			d.Value = StripFutures(d.Value)
		}
		p.Main = StripFutures(p.Main)
	}
	// Record which globals are top-level lambdas before resolution so
	// direct calls can be recognized (a later set! disables this).
	for _, d := range p.Defs {
		if lam, ok := d.Value.(*Lambda); ok {
			r.defLams[d.Bind] = lam
		}
	}

	// The top-level forms (global initializers + main body) execute in
	// a synthetic zero-argument "main" lambda.
	mainLam := &Lambda{Name: "main"}
	mainState := &lamState{lam: mainLam, vars: map[Symbol]*Binding{}, free: map[Symbol]*Binding{}}

	var body []Expr
	for _, d := range p.Defs {
		v, err := r.expr(d.Value, mainState)
		if err != nil {
			return nil, fmt.Errorf("in (define %s ...): %w", d.Name, err)
		}
		d.Value = v
		body = append(body, &Set{Name: d.Name, Bind: d.Bind, Value: v})
	}
	mainResolved, err := r.expr(p.Main, mainState)
	if err != nil {
		return nil, err
	}
	body = append(body, mainResolved)
	mainLam.Body = &Begin{Body: body}
	mainLam.NLocals = mainState.slots

	p.Globals = r.globals
	p.Lambdas = append([]*Lambda{mainLam}, r.lambdas...)
	p.Main = mainLam.Body

	// Box bindings that are both mutated and captured.
	for _, lam := range p.Lambdas {
		for _, fb := range lam.Free {
			root := fb
			for root.Outer != nil {
				root = root.Outer
			}
			if root.Mutated {
				root.Boxed = true
			}
		}
	}
	// Propagate Boxed to the capture chains.
	for _, lam := range p.Lambdas {
		for _, fb := range lam.Free {
			root := fb
			for root.Outer != nil {
				root = root.Outer
			}
			fb.Boxed = root.Boxed
		}
	}
	return p, nil
}

func (r *resolver) lookup(st *lamState, name Symbol) *Binding {
	// Already captured here?
	if b, ok := st.free[name]; ok {
		return b
	}
	if b, ok := st.vars[name]; ok {
		return b
	}
	if st.parent == nil {
		if b, ok := r.globals[name]; ok {
			return b
		}
		return nil
	}
	outer := r.lookup(st.parent, name)
	if outer == nil {
		return nil
	}
	if outer.Kind == BindGlobal {
		return outer // globals need no capture
	}
	// Capture: create a free binding in this lambda chained to the
	// enclosing binding.
	fb := &Binding{Name: name, Kind: BindFree, Slot: len(st.lam.Free), Lam: st.lam, Outer: outer}
	st.lam.Free = append(st.lam.Free, fb)
	st.free[name] = fb
	return fb
}

func (r *resolver) expr(e Expr, st *lamState) (Expr, error) {
	switch v := e.(type) {
	case *Const, *Quote:
		return e, nil

	case *Var:
		b := r.lookup(st, v.Name)
		if b == nil {
			if _, isPrim := builtins[v.Name]; isPrim {
				return nil, fmt.Errorf("mult: primitive %s is not a first-class value (wrap it in a lambda)", v.Name)
			}
			return nil, fmt.Errorf("mult: unbound variable %s", v.Name)
		}
		v.Bind = b
		return v, nil

	case *Set:
		b := r.lookup(st, v.Name)
		if b == nil {
			return nil, fmt.Errorf("mult: set! of unbound variable %s", v.Name)
		}
		b.Mutated = true
		// Mutation through a capture chain marks the root too.
		for root := b; root != nil; root = root.Outer {
			root.Mutated = true
		}
		v.Bind = b
		val, err := r.expr(v.Value, st)
		if err != nil {
			return nil, err
		}
		v.Value = val
		return v, nil

	case *If:
		var err error
		if v.Cond, err = r.expr(v.Cond, st); err != nil {
			return nil, err
		}
		if v.Then, err = r.expr(v.Then, st); err != nil {
			return nil, err
		}
		if v.Else != nil {
			if v.Else, err = r.expr(v.Else, st); err != nil {
				return nil, err
			}
		}
		return v, nil

	case *Begin:
		for i := range v.Body {
			b, err := r.expr(v.Body[i], st)
			if err != nil {
				return nil, err
			}
			v.Body[i] = b
		}
		return v, nil

	case *Let:
		v.Binds = make([]*Binding, len(v.Names))
		// Inits resolve in the outer scope (parallel let).
		for i := range v.Inits {
			in, err := r.expr(v.Inits[i], st)
			if err != nil {
				return nil, err
			}
			v.Inits[i] = in
		}
		saved := make(map[Symbol]*Binding, len(v.Names))
		for i, n := range v.Names {
			b := st.newLocal(n)
			v.Binds[i] = b
			if old, ok := st.vars[n]; ok {
				saved[n] = old
			} else {
				saved[n] = nil
			}
			st.vars[n] = b
		}
		body, err := r.expr(v.Body, st)
		if err != nil {
			return nil, err
		}
		v.Body = body
		for n, old := range saved {
			if old == nil {
				delete(st.vars, n)
			} else {
				st.vars[n] = old
			}
		}
		return v, nil

	case *Letrec:
		v.Binds = make([]*Binding, len(v.Names))
		saved := make(map[Symbol]*Binding, len(v.Names))
		for i, n := range v.Names {
			b := st.newLocal(n)
			// Letrec bindings are reached from inside their own
			// lambdas, so they are boxed unconditionally.
			b.Mutated = true
			v.Binds[i] = b
			if old, ok := st.vars[n]; ok {
				saved[n] = old
			} else {
				saved[n] = nil
			}
			st.vars[n] = b
		}
		for i, lam := range v.Inits {
			resolved, err := r.lambda(lam, st)
			if err != nil {
				return nil, err
			}
			v.Inits[i] = resolved
			// Recognize self-recursion for tail-call optimization.
			resolved.SelfBind = v.Binds[i]
		}
		body, err := r.expr(v.Body, st)
		if err != nil {
			return nil, err
		}
		v.Body = body
		for n, old := range saved {
			if old == nil {
				delete(st.vars, n)
			} else {
				st.vars[n] = old
			}
		}
		return v, nil

	case *Lambda:
		return r.lambda(v, st)

	case *Call:
		// Builtin in call position?
		if name, ok := v.Fn.(*Var); ok {
			if arity, isPrim := builtins[name.Name]; isPrim && r.lookup(st, name.Name) == nil {
				if arity >= 0 && len(v.Args) != arity {
					return nil, fmt.Errorf("mult: %s takes %d arguments, got %d", name.Name, arity, len(v.Args))
				}
				args := make([]Expr, len(v.Args))
				for i, a := range v.Args {
					ra, err := r.expr(a, st)
					if err != nil {
						return nil, err
					}
					args[i] = ra
				}
				return &Prim{Name: name.Name, Args: args}, nil
			}
		}
		fn, err := r.expr(v.Fn, st)
		if err != nil {
			return nil, err
		}
		v.Fn = fn
		for i := range v.Args {
			a, err := r.expr(v.Args[i], st)
			if err != nil {
				return nil, err
			}
			v.Args[i] = a
		}
		// Compile-time arity check for direct calls to global lambdas.
		if vr, ok := v.Fn.(*Var); ok && vr.Bind != nil && vr.Bind.Kind == BindGlobal && !vr.Bind.Mutated {
			if lam, known := r.defLams[vr.Bind]; known && len(v.Args) != len(lam.Params) {
				return nil, fmt.Errorf("mult: %s takes %d arguments, got %d", vr.Name, len(lam.Params), len(v.Args))
			}
		}
		return v, nil

	case *Future:
		if r.mode.Sequential {
			return r.expr(v.Body, st)
		}
		if r.mode.LazyFutures {
			// Lazy: the body evaluates inline in the parent's frame.
			b, err := r.expr(v.Body, st)
			if err != nil {
				return nil, err
			}
			v.Body = b
			return v, nil
		}
		// Eager: the body becomes a zero-argument thunk executed by a
		// fresh task.
		thunk := &Lambda{Body: v.Body, Name: "future-thunk"}
		resolved, err := r.lambda(thunk, st)
		if err != nil {
			return nil, err
		}
		return &Future{Thunk: resolved}, nil

	case *Touch:
		b, err := r.expr(v.Body, st)
		if err != nil {
			return nil, err
		}
		v.Body = b
		return v, nil

	case *Prim:
		return e, nil
	}
	return nil, fmt.Errorf("mult: cannot resolve %T", e)
}

func (r *resolver) lambda(lam *Lambda, parent *lamState) (*Lambda, error) {
	st := &lamState{lam: lam, vars: map[Symbol]*Binding{}, free: map[Symbol]*Binding{}, parent: parent}
	lam.ParamBinds = make([]*Binding, len(lam.Params))
	for i, pn := range lam.Params {
		b := st.newLocal(pn)
		lam.ParamBinds[i] = b
		st.vars[pn] = b
	}
	body, err := r.expr(lam.Body, st)
	if err != nil {
		return nil, err
	}
	lam.Body = body
	lam.NLocals = st.slots
	r.lambdas = append(r.lambdas, lam)
	return lam, nil
}

// DirectLambda reports the top-level lambda a call through binding b
// would reach, if that is statically known.
func (p *Program) DirectLambda(b *Binding) *Lambda {
	if b == nil || b.Kind != BindGlobal || b.Mutated {
		return nil
	}
	for _, d := range p.Defs {
		if d.Bind == b {
			if lam, ok := d.Value.(*Lambda); ok {
				return lam
			}
			return nil
		}
	}
	return nil
}
