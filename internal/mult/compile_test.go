package mult_test

import (
	"strings"
	"testing"

	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

// runCompiled compiles src for the given mode and executes it.
func runCompiled(t *testing.T, src string, mode mult.Mode, prof rts.Profile, lazy bool, nodes int) (string, uint64) {
	t.Helper()
	var out strings.Builder
	m, err := sim.New(sim.Config{Nodes: nodes, Profile: prof, Lazy: lazy, Out: &out})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	prog, err := mult.Compile(src, mode, m.StaticHeap())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v\noutput so far: %s", err, out.String())
	}
	if out.Len() > 0 {
		return out.String() + "=> " + res.Formatted, res.Cycles
	}
	return "=> " + res.Formatted, res.Cycles
}

// runInterp evaluates src with the reference interpreter.
func runInterp(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	in := mult.NewInterp(&out, 0)
	v, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if out.Len() > 0 {
		return out.String() + "=> " + mult.FormatValue(v)
	}
	return "=> " + mult.FormatValue(v)
}

func TestSmokeArithmetic(t *testing.T) {
	src := `(+ 1 (* 6 7))`
	got, _ := runCompiled(t, src, mult.Mode{HardwareFutures: true, Sequential: true}, rts.APRIL, false, 1)
	if got != "=> 43" {
		t.Errorf("got %q", got)
	}
}

func TestSmokeFibSequential(t *testing.T) {
	src := `
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 10)`
	got, _ := runCompiled(t, src, mult.Mode{HardwareFutures: true, Sequential: true}, rts.APRIL, false, 1)
	if got != "=> 55" {
		t.Errorf("got %q", got)
	}
}
