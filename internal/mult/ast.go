package mult

import "fmt"

// The core AST. The parser desugars derived forms (cond, when, unless,
// and, or, let*, named let, define-procedure) into these nodes.
type Expr interface{ exprNode() }

// Const is a self-evaluating literal: int32, bool, or string.
type Const struct{ Value Sexp }

// Quote is quoted structured data, built into the static heap.
type Quote struct{ Datum Sexp }

// Var is a variable reference; Bind is filled in by resolution.
type Var struct {
	Name Symbol
	Bind *Binding
}

// Set is (set! name value).
type Set struct {
	Name  Symbol
	Bind  *Binding
	Value Expr
}

// If is the conditional; Else may be nil (unspecified).
type If struct{ Cond, Then, Else Expr }

// Begin is a sequence; value of the last expression.
type Begin struct{ Body []Expr }

// Let binds in parallel; bindings live in the enclosing lambda's frame.
type Let struct {
	Names []Symbol
	Binds []*Binding
	Inits []Expr
	Body  Expr
}

// Letrec binds mutually recursive procedures (inits must be lambdas).
type Letrec struct {
	Names []Symbol
	Binds []*Binding
	Inits []*Lambda
	Body  Expr
}

// Lambda is a procedure. Resolution fills in the binding and capture
// information used by the code generator.
type Lambda struct {
	Params []Symbol
	Body   Expr

	// Filled by resolution:
	ParamBinds []*Binding
	Free       []*Binding // captured from enclosing scopes, in slot order
	Name       string     // for diagnostics and symbols ("" = anonymous)

	// Filled by the code generator:
	SelfBind *Binding // non-nil when the lambda can self-tail-call

	// NLocals is the number of frame slots resolution assigned
	// (parameters and lets); the code generator allocates spill slots
	// after them.
	NLocals int
}

// Call applies a procedure to arguments.
type Call struct {
	Fn   Expr
	Args []Expr
}

// Future is (future X): create a task to evaluate X and return a
// placeholder (Section 2.2). In eager mode resolution moves the body
// into Thunk, a zero-argument lambda run by the new task; in lazy mode
// Body stays inline and compiles to a stealable marker.
type Future struct {
	Body  Expr
	Thunk *Lambda
}

// Touch is (touch X): explicitly force X's value.
type Touch struct{ Body Expr }

func (*Const) exprNode()  {}
func (*Quote) exprNode()  {}
func (*Var) exprNode()    {}
func (*Set) exprNode()    {}
func (*If) exprNode()     {}
func (*Begin) exprNode()  {}
func (*Let) exprNode()    {}
func (*Letrec) exprNode() {}
func (*Lambda) exprNode() {}
func (*Call) exprNode()   {}
func (*Future) exprNode() {}
func (*Touch) exprNode()  {}

// BindKind classifies where a variable lives at run time.
type BindKind uint8

const (
	BindGlobal BindKind = iota // static memory slot
	BindLocal                  // frame slot of the owning lambda
	BindFree                   // captured slot in the closure record
)

// Binding is a resolved variable.
type Binding struct {
	Name    Symbol
	Kind    BindKind
	Slot    int  // frame slot / closure slot / global index
	Boxed   bool // mutated and captured: lives in a heap cell
	Mutated bool
	Lam     *Lambda // owning lambda for locals (nil for globals)

	// For BindFree: the binding in the enclosing scope this one
	// captures (one level up; chains resolve transitively).
	Outer *Binding
}

// Def is one top-level definition.
type Def struct {
	Name  Symbol
	Bind  *Binding
	Value Expr
}

// Program is a parsed and resolved compilation unit.
type Program struct {
	Defs []*Def
	Main Expr // a Begin of the non-define top-level forms

	Globals map[Symbol]*Binding
	Lambdas []*Lambda // every lambda in the program, in compile order
}

// specialForms lists symbols that cannot be shadowed or used as
// variables.
var specialForms = map[Symbol]bool{
	"define": true, "lambda": true, "if": true, "let": true, "let*": true,
	"letrec": true, "begin": true, "set!": true, "quote": true,
	"cond": true, "else": true, "when": true, "unless": true,
	"and": true, "or": true, "future": true, "touch": true,
}

// Parse converts top-level s-expressions into an unresolved Program.
func Parse(forms []Sexp) (*Program, error) {
	p := &Program{Globals: map[Symbol]*Binding{}}
	var mainBody []Expr
	for _, f := range forms {
		if lst, ok := f.([]Sexp); ok && len(lst) > 0 {
			if sym, ok := lst[0].(Symbol); ok && sym == "define" {
				def, err := parseDefine(lst)
				if err != nil {
					return nil, err
				}
				p.Defs = append(p.Defs, def)
				continue
			}
		}
		e, err := parseExpr(f)
		if err != nil {
			return nil, err
		}
		mainBody = append(mainBody, e)
	}
	if len(mainBody) == 0 {
		mainBody = []Expr{&Const{Value: false}}
	}
	p.Main = &Begin{Body: mainBody}
	return p, nil
}

func parseDefine(lst []Sexp) (*Def, error) {
	if len(lst) < 3 {
		return nil, fmt.Errorf("mult: malformed define %s", FormatSexp(lst))
	}
	switch head := lst[1].(type) {
	case Symbol:
		if len(lst) != 3 {
			return nil, fmt.Errorf("mult: define %s takes one value", head)
		}
		v, err := parseExpr(lst[2])
		if err != nil {
			return nil, err
		}
		if lam, ok := v.(*Lambda); ok {
			lam.Name = string(head)
		}
		return &Def{Name: head, Value: v}, nil
	case []Sexp:
		// (define (f a b) body...)
		if len(head) == 0 {
			return nil, fmt.Errorf("mult: malformed define %s", FormatSexp(lst))
		}
		name, ok := head[0].(Symbol)
		if !ok {
			return nil, fmt.Errorf("mult: procedure name must be a symbol in %s", FormatSexp(lst))
		}
		params, err := paramList(head[1:])
		if err != nil {
			return nil, err
		}
		body, err := parseBody(lst[2:])
		if err != nil {
			return nil, err
		}
		return &Def{Name: name, Value: &Lambda{Params: params, Body: body, Name: string(name)}}, nil
	default:
		return nil, fmt.Errorf("mult: malformed define %s", FormatSexp(lst))
	}
}

func paramList(ss []Sexp) ([]Symbol, error) {
	params := make([]Symbol, len(ss))
	seen := map[Symbol]bool{}
	for i, s := range ss {
		sym, ok := s.(Symbol)
		if !ok {
			return nil, fmt.Errorf("mult: parameter %s is not a symbol", FormatSexp(s))
		}
		if specialForms[sym] {
			return nil, fmt.Errorf("mult: %s cannot be a parameter", sym)
		}
		if seen[sym] {
			return nil, fmt.Errorf("mult: duplicate parameter %s", sym)
		}
		seen[sym] = true
		params[i] = sym
	}
	return params, nil
}

func parseBody(forms []Sexp) (Expr, error) {
	if len(forms) == 0 {
		return nil, fmt.Errorf("mult: empty body")
	}
	if len(forms) == 1 {
		return parseExpr(forms[0])
	}
	body := make([]Expr, len(forms))
	for i, f := range forms {
		e, err := parseExpr(f)
		if err != nil {
			return nil, err
		}
		body[i] = e
	}
	return &Begin{Body: body}, nil
}

func parseExpr(s Sexp) (Expr, error) {
	switch v := s.(type) {
	case int32, bool:
		return &Const{Value: v}, nil
	case string:
		return &Const{Value: v}, nil
	case Symbol:
		if specialForms[v] {
			return nil, fmt.Errorf("mult: %s used as a variable", v)
		}
		return &Var{Name: v}, nil
	case []Sexp:
		return parseForm(v)
	}
	return nil, fmt.Errorf("mult: cannot parse %v", s)
}

func parseForm(lst []Sexp) (Expr, error) {
	if len(lst) == 0 {
		return nil, fmt.Errorf("mult: empty application ()")
	}
	head, isSym := lst[0].(Symbol)
	if isSym {
		switch head {
		case "quote":
			if len(lst) != 2 {
				return nil, fmt.Errorf("mult: malformed quote")
			}
			return &Quote{Datum: lst[1]}, nil
		case "if":
			if len(lst) != 3 && len(lst) != 4 {
				return nil, fmt.Errorf("mult: malformed if %s", FormatSexp(lst))
			}
			c, err := parseExpr(lst[1])
			if err != nil {
				return nil, err
			}
			th, err := parseExpr(lst[2])
			if err != nil {
				return nil, err
			}
			var el Expr
			if len(lst) == 4 {
				el, err = parseExpr(lst[3])
				if err != nil {
					return nil, err
				}
			}
			return &If{Cond: c, Then: th, Else: el}, nil
		case "lambda":
			if len(lst) < 3 {
				return nil, fmt.Errorf("mult: malformed lambda")
			}
			plist, ok := lst[1].([]Sexp)
			if !ok {
				return nil, fmt.Errorf("mult: lambda needs a parameter list (no rest args)")
			}
			params, err := paramList(plist)
			if err != nil {
				return nil, err
			}
			body, err := parseBody(lst[2:])
			if err != nil {
				return nil, err
			}
			return &Lambda{Params: params, Body: body}, nil
		case "begin":
			return parseBody(lst[1:])
		case "set!":
			if len(lst) != 3 {
				return nil, fmt.Errorf("mult: malformed set!")
			}
			name, ok := lst[1].(Symbol)
			if !ok || specialForms[name] {
				return nil, fmt.Errorf("mult: set! target must be a variable")
			}
			v, err := parseExpr(lst[2])
			if err != nil {
				return nil, err
			}
			return &Set{Name: name, Value: v}, nil
		case "let":
			return parseLet(lst)
		case "let*":
			return parseLetStar(lst)
		case "letrec":
			return parseLetrec(lst)
		case "cond":
			return parseCond(lst)
		case "when", "unless":
			if len(lst) < 3 {
				return nil, fmt.Errorf("mult: malformed %s", head)
			}
			c, err := parseExpr(lst[1])
			if err != nil {
				return nil, err
			}
			body, err := parseBody(lst[2:])
			if err != nil {
				return nil, err
			}
			if head == "when" {
				return &If{Cond: c, Then: body}, nil
			}
			return &If{Cond: c, Then: &Const{Value: false}, Else: body}, nil
		case "and":
			return parseAndOr(lst[1:], true)
		case "or":
			return parseAndOr(lst[1:], false)
		case "future":
			if len(lst) != 2 {
				return nil, fmt.Errorf("mult: future takes one expression")
			}
			b, err := parseExpr(lst[1])
			if err != nil {
				return nil, err
			}
			return &Future{Body: b}, nil
		case "touch":
			if len(lst) != 2 {
				return nil, fmt.Errorf("mult: touch takes one expression")
			}
			b, err := parseExpr(lst[1])
			if err != nil {
				return nil, err
			}
			return &Touch{Body: b}, nil
		case "define":
			return nil, fmt.Errorf("mult: define only allowed at top level")
		}
	}
	// Application.
	fn, err := parseExpr(lst[0])
	if err != nil {
		return nil, err
	}
	args := make([]Expr, 0, len(lst)-1)
	for _, a := range lst[1:] {
		e, err := parseExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return &Call{Fn: fn, Args: args}, nil
}

func bindingsOf(s Sexp) (names []Symbol, inits []Sexp, err error) {
	lst, ok := s.([]Sexp)
	if !ok {
		return nil, nil, fmt.Errorf("mult: malformed binding list %s", FormatSexp(s))
	}
	for _, b := range lst {
		pair, ok := b.([]Sexp)
		if !ok || len(pair) != 2 {
			return nil, nil, fmt.Errorf("mult: malformed binding %s", FormatSexp(b))
		}
		name, ok := pair[0].(Symbol)
		if !ok || specialForms[name] {
			return nil, nil, fmt.Errorf("mult: bad binding name %s", FormatSexp(pair[0]))
		}
		names = append(names, name)
		inits = append(inits, pair[1])
	}
	return names, inits, nil
}

func parseLet(lst []Sexp) (Expr, error) {
	if len(lst) < 3 {
		return nil, fmt.Errorf("mult: malformed let")
	}
	// Named let: (let loop ((v init)...) body...)
	if name, ok := lst[1].(Symbol); ok {
		if specialForms[name] {
			return nil, fmt.Errorf("mult: bad loop name %s", name)
		}
		if len(lst) < 4 {
			return nil, fmt.Errorf("mult: malformed named let")
		}
		names, inits, err := bindingsOf(lst[2])
		if err != nil {
			return nil, err
		}
		body, err := parseBody(lst[3:])
		if err != nil {
			return nil, err
		}
		lam := &Lambda{Params: names, Body: body, Name: string(name)}
		initExprs := make([]Expr, len(inits))
		for i, in := range inits {
			e, err := parseExpr(in)
			if err != nil {
				return nil, err
			}
			initExprs[i] = e
		}
		return &Letrec{
			Names: []Symbol{name},
			Inits: []*Lambda{lam},
			Body:  &Call{Fn: &Var{Name: name}, Args: initExprs},
		}, nil
	}
	names, inits, err := bindingsOf(lst[1])
	if err != nil {
		return nil, err
	}
	body, err := parseBody(lst[2:])
	if err != nil {
		return nil, err
	}
	initExprs := make([]Expr, len(inits))
	for i, in := range inits {
		e, err := parseExpr(in)
		if err != nil {
			return nil, err
		}
		initExprs[i] = e
	}
	return &Let{Names: names, Inits: initExprs, Body: body}, nil
}

func parseLetStar(lst []Sexp) (Expr, error) {
	if len(lst) < 3 {
		return nil, fmt.Errorf("mult: malformed let*")
	}
	names, inits, err := bindingsOf(lst[1])
	if err != nil {
		return nil, err
	}
	body, err := parseBody(lst[2:])
	if err != nil {
		return nil, err
	}
	// Nest one let per binding.
	for i := len(names) - 1; i >= 0; i-- {
		init, err := parseExpr(inits[i])
		if err != nil {
			return nil, err
		}
		body = &Let{Names: []Symbol{names[i]}, Inits: []Expr{init}, Body: body}
	}
	return body, nil
}

func parseLetrec(lst []Sexp) (Expr, error) {
	if len(lst) < 3 {
		return nil, fmt.Errorf("mult: malformed letrec")
	}
	names, inits, err := bindingsOf(lst[1])
	if err != nil {
		return nil, err
	}
	body, err := parseBody(lst[2:])
	if err != nil {
		return nil, err
	}
	lams := make([]*Lambda, len(inits))
	for i, in := range inits {
		e, err := parseExpr(in)
		if err != nil {
			return nil, err
		}
		lam, ok := e.(*Lambda)
		if !ok {
			return nil, fmt.Errorf("mult: letrec initializers must be lambdas (got %s)", FormatSexp(inits[i]))
		}
		lam.Name = string(names[i])
		lams[i] = lam
	}
	return &Letrec{Names: names, Inits: lams, Body: body}, nil
}

func parseCond(lst []Sexp) (Expr, error) {
	clauses := lst[1:]
	if len(clauses) == 0 {
		return nil, fmt.Errorf("mult: empty cond")
	}
	var build func(i int) (Expr, error)
	build = func(i int) (Expr, error) {
		if i >= len(clauses) {
			return &Const{Value: false}, nil
		}
		cl, ok := clauses[i].([]Sexp)
		if !ok || len(cl) < 2 {
			return nil, fmt.Errorf("mult: malformed cond clause %s", FormatSexp(clauses[i]))
		}
		body, err := parseBody(cl[1:])
		if err != nil {
			return nil, err
		}
		if sym, ok := cl[0].(Symbol); ok && sym == "else" {
			if i != len(clauses)-1 {
				return nil, fmt.Errorf("mult: else must be the last cond clause")
			}
			return body, nil
		}
		cond, err := parseExpr(cl[0])
		if err != nil {
			return nil, err
		}
		rest, err := build(i + 1)
		if err != nil {
			return nil, err
		}
		return &If{Cond: cond, Then: body, Else: rest}, nil
	}
	return build(0)
}

func parseAndOr(forms []Sexp, isAnd bool) (Expr, error) {
	if len(forms) == 0 {
		return &Const{Value: isAnd}, nil
	}
	first, err := parseExpr(forms[0])
	if err != nil {
		return nil, err
	}
	if len(forms) == 1 {
		return first, nil
	}
	rest, err := parseAndOr(forms[1:], isAnd)
	if err != nil {
		return nil, err
	}
	if isAnd {
		return &If{Cond: first, Then: rest, Else: &Const{Value: false}}, nil
	}
	// (or a b): evaluate a once. Without the value in hand we accept
	// the double-evaluation-free form via a hidden let.
	tmp := Symbol("or-tmp%")
	return &Let{
		Names: []Symbol{tmp},
		Inits: []Expr{first},
		Body:  &If{Cond: &Var{Name: tmp}, Then: &Var{Name: tmp}, Else: rest},
	}, nil
}

// StripFutures rewrites the program replacing (future X) with X and
// (touch X) with X — the paper's "T seq" configuration: the same
// program compiled as purely sequential code.
func StripFutures(e Expr) Expr {
	switch v := e.(type) {
	case *Future:
		return StripFutures(v.Body)
	case *Touch:
		return StripFutures(v.Body)
	case *If:
		return &If{Cond: StripFutures(v.Cond), Then: StripFutures(v.Then), Else: stripMaybe(v.Else)}
	case *Begin:
		out := make([]Expr, len(v.Body))
		for i, b := range v.Body {
			out[i] = StripFutures(b)
		}
		return &Begin{Body: out}
	case *Let:
		inits := make([]Expr, len(v.Inits))
		for i, in := range v.Inits {
			inits[i] = StripFutures(in)
		}
		return &Let{Names: v.Names, Inits: inits, Body: StripFutures(v.Body)}
	case *Letrec:
		lams := make([]*Lambda, len(v.Inits))
		for i, l := range v.Inits {
			lams[i] = StripFutures(l).(*Lambda)
		}
		return &Letrec{Names: v.Names, Inits: lams, Body: StripFutures(v.Body)}
	case *Lambda:
		return &Lambda{Params: v.Params, Body: StripFutures(v.Body), Name: v.Name}
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = StripFutures(a)
		}
		return &Call{Fn: StripFutures(v.Fn), Args: args}
	case *Set:
		return &Set{Name: v.Name, Value: StripFutures(v.Value)}
	default:
		return e
	}
}

func stripMaybe(e Expr) Expr {
	if e == nil {
		return nil
	}
	return StripFutures(e)
}
