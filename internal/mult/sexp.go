// Package mult implements "Mul-T mini": a compiler and reference
// interpreter for the subset of Mul-T (the paper's extended Scheme,
// [16]) that the paper's benchmarks need — fixnums, booleans, pairs,
// vectors, strings, first-class procedures, and the future/touch
// constructs of Section 2.2. The compiler targets the APRIL instruction
// set; futures compile to eager task creation, lazy task creation
// markers, or (on the Encore baseline) software-checked sequences,
// depending on the compilation mode.
package mult

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Sexp is a parsed s-expression: one of Symbol, int32 (fixnum literal),
// bool, string (string literal), or []Sexp (a proper list). The reader
// has no dotted-pair syntax; quoted data is built from proper lists.
type Sexp interface{}

// Symbol is an identifier.
type Symbol string

// SrcError is a reader or parser error with a line number.
type SrcError struct {
	Line int
	Msg  string
}

func (e *SrcError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type reader struct {
	src  string
	pos  int
	line int
}

// ReadAll parses all top-level s-expressions in src.
func ReadAll(src string) ([]Sexp, error) {
	r := &reader{src: src, line: 1}
	var out []Sexp
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return out, nil
		}
		s, err := r.read()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (r *reader) errf(format string, args ...interface{}) error {
	return &SrcError{Line: r.line, Msg: fmt.Sprintf(format, args...)}
}

func (r *reader) skipSpace() {
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch {
		case c == ';':
			for r.pos < len(r.src) && r.src[r.pos] != '\n' {
				r.pos++
			}
		case c == '\n':
			r.line++
			r.pos++
		case unicode.IsSpace(rune(c)):
			r.pos++
		default:
			return
		}
	}
}

func (r *reader) read() (Sexp, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, r.errf("unexpected end of input")
	}
	c := r.src[r.pos]
	switch {
	case c == '(' || c == '[':
		close := byte(')')
		if c == '[' {
			close = ']'
		}
		r.pos++
		var list []Sexp
		for {
			r.skipSpace()
			if r.pos >= len(r.src) {
				return nil, r.errf("unterminated list")
			}
			if r.src[r.pos] == close {
				r.pos++
				return list, nil
			}
			if r.src[r.pos] == ')' || r.src[r.pos] == ']' {
				return nil, r.errf("mismatched close paren")
			}
			item, err := r.read()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
		}
	case c == ')' || c == ']':
		return nil, r.errf("unexpected close paren")
	case c == '\'':
		r.pos++
		q, err := r.read()
		if err != nil {
			return nil, err
		}
		return []Sexp{Symbol("quote"), q}, nil
	case c == '"':
		return r.readString()
	case c == '#':
		return r.readHash()
	default:
		return r.readAtom()
	}
}

func (r *reader) readString() (Sexp, error) {
	r.pos++ // opening quote
	var b strings.Builder
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch c {
		case '"':
			r.pos++
			return b.String(), nil
		case '\\':
			r.pos++
			if r.pos >= len(r.src) {
				return nil, r.errf("unterminated string escape")
			}
			switch r.src[r.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(r.src[r.pos])
			default:
				return nil, r.errf("unknown string escape \\%c", r.src[r.pos])
			}
			r.pos++
		case '\n':
			return nil, r.errf("newline in string literal")
		default:
			b.WriteByte(c)
			r.pos++
		}
	}
	return nil, r.errf("unterminated string")
}

func (r *reader) readHash() (Sexp, error) {
	if strings.HasPrefix(r.src[r.pos:], "#t") {
		r.pos += 2
		return true, nil
	}
	if strings.HasPrefix(r.src[r.pos:], "#f") {
		r.pos += 2
		return false, nil
	}
	return nil, r.errf("unknown # syntax")
}

func isDelim(c byte) bool {
	return c == '(' || c == ')' || c == '[' || c == ']' || c == ';' || c == '"' ||
		c == '\'' || unicode.IsSpace(rune(c))
}

func (r *reader) readAtom() (Sexp, error) {
	start := r.pos
	for r.pos < len(r.src) && !isDelim(r.src[r.pos]) {
		r.pos++
	}
	tok := r.src[start:r.pos]
	if tok == "" {
		return nil, r.errf("empty token")
	}
	// A fixnum literal?
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		if n < -(1<<29) || n >= 1<<29 {
			return nil, r.errf("fixnum literal %s out of 30-bit range", tok)
		}
		return int32(n), nil
	}
	if (tok[0] == '-' || tok[0] == '+') && len(tok) > 1 && tok[1] >= '0' && tok[1] <= '9' {
		return nil, r.errf("malformed number %q", tok)
	}
	return Symbol(tok), nil
}

// FormatSexp renders an s-expression back to source form (for error
// messages and tests).
func FormatSexp(s Sexp) string {
	switch v := s.(type) {
	case Symbol:
		return string(v)
	case int32:
		return strconv.FormatInt(int64(v), 10)
	case bool:
		if v {
			return "#t"
		}
		return "#f"
	case string:
		return strconv.Quote(v)
	case []Sexp:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = FormatSexp(e)
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
	return fmt.Sprintf("#[?%v]", s)
}
