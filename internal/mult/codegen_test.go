package mult

import (
	"strings"
	"testing"

	"april/internal/abi"
	"april/internal/heap"
	"april/internal/isa"
	"april/internal/mem"
)

func compileFor(t *testing.T, src string, mode Mode) *isa.Program {
	t.Helper()
	m := mem.New(8 << 20)
	h := heap.New(m, mem.NewArena(isa.HeapBase, 4<<20))
	prog, err := Compile(src, mode, h)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// listingOf returns the instructions of the named function.
func listingOf(t *testing.T, prog *isa.Program, name string) []isa.Inst {
	t.Helper()
	start, ok := prog.Symbols[name]
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	// The function extends to the next symbol (or the end).
	end := uint32(len(prog.Code))
	for _, addr := range prog.Symbols {
		if addr > start && addr < end {
			end = addr
		}
	}
	return prog.Code[start:end]
}

func countOps(code []isa.Inst, op isa.Opcode) int {
	n := 0
	for _, in := range code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestSelfTailCallCompilesToBranch(t *testing.T) {
	// A self-recursive tail call must not grow the stack: the loop
	// compiles to a backward branch, not jmpl.
	prog := compileFor(t, `
(define (count n acc)
  (if (= n 0) acc (count (- n 1) (+ acc 1))))
(count 10 0)`, Mode{HardwareFutures: true})
	code := listingOf(t, prog, "count")
	if n := countOps(code, isa.OpJmpl); n != 1 {
		// Exactly one jmpl: the epilogue return.
		t.Errorf("count has %d jmpl instructions, want 1 (tail call must be a branch)", n)
	}
	if countOps(code, isa.OpBa) == 0 {
		t.Error("no unconditional branch for the self tail call")
	}
}

func TestNonTailSelfCallUsesJmpl(t *testing.T) {
	prog := compileFor(t, `
(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
(fact 5)`, Mode{HardwareFutures: true})
	code := listingOf(t, prog, "fact")
	if n := countOps(code, isa.OpJmpl); n != 2 {
		t.Errorf("fact has %d jmpl instructions, want 2 (recursive call + return)", n)
	}
}

func TestLazyFutureEmitsMarkerSequence(t *testing.T) {
	prog := compileFor(t, `
(define (f n) (+ (future (f n)) 1))
(f 1)`, Mode{HardwareFutures: true, LazyFutures: true})
	code := listingOf(t, prog, "f")
	// The push/pop sequences address the TCB through RTP.
	tcbOps := 0
	for _, in := range code {
		if (in.Op == isa.OpLdnt || in.Op == isa.OpStnt) && in.Rs1 == isa.RTP {
			tcbOps++
		}
	}
	if tcbOps < 5 {
		t.Errorf("only %d TCB accesses; expected a marker push and pop", tcbOps)
	}
	// The stolen path traps SvcStolen.
	foundStolen := false
	for _, in := range code {
		if in.Op == isa.OpTrap && abi.TrapService(in.Imm) == abi.SvcStolen {
			foundStolen = true
		}
	}
	if !foundStolen {
		t.Error("no SvcStolen trap in the lazy future")
	}
	// And no eager task creation.
	for _, in := range code {
		if in.Op == isa.OpTrap && abi.TrapService(in.Imm) == abi.SvcFutureNew {
			t.Error("lazy compile emitted an eager task creation")
		}
	}
}

func TestEagerFutureEmitsTaskCreation(t *testing.T) {
	prog := compileFor(t, `
(define (f n) (+ (future (f n)) 1))
(f 1)`, Mode{HardwareFutures: true})
	foundNew := false
	for _, in := range prog.Code {
		if in.Op == isa.OpTrap && abi.TrapService(in.Imm) == abi.SvcFutureNew {
			foundNew = true
		}
	}
	if !foundNew {
		t.Error("no SvcFutureNew trap in eager mode")
	}
}

func TestEncoreModeEmitsSoftwareChecks(t *testing.T) {
	src := `(define (f a b) (+ a b)) (f 1 2)`
	hw := compileFor(t, src, Mode{HardwareFutures: true})
	sw := compileFor(t, src, Mode{HardwareFutures: false})
	countTouch := func(p *isa.Program) int {
		n := 0
		for _, in := range p.Code {
			if in.Op == isa.OpTrap && abi.TrapService(in.Imm) == abi.SvcTouchReg {
				n++
			}
		}
		return n
	}
	if countTouch(hw) != 0 {
		t.Error("hardware mode emitted software checks")
	}
	if countTouch(sw) == 0 {
		t.Error("Encore mode emitted no software checks")
	}
	if len(sw.Code) <= len(hw.Code) {
		t.Error("software checks should grow the code")
	}
}

func TestSequentialModeHasNoFutureTraps(t *testing.T) {
	prog := compileFor(t, `
(define (f n) (+ (future (f n)) 1))
(f 1)`, Mode{HardwareFutures: true, Sequential: true})
	for _, in := range prog.Code {
		if in.Op == isa.OpTrap {
			svc := abi.TrapService(in.Imm)
			if svc == abi.SvcFutureNew || svc == abi.SvcStolen {
				t.Errorf("sequential compile emitted future machinery (service %d)", svc)
			}
		}
	}
}

func TestDirectCallVsClosureCall(t *testing.T) {
	// A call to a known top-level procedure goes straight to its label;
	// calling a parameter goes through the closure's entry slot.
	prog := compileFor(t, `
(define (known x) x)
(define (caller f x) (f (known x)))
(caller known 1)`, Mode{HardwareFutures: true})
	code := listingOf(t, prog, "caller")
	absolute, indirect := 0, 0
	for _, in := range code {
		if in.Op == isa.OpJmpl && in.Rd == isa.RLink {
			if in.Rs1 == isa.RZero {
				absolute++
			} else {
				indirect++
			}
		}
	}
	if absolute != 1 || indirect != 1 {
		t.Errorf("caller: %d direct + %d indirect calls, want 1 + 1", absolute, indirect)
	}
}

func TestStubsAndEntry(t *testing.T) {
	prog := compileFor(t, `42`, Mode{HardwareFutures: true})
	te, ok1 := prog.Symbols[abi.SymTaskExit]
	me, ok2 := prog.Symbols[abi.SymMainExit]
	if !ok1 || !ok2 {
		t.Fatal("runtime stubs missing")
	}
	if prog.Code[te].Op != isa.OpTrap || abi.TrapService(prog.Code[te].Imm) != abi.SvcTaskExit {
		t.Error("task-exit stub wrong")
	}
	if prog.Code[me].Op != isa.OpTrap || abi.TrapService(prog.Code[me].Imm) != abi.SvcMainExit {
		t.Error("main-exit stub wrong")
	}
	if prog.Entry == 0 {
		t.Error("entry not set")
	}
	// The listing mentions main.
	if !strings.Contains(prog.Disassemble(), "main:") {
		t.Error("main symbol missing from listing")
	}
}

func TestQuotedDataInStaticHeap(t *testing.T) {
	m := mem.New(8 << 20)
	h := heap.New(m, mem.NewArena(isa.HeapBase, 4<<20))
	prog, err := Compile(`(car '(7 8 9))`, Mode{HardwareFutures: true}, h)
	if err != nil {
		t.Fatal(err)
	}
	// Some movi in the program must reference a cons-tagged pointer to
	// the static list.
	found := false
	for _, in := range prog.Code {
		if in.Op == isa.OpMovI && isa.IsCons(isa.Word(in.Imm)) {
			if car, err := h.Car(isa.Word(in.Imm)); err == nil && isa.FixnumValue(car) == 7 {
				found = true
			}
		}
	}
	if !found {
		t.Error("quoted list not materialized in the static heap")
	}
}

func TestSymbolInterning(t *testing.T) {
	m := mem.New(8 << 20)
	h := heap.New(m, mem.NewArena(isa.HeapBase, 4<<20))
	prog, err := Compile(`(eq? 'sym 'sym)`, Mode{HardwareFutures: true}, h)
	if err != nil {
		t.Fatal(err)
	}
	// Both quotes must load the SAME interned pointer.
	var ptrs []isa.Word
	for _, in := range prog.Code {
		if in.Op == isa.OpMovI && isa.IsOther(isa.Word(in.Imm)) && isa.IsPointer(isa.Word(in.Imm)) {
			if s, err := h.BytesOf(isa.Word(in.Imm)); err == nil && s == "sym" {
				ptrs = append(ptrs, isa.Word(in.Imm))
			}
		}
	}
	if len(ptrs) != 2 || ptrs[0] != ptrs[1] {
		t.Errorf("symbol not interned: %v", ptrs)
	}
}

func TestTooManyParamsRejected(t *testing.T) {
	m := mem.New(8 << 20)
	h := heap.New(m, mem.NewArena(isa.HeapBase, 4<<20))
	if _, err := Compile(`(define (f a b c d e g h) a) (f 1 2 3 4 5 6 7)`,
		Mode{HardwareFutures: true}, h); err == nil {
		t.Error("7-parameter procedure accepted (limit is 6 argument registers)")
	}
}
