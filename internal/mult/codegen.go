package mult

import (
	"fmt"

	"april/internal/abi"
	"april/internal/heap"
	"april/internal/isa"
)

// Register roles used by generated code (see package abi for the frame
// and TCB layouts).
const (
	regAcc = isa.RTmp0     // r16: expression accumulator
	regT1  = isa.RTmp0 + 1 // r17: scratch
	regT2  = isa.RTmp0 + 2 // r18: scratch (allocation base)
	regT3  = isa.RTmp0 + 3 // r19: scratch
)

// fixupKind distinguishes how a label reference patches an immediate.
type fixupKind uint8

const (
	fixBranch fixupKind = iota // PC-relative branch offset
	fixAbs                     // absolute instruction address
	fixFixnum                  // fixnum-tagged absolute address (movi)
)

type fixup struct {
	at    int
	label int
	kind  fixupKind
}

type asmBuilder struct {
	code   []isa.Inst
	fixups []fixup
	labels []int // label id -> pc (-1 = unbound)
}

func (a *asmBuilder) newLabel() int {
	a.labels = append(a.labels, -1)
	return len(a.labels) - 1
}

func (a *asmBuilder) bind(l int) {
	a.labels[l] = len(a.code)
}

func (a *asmBuilder) emit(i isa.Inst) int {
	a.code = append(a.code, i)
	return len(a.code) - 1
}

func (a *asmBuilder) branch(op isa.Opcode, label int) {
	at := a.emit(isa.Br(op, 0))
	a.fixups = append(a.fixups, fixup{at: at, label: label, kind: fixBranch})
}

func (a *asmBuilder) jmplTo(rd uint8, label int) {
	at := a.emit(isa.Jmpl(rd, isa.RZero, 0))
	a.fixups = append(a.fixups, fixup{at: at, label: label, kind: fixAbs})
}

func (a *asmBuilder) moviLabelFixnum(rd uint8, label int) {
	at := a.emit(isa.MovI(rd, 0))
	a.fixups = append(a.fixups, fixup{at: at, label: label, kind: fixFixnum})
}

func (a *asmBuilder) patch() error {
	for _, f := range a.fixups {
		pc := a.labels[f.label]
		if pc < 0 {
			return fmt.Errorf("mult: unbound label %d", f.label)
		}
		switch f.kind {
		case fixBranch:
			a.code[f.at].Imm = int32(pc - f.at)
		case fixAbs:
			a.code[f.at].Imm = int32(pc)
		case fixFixnum:
			a.code[f.at].Imm = int32(isa.MakeFixnum(int32(pc)))
		}
	}
	return nil
}

// compiler drives code generation for one program.
type compiler struct {
	mode        Mode
	heap        *heap.Heap
	asm         asmBuilder
	prog        *Program
	globalsBase uint32
	symbols     map[Symbol]isa.Word
	lamLabels   map[*Lambda]int
	symtab      map[string]uint32
}

// CompileResolved generates code for a resolved program into the given
// static heap.
func CompileResolved(p *Program, mode Mode, h *heap.Heap) (*isa.Program, error) {
	c := &compiler{
		mode:      mode,
		heap:      h,
		prog:      p,
		symbols:   map[Symbol]isa.Word{},
		lamLabels: map[*Lambda]int{},
		symtab:    map[string]uint32{},
	}
	// Global variable slots in static memory.
	if n := len(p.Defs); n > 0 {
		base := h.Arena.Alloc(uint32(4 * n))
		if base == 0 {
			return nil, fmt.Errorf("mult: static arena exhausted for %d globals", n)
		}
		c.globalsBase = base
	}

	// Runtime stubs.
	taskExit := c.asm.newLabel()
	mainExit := c.asm.newLabel()
	c.asm.bind(taskExit)
	c.symtab[abi.SymTaskExit] = uint32(len(c.asm.code))
	c.asm.emit(isa.Trap(abi.TrapImm(abi.SvcTaskExit, 0, 0)))
	c.asm.emit(isa.Halt)
	c.asm.bind(mainExit)
	c.symtab[abi.SymMainExit] = uint32(len(c.asm.code))
	c.asm.emit(isa.Trap(abi.TrapImm(abi.SvcMainExit, 0, 0)))
	c.asm.emit(isa.Halt)

	// Pre-create entry labels so forward calls resolve.
	for _, lam := range p.Lambdas {
		c.lamLabels[lam] = c.asm.newLabel()
	}
	for _, lam := range p.Lambdas {
		if err := c.fn(lam); err != nil {
			name := lam.Name
			if name == "" {
				name = "<lambda>"
			}
			return nil, fmt.Errorf("mult: compiling %s: %w", name, err)
		}
	}
	if err := c.asm.patch(); err != nil {
		return nil, err
	}

	out := &isa.Program{
		Code:    c.asm.code,
		Entry:   uint32(c.asm.labels[c.lamLabels[p.Lambdas[0]]]),
		Symbols: c.symtab,
	}
	return out, nil
}

// Compile parses, resolves and compiles source text (with the prelude)
// for the given mode, building static data in h.
func Compile(src string, mode Mode, h *heap.Heap) (*isa.Program, error) {
	forms, err := ReadAll(Prelude + "\n" + src)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(forms)
	if err != nil {
		return nil, err
	}
	if _, err := Resolve(prog, mode); err != nil {
		return nil, err
	}
	return CompileResolved(prog, mode, h)
}

func (c *compiler) globalAddr(b *Binding) int32 {
	return int32(c.globalsBase + uint32(4*b.Slot))
}

// fnCtx is per-lambda code generation state.
type fnCtx struct {
	c       *compiler
	lam     *Lambda
	slots   int   // next free frame slot (monotonic; never reused)
	body    int   // label of the post-prologue body (self-tail-call target)
	sizeAts []int // instruction indices needing the final frame size
}

func slotOff(s int) int32 { return int32(abi.FrameLocalsOff + 4*s) }

func (f *fnCtx) newSlot() int {
	s := f.slots
	f.slots++
	return s
}

func (c *compiler) fn(lam *Lambda) error {
	if len(lam.Params) > isa.NumArgRegs {
		return fmt.Errorf("procedures take at most %d parameters, got %d", isa.NumArgRegs, len(lam.Params))
	}
	f := &fnCtx{c: c, lam: lam, slots: lam.NLocals}
	a := &c.asm
	a.bind(c.lamLabels[lam])
	if lam.Name != "" {
		c.symtab[lam.Name] = uint32(len(a.code))
	}

	// Prologue: push frame, save fp/link/clos, spill parameters.
	f.sizeAts = append(f.sizeAts, a.emit(isa.RI(isa.OpRawSub, isa.RSP, isa.RSP, 0)))
	a.emit(isa.St(isa.OpStnt, isa.RSP, abi.FrameSavedFPOff, isa.RFP))
	a.emit(isa.St(isa.OpStnt, isa.RSP, abi.FrameSavedLinkOff, isa.RLink))
	a.emit(isa.St(isa.OpStnt, isa.RSP, abi.FrameSavedClosOff, isa.RClos))
	a.emit(isa.RI(isa.OpRawAdd, isa.RFP, isa.RSP, 0))
	for i, pb := range lam.ParamBinds {
		argReg := uint8(isa.RArg0 + i)
		if pb.Boxed {
			f.emitAllocCell(argReg)
			a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(pb.Slot), regT2))
		} else {
			a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(pb.Slot), argReg))
		}
	}

	f.body = a.newLabel()
	a.bind(f.body)
	if err := f.expr(lam.Body, true); err != nil {
		return err
	}

	// Epilogue.
	a.emit(isa.RI(isa.OpRawAdd, isa.RArg0, regAcc, 0))
	a.emit(isa.Ld(isa.OpLdnt, isa.RLink, isa.RFP, abi.FrameSavedLinkOff))
	a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, abi.FrameSavedFPOff))
	f.sizeAts = append(f.sizeAts, a.emit(isa.RI(isa.OpRawAdd, isa.RSP, isa.RFP, 0)))
	a.emit(isa.RI(isa.OpRawAdd, isa.RFP, regT1, 0))
	a.emit(isa.Jmpl(isa.RZero, isa.RLink, 0))

	// Patch the frame size now that the slot count is final.
	frameSize := int32((abi.FrameLocalsOff + 4*f.slots + 7) &^ 7)
	for _, at := range f.sizeAts {
		a.code[at].Imm = frameSize
	}
	return nil
}

// emitAllocFixed emits an inline bump allocation of size bytes
// (rounded to 8); the raw object base lands in regT2. g0 is the
// allocation pointer, g1 the limit; overflow traps to the runtime for
// a fresh chunk.
func (f *fnCtx) emitAllocFixed(size int) {
	a := &f.c.asm
	size = (size + 7) &^ 7
	a.emit(isa.RI(isa.OpRawAdd, regT2, isa.GAllocPtr, 0))
	a.emit(isa.RI(isa.OpRawAdd, isa.GAllocPtr, isa.GAllocPtr, int32(size)))
	a.emit(isa.R3(isa.OpSubCC, isa.RZero, isa.GAllocLimit, isa.GAllocPtr))
	a.emit(isa.Br(isa.OpBcc, 2)) // limit >= alloc pointer: fits
	a.emit(isa.Trap(abi.TrapImm(abi.SvcAllocRefill, regT2, size)))
}

// emitAllocCell boxes the value in reg valReg into a fresh cell; the
// tagged cell pointer lands in regT2.
func (f *fnCtx) emitAllocCell(valReg uint8) {
	a := &f.c.asm
	f.emitAllocFixed(8)
	a.emit(isa.MovI(regT1, isa.Word(1<<abi.HeaderShift|abi.KindCell)))
	a.emit(isa.St(isa.OpStnt, regT2, 0, regT1))
	a.emit(isa.St(isa.OpStnt, regT2, abi.CellValueOff, valReg))
	a.emit(isa.RI(isa.OpRawAdd, regT2, regT2, int32(isa.OtherTag)))
}

// emitCheck emits the Encore-style software future check on reg —
// extract the tag bit, compare, branch around the resolving trap —
// three cycles on the common non-future path. These compiled-in checks
// before every strict operation are the source of the Encore's
// "close to a factor of two loss in performance" on sequential code
// (Section 7).
func (f *fnCtx) emitCheck(reg uint8) {
	if f.c.mode.HardwareFutures {
		return
	}
	a := &f.c.asm
	a.emit(isa.RI(isa.OpRawAnd, regT3, reg, 1))
	a.emit(isa.RI(isa.OpSubCC, isa.RZero, regT3, 1))
	a.emit(isa.Br(isa.OpBne, 2))
	a.emit(isa.Trap(abi.TrapImm(abi.SvcTouchReg, int(reg), 0)))
}

// emitTouch forces the value in reg: on APRIL a single strict no-op
// triggers the hardware future trap; on the Encore it is the software
// check.
func (f *fnCtx) emitTouch(reg uint8) {
	if f.c.mode.HardwareFutures {
		f.c.asm.emit(isa.R3(isa.OpOr, reg, reg, isa.RZero))
		return
	}
	f.emitCheck(reg)
}

// isSimple reports whether e can be (re)loaded into any register
// without disturbing the accumulator or having effects.
func isSimple(e Expr) bool {
	switch v := e.(type) {
	case *Const, *Quote:
		return true
	case *Var:
		// Free-variable loads go through RClos which is always valid;
		// global and local loads are single instructions.
		_ = v
		return true
	}
	return false
}

// loadSimple materializes a simple expression into reg.
func (f *fnCtx) loadSimple(e Expr, reg uint8) error {
	a := &f.c.asm
	switch v := e.(type) {
	case *Const:
		w, err := f.c.constWord(v.Value)
		if err != nil {
			return err
		}
		a.emit(isa.MovI(reg, w))
	case *Quote:
		w, err := f.c.quoteWord(v.Datum)
		if err != nil {
			return err
		}
		a.emit(isa.MovI(reg, w))
	case *Var:
		f.loadBinding(v.Bind, reg)
	default:
		return fmt.Errorf("loadSimple of non-simple %T", e)
	}
	return nil
}

// loadBinding loads the value of binding b into reg.
func (f *fnCtx) loadBinding(b *Binding, reg uint8) {
	a := &f.c.asm
	switch b.Kind {
	case BindGlobal:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RZero, f.c.globalAddr(b)))
	case BindLocal:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RFP, slotOff(b.Slot)))
		if b.Boxed {
			a.emit(isa.Ld(isa.OpLdnt, reg, reg, abi.CellValueOff-int32(isa.OtherTag)))
		}
	case BindFree:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RClos, int32(abi.ClosCapOff+4*b.Slot)-int32(isa.OtherTag)))
		if b.Boxed {
			a.emit(isa.Ld(isa.OpLdnt, reg, reg, abi.CellValueOff-int32(isa.OtherTag)))
		}
	}
}

// storeBinding stores reg into binding b.
func (f *fnCtx) storeBinding(b *Binding, reg uint8) error {
	a := &f.c.asm
	switch b.Kind {
	case BindGlobal:
		a.emit(isa.St(isa.OpStnt, isa.RZero, f.c.globalAddr(b), reg))
	case BindLocal:
		if b.Boxed {
			a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(b.Slot)))
			a.emit(isa.St(isa.OpStnt, regT1, abi.CellValueOff-int32(isa.OtherTag), reg))
		} else {
			a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(b.Slot), reg))
		}
	case BindFree:
		if !b.Boxed {
			return fmt.Errorf("set! of captured unboxed variable %s", b.Name)
		}
		a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RClos, int32(abi.ClosCapOff+4*b.Slot)-int32(isa.OtherTag)))
		a.emit(isa.St(isa.OpStnt, regT1, abi.CellValueOff-int32(isa.OtherTag), reg))
	}
	return nil
}

// constWord converts a literal to its machine word.
func (c *compiler) constWord(v Sexp) (isa.Word, error) {
	switch x := v.(type) {
	case int32:
		return isa.MakeFixnum(x), nil
	case bool:
		return isa.MakeBool(x), nil
	case string:
		return c.heap.NewString(x)
	}
	return 0, fmt.Errorf("bad literal %v", v)
}

// quoteWord builds quoted data in the static heap.
func (c *compiler) quoteWord(d Sexp) (isa.Word, error) {
	switch x := d.(type) {
	case int32:
		return isa.MakeFixnum(x), nil
	case bool:
		return isa.MakeBool(x), nil
	case string:
		return c.heap.NewString(x)
	case Symbol:
		if w, ok := c.symbols[x]; ok {
			return w, nil
		}
		w, err := c.heap.NewSymbol(string(x))
		if err != nil {
			return 0, err
		}
		c.symbols[x] = w
		return w, nil
	case []Sexp:
		out := isa.Nil
		for i := len(x) - 1; i >= 0; i-- {
			cw, err := c.quoteWord(x[i])
			if err != nil {
				return 0, err
			}
			out, err = c.heap.Cons(cw, out)
			if err != nil {
				return 0, err
			}
		}
		return out, nil
	}
	return 0, fmt.Errorf("bad quoted datum %v", d)
}

// expr compiles e; the result lands in regAcc.
func (f *fnCtx) expr(e Expr, tail bool) error {
	a := &f.c.asm
	switch v := e.(type) {
	case *Const, *Quote:
		return f.loadSimple(e, regAcc)

	case *Var:
		f.loadBinding(v.Bind, regAcc)
		return nil

	case *Set:
		if err := f.expr(v.Value, false); err != nil {
			return err
		}
		if err := f.storeBinding(v.Bind, regAcc); err != nil {
			return err
		}
		a.emit(isa.MovI(regAcc, isa.Unspec))
		return nil

	case *Begin:
		for i, b := range v.Body {
			if err := f.expr(b, tail && i == len(v.Body)-1); err != nil {
				return err
			}
		}
		return nil

	case *If:
		return f.ifExpr(v, tail)

	case *Let:
		for i, init := range v.Inits {
			if err := f.expr(init, false); err != nil {
				return err
			}
			b := v.Binds[i]
			if b.Boxed {
				f.emitAllocCell(regAcc)
				a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(b.Slot), regT2))
			} else {
				a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(b.Slot), regAcc))
			}
		}
		return f.expr(v.Body, tail)

	case *Letrec:
		// Allocate empty cells first, then fill them with the closures
		// so mutual references work.
		for _, b := range v.Binds {
			a.emit(isa.MovI(regT1, isa.Unspec))
			f.emitAllocCell(regT1)
			a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(b.Slot), regT2))
		}
		for i, lam := range v.Inits {
			if err := f.makeClosure(lam); err != nil {
				return err
			}
			a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(v.Binds[i].Slot)))
			a.emit(isa.St(isa.OpStnt, regT1, abi.CellValueOff-int32(isa.OtherTag), regAcc))
		}
		return f.expr(v.Body, tail)

	case *Lambda:
		return f.makeClosure(v)

	case *Call:
		return f.call(v, tail)

	case *Prim:
		return f.prim(v)

	case *Future:
		if v.Thunk != nil {
			return f.eagerFuture(v)
		}
		return f.lazyFuture(v)

	case *Touch:
		if err := f.expr(v.Body, false); err != nil {
			return err
		}
		f.emitTouch(regAcc)
		return nil
	}
	return fmt.Errorf("cannot compile %T", e)
}

// makeClosure allocates a closure for lam, capturing its free
// variables; the tagged closure lands in regAcc.
func (f *fnCtx) makeClosure(lam *Lambda) error {
	a := &f.c.asm
	n := len(lam.Free)
	f.emitAllocFixed(abi.ClosCapOff + 4*n)
	a.emit(isa.MovI(regT1, isa.Word(uint32(n)<<abi.HeaderShift|abi.KindClosure)))
	a.emit(isa.St(isa.OpStnt, regT2, abi.ClosHeaderOff, regT1))
	a.moviLabelFixnum(regT1, f.c.lamLabels[lam])
	a.emit(isa.St(isa.OpStnt, regT2, abi.ClosEntryOff, regT1))
	for i, fb := range lam.Free {
		if fb.Outer == nil {
			return fmt.Errorf("free binding %s has no outer binding", fb.Name)
		}
		f.loadCaptured(fb.Outer, regT1)
		a.emit(isa.St(isa.OpStnt, regT2, int32(abi.ClosCapOff+4*i), regT1))
	}
	a.emit(isa.RI(isa.OpRawAdd, regAcc, regT2, int32(isa.OtherTag)))
	return nil
}

// loadCaptured loads the raw slot content of binding b (the cell
// pointer for boxed bindings, the value otherwise) into reg.
func (f *fnCtx) loadCaptured(b *Binding, reg uint8) {
	a := &f.c.asm
	switch b.Kind {
	case BindLocal:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RFP, slotOff(b.Slot)))
	case BindFree:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RClos, int32(abi.ClosCapOff+4*b.Slot)-int32(isa.OtherTag)))
	case BindGlobal:
		a.emit(isa.Ld(isa.OpLdnt, reg, isa.RZero, f.c.globalAddr(b)))
	}
}

// reloadClos refreshes RClos from the frame after a call if this
// function needs it.
func (f *fnCtx) reloadClos() {
	if len(f.lam.Free) > 0 {
		f.c.asm.emit(isa.Ld(isa.OpLdnt, isa.RClos, isa.RFP, abi.FrameSavedClosOff))
	}
}

// selfTarget reports whether binding b (following capture chains)
// denotes this function for self-tail-calls.
func (f *fnCtx) selfTarget(b *Binding) bool {
	if f.lam.SelfBind == nil {
		return false
	}
	root := b
	for root != nil && root.Outer != nil {
		root = root.Outer
	}
	return root == f.lam.SelfBind
}

func (f *fnCtx) call(v *Call, tail bool) error {
	a := &f.c.asm

	// Direct call to a known top-level procedure?
	var direct *Lambda
	if vr, ok := v.Fn.(*Var); ok {
		direct = f.c.prog.DirectLambda(vr.Bind)
		// Self tail call (either via a letrec self binding or direct
		// recursion on a global): jump back to the body.
		isSelf := (direct == f.lam) || f.selfTarget(vr.Bind)
		if tail && isSelf && len(v.Args) == len(f.lam.Params) && !f.anyBoxedParam() {
			return f.selfTailCall(v.Args)
		}
	}

	// Evaluate non-simple arguments left to right into fresh slots.
	type argLoc struct {
		slot   int // -1 = simple, reload directly
		simple Expr
	}
	locs := make([]argLoc, len(v.Args))
	for i, arg := range v.Args {
		if isSimple(arg) {
			locs[i] = argLoc{slot: -1, simple: arg}
			continue
		}
		if err := f.expr(arg, false); err != nil {
			return err
		}
		s := f.newSlot()
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(s), regAcc))
		locs[i] = argLoc{slot: s}
	}

	var fnSlot = -1
	if direct == nil {
		if err := f.expr(v.Fn, false); err != nil {
			return err
		}
		fnSlot = f.newSlot()
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(fnSlot), regAcc))
	}

	// Marshal arguments.
	if len(v.Args) > isa.NumArgRegs {
		return fmt.Errorf("calls take at most %d arguments, got %d", isa.NumArgRegs, len(v.Args))
	}
	for i, loc := range locs {
		argReg := uint8(isa.RArg0 + i)
		if loc.slot >= 0 {
			a.emit(isa.Ld(isa.OpLdnt, argReg, isa.RFP, slotOff(loc.slot)))
		} else if err := f.loadSimple(loc.simple, argReg); err != nil {
			return err
		}
	}

	if direct != nil {
		a.jmplTo(isa.RLink, f.c.lamLabels[direct])
	} else {
		a.emit(isa.Ld(isa.OpLdnt, isa.RClos, isa.RFP, slotOff(fnSlot)))
		// A closure is "other"-tagged; dereferencing a future here
		// triggers the address trap (implicit touch); a non-procedure
		// gives an alignment trap or garbage — compiled unchecked, as
		// discussed in DESIGN.md.
		f.emitCheck(isa.RClos)
		a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RClos, abi.ClosEntryOff-int32(isa.OtherTag)))
		a.emit(isa.Jmpl(isa.RLink, regT1, 0))
	}
	a.emit(isa.RI(isa.OpRawAdd, regAcc, isa.RArg0, 0))
	f.reloadClos()
	return nil
}

func (f *fnCtx) anyBoxedParam() bool {
	for _, pb := range f.lam.ParamBinds {
		if pb.Boxed {
			return true
		}
	}
	return false
}

// selfTailCall updates the parameter slots and jumps to the body.
func (f *fnCtx) selfTailCall(args []Expr) error {
	a := &f.c.asm
	// Evaluate all arguments before overwriting any parameter (they
	// may reference the old parameters).
	tmp := make([]int, len(args))
	for i, arg := range args {
		if err := f.expr(arg, false); err != nil {
			return err
		}
		tmp[i] = f.newSlot()
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(tmp[i]), regAcc))
	}
	for i, pb := range f.lam.ParamBinds {
		a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(tmp[i])))
		a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(pb.Slot), regT1))
	}
	a.branch(isa.OpBa, f.body)
	return nil
}

// eagerFuture compiles (future X) as thunk creation plus the
// task-creation syscall (the paper's "normal task creation").
func (f *fnCtx) eagerFuture(v *Future) error {
	a := &f.c.asm
	if err := f.makeClosure(v.Thunk); err != nil {
		return err
	}
	a.emit(isa.RI(isa.OpRawAdd, isa.RArg0, regAcc, 0))
	a.emit(isa.Trap(abi.TrapImm(abi.SvcFutureNew, 0, 0)))
	a.emit(isa.RI(isa.OpRawAdd, regAcc, isa.RArg0, 0))
	f.reloadClos()
	return nil
}

// lazyFuture compiles (future X) as lazy task creation (Section 3.2,
// [17]): push a stealable marker, evaluate X inline, pop the marker.
// If the marker was stolen, an idle processor owns the continuation:
// resolve its future with X's value and retire this thread.
//
// Each future site reserves a status slot in the frame. A thief stamps
// the future it creates into that slot, which makes the pop check work
// even for a continuation thread that inherits the pop of an ancestor
// marker it never pushed (its copied frame carries the stamp): the
// deque index comparison routes it to the stolen path and the slot
// supplies the future.
func (f *fnCtx) lazyFuture(v *Future) error {
	a := &f.c.asm
	cont := a.newLabel()
	status := f.newSlot()

	// Push the marker {resume PC, sp, status slot address}.
	a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RTP, abi.TCBTopOff))
	a.emit(isa.RI(isa.OpRawAdd, regT2, isa.RTP, abi.TCBBytes)) // deque end
	a.emit(isa.R3(isa.OpSubCC, isa.RZero, regT1, regT2))
	a.emit(isa.Br(isa.OpBcs, 2)) // top < end: fits
	a.emit(isa.Trap(abi.TrapImm(abi.SvcError, abi.ErrDequeFull, 0)))
	a.moviLabelFixnum(regT2, cont)
	a.emit(isa.St(isa.OpStnt, regT1, abi.MarkerPCOff, regT2))
	a.emit(isa.St(isa.OpStnt, regT1, abi.MarkerSPOff, isa.RSP))
	a.emit(isa.RI(isa.OpRawAdd, regT3, isa.RFP, slotOff(status)))
	a.emit(isa.St(isa.OpStnt, regT1, abi.MarkerStatusOff, regT3))
	a.emit(isa.RI(isa.OpRawAdd, regT1, regT1, abi.MarkerBytes))
	a.emit(isa.St(isa.OpStnt, isa.RTP, abi.TCBTopOff, regT1))

	// Evaluate the body inline in this frame.
	if err := f.expr(v.Body, false); err != nil {
		return err
	}

	// Pop: remove the newest entry, then compare against bot. top >= bot
	// means the entry removed was ours (a thief takes the OLDEST entry
	// and advances bot, so a stolen marker leaves top < bot — including
	// the inherited-pop case, where top underflows an empty deque just
	// before this thread retires).
	a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RTP, abi.TCBTopOff))
	a.emit(isa.RI(isa.OpRawSub, regT1, regT1, abi.MarkerBytes))
	a.emit(isa.St(isa.OpStnt, isa.RTP, abi.TCBTopOff, regT1))
	a.emit(isa.Ld(isa.OpLdnt, regT2, isa.RTP, abi.TCBBotOff))
	a.emit(isa.R3(isa.OpSubCC, isa.RZero, regT1, regT2))
	a.branch(isa.OpBcc, cont) // top >= bot: ours; value stays in regAcc
	// Stolen: the status slot holds the future; resolve it and retire.
	a.emit(isa.Ld(isa.OpLdnt, isa.RArg0, isa.RFP, slotOff(status)))
	a.emit(isa.RI(isa.OpRawAdd, isa.RArg0+1, regAcc, 0))
	a.emit(isa.Trap(abi.TrapImm(abi.SvcStolen, 0, 0)))
	a.bind(cont)
	// A thief enters here with the future in regAcc and registers
	// rebuilt from the marker; refresh RClos in either case.
	f.reloadClos()
	return nil
}

func (f *fnCtx) ifExpr(v *If, tail bool) error {
	a := &f.c.asm
	lElse := a.newLabel()
	lEnd := a.newLabel()
	if err := f.condBranchFalse(v.Cond, lElse); err != nil {
		return err
	}
	if err := f.expr(v.Then, tail); err != nil {
		return err
	}
	a.branch(isa.OpBa, lEnd)
	a.bind(lElse)
	if v.Else != nil {
		if err := f.expr(v.Else, tail); err != nil {
			return err
		}
	} else {
		a.emit(isa.MovI(regAcc, isa.Unspec))
	}
	a.bind(lEnd)
	return nil
}

// invCond maps a comparison primitive to the branch taken when the
// comparison is FALSE.
var invCond = map[Symbol]isa.Opcode{
	"=": isa.OpBne, "<": isa.OpBge, ">": isa.OpBle, "<=": isa.OpBg, ">=": isa.OpBl,
}

// condBranchFalse compiles cond and branches to target when it is
// false, fusing comparisons into the branch.
func (f *fnCtx) condBranchFalse(cond Expr, target int) error {
	a := &f.c.asm
	if p, ok := cond.(*Prim); ok {
		if inv, isCmp := invCond[p.Name]; isCmp {
			ra, rb, imm, useImm, err := f.binaryOperands(p.Args[0], p.Args[1])
			if err != nil {
				return err
			}
			if useImm {
				a.emit(isa.RI(isa.OpSubCC, isa.RZero, ra, imm))
			} else {
				a.emit(isa.R3(isa.OpSubCC, isa.RZero, ra, rb))
			}
			a.branch(inv, target)
			return nil
		}
		switch p.Name {
		case "zero?":
			if err := f.unaryOperand(p.Args[0]); err != nil {
				return err
			}
			a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, 0))
			a.branch(isa.OpBne, target)
			return nil
		case "null?":
			if err := f.unaryOperand(p.Args[0]); err != nil {
				return err
			}
			a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, int32(isa.Nil)))
			a.branch(isa.OpBne, target)
			return nil
		case "not":
			// (if (not x) a b) == (if x b a): branch to target when x
			// is TRUE.
			inner := f.c.asm.newLabel()
			if err := f.condBranchFalse(p.Args[0], inner); err != nil {
				return err
			}
			a.branch(isa.OpBa, target)
			a.bind(inner)
			return nil
		case "eq?":
			ra, rb, imm, useImm, err := f.binaryOperands(p.Args[0], p.Args[1])
			if err != nil {
				return err
			}
			if useImm {
				a.emit(isa.RI(isa.OpSubCC, isa.RZero, ra, imm))
			} else {
				a.emit(isa.R3(isa.OpSubCC, isa.RZero, ra, rb))
			}
			a.branch(isa.OpBne, target)
			return nil
		}
	}
	// Generic: false iff the value is #f.
	if err := f.expr(cond, false); err != nil {
		return err
	}
	f.emitCheck(regAcc)
	a.emit(isa.RI(isa.OpSubCC, isa.RZero, regAcc, int32(isa.False)))
	a.branch(isa.OpBe, target)
	return nil
}

// unaryOperand compiles a prim's single operand into regAcc with a
// software check when needed.
func (f *fnCtx) unaryOperand(e Expr) error {
	if err := f.expr(e, false); err != nil {
		return err
	}
	f.emitCheck(regAcc)
	return nil
}

// binaryOperands compiles two operands left to right. It returns the
// register holding the first operand and either a register or an
// immediate for the second. Software future checks are emitted on
// register operands.
func (f *fnCtx) binaryOperands(x, y Expr) (ra, rb uint8, imm int32, useImm bool, err error) {
	a := &f.c.asm
	// Immediate fast path for fixnum/boolean/nil literals on the right.
	if c, ok := y.(*Const); ok {
		if w, werr := immWord(c.Value); werr == nil {
			if err := f.expr(x, false); err != nil {
				return 0, 0, 0, false, err
			}
			f.emitCheck(regAcc)
			return regAcc, 0, int32(w), true, nil
		}
	}
	if isSimple(y) {
		if err := f.expr(x, false); err != nil {
			return 0, 0, 0, false, err
		}
		f.emitCheck(regAcc)
		if err := f.loadSimple(y, regT1); err != nil {
			return 0, 0, 0, false, err
		}
		f.emitCheck(regT1)
		return regAcc, regT1, 0, false, nil
	}
	// General case: spill the first operand across the second.
	if err := f.expr(x, false); err != nil {
		return 0, 0, 0, false, err
	}
	s := f.newSlot()
	a.emit(isa.St(isa.OpStnt, isa.RFP, slotOff(s), regAcc))
	if err := f.expr(y, false); err != nil {
		return 0, 0, 0, false, err
	}
	a.emit(isa.Ld(isa.OpLdnt, regT1, isa.RFP, slotOff(s)))
	f.emitCheck(regT1)
	f.emitCheck(regAcc)
	return regT1, regAcc, 0, false, nil
}

// immWord converts a literal usable as an instruction immediate.
func immWord(v Sexp) (isa.Word, error) {
	switch x := v.(type) {
	case int32:
		return isa.MakeFixnum(x), nil
	case bool:
		return isa.MakeBool(x), nil
	}
	return 0, fmt.Errorf("not an immediate")
}
