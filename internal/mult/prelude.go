package mult

// Prelude is a small standard library written in Mul-T mini itself,
// prepended to every compiled or interpreted program. Keeping it in the
// source language (rather than as primitives) exercises the compiler
// the way the paper's T-based runtime did.
const Prelude = `
(define (abs n) (if (< n 0) (- 0 n) n))
(define (min a b) (if (< a b) a b))
(define (max a b) (if (> a b) a b))
(define (length l)
  (let len-loop ((l l) (n 0))
    (if (null? l) n (len-loop (cdr l) (+ n 1)))))
(define (append a b)
  (if (null? a) b (cons (car a) (append (cdr a) b))))
(define (reverse l)
  (let rev-loop ((l l) (acc '()))
    (if (null? l) acc (rev-loop (cdr l) (cons (car l) acc)))))
(define (map f l)
  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))
(define (for-each f l)
  (if (null? l) #f (begin (f (car l)) (for-each f (cdr l)))))
(define (iota n)
  (let iota-loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (iota-loop (- i 1) (cons i acc)))))
(define (list-ref l i)
  (if (= i 0) (car l) (list-ref (cdr l) (- i 1))))
(define (make-ivector n)
  (let ((v (make-vector n 0)))
    (let iv-loop ((i 0))
      (if (< i n)
          (begin (vector-empty! v i) (iv-loop (+ i 1)))
          v))))
`
