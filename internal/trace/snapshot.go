package trace

// Snapshot support. Trace rings are cursor-only in machine images: the
// retained events are a host-side flight-recorder window (bounded,
// overwritten, never fed back into simulation), so an image records
// just each ring's total counter and the sampler's window boundary.
// After restore the counters continue from their pre-crash values —
// keeping telemetry totals consistent — while the retained-event
// window restarts empty.

// SetCursor restores a ring's event counter. The retained window
// restarts empty: events recorded before the cursor are accounted as
// dropped.
func (r *Ring) SetCursor(total uint64) {
	r.total = total
	r.base = total
}

// Cursor returns the ring's event counter.
func (r *Ring) Cursor() uint64 { return r.total }

// SetNextBoundary restores the sampler's window cursor.
func (s *Sampler) SetNextBoundary(next uint64) { s.next = next }
