// Package trace is the simulator's observability layer: a low-overhead
// deterministic event tracer plus time-series sampling over simulated
// cycles. The paper's claims are time-resolved — 4-11 cycle context
// switches, network round trips, processor utilization U(p) over a run
// (Section 8, Figure 5) — so the aggregate end-of-run counters alone
// cannot validate them; this package records *when* things happen.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Every subsystem holds a *Tracer that is
//     nil unless tracing was requested; Emit on a nil receiver returns
//     immediately, so the instrumented hot paths pay one nil check.
//   - Allocation-free on the hot path. Each node owns a fixed-capacity
//     power-of-two ring of value-typed events; recording is an index
//     store. When the ring wraps, the oldest events are overwritten
//     (the trace keeps the most recent window, like a flight recorder).
//   - No feedback into simulation. The tracer only observes: simulated
//     results are bit-identical with tracing on or off, which the
//     differential tests in internal/sim hold it to.
//
// Timestamps come from a clock pointer into the machine's cycle
// counter, so events are stamped with the simulated cycle at which they
// occur, not host time.
package trace

import "fmt"

// Kind enumerates the traced event types. Each event carries four
// int32 arguments A-D whose meaning is per-kind (documented on the
// constants); keeping the event fixed-size keeps the ring index-stored
// and allocation free.
type Kind uint8

const (
	KNone Kind = iota

	// KSwitch: a context switch. A=from frame, B=to frame, C=cause
	// (one of the Cause* constants).
	KSwitch

	// KTrap: a trap was delivered and handled. A=core.TrapKind,
	// B=trapping PC, C=handler cycles consumed, D=task frame.
	KTrap

	// KMissStart: a cache miss began a (possibly remote) directory
	// transaction. A=block, B=1 for a write/upgrade, C=home node.
	KMissStart

	// KMissFill: the data grant for an outstanding miss arrived.
	// A=block, B=request-to-grant latency in cycles, C=1 if exclusive,
	// D=1 if the grant was dropped as stale (a recall crossed it).
	KMissFill

	// KLocalMiss: a miss satisfied at the home node without the
	// network. A=block, B=stall cycles, C=1 for a write.
	KLocalMiss

	// KDirTrans: a directory entry changed state at its home.
	// A=block, B=old directory.State, C=new state, D=requester node.
	KDirTrans

	// KProtoSend: a coherence protocol message left a controller.
	// A=directory.MsgKind, B=block, C=destination node, D=flits.
	KProtoSend

	// KNetInject: a packet entered the interconnect. A=destination,
	// B=flits.
	KNetInject

	// KNetHop: a packet completed one channel and moved to the next.
	// A=destination, B=flits. The node is the hop's channel owner.
	KNetHop

	// KNetDeliver: a packet arrived at its destination. A=source,
	// B=flits, C=end-to-end latency in cycles.
	KNetDeliver

	// KTaskCreate: an eager future task was created. A=thread id,
	// B=entry PC.
	KTaskCreate

	// KSteal: a lazy continuation marker was stolen. A=victim thread,
	// B=new thread, C=stack words copied.
	KSteal

	// KThreadSteal: an eager task was taken from a remote ready queue.
	// A=thread id, B=the queue's node.
	KThreadSteal

	// KBlock: a thread blocked on an unresolved future. A=thread id,
	// B=future base address.
	KBlock

	// KWake: a thread was woken by a future resolving. A=thread id,
	// B=future base address. The node is the thread's home.
	KWake

	// KThreadLoad: a thread was installed in a task frame. A=frame,
	// B=thread id.
	KThreadLoad

	// KThreadUnload: a thread was saved out of its task frame.
	// A=frame, B=thread id.
	KThreadUnload

	numKinds
)

var kindNames = [...]string{
	KNone:         "none",
	KSwitch:       "switch",
	KTrap:         "trap",
	KMissStart:    "miss-start",
	KMissFill:     "miss-fill",
	KLocalMiss:    "local-miss",
	KDirTrans:     "dir-trans",
	KProtoSend:    "proto-send",
	KNetInject:    "net-inject",
	KNetHop:       "net-hop",
	KNetDeliver:   "net-deliver",
	KTaskCreate:   "task-create",
	KSteal:        "steal",
	KThreadSteal:  "thread-steal",
	KBlock:        "block",
	KWake:         "wake",
	KThreadLoad:   "thread-load",
	KThreadUnload: "thread-unload",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Switch causes (the C argument of KSwitch events), set by the trap
// handlers that decide to switch.
const (
	CauseOther     int32 = iota // switch with no recorded cause (e.g. STFP)
	CauseCacheMiss              // remote cache miss (Section 3.1)
	CauseFuture                 // touch of an unresolved future
	CauseSync                   // full/empty synchronization fault
	CauseYield                  // explicit yield syscall
	CauseIdle                   // idle rotation to a loaded frame
)

var causeNames = [...]string{
	CauseOther:     "other",
	CauseCacheMiss: "cache-miss",
	CauseFuture:    "future",
	CauseSync:      "full-empty",
	CauseYield:     "yield",
	CauseIdle:      "idle-rotate",
}

// CauseName renders a switch cause.
func CauseName(c int32) string {
	if c >= 0 && int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause?"
}

// Event is one traced occurrence, stamped with the simulated cycle.
type Event struct {
	Cycle uint64
	Kind  Kind
	Node  int16
	A     int32
	B     int32
	C     int32
	D     int32
}

// String renders an event one-per-line for crash-report trace tails.
func (e Event) String() string {
	return fmt.Sprintf("[%d] node %d %s a=%d b=%d c=%d d=%d",
		e.Cycle, e.Node, e.Kind, e.A, e.B, e.C, e.D)
}

// Ring is a fixed-capacity event buffer; once full, new events
// overwrite the oldest (the most recent window survives).
type Ring struct {
	buf   []Event
	mask  uint64
	total uint64
	// base marks the restore point of a snapshot-restored ring: events
	// before it were recorded by the pre-restore process and are not
	// retained (they count as dropped). Zero for ordinary rings.
	base uint64
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(capacity int) Ring {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return Ring{buf: make([]Event, c), mask: uint64(c) - 1}
}

func (r *Ring) record(ev Event) {
	r.buf[r.total&r.mask] = ev
	r.total++
}

// Cap is the ring capacity in events.
func (r *Ring) Cap() int { return len(r.buf) }

// Total counts every event ever recorded, including overwritten ones.
func (r *Ring) Total() uint64 { return r.total }

// retained is the number of events currently held in the buffer:
// bounded by capacity and by what was recorded since the ring's
// restore point.
func (r *Ring) retained() uint64 {
	n := r.total - r.base
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	return n
}

// Dropped counts events lost to ring wrap (or to a snapshot restore,
// which retains no events).
func (r *Ring) Dropped() uint64 {
	return r.total - r.retained()
}

// Events copies the retained events in record order, oldest first.
func (r *Ring) Events() []Event {
	n := r.retained()
	out := make([]Event, 0, n)
	for i := r.total - n; i < r.total; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// DefaultCapacity is the per-node ring capacity when none is given:
// large enough to hold the interesting window of a Table 3 workload,
// small enough that a 16-node trace exports to a few megabytes.
const DefaultCapacity = 1 << 14

// Tracer records typed events into per-node rings. A nil *Tracer is
// the disabled tracer: every method is safe to call and does nothing,
// so instrumentation sites need no conditionals beyond the implicit
// nil check.
type Tracer struct {
	clock *uint64
	rings []Ring

	// cause holds each node's pending switch cause: the trap handler
	// announces why it is about to switch, and the engine's switch hook
	// consumes it. Deterministic because the simulator runs nodes in
	// lockstep on one goroutine.
	cause []int32
}

// New builds a tracer for n nodes reading timestamps from clock.
func New(nodes, capacity int, clock *uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{clock: clock, rings: make([]Ring, nodes), cause: make([]int32, nodes)}
	for i := range t.rings {
		t.rings[i] = newRing(capacity)
	}
	return t
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now is the current simulated cycle.
func (t *Tracer) Now() uint64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return *t.clock
}

// Emit records one event at the current cycle. Out-of-range nodes are
// dropped silently (the interconnect may route through geometry nodes
// beyond the machine's population).
func (t *Tracer) Emit(node int, k Kind, a, b, c, d int32) {
	if t == nil || node < 0 || node >= len(t.rings) {
		return
	}
	t.rings[node].record(Event{Cycle: *t.clock, Kind: k, Node: int16(node), A: a, B: b, C: c, D: d})
}

// SetSwitchCause announces why the next context switch on node will
// happen; EmitSwitch consumes it.
func (t *Tracer) SetSwitchCause(node int, cause int32) {
	if t == nil || node < 0 || node >= len(t.cause) {
		return
	}
	t.cause[node] = cause
}

// EmitSwitch records a context switch with the pending cause (reset to
// CauseOther afterwards).
func (t *Tracer) EmitSwitch(node, from, to int) {
	if t == nil {
		return
	}
	var cause int32 = CauseOther
	if node >= 0 && node < len(t.cause) {
		cause = t.cause[node]
		t.cause[node] = CauseOther
	}
	t.Emit(node, KSwitch, int32(from), int32(to), cause, 0)
}

// Nodes is the traced node count.
func (t *Tracer) Nodes() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

// Node exposes one node's ring.
func (t *Tracer) Node(i int) *Ring {
	return &t.rings[i]
}

// TotalEvents sums recorded events across nodes (including dropped).
func (t *Tracer) TotalEvents() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.rings {
		n += t.rings[i].Total()
	}
	return n
}

// DroppedEvents sums ring-wrap losses across nodes.
func (t *Tracer) DroppedEvents() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.rings {
		n += t.rings[i].Dropped()
	}
	return n
}
