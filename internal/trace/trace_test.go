package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRingWrapKeepsMostRecent(t *testing.T) {
	var clock uint64
	tr := New(1, 8, &clock)
	if got := tr.Node(0).Cap(); got != 8 {
		t.Fatalf("capacity %d, want 8", got)
	}
	for i := 0; i < 20; i++ {
		clock = uint64(i)
		tr.Emit(0, KNetInject, int32(i), 0, 0, 0)
	}
	r := tr.Node(0)
	if r.Total() != 20 {
		t.Errorf("total %d, want 20", r.Total())
	}
	if r.Dropped() != 12 {
		t.Errorf("dropped %d, want 12", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// Oldest-first, and only the most recent 8 survive (12..19).
	for i, ev := range evs {
		if want := int32(12 + i); ev.A != want || ev.Cycle != uint64(want) {
			t.Errorf("event %d: A=%d cycle=%d, want %d", i, ev.A, ev.Cycle, want)
		}
	}
	if tr.TotalEvents() != 20 || tr.DroppedEvents() != 12 {
		t.Errorf("tracer totals %d/%d, want 20/12", tr.TotalEvents(), tr.DroppedEvents())
	}
}

func TestRingCapacityRoundsToPowerOfTwo(t *testing.T) {
	var clock uint64
	for _, tc := range []struct{ ask, want int }{{1, 1}, {3, 4}, {8, 8}, {1000, 1024}, {0, DefaultCapacity}} {
		tr := New(1, tc.ask, &clock)
		if got := tr.Node(0).Cap(); got != tc.want {
			t.Errorf("capacity(%d) = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	// Every method must be callable on the nil (disabled) tracer.
	tr.Emit(0, KSwitch, 1, 2, 3, 4)
	tr.SetSwitchCause(0, CauseCacheMiss)
	tr.EmitSwitch(0, 1, 2)
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Nodes() != 0 || tr.TotalEvents() != 0 || tr.DroppedEvents() != 0 || tr.Now() != 0 {
		t.Error("nil tracer reports nonzero state")
	}
}

func TestEmitBoundsChecksNode(t *testing.T) {
	var clock uint64
	tr := New(2, 4, &clock)
	// The torus may route through geometry nodes beyond the machine.
	tr.Emit(-1, KNetHop, 0, 0, 0, 0)
	tr.Emit(2, KNetHop, 0, 0, 0, 0)
	tr.Emit(99, KNetHop, 0, 0, 0, 0)
	if tr.TotalEvents() != 0 {
		t.Errorf("out-of-range emits recorded %d events", tr.TotalEvents())
	}
}

func TestSwitchCauseConsumedOnce(t *testing.T) {
	var clock uint64
	tr := New(1, 8, &clock)
	tr.SetSwitchCause(0, CauseFuture)
	tr.EmitSwitch(0, 0, 1)
	tr.EmitSwitch(0, 1, 2)
	evs := tr.Node(0).Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].C != CauseFuture {
		t.Errorf("first switch cause %s, want future", CauseName(evs[0].C))
	}
	if evs[1].C != CauseOther {
		t.Errorf("second switch cause %s, want other (cause must not persist)", CauseName(evs[1].C))
	}
}

func TestSamplerSeriesAndMean(t *testing.T) {
	s := NewSampler(100)
	if s.NextBoundary() != 100 {
		t.Fatalf("first boundary %d, want 100", s.NextBoundary())
	}
	s.Append(Sample{Cycle: 100, Node: 0, Useful: 80, Idle: 20, Utilization: 0.8})
	s.Advance(100)
	if s.NextBoundary() != 200 {
		t.Fatalf("boundary after advance %d, want 200", s.NextBoundary())
	}
	s.Append(Sample{Cycle: 200, Node: 0, Useful: 20, Wait: 80, Utilization: 0.2})
	s.Advance(200)
	if got, want := s.MeanUtilization(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean utilization %f, want %f", got, want)
	}
	if got := s.NodeMeanUtilization(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("node mean %f, want 0.5", got)
	}
	if got := s.NodeMeanUtilization(1); got != 0 {
		t.Errorf("absent node mean %f, want 0", got)
	}
}

func TestSamplerZeroWindowsNoNaN(t *testing.T) {
	s := NewSampler(0)
	if s.Interval() != DefaultSampleInterval {
		t.Fatalf("interval %d, want default", s.Interval())
	}
	// All-zero windows: rates must be 0, never NaN/Inf.
	s.Append(Sample{Cycle: 0, Node: 0})
	if u := s.MeanUtilization(); u != 0 {
		t.Errorf("empty-series utilization %f, want 0", u)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v (NaN would fail to marshal)", err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("JSON contains NaN/Inf")
	}
	buf.Reset()
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("CSV contains NaN")
	}
}

func TestSafeRate(t *testing.T) {
	if got := SafeRate(5, 0); got != 0 {
		t.Errorf("SafeRate(5,0) = %f, want 0", got)
	}
	if got := SafeRate(1, 4); got != 0.25 {
		t.Errorf("SafeRate(1,4) = %f, want 0.25", got)
	}
}

func TestSamplerCSVShape(t *testing.T) {
	s := NewSampler(10)
	s.Append(Sample{Cycle: 10, Node: 0, Useful: 7, Idle: 3, Utilization: 0.7, Resident: 2})
	s.Append(Sample{Cycle: 10, Node: 1, Wait: 10, Resident: 1, NetInFlight: 4})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d CSV records, want header + 2 rows", len(recs))
	}
	if recs[0][0] != "cycle" || recs[0][2] != "utilization" {
		t.Errorf("unexpected header %v", recs[0])
	}
	if recs[2][1] != "1" || recs[2][9] != "4" {
		t.Errorf("row 2 = %v", recs[2])
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := &Registry{}
	n := uint64(1)
	r.Register("a", func() map[string]uint64 { return map[string]uint64{"x": n} })
	r.Register("b", func() map[string]uint64 { return map[string]uint64{"y": 2} })
	if got := r.Groups(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("groups %v", got)
	}
	snap := r.Snapshot()
	if snap["a"]["x"] != 1 || snap["b"]["y"] != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	n = 7 // closures read live state
	if got := r.Snapshot()["a"]["x"]; got != 7 {
		t.Errorf("live snapshot x=%d, want 7", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]map[string]uint64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("registry JSON invalid: %v", err)
	}
}

func TestWriteChromeStructure(t *testing.T) {
	var clock uint64
	tr := New(2, 64, &clock)
	clock = 5
	tr.SetSwitchCause(0, CauseCacheMiss)
	tr.EmitSwitch(0, 0, 1)
	clock = 10
	tr.Emit(0, KMissStart, 42, 0, 1, 0)
	clock = 30
	tr.Emit(0, KMissFill, 42, 20, 1, 0)
	clock = 40
	tr.Emit(1, KTrap, 3, 0x100, 5, 0)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, 4, 100); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		counts[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event without pid: %v", ev)
		}
	}
	// 2 nodes x (process_name + 4 frames + 4 extra tracks) metadata.
	if counts["M"] != 2*(1+4+4) {
		t.Errorf("%d metadata events, want %d", counts["M"], 2*9)
	}
	if counts["b"] != 1 || counts["e"] != 1 {
		t.Errorf("async span events b=%d e=%d, want 1/1", counts["b"], counts["e"])
	}
	if counts["X"] < 2 { // at least the trap slice and one run slice
		t.Errorf("%d complete events, want >= 2", counts["X"])
	}
	if counts["i"] == 0 {
		t.Error("no instant events (expected the switch marker)")
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	if err := WriteChrome(&bytes.Buffer{}, nil, 4, 0); err == nil {
		t.Error("WriteChrome(nil tracer) succeeded, want error")
	}
}

func TestKindAndCauseNames(t *testing.T) {
	for k := KNone; k < numKinds; k++ {
		if k.String() == "kind?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if CauseName(CauseCacheMiss) != "cache-miss" || CauseName(99) != "cause?" {
		t.Error("cause naming broken")
	}
}
