package trace

import (
	"encoding/json"
	"io"
)

// Registry unifies the stats scattered across subsystems (processor,
// scheduler, caches, directories, network) behind one Snapshot. Each
// subsystem registers a named group with a closure that reads its
// counters at snapshot time; the registry itself holds no state, so a
// snapshot always reflects the current values.
type Registry struct {
	names []string
	fns   []func() map[string]uint64
}

// Register adds a counter group. Group names registered twice keep
// both entries; the later one wins in Snapshot (maps merge by key).
func (r *Registry) Register(group string, fn func() map[string]uint64) {
	r.names = append(r.names, group)
	r.fns = append(r.fns, fn)
}

// Groups lists registered group names in registration order.
func (r *Registry) Groups() []string {
	return append([]string(nil), r.names...)
}

// Snapshot reads every group. The result marshals to deterministic
// JSON (encoding/json sorts map keys).
func (r *Registry) Snapshot() map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, len(r.names))
	for i, name := range r.names {
		out[name] = r.fns[i]()
	}
	return out
}

// WriteJSON emits an indented snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
