package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sample is one node's activity over one sampling window: the cycle
// category deltas since the previous sample, plus instantaneous
// occupancy gauges. The machine appends one row per node per window
// boundary (and a final partial window at run end), so summing a
// node's deltas reproduces its end-of-run Stats exactly.
type Sample struct {
	Cycle uint64 `json:"cycle"` // window end, in simulated cycles
	Node  int    `json:"node"`

	// Cycle category deltas over the window.
	Useful uint64 `json:"useful"`
	Wait   uint64 `json:"wait"`
	Trap   uint64 `json:"trap"`
	Idle   uint64 `json:"idle"`

	// Utilization is Useful over the window's accounted cycles (0 for
	// an empty window — never NaN).
	Utilization float64 `json:"utilization"`

	// Gauges at the window boundary.
	Resident          int `json:"resident_threads"`   // threads loaded in task frames
	OutstandingRemote int `json:"outstanding_remote"` // in-flight directory transactions
	NetInFlight       int `json:"net_in_flight"`      // machine-wide undelivered packets
}

// Total is the window's accounted cycle count.
func (s Sample) Total() uint64 { return s.Useful + s.Wait + s.Trap + s.Idle }

// SafeRate is num/den, or 0 when the denominator is zero — the
// emitted JSON and CSV must never contain NaN or Inf, even for
// zero-duration runs or empty windows.
func SafeRate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sampler accumulates the per-node time series. The machine drives it:
// NextBoundary says when the next window closes, Append adds rows, and
// Advance moves the boundary past the current cycle.
type Sampler struct {
	interval uint64
	next     uint64
	rows     []Sample
}

// DefaultSampleInterval balances resolution against row volume for the
// Table 3 workloads (hundreds of rows per node on the paper sizes).
const DefaultSampleInterval = 4096

// NewSampler creates a sampler with the given window size in cycles.
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{interval: interval, next: interval}
}

// Interval is the configured window size.
func (s *Sampler) Interval() uint64 { return s.interval }

// NextBoundary is the cycle at which the current window closes.
func (s *Sampler) NextBoundary() uint64 { return s.next }

// Append adds one row.
func (s *Sampler) Append(row Sample) { s.rows = append(s.rows, row) }

// Advance moves the window boundary strictly past now.
func (s *Sampler) Advance(now uint64) {
	for s.next <= now {
		s.next += s.interval
	}
}

// Rows returns the accumulated samples in append order (grouped by
// window, node-major within a window).
func (s *Sampler) Rows() []Sample { return s.rows }

// MeanUtilization is the whole-run utilization implied by the series:
// total useful cycles over total accounted cycles, across all nodes.
// With the machine's final partial window included this matches the
// Stats-derived utilization exactly.
func (s *Sampler) MeanUtilization() float64 {
	var useful, total uint64
	for _, r := range s.rows {
		useful += r.Useful
		total += r.Total()
	}
	return SafeRate(useful, total)
}

// NodeMeanUtilization is MeanUtilization restricted to one node.
func (s *Sampler) NodeMeanUtilization(node int) float64 {
	var useful, total uint64
	for _, r := range s.rows {
		if r.Node == node {
			useful += r.Useful
			total += r.Total()
		}
	}
	return SafeRate(useful, total)
}

// WriteCSV emits the series as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"cycle", "node", "utilization", "useful", "wait", "trap", "idle",
		"resident_threads", "outstanding_remote", "net_in_flight",
	}); err != nil {
		return err
	}
	for _, r := range s.rows {
		rec := []string{
			strconv.FormatUint(r.Cycle, 10),
			strconv.Itoa(r.Node),
			strconv.FormatFloat(r.Utilization, 'f', 6, 64),
			strconv.FormatUint(r.Useful, 10),
			strconv.FormatUint(r.Wait, 10),
			strconv.FormatUint(r.Trap, 10),
			strconv.FormatUint(r.Idle, 10),
			strconv.Itoa(r.Resident),
			strconv.Itoa(r.OutstandingRemote),
			strconv.Itoa(r.NetInFlight),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the series as a JSON array.
func (s *Sampler) WriteJSON(w io.Writer) error {
	rows := s.rows
	if rows == nil {
		rows = []Sample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		return fmt.Errorf("trace: timeline json: %w", err)
	}
	return nil
}
