package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: serializes the tracer's rings in the
// Chrome trace-event "JSON object format" ({"traceEvents": [...]}),
// which loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The mapping:
//
//   - one trace "process" per node (pid = node id);
//   - one "thread" per hardware task frame (tid = frame index), whose
//     duration slices are the runs: a slice opens when the frame
//     becomes active and is named for the loaded thread ("t7") or
//     "idle" when the frame is empty;
//   - extra per-node tracks for traps (duration = handler cycles),
//     memory-system events, network events and scheduler events;
//   - cache-miss transactions as async begin/end pairs keyed by block,
//     so Perfetto draws request-to-grant spans.
//
// One simulated cycle maps to one microsecond of trace time (the
// trace-event format has no unitless timestamps).

// Extra per-node track ids, placed after the task-frame tids.
const (
	tidTraps = iota
	tidMem
	tidNet
	tidSched
)

type chromeEvent struct {
	Name string                 `json:"name,omitempty"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   uint64                 `json:"ts"`
	Dur  uint64                 `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the trace for a machine with the given number
// of task frames per node; endCycle (the run's final cycle) closes the
// trailing run slices.
func WriteChrome(w io.Writer, t *Tracer, frames int, endCycle uint64) error {
	if t == nil {
		return fmt.Errorf("trace: no tracer attached")
	}
	if frames < 1 {
		frames = 1
	}
	var out []chromeEvent
	meta := func(pid, tid int, kind, name string) {
		args := map[string]interface{}{"name": name}
		out = append(out, chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: args})
	}
	for node := 0; node < t.Nodes(); node++ {
		meta(node, 0, "process_name", fmt.Sprintf("node %d", node))
		for f := 0; f < frames; f++ {
			meta(node, f, "thread_name", fmt.Sprintf("frame %d", f))
		}
		meta(node, frames+tidTraps, "thread_name", "traps")
		meta(node, frames+tidMem, "thread_name", "memory")
		meta(node, frames+tidNet, "thread_name", "network")
		meta(node, frames+tidSched, "thread_name", "scheduler")
		out = append(out, nodeEvents(t.Node(node), node, frames, endCycle)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// nodeEvents converts one node's ring into trace events.
func nodeEvents(r *Ring, node, frames int, endCycle uint64) []chromeEvent {
	var out []chromeEvent

	// Run-slice reconstruction: activeFrame runs from openSince until
	// the next switch (or load/unload renaming it). Complete ("X")
	// events avoid begin/end matching problems when the ring dropped
	// the opening event.
	frameThread := make([]int32, frames)
	for i := range frameThread {
		frameThread[i] = -1
	}
	activeFrame := 0
	var openSince uint64
	haveOpen := false
	runName := func(f int) string {
		if f >= 0 && f < frames && frameThread[f] >= 0 {
			return fmt.Sprintf("t%d", frameThread[f])
		}
		return "idle"
	}
	closeRun := func(at uint64) {
		if !haveOpen || at <= openSince {
			return
		}
		out = append(out, chromeEvent{
			Name: runName(activeFrame), Cat: "run", Ph: "X",
			Ts: openSince, Dur: at - openSince, Pid: node, Tid: activeFrame,
		})
	}
	instant := func(ev Event, tid int, name string, args map[string]interface{}) {
		out = append(out, chromeEvent{
			Name: name, Ph: "i", Ts: ev.Cycle, Pid: node, Tid: frames + tid,
			S: "t", Args: args,
		})
	}

	events := r.Events()
	for _, ev := range events {
		switch ev.Kind {
		case KSwitch:
			closeRun(ev.Cycle)
			activeFrame = int(ev.B)
			openSince, haveOpen = ev.Cycle, true
			instant(ev, tidSched, "switch", map[string]interface{}{
				"from": ev.A, "to": ev.B, "cause": CauseName(ev.C),
			})

		case KThreadLoad, KThreadUnload:
			f := int(ev.A)
			if f == activeFrame {
				closeRun(ev.Cycle)
				openSince, haveOpen = ev.Cycle, true
			}
			if f >= 0 && f < frames {
				if ev.Kind == KThreadLoad {
					frameThread[f] = ev.B
				} else {
					frameThread[f] = -1
				}
			}

		case KTrap:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("trap:%d", ev.A), Cat: "trap", Ph: "X",
				Ts: ev.Cycle, Dur: uint64(max32(ev.C, 1)), Pid: node, Tid: frames + tidTraps,
				Args: map[string]interface{}{"pc": ev.B, "frame": ev.D},
			})

		case KMissStart:
			out = append(out, chromeEvent{
				Name: "miss", Cat: "miss", Ph: "b", Ts: ev.Cycle,
				Pid: node, Tid: frames + tidMem, ID: fmt.Sprintf("%d.%d", node, ev.A),
				Args: map[string]interface{}{"block": ev.A, "write": ev.B, "home": ev.C},
			})
		case KMissFill:
			out = append(out, chromeEvent{
				Name: "miss", Cat: "miss", Ph: "e", Ts: ev.Cycle,
				Pid: node, Tid: frames + tidMem, ID: fmt.Sprintf("%d.%d", node, ev.A),
				Args: map[string]interface{}{"block": ev.A, "latency": ev.B, "exclusive": ev.C, "stale": ev.D},
			})
		case KLocalMiss:
			instant(ev, tidMem, "local-miss", map[string]interface{}{
				"block": ev.A, "stall": ev.B, "write": ev.C,
			})
		case KDirTrans:
			instant(ev, tidMem, "dir", map[string]interface{}{
				"block": ev.A, "from": ev.B, "to": ev.C, "requester": ev.D,
			})
		case KProtoSend:
			instant(ev, tidMem, "proto-send", map[string]interface{}{
				"kind": ev.A, "block": ev.B, "dst": ev.C, "flits": ev.D,
			})

		case KNetInject:
			instant(ev, tidNet, "inject", map[string]interface{}{"dst": ev.A, "flits": ev.B})
		case KNetHop:
			instant(ev, tidNet, "hop", map[string]interface{}{"dst": ev.A, "flits": ev.B})
		case KNetDeliver:
			instant(ev, tidNet, "deliver", map[string]interface{}{
				"src": ev.A, "flits": ev.B, "latency": ev.C,
			})

		case KTaskCreate:
			instant(ev, tidSched, "task-create", map[string]interface{}{"thread": ev.A, "entry": ev.B})
		case KSteal:
			instant(ev, tidSched, "steal", map[string]interface{}{
				"victim": ev.A, "thread": ev.B, "words": ev.C,
			})
		case KThreadSteal:
			instant(ev, tidSched, "thread-steal", map[string]interface{}{"thread": ev.A, "from": ev.B})
		case KBlock:
			instant(ev, tidSched, "block", map[string]interface{}{"thread": ev.A, "future": ev.B})
		case KWake:
			instant(ev, tidSched, "wake", map[string]interface{}{"thread": ev.A, "future": ev.B})
		}
	}
	// Open the initial slice lazily: if no switch was ever recorded the
	// frame ran uninterrupted; represent it from the first event.
	if !haveOpen && len(events) > 0 {
		openSince, haveOpen = events[0].Cycle, true
	}
	closeRun(endCycle)
	return out
}

func max32(a, b int32) uint64 {
	if a > b {
		return uint64(a)
	}
	return uint64(b)
}
