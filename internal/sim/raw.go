package sim

import (
	"errors"
	"fmt"

	"april/internal/core"
	"april/internal/isa"
	"april/internal/rts"
)

// LoadRaw installs a hand-built program (no Mul-T runtime stubs, no
// main thread). Threads are then created with SpawnRaw and the machine
// driven with RunFor — the configuration used by the synthetic
// utilization workloads of experiment E6.
func (m *Machine) LoadRaw(prog *isa.Program) {
	for _, n := range m.Nodes {
		n.Proc.Prog = prog
	}
	if !m.Cfg.DisablePredecode {
		micro := prog.Predecode()
		for _, n := range m.Nodes {
			n.Proc.SetMicro(micro)
		}
	}
	m.loaded = true
}

// SpawnRaw creates a thread with explicit initial registers on the
// given node's ready queue.
func (m *Machine) SpawnRaw(node int, pc uint32, regs map[uint8]isa.Word) *rts.Thread {
	t := m.Sched.NewThread(node)
	t.PC = pc
	t.NPC = pc + 1
	if m.Cfg.Profile.HardwareFutures {
		t.PSR = core.PSRFutureTrap
	}
	for r, w := range regs {
		t.Regs[r] = w
	}
	m.Sched.PushReady(t)
	return t
}

// RunFor drives the machine for exactly the given number of cycles
// (threads typically loop forever; there is no termination or deadlock
// detection — an idle machine simply burns idle cycles). Like Run it
// fast-forwards across provably uneventful cycles unless the config
// disables that; the window boundary is honored exactly either way.
func (m *Machine) RunFor(cycles uint64) error {
	if !m.loaded {
		return errors.New("sim: no program loaded")
	}
	end := m.now + cycles
	if m.Cfg.DisableFastForward {
		for m.now < end {
			for _, n := range m.Nodes {
				if n.busy > 0 {
					n.busy--
					continue
				}
				c, err := n.Proc.Step()
				if err != nil {
					return fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
				}
				if c > 1 {
					n.busy = c - 1
				}
			}
			if m.net != nil {
				m.net.tick()
			}
			m.now++
		}
		return nil
	}
	for m.now < end {
		m.fastForwardUntil(end)
		if m.now >= end {
			break
		}
		due := m.dueBuf[:0]
		if m.wakeq.next() <= m.now {
			due = m.wakeq.popDue(m.now, due)
		}
		m.dueBuf = due
		steps := m.running
		switch {
		case len(due) == 0:
		case len(m.running) == 0:
			steps = due
		default:
			m.mergeBuf = mergeSorted(m.mergeBuf[:0], m.running, due)
			steps = m.mergeBuf
		}
		keep := m.running[:0]
		for _, id := range steps {
			n := m.Nodes[id]
			c, err := n.Proc.Step()
			if err != nil {
				return fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
			}
			if c > 1 {
				m.wakeq.push(id, m.now+uint64(c))
			} else {
				keep = append(keep, id)
			}
		}
		m.running = keep
		if m.net != nil {
			m.net.tick()
		}
		m.now++
	}
	return nil
}

// MemStats aggregates the memory-system counters across nodes
// (ALEWIFE mode only; zero otherwise).
type MemStats struct {
	CacheHits     uint64
	CacheMisses   uint64
	LocalMisses   uint64
	RemoteMisses  uint64
	RemoteLatency uint64 // summed request->data cycles
	Invalidations uint64
	NetMessages   uint64
	NetAvgLatency float64
}

// AvgRemoteLatency is the mean remote miss service time.
func (s MemStats) AvgRemoteLatency() float64 {
	if s.RemoteMisses == 0 {
		return 0
	}
	return float64(s.RemoteLatency) / float64(s.RemoteMisses)
}

// MemSystemStats collects the ALEWIFE memory statistics.
func (m *Machine) MemSystemStats() MemStats {
	var out MemStats
	for _, n := range m.Nodes {
		if n.cache == nil {
			continue
		}
		out.CacheHits += n.cache.cache.Hits
		out.CacheMisses += n.cache.cache.Misses
		out.LocalMisses += n.cache.Stats.LocalMisses
		out.RemoteMisses += n.cache.Stats.RemoteMisses
		out.RemoteLatency += n.cache.Stats.RemoteLatency
		out.Invalidations += n.cache.cache.Invalidations
	}
	if m.net != nil {
		ns := m.net.net.Stats()
		out.NetMessages = ns.Messages
		out.NetAvgLatency = ns.AvgLatency()
	}
	return out
}
