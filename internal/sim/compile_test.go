package sim_test

// Differential and structural tests for the compiled execution tier
// (profile-guided basic-block superinstructions, internal/proc
// compile.go + internal/isa block.go). The tier's contract is the same
// as every other fast path in this simulator: bit-identical simulated
// results, only host speed changes. The matrix here pins the compiled
// tier against the predecoded per-op path (its differential oracle,
// selected by Config.DisableCompile) across programs, memory systems,
// machine sizes, translation thresholds, and shard counts — including
// the hostile cases: traps and asynchronous IPIs landing mid-block,
// future-strictness faults on operands inside a fused run, and blocks
// entered at interior PCs.

import (
	"fmt"
	"reflect"
	"testing"

	"april/internal/bench"
	"april/internal/core"
	"april/internal/isa"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

type compiledOutcome struct {
	m      *sim.Machine
	prog   *isa.Program
	cycles uint64
	value  string
	stats  []proc.Stats
}

// runCompileSide builds, loads, and runs one machine. cfg.Profile is
// forced to APRIL; everything else is the caller's.
func runCompileSide(t *testing.T, src string, cfg sim.Config) compiledOutcome {
	t.Helper()
	cfg.Profile = rts.APRIL
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := compiledOutcome{m: m, prog: prog, cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	return out
}

func compareCompiled(t *testing.T, compiled, oracle compiledOutcome) {
	t.Helper()
	if compiled.cycles != oracle.cycles {
		t.Errorf("cycles: compiled %d != predecode %d", compiled.cycles, oracle.cycles)
	}
	if compiled.value != oracle.value {
		t.Errorf("result: compiled %s != predecode %s", compiled.value, oracle.value)
	}
	for i := range compiled.stats {
		if !reflect.DeepEqual(compiled.stats[i], oracle.stats[i]) {
			t.Errorf("node %d stats diverge:\ncompiled:  %+v\npredecode: %+v",
				i, compiled.stats[i], oracle.stats[i])
		}
	}
}

// coverage sums the compile tier's two execution counters: ops run
// inside fused windows and single Steps resolved by the
// superinstruction handlers.
func coverage(m *sim.Machine) (fused, inline uint64) {
	for _, n := range m.Nodes {
		fused += n.Proc.FusedOps
		inline += n.Proc.InlineSteps
	}
	return fused, inline
}

// TestCompiledMatchesPredecode is the tier's differential matrix:
// programs x memory systems x machine sizes x translation thresholds,
// compiled against the per-op predecode oracle. Threshold 1 translates
// every entry PC on first execution, maximizing block coverage (and
// with it the chance of a trap or IPI landing mid-block); the default
// threshold exercises the profile-guided warmup.
func TestCompiledMatchesPredecode(t *testing.T) {
	programs := map[string]string{
		"fib":    bench.FibSource(12),
		"queens": bench.QueensSource(6),
	}
	for name, src := range programs {
		for _, alewife := range []bool{false, true} {
			for _, nodes := range []int{1, 4, 16} {
				for _, threshold := range []int{1, 0} {
					mode := "perfect"
					if alewife {
						mode = "alewife"
					}
					t.Run(fmt.Sprintf("%s/%s/%dp/threshold%d", name, mode, nodes, threshold), func(t *testing.T) {
						var aw *sim.AlewifeConfig
						if alewife {
							aw = &sim.AlewifeConfig{}
						}
						compiled := runCompileSide(t, src, sim.Config{
							Nodes: nodes, Alewife: aw, CompileThreshold: threshold,
						})
						oracle := runCompileSide(t, src, sim.Config{
							Nodes: nodes, Alewife: aw, DisableCompile: true,
						})
						compareCompiled(t, compiled, oracle)
						fused, inline := coverage(compiled.m)
						if fused+inline == 0 {
							t.Errorf("compiled tier never executed an op (fused %d, inline %d)", fused, inline)
						}
						if f, i := coverage(oracle.m); f+i != 0 {
							t.Errorf("oracle ran compile-tier ops (fused %d, inline %d), want none", f, i)
						}
					})
				}
			}
		}
	}
}

// TestCompiledHostileEventsMidBlock pins the scenarios the block
// executor must detect and unwind from: with threshold 1 nearly every
// dispatch is inside a translated block, so the eager-futures fib run
// forces future-strictness faults (a strict + on an unresolved future
// operand), full/empty touch traps on future cells, and — at several
// nodes — asynchronous IPIs, all landing mid-block. The run must still
// be bit-identical to the per-op oracle, and the trap counters prove
// the events actually fired inside the compiled run.
func TestCompiledHostileEventsMidBlock(t *testing.T) {
	src := bench.FibSource(12)
	compiled := runCompileSide(t, src, sim.Config{Nodes: 4, CompileThreshold: 1})
	oracle := runCompileSide(t, src, sim.Config{Nodes: 4, DisableCompile: true})
	compareCompiled(t, compiled, oracle)

	var future, sync, ipi uint64
	for _, s := range compiled.stats {
		future += s.Traps[core.TrapFuture]
		sync += s.Traps[core.TrapEmpty]
		ipi += s.Traps[core.TrapIPI]
	}
	if future+sync == 0 {
		t.Error("run took no future/touch traps; the mid-block fault path was not exercised")
	}
	if fused, _ := coverage(compiled.m); fused == 0 {
		t.Error("no ops executed inside fused windows")
	}
	t.Logf("traps mid-run: future=%d touch=%d ipi=%d", future, sync, ipi)
}

// TestCompiledImagePurityAndSharing holds translation to the
// Predecode contract: discovering and executing blocks writes only the
// BlockSet's side tables, never the shared micro-op image — after a
// full compiled run the image still equals a fresh Predecode of the
// program. All nodes of a machine must also share one BlockSet (one
// translation, one profile) exactly as they share one image.
func TestCompiledImagePurityAndSharing(t *testing.T) {
	out := runCompileSide(t, bench.QueensSource(6), sim.Config{Nodes: 4, CompileThreshold: 1})
	bs := out.m.Nodes[0].Proc.Blocks()
	if bs == nil {
		t.Fatal("compiled tier not armed")
	}
	for i, n := range out.m.Nodes {
		if n.Proc.Blocks() != bs {
			t.Errorf("node %d has its own BlockSet; want the machine-wide shared one", i)
		}
	}
	if bs.Blocks == 0 {
		t.Fatal("no blocks were translated")
	}
	if fresh := out.prog.Predecode(); !reflect.DeepEqual(bs.Micro, fresh) {
		t.Error("translation mutated the shared predecoded image")
	}
}

// TestCompiledShardedIdentical runs the compiled tier on a sharded
// machine (fusion only ever happens on the coordinating goroutine, in
// the sequential fallback) against the unsharded per-op oracle.
func TestCompiledShardedIdentical(t *testing.T) {
	src := bench.QueensSource(6)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			compiled := runCompileSide(t, src, sim.Config{
				Nodes: 16, Shards: shards, CompileThreshold: 1,
			})
			oracle := runCompileSide(t, src, sim.Config{Nodes: 16, DisableCompile: true})
			compareCompiled(t, compiled, oracle)
		})
	}
}

// TestKindCountsTierInvariant pins the per-kind execution counters
// (the "isa" counter group) across all three tiers: the reference
// switch interpreter, the predecoded table, and the compiled tier must
// count every dispatch identically.
func TestKindCountsTierInvariant(t *testing.T) {
	src := bench.QueensSource(6)
	compiled := runCompileSide(t, src, sim.Config{Nodes: 4, CompileThreshold: 1})
	predecode := runCompileSide(t, src, sim.Config{Nodes: 4, DisableCompile: true})
	reference := runCompileSide(t, src, sim.Config{
		Nodes: 4, DisableFastForward: true, DisablePredecode: true,
	})
	ck := compiled.m.KindTotals()
	if pk := predecode.m.KindTotals(); !reflect.DeepEqual(ck, pk) {
		t.Errorf("kind counts diverge: compiled %v != predecode %v", ck, pk)
	}
	if rk := reference.m.KindTotals(); !reflect.DeepEqual(ck, rk) {
		t.Errorf("kind counts diverge: compiled %v != reference %v", ck, rk)
	}
}

// TestCompiledSteadyStateAllocRate pins the compiled tier's warmup
// contract: all translation state is sized at machine construction, so
// once the hot blocks are translated the fused executor allocates
// nothing — the steady-state allocation rate with the translator armed
// is the same (near) zero the per-op path achieves.
func TestCompiledSteadyStateAllocRate(t *testing.T) {
	m, err := sim.New(sim.Config{Nodes: 1, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(bench.QueensSource(7), mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	// queens(7) runs ~690k cycles at one node; by 200k every hot block
	// is translated (default threshold 8) and the runtime's pools have
	// reached working size.
	if done, err := m.RunWindow(200_000); err != nil {
		t.Fatal(err)
	} else if done {
		t.Fatal("program finished during warm-up")
	}
	const window = 20_000
	var werr error
	run := func() {
		if _, err := m.RunWindow(window); err != nil {
			werr = err
		}
	}
	// 6 windows (1 warm-up + 5 measured) end at cycle 320k, well inside
	// the run.
	allocsPerWindow := testing.AllocsPerRun(5, run)
	if werr != nil {
		t.Fatal(werr)
	}
	perCycle := allocsPerWindow / window
	t.Logf("steady state: %.1f allocs per %d-cycle window (%.5f allocs/cycle)", allocsPerWindow, window, perCycle)
	if perCycle > 0.01 {
		t.Errorf("steady-state allocation rate %.5f allocs/cycle with translator armed, want ~0 (<= 0.01)", perCycle)
	}
	if fused, _ := coverage(m); fused == 0 {
		t.Error("no fused execution during the measured windows")
	}
}
