package sim

// Crash forensics: when a run aborts — deadlock, livelock, cycle-budget
// exhaustion, an invariant violation, or a recovered runtime memory
// fault — the machine snapshots itself into a fault.Report so the
// failure can be localized instead of guessed at from a one-line
// error. cmd/april renders the report with -autopsy.

import (
	"slices"

	"april/internal/fault"
	"april/internal/network"
)

// CrashError wraps a run-ending error with the machine snapshot taken
// at the moment of failure. Error() delegates to the underlying error,
// so existing callers (and tests) that match on message text are
// unaffected; callers that want the forensics use errors.As.
type CrashError struct {
	Report *fault.Report
	Err    error
}

func (e *CrashError) Error() string { return e.Err.Error() }

func (e *CrashError) Unwrap() error { return e.Err }

// crash packages a run-ending error with a full machine snapshot.
func (m *Machine) crash(reason string, err error) error {
	return &CrashError{Report: m.buildReport(reason, err), Err: err}
}

// traceTailEvents is how many trailing trace-ring events per node a
// report carries.
const traceTailEvents = 8

// buildReport snapshots the machine. Cold path: runs once, on failure.
func (m *Machine) buildReport(reason string, cause error) *fault.Report {
	r := &fault.Report{Reason: reason, Cycle: m.now, Message: cause.Error()}
	if m.checker != nil {
		r.Violations = m.checker.Violations()
	}
	if m.ckptValid {
		r.HasCheckpoint = true
		r.CheckpointCycle = m.ckptCycle
		r.RestoreCmd = m.ckptCmd
	}

	blocked := make([]int, len(m.Nodes))
	m.Sched.BlockedByNode(blocked)
	for i, n := range m.Nodes {
		f := n.Proc.Engine.Active()
		ns := fault.NodeStatus{
			Node:        i,
			PC:          f.PC,
			Frame:       n.Proc.Engine.FP(),
			ThreadID:    f.ThreadID,
			Resident:    n.Proc.Engine.LoadedThreads(),
			Halted:      n.Proc.Halted,
			Retired:     n.Proc.Stats.Instructions,
			LastRetired: n.lastRetired,
			PendingIPIs: n.Proc.PendingIPIs(),
			Ready:       m.Sched.ReadyOn(i),
		}
		if n.cache != nil {
			for block, ms := range n.cache.pending {
				ns.Outstanding = append(ns.Outstanding, fault.MissStatus{
					Block:    block,
					Home:     m.net.dist.Home(block * m.net.cfg.Cache.BlockBytes),
					Write:    ms.write,
					Age:      m.net.now - ms.start,
					Poisoned: ms.poisoned,
				})
			}
			slices.SortFunc(ns.Outstanding, func(a, b fault.MissStatus) int {
				return int(a.Block) - int(b.Block)
			})
		}
		r.Nodes = append(r.Nodes, ns)
	}

	r.Sched = fault.SchedStatus{
		Live:    m.Sched.LiveThreads(),
		Ready:   m.Sched.ReadyCount(),
		Blocked: m.Sched.BlockedCount(),
	}
	m.Sched.ForEachWaiter(func(addr uint32, threads []int) {
		r.Sched.Waiters = append(r.Sched.Waiters, fault.WaiterStatus{
			Addr:    addr,
			Threads: slices.Clone(threads),
		})
	})

	if m.net != nil {
		ns := &fault.NetStatus{
			InFlight: m.net.net.InFlight(),
			Live:     m.net.net.LiveMessages(),
		}
		if t, ok := m.net.net.(*network.Torus); ok {
			ns.Links = t.Links(nil)
		}
		if m.plan != nil {
			ns.StalledLinks = m.plan.StalledLinks()
		}
		r.Net = ns
	}

	if m.tracer != nil {
		r.TraceTails = make(map[int][]string, len(m.Nodes))
		for i := range m.Nodes {
			ring := m.tracer.Node(i)
			if ring == nil {
				continue
			}
			evs := ring.Events()
			if len(evs) > traceTailEvents {
				evs = evs[len(evs)-traceTailEvents:]
			}
			if len(evs) == 0 {
				continue
			}
			tail := make([]string, 0, len(evs))
			for _, ev := range evs {
				tail = append(tail, ev.String())
			}
			r.TraceTails[i] = tail
		}
	}
	return r
}
