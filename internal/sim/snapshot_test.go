package sim_test

// Checkpoint/restore differential tests. The headline contract: a
// machine snapshotted mid-run and restored must reach a bit-identical
// end state — same cycle count, same answer, same per-node Stats — as
// the machine that kept running, across every cell of the
// (program x memory system x machine size x shard count x faults)
// matrix, and across execution tiers (an image written by the compiled
// tier restores under the reference loop, and vice versa). Malformed
// images must fail with structured errors, never panics. All tests
// here match `go test -run Snapshot`, which CI also runs under -race.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"april/internal/bench"
	"april/internal/fault"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
	"april/internal/snapshot"
)

type snapConfig struct {
	nodes  int
	shards int
	aw     bool
	faults bool
}

func (c snapConfig) simConfig() sim.Config {
	var aw *sim.AlewifeConfig
	if c.aw {
		aw = &sim.AlewifeConfig{}
	}
	var fc *fault.Config
	if c.faults {
		f := fault.Default(9)
		fc = &f
	}
	return sim.Config{
		Nodes:      c.nodes,
		Profile:    rts.APRIL,
		Alewife:    aw,
		Shards:     c.shards,
		ShardBatch: 1,
		Faults:     fc,
	}
}

func snapMachine(t *testing.T, src string, cfg sim.Config) *sim.Machine {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

// finishOutcome drives a machine from its current state to completion
// and reduces it to the comparable outcome.
func finishOutcome(t *testing.T, m *sim.Machine) ffOutcome {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := ffOutcome{cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	return out
}

// roundTrip advances a machine by window cycles, snapshots it, restores
// the image under the given overrides, and returns both continuations'
// outcomes (original machine first).
func roundTrip(t *testing.T, m *sim.Machine, window uint64, ov sim.RestoreOverrides) (ffOutcome, ffOutcome) {
	t.Helper()
	if _, err := m.RunWindow(window); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sim.Restore(img, ov)
	if err != nil {
		t.Fatal(err)
	}
	return finishOutcome(t, m), finishOutcome(t, m2)
}

// TestSnapshotDifferentialMatrix: snapshot at a mid-run boundary,
// restore, run both to the end — every cell must be bit-identical.
func TestSnapshotDifferentialMatrix(t *testing.T) {
	programs := map[string]string{
		"fib":    bench.FibSource(10),
		"queens": bench.QueensSource(5),
	}
	for name, src := range programs {
		for _, aw := range []bool{false, true} {
			mode := "perfect"
			if aw {
				mode = "alewife"
			}
			for _, nodes := range []int{1, 4, 64} {
				for _, shards := range []int{1, 4} {
					if shards > nodes {
						continue
					}
					for _, faults := range []bool{false, true} {
						if faults && !aw {
							continue // fault plans perturb the memory fabric; perfect memory has none
						}
						cell := fmt.Sprintf("%s/%s/%dp/%dshards/faults=%v", name, mode, nodes, shards, faults)
						t.Run(cell, func(t *testing.T) {
							cfg := snapConfig{nodes: nodes, shards: shards, aw: aw, faults: faults}
							m := snapMachine(t, src, cfg.simConfig())
							orig, restored := roundTrip(t, m, 2048, sim.RestoreOverrides{
								Shards:     shards,
								ShardBatch: 1,
							})
							compareOutcomes(t, restored, orig)
						})
					}
				}
			}
		}
	}
}

// TestSnapshotDoesNotPerturb: taking a snapshot mid-run must not change
// the run — the snapshotted machine's end state matches a machine that
// ran straight through.
func TestSnapshotDoesNotPerturb(t *testing.T) {
	src := bench.QueensSource(5)
	cfg := snapConfig{nodes: 8, shards: 1, aw: true}
	straight := finishOutcome(t, snapMachine(t, src, cfg.simConfig()))

	m := snapMachine(t, src, cfg.simConfig())
	if _, err := m.RunWindow(2048); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	compareOutcomes(t, finishOutcome(t, m), straight)
}

// TestSnapshotCrossTierRestore: one image, written by the default
// (compiled) tier, restored under every other tier — reference loop,
// predecode-only, epoch-disabled, sharded — all reaching the same end
// state. Tier choice is a host decision and must never leak into
// simulated results.
func TestSnapshotCrossTierRestore(t *testing.T) {
	src := bench.FibSource(10)
	cfg := snapConfig{nodes: 8, shards: 1, aw: true}
	m := snapMachine(t, src, cfg.simConfig())
	if _, err := m.RunWindow(2048); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := finishOutcome(t, m)

	tiers := map[string]sim.RestoreOverrides{
		"compiled":   {},
		"reference":  {Reference: true},
		"predecode":  {DisableCompile: true},
		"no-epoch":   {DisableEpoch: true},
		"sharded":    {Shards: 4, ShardBatch: 1},
		"checked":    {Check: true},
	}
	for name, ov := range tiers {
		t.Run(name, func(t *testing.T) {
			m2, err := sim.Restore(img, ov)
			if err != nil {
				t.Fatal(err)
			}
			compareOutcomes(t, finishOutcome(t, m2), want)
		})
	}
}

// TestSnapshotRepeatedWindows: checkpoint every window of an
// eight-window run and restore each image; every restored continuation
// must agree with the original. This exercises boundaries in all run
// phases — startup, steady state, near completion.
func TestSnapshotRepeatedWindows(t *testing.T) {
	src := bench.FibSource(9)
	cfg := snapConfig{nodes: 4, shards: 1, aw: true}
	m := snapMachine(t, src, cfg.simConfig())

	var images [][]byte
	for i := 0; i < 8; i++ {
		done, err := m.RunWindow(1024)
		if err != nil {
			t.Fatal(err)
		}
		img, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
		if done {
			break
		}
	}
	want := finishOutcome(t, m)
	for i, img := range images {
		m2, err := sim.Restore(img, sim.RestoreOverrides{})
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		compareOutcomes(t, finishOutcome(t, m2), want)
	}
}

// TestSnapshotConfigHash: images from the same run carry the same
// identity hash; changing the machine-defining configuration or the
// program changes it; host knobs (shards) do not.
func TestSnapshotConfigHash(t *testing.T) {
	hash := func(src string, cfg sim.Config) uint64 {
		m := snapMachine(t, src, cfg)
		h, err := m.ConfigHash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// New fills the shared *AlewifeConfig in place, so every machine
	// gets a freshly built Config.
	base := func() sim.Config { return snapConfig{nodes: 4, shards: 1, aw: true}.simConfig() }
	src := bench.FibSource(8)
	h0 := hash(src, base())

	if h := hash(src, base()); h != h0 {
		t.Errorf("same config hashes differ: %#x vs %#x", h, h0)
	}
	sharded := base()
	sharded.Shards = 4
	if h := hash(src, sharded); h != h0 {
		t.Errorf("host knob (shards) changed the config hash")
	}
	bigger := base()
	bigger.Nodes = 8
	if h := hash(src, bigger); h == h0 {
		t.Errorf("node count change did not change the config hash")
	}
	if h := hash(bench.FibSource(9), base()); h == h0 {
		t.Errorf("program change did not change the config hash")
	}

	// The image header carries the same hash ConfigHash reports.
	m := snapMachine(t, src, base())
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := snapshot.PeekHeader(img)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ConfigHash != h0 {
		t.Errorf("header hash %#x, ConfigHash %#x", hdr.ConfigHash, h0)
	}
}

// TestSnapshotImageValidation: malformed images fail with structured
// errors classifiable by errors.Is — never a panic, never a silently
// wrong machine.
func TestSnapshotImageValidation(t *testing.T) {
	m := snapMachine(t, bench.FibSource(8), snapConfig{nodes: 4, shards: 1, aw: true}.simConfig())
	if _, err := m.RunWindow(1024); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Run(name, func(t *testing.T) {
			bad := mutate(append([]byte(nil), img...))
			_, err := sim.Restore(bad, sim.RestoreOverrides{})
			if err == nil {
				t.Fatal("restore of malformed image succeeded")
			}
			if want != nil && !errors.Is(err, want) {
				t.Fatalf("error %v, want %v", err, want)
			}
		})
	}

	check("bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, snapshot.ErrMagic)
	check("bad-version", func(b []byte) []byte { b[8] = 99; return b }, snapshot.ErrVersion)
	check("truncated-header", func(b []byte) []byte { return b[:20] }, snapshot.ErrTruncated)
	check("truncated-payload", func(b []byte) []byte { return b[:len(b)-100] }, snapshot.ErrTruncated)
	check("flipped-payload-byte", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }, snapshot.ErrChecksum)
	// A shortened payload resealed with a valid header+checksum passes
	// Open and must fail in the decoder as a structured truncation.
	check("resealed-short", func(b []byte) []byte {
		hdr, _ := snapshot.PeekHeader(b)
		payload := b[44 : len(b)-200]
		return snapshot.Seal(payload, hdr.ConfigHash, hdr.Cycle)
	}, snapshot.ErrTruncated)

	// Truncation sweep: no cut point may panic.
	for _, n := range []int{0, 7, 8, 12, 43, 44, 45, 100, len(img) / 2} {
		if n > len(img) {
			continue
		}
		if _, err := sim.Restore(img[:n], sim.RestoreOverrides{}); err == nil {
			t.Errorf("restore of %d-byte prefix succeeded", n)
		}
	}
}

// TestSnapshotCrashReportIncludesCheckpoint: a run that crashes after
// SetCheckpointInfo tells the user where the last checkpoint is and how
// to resume from it (satellite: crash recovery UX).
func TestSnapshotCrashReportIncludesCheckpoint(t *testing.T) {
	cfg := snapConfig{nodes: 4, shards: 1, aw: true}.simConfig()
	cfg.MaxCycles = 4096 // far below completion: force a budget crash
	m := snapMachine(t, bench.QueensSource(5), cfg)
	m.SetCheckpointInfo(1024, "april -restore ckpt/000001024.img")
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected cycle-budget crash")
	}
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *sim.CrashError", err)
	}
	if !ce.Report.HasCheckpoint || ce.Report.CheckpointCycle != 1024 {
		t.Fatalf("report checkpoint: valid=%v cycle=%d", ce.Report.HasCheckpoint, ce.Report.CheckpointCycle)
	}
	text := ce.Report.Render()
	for _, want := range []string{"last checkpoint: cycle 1024", "resume with: april -restore ckpt/000001024.img"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestSnapshotSabotageDeterminism: the planted invariant violation
// (Config.SabotageCycle) fires at the same cycle in a straight run and
// in a run restored from a pre-sabotage checkpoint — the property the
// divergence bisector depends on.
func TestSnapshotSabotageDeterminism(t *testing.T) {
	cfg := snapConfig{nodes: 4, shards: 1, aw: true}.simConfig()
	cfg.SabotageCycle = 3000
	m := snapMachine(t, bench.QueensSource(5), cfg)
	if _, err := m.RunWindow(1024); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	m2, err := sim.Restore(img, sim.RestoreOverrides{Reference: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	// Advance past the sabotage cycle, then audit: the violation must
	// be present at exactly the planted cycle.
	if _, err := m2.RunWindow(3000 - 1024); err != nil {
		t.Fatal(err)
	}
	if err := m2.AuditNow(); err == nil {
		t.Fatal("audit after sabotage cycle found no violation")
	}

	// A second restore stopped one cycle short must still be clean.
	m3, err := sim.Restore(img, sim.RestoreOverrides{Reference: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m3.RunWindow(3000 - 1024 - 1); err != nil {
		t.Fatal(err)
	}
	if err := m3.AuditNow(); err != nil {
		t.Fatalf("audit one cycle before sabotage: %v", err)
	}
}
