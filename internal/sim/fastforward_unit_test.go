package sim

// White-box tests for fastForwardUntil's edge cases: the zero-skip
// returns, and jumps landing exactly on a caller-imposed limit (the
// sampler-boundary and MaxCycles caps both reduce to that).

import (
	"strings"
	"testing"

	"april/internal/mult"
	"april/internal/rts"
)

func ffTestMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	m, err := New(Config{Nodes: nodes, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFastForwardZeroSkipWhileRunning(t *testing.T) {
	m := ffTestMachine(t, 4)
	// A fresh machine has every node on the running list: at least one
	// node Steps this cycle, so no jump is possible.
	m.fastForwardUntil(1_000_000)
	if m.now != 0 {
		t.Fatalf("jumped to %d with nodes running", m.now)
	}
}

func TestFastForwardZeroSkipAtWake(t *testing.T) {
	m := ffTestMachine(t, 2)
	m.running = m.running[:0]
	m.wakeq.push(0, m.now) // a node wakes on the current cycle
	m.wakeq.push(1, m.now+100)
	m.fastForwardUntil(1_000_000)
	if m.now != 0 {
		t.Fatalf("jumped to %d across a due wake", m.now)
	}
}

func TestFastForwardZeroSkipAtLimit(t *testing.T) {
	m := ffTestMachine(t, 1)
	m.running = m.running[:0]
	m.wakeq.push(0, 500)
	m.fastForwardUntil(m.now) // limit == now: nothing to skip
	if m.now != 0 {
		t.Fatalf("jumped to %d past a zero-length window", m.now)
	}
}

func TestFastForwardJumpsToNextWake(t *testing.T) {
	m := ffTestMachine(t, 2)
	m.running = m.running[:0]
	m.wakeq.push(0, 50)
	m.wakeq.push(1, 90)
	m.fastForwardUntil(1_000_000)
	if m.now != 50 {
		t.Fatalf("now = %d, want the earliest wake 50", m.now)
	}
}

func TestFastForwardLandsExactlyOnLimit(t *testing.T) {
	// The sampler-boundary and MaxCycles caps both pass a limit the
	// jump must land on exactly — never cross, never stop short of
	// when the next wake is beyond it.
	m := ffTestMachine(t, 1)
	m.running = m.running[:0]
	m.wakeq.push(0, 500)
	m.fastForwardUntil(100)
	if m.now != 100 {
		t.Fatalf("now = %d, want the cap 100", m.now)
	}
	// Repeating at the cap is the zero-skip return.
	m.fastForwardUntil(100)
	if m.now != 100 {
		t.Fatalf("now = %d after repeat, want 100", m.now)
	}
	// A fresh window jumps the rest of the way.
	m.fastForwardUntil(1_000_000)
	if m.now != 500 {
		t.Fatalf("now = %d, want the wake 500", m.now)
	}
}

func TestFastForwardLandsExactlyOnMaxCycles(t *testing.T) {
	m := ffTestMachine(t, 1)
	m.running = m.running[:0]
	m.wakeq.push(0, m.Cfg.MaxCycles+1000)
	m.fastForwardUntil(m.Cfg.MaxCycles)
	if m.now != m.Cfg.MaxCycles {
		t.Fatalf("now = %d, want MaxCycles %d", m.now, m.Cfg.MaxCycles)
	}
}

// TestBudgetErrorMatchesReference runs a real program into the cycle
// budget on both loops: they must fail the same way (the fast loop's
// capped jump lands exactly on MaxCycles and errors before executing
// that cycle, like the reference loop's per-cycle check).
func TestBudgetErrorMatchesReference(t *testing.T) {
	src := `
(define (spin n) (if (= n 0) 0 (spin (- n 1))))
(spin 1000000)
`
	runOut := func(reference bool) error {
		m, err := New(Config{
			Nodes:              2,
			Profile:            rts.APRIL,
			MaxCycles:          5000,
			DisableFastForward: reference,
			DisablePredecode:   reference,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		_, err = m.Run()
		return err
	}
	fast, ref := runOut(false), runOut(true)
	if fast == nil || ref == nil {
		t.Fatalf("expected budget errors, got fast=%v ref=%v", fast, ref)
	}
	if !strings.Contains(fast.Error(), "cycle budget") || fast.Error() != ref.Error() {
		t.Fatalf("errors diverge:\nfast: %v\nref:  %v", fast, ref)
	}
}
