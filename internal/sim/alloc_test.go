package sim_test

// Allocation-regression tests: the simulator's steady state must not
// churn the Go allocator. Message pooling, value-typed payloads, the
// flat directory table, and the recycled scheduler/controller scratch
// buffers together pin the per-cycle allocation rate of a full
// 64-node ALEWIFE run at (near) zero — the residual budget covers only
// thread creation (Thread objects are semantically identified by ID
// and deliberately not pooled) and amortized map/table growth.

import (
	"testing"

	"april/internal/bench"
	"april/internal/mult"
	"april/internal/network"
	"april/internal/rts"
	"april/internal/sim"
)

// loadedQueens64 builds a 64-node ALEWIFE machine loaded with the
// queens benchmark (the longest-running program that fits the default
// arenas at this node count; queens(7) runs ~30k cycles).
func loadedQueens64(t testing.TB) *sim.Machine {
	t.Helper()
	m, err := sim.New(sim.Config{
		Nodes:   64,
		Profile: rts.APRIL,
		Alewife: &sim.AlewifeConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(bench.QueensSource(7), mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAlewifeSteadyStateAllocRate(t *testing.T) {
	m := loadedQueens64(t)
	// Run past the growth phase: demand paging of the working set,
	// message-pool and scratch-buffer sizing, and the task tree's
	// expansion (each new task allocates its Thread object). By 26k
	// cycles every pool and buffer has reached its working size and the
	// per-window allocation count measures exactly zero; the run is
	// deterministic, so this boundary is stable.
	if done, err := m.RunWindow(26_000); err != nil {
		t.Fatal(err)
	} else if done {
		t.Fatal("program finished during warm-up")
	}
	const window = 600
	var werr error
	run := func() {
		if _, err := m.RunWindow(window); err != nil {
			werr = err
		}
	}
	// 6 windows (1 warm-up + 5 measured) x 600 cycles on top of the
	// 26k warm-up ends at cycle 29,600, inside queens(7)'s 30,290-cycle
	// run, so the program never finishes mid-measure.
	allocsPerWindow := testing.AllocsPerRun(5, run)
	if werr != nil {
		t.Fatal(werr)
	}
	perCycle := allocsPerWindow / window
	t.Logf("steady state: %.1f allocs per %d-cycle window (%.4f allocs/cycle)",
		allocsPerWindow, window, perCycle)
	// The tiny epsilon tolerates a stray runtime-internal allocation;
	// the simulator itself contributes none — the seed's
	// per-message/per-payload/per-map-entry churn was ~100 allocs per
	// 600-cycle window at this machine size.
	if perCycle > 0.01 {
		t.Errorf("steady-state allocation rate %.4f allocs/cycle, want ~0 (<= 0.01)", perCycle)
	}
}

// BenchmarkAlewifeSteadyWindow reports the steady-state cost of one
// simulated cycle at 64 nodes; with -benchmem its allocs/op column is
// the headline number this package pins at zero. The machine is
// rebuilt whenever the program runs out of cycles, outside the timer.
func BenchmarkAlewifeSteadyWindow(b *testing.B) {
	const window = 500
	m := loadedQueens64(b)
	warm := func() {
		if done, err := m.RunWindow(26_000); err != nil {
			b.Fatal(err)
		} else if done {
			b.Fatal("program finished during warm-up")
		}
	}
	warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := m.RunWindow(window)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			b.StopTimer()
			m = loadedQueens64(b)
			warm()
			b.StartTimer()
		}
	}
}

// TestPoisonedRecycleIdentity proves no consumer retains a pooled
// message past its recycle point: with poison-on-recycle enabled every
// recycled message is overwritten with garbage, so any handler that
// read a payload after handing the message back would diverge. The
// poisoned run must match the plain run bit for bit, on both run
// loops.
func TestPoisonedRecycleIdentity(t *testing.T) {
	src := bench.QueensSource(5)
	for _, naive := range []bool{false, true} {
		name := "fast"
		if naive {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			plain := runDifferential(t, src, ffConfig{nodes: 8, alewife: true, naive: naive})
			network.SetPoisonRecycle(true)
			defer network.SetPoisonRecycle(false)
			poisoned := runDifferential(t, src, ffConfig{nodes: 8, alewife: true, naive: naive})
			compareOutcomes(t, poisoned, plain)
		})
	}
}
