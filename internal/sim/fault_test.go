package sim_test

// Fault-injection tests: seeded perturbations must shift timing without
// changing results, both run loops must agree cycle-for-cycle under the
// same plan, the checkers must be invisible to clean runs, and an
// induced wedge must die with a structured crash report instead of a
// bare string.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"april/internal/bench"
	"april/internal/fault"
	"april/internal/mult"
	"april/internal/network"
	"april/internal/rts"
	"april/internal/sim"
)

// runFaulted runs src on an ALEWIFE machine with the given fault
// config and checker setting, returning the outcome (or the run error
// when wantErr).
func runFaulted(t *testing.T, src string, cfg sim.Config, wantErr bool) (ffOutcome, error) {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		if !wantErr {
			t.Fatal(err)
		}
		return ffOutcome{}, err
	}
	out := ffOutcome{cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	return out, nil
}

// TestInvariantFaultDifferential holds the two run loops to bit
// identity under an active fault plan: same seed, same perturbations,
// same cycle count — the fault draws must be order-independent, not
// tied to either loop's iteration structure.
func TestInvariantFaultDifferential(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		ideal bool
	}{
		{"queens-torus", bench.QueensSource(5), false},
		{"fib-ideal", bench.FibSource(10), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := fault.Default(9)
			mk := func(naive bool) sim.Config {
				return sim.Config{
					Nodes:              8,
					Profile:            rts.APRIL,
					Alewife:            &sim.AlewifeConfig{IdealNet: tc.ideal},
					Faults:             &fc,
					Check:              true,
					DisableFastForward: naive,
					DisablePredecode:   naive,
				}
			}
			fast, _ := runFaulted(t, tc.src, mk(false), false)
			naive, _ := runFaulted(t, tc.src, mk(true), false)
			compareOutcomes(t, fast, naive)
		})
	}
}

// TestInvariantFaultSeedsPreserveAnswer: the headline invariant — any
// seed may shift cycle counts, never the computed answer.
func TestInvariantFaultSeedsPreserveAnswer(t *testing.T) {
	src := bench.QueensSource(5)
	base := sim.Config{Nodes: 4, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}, Check: true}
	clean, _ := runFaulted(t, src, base, false)
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := base
		fc := fault.Default(seed)
		cfg.Faults = &fc
		got, _ := runFaulted(t, src, cfg, false)
		if got.value != clean.value {
			t.Errorf("seed %d: answer %q, fault-free answer %q", seed, got.value, clean.value)
		}
	}
}

// TestInvariantCheckersAreReadOnly: a clean run is bit-identical with
// checking on or off — the precondition for running the fault matrix
// with checkers armed.
func TestInvariantCheckersAreReadOnly(t *testing.T) {
	src := bench.QueensSource(5)
	mk := func(check bool) sim.Config {
		return sim.Config{Nodes: 8, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}, Check: check}
	}
	on, _ := runFaulted(t, src, mk(true), false)
	off, _ := runFaulted(t, src, mk(false), false)
	compareOutcomes(t, on, off)
}

// TestInvariantInducedWedgeAutopsy permanently stalls every torus link
// and demands a structured report — reason, stalled links, per-node
// blocked state — rather than a bare error string or a panic.
func TestInvariantInducedWedgeAutopsy(t *testing.T) {
	geo := network.FitGeometry(4)
	nch := geo.Nodes() * 2 * geo.Dim
	links := make([]int, nch)
	for i := range links {
		links[i] = i
	}
	cfg := sim.Config{
		Nodes:          4,
		Profile:        rts.APRIL,
		Alewife:        &sim.AlewifeConfig{Geometry: geo},
		Faults:         &fault.Config{Seed: 1, StallLinks: links},
		Check:          true,
		DeadlockWindow: 60_000,
	}
	_, err := runFaulted(t, bench.QueensSource(5), cfg, true)
	if err == nil {
		t.Fatal("run over a fully stalled network completed")
	}
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("wedge error is %T (%v), want *sim.CrashError", err, err)
	}
	r := ce.Report
	if r.Reason != fault.ReasonDeadlock && r.Reason != fault.ReasonLivelock {
		t.Errorf("reason %q, want deadlock or livelock", r.Reason)
	}
	if r.Net == nil || len(r.Net.StalledLinks) != nch {
		t.Fatalf("report does not carry the stalled links: %+v", r.Net)
	}
	out := r.Render()
	if !strings.Contains(out, "STALLED (fault plan)") {
		t.Errorf("rendered report names no stalled link:\n%s", out)
	}
	if !strings.Contains(out, "last-retired@") {
		t.Errorf("rendered report lacks per-node progress:\n%s", out)
	}
	// The wedged request itself must appear as an outstanding miss.
	misses := 0
	for _, n := range r.Nodes {
		misses += len(n.Outstanding)
	}
	if misses == 0 {
		t.Errorf("no outstanding miss recorded in:\n%s", out)
	}
}

// TestInvariantBudgetCrashReport: cycle-budget exhaustion goes through
// the same forensics path, with the error text unchanged for existing
// callers.
func TestInvariantBudgetCrashReport(t *testing.T) {
	cfg := sim.Config{Nodes: 2, Profile: rts.APRIL, MaxCycles: 500}
	_, err := runFaulted(t, bench.FibSource(18), cfg, true)
	if err == nil {
		t.Fatal("500-cycle budget was not exceeded")
	}
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("budget error is %T, want *sim.CrashError", err)
	}
	if ce.Report.Reason != fault.ReasonBudget {
		t.Errorf("reason %q, want %q", ce.Report.Reason, fault.ReasonBudget)
	}
	want := fmt.Sprintf("sim: exceeded cycle budget %d", cfg.MaxCycles)
	if err.Error() != want {
		t.Errorf("error text %q, want %q", err.Error(), want)
	}
}
