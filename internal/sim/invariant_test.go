package sim

// White-box invariant tests: the wake-queue determinism guard and the
// coherence checker's ability to actually catch corrupted state (a
// checker that never fires is indistinguishable from one that works).

import (
	"strings"
	"testing"

	"april/internal/cache"
	"april/internal/rts"
)

func TestInvariantWakeQueuePastEntry(t *testing.T) {
	var q wakeQueue
	q.init(4)
	q.push(2, 5)
	q.push(1, 5)

	// Exactly-due entries pop in ascending node order.
	due := q.popDue(5, nil)
	if len(due) != 2 || due[0] != 1 || due[1] != 2 {
		t.Fatalf("popDue(5) = %v, want [1 2]", due)
	}

	// An entry strictly earlier than now means the run loop skipped a
	// scheduled step; the queue must refuse to paper over it.
	q.push(3, 7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("popDue past a scheduled wake did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "wake queue entry in the past") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	q.popDue(8, nil)
}

func TestInvariantCheckerDetectsDoubleWriter(t *testing.T) {
	m, err := New(Config{
		Nodes:   4,
		Profile: rts.APRIL,
		Alewife: &AlewifeConfig{},
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.checker == nil || m.net.check == nil {
		t.Fatal("Check: true did not arm the checker")
	}

	// Plant the same block Exclusive in two caches behind the
	// directory's back — the corruption a protocol bug would produce.
	const block = 7
	m.net.ctls[0].cache.Insert(block, cache.Exclusive)
	m.net.ctls[1].cache.Insert(block, cache.Exclusive)
	m.net.checkBlock(block)

	if m.checker.Total() == 0 {
		t.Fatal("checker saw two exclusive holders and recorded nothing")
	}
	found := false
	for _, v := range m.checker.Violations() {
		if v.Name == "coherence/single-writer" {
			found = true
			if v.Block != block {
				t.Errorf("violation block %#x, want %#x", v.Block, block)
			}
		}
	}
	if !found {
		t.Errorf("no single-writer violation among %v", m.checker.Violations())
	}
}

func TestInvariantCheckerDetectsDirtyShared(t *testing.T) {
	m, err := New(Config{
		Nodes:   2,
		Profile: rts.APRIL,
		Alewife: &AlewifeConfig{},
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const block = 3
	m.net.ctls[1].cache.Insert(block, cache.Shared)
	m.net.ctls[1].cache.MarkDirty(block)
	m.net.checkBlock(block)
	found := false
	for _, v := range m.checker.Violations() {
		if v.Name == "coherence/dirty-not-exclusive" {
			found = true
		}
	}
	if !found {
		t.Errorf("no dirty-not-exclusive violation among %v", m.checker.Violations())
	}
}
