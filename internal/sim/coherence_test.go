package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"april/internal/cache"
	"april/internal/directory"
	"april/internal/isa"
	"april/internal/proc"
	"april/internal/rts"
)

// Protocol stress test: drive random reads and writes from every node
// into a small contended region, then drain the machine and check the
// directory protocol's global invariants.

func newAlewifeMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	m, err := New(Config{
		Nodes:   nodes,
		Profile: rts.APRIL,
		Alewife: &AlewifeConfig{
			MemLatency: 10,
			Cache:      cache.Config{SizeBytes: 1 << 10, BlockBytes: 16, Assoc: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// quiesce ticks the fabric until no transactions or packets remain.
func quiesce(t *testing.T, m *Machine) {
	t.Helper()
	for i := 0; i < 200000; i++ {
		m.net.tick()
		busy := false
		for _, n := range m.Nodes {
			ctl := n.cache
			if len(ctl.pending) > 0 || len(ctl.homeTx) > 0 || len(ctl.outbox) > 0 {
				busy = true
			}
		}
		if tor, ok := m.net.net.(interface{ InFlight() int }); ok && tor.InFlight() > 0 {
			busy = true
		}
		if !busy {
			return
		}
	}
	t.Fatal("machine did not quiesce")
}

// checkCoherence verifies the quiescent-state invariants:
//  1. at most one cache holds a block Exclusive, and then no other
//     cache holds it at all;
//  2. an Exclusive copy at node i implies the home directory records
//     {Exclusive, owner=i};
//  3. a Shared copy at node i implies the home records i as a sharer
//     (stale directory sharers from silent evictions are permitted —
//     the set may be a superset, never a subset).
func checkCoherence(t *testing.T, m *Machine) {
	t.Helper()
	type holder struct {
		node int
		st   cache.State
	}
	holders := map[uint32][]holder{}
	// Every cached block went through its home directory, so the union
	// of directory entries covers the cached universe.
	blocks := map[uint32]bool{}
	for _, n := range m.Nodes {
		for _, b := range n.cache.dir.Blocks() {
			blocks[b] = true
		}
	}
	for b := range blocks {
		for _, n := range m.Nodes {
			if st, ok := n.cache.cache.Probe(b); ok {
				holders[b] = append(holders[b], holder{node: n.Proc.ID, st: st})
			}
		}
	}
	for b, hs := range holders {
		home := m.net.dist.Home(b * m.net.cfg.Cache.BlockBytes)
		e := m.Nodes[home].cache.dir.Entry(b)
		var exclusive []int
		for _, h := range hs {
			if h.st == cache.Exclusive {
				exclusive = append(exclusive, h.node)
			}
		}
		if len(exclusive) > 1 {
			t.Fatalf("block %#x: multiple exclusive holders %v", b, exclusive)
		}
		if len(exclusive) == 1 {
			if len(hs) != 1 {
				t.Fatalf("block %#x: exclusive at %d alongside other copies %v", b, exclusive[0], hs)
			}
			if e.State != directory.Exclusive || e.Owner != exclusive[0] {
				t.Fatalf("block %#x: cache exclusive at %d but home says %v owner %d",
					b, exclusive[0], e.State, e.Owner)
			}
			continue
		}
		for _, h := range hs {
			if h.st != cache.Shared {
				continue
			}
			if e.State == directory.Shared && e.Sharers.Has(h.node) {
				continue
			}
			t.Fatalf("block %#x: shared copy at node %d unknown to home (dir %v %s owner %d)",
				b, h.node, e.State, e.Sharers.String(), e.Owner)
		}
	}
}

func TestCoherenceStress(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			m := newAlewifeMachine(t, nodes)
			rng := rand.New(rand.NewSource(int64(nodes) * 977))

			// A small region so every block is contended.
			const blocks = 8
			base := uint32(0x100000)
			flavRead := isa.OpLdnt.Flavor()
			flavWrite := isa.OpStnt.Flavor()

			steps := 30000
			if testing.Short() {
				steps = 5000
			}
			for step := 0; step < steps; step++ {
				node := rng.Intn(nodes)
				addr := base + uint32(rng.Intn(blocks))*16 + uint32(rng.Intn(4))*4
				store := rng.Intn(3) == 0
				ctl := m.Nodes[node].cache
				var err error
				if store {
					_, err = ctl.Access(addr, flavWrite, true, isa.MakeFixnum(int32(step)))
				} else {
					_, err = ctl.Access(addr, flavRead, false, 0)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				// RemoteMiss replies are the processor's trap; the
				// "processor" here just tries a different access next
				// step, as a switch-spinning machine would.
				m.net.tick()
			}
			quiesce(t, m)
			checkCoherence(t, m)
		})
	}
}

// TestCoherenceFunctional checks writes are never lost: one node
// increments a counter word under exclusive ownership; other nodes
// read it. The final value must equal the number of completed
// increments.
func TestCoherenceFunctional(t *testing.T) {
	m := newAlewifeMachine(t, 4)
	addr := uint32(0x200000)
	writer := m.Nodes[0].cache
	readers := []*cacheCtl{m.Nodes[1].cache, m.Nodes[2].cache, m.Nodes[3].cache}
	flavRead := isa.OpLdnt.Flavor()
	flavWrite := isa.OpStnt.Flavor()

	completed := 0
	val := int32(0)
	for i := 0; i < 5000; i++ {
		// Writer: read-modify-write when it can.
		if res, err := writer.Access(addr, flavRead, false, 0); err != nil {
			t.Fatal(err)
		} else if res.Outcome == proc.OK {
			val = isa.FixnumValue(res.Value) + 1
			if res2, err := writer.Access(addr, flavWrite, true, isa.MakeFixnum(val)); err != nil {
				t.Fatal(err)
			} else if res2.Outcome == proc.OK {
				completed++
			}
		}
		// Readers poke at it, forcing downgrades.
		r := readers[i%3]
		if _, err := r.Access(addr, flavRead, false, 0); err != nil {
			t.Fatal(err)
		}
		m.net.tick()
	}
	quiesce(t, m)
	final := isa.FixnumValue(m.Mem.MustLoad(addr))
	if int(final) != completed {
		t.Errorf("final counter %d, completed increments %d", final, completed)
	}
	checkCoherence(t, m)
}
