package sim_test

// Differential tests for sharded execution: the same program on the
// same machine must produce bit-identical cycle counts, Stats, answers,
// and timeline rows for every shard count, with faults armed and with
// tracing enabled. ShardBatch is pinned to 1 so every eligible cycle
// actually exercises the parallel phases instead of the inline
// small-cycle fallback. All tests here match `go test -run Shard`,
// which CI also runs under -race.

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"april/internal/bench"
	"april/internal/fault"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
	"april/internal/trace"
)

type shardConfig struct {
	nodes   int
	shards  int
	alewife bool
	ideal   bool // ideal network instead of the torus (alewife only)
	faults  *fault.Config
	tracing bool
	ringCap int
}

type shardOutcome struct {
	ffOutcome
	rings []ringDigest
	cross uint64
}

// ringDigest is one node's trace ring reduced to what sharding must
// preserve: the event count and the multiset of events. Within a cycle
// a global actor's emission onto another node's ring may interleave
// differently than the reference order, so events are compared sorted
// by (Cycle, Kind, A, B, C, D) — the multiset, not the sequence.
type ringDigest struct {
	total  uint64
	events []trace.Event
}

func runSharded(t *testing.T, src string, cfg shardConfig) shardOutcome {
	t.Helper()
	var aw *sim.AlewifeConfig
	if cfg.alewife {
		aw = &sim.AlewifeConfig{IdealNet: cfg.ideal}
	}
	m, err := sim.New(sim.Config{
		Nodes:      cfg.nodes,
		Profile:    rts.APRIL,
		Alewife:    aw,
		Shards:     cfg.shards,
		ShardBatch: 1,
		Faults:     cfg.faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sampler *trace.Sampler
	if cfg.tracing {
		m.EnableTracing(cfg.ringCap)
		sampler = m.EnableTimeline(256)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := shardOutcome{cross: m.CrossShardMessages()}
	out.cycles = res.Cycles
	out.value = res.Formatted
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	if sampler != nil {
		out.samples = sampler.Rows()
	}
	if tr := m.Tracer(); tr != nil {
		for i := 0; i < tr.Nodes(); i++ {
			ring := tr.Node(i)
			if d := ring.Dropped(); d != 0 {
				t.Fatalf("node %d ring dropped %d events; grow ringCap so multisets are comparable", i, d)
			}
			evs := ring.Events()
			slices.SortFunc(evs, cmpEvent)
			out.rings = append(out.rings, ringDigest{total: ring.Total(), events: evs})
		}
	}
	return out
}

func cmpEvent(a, b trace.Event) int {
	switch {
	case a.Cycle != b.Cycle:
		if a.Cycle < b.Cycle {
			return -1
		}
		return 1
	case a.Kind != b.Kind:
		return int(a.Kind) - int(b.Kind)
	case a.A != b.A:
		return int(a.A) - int(b.A)
	case a.B != b.B:
		return int(a.B) - int(b.B)
	case a.C != b.C:
		return int(a.C) - int(b.C)
	default:
		return int(a.D) - int(b.D)
	}
}

func compareSharded(t *testing.T, got, want shardOutcome) {
	t.Helper()
	compareOutcomes(t, got.ffOutcome, want.ffOutcome)
	if len(got.rings) != len(want.rings) {
		t.Fatalf("ring count: %d vs %d", len(got.rings), len(want.rings))
	}
	for i := range got.rings {
		if got.rings[i].total != want.rings[i].total {
			t.Errorf("node %d ring total: %d vs %d", i, got.rings[i].total, want.rings[i].total)
			continue
		}
		if !reflect.DeepEqual(got.rings[i].events, want.rings[i].events) {
			t.Errorf("node %d event multiset diverges (%d events)", i, len(got.rings[i].events))
		}
	}
}

// TestShardDifferentialMatrix is the headline contract: every cell of
// (program x memory system x machine size x shard count) is
// bit-identical to the sequential (Shards=1) run.
func TestShardDifferentialMatrix(t *testing.T) {
	programs := map[string]string{
		"fib":    bench.FibSource(10),
		"queens": bench.QueensSource(5),
	}
	for name, src := range programs {
		for _, alewife := range []bool{false, true} {
			mode := "perfect"
			if alewife {
				mode = "alewife"
			}
			for _, nodes := range []int{4, 8, 64, 256} {
				base := runSharded(t, src, shardConfig{nodes: nodes, shards: 1, alewife: alewife})
				for _, shards := range []int{2, 4, 8} {
					t.Run(fmt.Sprintf("%s/%s/%dp/%dshards", name, mode, nodes, shards), func(t *testing.T) {
						got := runSharded(t, src, shardConfig{nodes: nodes, shards: shards, alewife: alewife})
						compareSharded(t, got, base)
					})
				}
			}
		}
	}
}

// TestShardFaultsDifferential arms a seeded fault plan: its draws are
// site/sequence hashed and order-independent, so the perturbed run —
// shifted cycle counts and all — must still be bit-identical across
// shard counts, on both network backends.
func TestShardFaultsDifferential(t *testing.T) {
	src := bench.QueensSource(5)
	for _, ideal := range []bool{false, true} {
		net := "torus"
		if ideal {
			net = "ideal"
		}
		fc := fault.Default(9)
		base := runSharded(t, src, shardConfig{nodes: 8, shards: 1, alewife: true, ideal: ideal, faults: &fc})
		for _, shards := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/%dshards", net, shards), func(t *testing.T) {
				got := runSharded(t, src, shardConfig{nodes: 8, shards: shards, alewife: true, ideal: ideal, faults: &fc})
				compareSharded(t, got, base)
			})
		}
	}
}

// TestShardTracingDifferential runs with the tracer and timeline
// sampler attached: timeline rows must match exactly, and every node's
// trace ring must record the same events (as a per-cycle multiset; see
// ringDigest) and the same totals — the rings are per-node and must be
// written race-free by the parallel phases.
func TestShardTracingDifferential(t *testing.T) {
	src := bench.QueensSource(5)
	const ringCap = 1 << 16
	for _, alewife := range []bool{false, true} {
		mode := "perfect"
		if alewife {
			mode = "alewife"
		}
		base := runSharded(t, src, shardConfig{nodes: 8, shards: 1, alewife: alewife, tracing: true, ringCap: ringCap})
		for _, shards := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/%dshards", mode, shards), func(t *testing.T) {
				got := runSharded(t, src, shardConfig{nodes: 8, shards: shards, alewife: alewife, tracing: true, ringCap: ringCap})
				compareSharded(t, got, base)
			})
		}
	}
}

// TestShardPartitionAccessor verifies Machine.Partition(): contiguous,
// non-empty blocks covering [0, Nodes) exactly once, for 1-D/2-D/3-D
// geometry fits including non-power-of-two node counts, and for shard
// counts that do not divide the node count (or exceed it).
func TestShardPartitionAccessor(t *testing.T) {
	// Node counts chosen to exercise the geometry fitter's shapes:
	// 5 and 60 fall back to a 1-D ring, 27 and 64 fit 3-D cubes, the
	// rest land in between; the partition must be shape-independent.
	for _, nodes := range []int{1, 3, 5, 8, 27, 60, 64, 100, 256} {
		for _, shards := range []int{1, 2, 3, 4, 7, 8, 64, 1000} {
			t.Run(fmt.Sprintf("%dp/%dshards", nodes, shards), func(t *testing.T) {
				m, err := sim.New(sim.Config{
					Nodes:   nodes,
					Profile: rts.APRIL,
					Alewife: &sim.AlewifeConfig{},
					Shards:  shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				p := m.Partition()
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				if p.Nodes() != nodes {
					t.Fatalf("partition covers %d nodes, machine has %d", p.Nodes(), nodes)
				}
				wantShards := shards
				if wantShards > nodes {
					wantShards = nodes
				}
				if wantShards < 1 {
					wantShards = 1
				}
				if p.Shards() != wantShards {
					t.Fatalf("partition has %d shards, want %d", p.Shards(), wantShards)
				}
				// Exact cover by contiguous blocks, in order, each node
				// owned by the shard Of reports.
				next := 0
				for s := 0; s < p.Shards(); s++ {
					lo, hi := p.Block(s)
					if lo != next {
						t.Fatalf("shard %d starts at %d, want %d", s, lo, next)
					}
					if hi <= lo {
						t.Fatalf("shard %d is empty [%d,%d)", s, lo, hi)
					}
					for n := lo; n < hi; n++ {
						if p.Of(n) != s {
							t.Fatalf("Of(%d) = %d, want %d", n, p.Of(n), s)
						}
					}
					next = hi
				}
				if next != nodes {
					t.Fatalf("blocks cover [0,%d), want [0,%d)", next, nodes)
				}
			})
		}
	}
}

// TestShardSequentialPathUnaffected pins the guard rails: the oracle
// loop and the invariant checkers force one shard, and a sharded run's
// Partition still reports the requested layout.
func TestShardSequentialPathUnaffected(t *testing.T) {
	mk := func(mutate func(*sim.Config)) *sim.Machine {
		cfg := sim.Config{Nodes: 8, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}, Shards: 4}
		if mutate != nil {
			mutate(&cfg)
		}
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if got := mk(nil).Partition().Shards(); got != 4 {
		t.Errorf("sharded machine: %d shards, want 4", got)
	}
	if got := mk(func(c *sim.Config) { c.DisableFastForward = true }).Partition().Shards(); got != 1 {
		t.Errorf("oracle loop: %d shards, want 1", got)
	}
	if got := mk(func(c *sim.Config) { c.Check = true }).Partition().Shards(); got != 1 {
		t.Errorf("checkers armed: %d shards, want 1", got)
	}
}
