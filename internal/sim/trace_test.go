package sim_test

// Differential tests for the observability subsystem: tracing and
// timeline sampling are observation-only, so simulated results must be
// bit-identical with them on or off — across perfect-memory and
// ALEWIFE configurations, and with the sampler shortening fast-forward
// jumps. Plus structural checks on the exported artifacts.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"april/internal/bench"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
	"april/internal/trace"
)

type traceOutcome struct {
	cycles uint64
	value  string
	stats  []proc.Stats
}

// buildMachine compiles src onto a fresh machine.
func buildMachine(t *testing.T, src string, nodes int, alewife bool) *sim.Machine {
	t.Helper()
	var aw *sim.AlewifeConfig
	if alewife {
		aw = &sim.AlewifeConfig{}
	}
	m, err := sim.New(sim.Config{Nodes: nodes, Profile: rts.APRIL, Alewife: aw})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

func runObserved(t *testing.T, src string, nodes int, alewife, tracing, timeline bool) (traceOutcome, *sim.Machine) {
	t.Helper()
	m := buildMachine(t, src, nodes, alewife)
	if tracing {
		m.EnableTracing(256) // small ring: exercises wrap during real runs
	}
	if timeline {
		m.EnableTimeline(512) // small window: exercises the fast-forward cap
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := traceOutcome{cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	return out, m
}

func TestTracingIsObservationOnly(t *testing.T) {
	configs := []struct {
		name    string
		src     string
		nodes   int
		alewife bool
	}{
		{"fib/perfect/4p", bench.FibSource(12), 4, false},
		{"fib/alewife/4p", bench.FibSource(12), 4, true},
		{"fib/alewife/8p", bench.FibSource(10), 8, true},
		{"queens/perfect/8p", bench.QueensSource(6), 8, false},
		{"queens/alewife/2p", bench.QueensSource(5), 2, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			off, _ := runObserved(t, cfg.src, cfg.nodes, cfg.alewife, false, false)
			on, m := runObserved(t, cfg.src, cfg.nodes, cfg.alewife, true, true)
			if on.cycles != off.cycles {
				t.Errorf("cycles: traced %d != untraced %d", on.cycles, off.cycles)
			}
			if on.value != off.value {
				t.Errorf("result: traced %s != untraced %s", on.value, off.value)
			}
			for i := range on.stats {
				if !reflect.DeepEqual(on.stats[i], off.stats[i]) {
					t.Errorf("node %d stats diverge:\ntraced:   %+v\nuntraced: %+v", i, on.stats[i], off.stats[i])
				}
			}
			if m.Tracer().TotalEvents() == 0 {
				t.Error("traced run recorded no events")
			}
		})
	}
}

func TestTimelineMeanMatchesStats(t *testing.T) {
	_, m := runObserved(t, bench.FibSource(12), 8, true, false, true)
	stats := m.TotalStats()
	want := stats.Utilization()
	got := m.Sampler().MeanUtilization()
	if want == 0 {
		t.Fatal("run reports zero utilization")
	}
	// The final partial window makes the series sum to the end-of-run
	// stats exactly; allow float rounding but hold the 1% acceptance
	// bound with a large margin.
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Errorf("timeline mean %f vs stats %f (rel err %g)", got, want, rel)
	}
	if len(m.Sampler().Rows()) < 8 {
		t.Errorf("only %d sample rows", len(m.Sampler().Rows()))
	}
	// Per-node telescoping: summed deltas equal each node's totals.
	for i, n := range m.Nodes {
		var useful uint64
		for _, r := range m.Sampler().Rows() {
			if r.Node == i {
				useful += r.Useful
			}
		}
		if useful != n.Proc.Stats.UsefulCycles {
			t.Errorf("node %d: timeline useful %d != stats %d", i, useful, n.Proc.Stats.UsefulCycles)
		}
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	_, m := runObserved(t, bench.FibSource(11), 4, true, true, false)
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, m.Tracer(), rts.APRIL.Frames, m.Now()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	phases := map[string]bool{}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph] = true
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	for _, ph := range []string{"M", "X"} {
		if !phases[ph] {
			t.Errorf("export lacks %q events", ph)
		}
	}
	if len(pids) != 4 {
		t.Errorf("export covers %d processes, want one per node (4)", len(pids))
	}
}

func TestCounterRegistrySnapshot(t *testing.T) {
	_, m := runObserved(t, bench.FibSource(11), 4, true, true, false)
	reg := m.CounterRegistry()
	snap := reg.Snapshot()
	for _, group := range []string{"scheduler", "machine", "network", "node0.proc", "node0.memory", "node3.proc"} {
		if _, ok := snap[group]; !ok {
			t.Errorf("snapshot lacks group %q (have %v)", group, reg.Groups())
		}
	}
	stats := m.TotalStats()
	if got := snap["machine"]["instructions"]; got != stats.Instructions {
		t.Errorf("machine.instructions %d != TotalStats %d", got, stats.Instructions)
	}
	if got := snap["machine"]["cycles"]; got != m.Now() {
		t.Errorf("machine.cycles %d != %d", got, m.Now())
	}
	if snap["machine"]["trace_events"] == 0 {
		t.Error("trace_events counter is zero on a traced run")
	}
	// Per-node proc counters sum to the machine totals.
	var useful uint64
	for i := range m.Nodes {
		useful += snap[fmt.Sprintf("node%d.proc", i)]["useful_cycles"]
	}
	if useful != stats.UsefulCycles {
		t.Errorf("per-node useful sum %d != total %d", useful, stats.UsefulCycles)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") {
		t.Error("counters JSON contains NaN")
	}
}

func TestSwitchCausesAttributed(t *testing.T) {
	// On ALEWIFE, remote misses must show up as cache-miss switches.
	_, m := runObserved(t, bench.FibSource(12), 4, true, true, false)
	causes := map[int32]int{}
	tr := m.Tracer()
	for n := 0; n < tr.Nodes(); n++ {
		for _, ev := range tr.Node(n).Events() {
			if ev.Kind == trace.KSwitch {
				causes[ev.C]++
			}
		}
	}
	if len(causes) == 0 {
		t.Fatal("no switch events recorded")
	}
	if causes[trace.CauseCacheMiss] == 0 {
		t.Errorf("no cache-miss switches on ALEWIFE (causes: %v)", causes)
	}
}
