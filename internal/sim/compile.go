package sim

// Machine side of the compiled execution tier. The run loops call
// fusedStep when a cycle has exactly one stepper: if the machine can
// prove the node is isolated for a window of cycles — every other node
// sleeps past the window, the fabric fires no event inside it, and no
// watchdog watermark falls in it — then executing the node's next W
// cycles back-to-back (proc.StepFused) is observably identical to
// interleaving them with the machine loop, and the window collapses to
// one multi-cycle step. Single-processor machines spend essentially
// the whole run inside such windows; larger machines use them across
// the frequent stretches where one node runs while the rest sleep in
// multi-cycle operations.

import "fmt"

// fusedStep tries to run node id's compiled tier across an isolated
// window starting at the current cycle. It returns used=false when no
// window exists or nothing was executed (the caller then steps the
// node normally; no state was touched). When used, the window has been
// accounted exactly like one Step returning its total cycle count:
// wake/keep bookkeeping, progress watermarks, and — for a run-ending
// or erroring window — the same final cycle the per-op loop reports.
func (m *Machine) fusedStep(id int, limit uint64, keep *[]int) (used bool, err error) {
	n := m.Nodes[id]
	p := n.Proc

	// Window end: the earliest cycle anything other than this node can
	// act or be observed. Sampler boundaries and the run limit bound it
	// like fast-forward jumps; the deadlock deadline and (with a
	// fabric) the next event / wedge-scan watermark keep the watchdogs
	// and network replay on their per-op schedule.
	b := limit
	if m.sampler != nil {
		if nb := m.sampler.NextBoundary(); nb < b {
			b = nb
		}
	}
	if w := m.wakeq.next(); w < b {
		b = w
	}
	if dl := m.lastProgress + m.deadlockWin + 1; dl < b {
		b = dl
	}
	if m.net != nil {
		ne := m.net.nextEvent()
		if ne <= m.now+1 {
			return false, nil
		}
		if ne-1 < b {
			b = ne - 1
		}
		if m.nextWedgeCheck < b {
			b = m.nextWedgeCheck
		}
	}
	if b <= m.now+1 {
		return false, nil // a 0/1-cycle window cannot beat a plain Step
	}

	start := m.now
	ran, c, lastRet, doneAt, ferr := p.StepFused(b-start, &m.now)
	if ferr != nil {
		// The erroring op starts c cycles into the window; report the
		// cycle the per-op loop would.
		m.now = start + c
		return true, fmt.Errorf("cycle %d node %d: %w", m.now, p.ID, ferr)
	}
	if !ran {
		return false, nil
	}
	if doneAt >= 0 {
		// The op at offset doneAt ended the run. Rewind to its cycle so
		// the caller's end-of-cycle accounting (tick, now++, watchdogs,
		// MainDone exit) lands exactly where the per-op loop stops.
		m.now = start + uint64(doneAt)
		c -= uint64(doneAt)
	}
	if c > 1 {
		m.wakeq.push(id, m.now+c)
	} else {
		*keep = append(*keep, id)
	}
	if lastRet >= 0 {
		m.lastProgress = start + uint64(lastRet)
		n.lastRetired = m.lastProgress
	}
	return true, nil
}
