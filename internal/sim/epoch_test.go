package sim_test

// Differential and structural tests for the epoch engine (sim's
// epoch.go + proc's epoch.go): multi-node lockstep execution through
// the compiled tier across provably safe horizons. The engine's
// contract is the strongest one in the simulator — bit-identical
// simulated results against every other execution mode, at any shard
// count and any horizon cap, with mid-epoch fallbacks (an IPI, trap,
// miss, or run-ending op inside a committed window's reach) resolved
// by refusing BEFORE the unsafe op rather than by rewinding after it.

import (
	"reflect"
	"testing"

	"april/internal/bench"
	"april/internal/fault"
	"april/internal/rts"
	"april/internal/sim"
)

// TestEpochMatchesOracles is the engine's differential matrix: two
// programs (perfect memory and the full ALEWIFE memory system) run
// through all four execution modes — reference, predecode, compiled
// with epochs off, compiled with epochs on — crossed with shard counts
// and horizon caps. Every cell must agree with the reference row on
// cycles, result, and every node's full statistics.
func TestEpochMatchesOracles(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		alewife bool
	}{
		{"fib-perfect", bench.FibSource(12), false},
		{"queens-alewife", bench.QueensSource(6), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(mut func(*sim.Config)) sim.Config {
				cfg := sim.Config{Nodes: 8}
				if tc.alewife {
					cfg.Alewife = &sim.AlewifeConfig{}
				}
				mut(&cfg)
				return cfg
			}
			ref := runCompileSide(t, tc.src, mk(func(c *sim.Config) {
				c.DisableFastForward, c.DisablePredecode = true, true
			}))
			rows := map[string]sim.Config{
				"predecode":        mk(func(c *sim.Config) { c.DisableCompile = true }),
				"compiled-noepoch": mk(func(c *sim.Config) { c.DisableEpoch = true }),
				"epoch":            mk(func(c *sim.Config) {}),
				"epoch-k1":         mk(func(c *sim.Config) { c.Horizon = 1 }),
				"epoch-k2":         mk(func(c *sim.Config) { c.Horizon = 2 }),
				"epoch-k4":         mk(func(c *sim.Config) { c.Horizon = 4 }),
				"epoch-2shards":    mk(func(c *sim.Config) { c.Shards = 2 }),
				"epoch-2shards-k2": mk(func(c *sim.Config) { c.Shards = 2; c.Horizon = 2 }),
				"epoch-4shards":    mk(func(c *sim.Config) { c.Shards = 4 }),
			}
			for name, cfg := range rows {
				t.Run(name, func(t *testing.T) {
					compareCompiled(t, runCompileSide(t, tc.src, cfg), ref)
				})
			}
		})
	}
}

// TestEpochHorizonBoundaryDeliveries sweeps the horizon cap across
// every small value on a machine with live coherence traffic. Remote
// misses put deliveries, outbox maturations, and recalls at arbitrary
// cycles relative to the window grid, so the sweep forces events to
// land exactly ON a window boundary and one cycle INSIDE a would-be
// window at every alignment; all runs must stay bit-identical.
func TestEpochHorizonBoundaryDeliveries(t *testing.T) {
	src := bench.QueensSource(5)
	base := sim.Config{Nodes: 4, Alewife: &sim.AlewifeConfig{}}
	ref := runCompileSide(t, src, sim.Config{
		Nodes: 4, Alewife: &sim.AlewifeConfig{},
		DisableFastForward: true, DisablePredecode: true,
	})
	for k := uint64(0); k <= 6; k++ {
		cfg := base
		cfg.Horizon = k
		out := runCompileSide(t, src, cfg)
		if out.cycles != ref.cycles || out.value != ref.value {
			t.Errorf("horizon k=%d: cycles %d result %q, reference %d %q",
				k, out.cycles, out.value, ref.cycles, ref.value)
		}
		for i := range out.stats {
			if !reflect.DeepEqual(out.stats[i], ref.stats[i]) {
				t.Errorf("horizon k=%d node %d stats diverge", k, i)
			}
		}
	}
}

// TestEpochUnsafeOpsForceFallback pins the mid-epoch fallback
// mechanism: on a multi-node machine the runtime's syscalls, IPIs
// (STIO is classStop and refused by EpochStep), traps, and cache
// misses all land inside stretches the horizon bound would otherwise
// cover, so the engine must both commit real windows AND stop early
// for the unsafe ops — never reorder them. The run is held
// bit-identical by TestEpochMatchesOracles; here we assert the
// engine's telemetry shows both behaviors actually occurred.
func TestEpochUnsafeOpsForceFallback(t *testing.T) {
	out := runCompileSide(t, bench.QueensSource(6), sim.Config{
		Nodes: 8, Alewife: &sim.AlewifeConfig{},
	})
	et := out.m.EpochTelemetry()
	if et.Windows == 0 {
		t.Fatal("epoch engine committed no windows on an 8-node run")
	}
	if et.Cycles == 0 {
		t.Error("epoch windows committed no complete cycles")
	}
	if et.Fallbacks == 0 {
		t.Error("no mid-epoch fallbacks: unsafe ops (IPIs, syscalls, misses) cannot all have landed on window boundaries")
	}
	var windows uint64
	for _, c := range et.LenHist {
		windows += c
	}
	if windows != et.Windows {
		t.Errorf("length histogram sums to %d windows, telemetry says %d", windows, et.Windows)
	}
	var epochOps uint64
	for _, n := range out.m.Nodes {
		epochOps += n.Proc.EpochOps
	}
	if epochOps != et.Ops {
		t.Errorf("per-processor EpochOps sum %d != engine Ops %d", epochOps, et.Ops)
	}
	if et.Ops < et.Cycles {
		t.Errorf("Ops %d < Cycles %d: a committed cycle steps every stepper", et.Ops, et.Cycles)
	}
}

// TestEpochShardBatchMatrix crosses epoch windows with the sharded
// loop's batching knob: ShardBatch > 1 changes which cycles take the
// phased parallel path versus the sequential fallback, and epoch
// windows must compose with both (the engine runs before
// classification and hands partial cycles to the sequential body).
func TestEpochShardBatchMatrix(t *testing.T) {
	src := bench.QueensSource(6)
	ref := runCompileSide(t, src, sim.Config{
		Nodes: 8, Alewife: &sim.AlewifeConfig{}, DisableEpoch: true,
	})
	for _, batch := range []int{2, 4} {
		for _, k := range []uint64{0, 2, 4} {
			out := runCompileSide(t, src, sim.Config{
				Nodes: 8, Alewife: &sim.AlewifeConfig{},
				Shards: 2, ShardBatch: batch, Horizon: k,
			})
			if out.cycles != ref.cycles || out.value != ref.value {
				t.Errorf("batch=%d k=%d: cycles %d result %q, oracle %d %q",
					batch, k, out.cycles, out.value, ref.cycles, ref.value)
			}
			for i := range out.stats {
				if !reflect.DeepEqual(out.stats[i], ref.stats[i]) {
					t.Errorf("batch=%d k=%d node %d stats diverge", batch, k, i)
				}
			}
		}
	}
}

// TestEpochFaultsArmedIdentity runs a seeded fault plan (hop jitter,
// link stalls, delayed directory replies) with epochs on and off. The
// perturbations move deliveries and recall deadlines around, and the
// horizon bound must track them exactly: interlocked blocks with
// deferred recalls refuse epoch hits, and every shifted event still
// lands outside (or terminates) its window.
func TestEpochFaultsArmedIdentity(t *testing.T) {
	src := bench.QueensSource(5)
	for seed := uint64(1); seed <= 3; seed++ {
		fc := fault.Default(seed)
		mk := func(disable bool) sim.Config {
			f := fc
			return sim.Config{
				Nodes: 8, Profile: rts.APRIL,
				Alewife: &sim.AlewifeConfig{}, Faults: &f,
				DisableEpoch: disable,
			}
		}
		on := runCompileSide(t, src, mk(false))
		off := runCompileSide(t, src, mk(true))
		if on.cycles != off.cycles || on.value != off.value {
			t.Errorf("seed %d: epoch on %d %q, off %d %q",
				seed, on.cycles, on.value, off.cycles, off.value)
		}
		for i := range on.stats {
			if !reflect.DeepEqual(on.stats[i], off.stats[i]) {
				t.Errorf("seed %d node %d stats diverge under faults", seed, i)
			}
		}
	}
}

// TestEpochKindsTierInvariant: the per-micro-kind dispatch counters
// must be identical whether an op executed through EpochStep, the
// fused inline path, or plain per-op dispatch — a refused EpochStep
// must not pre-count the dispatch its fallback Step will count.
func TestEpochKindsTierInvariant(t *testing.T) {
	src := bench.QueensSource(6)
	cfg := func(disable bool) sim.Config {
		return sim.Config{Nodes: 8, Alewife: &sim.AlewifeConfig{}, DisableEpoch: disable}
	}
	on := runCompileSide(t, src, cfg(false))
	off := runCompileSide(t, src, cfg(true))
	if !reflect.DeepEqual(on.m.KindTotals(), off.m.KindTotals()) {
		t.Errorf("kind totals diverge:\nepoch:   %v\nno-epoch: %v",
			on.m.KindTotals(), off.m.KindTotals())
	}
}

// TestEpochSteadyStateAllocRate is the epoch-specific allocation
// guard: with the engine armed (the default) a 64-node ALEWIFE run's
// steady state must stay at zero allocations per cycle — windows
// reuse the coordinator's existing scratch (no per-window state), and
// the telemetry is plain counters.
func TestEpochSteadyStateAllocRate(t *testing.T) {
	m := loadedQueens64(t)
	if done, err := m.RunWindow(26_000); err != nil {
		t.Fatal(err)
	} else if done {
		t.Fatal("program finished during warm-up")
	}
	if m.EpochTelemetry().Windows == 0 {
		t.Fatal("epoch engine idle during warm-up: the guard would measure nothing")
	}
	const window = 600
	var werr error
	run := func() {
		if _, err := m.RunWindow(window); err != nil {
			werr = err
		}
	}
	allocsPerWindow := testing.AllocsPerRun(5, run)
	if werr != nil {
		t.Fatal(werr)
	}
	perCycle := allocsPerWindow / window
	t.Logf("epoch steady state: %.1f allocs per %d-cycle window (%.4f allocs/cycle)",
		allocsPerWindow, window, perCycle)
	if perCycle > 0.01 {
		t.Errorf("steady-state allocation rate %.4f allocs/cycle with epochs armed, want ~0 (<= 0.01)", perCycle)
	}
}
