package sim_test

import (
	"strings"
	"testing"

	"april/internal/core"
	"april/internal/isa"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

func run(t *testing.T, src string, cfg sim.Config, mode mult.Mode) (sim.Result, *sim.Machine) {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mode, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

const fibSrc = `
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 11)`

func TestPerfectMemoryMultiprocessor(t *testing.T) {
	res, m := run(t, fibSrc,
		sim.Config{Nodes: 4, Profile: rts.APRIL},
		mult.Mode{HardwareFutures: true})
	if res.Formatted != "89" {
		t.Errorf("fib 11 = %s", res.Formatted)
	}
	// All four processors should have done useful work.
	for _, n := range m.Nodes {
		if n.Proc.Stats.Instructions == 0 {
			t.Errorf("node %d retired no instructions", n.Proc.ID)
		}
	}
}

func TestAlewifeModeRunsCorrectly(t *testing.T) {
	for _, nodes := range []int{1, 4, 8} {
		res, m := run(t, fibSrc,
			sim.Config{Nodes: nodes, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}},
			mult.Mode{HardwareFutures: true})
		if res.Formatted != "89" {
			t.Errorf("nodes=%d: fib 11 = %s", nodes, res.Formatted)
		}
		stats := m.TotalStats()
		if stats.Traps[core.TrapCacheMiss] == 0 && nodes > 1 {
			t.Errorf("nodes=%d: no cache-miss traps in ALEWIFE mode", nodes)
		}
	}
}

func TestAlewifeMatchesPerfectResults(t *testing.T) {
	srcs := []string{
		`(define v (make-vector 32 0))
		 (let fill ((i 0)) (when (< i 32) (vector-set! v i (* i i)) (fill (+ i 1))))
		 (let sum ((i 0) (acc 0)) (if (= i 32) acc (sum (+ i 1) (+ acc (vector-ref v i)))))`,
		`(define (tree n) (if (= n 0) 1 (+ (future (tree (- n 1))) (future (tree (- n 1))))))
		 (tree 5)`,
	}
	for _, src := range srcs {
		perfect, _ := run(t, src, sim.Config{Nodes: 4, Profile: rts.APRIL}, mult.Mode{HardwareFutures: true})
		alewife, _ := run(t, src, sim.Config{Nodes: 4, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}},
			mult.Mode{HardwareFutures: true})
		if perfect.Formatted != alewife.Formatted {
			t.Errorf("ALEWIFE result %s != perfect %s", alewife.Formatted, perfect.Formatted)
		}
		if alewife.Cycles <= perfect.Cycles {
			t.Errorf("ALEWIFE (%d cycles) should be slower than perfect memory (%d)", alewife.Cycles, perfect.Cycles)
		}
	}
}

func TestAlewifeLazyFutures(t *testing.T) {
	res, _ := run(t, fibSrc,
		sim.Config{Nodes: 4, Profile: rts.APRIL, Lazy: true, Alewife: &sim.AlewifeConfig{}},
		mult.Mode{HardwareFutures: true, LazyFutures: true})
	if res.Formatted != "89" {
		t.Errorf("lazy alewife fib = %s", res.Formatted)
	}
}

func TestAlewifeIdealNetwork(t *testing.T) {
	res, _ := run(t, fibSrc,
		sim.Config{Nodes: 4, Profile: rts.APRIL,
			Alewife: &sim.AlewifeConfig{IdealNet: true, IdealLat: 20}},
		mult.Mode{HardwareFutures: true})
	if res.Formatted != "89" {
		t.Errorf("ideal-net fib = %s", res.Formatted)
	}
}

func TestCacheMissForcesContextSwitch(t *testing.T) {
	// Two eager tasks sharing a vector across 2 nodes must generate
	// coherence traffic and cache-miss context switches.
	src := `
(define v (make-vector 64 1))
(define (sum-range lo hi)
  (let loop ((i lo) (acc 0)) (if (= i hi) acc (loop (+ i 1) (+ acc (vector-ref v i))))))
(define (bump-range lo hi)
  (let loop ((i lo)) (if (= i hi) 0 (begin (vector-set! v i (+ (vector-ref v i) 1)) (loop (+ i 1))))))
(+ (future (bump-range 0 64))
   (let wait ((k 0)) (if (< k 200) (wait (+ k 1)) (sum-range 0 64))))`
	res, m := run(t, src,
		sim.Config{Nodes: 2, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}},
		mult.Mode{HardwareFutures: true})
	_ = res
	stats := m.TotalStats()
	if stats.Traps[core.TrapCacheMiss] == 0 {
		t.Error("expected remote-miss context switches")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A program that blocks forever on an empty I-structure slot.
	src := `
(define v (make-ivector 1))
(vector-ref-sync v 0)`
	m, err := sim.New(sim.Config{Nodes: 1, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("deadlocked program terminated successfully")
	} else if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestProducerConsumerAcrossNodes(t *testing.T) {
	// Fine-grain synchronization through full/empty bits between two
	// tasks on an ALEWIFE machine (Section 3.3).
	src := `
(define v (make-ivector 8))
(define (produce i)
  (if (= i 8) 0 (begin (vector-set-sync! v i (* i 10)) (produce (+ i 1)))))
(define (consume i acc)
  (if (= i 8) acc (consume (+ i 1) (+ acc (vector-ref-sync v i)))))
(+ (future (produce 0)) (consume 0 0))`
	for _, alewife := range []*sim.AlewifeConfig{nil, {}} {
		res, _ := run(t, src,
			sim.Config{Nodes: 2, Profile: rts.APRIL, Alewife: alewife},
			mult.Mode{HardwareFutures: true})
		if res.Formatted != "280" {
			t.Errorf("alewife=%v: got %s, want 280", alewife != nil, res.Formatted)
		}
	}
}

func TestIPIDeliveryThroughIO(t *testing.T) {
	// Drive the memory-mapped IPI interface directly with a raw
	// program: node 0 sends itself an interrupt.
	m, err := sim.New(sim.Config{Nodes: 2, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	code := []isa.Inst{
		isa.MovI(8, isa.MakeFixnum(1)), // target node 1
		isa.St(isa.OpStio, isa.RZero, sim.IOIPITarget, 8),
		isa.MovI(9, isa.MakeFixnum(77)), // payload
		isa.St(isa.OpStio, isa.RZero, sim.IOIPISend, 9),
		isa.Halt,
	}
	_ = code
	// The IO port is exercised through the processor directly.
	p0 := m.Nodes[0].Proc
	if _, err := p0.IO.StoreIO(sim.IOIPITarget, isa.MakeFixnum(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p0.IO.StoreIO(sim.IOIPISend, isa.MakeFixnum(77)); err != nil {
		t.Fatal(err)
	}
	if m.Nodes[1].Proc.PendingIPIs() != 1 {
		t.Error("IPI not queued at target")
	}
	if w, _, err := p0.IO.LoadIO(sim.IONodeID); err != nil || isa.FixnumValue(w) != 0 {
		t.Errorf("node id read = %v, %v", w, err)
	}
	if w, _, err := p0.IO.LoadIO(sim.IONodeCount); err != nil || isa.FixnumValue(w) != 2 {
		t.Errorf("node count read = %v, %v", w, err)
	}
}

func TestBlockTransfer(t *testing.T) {
	m, err := sim.New(sim.Config{Nodes: 2, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	// Fill a source region, including an empty full/empty bit.
	src, dst := uint32(0x300000), uint32(0x340000)
	for i := uint32(0); i < 16; i++ {
		m.Mem.MustStore(src+4*i, isa.MakeFixnum(int32(i*i)))
	}
	m.Mem.MustSetFE(src+8, false)

	io := m.Nodes[0].Proc.IO
	for _, w := range []struct {
		addr uint32
		val  isa.Word
	}{
		{sim.IOBTSrc, isa.Word(src)},
		{sim.IOBTDst, isa.Word(dst)},
		{sim.IOBTLen, isa.Word(64)},
		{sim.IOBTGo, 0},
	} {
		if _, err := io.StoreIO(w.addr, w.val); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 16; i++ {
		got := m.Mem.MustLoad(dst + 4*i)
		if isa.FixnumValue(got) != int32(i*i) {
			t.Errorf("word %d = %v", i, got)
		}
	}
	if m.Mem.MustFE(dst + 8) {
		t.Error("full/empty bit not transferred")
	}
	// The engine reports busy until the modeled duration elapses.
	if w, _, _ := io.LoadIO(sim.IOBTStatus); isa.FixnumValue(w) != 1 {
		t.Error("transfer should read busy immediately after start")
	}
	// Unaligned transfers are rejected.
	io.StoreIO(sim.IOBTLen, isa.Word(6))
	if _, err := io.StoreIO(sim.IOBTGo, 0); err == nil {
		t.Error("unaligned transfer accepted")
	}
}
