package sim_test

// Differential test for the event-driven fast-forward: the same
// program on the same machine must produce byte-identical simulated
// results whether Run steps every cycle (DisableFastForward) or jumps
// across provably uneventful stretches. This is the contract that lets
// the fast loop replace the naive one everywhere.

import (
	"fmt"
	"reflect"
	"testing"

	"april/internal/bench"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

type ffOutcome struct {
	cycles uint64
	value  string
	stats  []proc.Stats // per node, in node order
}

func runDifferential(t *testing.T, src string, nodes int, alewife, naive bool) ffOutcome {
	t.Helper()
	var aw *sim.AlewifeConfig
	if alewife {
		aw = &sim.AlewifeConfig{}
	}
	m, err := sim.New(sim.Config{
		Nodes:              nodes,
		Profile:            rts.APRIL,
		Alewife:            aw,
		DisableFastForward: naive,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := ffOutcome{cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	return out
}

func TestFastForwardMatchesNaiveLoop(t *testing.T) {
	programs := map[string]string{
		"fib":    bench.FibSource(12),
		"queens": bench.QueensSource(6),
	}
	for name, src := range programs {
		for _, alewife := range []bool{false, true} {
			for _, nodes := range []int{1, 4, 8} {
				mode := "perfect"
				if alewife {
					mode = "alewife"
				}
				t.Run(fmt.Sprintf("%s/%s/%dp", name, mode, nodes), func(t *testing.T) {
					fast := runDifferential(t, src, nodes, alewife, false)
					naive := runDifferential(t, src, nodes, alewife, true)
					if fast.cycles != naive.cycles {
						t.Errorf("cycles: fast %d != naive %d", fast.cycles, naive.cycles)
					}
					if fast.value != naive.value {
						t.Errorf("result: fast %s != naive %s", fast.value, naive.value)
					}
					for i := range fast.stats {
						if !reflect.DeepEqual(fast.stats[i], naive.stats[i]) {
							t.Errorf("node %d stats diverge:\nfast:  %+v\nnaive: %+v",
								i, fast.stats[i], naive.stats[i])
						}
					}
				})
			}
		}
	}
}
