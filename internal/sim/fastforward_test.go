package sim_test

// Differential tests for the work-proportional run loop and the
// predecoded dispatch tables: the same program on the same machine
// must produce byte-identical simulated results whether Run steps
// every cycle through the reference interpreter (DisableFastForward +
// DisablePredecode) or uses the wake-queue loop and micro-op handlers,
// with tracing on or off. This is the contract that lets the fast
// paths replace the reference ones everywhere.

import (
	"fmt"
	"reflect"
	"testing"

	"april/internal/bench"
	"april/internal/mult"
	"april/internal/network"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
	"april/internal/trace"
)

type ffOutcome struct {
	cycles  uint64
	value   string
	stats   []proc.Stats   // per node, in node order
	samples []trace.Sample // timeline rows when tracing is enabled
}

type ffConfig struct {
	nodes   int
	alewife bool
	naive   bool // reference loop AND reference interpreter
	tracing bool

	// Independent flag control for the mixed-mode combinations
	// (ignored unless mixed is set; naive must be false then).
	mixed         bool
	disableFF     bool
	disablePredec bool
}

func runDifferential(t *testing.T, src string, cfg ffConfig) ffOutcome {
	t.Helper()
	var aw *sim.AlewifeConfig
	if cfg.alewife {
		aw = &sim.AlewifeConfig{}
	}
	disFF, disPre := cfg.naive, cfg.naive
	if cfg.mixed {
		disFF, disPre = cfg.disableFF, cfg.disablePredec
	}
	m, err := sim.New(sim.Config{
		Nodes:              cfg.nodes,
		Profile:            rts.APRIL,
		Alewife:            aw,
		DisableFastForward: disFF,
		DisablePredecode:   disPre,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sampler *trace.Sampler
	if cfg.tracing {
		m.EnableTracing(0)
		sampler = m.EnableTimeline(256)
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := ffOutcome{cycles: res.Cycles, value: res.Formatted}
	for _, n := range m.Nodes {
		out.stats = append(out.stats, n.Proc.Stats)
	}
	if sampler != nil {
		out.samples = sampler.Rows()
	}
	return out
}

func compareOutcomes(t *testing.T, fast, naive ffOutcome) {
	t.Helper()
	if fast.cycles != naive.cycles {
		t.Errorf("cycles: fast %d != naive %d", fast.cycles, naive.cycles)
	}
	if fast.value != naive.value {
		t.Errorf("result: fast %s != naive %s", fast.value, naive.value)
	}
	for i := range fast.stats {
		if !reflect.DeepEqual(fast.stats[i], naive.stats[i]) {
			t.Errorf("node %d stats diverge:\nfast:  %+v\nnaive: %+v",
				i, fast.stats[i], naive.stats[i])
		}
	}
	if !reflect.DeepEqual(fast.samples, naive.samples) {
		t.Errorf("timeline rows diverge: fast %d rows, naive %d rows",
			len(fast.samples), len(naive.samples))
	}
}

func TestFastForwardMatchesNaiveLoop(t *testing.T) {
	programs := map[string]string{
		"fib":    bench.FibSource(12),
		"queens": bench.QueensSource(6),
	}
	for name, src := range programs {
		for _, alewife := range []bool{false, true} {
			for _, nodes := range []int{1, 4, 8, 64} {
				for _, tracing := range []bool{false, true} {
					mode := "perfect"
					if alewife {
						mode = "alewife"
					}
					tr := "plain"
					if tracing {
						tr = "traced"
					}
					t.Run(fmt.Sprintf("%s/%s/%dp/%s", name, mode, nodes, tr), func(t *testing.T) {
						fast := runDifferential(t, src, ffConfig{nodes: nodes, alewife: alewife, tracing: tracing})
						naive := runDifferential(t, src, ffConfig{nodes: nodes, alewife: alewife, naive: true, tracing: tracing})
						compareOutcomes(t, fast, naive)
					})
				}
			}
		}
	}
}

// TestPooledPayloadIdentity runs the fast-vs-reference comparison with
// poison-on-recycle enabled, so the bit-identity of the two loops is
// established while every recycled message is being overwritten with
// garbage: the coherence handlers must be consuming payload VALUES
// copied out of the network's pooled messages, never references into
// them. Any handler retaining a pooled message (or a pointer-typed
// payload) past its recycle point would diverge here.
func TestPooledPayloadIdentity(t *testing.T) {
	network.SetPoisonRecycle(true)
	defer network.SetPoisonRecycle(false)
	for _, nodes := range []int{4, 64} {
		t.Run(fmt.Sprintf("%dp", nodes), func(t *testing.T) {
			src := bench.QueensSource(6)
			fast := runDifferential(t, src, ffConfig{nodes: nodes, alewife: true})
			naive := runDifferential(t, src, ffConfig{nodes: nodes, alewife: true, naive: true})
			compareOutcomes(t, fast, naive)
		})
	}
}

// TestMixedModeFlagsAgree exercises the two optimizations
// independently: fast-forward with the reference interpreter, and the
// predecoded interpreter under the reference loop, must both match the
// all-reference run exactly.
func TestMixedModeFlagsAgree(t *testing.T) {
	src := bench.QueensSource(6)
	for _, alewife := range []bool{false, true} {
		mode := "perfect"
		if alewife {
			mode = "alewife"
		}
		t.Run(mode, func(t *testing.T) {
			ref := runDifferential(t, src, ffConfig{nodes: 8, alewife: alewife, naive: true})
			for _, c := range []struct {
				name          string
				disFF, disPre bool
			}{
				{"fastforward-only", false, true},
				{"predecode-only", true, false},
				{"both", false, false},
			} {
				got := runDifferential(t, src, ffConfig{
					nodes: 8, alewife: alewife,
					mixed: true, disableFF: c.disFF, disablePredec: c.disPre,
				})
				if got.cycles != ref.cycles || got.value != ref.value || !reflect.DeepEqual(got.stats, ref.stats) {
					t.Errorf("%s diverges from reference: cycles %d vs %d, value %s vs %s",
						c.name, got.cycles, ref.cycles, got.value, ref.value)
				}
			}
		})
	}
}
