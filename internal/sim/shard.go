// Sharded execution: one Machine's nodes split into contiguous blocks
// (network.Partition), stepped by parallel worker goroutines under
// conservative parallel discrete-event simulation.
//
// The torus's lookahead is one cycle (network.Lookahead: a one-flit
// message between adjacent nodes is observable one tick after the
// send), so the phased path commits one cycle per barrier. Two things
// raise the loop above that floor. Stretches where no node steps are
// crossed in one jump by fastForwardUntil. Stretches where every
// stepper's next ops are epoch-safe run as multi-cycle lockstep
// batches (epoch.go): the group's safe horizon — bounded by the
// fabric's next event rather than the static per-hop lookahead — is
// executed on the coordinator in reference order with zero barriers,
// and the phased machinery below only runs on the cycles epochs cannot
// cover. (network.PartitionLookahead refines the static bound per
// shard — a slab's nearest foreign node can be several hops away — and
// sizes the batch a decoupled-fabric design could commit; with the
// fabric central, the engine conservatively uses the global event
// horizon, which is never shorter than one lookahead window and
// usually far longer.) Each phased cycle:
//
//  1. The coordinator classifies every node due to step this cycle
//     (classifyStep). LOCAL steps touch only state the owning shard can
//     write without synchronization: the node's own engine, processor,
//     cache controller, and — under the coherence protocol's exclusive-
//     copy guarantee — memory words it has cached. GLOBAL steps touch
//     shared state (the scheduler, future cells, full/empty bits, the
//     page table, the shared store in perfect-memory mode). STOP steps
//     can error, halt, or end the run mid-cycle, where the reference
//     loop's semantics (skip the remaining nodes) need the exact
//     sequential order.
//  2. Phase 1: workers step their shards' LOCAL nodes, ascending.
//  3. Phase 2: the coordinator steps the GLOBAL nodes, ascending.
//  4. The fabric ticks (tickSharded): message handling fans out to the
//     workers while network/pool mutations stage through per-shard
//     buffers the coordinator replays in the sequential order.
//
// Why this is bit-identical to the sequential loop: the reference
// executes a cycle's steps ascending by node id, so phased execution is
// a reordering of that sequence. A LOCAL step commutes with every other
// step in the cycle — its reads and writes are confined to per-node
// state plus coherence-protected words no other node may validly hold,
// future-tagged addresses and full/empty-flavored accesses are
// classified GLOBAL (so cross-node synchronization words never appear
// in a LOCAL step), and stores that would materialize a page (a write
// to the shared page table) are GLOBAL too. GLOBAL steps run in
// reference relative order on one goroutine. Any step the proof does
// not cover is STOP, and a STOP anywhere sends the whole cycle down a
// byte-for-byte copy of the sequential body. Wake-queue pushes land in
// a different order than the reference, but the queue pops in total
// (cycle, node) order, so its behavior depends only on the content
// multiset, which is identical. The one residual divergence is
// intra-cycle event order in a node's trace ring when a global actor
// emits onto another node's ring (thread wakes, steals) in the same
// cycle as that node's own events; per-ring event multisets and totals
// are unchanged, which shard_test.go verifies.
package sim

import (
	"fmt"
	"slices"
	"time"

	"april/internal/abi"
	"april/internal/core"
	"april/internal/directory"
	"april/internal/isa"
	"april/internal/network"
	"april/internal/proc"
)

// stepClass is the coordinator's verdict on one node's next step.
type stepClass uint8

const (
	classLocal  stepClass = iota // shard-confined: safe on a worker
	classGlobal                  // shared state: coordinator phase, ascending
	classStop                    // may error/halt/end the run: whole cycle sequential
)

// classifyStep decides how node id's next Step may execute. It must be
// conservative: when in doubt, GLOBAL (correct but serialized) or STOP
// (correct but the cycle is sequential). It reads only this node's
// state plus the shared page table, and mutates nothing.
func (m *Machine) classifyStep(id int) stepClass {
	p := m.Nodes[id].Proc
	if p.Halted {
		return classStop // Step returns ErrHalted
	}
	if p.PendingIPIs() > 0 {
		return classGlobal // asynchronous trap enters the runtime
	}
	f := p.Engine.Active()
	if f.ThreadID < 0 {
		return classGlobal // idle: the scheduler hunts for work
	}
	code := p.Prog.Code
	if uint64(f.PC) >= uint64(len(code)) {
		return classStop // out-of-bounds fetch errors the run
	}
	inst := code[f.PC]
	switch inst.Op.Class() {
	case isa.ClassNop, isa.ClassBranch, isa.ClassFrame:
		return classLocal
	case isa.ClassCacheOp:
		// Flush touches the local cache, the local outbox, and (home
		// only) the local directory half — all owned by this shard.
		return classLocal
	case isa.ClassJmpl:
		if inst.Rs1 != isa.RZero && !isa.IsFixnum(p.Engine.Reg(inst.Rs1)) {
			return classStop // errors the run
		}
		return classLocal
	case isa.ClassCompute:
		return classifyCompute(p, f, inst)
	case isa.ClassLoad, isa.ClassStore:
		return m.classifyMemory(p, f, inst)
	case isa.ClassTrap:
		switch abi.TrapService(inst.Imm) {
		case abi.SvcMainExit, abi.SvcError:
			// Ends the run mid-cycle: the reference loop skips the
			// remaining nodes of the cycle, so order is everything.
			return classStop
		}
		return classGlobal // syscalls enter the shared runtime
	default:
		// ClassIO (an IPI posted here is visible to a later node in the
		// same cycle), ClassHalt, and anything unrecognized.
		return classStop
	}
}

// classifyCompute covers ClassCompute: local register arithmetic unless
// a strict operand would trap to the runtime's touch handler, or a
// division by zero would error the run.
func classifyCompute(p *proc.Processor, f *core.Frame, inst isa.Inst) stepClass {
	e := p.Engine
	if inst.Op.Strict() && f.PSR&core.PSRFutureTrap != 0 {
		if isa.IsFuture(e.Reg(inst.Rs1)) {
			return classGlobal // future touch -> runtime
		}
		if !inst.UseImm && isa.IsFuture(e.Reg(inst.Rs2)) {
			return classGlobal
		}
	}
	switch inst.Op {
	case isa.OpDiv, isa.OpMod:
		var b isa.Word
		if inst.UseImm {
			b = isa.Word(inst.Imm)
		} else {
			b = e.Reg(inst.Rs2)
		}
		if b == 0 {
			return classStop // errors the run
		}
		return classLocal
	case isa.OpAdd, isa.OpAddCC, isa.OpRawAdd,
		isa.OpSub, isa.OpSubCC, isa.OpRawSub,
		isa.OpAnd, isa.OpAndCC, isa.OpRawAnd,
		isa.OpOr, isa.OpOrCC, isa.OpXor, isa.OpXorCC,
		isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpMul, isa.OpTagCmp, isa.OpMovI:
		return classLocal
	default:
		return classStop // execute would report an unimplemented op
	}
}

// classifyMemory covers ClassLoad/ClassStore. Only the ALEWIFE
// configuration admits LOCAL memory steps: the coherence protocol's
// exclusive-copy guarantee is what makes a cached access, or a miss
// that traps into the engine-local switch handler, commute with every
// other node's step. Perfect-memory accesses hit the shared flat store
// directly (two nodes may race on a word within one cycle, resolved
// only by reference order), and lazy task creation plants stealable
// continuation markers in stack words that remote idle nodes probe.
func (m *Machine) classifyMemory(p *proc.Processor, f *core.Frame, inst isa.Inst) stepClass {
	if m.net == nil || m.Cfg.Lazy {
		return classGlobal
	}
	e := p.Engine
	base := e.Reg(inst.Rs1)
	var index isa.Word
	if !inst.UseImm {
		index = e.Reg(inst.Rs2)
	}
	if f.PSR&core.PSRFutureTrap != 0 {
		// Address-operand future detection: the trap enters the
		// runtime's touch handler, and the word behind a future-tagged
		// pointer is a future cell the runtime mutates — this check is
		// also what keeps future-cell interiors out of LOCAL steps.
		if isa.IsFuture(base) || (!inst.UseImm && isa.IsFuture(index)) {
			return classGlobal
		}
	}
	ea := uint32(int32(uint32(base)) + int32(uint32(index)) + inst.Imm)
	if ea%4 != 0 {
		return classStop // alignment trap -> runtime error path
	}
	if !m.Mem.InRange(ea) {
		return classStop // out-of-range access errors the run
	}
	fl := inst.Op.Flavor()
	if fl.TrapOnSync || fl.SetFE || fl.ResetFE {
		// Full/empty bits synchronize across nodes; writes to them (and
		// sync faults, which enter the runtime) stay on the coordinator.
		return classGlobal
	}
	if inst.Op.IsStore() && !m.Mem.PageResident(ea) {
		return classGlobal // the store would materialize a page
	}
	return classLocal
}

// nodeWake is a deferred wake-queue push produced by a worker (the
// queue itself is shared, so workers record and the coordinator pushes).
type nodeWake struct {
	node int
	at   uint64
}

// shardState is one shard's per-cycle work list and phase-1 results.
// Workers write only their own entry.
type shardState struct {
	steps   []int // this cycle's LOCAL nodes, ascending
	keep    []int // nodes staying on the running list
	wakes   []nodeWake
	retired bool  // any instruction retired this phase
	err     error // first step error (unreachable for LOCAL steps; defensive)
	errNode int
	pan     any // recovered panic, rethrown on the coordinator
}

// shardRunner owns the worker pool and per-shard scratch. Workers are
// persistent goroutines fed one closure per phase through per-worker
// channels; the coordinator always executes shard 0 inline, so a
// machine with S shards uses S-1 extra goroutines.
type shardRunner struct {
	m       *Machine
	batch   int // minimum work items before a phase goes parallel
	shards  []shardState
	globals []int // per-cycle GLOBAL step list (scratch)
	gkeep   []int // phase-2 keep scratch
	jobs    []chan func(int)
	done    chan struct{}
	started bool
	stepFn  func(int) // phase-1 body, allocated once
	tickFn  func(int) // fabric-phase body, allocated once
}

// shardRunner returns the machine's runner, building it on first use.
func (m *Machine) shardRunner() *shardRunner {
	if m.shr != nil {
		return m.shr
	}
	s := m.part.Shards()
	r := &shardRunner{
		m:      m,
		shards: make([]shardState, s),
		jobs:   make([]chan func(int), s-1),
		done:   make(chan struct{}, s-1),
	}
	r.batch = m.Cfg.ShardBatch
	if r.batch <= 0 {
		r.batch = 8 * s
	}
	r.stepFn = r.stepShard
	if m.net != nil {
		f := m.net
		r.tickFn = f.tickShard
	}
	m.shr = r
	return r
}

// start launches the worker goroutines (idempotent).
func (r *shardRunner) start() {
	if r.started {
		return
	}
	r.started = true
	for s := 1; s < len(r.shards); s++ {
		ch := make(chan func(int), 1)
		r.jobs[s-1] = ch
		go func(s int, ch chan func(int)) {
			for fn := range ch {
				r.run(s, fn)
				r.done <- struct{}{}
			}
		}(s, ch)
	}
}

// stop terminates the workers. The runner restarts on the next run.
func (r *shardRunner) stop() {
	if !r.started {
		return
	}
	r.started = false
	for i, ch := range r.jobs {
		close(ch)
		r.jobs[i] = nil
	}
}

// parallel runs fn(s) for every shard — shard 0 inline, the rest on the
// workers — and joins. Worker panics are captured and rethrown on the
// coordinator after the join, lowest shard first, so the run-loop's
// recover barrier (runGuarded) sees them on its own goroutine. The
// stretch between the coordinator finishing its own inline shard and
// the last worker checking in is pure synchronization overhead; it
// accrues into PDESStats.BarrierWaitNS (host clock, observation only).
func (r *shardRunner) parallel(fn func(int)) {
	r.m.pdes.Barriers++
	n := len(r.shards)
	for s := 1; s < n; s++ {
		r.jobs[s-1] <- fn
	}
	r.run(0, fn)
	wait := time.Now()
	for s := 1; s < n; s++ {
		<-r.done
	}
	r.m.pdes.BarrierWaitNS += uint64(time.Since(wait))
	for s := range r.shards {
		if p := r.shards[s].pan; p != nil {
			r.shards[s].pan = nil
			panic(p)
		}
	}
}

func (r *shardRunner) run(s int, fn func(int)) {
	start := time.Now()
	defer func() {
		// Busy accrual first: a panicking phase still spent the time,
		// and the write targets this goroutine's own telemetry slot.
		r.m.shardTel[s].BusyNS += uint64(time.Since(start))
		if p := recover(); p != nil {
			r.shards[s].pan = p
		}
	}()
	fn(s)
}

// stepShard is the phase-1 body: step this shard's LOCAL nodes in
// ascending id order, collecting running-list keeps and wake pushes for
// the coordinator to apply.
func (r *shardRunner) stepShard(s int) {
	sh := &r.shards[s]
	m := r.m
	m.shardTel[s].LocalSteps += uint64(len(sh.steps))
	sh.keep = sh.keep[:0]
	sh.wakes = sh.wakes[:0]
	sh.retired = false
	sh.err = nil
	for _, id := range sh.steps {
		n := m.Nodes[id]
		retired := n.Proc.Stats.Instructions
		c, err := n.Proc.Step()
		if err != nil {
			sh.err, sh.errNode = err, id
			return
		}
		if c > 1 {
			sh.wakes = append(sh.wakes, nodeWake{node: id, at: m.now + uint64(c)})
		} else {
			sh.keep = append(sh.keep, id)
		}
		if n.Proc.Stats.Instructions != retired {
			sh.retired = true
			n.lastRetired = m.now
		}
	}
}

// runShardedUntil is the parallel run loop. Control flow mirrors
// runFastUntil exactly — same sampler boundaries, same fast-forward
// jumps, same wake/running bookkeeping — with the per-cycle stepping
// split into the phases described at the top of this file. It returns
// hitLimit=true when m.now reaches limit before the main thread exits.
func (m *Machine) runShardedUntil(limit uint64) (hitLimit bool, err error) {
	r := m.shardRunner()
	r.start()
	defer r.stop()
	loopStart := time.Now()
	defer func() { m.pdes.LoopWallNS += uint64(time.Since(loopStart)) }()
	for !m.Sched.MainDone {
		if m.sampler != nil && m.now >= m.sampler.NextBoundary() {
			m.sample()
			m.sampler.Advance(m.now)
		}
		if m.now >= limit {
			return true, nil
		}
		jumpLimit := limit
		if m.sampler != nil && m.sampler.NextBoundary() < jumpLimit {
			jumpLimit = m.sampler.NextBoundary()
		}
		m.fastForwardUntil(jumpLimit)
		if m.sampler != nil && m.now >= m.sampler.NextBoundary() {
			m.sample()
			m.sampler.Advance(m.now)
		}
		if m.now >= limit {
			return true, nil
		}
		due := m.dueBuf[:0]
		if m.wakeq.next() <= m.now {
			due = m.wakeq.popDue(m.now, due)
		}
		m.dueBuf = due
		steps := m.running
		switch {
		case len(due) == 0:
		case len(m.running) == 0:
			steps = due
		default:
			m.mergeBuf = mergeSorted(m.mergeBuf[:0], m.running, due)
			steps = m.mergeBuf
		}

		// Multi-cycle epoch batch: when the whole group's safe horizon
		// spans several cycles, run the steppers in lockstep through the
		// compiled tier (epoch.go) and pay the per-cycle machinery —
		// classification, phase barriers, fabric staging — once per
		// window instead of once per cycle. This is what lifts the
		// sharded loop from per-cycle bulk-synchronous to k-cycle
		// batches: barriers only happen on the cycles epochs cannot
		// cover.
		if m.epochOn && len(steps) > 1 {
			si, epochFull := m.epochWindow(steps, limit)
			if epochFull {
				m.running = append(m.running[:0], steps...)
				if err := m.watchdogs(); err != nil {
					return false, err
				}
				continue
			}
			if si > 0 {
				// Mid-epoch fallback: the cycle at m.now holds an
				// epoch-unsafe op. steps[:si] already stepped; finish the
				// cycle per-op in reference order (the sequential body).
				m.pdes.SequentialCycles++
				m.pdes.FallbackEpoch++
				if err := m.epochFinishCycle(steps, si); err != nil {
					return false, err
				}
				continue
			}
			// Nothing committed: classify and dispatch the cycle below.
		}

		// Classify the cycle's steppers into per-shard LOCAL lists and
		// the GLOBAL list. Any STOP sends the whole cycle sequential.
		sequential := false
		localTotal := 0
		r.globals = r.globals[:0]
		for s := range r.shards {
			r.shards[s].steps = r.shards[s].steps[:0]
		}
		for _, id := range steps {
			switch m.classifyStep(id) {
			case classLocal:
				sh := &r.shards[m.shardOf[id]]
				sh.steps = append(sh.steps, id)
				localTotal++
				m.pdes.LocalSteps++
			case classGlobal:
				r.globals = append(r.globals, id)
				m.pdes.GlobalSteps++
			default:
				sequential = true
				m.pdes.StopSteps++
			}
			if sequential {
				break
			}
		}

		if sequential || localTotal < r.batch {
			m.pdes.SequentialCycles++
			if sequential {
				m.pdes.FallbackStop++
			} else {
				m.pdes.FallbackSmall++
			}
			// Sequential cycle: byte-for-byte the runFastUntil body,
			// including the compiled tier's isolated-window fast path
			// (fusion only ever runs on the coordinating goroutine —
			// the parallel phases below step per-op).
			keep := m.running[:0]
			if m.compileOn && len(steps) == 1 {
				used, err := m.fusedStep(steps[0], limit, &keep)
				if err != nil {
					return false, err
				}
				if used {
					steps = nil
				}
			}
			for _, id := range steps {
				n := m.Nodes[id]
				retired := n.Proc.Stats.Instructions
				c, err := n.Proc.Step()
				if err != nil {
					return false, fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
				}
				if c > 1 {
					m.wakeq.push(id, m.now+uint64(c))
				} else {
					keep = append(keep, id)
				}
				if n.Proc.Stats.Instructions != retired {
					m.lastProgress = m.now
					n.lastRetired = m.now
				}
				if m.Sched.MainDone {
					break
				}
			}
			m.running = keep
			if m.net != nil {
				m.net.tick()
			}
			m.now++
			if err := m.watchdogs(); err != nil {
				return false, err
			}
			continue
		}

		// Phase 1: workers step the LOCAL nodes.
		m.pdes.ParallelCycles++
		r.parallel(r.stepFn)
		for s := range r.shards {
			sh := &r.shards[s]
			if sh.err != nil {
				return false, fmt.Errorf("cycle %d node %d: %w", m.now, sh.errNode, sh.err)
			}
			if sh.retired {
				m.lastProgress = m.now
			}
			for _, w := range sh.wakes {
				m.wakeq.push(w.node, w.at)
			}
		}

		// Phase 2: the coordinator steps the GLOBAL nodes, ascending —
		// their reference relative order.
		gkeep := r.gkeep[:0]
		for _, id := range r.globals {
			n := m.Nodes[id]
			retired := n.Proc.Stats.Instructions
			c, err := n.Proc.Step()
			if err != nil {
				return false, fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
			}
			if c > 1 {
				m.wakeq.push(id, m.now+uint64(c))
			} else {
				gkeep = append(gkeep, id)
			}
			if n.Proc.Stats.Instructions != retired {
				m.lastProgress = m.now
				n.lastRetired = m.now
			}
			if m.Sched.MainDone {
				// Unreachable while the classifier routes every
				// run-ending service to the sequential path; mirror the
				// reference's early exit anyway.
				break
			}
		}
		r.gkeep = gkeep

		// Rebuild the running list: the concatenated shard keeps are
		// ascending (shard blocks are contiguous id ranges), merged with
		// the ascending phase-2 keeps.
		keep := m.running[:0]
		gi := 0
		for s := range r.shards {
			for _, id := range r.shards[s].keep {
				for gi < len(gkeep) && gkeep[gi] < id {
					keep = append(keep, gkeep[gi])
					gi++
				}
				keep = append(keep, id)
			}
		}
		keep = append(keep, gkeep[gi:]...)
		m.running = keep

		if m.net != nil {
			m.net.tickSharded(r)
		}
		m.now++
		if err := m.watchdogs(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// fabricStage is one shard's staged work for a parallel fabric tick:
// the deliveries the coordinator pulled for the shard's nodes (drains
// spans msgs per node) and the protocol sends its controllers produced
// while staging was on. The coordinator replays recycles and sends in
// shard order after the join, reproducing the sequential tick's pool
// and network operation sequence exactly.
type fabricStage struct {
	msgs   []*network.Message
	drains []drainSpan
	sends  []stagedSend
	ids    []int // gatherShardDirty scratch
}

type drainSpan struct{ node, lo, hi int }

type stagedSend struct {
	src, dst int
	msg      directory.Msg
}

// tickSharded is tick's counterpart for parallel cycles. The network
// advances and deliveries are pulled on the coordinator (both mutate
// shared network state); message handling and outbox maturation fan out
// to the workers with sends staged; then the coordinator replays pool
// recycles and network sends in the exact order the sequential tick
// would have issued them: every drain's batch recycle, node-ascending,
// before every flush's alloc+send, dirty-controller-ascending — the
// same all-drains-then-all-flushes shape tickInner has, and shard
// blocks are contiguous id ranges so shard order is id order.
func (f *netFabric) tickSharded(r *shardRunner) {
	f.now++
	f.net.Tick()
	f.pendBuf = f.net.PendingNodes(f.pendBuf[:0])
	work := len(f.pendBuf)
	for _, b := range f.dirty {
		work += len(b)
	}
	if work < r.batch {
		// Small cycle: inline, identical to the sequential tick body.
		// (The invariant checkers force one shard, so the sequential
		// tick's checkPool wrapper has nothing to do here.)
		f.m.pdes.FabricInlineTicks++
		for _, node := range f.pendBuf {
			f.drainInto(node, f.ctls[node])
		}
		for _, id := range f.gatherDirty() {
			ctl := f.ctls[id]
			ctl.processRecalls()
			ctl.flushOutbox()
		}
		return
	}
	for _, st := range f.stages {
		st.msgs = st.msgs[:0]
		st.drains = st.drains[:0]
		st.sends = st.sends[:0]
	}
	for _, node := range f.pendBuf {
		st := f.stages[f.shardOf[node]]
		lo := len(st.msgs)
		st.msgs = f.net.Deliveries(node, st.msgs)
		st.drains = append(st.drains, drainSpan{node: node, lo: lo, hi: len(st.msgs)})
	}
	f.m.pdes.FabricParallelTicks++
	f.staging = true
	r.parallel(r.tickFn)
	f.staging = false
	for _, st := range f.stages {
		for _, d := range st.drains {
			f.net.Recycle(st.msgs[d.lo:d.hi])
		}
	}
	for _, st := range f.stages {
		for i := range st.sends {
			snd := &st.sends[i]
			if f.part.Cross(snd.src, snd.dst) {
				f.crossMsgs++
			}
			nm := f.net.Alloc()
			nm.Src = snd.src
			nm.Dst = snd.dst
			nm.Size = snd.msg.Size(f.cfg.Cache.BlockBytes)
			nm.Payload = network.CoherencePayload(snd.msg)
			f.net.Send(nm)
		}
	}
}

// tickShard is the fabric phase's worker body: handle this shard's
// staged deliveries, then mature its dirty controllers' queues, with
// network sends staged for the coordinator. Every mutation is confined
// to the shard's own controllers, rings, and stage buffers.
func (f *netFabric) tickShard(s int) {
	st := f.stages[s]
	tel := &f.m.shardTel[s]
	for _, d := range st.drains {
		ctl := f.ctls[d.node]
		tel.FabricHandled += uint64(d.hi - d.lo)
		for _, nm := range st.msgs[d.lo:d.hi] {
			ctl.handle(nm.Payload.Coh)
		}
	}
	dirty := f.gatherShardDirty(s)
	tel.FabricFlushes += uint64(len(dirty))
	for _, id := range dirty {
		ctl := f.ctls[id]
		ctl.processRecalls()
		ctl.flushOutbox()
	}
}

// gatherShardDirty snapshots and clears one shard's dirty bucket in
// ascending order, exactly as gatherDirty does for the whole set. Each
// bucket holds only the shard's own nodes, so concurrent calls from
// different workers touch disjoint state.
func (f *netFabric) gatherShardDirty(s int) []int {
	st := f.stages[s]
	ids := append(st.ids[:0], f.dirty[s]...)
	f.dirty[s] = f.dirty[s][:0]
	slices.Sort(ids)
	for _, id := range ids {
		f.dirtyCtl[id] = false
	}
	st.ids = ids
	return ids
}

// CrossShardMessages counts coherence messages sent between nodes in
// different shards — the boundary traffic the conservative lookahead
// window covers. Zero for unsharded or perfect-memory machines.
func (m *Machine) CrossShardMessages() uint64 {
	if m.net == nil {
		return 0
	}
	return m.net.crossMsgs
}
