package sim

// wakeQueue schedules sleeping nodes' wake-ups by absolute simulated
// cycle: a binary min-heap of (wake, node) pairs. Together with the
// machine's sorted running list (nodes executing 1-cycle instructions,
// which step every cycle and never touch the heap) it replaces the
// per-node relative busy counters the lockstep loop used to decrement
// every cycle — the loop visits only the nodes that actually step, so
// the host cost of a simulated cycle is proportional to the work done
// in it, not to the machine size, and heap traffic is paid once per
// multi-cycle sleep rather than once per cycle per node.
//
// Determinism: the heap orders ties by node id, and the run loop never
// lets simulated time pass a scheduled wake (it steps cycle by cycle
// once next() == now), so popDue always yields nodes in ascending id
// order — exactly the order the reference loop steps them in.
type wakeQueue struct {
	heap []wakeEntry
}

type wakeEntry struct {
	wake uint64
	node int32
}

// noWake is next()'s empty-queue sentinel (matches network.NoEvent).
const noWake = ^uint64(0)

// init empties the queue, reserving room for every node.
func (q *wakeQueue) init(nodes int) {
	q.heap = make([]wakeEntry, 0, nodes)
}

func (e wakeEntry) less(o wakeEntry) bool {
	return e.wake < o.wake || (e.wake == o.wake && e.node < o.node)
}

// next reports the earliest scheduled wake cycle, or noWake when no
// node sleeps.
func (q *wakeQueue) next() uint64 {
	if len(q.heap) == 0 {
		return noWake
	}
	return q.heap[0].wake
}

// push schedules node to wake at the given cycle.
func (q *wakeQueue) push(node int, wake uint64) {
	q.heap = append(q.heap, wakeEntry{wake: wake, node: int32(node)})
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].less(q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// popDue removes every node due at exactly cycle now and appends their
// ids to buf (in ascending id order). A wake earlier than now would
// mean the run loop skipped a scheduled step — a determinism bug — so
// it panics loudly instead of silently reordering.
func (q *wakeQueue) popDue(now uint64, buf []int) []int {
	for len(q.heap) > 0 && q.heap[0].wake <= now {
		if q.heap[0].wake < now {
			panic("sim: wake queue entry in the past (missed node step)")
		}
		buf = append(buf, int(q.heap[0].node))
		q.pop()
	}
	return buf
}

// mergeSorted appends the merge of two ascending, disjoint id lists to
// dst (which must not alias a or b).
func mergeSorted(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

func (q *wakeQueue) pop() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.heap) && q.heap[l].less(q.heap[small]) {
			small = l
		}
		if r < len(q.heap) && q.heap[r].less(q.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
}
