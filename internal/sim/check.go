package sim

// Runtime invariant checking (sim.Config.Check). The checkers are
// strictly read-only observers: they probe cache, directory, scheduler
// and message-pool state without mutating any of it, so a clean run is
// bit-identical with checking on or off — which is what lets the fault
// matrix run with checkers enabled and still compare results against
// unchecked baselines.
//
// The coherence checks are transient-tolerant: a full-map protocol is
// never globally consistent while messages are in flight, so each
// invariant states what must hold in *every* reachable interleaving,
// not just quiescent ones:
//
//   - single-writer: at most one cache holds a block Exclusive.
//   - dir-exclusive-mismatch: an Exclusive holder implies its home
//     directory entry is Exclusive with Owner == holder (grants set
//     both atomically, and every transition away from that pair is
//     acknowledged by the holder surrendering the line first).
//   - dirty-not-exclusive: only an Exclusive line may be dirty.
//   - dir-shared-mismatch: a Shared holder is either a directory
//     sharer, or the still-registered Exclusive owner mid-downgrade
//     (Fetch arrived, FetchAck not yet processed at the home). The
//     sharer set may be a superset of actual holders (Shared victims
//     drop silently); it must not be missing one.
//
// Scheduler conservation and pool ownership are exact (not transient)
// at their check points: thread-state transitions are atomic within
// one trap handler, and the message pool balances at tick boundaries.

import (
	"april/internal/cache"
	"april/internal/directory"
)

// schedCheckInterval is how often (in cycles) the run loops re-verify
// scheduler conservation; every cycle would be sound but wasteful.
const schedCheckInterval = 1024

// checkBlock audits one block's global coherence state. Called after
// every protocol transition touching the block; allocation-free unless
// it records a violation.
func (f *netFabric) checkBlock(block uint32) {
	ck := f.check
	home := f.dist.Home(block * f.cfg.Cache.BlockBytes)
	entry, known := f.ctls[home].dir.Probe(block)
	dirState := directory.Uncached
	owner := -1
	if known {
		dirState = entry.State
		owner = entry.Owner
	}
	excl := -1
	for id, ctl := range f.ctls {
		st, hit := ctl.cache.Probe(block)
		if !hit {
			continue
		}
		dirty := ctl.cache.Dirty(block)
		switch st {
		case cache.Exclusive:
			if excl >= 0 {
				ck.Violate("coherence/single-writer", id, block,
					"nodes %d and %d both hold the block exclusive", excl, id)
			}
			excl = id
			if dirState != directory.Exclusive || owner != id {
				ck.Violate("coherence/dir-exclusive-mismatch", id, block,
					"node holds exclusive but home %d directory is %v with owner %d", home, dirState, owner)
			}
		case cache.Shared:
			if dirty {
				ck.Violate("coherence/dirty-not-exclusive", id, block,
					"shared line is dirty")
			}
			ok := (dirState == directory.Shared && known && entry.Sharers.Has(id)) ||
				(dirState == directory.Exclusive && owner == id)
			if !ok {
				ck.Violate("coherence/dir-shared-mismatch", id, block,
					"node holds shared but home %d directory is %v with owner %d", home, dirState, owner)
			}
		}
	}
}

// checkPool verifies message-pool ownership at the end of a fabric
// tick: every message checked out of a pool is accounted for by the
// network (in a channel, in flight, or in an undrained inbox). A
// mismatch means a consumer leaked a message or recycled one it did
// not own.
func (f *netFabric) checkPool() {
	live := f.net.LiveMessages()
	inFlight := f.net.InFlight()
	if live != inFlight {
		f.check.Violate("pool/ownership", -1, 0,
			"%d messages checked out of the pool but %d in the network", live, inFlight)
	}
}

// checkSched verifies thread conservation: every live thread is in
// exactly one place — a ready queue, a waiter list, or resident in a
// hardware task frame. Sound at any inter-cycle point because all
// state transitions happen atomically inside a single trap handler.
func (m *Machine) checkSched() {
	live := m.Sched.LiveThreads()
	ready := m.Sched.ReadyCount()
	blocked := m.Sched.BlockedCount()
	resident := 0
	for _, n := range m.Nodes {
		resident += n.Proc.Engine.LoadedThreads()
	}
	if live != ready+blocked+resident {
		m.checker.Violate("sched/conservation", -1, 0,
			"%d live threads but %d ready + %d blocked + %d resident = %d",
			live, ready, blocked, resident, ready+blocked+resident)
	}
}

// auditFinal is the end-of-run sweep: every directory entry and every
// cached line across the machine gets a full checkBlock pass, plus a
// final scheduler-conservation check. Cold path; runs once.
func (m *Machine) auditFinal() {
	if m.net != nil {
		seen := make(map[uint32]struct{})
		for _, ctl := range m.net.ctls {
			for _, block := range ctl.dir.Blocks() {
				if _, dup := seen[block]; dup {
					continue
				}
				seen[block] = struct{}{}
				m.net.checkBlock(block)
			}
			ctl.cache.ForEach(func(block uint32, _ cache.State, _ bool) {
				if _, dup := seen[block]; dup {
					return
				}
				seen[block] = struct{}{}
				m.net.checkBlock(block)
			})
		}
	}
	m.checkSched()
}
