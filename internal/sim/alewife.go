package sim

import (
	"fmt"
	"slices"

	"april/internal/cache"
	"april/internal/directory"
	"april/internal/fault"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/network"
	"april/internal/proc"
	"april/internal/trace"
)

// AlewifeConfig enables the full ALEWIFE memory system: per-node
// caches kept strongly coherent by full-map directories over the
// packet-switched network. Remote misses trap the processor (forcing a
// context switch); local misses hold it for the memory latency
// (Section 2.1).
type AlewifeConfig struct {
	Cache      cache.Config     // zero value -> Table 4 default (64 KB, 16 B blocks)
	MemLatency int              // DRAM access, default 10 cycles (Table 4)
	Geometry   network.Geometry // zero -> fitted to the node count
	IdealNet   bool             // constant-latency network instead of the torus
	IdealLat   int              // one-way latency for IdealNet

	// PollCycles is the MHOLD retry interval for wait-on-miss flavors.
	PollCycles int
}

func (a *AlewifeConfig) fill(nodes int) error {
	if a.Cache == (cache.Config{}) {
		a.Cache = cache.DefaultConfig()
	}
	if err := a.Cache.Validate(); err != nil {
		return err
	}
	if a.MemLatency <= 0 {
		a.MemLatency = 10
	}
	if a.Geometry == (network.Geometry{}) {
		a.Geometry = network.FitGeometry(nodes)
	}
	if a.Geometry.Nodes() < nodes {
		return fmt.Errorf("sim: geometry %+v covers %d nodes, need %d", a.Geometry, a.Geometry.Nodes(), nodes)
	}
	if a.IdealLat <= 0 {
		a.IdealLat = 10
	}
	if a.PollCycles <= 0 {
		a.PollCycles = 4
	}
	return nil
}

// netFabric owns the interconnect and the per-node cache controllers.
//
// The fabric is work-proportional on the host: controllers with a
// nonempty outbox or recall queue are tracked in a dirty set, and tick
// and nextEvent visit only those (plus the nodes the network reports
// deliveries for) instead of scanning every controller each cycle.
// Processing the dirty set in ascending node id makes the skip
// invisible to simulated behavior — the dense scan's per-controller
// work is a no-op exactly when both queues are empty.
type netFabric struct {
	m     *Machine
	cfg   *AlewifeConfig
	net   network.Network
	ctls  []*cacheCtl
	dist  mem.Distribution
	now   uint64
	trace *trace.Tracer

	// Dirty-controller set. Invariant: every ctl whose outbox or
	// recallQ is nonempty has dirtyCtl[node] set and appears in exactly
	// one bucket of dirty (unsorted; tick sorts its snapshot). The set
	// is bucketed by shard so the sharded run loop's parallel phases can
	// mark controllers dirty without synchronization: a worker only ever
	// appends to its own shard's bucket. Unsharded machines use a single
	// bucket, which is the old flat list.
	dirtyCtl  []bool
	dirty     [][]int
	shardOf   []int32            // node -> dirty bucket; nil = single bucket
	idScratch []int              // tick's sorted snapshot, reused
	pendBuf   []int              // PendingNodes scratch, reused
	delivBuf  []*network.Message // Deliveries scratch, reused

	// Sharded-tick support (see shard.go). part is non-nil when the
	// machine shards this fabric; staging redirects flushOutbox's
	// network sends into per-shard buffers (drained by the coordinator
	// at the horizon barrier) while the controllers run in parallel.
	part      *network.Partition
	stages    []*fabricStage
	staging   bool
	crossMsgs uint64 // messages sent across a shard boundary

	// reference selects the pre-overhaul cost profile: tick and
	// nextEvent scan every controller each cycle instead of the dirty
	// set, as the differential oracle and throughput baseline.
	reference bool

	// plan perturbs timing (directory-reply delays here; the network
	// draws its own penalties) and check records invariant violations.
	// Both nil by default; clean runs take one nil test per hook.
	plan  *fault.Plan
	check *fault.Checker
}

// markDirty records that a controller has queued work (outbox or
// recallQ). Idempotent; called from every site that appends to either.
func (f *netFabric) markDirty(node int) {
	if f.reference {
		return // the reference tick scans every controller anyway
	}
	if !f.dirtyCtl[node] {
		f.dirtyCtl[node] = true
		s := f.shardOf[node]
		f.dirty[s] = append(f.dirty[s], node)
	}
}

// gatherDirty snapshots the whole dirty set into idScratch in ascending
// node id (the reference all-controllers order), clearing the flags and
// buckets so controllers that still have work re-mark themselves. The
// returned slice is valid until the next call.
func (f *netFabric) gatherDirty() []int {
	ids := f.idScratch[:0]
	for s, bucket := range f.dirty {
		ids = append(ids, bucket...)
		f.dirty[s] = bucket[:0]
	}
	slices.Sort(ids)
	f.idScratch = ids
	for _, id := range ids {
		f.dirtyCtl[id] = false
	}
	return ids
}

func (m *Machine) initAlewife() error {
	cfg := m.Cfg.Alewife
	if err := cfg.fill(m.Cfg.Nodes); err != nil {
		return err
	}
	var net network.Network
	if cfg.IdealNet {
		n := network.NewIdeal(cfg.Geometry.Nodes(), cfg.IdealLat)
		n.SetReferenceScan(m.Cfg.DisableFastForward)
		net = n
	} else {
		t, err := network.NewTorus(cfg.Geometry)
		if err != nil {
			return err
		}
		t.SetReferenceScan(m.Cfg.DisableFastForward)
		net = t
	}
	net.SetFaultPlan(m.plan)
	f := &netFabric{
		m:         m,
		cfg:       cfg,
		net:       net,
		dist:      mem.Distribution{Nodes: m.Cfg.Nodes, BlockSize: cfg.Cache.BlockBytes},
		dirtyCtl:  make([]bool, m.Cfg.Nodes),
		shardOf:   m.shardOf,
		dirty:     make([][]int, m.part.Shards()),
		reference: m.Cfg.DisableFastForward,
		plan:      m.plan,
		check:     m.checker,
	}
	if s := m.part.Shards(); s > 1 {
		part := m.part
		f.part = &part
		f.stages = make([]*fabricStage, s)
		for i := range f.stages {
			f.stages[i] = &fabricStage{}
		}
	}
	m.net = f
	return nil
}

func (m *Machine) newCachePort(node int) proc.MemPort {
	f := m.net
	c, err := cache.New(f.cfg.Cache)
	if err != nil {
		panic(err) // config validated in initAlewife
	}
	prof := m.Cfg.Profile
	ctl := &cacheCtl{
		node:       node,
		fabric:     f,
		cache:      c,
		dir:        directory.New(),
		pending:    map[uint32]missState{},
		homeTx:     map[uint32]*homeTx{},
		locked:     map[uint32]uint64{},
		lockWindow: uint64(4*prof.Frames*(prof.SwitchCycles+prof.TrapEntry) + 64),
	}
	f.ctls = append(f.ctls, ctl)
	return ctl
}

// tick advances the interconnect one cycle and runs the controllers'
// message handling.
func (f *netFabric) tick() {
	f.tickInner()
	if f.check != nil {
		f.checkPool()
	}
}

func (f *netFabric) tickInner() {
	f.now++
	f.net.Tick()
	if f.reference {
		// Pre-overhaul dense scan: every node's inbox, every controller.
		for node, ctl := range f.ctls {
			f.drainInto(node, ctl)
		}
		for _, ctl := range f.ctls {
			ctl.processRecalls()
			ctl.flushOutbox()
		}
		return
	}
	f.pendBuf = f.net.PendingNodes(f.pendBuf[:0])
	for _, node := range f.pendBuf {
		f.drainInto(node, f.ctls[node])
	}
	// Snapshot and clear the dirty set, then run the controllers in
	// ascending node id — the reference all-controllers order.
	// Controllers that still have (or regain) work re-mark themselves
	// through the append-site hooks.
	for _, id := range f.gatherDirty() {
		ctl := f.ctls[id]
		ctl.processRecalls()
		ctl.flushOutbox()
	}
}

// drainInto is the consumer loop for one node's deliveries: the typed
// coherence payloads are copied out by value into the handler, then the
// whole batch is recycled — the explicit recycle point after which no
// *Message from this drain may be touched.
func (f *netFabric) drainInto(node int, ctl *cacheCtl) {
	buf := f.net.Deliveries(node, f.delivBuf[:0])
	for _, nm := range buf {
		ctl.handle(nm.Payload.Coh)
	}
	f.net.Recycle(buf)
	f.delivBuf = buf[:0]
}

// nextEvent returns the earliest fabric cycle at which a tick could do
// any work — deliver a network message, flush a matured outbox entry,
// or act on a deferred recall (interlock expiry or wait deadline) — or
// network.NoEvent when the whole memory system is quiescent. Ticks that
// end strictly before that cycle are guaranteed no-ops, which is the
// invariant Machine.Run's fast-forward path relies on. The estimate is
// conservative: waking at a cycle where the tick turns out to do
// nothing is harmless (the machine just resumes per-cycle stepping and
// re-evaluates), but it must never be later than a real event.
func (f *netFabric) nextEvent() uint64 {
	next := f.net.NextEvent()
	if f.reference {
		for _, id := range allCtlIDs(len(f.ctls), &f.idScratch) {
			next = f.ctlNextEvent(f.ctls[id], next)
		}
		return next
	}
	for _, bucket := range f.dirty {
		for _, id := range bucket {
			next = f.ctlNextEvent(f.ctls[id], next)
		}
	}
	return next
}

// ctlNextEvent folds one controller's queued-work deadlines into next.
func (f *netFabric) ctlNextEvent(ctl *cacheCtl, next uint64) uint64 {
	for i := range ctl.outbox {
		// A matured entry flushes on the very next tick.
		at := ctl.outbox[i].readyAt
		if at <= f.now {
			at = f.now + 1
		}
		if at < next {
			next = at
		}
	}
	for i := range ctl.recallQ {
		pr := &ctl.recallQ[i]
		at := pr.deadline
		if exp, held := ctl.locked[pr.msg.Block]; held && exp < at {
			at = exp
		}
		if at <= f.now {
			at = f.now + 1
		}
		if at < next {
			next = at
		}
	}
	return next
}

// allCtlIDs fills *scratch with 0..n-1 (reference-mode nextEvent scans
// every controller).
func allCtlIDs(n int, scratch *[]int) []int {
	ids := (*scratch)[:0]
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	*scratch = ids
	return ids
}

// advance replays k guaranteed-no-op ticks in one step: the fabric and
// network clocks move forward, and nothing else can change (the caller
// established now+k < nextEvent()).
func (f *netFabric) advance(k uint64) {
	f.now += k
	f.net.Advance(k)
}

// missState tracks a requester-side outstanding transaction.
type missState struct {
	write bool
	start uint64

	// poisoned marks that a recall (Inv/Fetch) arrived while this miss
	// was outstanding. The recall may have crossed our grant in the
	// network, so the arriving Data/DataEx is stale and must be
	// dropped (the access re-requests). Without this a crossing recall
	// leaves two exclusive copies; acknowledging it immediately (rather
	// than deferring) avoids deadlock when our own request is still
	// queued at the home behind the recalling transaction.
	poisoned bool
}

// homeTx tracks a home-side multi-party transaction. Completed
// transactions return to the controller's freelist so the steady state
// reuses both the object and its queued-request capacity.
type homeTx struct {
	write     bool
	requester int
	acksLeft  int
	queued    []directory.Msg
}

func (c *cacheCtl) newTx(write bool, requester, acksLeft int) *homeTx {
	if n := len(c.txFree); n > 0 {
		tx := c.txFree[n-1]
		c.txFree[n-1] = nil
		c.txFree = c.txFree[:n-1]
		tx.write, tx.requester, tx.acksLeft = write, requester, acksLeft
		return tx
	}
	return &homeTx{write: write, requester: requester, acksLeft: acksLeft}
}

func (c *cacheCtl) freeTx(tx *homeTx) {
	tx.queued = tx.queued[:0]
	c.txFree = append(c.txFree, tx)
}

// CtlStats aggregates one controller's behavior.
type CtlStats struct {
	LocalMisses   uint64
	RemoteMisses  uint64
	RemoteLatency uint64 // summed cycles from request to data arrival
	Upgrades      uint64
}

// cacheCtl is the per-node cache and directory controller; it
// implements proc.MemPort.
type cacheCtl struct {
	node   int
	fabric *netFabric
	cache  *cache.Cache
	dir    *directory.Directory

	pending  map[uint32]missState // by value: missState is two words, no box
	homeTx   map[uint32]*homeTx
	txFree   []*homeTx // retired homeTx objects, recycled with their queued capacity
	outbox   []outMsg
	outSpare []outMsg // flushOutbox double buffer
	keepQ    []outMsg // flushOutbox not-yet-matured scratch
	fence    int      // outstanding flush writebacks (Section 3.4)

	// locked implements the anti-"cache tag" interlock of Section 3.1:
	// a freshly installed line is protected from recalls until the
	// local processor completes one access to it (or lockWindow cycles
	// pass), guaranteeing forward progress when nodes ping-pong a
	// block. The window must exceed a switch-spinning thread's retry
	// period — all resident frames rotating through context switches —
	// or every line is stolen before its requester returns.
	locked      map[uint32]uint64 // block -> protection expiry cycle
	lockWindow  uint64
	recallQ     []pendingRecall // recalls deferred by the interlock or a miss
	recallSpare []pendingRecall // processRecalls double buffer
	targetsBuf  []int           // homeRequest invalidation-target scratch

	// replySeq numbers this node's directory data replies for the fault
	// plan's reply-delay draws; it advances in send order, which both
	// run loops reproduce identically.
	replySeq uint64

	Stats CtlStats
}

// pendingRecall is a recall waiting for the interlock to release or
// for an in-flight grant to land (bounded by deadline).
type pendingRecall struct {
	msg      directory.Msg
	deadline uint64
}

// recallWait bounds how long a recall waits for a crossing grant
// before assuming the request is merely queued at the home.
const recallWait = 160

type outMsg struct {
	msg     directory.Msg
	dst     int
	readyAt uint64
}

func (c *cacheCtl) send(dst int, msg directory.Msg, delay int) {
	msg.From = c.node
	if p := c.fabric.plan; p != nil && (msg.Kind == directory.Data || msg.Kind == directory.DataEx) {
		// A slow memory controller: data grants leave the home late.
		delay += p.ReplyDelay(c.node, c.replySeq)
		c.replySeq++
	}
	c.outbox = append(c.outbox, outMsg{msg: msg, dst: dst, readyAt: c.fabric.now + uint64(delay)})
	c.fabric.markDirty(c.node)
	c.fabric.trace.Emit(c.node, trace.KProtoSend,
		int32(msg.Kind), int32(msg.Block), int32(dst), int32(msg.Size(c.fabric.cfg.Cache.BlockBytes)))
}

// dirTrans records a directory state transition at this home node.
func (c *cacheCtl) dirTrans(block uint32, old, new directory.State, who int) {
	if old != new {
		c.fabric.trace.Emit(c.node, trace.KDirTrans, int32(block), int32(old), int32(new), int32(who))
	}
}

func (c *cacheCtl) flushOutbox() {
	// Handling a local delivery may append fresh messages to c.outbox;
	// take ownership of the current batch first so they are not lost
	// (they go out on the next cycle, like a real controller pipeline).
	// The batch and the not-yet-matured keeps swap between persistent
	// buffers so the steady state allocates nothing.
	box := c.outbox
	c.outbox = c.outSpare[:0]
	keep := c.keepQ[:0]
	for _, om := range box {
		if om.readyAt > c.fabric.now {
			keep = append(keep, om)
			continue
		}
		if om.dst == c.node {
			// Local delivery (home == requester side-channel).
			c.handle(om.msg)
			continue
		}
		f := c.fabric
		if f.staging {
			// Parallel fabric phase: the network is shared, so queue the
			// send for the coordinator to apply at the horizon barrier
			// (tickSharded replays staged sends in the sequential order).
			st := f.stages[f.shardOf[c.node]]
			st.sends = append(st.sends, stagedSend{src: c.node, dst: om.dst, msg: om.msg})
			continue
		}
		if f.part != nil && f.part.Cross(c.node, om.dst) {
			f.crossMsgs++
		}
		nm := f.net.Alloc()
		nm.Src = c.node
		nm.Dst = om.dst
		nm.Size = om.msg.Size(f.cfg.Cache.BlockBytes)
		nm.Payload = network.CoherencePayload(om.msg)
		f.net.Send(nm)
	}
	c.outbox = append(c.outbox, keep...)
	c.keepQ = keep[:0]
	c.outSpare = box[:0]
	if len(c.outbox) > 0 {
		c.fabric.markDirty(c.node)
	}
}

func (c *cacheCtl) mem() *mem.Memory { return c.fabric.m.Mem }

func (c *cacheCtl) blockOf(addr uint32) uint32 { return addr / c.fabric.cfg.Cache.BlockBytes }

// Access implements proc.MemPort.
func (c *cacheCtl) Access(addr uint32, f isa.MemFlavor, store bool, value isa.Word) (proc.MemResult, error) {
	res, err := c.access(addr, f, store, value)
	if c.fabric.check != nil {
		c.fabric.checkBlock(c.blockOf(addr))
	}
	return res, err
}

// EpochHit implements proc.EpochPort: the clock-free slice of access's
// hit path, driven by the epoch engine and the superinstruction
// handlers without a fabric tick. It completes a plain access iff the
// block is cached with the required permission — a store needs the
// exclusive copy; a load is satisfied by any copy — and mirrors the
// full hit path byte for byte: the same cache Lookup (hit counter and
// LRU touch), the same FEAccess against the flat store, the same dirty
// marking, and the same interlock release. Everything else (miss,
// upgrade, out-of-range address) refuses with no state touched, so the
// caller's fallback through Access observes exactly the state the
// reference path would. The callers exclude full/empty-flavored
// accesses, so needWrite reduces to store and FEAccess cannot
// sync-fault. Note Probe, not Lookup, makes the refusal decision: a
// refused access must not pre-count the miss the full path is about to
// count. (The invariant checkers force the compiled tier off, so the
// checkBlock audit in Access has no counterpart here.)
func (c *cacheCtl) EpochHit(addr uint32, store bool, value isa.Word) (isa.Word, bool, bool) {
	block := c.blockOf(addr)
	st, hit := c.cache.Probe(block)
	if !hit || (store && st != cache.Exclusive) || !c.mem().InRange(addr) {
		return 0, false, false
	}
	if _, held := c.locked[block]; held {
		// A hit releases the first-use interlock, and a recall deferred
		// on that lock would then fire on the very next tick — earlier
		// than the nextEvent() horizon the epoch window was proved
		// against (which prices deferred recalls at lock expiry). Only
		// the per-op path, which ticks the fabric every cycle, may
		// perform that release.
		for i := range c.recallQ {
			if c.recallQ[i].msg.Block == block {
				return 0, false, false
			}
		}
	}
	c.cache.Lookup(block)
	res, err := proc.FEAccess(c.mem(), addr, isa.MemFlavor{}, store, value)
	if err != nil {
		// Unreachable: InRange held above and a plain flavored access
		// has no other failure mode. Refusing would desynchronize the
		// Lookup already counted, so fail loudly instead.
		panic(err)
	}
	if store {
		c.cache.MarkDirty(block)
	}
	delete(c.locked, block)
	return res.Value, res.Full, true
}

func (c *cacheCtl) access(addr uint32, f isa.MemFlavor, store bool, value isa.Word) (proc.MemResult, error) {
	needWrite := store || f.ResetFE || f.SetFE
	block := c.blockOf(addr)

	if st, hit := c.cache.Lookup(block); hit && (st == cache.Exclusive || !needWrite) {
		res, err := proc.FEAccess(c.mem(), addr, f, store, value)
		if err == nil && res.Outcome == proc.OK && needWrite {
			c.cache.MarkDirty(block)
		}
		if err == nil {
			// One access completed: release the interlock.
			delete(c.locked, block)
		}
		return res, err
	}

	// Miss (or upgrade). An outstanding transaction for this block?
	if _, busy := c.pending[block]; busy {
		return c.missResult(f), nil
	}

	home := c.fabric.dist.Home(addr)
	if home == c.node {
		if stall, ok := c.tryLocal(block, needWrite); ok {
			res, err := proc.FEAccess(c.mem(), addr, f, store, value)
			res.Stall += stall
			if err == nil && res.Outcome == proc.OK && needWrite {
				c.cache.MarkDirty(block)
			}
			c.Stats.LocalMisses++
			c.fabric.trace.Emit(c.node, trace.KLocalMiss, int32(block), int32(stall), b2i(needWrite), 0)
			return res, err
		}
		// Home here, but third parties hold the block: run the home
		// transaction against ourselves as requester.
		c.pending[block] = missState{write: needWrite, start: c.fabric.now}
		c.fabric.trace.Emit(c.node, trace.KMissStart, int32(block), b2i(needWrite), int32(home), 0)
		kind := directory.ReadReq
		if needWrite {
			kind = directory.WriteReq
		}
		c.homeRequest(directory.Msg{Kind: kind, Block: block, From: c.node})
		return c.missResult(f), nil
	}

	// Remote home: issue the request.
	c.pending[block] = missState{write: needWrite, start: c.fabric.now}
	c.fabric.trace.Emit(c.node, trace.KMissStart, int32(block), b2i(needWrite), int32(home), 0)
	kind := directory.ReadReq
	if needWrite {
		kind = directory.WriteReq
	}
	c.send(home, directory.Msg{Kind: kind, Block: block}, 0)
	return c.missResult(f), nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// missResult is the reply while a transaction is outstanding: trap
// flavors force a context switch; wait flavors hold the processor.
func (c *cacheCtl) missResult(f isa.MemFlavor) proc.MemResult {
	if f.WaitOnMiss {
		return proc.MemResult{Outcome: proc.OK, Retry: true, Stall: c.fabric.cfg.PollCycles}
	}
	return proc.MemResult{Outcome: proc.RemoteMiss}
}

// tryLocal satisfies a home-node miss without the network when the
// directory permits: nobody else holds the block (or only we do).
func (c *cacheCtl) tryLocal(block uint32, write bool) (stall int, ok bool) {
	if _, busy := c.homeTx[block]; busy {
		return 0, false
	}
	e := c.dir.Entry(block)
	self := c.node
	old := e.State
	switch e.State {
	case directory.Uncached:
	case directory.Shared:
		if write && e.Sharers.CountExcept(self) > 0 {
			return 0, false
		}
	case directory.Exclusive:
		if e.Owner != self {
			return 0, false
		}
	}
	if write {
		e.State = directory.Exclusive
		e.Owner = self
		e.Sharers.Clear()
	} else {
		if e.State != directory.Shared {
			e.State = directory.Shared
			e.Owner = -1
		}
		e.Sharers.Add(self)
	}
	c.dirTrans(block, old, e.State, self)
	c.install(block, write)
	return c.fabric.cfg.MemLatency, true
}

// install puts the block in the cache, handling the victim's protocol
// obligations.
func (c *cacheCtl) install(block uint32, write bool) {
	st := cache.Shared
	if write {
		st = cache.Exclusive
	}
	victim, evicted := c.cache.Insert(block, st)
	if !evicted {
		return
	}
	if victim.State == cache.Exclusive {
		// Notify the victim's home so the directory drops ownership.
		vhome := c.fabric.dist.Home(victim.Block * c.fabric.cfg.Cache.BlockBytes)
		c.send(vhome, directory.Msg{Kind: directory.WBNotify, Block: victim.Block}, 0)
	}
	// Shared victims are dropped silently; a later Inv to a non-holder
	// is acknowledged harmlessly.
}

// handle processes one protocol message at this controller.
func (c *cacheCtl) handle(msg directory.Msg) {
	c.handleMsg(msg)
	if c.fabric.check != nil {
		c.fabric.checkBlock(msg.Block)
	}
}

func (c *cacheCtl) handleMsg(msg directory.Msg) {
	switch msg.Kind {
	case directory.ReadReq, directory.WriteReq:
		c.homeRequest(msg)

	case directory.WBNotify, directory.FlushWB:
		if tx, busy := c.homeTx[msg.Block]; busy {
			_ = tx // a Fetch is in flight; the FetchAck path completes the tx
		} else {
			e := c.dir.Entry(msg.Block)
			if e.State == directory.Exclusive && e.Owner == msg.From {
				e.State = directory.Uncached
				e.Owner = -1
				c.dirTrans(msg.Block, directory.Exclusive, directory.Uncached, msg.From)
			}
		}
		c.dir.Writebacks++
		if msg.Kind == directory.FlushWB {
			c.send(msg.From, directory.Msg{Kind: directory.FlushAck, Block: msg.Block}, 0)
		}

	case directory.FlushAck:
		if c.fence > 0 {
			c.fence--
		}

	case directory.Inv, directory.Fetch:
		c.handleRecall(msg)

	case directory.InvAck, directory.FetchAck:
		c.homeAck(msg)

	case directory.Data, directory.DataEx:
		ms, busy := c.pending[msg.Block]
		if !busy {
			return // stale duplicate; drop
		}
		delete(c.pending, msg.Block)
		c.Stats.RemoteMisses++
		c.Stats.RemoteLatency += c.fabric.now - ms.start
		c.fabric.trace.Emit(c.node, trace.KMissFill,
			int32(msg.Block), int32(c.fabric.now-ms.start), b2i(msg.Kind == directory.DataEx), b2i(ms.poisoned))
		if ms.poisoned {
			// A recall crossed this grant: the copy is already claimed
			// by a newer transaction. Drop it; the access re-requests
			// when retried — the "cache tag" interaction of Section 3.1.
			return
		}
		c.install(msg.Block, msg.Kind == directory.DataEx)
		c.locked[msg.Block] = c.fabric.now + c.lockWindow
		// Recalls that were waiting for this grant now queue behind the
		// first-use interlock (processRecalls applies them).
	}
}

// handleRecall routes an incoming Inv/Fetch:
//
//   - if a grant for the block may be in flight (miss pending, nothing
//     cached), wait for it — bounded by recallWait in case the request
//     is merely queued at the home — so the grant is not silently
//     orphaned into a second exclusive copy;
//   - if we still hold a copy, the recall applies to it now; a pending
//     upgrade's grant is then stale, so poison it;
//   - if the line is interlock-protected, wait for its first use
//     (Section 3.1's forward-progress interlock).
func (c *cacheCtl) handleRecall(msg directory.Msg) {
	_, cached := c.cache.Probe(msg.Block)
	if ms, busy := c.pending[msg.Block]; busy {
		if !cached {
			c.recallQ = append(c.recallQ, pendingRecall{msg: msg, deadline: c.fabric.now + recallWait})
			c.fabric.markDirty(c.node)
			return
		}
		ms.poisoned = true
		c.pending[msg.Block] = ms
	}
	if exp, held := c.locked[msg.Block]; held && c.fabric.now < exp {
		c.recallQ = append(c.recallQ, pendingRecall{msg: msg, deadline: c.fabric.now + recallWait})
		c.fabric.markDirty(c.node)
		return
	}
	c.recall(msg)
}

// processRecalls retries deferred recalls once their reason to wait has
// passed: the interlock released, the awaited grant arrived (the line
// is now present and, once used, surrendered), or the deadline expired
// (the "grant" was actually a queued request — ack now and poison).
func (c *cacheCtl) processRecalls() {
	if len(c.recallQ) == 0 {
		return
	}
	q := c.recallQ
	c.recallQ = c.recallSpare[:0]
	for _, pr := range q {
		block := pr.msg.Block
		if exp, held := c.locked[block]; held && c.fabric.now < exp {
			c.recallQ = append(c.recallQ, pr)
			continue
		}
		ms, busy := c.pending[block]
		_, cached := c.cache.Probe(block)
		if busy && !cached && c.fabric.now < pr.deadline {
			c.recallQ = append(c.recallQ, pr)
			continue
		}
		if busy {
			ms.poisoned = true
			c.pending[block] = ms
		}
		c.recall(pr.msg)
	}
	c.recallSpare = q[:0]
	if len(c.recallQ) > 0 {
		c.fabric.markDirty(c.node)
	}
}

// recall services an Inv or Fetch against the local cache and
// acknowledges the home.
func (c *cacheCtl) recall(msg directory.Msg) {
	switch msg.Kind {
	case directory.Inv:
		c.cache.Invalidate(msg.Block)
		c.send(msg.From, directory.Msg{Kind: directory.InvAck, Block: msg.Block, Requester: msg.Requester}, 0)
	case directory.Fetch:
		if msg.Write {
			c.cache.Invalidate(msg.Block)
		} else {
			c.cache.SetState(msg.Block, cache.Shared)
		}
		c.send(msg.From, directory.Msg{Kind: directory.FetchAck, Block: msg.Block, Requester: msg.Requester}, 0)
	}
	if c.fabric.check != nil {
		// Recalls applied from processRecalls mutate cache state outside
		// the handle path; audit the block here to cover both routes.
		c.fabric.checkBlock(msg.Block)
	}
}

// homeRequest runs the directory state machine for a request arriving
// at this (home) node.
func (c *cacheCtl) homeRequest(req directory.Msg) {
	if tx, busy := c.homeTx[req.Block]; busy {
		tx.queued = append(tx.queued, req)
		return
	}
	e := c.dir.Entry(req.Block)
	lat := c.fabric.cfg.MemLatency
	write := req.Kind == directory.WriteReq
	old := e.State
	defer func() { c.dirTrans(req.Block, old, e.State, req.From) }()

	if !write {
		c.dir.ReadMisses++
		switch e.State {
		case directory.Uncached, directory.Shared:
			e.State = directory.Shared
			e.Sharers.Add(req.From)
			c.send(req.From, directory.Msg{Kind: directory.Data, Block: req.Block}, lat)
		case directory.Exclusive:
			if e.Owner == req.From {
				// Owner lost its copy (silent race); re-grant.
				c.send(req.From, directory.Msg{Kind: directory.DataEx, Block: req.Block}, lat)
				return
			}
			c.dir.Fetches++
			c.homeTx[req.Block] = c.newTx(false, req.From, 1)
			c.send(e.Owner, directory.Msg{Kind: directory.Fetch, Block: req.Block, Requester: req.From, Write: false}, 0)
		}
		return
	}

	c.dir.WriteMisses++
	switch e.State {
	case directory.Uncached:
		e.State = directory.Exclusive
		e.Owner = req.From
		c.send(req.From, directory.Msg{Kind: directory.DataEx, Block: req.Block}, lat)
	case directory.Shared:
		targets := e.Sharers.AppendMembers(c.targetsBuf[:0], req.From)
		c.targetsBuf = targets[:0]
		if len(targets) == 0 {
			e.State = directory.Exclusive
			e.Owner = req.From
			e.Sharers.Clear()
			c.send(req.From, directory.Msg{Kind: directory.DataEx, Block: req.Block}, lat)
			return
		}
		c.dir.InvalsSent += uint64(len(targets))
		c.homeTx[req.Block] = c.newTx(true, req.From, len(targets))
		for _, t := range targets {
			c.send(t, directory.Msg{Kind: directory.Inv, Block: req.Block, Requester: req.From}, 0)
		}
	case directory.Exclusive:
		if e.Owner == req.From {
			c.send(req.From, directory.Msg{Kind: directory.DataEx, Block: req.Block}, lat)
			return
		}
		c.dir.Fetches++
		c.homeTx[req.Block] = c.newTx(true, req.From, 1)
		c.send(e.Owner, directory.Msg{Kind: directory.Fetch, Block: req.Block, Requester: req.From, Write: true}, 0)
	}
}

// homeAck retires one acknowledgment of a pending home transaction and
// completes it when all are in.
func (c *cacheCtl) homeAck(msg directory.Msg) {
	tx, busy := c.homeTx[msg.Block]
	if !busy {
		return
	}
	tx.acksLeft--
	if tx.acksLeft > 0 {
		return
	}
	delete(c.homeTx, msg.Block)
	e := c.dir.Entry(msg.Block)
	lat := c.fabric.cfg.MemLatency
	old := e.State
	if tx.write {
		e.State = directory.Exclusive
		e.Owner = tx.requester
		e.Sharers.Clear()
		c.send(tx.requester, directory.Msg{Kind: directory.DataEx, Block: msg.Block}, lat)
	} else {
		prevOwner := e.Owner
		e.State = directory.Shared
		e.Owner = -1
		if prevOwner >= 0 {
			e.Sharers.Add(prevOwner) // downgraded, keeps a read copy
		}
		e.Sharers.Add(tx.requester)
		c.send(tx.requester, directory.Msg{Kind: directory.Data, Block: msg.Block}, lat)
	}
	c.dirTrans(msg.Block, old, e.State, tx.requester)
	// Serve queued requests in arrival order. A served request may open
	// a fresh transaction on the same block; its queue is a different
	// homeTx, so iterating tx.queued stays safe. Retire tx (keeping its
	// queued capacity) only after the loop.
	for _, q := range tx.queued {
		c.homeRequest(q)
	}
	c.freeTx(tx)
}

// Flush implements proc.MemPort: software-enforced writeback and
// invalidation (Section 3.4). Dirty lines raise the fence counter
// until the home acknowledges.
func (c *cacheCtl) Flush(addr uint32) int {
	n := c.flush(addr)
	if c.fabric.check != nil {
		c.fabric.checkBlock(c.blockOf(addr))
	}
	return n
}

func (c *cacheCtl) flush(addr uint32) int {
	block := c.blockOf(addr)
	dirty, present := c.cache.Invalidate(block)
	if !present {
		return 1
	}
	home := c.fabric.dist.Home(addr)
	if dirty {
		c.fence++
		if home == c.node {
			e := c.dir.Entry(block)
			if e.State == directory.Exclusive && e.Owner == c.node {
				e.State = directory.Uncached
				e.Owner = -1
			}
			c.fence--
			return c.fabric.cfg.MemLatency
		}
		c.send(home, directory.Msg{Kind: directory.FlushWB, Block: block}, 0)
	}
	return 1
}

// Fence reports the outstanding flush count (read through LDIO).
func (c *cacheCtl) Fence() int { return c.fence }

var _ proc.MemPort = (*cacheCtl)(nil)
