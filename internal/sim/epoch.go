// The epoch engine: multi-node execution through the compiled tier
// across provably safe horizons.
//
// The compiled tier (compile.go) only fired when a cycle had exactly
// one stepper, so multiprocessor runs — the configuration the paper
// actually argues for — stepped one op per node per cycle and, when
// sharded, barriered every cycle. The epoch engine generalizes the
// isolated-window proof from "one node runs while the rest sleep" to
// "this group of nodes runs undisturbed": before stepping a cycle with
// two or more steppers, the machine computes the group's safe horizon —
// the earliest cycle at which anything outside the group's epoch-safe
// ops can act — and executes every stepper in lockstep through the
// superinstruction handlers for the whole window, batching the fabric's
// provably uneventful ticks into one advance and paying the run loop's
// per-cycle costs (due-set pops, merges, and on sharded machines the
// phase barriers) once per window instead of once per cycle.
//
// The horizon proof. A window [now, B) is safe to execute in lockstep
// when no event from outside the stepping group can occur inside it,
// and no stepper performs an op whose effects leave the node before B:
//
//   - B <= wakeq.next(): no sleeping node joins mid-window, so the
//     stepping group is constant.
//   - B <= net.nextEvent()-1: no message delivery, outbox maturation,
//     deferred recall, or interlock expiry fires inside the window (the
//     fabric's event horizon covers both in-flight network messages and
//     every controller-side timer), so the per-cycle fabric ticks the
//     reference loop would run are all no-ops and batch into one
//     advance. IPIs ride the I/O path (classStop ops), not the fabric,
//     and cannot appear asynchronously: only a stepper's own STIO could
//     post one, and EpochStep refuses STIO.
//   - B <= sampler.NextBoundary(), limit, the deadlock deadline, and
//     the wedge-scan watermark: the observability and watchdog
//     schedules stay exactly per-op.
//   - Every op executed inside the window is epoch-safe (EpochStep):
//     a trap-free superinstruction that retires at cost 1 and touches
//     only this node's state — or a plain cached access protected by
//     the coherence protocol's exclusive-copy guarantee. Ops the proof
//     does not cover (traps, syscalls, misses, strict-future operands,
//     full/empty flavors, FLUSH, I/O, HALT, run-ending services) make
//     EpochStep refuse with no state touched; the window commits the
//     cycles before the refusal and the machine resumes per-op at the
//     refusing op's exact cycle — a mid-epoch fallback, not a reorder.
//
// Within a window every stepper executes one op per simulated cycle in
// ascending node id — the reference loop's own interleaving — so
// commitment needs no rewind: the committed prefix is bit-identical to
// per-cycle stepping by construction, and the differential matrices in
// epoch_test.go hold every {reference, predecode, compiled, epoch} x
// {shard count} x {horizon} row to that.

package sim

import (
	"fmt"
	"math/bits"
)

// epochWindow tries to run the cycle's steppers in lockstep through
// the compiled tier across the group's safe horizon. It returns
// full=true when the whole window committed: m.now advanced past it,
// the fabric replayed its no-op ticks, and every stepper remains a
// running 1-cycle node (the caller rebuilds the running list and
// continues its loop). Otherwise the window stopped at an epoch-unsafe
// op (or proved shorter than 2 cycles): any complete cycles are
// committed and m.now advanced to the stop cycle, steps[:si] have
// already stepped in it, and the caller finishes the cycle per-op from
// steps[si:] — the refused op executes at its exact reference cycle.
func (m *Machine) epochWindow(steps []int, limit uint64) (si int, full bool) {
	// The window bound: every external-event source the horizon proof
	// enumerates. Identical structure to fusedStep's single-node bound.
	b := limit
	if m.sampler != nil {
		if nb := m.sampler.NextBoundary(); nb < b {
			b = nb
		}
	}
	if w := m.wakeq.next(); w < b {
		b = w
	}
	if dl := m.lastProgress + m.deadlockWin + 1; dl < b {
		b = dl
	}
	if m.net != nil {
		ne := m.net.nextEvent()
		if ne <= m.now+1 {
			return 0, false
		}
		if ne-1 < b {
			b = ne - 1
		}
		if m.nextWedgeCheck < b {
			b = m.nextWedgeCheck
		}
	}
	if h := m.Cfg.Horizon; h > 0 {
		if hc := m.now + h; hc < b {
			b = hc
		}
	}
	if b <= m.now+1 {
		return 0, false // a 0/1-cycle window cannot beat the per-cycle path
	}
	w := b - m.now

	// Lockstep: one epoch-safe op per stepper per cycle, ascending node
	// id — the reference interleaving, executed without intervening
	// fabric ticks (all provably no-ops) or running-list rebuilds
	// (every op costs 1, so the group is invariant).
	var fc uint64
	stopped := false
loop:
	for fc = 0; fc < w; fc++ {
		for si = 0; si < len(steps); si++ {
			if !m.Nodes[steps[si]].Proc.EpochStep() {
				stopped = true
				break loop
			}
		}
	}
	if !stopped {
		si = 0
	}
	if fc == 0 && si == 0 {
		return 0, false // the very first op refused; nothing committed
	}

	// Commit the complete cycles: batch the fabric's no-op ticks (they
	// run with the fabric clock at m.now+1 .. m.now+fc, all strictly
	// before its next event) and advance simulated time. The partial
	// cycle's own tick, if any, comes from the caller's normal
	// end-of-cycle path.
	if fc > 0 {
		if m.net != nil {
			m.net.advance(fc)
		}
		m.now += fc
		c := m.now - 1
		for _, id := range steps {
			m.Nodes[id].lastRetired = c
		}
		m.lastProgress = c
	}
	if si > 0 {
		for _, id := range steps[:si] {
			m.Nodes[id].lastRetired = m.now
		}
		m.lastProgress = m.now
	}

	t := &m.epochTel
	t.Windows++
	t.Cycles += fc
	t.Ops += fc*uint64(len(steps)) + uint64(si)
	t.PartialOps += uint64(si)
	if stopped {
		t.Fallbacks++
	}
	h := bits.Len64(fc)
	if h >= len(t.LenHist) {
		h = len(t.LenHist) - 1
	}
	t.LenHist[h]++
	return si, !stopped
}

// epochFinishCycle completes a cycle the epoch engine stopped inside:
// steps[:si] already stepped (epoch-safe, cost 1, still running), the
// rest step per-op in ascending order — byte-for-byte the sequential
// cycle body, so the refused op (and anything after it) executes with
// exact reference semantics. Shared by the sharded loop; the fast loop
// inlines the same flow.
func (m *Machine) epochFinishCycle(steps []int, si int) error {
	keep := append(m.running[:0], steps[:si]...)
	for _, id := range steps[si:] {
		n := m.Nodes[id]
		retired := n.Proc.Stats.Instructions
		c, err := n.Proc.Step()
		if err != nil {
			return fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
		}
		if c > 1 {
			m.wakeq.push(id, m.now+uint64(c))
		} else {
			keep = append(keep, id)
		}
		if n.Proc.Stats.Instructions != retired {
			m.lastProgress = m.now
			n.lastRetired = m.now
		}
		if m.Sched.MainDone {
			break
		}
	}
	m.running = keep
	if m.net != nil {
		m.net.tick()
	}
	m.now++
	return m.watchdogs()
}

// EpochTelemetry returns the epoch engine's counters (all-zero when
// the engine is disarmed). Read while the machine is quiescent.
func (m *Machine) EpochTelemetry() EpochStats { return m.epochTel }
