package sim

// Deterministic checkpoint/restore: Snapshot serializes the complete
// simulated state of a machine at a cycle boundary into a versioned,
// checksummed image (container format: internal/snapshot); Restore
// rebuilds a machine from one that provably continues bit-identically.
//
// The dividing line the encoders follow everywhere: *simulated* state
// — anything a program, a checker, or a later cycle can observe —
// round-trips exactly; *host-side* state — scratch buffers, freelists,
// dirty sets, derived indices, telemetry of the host's own performance
// — is reconstructed from the simulated state instead. That is what
// lets one image restore under any execution tier (reference,
// predecoded, compiled, epoch, sharded): the tiers share simulated
// semantics and differ only in host bookkeeping.
//
// An image is self-contained. It embeds the program (instructions via
// isa.Encode, symbols, entry) and the machine-defining configuration —
// node count, cost profile, memory size, ALEWIFE parameters, fault
// plan, sabotage cycle — and the FNV-64a hash of that identity section
// is the header's config hash: two images restore into the same run
// iff their hashes match, which is how the divergence bisector pairs
// checkpoints without decoding them. Host knobs (tier selection,
// shards, Check, output writer) are deliberately NOT part of identity:
// restoring under a different tier than the one that wrote the image
// is the point.
//
// Not captured, by design:
//   - trace ring contents and sampler rows (host-side flight-recorder
//     windows; the rings' event counters and the sampler's window
//     boundary round-trip as cursors, see internal/trace/snapshot.go)
//   - host telemetry: fused/epoch/PDES counters restart at zero
//   - the static heap cursor (compile-time state; programs are loaded
//     from the image, never recompiled into the restored machine)

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"april/internal/cache"
	"april/internal/core"
	"april/internal/directory"
	"april/internal/fault"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/network"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/snapshot"
)

// Snapshot serializes the machine into a self-contained image. It must
// be called at a cycle boundary — after New+Load, or between Run /
// RunWindow slices — never from inside a running machine.
func (m *Machine) Snapshot() ([]byte, error) {
	if !m.loaded {
		return nil, errors.New("sim: cannot snapshot before Load")
	}
	w := snapshot.NewWriter(1 << 16)
	m.encodeIdentity(w)
	idLen := w.Len()
	m.encodeState(w)
	payload := w.Bytes()
	return snapshot.Seal(payload, snapshot.Hash(payload[:idLen]), m.now), nil
}

// ConfigHash returns the machine's run identity: the hash a Snapshot
// would carry in its header. Two machines share it iff they run the
// same program under the same machine-defining configuration.
func (m *Machine) ConfigHash() (uint64, error) {
	if !m.loaded {
		return 0, errors.New("sim: cannot hash config before Load")
	}
	w := snapshot.NewWriter(1 << 12)
	m.encodeIdentity(w)
	return snapshot.Hash(w.Bytes()), nil
}

// RestoreOverrides are the host-side knobs a restored machine takes
// from the caller rather than the image: how to execute, not what to
// execute. The zero value restores at full speed — all tiers armed,
// unsharded, no checkers, no tracing.
type RestoreOverrides struct {
	Out io.Writer

	Reference        bool // reference loops (DisableFastForward + DisablePredecode)
	DisableCompile   bool
	DisableEpoch     bool
	CompileThreshold int
	Horizon          uint64
	Shards           int
	ShardBatch       int
	Check            bool

	Trace            bool   // attach an event tracer (cursors continue from the image)
	Timeline         bool   // attach the activity sampler
	TimelineInterval uint64 // sampler window (0 = default)
}

// Restore rebuilds a machine from a Snapshot image. The returned
// machine continues from the image's cycle bit-identically to the
// machine that wrote it, under any overrides (tier choice never
// affects simulated results; the snapshot differential tests hold
// restore to that). Corrupted, truncated, or version-mismatched images
// fail with structured errors wrapping the internal/snapshot
// sentinels.
func Restore(img []byte, ov RestoreOverrides) (*Machine, error) {
	hdr, r, err := snapshot.Open(img)
	if err != nil {
		return nil, err
	}
	cfg, prog := decodeIdentity(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	cfg.Out = ov.Out
	cfg.DisableFastForward = ov.Reference
	cfg.DisablePredecode = ov.Reference
	cfg.DisableCompile = ov.DisableCompile
	cfg.DisableEpoch = ov.DisableEpoch
	cfg.CompileThreshold = ov.CompileThreshold
	cfg.Horizon = ov.Horizon
	cfg.Shards = ov.Shards
	cfg.ShardBatch = ov.ShardBatch
	cfg.Check = ov.Check
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	if err := m.Load(prog); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	if ov.Trace {
		m.EnableTracing(0)
	}
	if ov.Timeline {
		m.EnableTimeline(ov.TimelineInterval)
	}
	if err := m.decodeState(r); err != nil {
		return nil, err
	}
	if m.now != hdr.Cycle {
		return nil, fmt.Errorf("%w: header cycle %d, payload cycle %d", snapshot.ErrCorrupt, hdr.Cycle, m.now)
	}
	return m, nil
}

// AuditNow runs the full invariant sweep — every directory entry,
// every cached line, thread conservation — at the machine's current
// cycle and reports the first new violation as a CrashError (with
// autopsy report), or nil when the machine is clean. It is the
// divergence bisector's predicate; it requires a machine built with
// Config.Check.
func (m *Machine) AuditNow() error {
	if m.checker == nil {
		return errors.New("sim: AuditNow requires a machine built with Config.Check")
	}
	before := m.checker.Total()
	m.auditFinal()
	if m.checker.Total() > before {
		return m.crash(fault.ReasonInvariant, m.checker.Err())
	}
	return nil
}

// SetCheckpointInfo records the most recent checkpoint's cycle and the
// command line that resumes from it, for crash reports (autopsy.go):
// a run that dies after this call tells the user exactly how far back
// recovery starts and how to invoke it.
func (m *Machine) SetCheckpointInfo(cycle uint64, restoreCmd string) {
	m.ckptValid = true
	m.ckptCycle = cycle
	m.ckptCmd = restoreCmd
}

// ===========================================================================
// Identity: program + machine-defining configuration. Everything here
// is covered by the header's config hash. Host knobs (tiers, shards,
// Check, Out) are intentionally absent.
// ===========================================================================

func (m *Machine) encodeIdentity(w *snapshot.Writer) {
	cfg := &m.Cfg
	w.Int(cfg.Nodes)
	encodeProfile(w, &cfg.Profile)
	w.Bool(cfg.Lazy)
	w.U32(cfg.MemoryBytes)
	w.U64(cfg.MaxCycles)
	w.U64(cfg.DeadlockWindow)
	w.U64(cfg.SabotageCycle)
	w.Bool(cfg.Alewife != nil)
	if a := cfg.Alewife; a != nil {
		w.U32(a.Cache.SizeBytes)
		w.U32(a.Cache.BlockBytes)
		w.Int(a.Cache.Assoc)
		w.Int(a.MemLatency)
		w.Int(a.Geometry.Dim)
		w.Int(a.Geometry.Radix)
		w.Bool(a.IdealNet)
		w.Int(a.IdealLat)
		w.Int(a.PollCycles)
	}
	w.Bool(cfg.Faults != nil)
	if f := cfg.Faults; f != nil {
		w.U64(f.Seed)
		w.Int(f.MaxHopJitter)
		w.Int(f.StallEvery)
		w.Int(f.StallCycles)
		w.Int(f.MaxReplyDelay)
		w.Ints(f.StallLinks)
		w.U64(f.WedgeAtCycle)
		w.Int(f.WedgeNode)
	}

	prog := m.Nodes[0].Proc.Prog
	w.U32(prog.Entry)
	w.Count(len(prog.Code))
	for _, inst := range prog.Code {
		w.U64(isa.Encode(inst))
	}
	syms := make([]string, 0, len(prog.Symbols))
	for name := range prog.Symbols {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	w.Count(len(syms))
	for _, name := range syms {
		w.String(name)
		w.U32(prog.Symbols[name])
	}
}

func decodeIdentity(r *snapshot.Reader) (Config, *isa.Program) {
	var cfg Config
	cfg.Nodes = r.Int()
	decodeProfile(r, &cfg.Profile)
	cfg.Lazy = r.Bool()
	cfg.MemoryBytes = r.U32()
	cfg.MaxCycles = r.U64()
	cfg.DeadlockWindow = r.U64()
	cfg.SabotageCycle = r.U64()
	if r.Bool() {
		a := &AlewifeConfig{}
		a.Cache.SizeBytes = r.U32()
		a.Cache.BlockBytes = r.U32()
		a.Cache.Assoc = r.Int()
		a.MemLatency = r.Int()
		a.Geometry.Dim = r.Int()
		a.Geometry.Radix = r.Int()
		a.IdealNet = r.Bool()
		a.IdealLat = r.Int()
		a.PollCycles = r.Int()
		cfg.Alewife = a
	}
	if r.Bool() {
		f := &fault.Config{}
		f.Seed = r.U64()
		f.MaxHopJitter = r.Int()
		f.StallEvery = r.Int()
		f.StallCycles = r.Int()
		f.MaxReplyDelay = r.Int()
		f.StallLinks = r.Ints("stall links")
		f.WedgeAtCycle = r.U64()
		f.WedgeNode = r.Int()
		cfg.Faults = f
	}
	if cfg.Nodes <= 0 || cfg.Nodes > 1<<20 {
		r.Corrupt("node count %d out of range", cfg.Nodes)
		return cfg, nil
	}

	prog := &isa.Program{Entry: r.U32()}
	ninst := r.Count("instructions")
	prog.Code = make([]isa.Inst, 0, ninst)
	for i := 0; i < ninst; i++ {
		inst, err := isa.Decode(r.U64())
		if err != nil {
			r.Corrupt("instruction %d: %v", i, err)
			return cfg, nil
		}
		prog.Code = append(prog.Code, inst)
	}
	nsym := r.Count("symbols")
	prog.Symbols = make(map[string]uint32, nsym)
	for i := 0; i < nsym; i++ {
		name := r.String()
		prog.Symbols[name] = r.U32()
	}
	if int(prog.Entry) >= len(prog.Code) && r.Err() == nil {
		r.Corrupt("entry %d outside program of %d instructions", prog.Entry, len(prog.Code))
	}
	return cfg, prog
}

func encodeProfile(w *snapshot.Writer, p *rts.Profile) {
	w.String(p.Name)
	w.Int(p.Frames)
	w.Bool(p.HardwareFutures)
	for _, v := range profileCosts(p) {
		w.Int(*v)
	}
}

func decodeProfile(r *snapshot.Reader, p *rts.Profile) {
	p.Name = r.String()
	p.Frames = r.Int()
	p.HardwareFutures = r.Bool()
	for _, v := range profileCosts(p) {
		*v = r.Int()
	}
}

// profileCosts enumerates the profile's integer cost fields in a fixed
// order shared by encode and decode.
func profileCosts(p *rts.Profile) []*int {
	return []*int{
		&p.TrapEntry, &p.SwitchCycles, &p.TouchResolvedHandler, &p.TouchDecide,
		&p.FutureNew, &p.TaskExit, &p.ThreadLoad, &p.ThreadUnload,
		&p.Steal, &p.StealPerWord, &p.StolenResolve,
		&p.Enqueue, &p.Dequeue, &p.Idle,
		&p.MakeVectorBase, &p.MakeVectorPerWord, &p.Print,
		&p.AllocRefill, &p.BlockRounds,
	}
}

// ===========================================================================
// State: everything after the identity section.
// ===========================================================================

func (m *Machine) encodeState(w *snapshot.Writer) {
	w.U64(m.now)
	w.U64(m.lastProgress)
	w.U64(m.nextSchedCheck)
	w.U64(m.nextWedgeCheck)

	encodeSched(w, m.Sched.DumpState())

	rem := m.busyRemaining()
	for i, n := range m.Nodes {
		m.encodeNode(w, n, rem[i])
	}

	m.encodeMemory(w)

	w.Bool(m.net != nil)
	if m.net != nil {
		m.encodeFabric(w)
	}

	m.encodeCursors(w)
}

func (m *Machine) decodeState(r *snapshot.Reader) error {
	m.now = r.U64()
	m.lastProgress = r.U64()
	m.nextSchedCheck = r.U64()
	m.nextWedgeCheck = r.U64()

	img := decodeSched(r)
	if r.Err() == nil {
		if err := m.Sched.RestoreState(img); err != nil {
			r.Corrupt("%v", err)
		}
	}

	rem := make([]uint64, len(m.Nodes))
	for i, n := range m.Nodes {
		rem[i] = m.decodeNode(r, n)
	}

	m.decodeMemory(r)

	hasFabric := r.Bool()
	if r.Err() == nil && hasFabric != (m.net != nil) {
		r.Corrupt("image fabric=%v, machine fabric=%v", hasFabric, m.net != nil)
	}
	if hasFabric && r.Err() == nil {
		m.decodeFabric(r)
	}

	m.decodeCursors(r)

	if err := r.Err(); err != nil {
		return err
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", snapshot.ErrCorrupt, n)
	}

	m.rebuildRunLists(rem)

	// Scheduled state events fired iff the image's cycle has passed them
	// (runEventful fires due events before every window boundary, so a
	// snapshot can never be taken in between). The wedge mutates the
	// host-side fault plan, which New rebuilt pristine — re-arm it; the
	// sabotage mutated scheduler state already restored above — only
	// mark it fired.
	if m.plan != nil && m.plan.WedgePending() && m.now >= m.plan.Config().WedgeAtCycle {
		m.armWedge()
	}
	m.sabotaged = m.Cfg.SabotageCycle > 0 && m.now >= m.Cfg.SabotageCycle
	return nil
}

// busyRemaining canonicalizes per-node occupancy: how many cycles
// until each node next Steps. The reference loop keeps it as relative
// busy counters; the work-proportional loops keep absolute wake cycles
// in the queue (0 remaining = on the running list). The canonical form
// restores into either representation.
func (m *Machine) busyRemaining() []uint64 {
	rem := make([]uint64, len(m.Nodes))
	if m.Cfg.DisableFastForward {
		for i, n := range m.Nodes {
			rem[i] = uint64(n.busy)
		}
		return rem
	}
	for _, e := range m.wakeq.heap {
		if e.wake > m.now {
			rem[e.node] = e.wake - m.now
		}
	}
	return rem
}

// rebuildRunLists installs canonical per-node remaining-busy values
// into the target loop's representation.
func (m *Machine) rebuildRunLists(rem []uint64) {
	if m.Cfg.DisableFastForward {
		for i, n := range m.Nodes {
			n.busy = int(rem[i])
		}
		return
	}
	m.wakeq.init(len(m.Nodes))
	m.running = m.running[:0]
	for i := range m.Nodes {
		if rem[i] == 0 {
			m.running = append(m.running, i)
		} else {
			m.wakeq.push(i, m.now+rem[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

func encodeSched(w *snapshot.Writer, img rts.SchedImage) {
	w.Bool(img.MainDone)
	w.U32(uint32(img.MainResult))
	encodeRTSStats(w, &img.Stats)
	w.Count(len(img.Threads))
	for i := range img.Threads {
		encodeThread(w, &img.Threads[i])
	}
	w.Count(len(img.Ready))
	for _, q := range img.Ready {
		w.Ints(q)
	}
	w.Count(len(img.Waiters))
	for _, wt := range img.Waiters {
		w.U32(wt.Addr)
		w.Ints(wt.Threads)
	}
	w.U32s(img.FreeStacks)
	w.U32s(img.FreeTCBs)
	w.Int(img.StealRR)
	w.U32(img.StackNext)
	w.U32(img.StackLimit)
	w.U32(img.HeapNext)
	w.U32(img.HeapLimit)
}

func decodeSched(r *snapshot.Reader) rts.SchedImage {
	var img rts.SchedImage
	img.MainDone = r.Bool()
	img.MainResult = isa.Word(r.U32())
	decodeRTSStats(r, &img.Stats)
	img.Threads = make([]rts.Thread, r.Count("threads"))
	for i := range img.Threads {
		decodeThread(r, &img.Threads[i])
	}
	img.Ready = make([][]int, r.Count("ready queues"))
	for i := range img.Ready {
		img.Ready[i] = r.Ints("ready queue")
	}
	img.Waiters = make([]rts.WaiterImage, r.Count("waiters"))
	for i := range img.Waiters {
		img.Waiters[i].Addr = r.U32()
		img.Waiters[i].Threads = r.Ints("waiter threads")
	}
	img.FreeStacks = r.U32s("free stacks")
	img.FreeTCBs = r.U32s("free TCBs")
	img.StealRR = r.Int()
	img.StackNext = r.U32()
	img.StackLimit = r.U32()
	img.HeapNext = r.U32()
	img.HeapLimit = r.U32()
	return img
}

func encodeThread(w *snapshot.Writer, t *rts.Thread) {
	w.Int(t.ID)
	w.U8(uint8(t.State))
	for _, reg := range t.Regs {
		w.U32(uint32(reg))
	}
	w.U32(t.PC)
	w.U32(t.NPC)
	w.U32(uint32(t.PSR))
	w.U32(t.TCB)
	w.U32(t.StackLow)
	w.U32(t.StackTop)
	w.U32(uint32(t.Future))
	w.Int(t.Home)
}

func decodeThread(r *snapshot.Reader, t *rts.Thread) {
	t.ID = r.Int()
	t.State = rts.ThreadState(r.U8())
	for i := range t.Regs {
		t.Regs[i] = isa.Word(r.U32())
	}
	t.PC = r.U32()
	t.NPC = r.U32()
	t.PSR = core.PSR(r.U32())
	t.TCB = r.U32()
	t.StackLow = r.U32()
	t.StackTop = r.U32()
	t.Future = isa.Word(r.U32())
	t.Home = r.Int()
}

func encodeRTSStats(w *snapshot.Writer, s *rts.Stats) {
	w.U64(s.TasksCreated)
	w.U64(s.Steals)
	w.U64(s.StealWords)
	w.U64(s.Blocks)
	w.U64(s.Requeues)
	w.U64(s.Wakes)
	w.U64(s.ThreadSteals)
	w.U64(s.TouchesResolved)
	w.U64(s.TouchesUnresolved)
}

func decodeRTSStats(r *snapshot.Reader, s *rts.Stats) {
	s.TasksCreated = r.U64()
	s.Steals = r.U64()
	s.StealWords = r.U64()
	s.Blocks = r.U64()
	s.Requeues = r.U64()
	s.Wakes = r.U64()
	s.ThreadSteals = r.U64()
	s.TouchesResolved = r.U64()
	s.TouchesUnresolved = r.U64()
}

// ---------------------------------------------------------------------------
// Nodes: engine, processor, IO controller, runtime trackers
// ---------------------------------------------------------------------------

func (m *Machine) encodeNode(w *snapshot.Writer, n *Node, rem uint64) {
	w.U64(rem)
	w.U64(n.lastRetired)

	e := n.Proc.Engine
	w.Int(e.FP())
	w.U64(e.Switches)
	w.Count(len(e.Frames))
	for i := range e.Frames {
		f := &e.Frames[i]
		for _, reg := range f.R {
			w.U32(uint32(reg))
		}
		w.U32(f.PC)
		w.U32(f.NPC)
		w.U32(uint32(f.PSR))
		w.Int(f.ThreadID)
	}
	for _, g := range e.Globals {
		w.U32(uint32(g))
	}

	p := n.Proc
	w.Bool(p.Halted)
	encodeProcStats(w, &p.Stats)
	for _, k := range p.Kinds {
		w.U64(k)
	}
	ipis := p.DumpIPIs(nil)
	w.Count(len(ipis))
	for _, v := range ipis {
		w.U32(uint32(v))
	}

	ioc := p.IO.(*ioCtl)
	w.Int(ioc.ipiTarget)
	w.U32(ioc.btSrc)
	w.U32(ioc.btDst)
	w.U32(ioc.btLen)
	w.U64(ioc.btReadyAt)

	// The node's private allocation chunk (futures, cons cells): the
	// cursor decides every future address this node hands out next.
	w.U32(n.RT.Heap.Arena.Next)
	w.U32(n.RT.Heap.Arena.Limit)

	stuck := n.RT.DumpStuck()
	w.Bool(stuck != nil)
	if stuck != nil {
		w.Count(len(stuck))
		for _, st := range stuck {
			w.U32(st.PC)
			w.Int(st.Count)
		}
	}
}

// decodeNode installs one node's state and returns its canonical
// remaining-busy count.
func (m *Machine) decodeNode(r *snapshot.Reader, n *Node) uint64 {
	rem := r.U64()
	n.lastRetired = r.U64()

	e := n.Proc.Engine
	fp := r.Int()
	e.Switches = r.U64()
	nframes := r.Count("frames")
	if r.Err() != nil {
		return rem
	}
	if nframes != len(e.Frames) {
		r.Corrupt("image has %d frames, engine has %d", nframes, len(e.Frames))
		return rem
	}
	if fp < 0 || fp >= nframes {
		r.Corrupt("frame pointer %d out of %d frames", fp, nframes)
		return rem
	}
	e.SetFP(fp)
	for i := range e.Frames {
		f := &e.Frames[i]
		for j := range f.R {
			f.R[j] = isa.Word(r.U32())
		}
		f.PC = r.U32()
		f.NPC = r.U32()
		f.PSR = core.PSR(r.U32())
		f.ThreadID = r.Int()
	}
	for i := range e.Globals {
		e.Globals[i] = isa.Word(r.U32())
	}

	p := n.Proc
	p.Halted = r.Bool()
	decodeProcStats(r, &p.Stats)
	for i := range p.Kinds {
		p.Kinds[i] = r.U64()
	}
	nipi := r.Count("pending IPIs")
	if r.Err() != nil {
		return rem
	}
	ipis := make([]isa.Word, nipi)
	for i := range ipis {
		ipis[i] = isa.Word(r.U32())
	}
	p.RestoreIPIs(ipis)

	ioc := p.IO.(*ioCtl)
	ioc.ipiTarget = r.Int()
	ioc.btSrc = r.U32()
	ioc.btDst = r.U32()
	ioc.btLen = r.U32()
	ioc.btReadyAt = r.U64()

	n.RT.Heap.Arena.Next = r.U32()
	n.RT.Heap.Arena.Limit = r.U32()

	if r.Bool() {
		stuck := make([]rts.StuckImage, r.Count("stuck trackers"))
		for i := range stuck {
			stuck[i].PC = r.U32()
			stuck[i].Count = r.Int()
		}
		n.RT.RestoreStuck(stuck)
	} else {
		n.RT.RestoreStuck(nil)
	}
	return rem
}

func encodeProcStats(w *snapshot.Writer, s *proc.Stats) {
	w.U64(s.Instructions)
	w.U64(s.UsefulCycles)
	w.U64(s.WaitCycles)
	w.U64(s.TrapCycles)
	w.U64(s.IdleCycles)
	for _, t := range s.Traps {
		w.U64(t)
	}
	w.U64(s.LoadCount)
	w.U64(s.StoreCount)
}

func decodeProcStats(r *snapshot.Reader, s *proc.Stats) {
	s.Instructions = r.U64()
	s.UsefulCycles = r.U64()
	s.WaitCycles = r.U64()
	s.TrapCycles = r.U64()
	s.IdleCycles = r.U64()
	for i := range s.Traps {
		s.Traps[i] = r.U64()
	}
	s.LoadCount = r.U64()
	s.StoreCount = r.U64()
}

// ---------------------------------------------------------------------------
// Memory: resident pages only, exact residency
// ---------------------------------------------------------------------------

func (m *Machine) encodeMemory(w *snapshot.Writer) {
	w.Int(m.Mem.NumPages())
	nd, nf := 0, 0
	m.Mem.DumpResident(
		func(uint32, []isa.Word) { nd++ },
		func(uint32, []uint64) { nf++ })
	w.Count(nd)
	m.Mem.DumpResident(
		func(page uint32, words []isa.Word) {
			w.U32(page)
			for _, x := range words {
				w.U32(uint32(x))
			}
		},
		func(uint32, []uint64) {})
	w.Count(nf)
	m.Mem.DumpResident(
		func(uint32, []isa.Word) {},
		func(page uint32, bits []uint64) {
			w.U32(page)
			for _, b := range bits {
				w.U64(b)
			}
		})
}

func (m *Machine) decodeMemory(r *snapshot.Reader) {
	np := r.Int()
	if r.Err() != nil {
		return
	}
	if np != m.Mem.NumPages() {
		r.Corrupt("image has %d memory pages, machine has %d", np, m.Mem.NumPages())
		return
	}
	// Exact residency: evict everything construction and loading made
	// resident, then install only the image's pages.
	m.Mem.Reset()
	nd := r.Count("data pages")
	for i := 0; i < nd; i++ {
		if r.Err() != nil {
			return
		}
		page := r.U32()
		words := make([]isa.Word, mem.PageWords)
		for j := range words {
			words[j] = isa.Word(r.U32())
		}
		if r.Err() != nil {
			return
		}
		if err := m.Mem.InstallDataPage(page, words); err != nil {
			r.Corrupt("%v", err)
			return
		}
	}
	nf := r.Count("full/empty pages")
	for i := 0; i < nf; i++ {
		if r.Err() != nil {
			return
		}
		page := r.U32()
		bits := make([]uint64, mem.PageWords/64)
		for j := range bits {
			bits[j] = r.U64()
		}
		if r.Err() != nil {
			return
		}
		if err := m.Mem.InstallFEPage(page, bits); err != nil {
			r.Corrupt("%v", err)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Fabric: network backend + per-node cache/directory controllers
// ---------------------------------------------------------------------------

const (
	netKindIdeal uint8 = 0
	netKindTorus uint8 = 1
)

func (m *Machine) encodeFabric(w *snapshot.Writer) {
	f := m.net
	w.U64(f.now)
	switch n := f.net.(type) {
	case *network.Ideal:
		w.U8(netKindIdeal)
		encodeNetImage(w, n.DumpImage())
	case *network.Torus:
		w.U8(netKindTorus)
		encodeNetImage(w, n.DumpImage())
	default:
		panic(fmt.Sprintf("sim: snapshot: unknown network backend %T", f.net))
	}
	w.Count(len(f.ctls))
	for _, ctl := range f.ctls {
		encodeCtl(w, ctl)
	}
}

func (m *Machine) decodeFabric(r *snapshot.Reader) {
	f := m.net
	f.now = r.U64()
	kind := r.U8()
	img := decodeNetImage(r)
	if r.Err() != nil {
		return
	}
	switch n := f.net.(type) {
	case *network.Ideal:
		if kind != netKindIdeal {
			r.Corrupt("image network kind %d, machine has ideal network", kind)
			return
		}
		if err := n.RestoreImage(img); err != nil {
			r.Corrupt("%v", err)
			return
		}
	case *network.Torus:
		if kind != netKindTorus {
			r.Corrupt("image network kind %d, machine has torus network", kind)
			return
		}
		if err := n.RestoreImage(img); err != nil {
			r.Corrupt("%v", err)
			return
		}
	}
	nctl := r.Count("controllers")
	if r.Err() != nil {
		return
	}
	if nctl != len(f.ctls) {
		r.Corrupt("image has %d controllers, machine has %d", nctl, len(f.ctls))
		return
	}
	for _, ctl := range f.ctls {
		decodeCtl(r, ctl)
		if r.Err() != nil {
			return
		}
		// The dirty set is host bookkeeping: rebuild it from the
		// simulated state it tracks (pending output or deferred recalls
		// mean the controller needs ticking).
		if len(ctl.outbox) > 0 || len(ctl.recallQ) > 0 {
			f.markDirty(ctl.node)
		}
	}
}

func encodeNetImage(w *snapshot.Writer, img network.Image) {
	w.U64(img.Now)
	w.U64(img.Stats.Messages)
	w.U64(img.Stats.FlitsSent)
	w.U64(img.Stats.TotalLatency)
	w.U64(img.Stats.Delivered)
	w.U64(img.Stats.MaxLatency)
	w.U64(img.Stats.Hops)
	w.U64(img.SendSeq)
	w.U64s(img.LastArr)
	encodeMsgs(w, img.Pending)
	w.U64s(img.TxSeq)
	w.Ints(img.Busy)
	w.Count(len(img.Queues))
	for _, q := range img.Queues {
		encodeMsgs(w, q)
	}
	w.Count(len(img.Inbox))
	for _, box := range img.Inbox {
		encodeMsgs(w, box)
	}
}

func decodeNetImage(r *snapshot.Reader) network.Image {
	var img network.Image
	img.Now = r.U64()
	img.Stats.Messages = r.U64()
	img.Stats.FlitsSent = r.U64()
	img.Stats.TotalLatency = r.U64()
	img.Stats.Delivered = r.U64()
	img.Stats.MaxLatency = r.U64()
	img.Stats.Hops = r.U64()
	img.SendSeq = r.U64()
	img.LastArr = r.U64s("lastArr")
	img.Pending = decodeMsgs(r, "pending")
	img.TxSeq = r.U64s("txSeq")
	img.Busy = r.Ints("channel busy")
	nq := r.Count("channel queues")
	if nq > 0 {
		img.Queues = make([][]network.MessageImage, nq)
		for i := range img.Queues {
			img.Queues[i] = decodeMsgs(r, "channel queue")
		}
	}
	nb := r.Count("inboxes")
	img.Inbox = make([][]network.MessageImage, nb)
	for i := range img.Inbox {
		img.Inbox[i] = decodeMsgs(r, "inbox")
	}
	return img
}

func encodeMsgs(w *snapshot.Writer, ms []network.MessageImage) {
	w.Count(len(ms))
	for i := range ms {
		m := &ms[i]
		w.Int(m.Src)
		w.Int(m.Dst)
		w.Int(m.Size)
		w.U8(uint8(m.Payload.Kind))
		encodeCohMsg(w, m.Payload.Coh)
		w.U64(m.Payload.Word)
		w.U64(m.SentAt)
		w.U64(m.ArriveAt)
		w.Ints(m.Route)
		w.Int(m.Hop)
	}
}

func decodeMsgs(r *snapshot.Reader, what string) []network.MessageImage {
	n := r.Count(what)
	if n == 0 {
		return nil
	}
	ms := make([]network.MessageImage, n)
	for i := range ms {
		m := &ms[i]
		m.Src = r.Int()
		m.Dst = r.Int()
		m.Size = r.Int()
		m.Payload.Kind = network.PayloadKind(r.U8())
		m.Payload.Coh = decodeCohMsg(r)
		m.Payload.Word = r.U64()
		m.SentAt = r.U64()
		m.ArriveAt = r.U64()
		m.Route = r.Ints("route")
		m.Hop = r.Int()
	}
	return ms
}

func encodeCohMsg(w *snapshot.Writer, m directory.Msg) {
	w.U8(uint8(m.Kind))
	w.U32(m.Block)
	w.Int(m.From)
	w.Int(m.Requester)
	w.Bool(m.Write)
}

func decodeCohMsg(r *snapshot.Reader) directory.Msg {
	var m directory.Msg
	m.Kind = directory.MsgKind(r.U8())
	m.Block = r.U32()
	m.From = r.Int()
	m.Requester = r.Int()
	m.Write = r.Bool()
	return m
}

func encodeCtl(w *snapshot.Writer, c *cacheCtl) {
	// Cache arrays: every slot, plus the LRU clock and counters.
	sets, ways := c.cache.Geometry()
	w.Int(sets)
	w.Int(ways)
	w.U64(c.cache.Clock())
	w.U64(c.cache.Hits)
	w.U64(c.cache.Misses)
	w.U64(c.cache.Evictions)
	w.U64(c.cache.Writebacks)
	w.U64(c.cache.Invalidations)
	c.cache.DumpSlots(func(_, _ int, block uint32, st cache.State, dirty bool, lru uint64) {
		w.U32(block)
		w.U8(uint8(st))
		w.Bool(dirty)
		w.U64(lru)
	})

	// Directory entries, ascending block.
	w.U64(c.dir.ReadMisses)
	w.U64(c.dir.WriteMisses)
	w.U64(c.dir.InvalsSent)
	w.U64(c.dir.Fetches)
	w.U64(c.dir.Writebacks)
	w.Count(c.dir.Entries())
	c.dir.DumpEntries(func(block uint32, e *directory.Entry) {
		w.U32(block)
		w.U8(uint8(e.State))
		w.Int(e.Owner)
		w.Ints(e.Sharers.Members())
	})

	// Outstanding misses, sorted by block.
	w.Count(len(c.pending))
	for _, block := range sortedKeys(c.pending) {
		ms := c.pending[block]
		w.U32(block)
		w.Bool(ms.write)
		w.U64(ms.start)
		w.Bool(ms.poisoned)
	}

	// Home transactions, sorted by block.
	w.Count(len(c.homeTx))
	for _, block := range sortedKeys(c.homeTx) {
		tx := c.homeTx[block]
		w.U32(block)
		w.Bool(tx.write)
		w.Int(tx.requester)
		w.Int(tx.acksLeft)
		w.Count(len(tx.queued))
		for _, msg := range tx.queued {
			encodeCohMsg(w, msg)
		}
	}

	// Output queue and deferred recalls, in order.
	w.Count(len(c.outbox))
	for _, om := range c.outbox {
		encodeCohMsg(w, om.msg)
		w.Int(om.dst)
		w.U64(om.readyAt)
	}
	w.Count(len(c.recallQ))
	for _, pr := range c.recallQ {
		encodeCohMsg(w, pr.msg)
		w.U64(pr.deadline)
	}

	w.Int(c.fence)
	w.Count(len(c.locked))
	for _, block := range sortedKeys(c.locked) {
		w.U32(block)
		w.U64(c.locked[block])
	}
	w.U64(c.replySeq)
	w.U64(c.Stats.LocalMisses)
	w.U64(c.Stats.RemoteMisses)
	w.U64(c.Stats.RemoteLatency)
	w.U64(c.Stats.Upgrades)
}

func decodeCtl(r *snapshot.Reader, c *cacheCtl) {
	sets, ways := c.cache.Geometry()
	isets := r.Int()
	iways := r.Int()
	if r.Err() != nil {
		return
	}
	if isets != sets || iways != ways {
		r.Corrupt("image cache geometry %d×%d, machine has %d×%d", isets, iways, sets, ways)
		return
	}
	c.cache.SetClock(r.U64())
	c.cache.Hits = r.U64()
	c.cache.Misses = r.U64()
	c.cache.Evictions = r.U64()
	c.cache.Writebacks = r.U64()
	c.cache.Invalidations = r.U64()
	for set := 0; set < sets; set++ {
		for way := 0; way < ways; way++ {
			block := r.U32()
			st := cache.State(r.U8())
			dirty := r.Bool()
			lru := r.U64()
			if r.Err() != nil {
				return
			}
			if err := c.cache.SetSlot(set, way, block, st, dirty, lru); err != nil {
				r.Corrupt("%v", err)
				return
			}
		}
	}

	c.dir.ReadMisses = r.U64()
	c.dir.WriteMisses = r.U64()
	c.dir.InvalsSent = r.U64()
	c.dir.Fetches = r.U64()
	c.dir.Writebacks = r.U64()
	nodes := len(c.fabric.ctls)
	nent := r.Count("directory entries")
	for i := 0; i < nent; i++ {
		block := r.U32()
		st := directory.State(r.U8())
		owner := r.Int()
		members := r.Ints("sharers")
		if r.Err() != nil {
			return
		}
		if st > directory.Exclusive {
			r.Corrupt("directory entry %#x has invalid state %d", block, st)
			return
		}
		if owner < -1 || owner >= nodes {
			r.Corrupt("directory entry %#x has owner %d of %d nodes", block, owner, nodes)
			return
		}
		e := c.dir.Entry(block)
		e.State = st
		e.Owner = owner
		for _, id := range members {
			if id < 0 || id >= nodes {
				r.Corrupt("directory entry %#x has sharer %d of %d nodes", block, id, nodes)
				return
			}
			e.Sharers.Add(id)
		}
	}

	npend := r.Count("pending misses")
	c.pending = make(map[uint32]missState, npend)
	for i := 0; i < npend; i++ {
		block := r.U32()
		var ms missState
		ms.write = r.Bool()
		ms.start = r.U64()
		ms.poisoned = r.Bool()
		c.pending[block] = ms
	}

	ntx := r.Count("home transactions")
	c.homeTx = make(map[uint32]*homeTx, ntx)
	for i := 0; i < ntx; i++ {
		block := r.U32()
		tx := &homeTx{}
		tx.write = r.Bool()
		tx.requester = r.Int()
		tx.acksLeft = r.Int()
		nq := r.Count("queued requests")
		for j := 0; j < nq; j++ {
			tx.queued = append(tx.queued, decodeCohMsg(r))
		}
		if r.Err() != nil {
			return
		}
		c.homeTx[block] = tx
	}

	nout := r.Count("outbox")
	c.outbox = c.outbox[:0]
	for i := 0; i < nout; i++ {
		var om outMsg
		om.msg = decodeCohMsg(r)
		om.dst = r.Int()
		om.readyAt = r.U64()
		c.outbox = append(c.outbox, om)
	}
	nrec := r.Count("recall queue")
	c.recallQ = c.recallQ[:0]
	for i := 0; i < nrec; i++ {
		var pr pendingRecall
		pr.msg = decodeCohMsg(r)
		pr.deadline = r.U64()
		c.recallQ = append(c.recallQ, pr)
	}

	c.fence = r.Int()
	nlock := r.Count("locked blocks")
	c.locked = make(map[uint32]uint64, nlock)
	for i := 0; i < nlock; i++ {
		block := r.U32()
		c.locked[block] = r.U64()
	}
	c.replySeq = r.U64()
	c.Stats.LocalMisses = r.U64()
	c.Stats.RemoteMisses = r.U64()
	c.Stats.RemoteLatency = r.U64()
	c.Stats.Upgrades = r.U64()
}

// sortedKeys returns a map's uint32 keys ascending (deterministic
// encode order for map-backed controller state).
func sortedKeys[V any](m map[uint32]V) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// ---------------------------------------------------------------------------
// Observability cursors (contents are host-side; see package comment)
// ---------------------------------------------------------------------------

func (m *Machine) encodeCursors(w *snapshot.Writer) {
	w.Bool(m.tracer != nil)
	if m.tracer != nil {
		w.Count(m.tracer.Nodes())
		for i := 0; i < m.tracer.Nodes(); i++ {
			w.U64(m.tracer.Node(i).Cursor())
		}
	}
	w.Bool(m.sampler != nil)
	if m.sampler != nil {
		w.U64(m.sampler.NextBoundary())
		w.Count(len(m.lastSample))
		for i := range m.lastSample {
			encodeProcStats(w, &m.lastSample[i])
		}
	}
}

func (m *Machine) decodeCursors(r *snapshot.Reader) {
	if r.Bool() {
		n := r.Count("trace cursors")
		for i := 0; i < n; i++ {
			cur := r.U64()
			if m.tracer != nil && i < m.tracer.Nodes() {
				m.tracer.Node(i).SetCursor(cur)
			}
		}
	}
	if r.Bool() {
		next := r.U64()
		n := r.Count("sample baselines")
		for i := 0; i < n; i++ {
			var s proc.Stats
			decodeProcStats(r, &s)
			if m.sampler != nil && i < len(m.lastSample) {
				m.lastSample[i] = s
			}
		}
		if m.sampler != nil {
			m.sampler.SetNextBoundary(next)
		}
	}
}
