package sim

import (
	"fmt"

	"april/internal/isa"
	"april/internal/proc"
)

// Memory-mapped I/O addresses reached by LDIO/STIO (Section 3.4:
// interprocessor interrupts, the fence counter, block transfers are
// "initiated via memory-mapped I/O instructions").
const (
	IOFence     = 0x00 // read: outstanding flush writebacks (fixnum)
	IONodeID    = 0x04 // read: this node's id (fixnum)
	IONodeCount = 0x08 // read: machine size (fixnum)
	IOIPITarget = 0x10 // write: select the IPI destination node
	IOIPISend   = 0x14 // write: deliver the written payload to the target

	// Block transfer (a DMA engine per node). Addresses are raw byte
	// addresses (word aligned); writing IOBTGo starts the copy, and
	// IOBTStatus reads 1 while it is in progress. Block transfers
	// bypass the coherence protocol (Section 3.4): software flushes
	// the source/destination ranges first, as with the paper's
	// software-enforced coherence.
	IOBTSrc    = 0x20
	IOBTDst    = 0x24
	IOBTLen    = 0x28 // bytes
	IOBTGo     = 0x2c
	IOBTStatus = 0x30
)

// ioCtl implements proc.IOPort for one node.
type ioCtl struct {
	m         *Machine
	node      int
	ctl       *cacheCtl // nil in perfect-memory mode
	ipiTarget int

	btSrc, btDst, btLen uint32
	btReadyAt           uint64
}

func (io *ioCtl) LoadIO(addr uint32) (isa.Word, int, error) {
	switch addr {
	case IOFence:
		f := 0
		if io.ctl != nil {
			f = io.ctl.Fence()
		}
		return isa.MakeFixnum(int32(f)), 1, nil
	case IONodeID:
		return isa.MakeFixnum(int32(io.node)), 1, nil
	case IONodeCount:
		return isa.MakeFixnum(int32(len(io.m.Nodes))), 1, nil
	case IOBTStatus:
		if io.m.Now() < io.btReadyAt {
			return isa.MakeFixnum(1), 1, nil
		}
		return isa.MakeFixnum(0), 1, nil
	}
	return 0, 0, fmt.Errorf("sim: LDIO from unmapped address %#x", addr)
}

func (io *ioCtl) StoreIO(addr uint32, w isa.Word) (int, error) {
	switch addr {
	case IOIPITarget:
		t := int(isa.FixnumValue(w))
		if t < 0 || t >= len(io.m.Nodes) {
			return 0, fmt.Errorf("sim: IPI target %d out of range", t)
		}
		io.ipiTarget = t
		return 1, nil
	case IOIPISend:
		io.m.Nodes[io.ipiTarget].Proc.PostIPI(w)
		return 1, nil
	case IOBTSrc:
		io.btSrc = uint32(w)
		return 1, nil
	case IOBTDst:
		io.btDst = uint32(w)
		return 1, nil
	case IOBTLen:
		io.btLen = uint32(w)
		return 1, nil
	case IOBTGo:
		return io.blockTransfer()
	}
	return 0, fmt.Errorf("sim: STIO to unmapped address %#x", addr)
}

// blockTransfer performs the DMA copy. The data moves immediately in
// the functional memory (the simulator separates function from timing);
// the modeled duration — two cycles per word plus the network round
// trip — is visible through IOBTStatus. The initiating store itself
// costs only the engine setup.
func (io *ioCtl) blockTransfer() (int, error) {
	if io.btSrc%4 != 0 || io.btDst%4 != 0 || io.btLen%4 != 0 {
		return 0, fmt.Errorf("sim: unaligned block transfer src=%#x dst=%#x len=%d", io.btSrc, io.btDst, io.btLen)
	}
	for off := uint32(0); off < io.btLen; off += 4 {
		w, err := io.m.Mem.LoadWord(io.btSrc + off)
		if err != nil {
			return 0, err
		}
		full, _ := io.m.Mem.FE(io.btSrc + off)
		if err := io.m.Mem.StoreWord(io.btDst+off, w); err != nil {
			return 0, err
		}
		io.m.Mem.MustSetFE(io.btDst+off, full) // full/empty bits travel too
	}
	duration := uint64(io.btLen/4)*2 + 20
	io.btReadyAt = io.m.Now() + duration
	return 2, nil
}

var _ proc.IOPort = (*ioCtl)(nil)
