package sim

import (
	"fmt"

	"april/internal/network"
	"april/internal/proc"
	"april/internal/trace"
)

// EnableTracing attaches a ring-buffer event tracer to every layer of
// the machine — processors, engines, runtimes, scheduler, cache
// controllers, and network — and returns it. capacity is the per-node
// ring size in events (0 = trace.DefaultCapacity). Tracing is purely
// observational: simulated results are bit-identical with it on or off
// (the differential tests in trace_test.go hold it to that). Call
// before Run.
func (m *Machine) EnableTracing(capacity int) *trace.Tracer {
	t := trace.New(len(m.Nodes), capacity, &m.now)
	m.tracer = t
	for i, n := range m.Nodes {
		node := i
		n.Proc.Trace = t
		n.RT.Trace = t
		n.Proc.Engine.OnSwitch = func(from, to int) { t.EmitSwitch(node, from, to) }
	}
	m.Sched.Trace = t
	if m.net != nil {
		m.net.trace = t
		m.net.net.SetTracer(t)
	}
	return t
}

// Tracer returns the attached tracer, or nil when tracing is off.
func (m *Machine) Tracer() *trace.Tracer { return m.tracer }

// EnableTimeline attaches a periodic per-node activity sampler with the
// given window size in cycles (0 = trace.DefaultSampleInterval) and
// returns it. Run closes a window at every interval boundary plus one
// final partial window, so the series sums to the end-of-run Stats
// exactly. Like tracing, sampling never perturbs simulated results: it
// only shortens fast-forward jumps to land on window boundaries, and
// skips compose. Call before Run.
func (m *Machine) EnableTimeline(interval uint64) *trace.Sampler {
	m.sampler = trace.NewSampler(interval)
	m.lastSample = make([]proc.Stats, len(m.Nodes))
	return m.sampler
}

// Sampler returns the attached sampler, or nil when the timeline is
// off.
func (m *Machine) Sampler() *trace.Sampler { return m.sampler }

// sample closes the current window: one row per node with the cycle
// category deltas since the previous sample plus instantaneous gauges.
func (m *Machine) sample() {
	for i, n := range m.Nodes {
		cur := n.Proc.Stats
		last := &m.lastSample[i]
		row := trace.Sample{
			Cycle:    m.now,
			Node:     i,
			Useful:   cur.UsefulCycles - last.UsefulCycles,
			Wait:     cur.WaitCycles - last.WaitCycles,
			Trap:     cur.TrapCycles - last.TrapCycles,
			Idle:     cur.IdleCycles - last.IdleCycles,
			Resident: n.Proc.Engine.LoadedThreads(),
		}
		row.Utilization = trace.SafeRate(row.Useful, row.Total())
		if n.cache != nil {
			row.OutstandingRemote = len(n.cache.pending)
		}
		if m.net != nil {
			row.NetInFlight = m.net.net.InFlight()
		}
		m.sampler.Append(row)
		*last = cur
	}
}

// CounterRegistry builds a registry exposing every subsystem's counters
// behind one Snapshot: the scheduler, each node's processor and engine,
// and (in ALEWIFE mode) each node's cache, directory, and controller,
// plus the network and machine-level totals. Closures read live state,
// so snapshot after Run for final values.
func (m *Machine) CounterRegistry() *trace.Registry {
	r := &trace.Registry{}
	sched := m.Sched
	r.Register("scheduler", func() map[string]uint64 {
		s := sched.Stats
		return map[string]uint64{
			"tasks_created":      s.TasksCreated,
			"steals":             s.Steals,
			"steal_words":        s.StealWords,
			"thread_steals":      s.ThreadSteals,
			"blocks":             s.Blocks,
			"requeues":           s.Requeues,
			"wakes":              s.Wakes,
			"touches_resolved":   s.TouchesResolved,
			"touches_unresolved": s.TouchesUnresolved,
		}
	})
	// The opcode mix that drives the compiled tier's profile-guided
	// translation, maintained identically by all three execution tiers.
	r.Register("isa", m.KindTotals)
	if m.compileOn {
		// Compiled-tier coverage: dispatches executed inside fused
		// windows and translation outcomes. Registered only when the
		// tier is armed so oracle-path snapshots stay byte-stable.
		r.Register("compile", func() map[string]uint64 {
			var fused, inline, total uint64
			for _, n := range m.Nodes {
				fused += n.Proc.FusedOps
				inline += n.Proc.InlineSteps
				for _, k := range n.Proc.Kinds {
					total += k
				}
			}
			var epoch uint64
			for _, n := range m.Nodes {
				epoch += n.Proc.EpochOps
			}
			bs := m.Nodes[0].Proc.Blocks()
			return map[string]uint64{
				"fused_ops":         fused,
				"inline_steps":      inline,
				"epoch_ops":         epoch,
				"dispatches":        total,
				"translated_blocks": bs.Blocks,
				"unfusable_entries": bs.NoBlocks,
				"threshold":         uint64(bs.Threshold),
			}
		})
	}
	if m.epochOn {
		// Epoch engine coverage (epoch.go): lockstep windows committed,
		// cycles and ops they absorbed, mid-epoch fallbacks, and the
		// committed-window-length histogram in power-of-two buckets
		// (len_p2_b counts windows of 2^(b-1)..2^b-1 complete cycles;
		// b=0 is windows that only committed a partial cycle).
		r.Register("epoch", func() map[string]uint64 {
			t := m.epochTel
			out := map[string]uint64{
				"windows":     t.Windows,
				"cycles":      t.Cycles,
				"ops":         t.Ops,
				"partial_ops": t.PartialOps,
				"fallbacks":   t.Fallbacks,
			}
			for b, c := range t.LenHist {
				out[fmt.Sprintf("len_p2_%d", b)] = c
			}
			return out
		})
	}
	for i, n := range m.Nodes {
		p, eng, ctl := n.Proc, n.Proc.Engine, n.cache
		r.Register(fmt.Sprintf("node%d.proc", i), func() map[string]uint64 {
			s := p.Stats
			return map[string]uint64{
				"instructions":  s.Instructions,
				"useful_cycles": s.UsefulCycles,
				"wait_cycles":   s.WaitCycles,
				"trap_cycles":   s.TrapCycles,
				"idle_cycles":   s.IdleCycles,
				"loads":         s.LoadCount,
				"stores":        s.StoreCount,
				"switches":      eng.Switches,
			}
		})
		if ctl != nil {
			r.Register(fmt.Sprintf("node%d.memory", i), func() map[string]uint64 {
				c, d := ctl.cache, ctl.dir
				return map[string]uint64{
					"cache_hits":          c.Hits,
					"cache_misses":        c.Misses,
					"cache_evictions":     c.Evictions,
					"local_misses":        ctl.Stats.LocalMisses,
					"remote_misses":       ctl.Stats.RemoteMisses,
					"remote_latency_sum":  ctl.Stats.RemoteLatency,
					"upgrades":            ctl.Stats.Upgrades,
					"dir_read_misses":     d.ReadMisses,
					"dir_write_misses":    d.WriteMisses,
					"dir_invals_sent":     d.InvalsSent,
					"dir_fetches":         d.Fetches,
					"dir_writebacks":      d.Writebacks,
					"outstanding_remote":  uint64(len(ctl.pending)),
					"pending_home_tx":     uint64(len(ctl.homeTx)),
					"deferred_recalls":    uint64(len(ctl.recallQ)),
					"outstanding_flushes": uint64(ctl.fence),
				}
			})
		}
	}
	if m.net != nil {
		net := m.net.net
		r.Register("network", func() map[string]uint64 {
			s := net.Stats()
			return map[string]uint64{
				"messages":      s.Messages,
				"flits_sent":    s.FlitsSent,
				"delivered":     s.Delivered,
				"total_latency": s.TotalLatency,
				"max_latency":   s.MaxLatency,
				"hops":          s.Hops,
				"in_flight":     uint64(net.InFlight()),
				// Messages that crossed a shard boundary (0 unsharded).
				"cross_shard_messages": m.CrossShardMessages(),
			}
		})
	}
	if m.part.Shards() > 1 {
		// Host-side PDES telemetry (telemetry.go): how the sharded loop
		// behaved — classifier mix, fallback reasons, barrier wait — and
		// each shard's share of the parallel phases. Registered only on
		// sharded machines so unsharded snapshots stay byte-stable.
		r.Register("pdes", func() map[string]uint64 {
			p := m.pdes
			return map[string]uint64{
				"parallel_cycles":       p.ParallelCycles,
				"sequential_cycles":     p.SequentialCycles,
				"fallback_stop":         p.FallbackStop,
				"fallback_small":        p.FallbackSmall,
				"fallback_epoch":        p.FallbackEpoch,
				"barriers":              p.Barriers,
				"barriers_per_1k":       safePer1k(p.Barriers, m.now),
				"local_steps":           p.LocalSteps,
				"global_steps":          p.GlobalSteps,
				"stop_steps":            p.StopSteps,
				"barrier_wait_ns":       p.BarrierWaitNS,
				"loop_wall_ns":          p.LoopWallNS,
				"fabric_parallel_ticks": p.FabricParallelTicks,
				"fabric_inline_ticks":   p.FabricInlineTicks,
			}
		})
		for s := 0; s < m.part.Shards(); s++ {
			s := s
			lo, hi := m.part.Block(s)
			nodes := uint64(hi - lo)
			var lookahead uint64 = 1
			if m.net != nil {
				lookahead = network.PartitionLookahead(m.net.net, m.part, s)
			}
			r.Register(fmt.Sprintf("shard%d.pdes", s), func() map[string]uint64 {
				t := m.shardTel[s]
				return map[string]uint64{
					"nodes": nodes,
					// Static per-slab lookahead: cycles before this
					// shard's sends become visible outside it
					// (network.PartitionLookahead).
					"lookahead":      lookahead,
					"local_steps":    t.LocalSteps,
					"busy_ns":        t.BusyNS,
					"fabric_handled": t.FabricHandled,
					"fabric_flushes": t.FabricFlushes,
				}
			})
		}
	}
	r.Register("machine", func() map[string]uint64 {
		s := m.TotalStats()
		out := map[string]uint64{
			"cycles":        m.now,
			"instructions":  s.Instructions,
			"useful_cycles": s.UsefulCycles,
			"wait_cycles":   s.WaitCycles,
			"trap_cycles":   s.TrapCycles,
			"idle_cycles":   s.IdleCycles,
			"threads":       uint64(m.Sched.NumThreads()),
		}
		if t := m.tracer; t != nil {
			out["trace_events"] = t.TotalEvents()
			out["trace_dropped"] = t.DroppedEvents()
		}
		return out
	})
	return r
}

// safePer1k scales a counter to events per 1000 simulated cycles,
// guarding the cycle-0 snapshot.
func safePer1k(count, cycles uint64) uint64 {
	if cycles == 0 {
		return 0
	}
	return count * 1000 / cycles
}
