// Package sim wires the full machine together — processors (package
// proc) over the multithreading engine (core), the run-time system
// (rts), and optionally the ALEWIFE memory system (cache + directory +
// network) — and drives all nodes in lockstep, one cycle at a time, as
// the paper's simulator does (Figure 4).
//
// Two memory configurations mirror the paper's methodology:
//
//   - Perfect memory (Alewife == nil): no cache or network, every
//     access completes immediately. "Measurements for multiple
//     processor executions on APRIL used the processor simulator
//     without the cache and network simulators, in effect simulating a
//     shared-memory machine with no memory latency" (Section 7). Table
//     3 is reproduced in this mode.
//
//   - ALEWIFE mode: per-node caches kept coherent by a full-map
//     directory over a k-ary n-cube network; remote misses force
//     context switches. Used for the Section 8 model validation.
package sim

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"april/internal/abi"
	"april/internal/core"
	"april/internal/fault"
	"april/internal/heap"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/network"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/trace"
)

// Config describes a machine.
type Config struct {
	Nodes       int
	Profile     rts.Profile
	Lazy        bool   // lazy task creation
	MemoryBytes uint32 // simulated physical memory (default 256 MB)
	MaxCycles   uint64 // simulation budget (default 4e9)
	Out         io.Writer

	// Alewife enables the full memory system; nil = perfect memory.
	Alewife *AlewifeConfig

	// Shards splits the machine's nodes into that many contiguous blocks
	// and runs them on parallel worker goroutines (conservative PDES with
	// per-cycle horizon barriers; see shard.go and DESIGN.md "Parallel
	// simulation"). Simulated results — cycle counts, Stats, answers —
	// are bit-identical for every shard count; the differential tests in
	// shard_test.go hold the sharded loop to that. <= 1 keeps the
	// sequential loop; values above Nodes are clamped. Forced to 1 when
	// DisableFastForward (the oracle loop is the point of that flag) or
	// Check (the invariant checkers read cross-node state on every
	// transition, which would race across shards) is set.
	Shards int

	// ShardBatch is the minimum number of same-cycle work items (node
	// steps, fabric deliveries + dirty controllers) before a sharded
	// cycle's phase is dispatched to the workers; smaller cycles run
	// inline on the coordinating goroutine, where the handoff would cost
	// more than it buys. 0 means 8 per shard. Tests set 1 to force every
	// eligible cycle through the parallel phases.
	ShardBatch int

	// DisableFastForward forces the reference stepping loop: one
	// iteration per simulated cycle, visiting every node to decrement
	// its relative busy counter. The default loop instead keeps
	// absolute wake cycles in a priority queue, visits only the nodes
	// due at the current cycle, and fast-forwards across provably
	// uneventful stretches. Simulated results are bit-identical either
	// way (the differential tests assert this); the reference loop
	// exists as the oracle implementation and for those tests.
	DisableFastForward bool

	// DisablePredecode forces the reference opcode-switch interpreter
	// instead of the predecoded flat-table dispatch. As with
	// DisableFastForward, simulated results are bit-identical either
	// way; the switch interpreter is the differential oracle.
	DisablePredecode bool

	// DisableCompile turns off the third execution tier: profile-guided
	// fusion of hot basic blocks into superinstructions, executed in
	// bulk across isolated windows (see compile.go and proc.StepFused).
	// As with the other two knobs, simulated results are bit-identical
	// either way; disabling leaves the predecoded per-op path as the
	// differential oracle for the compiled tier. The tier is implied
	// off by DisablePredecode (it runs over the predecoded image),
	// DisableFastForward (it lives in the work-proportional loops), and
	// Check (the invariant checkers audit at per-cycle watermarks the
	// fused windows would cross).
	DisableCompile bool

	// CompileThreshold is how many times a block entry PC must execute
	// before it is translated (0 = isa.DefaultCompileThreshold).
	CompileThreshold int

	// DisableEpoch turns off the epoch engine (see epoch.go): multi-node
	// lockstep execution through the compiled tier across provably safe
	// horizons. As with the other tier knobs, simulated results are
	// bit-identical either way; disabling leaves the per-cycle stepping
	// of the same ops as the differential oracle for epoch windows. The
	// engine is implied off by anything that disarms the compiled tier
	// (DisablePredecode, DisableCompile, DisableFastForward, Check).
	DisableEpoch bool

	// Horizon caps the epoch engine's window length in cycles: 0 means
	// auto (windows bounded only by the provable safe horizon — the
	// next wake, network event, sampler boundary, or watchdog
	// watermark), and k >= 1 additionally caps every window at k
	// cycles. 1 therefore degenerates to per-cycle stepping (a 1-cycle
	// window cannot beat the per-cycle path and is never opened), which
	// is the -horizon sweep's baseline point.
	Horizon uint64

	// Faults, when non-nil, arms the seeded perturbation plan: bounded
	// per-hop delay jitter, transient link stalls, and delayed directory
	// replies (see internal/fault). Timing shifts, results must not:
	// under any seed the simulated program computes the same answer,
	// only cycle counts may differ.
	Faults *fault.Config

	// Check enables the runtime invariant checkers (see check.go):
	// coherence state agreement on every protocol transition, full/empty
	// consistency at trap boundaries, scheduler thread conservation, and
	// message-pool ownership. Violations abort the run with a structured
	// crash report rather than panicking.
	Check bool

	// DeadlockWindow overrides how many cycles the machine may go
	// without retiring a single instruction before the watchdog declares
	// a deadlock (0 = the 3M-cycle default). Tests inducing wedges use a
	// short window to fail fast.
	DeadlockWindow uint64

	// SabotageCycle, when non-zero, deliberately corrupts scheduler
	// state at the given cycle (the lowest-ID live thread is marked dead
	// without being recycled, breaking thread conservation). It exists
	// so divergence-bisection tests have a run that is provably clean
	// before the cycle and provably violating after it; see
	// rts.(*Scheduler).CorruptThreadState and snapshot.go. Part of the
	// machine-defining configuration: it changes simulated state, so it
	// is embedded in snapshot images and included in the config hash.
	SabotageCycle uint64
}

// ErrDeadlock is returned when the machine stops making progress.
var ErrDeadlock = errors.New("sim: deadlock (no instruction retired for a long time)")

// Node is one ALEWIFE node: processor + runtime (+ cache controller in
// ALEWIFE mode).
type Node struct {
	Proc *proc.Processor
	RT   *rts.NodeRT
	busy int

	cache *cacheCtl // nil in perfect-memory mode

	// lastRetired is the cycle of this node's most recent instruction
	// retirement — per-node progress for the deadlock report (the
	// machine-wide watchdog only knows the newest retirement anywhere).
	lastRetired uint64
}

// Machine is a configured multiprocessor.
type Machine struct {
	Cfg    Config
	Mem    *mem.Memory
	Layout mem.Layout
	Sched  *rts.Scheduler
	Nodes  []*Node

	staticHeap *heap.Heap
	net        *netFabric // nil in perfect-memory mode
	now        uint64
	loaded     bool

	// compileOn reports that Load armed the fused-block tier on every
	// node; the run loops then try fusedStep (compile.go) whenever a
	// cycle has exactly one stepper. epochOn additionally arms the
	// multi-node epoch engine (epoch.go) for cycles with two or more
	// steppers; epochTel is its telemetry (see telemetry.go).
	compileOn bool
	epochOn   bool
	epochTel  EpochStats

	// The work-proportional run loop's node scheduler (see wake.go):
	// nodes executing 1-cycle instructions live on the sorted running
	// list and step every cycle; nodes inside a multi-cycle operation
	// sleep in the wake queue keyed by absolute wake cycle. Unused by
	// the reference loop, which keeps the per-node relative busy
	// counters instead.
	running  []int // ascending node ids
	wakeq    wakeQueue
	dueBuf   []int // popDue scratch, reused across cycles
	mergeBuf []int // running+due merge scratch, reused across cycles

	// Observability (nil unless enabled; see observe.go).
	tracer     *trace.Tracer
	sampler    *trace.Sampler
	lastSample []proc.Stats // per-node stats at the previous sample

	// Robustness (see check.go, autopsy.go, internal/fault).
	plan           *fault.Plan    // nil unless Cfg.Faults armed a plan
	checker        *fault.Checker // nil unless Cfg.Check
	deadlockWin    uint64         // cycles without retirement before ErrDeadlock
	nextSchedCheck uint64         // next scheduler-conservation watermark
	nextWedgeCheck uint64         // next stuck-remote-op (livelock) scan

	// Sharded execution (see shard.go): the node partition (one block
	// per worker; a single block when unsharded), each node's shard, and
	// the lazily started worker pool.
	part    network.Partition
	shardOf []int32
	shr     *shardRunner

	// Host-side PDES telemetry (see telemetry.go). shardTel has one
	// entry per shard; both stay zero on unsharded machines.
	pdes     PDESStats
	shardTel []ShardTelemetry

	// lastProgress is the cycle of the most recent instruction
	// retirement anywhere in the machine — the deadlock watchdog's
	// baseline. A Machine field (not a run-loop local) so detection
	// spans RunWindow boundaries: a windowed driver advancing 64K
	// cycles at a time still trips the watchdog after deadlockWin
	// cycles of no retirement, exactly as one long Run would.
	lastProgress uint64

	// Scheduled state events (see runEventful): whether the fault
	// plan's node wedge and the sabotage corruption have fired. Restore
	// rederives both from the image's cycle — an event has fired iff
	// now >= its cycle, which runEventful guarantees at every window
	// boundary.
	wedgeArmed bool
	sabotaged  bool

	// Checkpoint provenance for crash reports (see autopsy.go and
	// SetCheckpointInfo): the cycle of the most recent image written by
	// the checkpointing driver and the command line that resumes from
	// it.
	ckptValid bool
	ckptCycle uint64
	ckptCmd   string
}

// New builds a machine. Compile programs against StaticHeap(), then
// Load and Run.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 256 << 20
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4_000_000_000
	}
	if cfg.Profile.Frames <= 0 {
		return nil, fmt.Errorf("sim: profile %q has no task frames", cfg.Profile.Name)
	}
	m := &Machine{Cfg: cfg}
	m.Mem = mem.New(cfg.MemoryBytes)
	m.Layout = mem.DefaultLayout(cfg.MemoryBytes)
	if err := m.Layout.Validate(); err != nil {
		return nil, err
	}
	m.staticHeap = heap.New(m.Mem, mem.NewArena(m.Layout.StaticBase, m.Layout.StaticEnd))

	stackArena := mem.NewArena(m.Layout.StackBase, m.Layout.StackEnd)
	heapArena := mem.NewArena(m.Layout.HeapStart, m.Layout.End)
	prof := cfg.Profile
	m.Sched = rts.NewScheduler(m.Mem, &prof, cfg.Lazy, cfg.Nodes, stackArena, heapArena, cfg.Out)
	// The reference cost profile keeps every O(machine size) scan the
	// pre-overhaul loop paid, including the idle steal probe.
	m.Sched.ScanSteal = cfg.DisableFastForward

	// The fault plan and checker must exist before initAlewife wires the
	// fabric: the network backends and cache controllers capture them at
	// construction.
	if cfg.Faults != nil {
		m.plan = fault.NewPlan(*cfg.Faults)
	}
	if cfg.Check {
		m.checker = fault.NewChecker(&m.now)
	}
	m.deadlockWin = cfg.DeadlockWindow
	if m.deadlockWin == 0 {
		m.deadlockWin = deadlockWindow
	}
	m.nextSchedCheck = schedCheckInterval
	m.nextWedgeCheck = wedgeInterval

	// The shard layout exists for every machine (a single block when
	// unsharded) so Partition() and the fabric's dirty buckets need no
	// special cases. It is fixed before initAlewife, which wires it into
	// the fabric. The oracle loop and the invariant checkers force one
	// shard: the former is the sequential reference by definition, the
	// latter read cross-node state on every protocol transition.
	shards := cfg.Shards
	if cfg.DisableFastForward || cfg.Check {
		shards = 1
	}
	m.part = network.ComputePartition(cfg.Nodes, shards)
	m.shardOf = make([]int32, cfg.Nodes)
	for s := 0; s < m.part.Shards(); s++ {
		lo, hi := m.part.Block(s)
		for i := lo; i < hi; i++ {
			m.shardOf[i] = int32(s)
		}
	}
	m.shardTel = make([]ShardTelemetry, m.part.Shards())

	if cfg.Alewife != nil {
		if err := m.initAlewife(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		engine := core.NewEngine(prof.Frames, prof.SwitchCycles)
		nrt, err := rts.NewNodeRT(m.Sched, i)
		if err != nil {
			return nil, err
		}
		nrt.Check = m.checker
		var port proc.MemPort = &proc.PerfectPort{Mem: m.Mem}
		if cfg.Alewife != nil {
			port = m.newCachePort(i)
		}
		p := proc.New(i, engine, nil, port)
		p.Handler = nrt
		node := &Node{Proc: p, RT: nrt}
		if cp, ok := port.(*cacheCtl); ok {
			node.cache = cp
		}
		p.IO = &ioCtl{m: m, node: i, ctl: node.cache}
		m.Nodes = append(m.Nodes, node)

		// Initialize the per-processor global registers: allocation
		// chunk and node id.
		base, limit, err := m.Sched.HeapChunk(0)
		if err != nil {
			return nil, err
		}
		engine.Globals[isa.GAllocPtr-isa.NumFrameRegs] = isa.Word(base)
		engine.Globals[isa.GAllocLimit-isa.NumFrameRegs] = isa.Word(limit)
		engine.Globals[isa.GSelf-isa.NumFrameRegs] = isa.MakeFixnum(int32(i))
	}
	m.wakeq.init(cfg.Nodes)
	m.running = make([]int, cfg.Nodes)
	for i := range m.running {
		m.running[i] = i
	}
	m.dueBuf = make([]int, 0, cfg.Nodes)
	m.mergeBuf = make([]int, 0, cfg.Nodes)
	return m, nil
}

// StaticHeap is where the compiler places quoted data and globals.
func (m *Machine) StaticHeap() *heap.Heap { return m.staticHeap }

// Load installs the program and creates the main thread on node 0.
func (m *Machine) Load(prog *isa.Program) error {
	taskExit, ok1 := prog.Symbols[abi.SymTaskExit]
	mainExit, ok2 := prog.Symbols[abi.SymMainExit]
	if !ok1 || !ok2 {
		return fmt.Errorf("sim: program lacks runtime stubs (%s/%s)", abi.SymTaskExit, abi.SymMainExit)
	}
	m.Sched.TaskExitPC = taskExit
	m.Sched.MainExitPC = mainExit
	for _, n := range m.Nodes {
		n.Proc.Prog = prog
	}
	if !m.Cfg.DisablePredecode {
		// One predecoded image, shared read-only by every node.
		micro := prog.Predecode()
		for _, n := range m.Nodes {
			n.Proc.SetMicro(micro)
		}
		if !m.Cfg.DisableCompile && !m.Cfg.DisableFastForward && !m.Cfg.Check {
			// Arm the compiled tier: one block-translation set over the
			// shared image (profiled and translated only on the
			// coordinating goroutine), sized here so steady state
			// allocates nothing. Memory ops fuse only on perfect memory
			// — in ALEWIFE mode a miss inside a fused window would
			// stamp network messages mid-window.
			bs := isa.NewBlockSet(micro, m.Cfg.CompileThreshold, m.Cfg.Alewife == nil)
			for _, n := range m.Nodes {
				n.Proc.SetCompile(bs, &m.Sched.MainDone)
			}
			m.compileOn = true
			if m.Cfg.Alewife != nil {
				// ALEWIFE blocks exclude memory ops, but the clock-free
				// cache-hit port lets both the per-op superinstruction
				// path and epoch windows cross plain cached accesses.
				for _, n := range m.Nodes {
					n.Proc.SetEpochPort(n.cache)
				}
			}
			// The epoch engine rides on the compiled tier: multi-node
			// lockstep windows execute exclusively epoch-safe fused ops.
			m.epochOn = !m.Cfg.DisableEpoch
		}
	}
	main := m.Sched.NewThread(0)
	main.PC = prog.Entry
	main.NPC = prog.Entry + 1
	main.Regs[isa.RLink] = isa.MakeFixnum(int32(mainExit))
	if m.Cfg.Profile.HardwareFutures {
		main.PSR = core.PSRFutureTrap
	}
	m.Sched.PushReady(main)
	m.loaded = true
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Cycles    uint64
	Value     isa.Word
	Formatted string
}

// deadlockWindow is how many cycles the machine may go without retiring
// a single instruction before Run declares a deadlock
// (Config.DeadlockWindow overrides it).
const deadlockWindow = 3_000_000

// The livelock watchdog distinguishes "nothing retires" (deadlock) from
// "instructions retire but a remote operation never completes". Every
// wedgeInterval cycles it scans outstanding misses; one older than
// wedgeWindow — far beyond any protocol bound, which is tens of cycles
// per hop — means the memory system wedged while processors spin.
const (
	wedgeInterval = 65_536
	wedgeWindow   = 1_000_000
)

// Run drives the machine until the main thread exits. Calling Run
// after the program already completed (e.g. under RunWindow) returns
// the final Result immediately.
func (m *Machine) Run() (Result, error) {
	if !m.loaded {
		return Result{}, errors.New("sim: no program loaded")
	}
	hit, err := m.runEventful(m.Cfg.MaxCycles)
	if err != nil {
		return Result{}, err
	}
	if hit {
		return Result{}, m.crash(fault.ReasonBudget,
			fmt.Errorf("sim: exceeded cycle budget %d", m.Cfg.MaxCycles))
	}
	if m.checker != nil {
		// End-of-run sweep: audit every block the machine still holds
		// plus final thread conservation.
		m.auditFinal()
		if m.checker.Total() > 0 {
			return Result{}, m.crash(fault.ReasonInvariant, m.checker.Err())
		}
	}
	return m.finish(), nil
}

// RunWindow advances the machine by at most n cycles, stopping early
// when the main thread exits, and reports whether the program
// completed. It is the measurement entry point: allocation-regression
// tests drive a steady-state window at a time inside
// testing.AllocsPerRun, and the introspection server (internal/obs)
// interleaves windows with snapshot requests. Deadlock detection spans
// windows — the last-retirement baseline lives on the Machine — so a
// windowed driver trips the watchdog exactly as one long Run would.
// After RunWindow reports done, call Run to obtain the final Result
// (it returns immediately).
func (m *Machine) RunWindow(n uint64) (bool, error) {
	if !m.loaded {
		return false, errors.New("sim: no program loaded")
	}
	if m.Sched.MainDone {
		return true, nil
	}
	limit := m.now + n
	if limit > m.Cfg.MaxCycles {
		limit = m.Cfg.MaxCycles
	}
	hit, err := m.runEventful(limit)
	if err != nil {
		return false, err
	}
	if hit && m.now >= m.Cfg.MaxCycles {
		return false, m.crash(fault.ReasonBudget,
			fmt.Errorf("sim: exceeded cycle budget %d", m.Cfg.MaxCycles))
	}
	return m.Sched.MainDone, nil
}

// runGuarded invokes the selected run loop behind a recover barrier
// that converts runtime memory faults — *mem.Fault panics from the
// Must* accessors — into a structured crash report. Any other panic
// propagates unchanged: those are simulator bugs and should keep their
// stack traces.
func (m *Machine) runGuarded(limit uint64) (hit bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		f, ok := r.(*mem.Fault)
		if !ok {
			panic(r)
		}
		hit = false
		err = m.crash(fault.ReasonMemFault, f)
	}()
	if m.Cfg.DisableFastForward {
		return m.runReferenceUntil(limit)
	}
	if m.part.Shards() > 1 {
		return m.runShardedUntil(limit)
	}
	return m.runFastUntil(limit)
}

// nextStateEvent returns the cycle of the earliest pending scheduled
// state event — fault-plan wedge arming, sabotage corruption — or
// ^uint64(0) when none is pending.
func (m *Machine) nextStateEvent() uint64 {
	next := ^uint64(0)
	if m.plan != nil && !m.wedgeArmed && m.plan.WedgePending() {
		if c := m.plan.Config().WedgeAtCycle; c < next {
			next = c
		}
	}
	if m.Cfg.SabotageCycle > 0 && !m.sabotaged && m.Cfg.SabotageCycle < next {
		next = m.Cfg.SabotageCycle
	}
	return next
}

// fireStateEvents applies every scheduled state event due at or before
// m.now. Only ever called between runGuarded slices — never mid-cycle —
// so the mutations land at an exact cycle boundary in every execution
// tier (all run loops stop exactly at their limit), and a snapshot
// taken at any window boundary satisfies: event fired iff
// now >= event cycle.
func (m *Machine) fireStateEvents() {
	if m.plan != nil && !m.wedgeArmed && m.plan.WedgePending() && m.now >= m.plan.Config().WedgeAtCycle {
		m.armWedge()
	}
	if m.Cfg.SabotageCycle > 0 && !m.sabotaged && m.now >= m.Cfg.SabotageCycle {
		m.sabotaged = true
		m.Sched.CorruptThreadState()
	}
}

// armWedge fires the fault plan's scheduled node wedge: every torus
// output channel owned by the wedge node becomes permanently stalled.
// The ideal network has no channels to stall, so there the wedge arms
// as a no-op (matching StallLinks, which it generalizes).
func (m *Machine) armWedge() {
	m.wedgeArmed = true
	var chans []int
	if m.net != nil {
		if t, ok := m.net.net.(*network.Torus); ok {
			chans = t.NodeChannels(m.plan.Config().WedgeNode)
		}
	}
	m.plan.ArmWedge(chans)
}

// runEventful drives runGuarded in slices bounded by the next scheduled
// state event, firing each event exactly at its cycle. With no events
// pending (the overwhelmingly common case) the first slice covers the
// whole limit and this is a single runGuarded call.
func (m *Machine) runEventful(limit uint64) (hit bool, err error) {
	for {
		sub := limit
		if ev := m.nextStateEvent(); ev < sub {
			sub = ev
		}
		hit, err = m.runGuarded(sub)
		if err != nil || !hit {
			return hit, err
		}
		// The slice ran its full span: m.now >= sub. Fire anything due
		// here, then either hand back at the caller's limit or continue.
		m.fireStateEvents()
		if sub >= limit {
			return true, nil
		}
	}
}

// Partition exposes the machine's shard layout: contiguous node blocks,
// one per worker goroutine (a single block covering every node when the
// machine is unsharded).
func (m *Machine) Partition() network.Partition { return m.part }

// deadlockErr builds the deadlock error: the machine-wide counts the
// one-line error always carried, extended with per-node ready/blocked
// occupancy and each node's last retirement cycle so the wedge can be
// localized from the message alone.
func (m *Machine) deadlockErr() error {
	var b strings.Builder
	fmt.Fprintf(&b, "%d threads live, %d ready, %d blocked",
		m.Sched.LiveThreads(), m.Sched.ReadyCount(), m.Sched.BlockedCount())
	blocked := make([]int, len(m.Nodes))
	m.Sched.BlockedByNode(blocked)
	for i, n := range m.Nodes {
		fmt.Fprintf(&b, "; node %d: %d ready, %d blocked, last retired @%d",
			i, m.Sched.ReadyOn(i), blocked[i], n.lastRetired)
	}
	return fmt.Errorf("%w: %s", ErrDeadlock, b.String())
}

// checkWedge is the livelock watchdog: it scans each node's outstanding
// remote operations for one stuck beyond wedgeWindow. Selection is
// deterministic (first node ascending; within a node, the oldest miss,
// ties broken by smallest block) so both run loops report identically.
func (m *Machine) checkWedge() error {
	for _, n := range m.Nodes {
		if n.cache == nil {
			continue
		}
		var worstBlock uint32
		var worstAge uint64
		found := false
		for block, ms := range n.cache.pending {
			age := m.net.now - ms.start
			if age < wedgeWindow {
				continue
			}
			if !found || age > worstAge || (age == worstAge && block < worstBlock) {
				found, worstBlock, worstAge = true, block, age
			}
		}
		if found {
			return m.crash(fault.ReasonLivelock, fmt.Errorf(
				"sim: livelock: node %d remote operation on block %#x outstanding for %d cycles",
				n.Proc.ID, worstBlock, worstAge))
		}
	}
	return nil
}

// watchdogs runs the per-cycle end-of-cycle checks shared by both run
// loops: invariant-violation poll, scheduler-conservation watermark,
// livelock scan, and the no-retirement deadlock window. A nil return
// means keep running.
func (m *Machine) watchdogs() error {
	if m.checker != nil {
		if m.checker.Total() > 0 {
			return m.crash(fault.ReasonInvariant, m.checker.Err())
		}
		if m.now >= m.nextSchedCheck {
			m.checkSched()
			m.nextSchedCheck = m.now + schedCheckInterval
			if m.checker.Total() > 0 {
				return m.crash(fault.ReasonInvariant, m.checker.Err())
			}
		}
	}
	if m.net != nil && m.now >= m.nextWedgeCheck {
		if err := m.checkWedge(); err != nil {
			return err
		}
		m.nextWedgeCheck = m.now + wedgeInterval
	}
	// A fused window can leave lastProgress ahead of m.now (the window's
	// last retirement lies in cycles the loop has not yet swept past);
	// progress in the future is progress, so only fire once m.now has
	// moved deadlockWin cycles beyond it.
	if m.now > m.lastProgress && m.now-m.lastProgress > m.deadlockWin {
		return m.crash(fault.ReasonDeadlock, m.deadlockErr())
	}
	return nil
}

// runReferenceUntil is the oracle loop: one iteration per simulated
// cycle, visiting every node to decrement its relative busy counter or
// Step it. The work-proportional loop (runFastUntil) must stay
// bit-identical to this one — the differential tests in
// fastforward_test.go hold the two to that. It returns hitLimit=true
// when m.now reaches limit before the main thread exits.
func (m *Machine) runReferenceUntil(limit uint64) (hitLimit bool, err error) {
	// Deadlock detection is incremental: m.lastProgress tracks the last
	// cycle any node retired an instruction (updated per Step from the
	// per-node retirement counters, so no periodic all-node stats scan
	// — and no scan points the fast-forward jumps could miss).
	for !m.Sched.MainDone {
		// Close the sampling window before executing its boundary cycle,
		// so rows land at identical cycles with or without fast-forward.
		if m.sampler != nil && m.now >= m.sampler.NextBoundary() {
			m.sample()
			m.sampler.Advance(m.now)
		}
		if m.now >= limit {
			return true, nil
		}
		for _, n := range m.Nodes {
			if n.busy > 0 {
				n.busy--
				continue
			}
			retired := n.Proc.Stats.Instructions
			c, err := n.Proc.Step()
			if err != nil {
				return false, fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
			}
			if c > 1 {
				n.busy = c - 1
			}
			if n.Proc.Stats.Instructions != retired {
				m.lastProgress = m.now
				n.lastRetired = m.now
			}
			if m.Sched.MainDone {
				break
			}
		}
		if m.net != nil {
			m.net.tick()
		}
		m.now++

		if err := m.watchdogs(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// runFastUntil is the work-proportional loop: nodes executing 1-cycle
// instructions step every cycle off the sorted running list, nodes
// inside a multi-cycle operation sleep in a min-queue keyed by
// absolute wake cycle, and whole stretches where nothing can happen
// are crossed in one fastForwardUntil jump. Each iteration visits only
// the nodes that actually step. Step order within a cycle is ascending
// node id, exactly as in runReferenceUntil (the running list and the
// due set are disjoint ascending sequences; their merge preserves
// order). It returns hitLimit=true when m.now reaches limit before the
// main thread exits.
func (m *Machine) runFastUntil(limit uint64) (hitLimit bool, err error) {
	for !m.Sched.MainDone {
		if m.sampler != nil && m.now >= m.sampler.NextBoundary() {
			m.sample()
			m.sampler.Advance(m.now)
		}
		if m.now >= limit {
			return true, nil
		}
		jumpLimit := limit
		// Never jump past a sampling boundary: capping a skip shorter
		// cannot change simulated state (skips compose), it only makes
		// the sampler observe it.
		if m.sampler != nil && m.sampler.NextBoundary() < jumpLimit {
			jumpLimit = m.sampler.NextBoundary()
		}
		m.fastForwardUntil(jumpLimit)
		// A capped jump can land exactly on the boundary; the reference
		// loop samples before executing that cycle, so match it here
		// rather than waiting for the next iteration's top-of-loop check.
		if m.sampler != nil && m.now >= m.sampler.NextBoundary() {
			m.sample()
			m.sampler.Advance(m.now)
		}
		// Likewise a jump can land exactly on the limit; the reference
		// loop stops before executing that cycle, so match it.
		if m.now >= limit {
			return true, nil
		}
		due := m.dueBuf[:0]
		if m.wakeq.next() <= m.now {
			due = m.wakeq.popDue(m.now, due)
		}
		m.dueBuf = due
		steps := m.running
		switch {
		case len(due) == 0:
		case len(m.running) == 0:
			steps = due
		default:
			m.mergeBuf = mergeSorted(m.mergeBuf[:0], m.running, due)
			steps = m.mergeBuf
		}
		// Rebuild the running list as we go: 1-cycle nodes stay on it,
		// multi-cycle ones move to the wake queue. In-place compaction is
		// safe when steps aliases m.running (writes never pass reads).
		keep := m.running[:0]
		if m.compileOn && len(steps) == 1 {
			// Exactly one stepper: try to run its compiled tier across
			// the whole isolated window (see compile.go).
			used, err := m.fusedStep(steps[0], limit, &keep)
			if err != nil {
				return false, err
			}
			if used {
				steps = nil
			}
		} else if m.epochOn && len(steps) > 1 {
			// Two or more steppers: try a lockstep epoch window across
			// the group's safe horizon (see epoch.go).
			si, epochFull := m.epochWindow(steps, limit)
			if epochFull {
				// Whole window committed: every stepper ran 1-cycle ops,
				// so the running list's content is unchanged and the
				// fabric already replayed its no-op ticks.
				m.running = append(keep, steps...)
				if err := m.watchdogs(); err != nil {
					return false, err
				}
				continue
			}
			// Mid-epoch fallback (or no window): steps[:si] already
			// stepped in the current cycle; finish it per-op below.
			keep = append(keep, steps[:si]...)
			steps = steps[si:]
		}
		for _, id := range steps {
			n := m.Nodes[id]
			retired := n.Proc.Stats.Instructions
			c, err := n.Proc.Step()
			if err != nil {
				return false, fmt.Errorf("cycle %d node %d: %w", m.now, n.Proc.ID, err)
			}
			if c > 1 {
				// busy = c-1 in the reference loop means the node next
				// Steps c cycles from now.
				m.wakeq.push(id, m.now+uint64(c))
			} else {
				keep = append(keep, id)
			}
			if n.Proc.Stats.Instructions != retired {
				m.lastProgress = m.now
				n.lastRetired = m.now
			}
			if m.Sched.MainDone {
				break
			}
		}
		m.running = keep
		if m.net != nil {
			m.net.tick()
		}
		m.now++

		if err := m.watchdogs(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// finish closes the final sampling window and packages the result.
func (m *Machine) finish() Result {
	if m.sampler != nil {
		// Final partial window: the series now sums to the end-of-run
		// Stats exactly.
		m.sample()
	}
	v := m.Sched.MainResult
	return Result{
		Cycles:    m.now,
		Value:     v,
		Formatted: m.Nodes[0].RT.Heap.Format(v),
	}
}

// fastForwardUntil advances simulated time across cycles that are
// provably uneventful, never past limit. Until the earliest scheduled
// wake, no node Steps; and when the memory fabric's next event lies
// beyond that, the per-cycle ticks in between are no-ops too. The
// reference loop spends one iteration per such cycle (decrement each
// busy counter, tick the idle network); this jumps m.now to the next
// cycle where anything can happen in one step. Simulated state after
// the jump is bit-identical to stepping cycle by cycle — the
// differential tests in fastforward_test.go hold the two loops to
// that.
func (m *Machine) fastForwardUntil(limit uint64) {
	if len(m.running) > 0 {
		return // a running node Steps on the current cycle
	}
	next := m.wakeq.next()
	if next <= m.now {
		return // a sleeping node wakes on the current cycle
	}
	skip := next - m.now
	if m.net != nil {
		// Ticks run with the fabric clock at m.now+1 .. m.now+skip; all
		// of them must end strictly before the fabric's next event.
		ne := m.net.nextEvent()
		if ne <= m.now+1 {
			return
		}
		if d := ne - m.now - 1; d < skip {
			skip = d
		}
	}
	// Land exactly on limit at most: the callers stop (cycle window) or
	// error out (cycle budget) there without executing that cycle.
	if rem := limit - m.now; skip > rem {
		skip = rem
	}
	if skip == 0 {
		return
	}
	if m.net != nil {
		m.net.advance(skip)
	}
	m.now += skip
}

// Now returns the current simulated cycle.
func (m *Machine) Now() uint64 { return m.now }

// KindTotals sums the per-MicroKind dispatch counters across nodes:
// the machine's opcode mix, keyed by handler-kind name. All three
// execution tiers maintain the counters identically, so the mix is
// comparable across interpreter/predecode/compiled runs; the compiled
// tier's profile-guided translation is driven by exactly this
// distribution (per block-entry PC).
func (m *Machine) KindTotals() map[string]uint64 {
	out := make(map[string]uint64, isa.NumMicroKinds)
	for k := 0; k < isa.NumMicroKinds; k++ {
		var s uint64
		for _, n := range m.Nodes {
			s += n.Proc.Kinds[k]
		}
		out[isa.MicroKind(k).String()] = s
	}
	return out
}

// TotalStats sums the processor statistics across nodes.
func (m *Machine) TotalStats() proc.Stats {
	var s proc.Stats
	for _, n := range m.Nodes {
		ns := n.Proc.Stats
		s.Instructions += ns.Instructions
		s.UsefulCycles += ns.UsefulCycles
		s.WaitCycles += ns.WaitCycles
		s.TrapCycles += ns.TrapCycles
		s.IdleCycles += ns.IdleCycles
		s.LoadCount += ns.LoadCount
		s.StoreCount += ns.StoreCount
		for i := range ns.Traps {
			s.Traps[i] += ns.Traps[i]
		}
	}
	return s
}
