package sim_test

import (
	"testing"

	"april/internal/isa"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

// Runtime policy behavior observed end to end through scheduler
// statistics.

func runStats(t *testing.T, src string, cfg sim.Config, mode mult.Mode) (*sim.Machine, sim.Result) {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mult.Compile(src, mode, m.StaticHeap())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestTouchBlocksAndWakes(t *testing.T) {
	// Single processor, eager futures: the parent must eventually BLOCK
	// on its children (switch-spinning alone cannot make progress when
	// the resolver is unloaded), and resolution must WAKE it.
	src := `
(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 8)`
	m, res := runStats(t, src, sim.Config{Nodes: 1, Profile: rts.APRIL}, mult.Mode{HardwareFutures: true})
	if res.Formatted != "21" {
		t.Fatalf("fib 8 = %s", res.Formatted)
	}
	s := m.Sched.Stats
	if s.Blocks == 0 {
		t.Error("no threads ever blocked on futures")
	}
	if s.Wakes < s.Blocks {
		t.Errorf("wakes (%d) < blocks (%d): some blocked thread never woke", s.Wakes, s.Blocks)
	}
	if s.TouchesUnresolved == 0 || s.TouchesResolved == 0 {
		t.Errorf("touch stats: resolved=%d unresolved=%d", s.TouchesResolved, s.TouchesUnresolved)
	}
}

func TestSwitchSpinningPrecedesBlocking(t *testing.T) {
	// With 4 frames, the runtime switch-spins before unloading: the
	// engine's switch count must exceed the number of blocks by a
	// healthy margin.
	src := `
(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 10)`
	m, _ := runStats(t, src, sim.Config{Nodes: 2, Profile: rts.APRIL}, mult.Mode{HardwareFutures: true})
	var switches uint64
	for _, n := range m.Nodes {
		switches += n.Proc.Engine.Switches
	}
	if switches <= m.Sched.Stats.Blocks {
		t.Errorf("switches (%d) should exceed blocks (%d): switch-spinning is the first response",
			switches, m.Sched.Stats.Blocks)
	}
}

func TestSyncFaultRequeue(t *testing.T) {
	// A consumer spinning on an empty I-structure slot on a single
	// frame must be requeued so the producer can run.
	src := `
(define v (make-ivector 1))
(define p (future (vector-set-sync! v 0 99)))
(vector-ref-sync v 0)`
	prof := rts.APRIL
	prof.Frames = 1
	m, res := runStats(t, src, sim.Config{Nodes: 1, Profile: prof}, mult.Mode{HardwareFutures: true})
	if res.Formatted != "99" {
		t.Fatalf("got %s", res.Formatted)
	}
	if m.Sched.Stats.Requeues == 0 {
		t.Error("single-frame sync fault never requeued the thread")
	}
}

func TestLazyStealsAccountStackCopies(t *testing.T) {
	src := `
(define (fib n) (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib 13)`
	m, _ := runStats(t, src, sim.Config{Nodes: 4, Profile: rts.APRIL, Lazy: true},
		mult.Mode{HardwareFutures: true, LazyFutures: true})
	s := m.Sched.Stats
	if s.Steals == 0 {
		t.Fatal("no steals on a 4-node lazy run")
	}
	if s.StealWords == 0 {
		t.Error("steals recorded no copied stack words")
	}
	if s.TasksCreated != 0 {
		t.Error("lazy mode created eager tasks")
	}
}

func TestIPIHookDelivery(t *testing.T) {
	m, err := sim.New(sim.Config{Nodes: 2, Profile: rts.APRIL})
	if err != nil {
		t.Fatal(err)
	}
	var got []isa.Word
	m.Nodes[1].RT.IPIHook = func(w isa.Word) { got = append(got, w) }

	// An assembly main on node 0 that IPIs node 1 and returns.
	prog, err := isa.Assemble(`
.entry main
main:   movi r8, 4           ; fixnum 1: target node
        stio [r0+16], r8     ; IOIPITarget
        movi r9, 84          ; fixnum 21: payload
        stio [r0+20], r9     ; IOIPISend
        movi r8, 0
        jmpl r0, r5+0
__task_exit: trap 2
        halt
__main_exit: trap 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	// Give node 1 something to run so its processor steps and takes
	// the asynchronous trap.
	m.SpawnRaw(1, 0, nil)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || isa.FixnumValue(got[0]) != 21 {
		t.Errorf("IPI hook received %v", got)
	}
}

func TestFlushAndFenceWithCaches(t *testing.T) {
	// FLUSH on a dirty line raises the fence counter until the home
	// acknowledges (Section 3.4's software-enforced coherence).
	m, err := sim.New(sim.Config{Nodes: 2, Profile: rts.APRIL, Alewife: &sim.AlewifeConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	// Pick an address homed on node 1 so the writeback crosses the
	// network (block interleave: block 1 -> node 1).
	addr := uint32(0x300010)
	prog, err := isa.Assemble(`
.entry main
main:   movi r9, 0x300010
        movi r10, 28          ; fixnum 7
        stnt [r9+0], r10      ; dirty the line (write miss first)
        flush [r9+0]          ; write back + invalidate
        ldio r8, [r0+0]       ; read the fence counter
        jmpl r0, r5+0
__task_exit: trap 2
        halt
__main_exit: trap 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The fence read races the FlushAck; it must read 0 or 1, and the
	// flushed value must be durably in memory.
	if res.Formatted != "0" && res.Formatted != "1" {
		t.Errorf("fence read %s", res.Formatted)
	}
	if got := isa.FixnumValue(m.Mem.MustLoad(addr)); got != 7 {
		t.Errorf("flushed value = %d", got)
	}
}
