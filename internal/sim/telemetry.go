// Host-side PDES telemetry: counters describing how the sharded run
// loop (shard.go) behaved on the host — classifier verdict mix,
// sequential-fallback frequency and reasons, barrier-wait and per-shard
// busy wall time, and fabric tick dispatch. Every field is written by
// the run loop's own goroutines into slots they already own (workers
// touch only their shard's ShardTelemetry entry, the coordinator owns
// PDESStats), and none of it ever feeds back into simulated state:
// wall-clock durations come from the host's monotonic clock and the
// counters are pure observations of decisions the loop had already
// made, so simulated results are bit-identical with telemetry read or
// ignored. Observability surfaces (CounterRegistry, internal/obs) read
// these only while the machine is quiescent.
package sim

// PDESStats aggregates the sharded run loop's behavior over a run.
// All-zero on unsharded machines.
type PDESStats struct {
	// Cycle dispatch: every executed cycle in the sharded loop goes
	// down either the phased parallel path or the sequential fallback.
	ParallelCycles   uint64 // cycles run through the parallel phases
	SequentialCycles uint64 // cycles run through the sequential fallback
	FallbackStop     uint64 // fallbacks forced by a STOP classification
	FallbackSmall    uint64 // fallbacks because the cycle had fewer LOCAL steps than ShardBatch
	FallbackEpoch    uint64 // sequential cycles entered from a mid-epoch stop (epoch.go)

	// Barriers counts worker-pool joins (phase-1 steps and parallel
	// fabric ticks both join once). Epoch batches are the mechanism
	// that lowers barriers-per-1k-cycles below the per-cycle floor:
	// cycles committed inside a window never reach the phased path.
	Barriers uint64

	// Classifier verdicts, counted per examined step (cycles that fall
	// back still count the verdicts seen up to and including the STOP
	// that triggered the fallback).
	LocalSteps  uint64
	GlobalSteps uint64
	StopSteps   uint64

	// Host wall time (monotonic, nanoseconds). BarrierWaitNS is the
	// coordinator's time parked at phase joins after finishing its own
	// inline shard — pure synchronization overhead. LoopWallNS spans
	// the whole sharded loop including sequential fallbacks.
	BarrierWaitNS uint64
	LoopWallNS    uint64

	// Fabric tick dispatch: parallel cycles whose delivery+flush work
	// met ShardBatch fan out to the workers; smaller ones run inline.
	FabricParallelTicks uint64
	FabricInlineTicks   uint64
}

// ShardTelemetry is one shard's share of the parallel phases. Workers
// write only their own entry, so the slice is race-free by the same
// ownership argument as shardState.
type ShardTelemetry struct {
	LocalSteps    uint64 // phase-1 node steps executed by this shard
	BusyNS        uint64 // host wall time inside this shard's phase bodies
	FabricHandled uint64 // staged network deliveries handled
	FabricFlushes uint64 // dirty controllers matured (recalls + outbox)
}

// EpochStats aggregates the epoch engine's behavior (epoch.go) over a
// run: how often multi-node lockstep windows opened, how many cycles
// and node-steps they absorbed, and how they ended. All-zero when the
// engine is disarmed (DisableEpoch or anything disarming the compiled
// tier). Like PDESStats, pure host-side observation: simulated results
// are bit-identical with the engine on or off.
type EpochStats struct {
	Windows uint64 // windows that executed at least one op
	Cycles  uint64 // complete simulated cycles committed inside windows
	Ops     uint64 // node-steps executed inside windows
	// PartialOps counts the steps of partially completed cycles (the
	// prefix executed before a mid-epoch stop); Fallbacks counts the
	// windows an epoch-unsafe op stopped (the rest ended at their
	// horizon bound).
	PartialOps uint64
	Fallbacks  uint64
	// LenHist is the committed-window-length histogram in power-of-two
	// buckets: LenHist[b] counts windows whose complete-cycle count has
	// bit length b — bucket 0 is fc=0 (only a partial cycle committed),
	// bucket 1 is fc=1, bucket 2 is 2-3, bucket 3 is 4-7, and so on;
	// the last bucket absorbs everything longer.
	LenHist [17]uint64
}

// PDES returns the run loop's aggregate PDES telemetry. Zero-valued
// for unsharded machines. Read while the machine is quiescent (between
// RunWindow calls or after Run).
func (m *Machine) PDES() PDESStats { return m.pdes }

// ShardTelemetry returns a copy of the per-shard telemetry, one entry
// per shard of Partition(). Read while the machine is quiescent.
func (m *Machine) ShardTelemetry() []ShardTelemetry {
	out := make([]ShardTelemetry, len(m.shardTel))
	copy(out, m.shardTel)
	return out
}
