// Host-side PDES telemetry: counters describing how the sharded run
// loop (shard.go) behaved on the host — classifier verdict mix,
// sequential-fallback frequency and reasons, barrier-wait and per-shard
// busy wall time, and fabric tick dispatch. Every field is written by
// the run loop's own goroutines into slots they already own (workers
// touch only their shard's ShardTelemetry entry, the coordinator owns
// PDESStats), and none of it ever feeds back into simulated state:
// wall-clock durations come from the host's monotonic clock and the
// counters are pure observations of decisions the loop had already
// made, so simulated results are bit-identical with telemetry read or
// ignored. Observability surfaces (CounterRegistry, internal/obs) read
// these only while the machine is quiescent.
package sim

// PDESStats aggregates the sharded run loop's behavior over a run.
// All-zero on unsharded machines.
type PDESStats struct {
	// Cycle dispatch: every executed cycle in the sharded loop goes
	// down either the phased parallel path or the sequential fallback.
	ParallelCycles   uint64 // cycles run through the parallel phases
	SequentialCycles uint64 // cycles run through the sequential fallback
	FallbackStop     uint64 // fallbacks forced by a STOP classification
	FallbackSmall    uint64 // fallbacks because the cycle had fewer LOCAL steps than ShardBatch

	// Classifier verdicts, counted per examined step (cycles that fall
	// back still count the verdicts seen up to and including the STOP
	// that triggered the fallback).
	LocalSteps  uint64
	GlobalSteps uint64
	StopSteps   uint64

	// Host wall time (monotonic, nanoseconds). BarrierWaitNS is the
	// coordinator's time parked at phase joins after finishing its own
	// inline shard — pure synchronization overhead. LoopWallNS spans
	// the whole sharded loop including sequential fallbacks.
	BarrierWaitNS uint64
	LoopWallNS    uint64

	// Fabric tick dispatch: parallel cycles whose delivery+flush work
	// met ShardBatch fan out to the workers; smaller ones run inline.
	FabricParallelTicks uint64
	FabricInlineTicks   uint64
}

// ShardTelemetry is one shard's share of the parallel phases. Workers
// write only their own entry, so the slice is race-free by the same
// ownership argument as shardState.
type ShardTelemetry struct {
	LocalSteps    uint64 // phase-1 node steps executed by this shard
	BusyNS        uint64 // host wall time inside this shard's phase bodies
	FabricHandled uint64 // staged network deliveries handled
	FabricFlushes uint64 // dirty controllers matured (recalls + outbox)
}

// PDES returns the run loop's aggregate PDES telemetry. Zero-valued
// for unsharded machines. Read while the machine is quiescent (between
// RunWindow calls or after Run).
func (m *Machine) PDES() PDESStats { return m.pdes }

// ShardTelemetry returns a copy of the per-shard telemetry, one entry
// per shard of Partition(). Read while the machine is quiescent.
func (m *Machine) ShardTelemetry() []ShardTelemetry {
	out := make([]ShardTelemetry, len(m.shardTel))
	copy(out, m.shardTel)
	return out
}
