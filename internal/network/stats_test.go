package network

import (
	"testing"

	"april/internal/trace"
)

// countKind tallies one node's traced events of kind k.
func countKind(tr *trace.Tracer, node int, k trace.Kind) int {
	n := 0
	for _, ev := range tr.Node(node).Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestTorusStatsKnownRoute(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 3})
	if err != nil {
		t.Fatal(err)
	}
	var clock uint64
	tr := trace.New(tor.Nodes(), 64, &clock)
	tor.SetTracer(tr)

	// 0=(0,0) -> 8=(2,2): one wraparound hop per dimension = 2 hops.
	src, dst, size := 0, 8, 4
	hops := tor.Geometry().Hops(src, dst)
	if hops != 2 {
		t.Fatalf("route hops %d, want 2", hops)
	}
	tor.Send(&Message{Src: src, Dst: dst, Size: size})

	s := tor.Stats()
	if s.Messages != 1 || s.FlitsSent != uint64(size) {
		t.Errorf("after inject: messages %d flits %d, want 1/%d", s.Messages, s.FlitsSent, size)
	}
	for i := 0; i < 100 && tor.Stats().Delivered == 0; i++ {
		clock++
		tor.Tick()
	}
	s = tor.Stats()
	if s.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", s.Delivered)
	}
	// Store-and-forward: unloaded end-to-end latency = hops * size.
	if want := uint64(hops * size); s.TotalLatency != want || s.MaxLatency != want {
		t.Errorf("latency total %d max %d, want %d", s.TotalLatency, s.MaxLatency, want)
	}
	// Every completed channel transit counts, including the final one.
	if s.Hops != uint64(hops) {
		t.Errorf("hops %d, want %d", s.Hops, hops)
	}
	if got := len(tor.Deliveries(dst, nil)); got != 1 {
		t.Fatalf("deliveries at %d: %d, want 1", dst, got)
	}
	if tor.InFlight() != 0 {
		t.Errorf("in flight %d after drain, want 0", tor.InFlight())
	}

	// Traced events: inject at the source, deliver at the destination,
	// and hops-1 intermediate hop events (the final transit delivers).
	if got := countKind(tr, src, trace.KNetInject); got != 1 {
		t.Errorf("inject events at src: %d, want 1", got)
	}
	if got := countKind(tr, dst, trace.KNetDeliver); got != 1 {
		t.Errorf("deliver events at dst: %d, want 1", got)
	}
	hopEvents := 0
	for n := 0; n < tor.Nodes(); n++ {
		hopEvents += countKind(tr, n, trace.KNetHop)
	}
	if hopEvents != hops-1 {
		t.Errorf("hop events %d, want %d", hopEvents, hops-1)
	}
	// The deliver event carries the end-to-end latency.
	for _, ev := range tr.Node(dst).Events() {
		if ev.Kind == trace.KNetDeliver {
			if ev.A != int32(src) || ev.C != int32(hops*size) {
				t.Errorf("deliver event src=%d latency=%d, want %d/%d", ev.A, ev.C, src, hops*size)
			}
		}
	}
}

func TestTorusLoopbackLatencyClamped(t *testing.T) {
	tor, _ := NewTorus(Geometry{Dim: 2, Radix: 3})
	tor.Send(&Message{Src: 4, Dst: 4, Size: 4})
	s := tor.Stats()
	if s.Delivered != 1 {
		t.Fatalf("loopback not delivered")
	}
	if s.TotalLatency != 1 {
		t.Errorf("loopback latency %d, want 1 (clamped)", s.TotalLatency)
	}
	if s.Hops != 0 {
		t.Errorf("loopback hops %d, want 0", s.Hops)
	}
}

func TestIdealStatsAndInFlight(t *testing.T) {
	n := NewIdeal(4, 5)
	var clock uint64
	tr := trace.New(4, 16, &clock)
	n.SetTracer(tr)
	n.Send(&Message{Src: 1, Dst: 3, Size: 2})
	if n.InFlight() != 1 {
		t.Errorf("in flight %d, want 1", n.InFlight())
	}
	for i := 0; i < 5; i++ {
		n.Tick()
	}
	if n.InFlight() != 1 {
		t.Errorf("in flight %d with undrained inbox, want 1", n.InFlight())
	}
	if got := len(n.Deliveries(3, nil)); got != 1 {
		t.Fatalf("deliveries %d, want 1", got)
	}
	if n.InFlight() != 0 {
		t.Errorf("in flight %d after drain, want 0", n.InFlight())
	}
	if countKind(tr, 1, trace.KNetInject) != 1 || countKind(tr, 3, trace.KNetDeliver) != 1 {
		t.Error("ideal network missing inject/deliver events")
	}
	s := n.Stats()
	if s.Delivered != 1 || s.TotalLatency != 5 {
		t.Errorf("stats %+v, want delivered 1 latency 5", s)
	}
}
