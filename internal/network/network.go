// Package network implements ALEWIFE's interconnect: a low-dimension
// direct network (k-ary n-cube) with packet-switched, dimension-order
// routing (Section 2.1). Two backends share one interface:
//
//   - Torus: a cycle-driven packet-level model with per-channel FIFO
//     queues (store-and-forward, one flit per cycle per channel), used
//     for machine simulation and the latency-versus-load experiments.
//   - Ideal: constant-latency delivery, for configurations where only
//     the end-to-end delay matters.
package network

import (
	"fmt"

	"april/internal/fault"
	"april/internal/trace"
)

// Message is one network packet. Messages are pooled: obtain one with
// Alloc, fill Src/Dst/Size/Payload, and pass it to Send; the network
// owns it until Deliveries lends it to the consumer, who returns it
// with Recycle. Stack- or literal-constructed Messages also work (the
// pool adopts them at Recycle).
type Message struct {
	Src, Dst int
	Size     int // flits
	Payload  Payload

	sentAt   uint64
	arriveAt uint64 // ideal backend: delivery cycle (sentAt+latency+jitter)
	route    []int  // channel hops (channel ids); next hop is route[hop]
	hop      int
	recycled bool // on the freelist; guards double-recycle / stale Send
}

// Network moves messages between nodes, one Tick per machine cycle.
type Network interface {
	// Alloc returns a message from the network's freelist (or a fresh
	// one). Fields other than route capacity are unspecified; the
	// caller must set Src, Dst, Size, and Payload before Send.
	Alloc() *Message
	// Send injects a message (takes effect during subsequent Ticks).
	Send(m *Message)
	// Recycle returns delivered messages to the freelist. Callers must
	// not touch a message after recycling it; see msgPool for the
	// ownership rules.
	Recycle(ms []*Message)
	// Tick advances one cycle and returns the messages delivered this
	// cycle, grouped by destination via Deliveries.
	Tick()
	// Deliveries appends the messages that have arrived at node to buf
	// (caller-owned, reused across calls) and returns the result. The
	// messages remain pool-owned loans: copy what you need and Recycle
	// the batch.
	Deliveries(node int, buf []*Message) []*Message
	// PendingNodes appends the ids of nodes with undrained deliveries
	// to buf, in ascending node order, and returns the result. It lets
	// a caller drain exactly the inboxes that have work instead of
	// polling every node each cycle.
	PendingNodes(buf []int) []int
	// Nodes reports the node count.
	Nodes() int
	// Stats reports aggregate behavior.
	Stats() Stats
	// InFlight counts undelivered packets (including undrained
	// inboxes) — the occupancy gauge of the timeline sampler.
	InFlight() int
	// SetTracer attaches an event tracer (nil detaches). The network
	// emits inject/hop/deliver events; tracing never changes timing.
	SetTracer(t *trace.Tracer)
	// SetFaultPlan attaches a timing-perturbation plan (nil detaches;
	// the default). Call before any traffic is injected. With a plan
	// attached, transmissions and flights take extra, plan-drawn
	// cycles; without one, behavior is bit-identical to a plan-free
	// build.
	SetFaultPlan(p *fault.Plan)
	// LiveMessages counts pool-tracked messages currently checked out
	// (allocated and not yet recycled). At a tick boundary with all
	// inboxes drained it must equal InFlight; the fault checker
	// asserts this to catch leaked or double-owned messages.
	LiveMessages() int

	// NextEvent returns the earliest internal cycle (in the network's
	// own Tick count) at which a Tick could deliver a message or change
	// observable state, or NoEvent when the network is quiescent. Ticks
	// strictly before that cycle are guaranteed no-ops, which lets the
	// machine fast-forward across them with Advance.
	NextEvent() uint64
	// Advance replays k guaranteed-no-op Ticks in one step. The caller
	// must ensure now+k < NextEvent(); Advance panics on a violation it
	// can detect cheaply.
	Advance(k uint64)
}

// NoEvent is NextEvent's "quiescent" sentinel.
const NoEvent = ^uint64(0)

// Stats aggregates network behavior.
type Stats struct {
	Messages     uint64
	FlitsSent    uint64
	TotalLatency uint64 // sum over delivered messages, cycles
	Delivered    uint64
	MaxLatency   uint64
	Hops         uint64 // completed channel transits (packet-level backends only)
}

// AvgLatency is the mean end-to-end latency of delivered messages.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// Geometry describes a k-ary n-cube.
type Geometry struct {
	Dim   int // n
	Radix int // k
}

// Nodes is k^n.
func (g Geometry) Nodes() int {
	n := 1
	for i := 0; i < g.Dim; i++ {
		n *= g.Radix
	}
	return n
}

// Coords converts a node id to its n-dimensional coordinates.
func (g Geometry) Coords(node int) []int {
	c := make([]int, g.Dim)
	g.CoordsInto(c, node)
	return c
}

// CoordsInto fills c (length at least Dim) with node's coordinates,
// the allocation-free form of Coords.
func (g Geometry) CoordsInto(c []int, node int) {
	for i := 0; i < g.Dim; i++ {
		c[i] = node % g.Radix
		node /= g.Radix
	}
}

// Node converts coordinates back to a node id.
func (g Geometry) Node(c []int) int {
	id := 0
	for i := g.Dim - 1; i >= 0; i-- {
		id = id*g.Radix + c[i]
	}
	return id
}

// Hops is the dimension-order (torus, shortest-direction) hop count.
func (g Geometry) Hops(src, dst int) int {
	cs, cd := g.Coords(src), g.Coords(dst)
	h := 0
	for i := 0; i < g.Dim; i++ {
		d := cd[i] - cs[i]
		if d < 0 {
			d += g.Radix
		}
		if d > g.Radix-d {
			d = g.Radix - d
		}
		h += d
	}
	return h
}

// FitGeometry picks a roughly cubic (n up to 3) geometry with at least
// nodes nodes, for machine configurations that specify only a node
// count.
func FitGeometry(nodes int) Geometry {
	if nodes <= 1 {
		return Geometry{Dim: 1, Radix: 1}
	}
	// Prefer 3 dimensions like ALEWIFE; shrink for tiny machines.
	for _, dim := range []int{3, 2, 1} {
		k := 1
		for pow(k, dim) < nodes {
			k++
		}
		if pow(k, dim) == nodes {
			return Geometry{Dim: dim, Radix: k}
		}
	}
	// No exact fit: use a 1-D ring.
	return Geometry{Dim: 1, Radix: nodes}
}

func pow(k, n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= k
	}
	return out
}

// Ideal is the constant-latency backend. Because every message takes
// exactly `latency` cycles, the pending queue is FIFO by send time:
// the messages maturing on any Tick are a prefix, so delivery pops
// from a head index (no per-Tick scan) and NextEvent is the head's
// arrival time, O(1). head-slot compaction is amortized O(1) — the
// backing array shrinks whenever the dead prefix passes half.
type Ideal struct {
	nodes   int
	latency uint64
	now     uint64
	inbox   [][]*Message // per node
	pending []*Message   // ascending sentAt; live entries are pending[head:]
	head    int
	stats   Stats
	trace   *trace.Tracer

	pendNodes []int // nodes with undrained inboxes, ascending
	inPend    []bool
	pool      msgPool

	// refScan selects the pre-overhaul cost profile: Tick compacts the
	// whole pending slice and NextEvent/InFlight scan every inbox and
	// message, instead of the head-index queue. Same simulated
	// behavior; the differential oracle and throughput baseline.
	refScan bool

	// Fault injection. A plan adds per-message flight jitter, which
	// breaks the FIFO-prefix property the head-index queue depends on;
	// jittered mode therefore delivers via a dense arriveAt scan (head
	// stays 0) that still maintains the pendNodes bookkeeping. Jitter
	// must not reorder messages between the same (src, dst) pair — the
	// coherence protocol relies on point-to-point ordering (e.g. a
	// writeback notification must not be overtaken by the same node's
	// re-request), and the torus preserves it structurally via FIFO
	// channels on deterministic routes — so arrival times are clamped
	// monotone per pair through lastArr.
	plan     *fault.Plan
	jittered bool
	sendSeq  uint64
	lastArr  []uint64 // per (src*nodes+dst) latest arrival time
}

// SetFaultPlan implements Network.
func (n *Ideal) SetFaultPlan(p *fault.Plan) {
	n.plan = p
	n.jittered = p != nil
	if p != nil && n.lastArr == nil {
		n.lastArr = make([]uint64, n.nodes*n.nodes)
	}
}

// LiveMessages implements Network.
func (n *Ideal) LiveMessages() int { return n.pool.liveCount() }

// SetReferenceScan switches between the head-index queue and the dense
// scanning implementation. Call before any traffic is injected.
func (n *Ideal) SetReferenceScan(on bool) { n.refScan = on }

// NewIdeal creates an ideal network with the given one-way latency.
func NewIdeal(nodes int, latency int) *Ideal {
	if latency < 1 {
		latency = 1
	}
	return &Ideal{
		nodes:   nodes,
		latency: uint64(latency),
		inbox:   make([][]*Message, nodes),
		inPend:  make([]bool, nodes),
	}
}

// Alloc implements Network.
func (n *Ideal) Alloc() *Message { return n.pool.alloc() }

// Recycle implements Network.
func (n *Ideal) Recycle(ms []*Message) { n.pool.recycle(ms) }

// Send implements Network.
func (n *Ideal) Send(m *Message) {
	if m.recycled {
		panic("network: Send of a recycled message")
	}
	m.sentAt = n.now
	m.arriveAt = n.now + n.latency
	if n.plan != nil {
		m.arriveAt += uint64(n.plan.MsgJitter(n.sendSeq))
		n.sendSeq++
		pair := m.Src*n.nodes + m.Dst
		if m.arriveAt < n.lastArr[pair] {
			m.arriveAt = n.lastArr[pair]
		}
		n.lastArr[pair] = m.arriveAt
	}
	n.pending = append(n.pending, m)
	n.stats.Messages++
	n.stats.FlitsSent += uint64(m.Size)
	n.trace.Emit(m.Src, trace.KNetInject, int32(m.Dst), int32(m.Size), 0, 0)
}

// Tick implements Network: deliver the matured prefix (or, in jittered
// mode, the matured subset — jitter makes arrival order diverge from
// send order, so maturity is no longer a prefix property).
func (n *Ideal) Tick() {
	n.now++
	if n.refScan {
		// Dense scan: test and compact every pending message (head
		// stays 0 in this mode).
		rest := n.pending[:0]
		for _, m := range n.pending {
			if n.now >= m.arriveAt {
				n.inbox[m.Dst] = append(n.inbox[m.Dst], m)
				n.account(m)
			} else {
				rest = append(rest, m)
			}
		}
		for i := len(rest); i < len(n.pending); i++ {
			n.pending[i] = nil
		}
		n.pending = rest
		return
	}
	if n.jittered {
		// Dense scan in send order (matching the refScan branch, so
		// both run loops deliver same-tick messages identically), with
		// the fast mode's pendNodes bookkeeping maintained.
		rest := n.pending[:0]
		for _, m := range n.pending {
			if n.now >= m.arriveAt {
				if !n.inPend[m.Dst] {
					n.inPend[m.Dst] = true
					n.pendNodes = insertSorted(n.pendNodes, m.Dst)
				}
				n.inbox[m.Dst] = append(n.inbox[m.Dst], m)
				n.account(m)
			} else {
				rest = append(rest, m)
			}
		}
		for i := len(rest); i < len(n.pending); i++ {
			n.pending[i] = nil
		}
		n.pending = rest
		return
	}
	for n.head < len(n.pending) && n.now >= n.pending[n.head].arriveAt {
		m := n.pending[n.head]
		n.pending[n.head] = nil
		n.head++
		if !n.inPend[m.Dst] {
			n.inPend[m.Dst] = true
			n.pendNodes = insertSorted(n.pendNodes, m.Dst)
		}
		n.inbox[m.Dst] = append(n.inbox[m.Dst], m)
		n.account(m)
	}
	switch {
	case n.head == len(n.pending):
		n.pending = n.pending[:0]
		n.head = 0
	case n.head > len(n.pending)/2:
		k := copy(n.pending, n.pending[n.head:])
		for i := k; i < len(n.pending); i++ {
			n.pending[i] = nil
		}
		n.pending = n.pending[:k]
		n.head = 0
	}
}

func (n *Ideal) account(m *Message) {
	lat := n.now - m.sentAt
	n.stats.Delivered++
	n.stats.TotalLatency += lat
	if lat > n.stats.MaxLatency {
		n.stats.MaxLatency = lat
	}
	n.trace.Emit(m.Dst, trace.KNetDeliver, int32(m.Src), int32(m.Size), int32(lat), 0)
}

// Deliveries implements Network. The inbox keeps its capacity: its
// contents are copied into buf and the slice is truncated, so the
// steady state drains without allocating.
func (n *Ideal) Deliveries(node int, buf []*Message) []*Message {
	box := n.inbox[node]
	buf = append(buf, box...)
	for i := range box {
		box[i] = nil
	}
	n.inbox[node] = box[:0]
	if n.inPend[node] {
		n.inPend[node] = false
		n.pendNodes = removeSorted(n.pendNodes, node)
	}
	return buf
}

// PendingNodes implements Network.
func (n *Ideal) PendingNodes(buf []int) []int {
	if n.refScan {
		for node, box := range n.inbox {
			if len(box) > 0 {
				buf = append(buf, node)
			}
		}
		return buf
	}
	return append(buf, n.pendNodes...)
}

// NextEvent implements Network: the earliest delivery time among
// in-flight messages — the head of the FIFO pending queue — with
// undrained inboxes counting as immediate.
func (n *Ideal) NextEvent() uint64 {
	if n.refScan {
		for _, box := range n.inbox {
			if len(box) > 0 {
				return n.now
			}
		}
		next := uint64(NoEvent)
		for _, m := range n.pending {
			if m.arriveAt < next {
				next = m.arriveAt
			}
		}
		return next
	}
	if len(n.pendNodes) > 0 {
		return n.now
	}
	if n.jittered {
		next := uint64(NoEvent)
		for _, m := range n.pending {
			if m.arriveAt < next {
				next = m.arriveAt
			}
		}
		return next
	}
	if n.head < len(n.pending) {
		return n.pending[n.head].arriveAt
	}
	return NoEvent
}

// Advance implements Network: skip k no-op cycles.
func (n *Ideal) Advance(k uint64) {
	if next := n.NextEvent(); n.now+k >= next {
		panic(fmt.Sprintf("network: Advance(%d) from %d crosses event at %d", k, n.now, next))
	}
	n.now += k
}

// Nodes implements Network.
func (n *Ideal) Nodes() int { return n.nodes }

// Stats implements Network.
func (n *Ideal) Stats() Stats { return n.stats }

// InFlight implements Network.
func (n *Ideal) InFlight() int {
	if n.refScan {
		c := len(n.pending)
		for _, box := range n.inbox {
			c += len(box)
		}
		return c
	}
	c := len(n.pending) - n.head
	for _, node := range n.pendNodes {
		c += len(n.inbox[node])
	}
	return c
}

// SetTracer implements Network.
func (n *Ideal) SetTracer(t *trace.Tracer) { n.trace = t }

var _ Network = (*Ideal)(nil)

// sanity-check helper used by tests.
func (g Geometry) validate() error {
	if g.Dim < 1 || g.Radix < 1 {
		return fmt.Errorf("network: bad geometry %+v", g)
	}
	return nil
}
