package network

// Guard tests for the Advance contract: Advance(k) may only skip
// cycles that are provably uneventful; crossing (or landing on) the
// next event must panic rather than silently dropping a delivery. Both
// backends share the guard.

import (
	"strings"
	"testing"
)

func wantCrossPanic(t *testing.T, advance func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Advance across an event did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "crosses event") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	advance()
}

func TestInvariantAdvanceCrossesEventIdeal(t *testing.T) {
	n := NewIdeal(4, 10)
	n.Send(&Message{Src: 0, Dst: 3, Size: 4})

	// Skipping to just before the delivery is legal...
	n.Advance(9)
	if got := n.Deliveries(3, nil); len(got) != 0 {
		t.Fatalf("Advance(9) delivered early: %v", got)
	}
	// ...skipping onto it is not.
	wantCrossPanic(t, func() { n.Advance(1) })
}

func TestInvariantAdvanceCrossesEventTorus(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 3})
	if err != nil {
		t.Fatal(err)
	}
	tor.Send(&Message{Src: 0, Dst: 1, Size: 4})
	wantCrossPanic(t, func() { tor.Advance(1000) })
}
