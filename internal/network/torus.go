package network

import (
	"fmt"
	"sort"

	"april/internal/fault"
	"april/internal/trace"
)

// Torus is the packet-level k-ary n-cube. Each node has 2n output
// channels (one per dimension and direction). Packets follow
// dimension-order routes, advancing store-and-forward: a channel
// transmits one packet at a time at one flit per cycle, and packets
// queue FIFO at busy channels — queueing is where contention latency
// comes from, as in the open network model of Section 8.
//
// The router is work-proportional on the host: Tick, NextEvent, and
// Advance visit only the channels that currently carry packets (the
// sorted active list below), so an idle or lightly loaded torus costs
// O(active) per cycle rather than O(nodes·2n). Iterating the active
// list in ascending channel id preserves the exact completion order of
// the dense all-channels scan — idle channels contribute nothing to
// that order — which keeps queue and inbox append order, and hence
// simulated behavior, bit-identical.
type Torus struct {
	geo      Geometry
	channels []channel
	inbox    [][]*Message
	now      uint64
	stats    Stats
	trace    *trace.Tracer

	// Work-proportional iteration state. Invariants: active holds
	// exactly the ids of channels with busy > 0 or a nonempty queue,
	// sorted ascending, flagged in inAct; pendNodes holds exactly the
	// nodes with undrained inboxes, sorted ascending, flagged in inPend.
	active    []int
	inAct     []bool
	pendNodes []int
	inPend    []bool

	moved     []*Message // Tick scratch, reused across cycles
	movedFrom []int
	pool      msgPool
	curBuf    []int // routeInto coordinate scratch, length Dim
	dstBuf    []int

	// refScan selects the pre-overhaul cost profile: Tick, NextEvent,
	// Advance and InFlight scan every channel and inbox instead of the
	// active lists. Same simulated behavior, O(nodes·2n) host cost —
	// the differential oracle and throughput baseline.
	refScan bool

	// Fault injection. Transmission penalties are drawn per channel
	// from (plan, channel id, txSeq[channel]); the counter advances
	// once per transmission start, in simulated-time order, whether the
	// start happens in Tick or in Advance's normalization — so the fast
	// and reference run loops draw identical penalty streams.
	plan  *fault.Plan
	txSeq []uint64
}

// SetFaultPlan implements Network.
func (t *Torus) SetFaultPlan(p *fault.Plan) {
	t.plan = p
	if p != nil && t.txSeq == nil {
		t.txSeq = make([]uint64, len(t.channels))
	}
}

// LiveMessages implements Network.
func (t *Torus) LiveMessages() int { return t.pool.liveCount() }

// startTx begins transmitting the head packet of channel id: the base
// cost is the packet's flit count, plus any plan-drawn penalty (hop
// jitter, a transient stall, or fault.PermanentStall for wedged
// links). Callers invoke it exactly once per transmission, so the
// per-channel draw sequence is a pure function of traffic order.
func (t *Torus) startTx(id int, c *channel) {
	c.busy = c.qhead().Size
	if t.plan != nil {
		c.busy += t.plan.TxPenalty(id, t.txSeq[id])
		t.txSeq[id]++
	}
}

// SetReferenceScan switches between the work-proportional and dense
// scanning implementations. Call before any traffic is injected.
func (t *Torus) SetReferenceScan(on bool) { t.refScan = on }

// channel is one output link: a FIFO of queued packets plus the busy
// countdown of the one being transmitted. The queue pops from a head
// index with amortized-O(1) compaction so the steady state neither
// reallocates (as append after a `queue[1:]` reslice eventually would)
// nor copies more than it pops.
type channel struct {
	queue []*Message // live entries are queue[head:]
	head  int
	busy  int // cycles left transmitting the head packet
}

func (c *channel) qlen() int       { return len(c.queue) - c.head }
func (c *channel) qhead() *Message { return c.queue[c.head] }

func (c *channel) push(m *Message) { c.queue = append(c.queue, m) }

func (c *channel) pop() *Message {
	m := c.queue[c.head]
	c.queue[c.head] = nil
	c.head++
	switch {
	case c.head == len(c.queue):
		c.queue = c.queue[:0]
		c.head = 0
	case c.head > len(c.queue)/2:
		k := copy(c.queue, c.queue[c.head:])
		for i := k; i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = c.queue[:k]
		c.head = 0
	}
	return m
}

// channel ids: node*2n + dim*2 + dir (dir 0 = +, 1 = -).
func (t *Torus) channelID(node, dim, dir int) int {
	return node*2*t.geo.Dim + dim*2 + dir
}

// NewTorus builds the packet-level network.
func NewTorus(g Geometry) (*Torus, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	n := g.Nodes()
	return &Torus{
		geo:      g,
		channels: make([]channel, n*2*g.Dim),
		inbox:    make([][]*Message, n),
		inAct:    make([]bool, n*2*g.Dim),
		inPend:   make([]bool, n),
		curBuf:   make([]int, g.Dim),
		dstBuf:   make([]int, g.Dim),
	}, nil
}

// Geometry returns the torus shape.
func (t *Torus) Geometry() Geometry { return t.geo }

// insertSorted adds v to the ascending slice s (caller ensures v is not
// already present).
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted deletes v from the ascending slice s (caller ensures v
// is present).
func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	return append(s[:i], s[i+1:]...)
}

// activate puts a channel on the active list when work first arrives.
func (t *Torus) activate(ch int) {
	if t.inAct[ch] {
		return
	}
	t.inAct[ch] = true
	t.active = insertSorted(t.active, ch)
}

// deliver places a message in its destination inbox and marks the node
// pending.
func (t *Torus) deliver(m *Message) {
	if !t.refScan && !t.inPend[m.Dst] {
		t.inPend[m.Dst] = true
		t.pendNodes = insertSorted(t.pendNodes, m.Dst)
	}
	t.inbox[m.Dst] = append(t.inbox[m.Dst], m)
	t.account(m)
}

// route computes the dimension-order channel sequence from src to dst
// (test helper; the Send path uses routeInto with the message's own
// hop buffer).
func (t *Torus) route(src, dst int) []int {
	return t.routeInto(nil, src, dst)
}

// routeInto appends the dimension-order channel sequence from src to
// dst onto hops, using the torus's coordinate scratch buffers so the
// hot path allocates nothing once the message's route capacity has
// grown to its working size.
func (t *Torus) routeInto(hops []int, src, dst int) []int {
	cur, dstC := t.curBuf, t.dstBuf
	t.geo.CoordsInto(cur, src)
	t.geo.CoordsInto(dstC, dst)
	k := t.geo.Radix
	node := src
	for dim := 0; dim < t.geo.Dim; dim++ {
		for cur[dim] != dstC[dim] {
			fwd := dstC[dim] - cur[dim]
			if fwd < 0 {
				fwd += k
			}
			dir := 0
			step := 1
			if fwd > k-fwd {
				dir, step = 1, k-1 // go the short way around, negative
			}
			hops = append(hops, t.channelID(node, dim, dir))
			cur[dim] = (cur[dim] + step) % k
			node = t.geo.Node(cur)
		}
	}
	return hops
}

// Alloc implements Network.
func (t *Torus) Alloc() *Message { return t.pool.alloc() }

// Recycle implements Network.
func (t *Torus) Recycle(ms []*Message) { t.pool.recycle(ms) }

// Send implements Network.
func (t *Torus) Send(m *Message) {
	if m.recycled {
		panic("network: Send of a recycled message")
	}
	if m.Size < 1 {
		m.Size = 1
	}
	m.sentAt = t.now
	t.stats.Messages++
	t.stats.FlitsSent += uint64(m.Size)
	t.trace.Emit(m.Src, trace.KNetInject, int32(m.Dst), int32(m.Size), 0, 0)
	if m.Src == m.Dst {
		// Loopback: delivered next tick without using the network.
		m.route = m.route[:0]
		m.hop = 0
		t.deliver(m)
		return
	}
	m.route = t.routeInto(m.route[:0], m.Src, m.Dst)
	first := m.route[0]
	m.hop = 1
	t.channels[first].push(m)
	if !t.refScan {
		t.activate(first)
	}
}

// Tick implements Network: every active channel pushes its current
// packet one flit-time forward; completed packets hop to the next
// channel's queue or are delivered. Moves apply after all channels have
// been processed so that a hop always costs exactly Size cycles
// regardless of channel numbering.
func (t *Torus) Tick() {
	t.now++
	moved := t.moved[:0]
	movedFrom := t.movedFrom[:0]
	if t.refScan {
		// Dense scan: every channel, every cycle.
		for i := range t.channels {
			c := &t.channels[i]
			if c.busy == 0 && c.qlen() > 0 {
				t.startTx(i, c)
			}
			if c.busy > 0 {
				c.busy--
				if c.busy == 0 {
					moved = append(moved, c.pop())
					movedFrom = append(movedFrom, i)
				}
			}
		}
	} else {
		// Phase 1: advance active channels in ascending id order,
		// compacting drained ones off the list in place (safe: keep
		// never outruns the read index).
		keep := t.active[:0]
		for _, id := range t.active {
			c := &t.channels[id]
			if c.busy == 0 && c.qlen() > 0 {
				t.startTx(id, c)
			}
			if c.busy > 0 {
				c.busy--
				if c.busy == 0 {
					moved = append(moved, c.pop())
					movedFrom = append(movedFrom, id)
				}
			}
			if c.busy > 0 || c.qlen() > 0 {
				keep = append(keep, id)
			} else {
				t.inAct[id] = false
			}
		}
		t.active = keep
	}
	// Phase 2: apply the moves, re-activating next-hop channels.
	for i, m := range moved {
		t.stats.Hops++
		if m.hop >= len(m.route) {
			t.deliver(m)
		} else {
			// Intermediate hop: attributed to the node owning the
			// channel the packet just left.
			t.trace.Emit(movedFrom[i]/(2*t.geo.Dim), trace.KNetHop, int32(m.Dst), int32(m.Size), 0, 0)
			next := m.route[m.hop]
			m.hop++
			t.channels[next].push(m)
			if !t.refScan {
				t.activate(next)
			}
		}
	}
	t.moved = moved
	t.movedFrom = movedFrom
}

func (t *Torus) account(m *Message) {
	lat := t.now - m.sentAt
	if lat == 0 {
		lat = 1
	}
	t.stats.Delivered++
	t.stats.TotalLatency += lat
	if lat > t.stats.MaxLatency {
		t.stats.MaxLatency = lat
	}
	t.trace.Emit(m.Dst, trace.KNetDeliver, int32(m.Src), int32(m.Size), int32(lat), 0)
}

// Deliveries implements Network. The inbox keeps its capacity: its
// contents are copied into buf and the slice is truncated, so the
// steady state drains without allocating.
func (t *Torus) Deliveries(node int, buf []*Message) []*Message {
	box := t.inbox[node]
	buf = append(buf, box...)
	for i := range box {
		box[i] = nil
	}
	t.inbox[node] = box[:0]
	if t.inPend[node] {
		t.inPend[node] = false
		t.pendNodes = removeSorted(t.pendNodes, node)
	}
	return buf
}

// PendingNodes implements Network.
func (t *Torus) PendingNodes(buf []int) []int {
	if t.refScan {
		for node, box := range t.inbox {
			if len(box) > 0 {
				buf = append(buf, node)
			}
		}
		return buf
	}
	return append(buf, t.pendNodes...)
}

// Nodes implements Network.
func (t *Torus) Nodes() int { return t.geo.Nodes() }

// Stats implements Network.
func (t *Torus) Stats() Stats { return t.stats }

// InFlight counts undelivered packets, including undrained inboxes.
func (t *Torus) InFlight() int {
	n := 0
	if t.refScan {
		for i := range t.channels {
			n += t.channels[i].qlen()
		}
		for _, box := range t.inbox {
			n += len(box)
		}
		return n
	}
	for _, id := range t.active {
		n += t.channels[id].qlen()
	}
	for _, node := range t.pendNodes {
		n += len(t.inbox[node])
	}
	return n
}

// SetTracer implements Network.
func (t *Torus) SetTracer(tr *trace.Tracer) { t.trace = tr }

// NextEvent implements Network. A channel mid-transmission completes
// its head packet after `busy` more Ticks; an idle channel with a
// queued packet starts on the next Tick and completes Size Ticks
// later. The minimum over active channels is the first Tick that can
// move a packet (every earlier Tick only decrements busy counters,
// which Advance replays in closed form). Undrained inboxes count as
// immediate.
func (t *Torus) NextEvent() uint64 {
	if t.refScan {
		return t.nextEventRef()
	}
	if len(t.pendNodes) > 0 {
		return t.now
	}
	next := uint64(NoEvent)
	for _, id := range t.active {
		c := &t.channels[id]
		var left int
		switch {
		case c.busy > 0:
			left = c.busy
		case c.qlen() > 0:
			left = c.qhead().Size
		default:
			continue
		}
		if at := t.now + uint64(left); at < next {
			next = at
		}
	}
	return next
}

// Advance implements Network: replay k no-op Ticks at once. Each
// skipped Tick would have started any idle channel's queued packet and
// decremented every active channel's busy counter without completing a
// transmission, so the closed form is busy -= k after normalizing
// idle-with-work channels to their head packet's flit count.
func (t *Torus) Advance(k uint64) {
	if next := t.NextEvent(); t.now+k >= next {
		panic(fmt.Sprintf("network: Advance(%d) from %d crosses event at %d", k, t.now, next))
	}
	t.now += k
	if t.refScan {
		for i := range t.channels {
			c := &t.channels[i]
			if c.busy == 0 && c.qlen() > 0 {
				t.startTx(i, c)
			}
			if c.busy > 0 {
				c.busy -= int(k)
			}
		}
		return
	}
	for _, id := range t.active {
		c := &t.channels[id]
		if c.busy == 0 && c.qlen() > 0 {
			t.startTx(id, c)
		}
		if c.busy > 0 {
			c.busy -= int(k)
		}
	}
}

// nextEventRef is NextEvent's dense-scan variant (reference cost
// profile): every inbox, then every channel.
func (t *Torus) nextEventRef() uint64 {
	for _, box := range t.inbox {
		if len(box) > 0 {
			return t.now
		}
	}
	next := uint64(NoEvent)
	for i := range t.channels {
		c := &t.channels[i]
		var left int
		switch {
		case c.busy > 0:
			left = c.busy
		case c.qlen() > 0:
			left = c.qhead().Size
		default:
			continue
		}
		if at := t.now + uint64(left); at < next {
			next = at
		}
	}
	return next
}

// Links appends the state of every non-idle channel (busy or queued)
// to buf for crash reports, in ascending channel-id order, marking
// channels the fault plan permanently stalls. Cold path: called only
// when building a fault.Report.
func (t *Torus) Links(buf []fault.LinkState) []fault.LinkState {
	for i := range t.channels {
		c := &t.channels[i]
		if c.busy == 0 && c.qlen() == 0 {
			continue
		}
		buf = append(buf, fault.LinkState{
			Channel: i,
			Node:    i / (2 * t.geo.Dim),
			Dim:     (i / 2) % t.geo.Dim,
			Dir:     i % 2,
			Busy:    c.busy,
			Queued:  c.qlen(),
			Stalled: t.plan != nil && t.plan.Stalled(i),
		})
	}
	return buf
}

var _ Network = (*Torus)(nil)

// String describes the torus.
func (t *Torus) String() string {
	return fmt.Sprintf("%d-ary %d-cube (%d nodes)", t.geo.Radix, t.geo.Dim, t.geo.Nodes())
}
