package network

import (
	"fmt"
	"testing"
)

func TestShardComputePartition(t *testing.T) {
	for _, tc := range []struct {
		nodes, shards int
		wantShards    int
	}{
		{1, 1, 1},
		{1, 8, 1},      // shards clamped to node count
		{8, 0, 1},      // shards clamped up to 1
		{8, -3, 1},     // negative shard counts clamp too
		{8, 3, 3},      // non-dividing shard count
		{27, 4, 4},     // 3-D cube, non-power-of-two
		{100, 7, 7},    // 2-D-ish, uneven blocks
		{256, 8, 8},    // even split
		{60, 1000, 60}, // more shards than nodes
	} {
		t.Run(fmt.Sprintf("%dp/%dshards", tc.nodes, tc.shards), func(t *testing.T) {
			p := ComputePartition(tc.nodes, tc.shards)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Shards() != tc.wantShards {
				t.Fatalf("Shards() = %d, want %d", p.Shards(), tc.wantShards)
			}
			if p.Nodes() != tc.nodes {
				t.Fatalf("Nodes() = %d, want %d", p.Nodes(), tc.nodes)
			}
			// Blocks are contiguous, balanced to within one node, and
			// Of agrees with Block for every node.
			minSz, maxSz := tc.nodes, 0
			next := 0
			for s := 0; s < p.Shards(); s++ {
				lo, hi := p.Block(s)
				if lo != next || hi <= lo {
					t.Fatalf("shard %d block [%d,%d), want start %d", s, lo, hi, next)
				}
				if sz := hi - lo; sz < minSz {
					minSz = sz
				}
				if sz := hi - lo; sz > maxSz {
					maxSz = sz
				}
				for n := lo; n < hi; n++ {
					if p.Of(n) != s {
						t.Fatalf("Of(%d) = %d, want %d", n, p.Of(n), s)
					}
				}
				next = hi
			}
			if next != tc.nodes {
				t.Fatalf("cover ends at %d, want %d", next, tc.nodes)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("unbalanced blocks: sizes span [%d,%d]", minSz, maxSz)
			}
		})
	}
}

func TestShardPartitionCross(t *testing.T) {
	p := ComputePartition(8, 2) // blocks [0,4) and [4,8)
	for _, tc := range []struct {
		src, dst int
		want     bool
	}{
		{0, 3, false},
		{3, 0, false},
		{4, 7, false},
		{3, 4, true},
		{4, 3, true},
		{0, 7, true},
		{5, 5, false},
	} {
		if got := p.Cross(tc.src, tc.dst); got != tc.want {
			t.Errorf("Cross(%d,%d) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestShardLookahead(t *testing.T) {
	if got := Lookahead(NewIdeal(8, 20)); got != 20 {
		t.Errorf("ideal lookahead = %d, want the delivery latency 20", got)
	}
	tor, err := NewTorus(FitGeometry(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := Lookahead(tor); got != 1 {
		t.Errorf("torus lookahead = %d, want 1", got)
	}
	if got := Lookahead(nil); got != 1 {
		t.Errorf("nil backend lookahead = %d, want the conservative 1", got)
	}
}

// TestPartitionLookaheadIdeal: a flat-latency backend gives every shard
// the full latency-L window regardless of the block layout.
func TestPartitionLookaheadIdeal(t *testing.T) {
	n := NewIdeal(12, 20)
	p := ComputePartition(12, 3)
	for s := 0; s < p.Shards(); s++ {
		if got := PartitionLookahead(n, p, s); got != 20 {
			t.Errorf("ideal shard %d lookahead = %d, want 20", s, got)
		}
	}
	if got := MinPartitionLookahead(n, p); got != 20 {
		t.Errorf("ideal min lookahead = %d, want 20", got)
	}
}

// TestPartitionLookaheadTorus: contiguous blocks are slabs, so adjacent
// shards sit one hop apart; a single-shard partition has no
// cross-boundary traffic and falls back to the global Lookahead.
func TestPartitionLookaheadTorus(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := ComputePartition(16, 4) // 4 slabs of 4: each a full row
	for s := 0; s < p.Shards(); s++ {
		if got := PartitionLookahead(tor, p, s); got != 1 {
			t.Errorf("torus shard %d lookahead = %d, want 1 (adjacent slabs)", s, got)
		}
	}
	if got := PartitionLookahead(tor, ComputePartition(16, 1), 0); got != Lookahead(tor) {
		t.Errorf("single-shard lookahead = %d, want global %d", got, Lookahead(tor))
	}
}

// TestPartitionLookaheadNonPowerOfTwo: a 3-ary 2-cube (9 nodes) split
// unevenly — every hop count must come from real dimension-order
// distances on the odd radix, and blocks that do not align with rows
// still touch a foreign node one hop away.
func TestPartitionLookaheadNonPowerOfTwo(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := ComputePartition(9, 2) // blocks [0,4) and [4,9)
	for s := 0; s < p.Shards(); s++ {
		if got := PartitionLookahead(tor, p, s); got != 1 {
			t.Errorf("9-node shard %d lookahead = %d, want 1", s, got)
		}
	}
	// Exhaustively verify the reported minimum is achievable and tight
	// for every shard of a 3-shard split.
	p = ComputePartition(9, 3)
	for s := 0; s < p.Shards(); s++ {
		lo, hi := p.Block(s)
		want := 0
		for src := lo; src < hi; src++ {
			for dst := 0; dst < 9; dst++ {
				if dst >= lo && dst < hi {
					continue
				}
				if h := tor.Geometry().Hops(src, dst); want == 0 || h < want {
					want = h
				}
			}
		}
		if want < 1 {
			want = 1
		}
		if got := PartitionLookahead(tor, p, s); got != uint64(want) {
			t.Errorf("3-shard shard %d lookahead = %d, want %d", s, got, want)
		}
	}
}
