package network

import "april/internal/directory"

// PayloadKind discriminates the Payload union.
type PayloadKind uint8

const (
	// PayloadNone marks a message with no payload (pure traffic, as in
	// the latency/load experiments).
	PayloadNone PayloadKind = iota
	// PayloadCoherence carries a cache-coherence protocol message.
	PayloadCoherence
	// PayloadIPI carries an interprocessor-interrupt vector word.
	PayloadIPI
	// PayloadRaw carries an uninterpreted word (tests, diagnostics).
	PayloadRaw

	// payloadPoisoned is stamped on recycled messages in poison mode;
	// it is never a legal kind for a live message, so any consumer that
	// reads a message past its recycle point sees an impossible value.
	payloadPoisoned PayloadKind = 0xff
)

// Payload is the concrete tagged union a Message carries. Keeping the
// variants as inline fields (rather than an interface{}) means Send
// never boxes a payload on the heap: the whole union travels by value
// inside the pooled Message.
type Payload struct {
	Kind PayloadKind
	Coh  directory.Msg // valid when Kind == PayloadCoherence
	Word uint64        // valid when Kind == PayloadIPI or PayloadRaw
}

// CoherencePayload wraps a directory protocol message.
func CoherencePayload(m directory.Msg) Payload {
	return Payload{Kind: PayloadCoherence, Coh: m}
}

// IPIPayload wraps an interprocessor-interrupt vector.
func IPIPayload(vector uint64) Payload {
	return Payload{Kind: PayloadIPI, Word: vector}
}

// RawPayload wraps an uninterpreted word.
func RawPayload(w uint64) Payload {
	return Payload{Kind: PayloadRaw, Word: w}
}
