package network

import "fmt"

// Partition splits the node ids of a k-ary n-cube into contiguous
// blocks, one per simulation shard. Node ids enumerate the cube with
// dimension 0 varying fastest, so a contiguous id range is a contiguous
// slab of the torus: shard boundaries cut along the highest dimension
// and every shard's nodes are neighbors in the topology. The sharded
// run loop in package sim steps each block on its own goroutine and
// exchanges boundary messages at horizon barriers; messages whose
// source and destination fall in different blocks are the cross-shard
// traffic the lookahead window must cover.
type Partition struct {
	// bounds has one entry per shard plus a final sentinel: shard s owns
	// nodes [bounds[s], bounds[s+1]).
	bounds []int
}

// ComputePartition divides nodes 0..nodes-1 into at most shards
// contiguous, non-empty, balanced blocks (block sizes differ by at most
// one). shards is clamped to [1, nodes].
func ComputePartition(nodes, shards int) Partition {
	if nodes < 1 {
		nodes = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	bounds := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * nodes / shards
	}
	return Partition{bounds: bounds}
}

// Shards is the number of blocks.
func (p Partition) Shards() int { return len(p.bounds) - 1 }

// Nodes is the total node count covered.
func (p Partition) Nodes() int { return p.bounds[len(p.bounds)-1] }

// Block returns shard s's node range [lo, hi).
func (p Partition) Block(s int) (lo, hi int) { return p.bounds[s], p.bounds[s+1] }

// Of returns the shard owning node (binary search over the bounds).
func (p Partition) Of(node int) int {
	lo, hi := 0, len(p.bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if node >= p.bounds[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Cross reports whether a message from src to dst crosses a shard
// boundary.
func (p Partition) Cross(src, dst int) bool { return p.Of(src) != p.Of(dst) }

// Validate checks the structural invariants: blocks are non-empty,
// contiguous, and cover [0, Nodes) exactly once.
func (p Partition) Validate() error {
	if len(p.bounds) < 2 || p.bounds[0] != 0 {
		return fmt.Errorf("network: partition bounds %v do not start at 0", p.bounds)
	}
	for s := 0; s < p.Shards(); s++ {
		if p.bounds[s+1] <= p.bounds[s] {
			return fmt.Errorf("network: partition shard %d is empty or out of order (%v)", s, p.bounds)
		}
	}
	return nil
}

// String renders the block layout.
func (p Partition) String() string {
	return fmt.Sprintf("partition{%d nodes, %d shards, bounds %v}", p.Nodes(), p.Shards(), p.bounds)
}

// Lookahead is the conservative-PDES window of a network backend: the
// minimum number of cycles between a message being sent and the
// earliest cycle at which any other node can observe it. Within one
// window, nodes in different shards cannot affect each other through
// the interconnect, so the sharded run loop may execute them
// concurrently between horizon barriers.
//
// The ideal backend delivers every message exactly `latency` cycles
// after the send, so its lookahead is that latency. The torus forwards
// one flit per cycle per channel with delivery on the tick after the
// final hop completes; the smallest message (one flit, one hop — a
// boundary channel between adjacent nodes in different shards) is
// observable one tick after the send, so its lookahead is the one-hop
// transit of a minimum-size packet. Both are at least 1, which is the
// invariant the per-cycle horizon barrier relies on.
func Lookahead(n Network) uint64 {
	switch b := n.(type) {
	case *Ideal:
		return b.latency
	case *Torus:
		return 1
	default:
		return 1
	}
}

// PartitionLookahead is the per-shard refinement of Lookahead: the
// minimum number of cycles between shard s sending a message and the
// earliest cycle at which any node OUTSIDE the shard can observe it.
// Messages within the shard are invisible to other shards regardless of
// latency, so only cross-boundary traffic bounds the window; a shard
// whose nearest foreign node is far away can run ahead of the barrier
// for the whole transit time even when the global Lookahead is 1.
//
// The ideal backend delivers at a flat latency, so every shard's window
// is that latency. On the torus the bound is the shortest
// dimension-order route from any node in the block to any node outside
// it: contiguous id blocks are slabs of the cube, so for interior
// shards this is the one-hop distance across the slab face, but
// non-power-of-two shapes and uneven blocks can strand a shard farther
// from its nearest neighbor. The transit of a minimum-size packet is
// one cycle per hop with delivery on the following tick, so hops is a
// conservative lower bound and at least 1 (the global barrier floor).
//
// When the partition has a single shard there is no cross-boundary
// traffic at all; the window is bounded by the backend alone and the
// global Lookahead is returned.
func PartitionLookahead(n Network, p Partition, s int) uint64 {
	if p.Shards() <= 1 {
		return Lookahead(n)
	}
	t, ok := n.(*Torus)
	if !ok {
		return Lookahead(n)
	}
	geo := t.Geometry()
	lo, hi := p.Block(s)
	min := 0
	for src := lo; src < hi; src++ {
		for dst := 0; dst < p.Nodes(); dst++ {
			if dst >= lo && dst < hi {
				continue
			}
			if h := geo.Hops(src, dst); min == 0 || h < min {
				min = h
			}
		}
	}
	if min < 1 {
		min = 1
	}
	return uint64(min)
}

// MinPartitionLookahead folds PartitionLookahead over every shard: the
// largest horizon the whole machine can commit between barriers when
// every shard must stay inside its own window.
func MinPartitionLookahead(n Network, p Partition) uint64 {
	min := PartitionLookahead(n, p, 0)
	for s := 1; s < p.Shards(); s++ {
		if la := PartitionLookahead(n, p, s); la < min {
			min = la
		}
	}
	return min
}
