package network

import "fmt"

// Snapshot support. Message timing (sentAt/arriveAt/route/hop) is
// unexported, so the dump/restore of in-flight traffic lives here. An
// Image is the backend-neutral simulated state of a network: restore
// reconstructs host-side bookkeeping (active lists, pending-node
// lists, pool freelists, head indices) from it — those are not part of
// the simulated state, only the live messages and counters are.

// MessageImage is one in-flight packet in snapshot form.
type MessageImage struct {
	Src, Dst, Size int
	Payload        Payload
	SentAt         uint64
	ArriveAt       uint64 // ideal backend only
	Route          []int  // torus backend only
	Hop            int
}

// Image is a network backend's complete simulated state.
type Image struct {
	Now   uint64
	Stats Stats

	// Ideal backend.
	SendSeq uint64
	LastArr []uint64       // jittered mode per-pair arrival clamp
	Pending []MessageImage // in-flight, ascending send order

	// Torus backend.
	TxSeq  []uint64         // per-channel transmission-draw counters
	Busy   []int            // per-channel transmission countdowns
	Queues [][]MessageImage // per-channel FIFO contents, head first

	// Both: undrained inboxes, per node, delivery order.
	Inbox [][]MessageImage
}

func imageOf(m *Message) MessageImage {
	img := MessageImage{
		Src: m.Src, Dst: m.Dst, Size: m.Size, Payload: m.Payload,
		SentAt: m.sentAt, ArriveAt: m.arriveAt, Hop: m.hop,
	}
	if len(m.route) > 0 {
		img.Route = append([]int(nil), m.route...)
	}
	return img
}

func (p *msgPool) fromImage(img MessageImage) *Message {
	m := p.alloc()
	m.Src, m.Dst, m.Size, m.Payload = img.Src, img.Dst, img.Size, img.Payload
	m.sentAt, m.arriveAt, m.hop = img.SentAt, img.ArriveAt, img.Hop
	m.route = append(m.route[:0], img.Route...)
	return m
}

func imagesOf(ms []*Message) []MessageImage {
	if len(ms) == 0 {
		return nil
	}
	out := make([]MessageImage, len(ms))
	for i, m := range ms {
		out[i] = imageOf(m)
	}
	return out
}

// DumpImage captures the ideal network's simulated state.
func (n *Ideal) DumpImage() Image {
	img := Image{
		Now:     n.now,
		Stats:   n.stats,
		SendSeq: n.sendSeq,
		Pending: imagesOf(n.pending[n.head:]),
		Inbox:   make([][]MessageImage, n.nodes),
	}
	if n.lastArr != nil {
		img.LastArr = append([]uint64(nil), n.lastArr...)
	}
	for node, box := range n.inbox {
		img.Inbox[node] = imagesOf(box)
	}
	return img
}

// RestoreImage installs a previously dumped state. The network must be
// freshly constructed (with the same node count and latency) and have
// its fault plan and scan mode already configured.
func (n *Ideal) RestoreImage(img Image) error {
	if len(img.Inbox) != n.nodes {
		return fmt.Errorf("network: image has %d inboxes, ideal network has %d nodes", len(img.Inbox), n.nodes)
	}
	if img.LastArr != nil && len(img.LastArr) != n.nodes*n.nodes {
		return fmt.Errorf("network: image lastArr length %d, want %d", len(img.LastArr), n.nodes*n.nodes)
	}
	n.now = img.Now
	n.stats = img.Stats
	n.sendSeq = img.SendSeq
	if img.LastArr != nil {
		if n.lastArr == nil {
			n.lastArr = make([]uint64, n.nodes*n.nodes)
		}
		copy(n.lastArr, img.LastArr)
	}
	n.pending = n.pending[:0]
	n.head = 0
	for _, mi := range img.Pending {
		n.pending = append(n.pending, n.pool.fromImage(mi))
	}
	for node, box := range img.Inbox {
		for _, mi := range box {
			n.inbox[node] = append(n.inbox[node], n.pool.fromImage(mi))
		}
		if len(box) > 0 && !n.refScan {
			n.inPend[node] = true
			n.pendNodes = append(n.pendNodes, node)
		}
	}
	return nil
}

// DumpImage captures the torus's simulated state.
func (t *Torus) DumpImage() Image {
	nch := len(t.channels)
	img := Image{
		Now:    t.now,
		Stats:  t.stats,
		Busy:   make([]int, nch),
		Queues: make([][]MessageImage, nch),
		Inbox:  make([][]MessageImage, t.geo.Nodes()),
	}
	if t.txSeq != nil {
		img.TxSeq = append([]uint64(nil), t.txSeq...)
	}
	for i := range t.channels {
		c := &t.channels[i]
		img.Busy[i] = c.busy
		img.Queues[i] = imagesOf(c.queue[c.head:])
	}
	for node, box := range t.inbox {
		img.Inbox[node] = imagesOf(box)
	}
	return img
}

// RestoreImage installs a previously dumped state. The torus must be
// freshly constructed with the same geometry and have its fault plan
// and scan mode already configured.
func (t *Torus) RestoreImage(img Image) error {
	nch := len(t.channels)
	if len(img.Busy) != nch || len(img.Queues) != nch {
		return fmt.Errorf("network: image has %d channels, torus has %d", len(img.Busy), nch)
	}
	if len(img.Inbox) != t.geo.Nodes() {
		return fmt.Errorf("network: image has %d inboxes, torus has %d nodes", len(img.Inbox), t.geo.Nodes())
	}
	if img.TxSeq != nil && len(img.TxSeq) != nch {
		return fmt.Errorf("network: image txSeq length %d, want %d", len(img.TxSeq), nch)
	}
	t.now = img.Now
	t.stats = img.Stats
	if img.TxSeq != nil {
		if t.txSeq == nil {
			t.txSeq = make([]uint64, nch)
		}
		copy(t.txSeq, img.TxSeq)
	}
	for i := range t.channels {
		c := &t.channels[i]
		c.busy = img.Busy[i]
		c.queue = c.queue[:0]
		c.head = 0
		for _, mi := range img.Queues[i] {
			c.queue = append(c.queue, t.pool.fromImage(mi))
		}
		if !t.refScan && (c.busy > 0 || c.qlen() > 0) {
			t.inAct[i] = true
			t.active = append(t.active, i)
		}
	}
	for node, box := range img.Inbox {
		for _, mi := range box {
			t.inbox[node] = append(t.inbox[node], t.pool.fromImage(mi))
		}
		if len(box) > 0 && !t.refScan {
			t.inPend[node] = true
			t.pendNodes = append(t.pendNodes, node)
		}
	}
	return nil
}
