package network

import "testing"

// The pooled message API must make a steady-state send -> deliver ->
// recycle round trip allocation-free: the pool recycles Message
// objects (and their route slices), Deliveries appends into the
// caller's reusable buffer, and the channel queues keep their backing
// arrays across pops. One warm-up round fills the pool and grows every
// buffer to its working size; after that, zero allocations.

func TestTorusRoundTripAllocFree(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf []*Message
	var pend []int
	round := func() {
		m := tor.Alloc()
		m.Src, m.Dst, m.Size = 0, 5, 4
		tor.Send(m)
		for i := 0; i < 1000 && tor.InFlight() > 0; i++ {
			tor.Tick()
			pend = tor.PendingNodes(pend[:0])
			for _, node := range pend {
				buf = tor.Deliveries(node, buf[:0])
				tor.Recycle(buf)
			}
		}
		if tor.InFlight() > 0 {
			t.Fatal("message not delivered")
		}
	}
	round() // fill the pool and size every scratch buffer
	if n := testing.AllocsPerRun(100, round); n != 0 {
		t.Errorf("torus round trip allocates %v/op in steady state, want 0", n)
	}
}

func TestIdealRoundTripAllocFree(t *testing.T) {
	net := NewIdeal(8, 3)
	var buf []*Message
	var pend []int
	round := func() {
		m := net.Alloc()
		m.Src, m.Dst, m.Size = 1, 6, 4
		net.Send(m)
		for i := 0; i < 100 && net.InFlight() > 0; i++ {
			net.Tick()
			pend = net.PendingNodes(pend[:0])
			for _, node := range pend {
				buf = net.Deliveries(node, buf[:0])
				net.Recycle(buf)
			}
		}
		if net.InFlight() > 0 {
			t.Fatal("message not delivered")
		}
	}
	round()
	if n := testing.AllocsPerRun(100, round); n != 0 {
		t.Errorf("ideal round trip allocates %v/op in steady state, want 0", n)
	}
}
