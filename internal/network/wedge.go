package network

// NodeChannels returns the flat ids of every output channel owned by
// the given node, in (dim, dir) order. This is the set a node-targeted
// wedge (fault.Config.WedgeAtCycle) stalls: with all of its output
// channels dead the node can receive but never send, the
// deterministic analogue of a router failing mid-run.
func (t *Torus) NodeChannels(node int) []int {
	out := make([]int, 0, 2*t.geo.Dim)
	for dim := 0; dim < t.geo.Dim; dim++ {
		for dir := 0; dir < 2; dir++ {
			out = append(out, t.channelID(node, dim, dir))
		}
	}
	return out
}
