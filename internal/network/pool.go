package network

import "april/internal/directory"

// msgPool is the per-network message freelist. Ownership discipline:
// the sender obtains a Message from Alloc, fills it, and hands it to
// Send — from that point the network owns it. Deliveries lends the
// delivered messages to the consumer, who must copy out anything it
// needs and return the whole batch with Recycle before the next Tick;
// after Recycle the pointers are dead (and poisoned in poison mode).
type msgPool struct {
	free []*Message
	live int // messages checked out (allocated, not yet recycled)
}

// liveCount reports how many messages are checked out of the pool.
// At a tick boundary with every inbox drained this equals the
// network's InFlight count; the fault checker asserts exactly that.
func (p *msgPool) liveCount() int { return p.live }

// poisonRecycle, when set, scrambles every field of a recycled message
// so a consumer that illegally retains a *Message past its Recycle
// sees impossible values (negative nodes, payloadPoisoned kind) and
// diverges from a clean run. Test-only; flip with SetPoisonRecycle.
var poisonRecycle bool

// SetPoisonRecycle toggles poisoning of recycled messages. It is a
// process-wide debugging aid for aliasing tests: with it on, any
// consumer holding a message past the recycle point reads garbage
// instead of silently stale data.
func SetPoisonRecycle(on bool) { poisonRecycle = on }

func (p *msgPool) alloc() *Message {
	p.live++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		m.recycled = false
		return m
	}
	return &Message{}
}

func (p *msgPool) recycle(ms []*Message) {
	for _, m := range ms {
		if m == nil {
			continue
		}
		if m.recycled {
			panic("network: message recycled twice")
		}
		p.live--
		route := m.route[:0]
		*m = Message{route: route, recycled: true}
		if poisonRecycle {
			m.Src, m.Dst, m.Size = -1, -1, -1
			m.sentAt = ^uint64(0)
			m.hop = 1 << 30
			m.Payload = Payload{
				Kind: payloadPoisoned,
				Coh: directory.Msg{
					Kind:      directory.MsgKind(0xff),
					Block:     0xdeadbeef,
					From:      -1,
					Requester: -1,
				},
				Word: 0xdeaddeaddeaddead,
			}
		}
		p.free = append(p.free, m)
	}
}
