package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryCoordsRoundTrip(t *testing.T) {
	g := Geometry{Dim: 3, Radix: 4}
	for node := 0; node < g.Nodes(); node++ {
		if got := g.Node(g.Coords(node)); got != node {
			t.Fatalf("node %d -> %v -> %d", node, g.Coords(node), got)
		}
	}
}

func TestHopsProperties(t *testing.T) {
	g := Geometry{Dim: 3, Radix: 5}
	f := func(a, b uint16) bool {
		src := int(a) % g.Nodes()
		dst := int(b) % g.Nodes()
		h := g.Hops(src, dst)
		// Symmetric, zero iff same node, bounded by n*floor(k/2).
		return h == g.Hops(dst, src) &&
			(h == 0) == (src == dst) &&
			h <= g.Dim*(g.Radix/2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgHopsMatchesPaper(t *testing.T) {
	// Section 8: "the average number of hops between a random pair of
	// nodes is nk/3 = 20" for n=3, k=20 (for odd radix this is nearly
	// exact; for k=20 the torus average is close).
	g := Geometry{Dim: 3, Radix: 20}
	rng := rand.New(rand.NewSource(1))
	var sum, cnt float64
	for i := 0; i < 20000; i++ {
		sum += float64(g.Hops(rng.Intn(g.Nodes()), rng.Intn(g.Nodes())))
		cnt++
	}
	avg := sum / cnt
	want := float64(g.Dim) * float64(g.Radix) / 4 // torus shortest-path average is nk/4
	if avg < want*0.95 || avg > want*1.05 {
		t.Errorf("measured avg hops %.2f, torus expectation %.1f", avg, want)
	}
}

func TestFitGeometry(t *testing.T) {
	cases := map[int]Geometry{
		1:  {Dim: 1, Radix: 1},
		8:  {Dim: 3, Radix: 2},
		27: {Dim: 3, Radix: 3},
		64: {Dim: 3, Radix: 4},
		16: {Dim: 2, Radix: 4},
		4:  {Dim: 2, Radix: 2},
	}
	for nodes, want := range cases {
		if got := FitGeometry(nodes); got != want {
			t.Errorf("FitGeometry(%d) = %+v, want %+v", nodes, got, want)
		}
	}
	// Non-perfect counts get a ring.
	if g := FitGeometry(6); g.Nodes() != 6 {
		t.Errorf("FitGeometry(6) = %+v does not cover 6 nodes", g)
	}
}

func TestRouteIsDimensionOrderAndReachesDst(t *testing.T) {
	tor, err := NewTorus(Geometry{Dim: 2, Radix: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		src := int(a) % 16
		dst := int(b) % 16
		hops := tor.route(src, dst)
		return len(hops) == tor.geo.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func deliverAll(t *testing.T, n Network, maxTicks int) map[int][]*Message {
	t.Helper()
	out := map[int][]*Message{}
	for i := 0; i < maxTicks; i++ {
		n.Tick()
		for node := 0; node < n.Nodes(); node++ {
			out[node] = n.Deliveries(node, out[node])
		}
	}
	return out
}

func TestTorusDelivery(t *testing.T) {
	tor, _ := NewTorus(Geometry{Dim: 2, Radix: 3})
	m := &Message{Src: 0, Dst: 8, Size: 4, Payload: RawPayload(0x4e110)}
	tor.Send(m)
	got := deliverAll(t, tor, 100)
	if len(got[8]) != 1 || got[8][0].Payload != RawPayload(0x4e110) {
		t.Fatalf("delivery failed: %+v", got)
	}
	// Unloaded latency = hops * size (store and forward).
	want := uint64(tor.geo.Hops(0, 8) * 4)
	if tor.Stats().TotalLatency != want {
		t.Errorf("latency %d, want %d", tor.Stats().TotalLatency, want)
	}
}

func TestTorusAllPairs(t *testing.T) {
	tor, _ := NewTorus(Geometry{Dim: 3, Radix: 3})
	n := tor.Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			tor.Send(&Message{Src: s, Dst: d, Size: 1, Payload: RawPayload(uint64(s)<<16 | uint64(d))})
		}
	}
	got := deliverAll(t, tor, 10000)
	total := 0
	for node, ms := range got {
		for _, m := range ms {
			if dst := int(m.Payload.Word & 0xffff); dst != node {
				t.Fatalf("message for %d delivered to %d", dst, node)
			}
			total++
		}
	}
	if total != n*n {
		t.Errorf("delivered %d of %d messages", total, n*n)
	}
	if tor.InFlight() != 0 {
		t.Errorf("%d packets stuck in flight", tor.InFlight())
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	// Low load: latency near unloaded; high load: queueing pushes it
	// well above — the T(p) behavior the Section 8 model assumes.
	measure := func(msgsPerNodePerInterval int, interval int) float64 {
		tor, _ := NewTorus(Geometry{Dim: 2, Radix: 4})
		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 300; step++ {
			if step%interval == 0 {
				for node := 0; node < tor.Nodes(); node++ {
					for j := 0; j < msgsPerNodePerInterval; j++ {
						dst := rng.Intn(tor.Nodes())
						tor.Send(&Message{Src: node, Dst: dst, Size: 4})
					}
				}
			}
			tor.Tick()
		}
		// Drain.
		for i := 0; i < 20000 && tor.InFlight() > 0; i++ {
			tor.Tick()
		}
		return tor.Stats().AvgLatency()
	}
	low := measure(1, 100)
	high := measure(1, 3)
	if high <= low*1.3 {
		t.Errorf("contention effect too weak: low-load %.1f, high-load %.1f", low, high)
	}
}

func TestIdealNetwork(t *testing.T) {
	n := NewIdeal(4, 10)
	n.Send(&Message{Src: 0, Dst: 3, Size: 4, Payload: RawPayload(42)})
	for i := 0; i < 9; i++ {
		n.Tick()
		if got := n.Deliveries(3, nil); len(got) != 0 {
			t.Fatalf("delivered after %d ticks, want 10", i+1)
		}
	}
	n.Tick()
	got := n.Deliveries(3, nil)
	if len(got) != 1 || got[0].Payload != RawPayload(42) {
		t.Fatalf("ideal delivery failed: %v", got)
	}
	if n.Stats().AvgLatency() != 10 {
		t.Errorf("avg latency %v, want 10", n.Stats().AvgLatency())
	}
}

func TestLoopback(t *testing.T) {
	tor, _ := NewTorus(Geometry{Dim: 1, Radix: 4})
	tor.Send(&Message{Src: 2, Dst: 2, Size: 4, Payload: RawPayload(7)})
	got := deliverAll(t, tor, 5)
	if len(got[2]) != 1 {
		t.Fatal("loopback not delivered")
	}
}
