package proc

import (
	"fmt"
	"runtime"
	"time"
)

// Perf reports host-side simulation throughput for one run: how fast
// the simulator chewed through simulated cycles and instructions in
// wall-clock terms. It complements Stats (which describes the simulated
// machine and is bit-reproducible) with the observability needed to
// track the simulator's own speed across changes — these numbers vary
// run to run and host to host, and must never feed back into simulated
// results.
type Perf struct {
	SimCycles    uint64  `json:"sim_cycles"`
	Instructions uint64  `json:"instructions"`
	WallSeconds  float64 `json:"wall_seconds"`

	// CyclesPerSecond is simulated cycles per wall second; MIPS is
	// millions of simulated instructions per wall second.
	CyclesPerSecond float64 `json:"cycles_per_second"`
	MIPS            float64 `json:"mips"`

	// Host allocator pressure over the measured interval (deltas of
	// runtime.MemStats counters; see SetGC). Zero when no GC snapshot
	// was attached.
	HostAllocs     uint64 `json:"host_allocs,omitempty"`
	HostAllocBytes uint64 `json:"host_alloc_bytes,omitempty"`
	HostNumGC      uint32 `json:"host_num_gc,omitempty"`

	// Allocation rates per million simulated cycles — the steady-state
	// figure the allocation-regression tests pin near zero.
	AllocsPerMcycle float64 `json:"allocs_per_mcycle,omitempty"`
	BytesPerMcycle  float64 `json:"bytes_per_mcycle,omitempty"`
}

// GCSnapshot captures the host allocator's cumulative counters at a
// point in time. Two snapshots bracket a measured interval; their
// difference is the interval's allocation bill.
type GCSnapshot struct {
	Allocs     uint64 // cumulative mallocs (runtime.MemStats.Mallocs)
	AllocBytes uint64 // cumulative bytes allocated (TotalAlloc)
	NumGC      uint32 // completed GC cycles
}

// TakeGCSnapshot reads the host allocator counters. It forces a full
// runtime.ReadMemStats (a stop-the-world), so call it only at run
// boundaries, never inside a measured loop.
func TakeGCSnapshot() GCSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return GCSnapshot{Allocs: ms.Mallocs, AllocBytes: ms.TotalAlloc, NumGC: ms.NumGC}
}

// NewPerf derives the throughput rates from a run's simulated cycle and
// instruction totals and its measured wall time.
func NewPerf(simCycles, instructions uint64, wall time.Duration) Perf {
	p := Perf{
		SimCycles:    simCycles,
		Instructions: instructions,
		WallSeconds:  wall.Seconds(),
	}
	p.recompute()
	return p
}

// SetGC attaches the allocator delta between two snapshots bracketing
// the run and derives the per-Mcycle rates.
func (p *Perf) SetGC(before, after GCSnapshot) {
	p.HostAllocs = after.Allocs - before.Allocs
	p.HostAllocBytes = after.AllocBytes - before.AllocBytes
	p.HostNumGC = after.NumGC - before.NumGC
	p.recompute()
}

// Add accumulates another run's totals into p, recomputing the rates
// over the summed wall time (runs measured back to back).
func (p *Perf) Add(o Perf) {
	p.SimCycles += o.SimCycles
	p.Instructions += o.Instructions
	p.WallSeconds += o.WallSeconds
	p.HostAllocs += o.HostAllocs
	p.HostAllocBytes += o.HostAllocBytes
	p.HostNumGC += o.HostNumGC
	p.recompute()
}

// recompute rederives every rate from the totals, degrading to 0 (never
// NaN/Inf) when a denominator is zero.
func (p *Perf) recompute() {
	p.CyclesPerSecond, p.MIPS = 0, 0
	if p.WallSeconds > 0 {
		p.CyclesPerSecond = float64(p.SimCycles) / p.WallSeconds
		p.MIPS = float64(p.Instructions) / p.WallSeconds / 1e6
	}
	p.AllocsPerMcycle, p.BytesPerMcycle = 0, 0
	if p.SimCycles > 0 {
		mcycles := float64(p.SimCycles) / 1e6
		p.AllocsPerMcycle = float64(p.HostAllocs) / mcycles
		p.BytesPerMcycle = float64(p.HostAllocBytes) / mcycles
	}
}

// String renders the throughput summary, with the allocator bill when
// one was measured.
func (p Perf) String() string {
	s := fmt.Sprintf("%d cycles, %d instructions in %.3fs (%.1f Mcycles/s, %.1f MIPS)",
		p.SimCycles, p.Instructions, p.WallSeconds, p.CyclesPerSecond/1e6, p.MIPS)
	if p.HostAllocs > 0 || p.HostAllocBytes > 0 {
		s += fmt.Sprintf(", %.0f allocs/Mcycle, %.0f B/Mcycle, %d GCs",
			p.AllocsPerMcycle, p.BytesPerMcycle, p.HostNumGC)
	}
	return s
}
