package proc

import (
	"fmt"
	"time"
)

// Perf reports host-side simulation throughput for one run: how fast
// the simulator chewed through simulated cycles and instructions in
// wall-clock terms. It complements Stats (which describes the simulated
// machine and is bit-reproducible) with the observability needed to
// track the simulator's own speed across changes — these numbers vary
// run to run and host to host, and must never feed back into simulated
// results.
type Perf struct {
	SimCycles    uint64  `json:"sim_cycles"`
	Instructions uint64  `json:"instructions"`
	WallSeconds  float64 `json:"wall_seconds"`

	// CyclesPerSecond is simulated cycles per wall second; MIPS is
	// millions of simulated instructions per wall second.
	CyclesPerSecond float64 `json:"cycles_per_second"`
	MIPS            float64 `json:"mips"`
}

// NewPerf derives the throughput rates from a run's simulated cycle and
// instruction totals and its measured wall time.
func NewPerf(simCycles, instructions uint64, wall time.Duration) Perf {
	p := Perf{
		SimCycles:    simCycles,
		Instructions: instructions,
		WallSeconds:  wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		p.CyclesPerSecond = float64(simCycles) / s
		p.MIPS = float64(instructions) / s / 1e6
	}
	return p
}

// Add accumulates another run's totals into p, recomputing the rates
// over the summed wall time (runs measured back to back).
func (p *Perf) Add(o Perf) {
	p.SimCycles += o.SimCycles
	p.Instructions += o.Instructions
	p.WallSeconds += o.WallSeconds
	if p.WallSeconds > 0 {
		p.CyclesPerSecond = float64(p.SimCycles) / p.WallSeconds
		p.MIPS = float64(p.Instructions) / p.WallSeconds / 1e6
	}
}

// String renders the throughput summary.
func (p Perf) String() string {
	return fmt.Sprintf("%d cycles, %d instructions in %.3fs (%.1f Mcycles/s, %.1f MIPS)",
		p.SimCycles, p.Instructions, p.WallSeconds, p.CyclesPerSecond/1e6, p.MIPS)
}
