package proc

import (
	"testing"

	"april/internal/core"
	"april/internal/isa"
)

// ipiProc builds a processor that treats every Step as an IPI delivery
// opportunity (nop program, handler records payloads).
func ipiProc(t *testing.T) (*Processor, *[]int32) {
	t.Helper()
	code := []isa.Inst{isa.Nop, isa.Nop, isa.Nop, isa.Nop}
	p, _ := newProc(t, code)
	var delivered []int32
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		if tr.Kind != core.TrapIPI {
			t.Fatalf("unexpected trap %v", tr)
		}
		delivered = append(delivered, isa.FixnumValue(tr.Value))
		return 1, nil
	}}
	return p, &delivered
}

// deliverOne steps the processor once and checks an IPI came out.
func deliverOne(t *testing.T, p *Processor) {
	t.Helper()
	before := p.PendingIPIs()
	if _, err := p.Step(); err != nil {
		t.Fatal(err)
	}
	if p.PendingIPIs() != before-1 {
		t.Fatalf("pending %d after step, want %d", p.PendingIPIs(), before-1)
	}
}

func TestIPIQueuePartialDrainKeepsOrder(t *testing.T) {
	p, delivered := ipiProc(t)
	for i := 0; i < 8; i++ {
		p.PostIPI(isa.MakeFixnum(int32(i)))
	}
	for i := 0; i < 5; i++ {
		deliverOne(t, p)
	}
	if p.PendingIPIs() != 3 {
		t.Fatalf("pending = %d, want 3", p.PendingIPIs())
	}

	// Posting while partially drained compacts: the head passed the
	// midpoint, so the backing queue shrinks to undelivered + new.
	p.PostIPI(isa.MakeFixnum(100))
	if got := p.ipiQueueLen(); got != 4 {
		t.Errorf("backing queue holds %d after compaction, want 4", got)
	}

	for p.PendingIPIs() > 0 {
		deliverOne(t, p)
	}
	want := []int32{0, 1, 2, 3, 4, 5, 6, 7, 100}
	if len(*delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", *delivered, want)
	}
	for i, v := range want {
		if (*delivered)[i] != v {
			t.Fatalf("delivered[%d] = %d, want %d (full: %v)", i, (*delivered)[i], v, *delivered)
		}
	}
}

func TestIPIQueueReuseIsBounded(t *testing.T) {
	p, _ := ipiProc(t)

	// Steady post-one/deliver-one traffic must not grow the backing
	// array with delivery history: a drained queue rewinds in place.
	for i := 0; i < 10_000; i++ {
		p.PostIPI(isa.MakeFixnum(int32(i)))
		deliverOne(t, p)
		if got := p.ipiQueueLen(); got > 1 {
			t.Fatalf("iteration %d: backing queue grew to %d", i, got)
		}
	}

	// A queue held partially drained under sustained traffic stays
	// proportional to the undelivered count, not the post count.
	for i := 0; i < 10_000; i++ {
		p.PostIPI(isa.MakeFixnum(int32(i)))
		if i%2 == 0 {
			deliverOne(t, p)
		}
		if got, pend := p.ipiQueueLen(), p.PendingIPIs(); got > 2*pend+2 {
			t.Fatalf("iteration %d: backing queue %d for %d undelivered", i, got, pend)
		}
	}
}
