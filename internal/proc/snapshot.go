package proc

import "april/internal/isa"

// Snapshot support: the IPI queue is the only unexported simulated
// state on a Processor (everything else is reconstructed from the
// program by machine construction, or exported like Stats and Kinds).

// DumpIPIs appends the undelivered IPI payloads, oldest first.
func (p *Processor) DumpIPIs(buf []isa.Word) []isa.Word {
	return append(buf, p.pendingIPI[p.ipiHead:]...)
}

// RestoreIPIs replaces the IPI queue with the given payloads (oldest
// first), as dumped by DumpIPIs.
func (p *Processor) RestoreIPIs(ws []isa.Word) {
	p.pendingIPI = append(p.pendingIPI[:0], ws...)
	p.ipiHead = 0
}
