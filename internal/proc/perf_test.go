package proc

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func assertFinite(t *testing.T, p Perf, label string) {
	t.Helper()
	for name, v := range map[string]float64{
		"wall_seconds":      p.WallSeconds,
		"cycles_per_second": p.CyclesPerSecond,
		"mips":              p.MIPS,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: %s is %f", label, name, v)
		}
	}
}

func TestPerfZeroDurationNoNaN(t *testing.T) {
	// A run can complete in under the wall-clock resolution; the rates
	// must degrade to 0, never NaN or Inf.
	p := NewPerf(1000, 500, 0)
	assertFinite(t, p, "zero wall time")
	if p.CyclesPerSecond != 0 || p.MIPS != 0 {
		t.Errorf("zero-duration rates %f/%f, want 0/0", p.CyclesPerSecond, p.MIPS)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("json.Marshal: %v (NaN/Inf fails to marshal)", err)
	}
	if s := string(b); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("JSON contains non-finite values: %s", s)
	}
}

func TestPerfZeroEverything(t *testing.T) {
	p := NewPerf(0, 0, 0)
	assertFinite(t, p, "all zero")
	if _, err := json.Marshal(p); err != nil {
		t.Fatal(err)
	}
	_ = p.String() // must not panic
}

func TestPerfAddZeroDurations(t *testing.T) {
	var p Perf
	p.Add(NewPerf(0, 0, 0))
	p.Add(NewPerf(100, 50, 0))
	assertFinite(t, p, "accumulated zero wall time")
	if p.SimCycles != 100 || p.Instructions != 50 {
		t.Errorf("totals %d/%d, want 100/50", p.SimCycles, p.Instructions)
	}
	if p.CyclesPerSecond != 0 {
		t.Errorf("rate %f with zero wall time, want 0", p.CyclesPerSecond)
	}
	// A real duration added later recomputes the rates.
	p.Add(NewPerf(100, 50, time.Second))
	if p.CyclesPerSecond != 200 {
		t.Errorf("rate %f after 1s, want 200", p.CyclesPerSecond)
	}
	assertFinite(t, p, "after real duration")
}
