package proc

import (
	"fmt"

	"april/internal/core"
	"april/internal/isa"
)

// This file is the predecoded execution path: one handler per
// isa.MicroKind in a flat table, replacing the nested opcode switches
// of execute/execCompute/execMemory on the hot path. Each handler is a
// line-for-line mirror of the corresponding reference-switch case —
// same stats increments, same PSR/register update order, same trap
// payloads, same error returns — so the two paths produce bit-identical
// simulated machines (the differential tests in internal/sim hold them
// to that). The reference path stays selectable (sim's
// DisablePredecode) as the oracle.

// microFn executes one predecoded instruction of the active frame.
type microFn func(p *Processor, f *core.Frame, u *isa.Micro) (int, error)

// microTable is the flat dispatch table, indexed by isa.MicroKind.
var microTable = [isa.NumMicroKinds]microFn{
	isa.MNop:     microNop,
	isa.MAdd:     microAdd,
	isa.MSub:     microSub,
	isa.MAnd:     microAnd,
	isa.MOr:      microOr,
	isa.MXor:     microXor,
	isa.MSll:     microSll,
	isa.MSrl:     microSrl,
	isa.MSra:     microSra,
	isa.MMul:     microMul,
	isa.MDiv:     microDiv,
	isa.MMod:     microMod,
	isa.MTagCmp:  microTagCmp,
	isa.MMovI:    microMovI,
	isa.MMem:     microMem,
	isa.MBranch:  microBranch,
	isa.MJmpl:    microJmpl,
	isa.MIncFP:   microIncFP,
	isa.MDecFP:   microDecFP,
	isa.MRdFP:    microRdFP,
	isa.MStFP:    microStFP,
	isa.MRdPSR:   microRdPSR,
	isa.MWrPSR:   microWrPSR,
	isa.MFlush:   microFlush,
	isa.MLdio:    microLdio,
	isa.MStio:    microStio,
	isa.MTrap:    microTrap,
	isa.MHalt:    microHalt,
	isa.MInvalid: microInvalid,
}

func microNop(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	return 1, nil
}

// computeOperands fetches the two compute sources and performs the
// hardware future detection of Section 4 for strict operations. The
// bool reports whether a future trap was taken (cycles/err are then the
// trap's).
func computeOperands(p *Processor, f *core.Frame, u *isa.Micro) (a, b isa.Word, cycles int, err error, trapped bool) {
	e := p.Engine
	a = e.Reg(u.Rs1)
	if u.UseImm {
		b = isa.Word(u.Imm)
	} else {
		b = e.Reg(u.Rs2)
	}
	if u.Strict && f.PSR&core.PSRFutureTrap != 0 {
		if isa.IsFuture(a) {
			c, err := p.trap(core.Trap{Kind: core.TrapFuture, PC: f.PC, Inst: u.Inst, Value: a, Reg: u.Rs1})
			return 0, 0, c, err, true
		}
		if !u.UseImm && isa.IsFuture(b) {
			c, err := p.trap(core.Trap{Kind: core.TrapFuture, PC: f.PC, Inst: u.Inst, Value: b, Reg: u.Rs2})
			return 0, 0, c, err, true
		}
	}
	return a, b, 0, nil, false
}

// computeFinish applies the common compute epilogue: condition codes,
// destination write, PC advance, accounting.
func computeFinish(p *Processor, f *core.Frame, u *isa.Micro, r isa.Word, carry, ovf bool) (int, error) {
	if u.SetsCC {
		f.PSR = f.PSR.WithCC(int32(r) < 0, r == 0, ovf, carry)
	}
	p.Engine.SetReg(u.Rd, r)
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	return 1, nil
}

func microAdd(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	sum := uint64(a) + uint64(b)
	r := isa.Word(sum)
	carry := sum>>32 != 0
	ovf := (a>>31 == b>>31) && (r>>31 != a>>31)
	return computeFinish(p, f, u, r, carry, ovf)
}

func microSub(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	r := a - b
	carry := a < b
	ovf := (a>>31 != b>>31) && (r>>31 != a>>31)
	return computeFinish(p, f, u, r, carry, ovf)
}

func microAnd(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, a&b, false, false)
}

func microOr(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, a|b, false, false)
}

func microXor(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, a^b, false, false)
}

func microSll(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, a<<(uint32(b)&31), false, false)
}

func microSrl(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, a>>(uint32(b)&31), false, false)
}

func microSra(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, isa.Word(int32(a)>>(uint32(b)&31)), false, false)
}

func microMul(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, isa.Word(int32(a)*int32(b)), false, false)
}

func microDiv(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	if b == 0 {
		return 1, fmt.Errorf("proc %d: division by zero at pc=%d", p.ID, f.PC)
	}
	return computeFinish(p, f, u, isa.Word(int32(a)/int32(b)), false, false)
}

func microMod(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	if b == 0 {
		return 1, fmt.Errorf("proc %d: modulo by zero at pc=%d", p.ID, f.PC)
	}
	return computeFinish(p, f, u, isa.Word(int32(a)%int32(b)), false, false)
}

func microTagCmp(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	a, b, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	// Z <- (tag of rs1 == imm). Fixnums use the two-bit tag.
	var match bool
	if b&isa.TagMask3 == isa.FixnumTag {
		match = a&isa.TagMask2 == isa.FixnumTag
	} else {
		match = a&isa.TagMask3 == b&isa.TagMask3
	}
	f.PSR = f.PSR.WithCC(false, match, false, false)
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	return 1, nil
}

func microMovI(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	_, _, c, err, trapped := computeOperands(p, f, u)
	if trapped {
		return c, err
	}
	return computeFinish(p, f, u, isa.Word(u.Imm), false, false)
}

func microMem(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	e := p.Engine
	base := e.Reg(u.Rs1)
	offset := u.Imm
	var index isa.Word
	if !u.UseImm {
		index = e.Reg(u.Rs2)
	}

	// Address-operand future detection (implicit touches, Section 4).
	if f.PSR&core.PSRFutureTrap != 0 {
		if isa.IsFuture(base) {
			return p.trap(core.Trap{Kind: core.TrapAddrFuture, PC: f.PC, Inst: u.Inst, Value: base, Reg: u.Rs1})
		}
		if !u.UseImm && isa.IsFuture(index) {
			return p.trap(core.Trap{Kind: core.TrapAddrFuture, PC: f.PC, Inst: u.Inst, Value: index, Reg: u.Rs2})
		}
	}

	ea := uint32(int32(uint32(base)) + int32(uint32(index)) + offset)
	if ea%4 != 0 {
		return p.trap(core.Trap{Kind: core.TrapAlign, PC: f.PC, Inst: u.Inst, Addr: ea})
	}

	store := u.Store
	var value isa.Word
	if store {
		value = e.Reg(u.Rd)
	}

	res, err := p.Mem.Access(ea, u.Flavor, store, value)
	if err != nil {
		return 0, fmt.Errorf("proc %d pc=%d: %w", p.ID, f.PC, err)
	}
	if res.Retry {
		stall := res.Stall
		if stall < 1 {
			stall = 1
		}
		p.Stats.WaitCycles += uint64(stall)
		return stall, nil
	}
	switch res.Outcome {
	case SyncFault:
		kind := core.TrapEmpty
		if store {
			kind = core.TrapFullStore
		}
		return p.trap(core.Trap{Kind: kind, PC: f.PC, Inst: u.Inst, Addr: ea, Store: store})
	case RemoteMiss:
		return p.trap(core.Trap{Kind: core.TrapCacheMiss, PC: f.PC, Inst: u.Inst, Addr: ea, Store: store})
	}

	f.PSR = f.PSR.WithFull(res.Full)
	if store {
		p.Stats.StoreCount++
	} else {
		e.SetReg(u.Rd, res.Value)
		p.Stats.LoadCount++
	}
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.Stats.WaitCycles += uint64(res.Stall)
	return 1 + res.Stall, nil
}

func microBranch(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	if f.PSR.CondHolds(u.Cond) {
		f.PC = uint32(int32(f.PC) + u.Imm)
	} else {
		f.PC++
	}
	f.NPC = f.PC + 1
	return 1, nil
}

func microJmpl(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	e := p.Engine
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	target := u.Imm
	if u.Rs1 != isa.RZero {
		base := e.Reg(u.Rs1)
		if !isa.IsFixnum(base) {
			return 1, fmt.Errorf("proc %d: jmpl through non-fixnum %#x at pc=%d", p.ID, base, f.PC)
		}
		target += isa.FixnumValue(base)
	}
	link := isa.MakeFixnum(int32(f.PC + 1))
	e.SetReg(u.Rd, link)
	f.PC = uint32(target)
	f.NPC = f.PC + 1
	return 1, nil
}

func microIncFP(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.advance(f)
	p.Engine.IncFP()
	return 1, nil
}

func microDecFP(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.advance(f)
	p.Engine.DecFP()
	return 1, nil
}

func microRdFP(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.Engine.SetReg(u.Rd, isa.MakeFixnum(int32(p.Engine.FP())))
	p.advance(f)
	return 1, nil
}

func microStFP(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.advance(f)
	p.Engine.SetFP(int(isa.FixnumValue(p.Engine.Reg(u.Rs1))))
	return 1, nil
}

func microRdPSR(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.Engine.SetReg(u.Rd, isa.Word(f.PSR))
	p.advance(f)
	return 1, nil
}

func microWrPSR(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	f.PSR = core.PSR(p.Engine.Reg(u.Rs1))
	p.advance(f)
	return 1, nil
}

func microFlush(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	addr := uint32(int32(uint32(p.Engine.Reg(u.Rs1))) + u.Imm)
	stall := p.Mem.Flush(addr)
	p.Stats.WaitCycles += uint64(stall)
	p.advance(f)
	return 1 + stall, nil
}

func microLdio(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	if p.IO == nil {
		return 0, fmt.Errorf("proc %d: %v with no I/O port at pc=%d", p.ID, u.Op, f.PC)
	}
	e := p.Engine
	addr := uint32(int32(uint32(e.Reg(u.Rs1))) + u.Imm)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	w, stall, err := p.IO.LoadIO(addr)
	if err != nil {
		return 0, err
	}
	e.SetReg(u.Rd, w)
	p.advance(f)
	p.Stats.WaitCycles += uint64(stall)
	return 1 + stall, nil
}

func microStio(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	if p.IO == nil {
		return 0, fmt.Errorf("proc %d: %v with no I/O port at pc=%d", p.ID, u.Op, f.PC)
	}
	e := p.Engine
	addr := uint32(int32(uint32(e.Reg(u.Rs1))) + u.Imm)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	stall, err := p.IO.StoreIO(addr, e.Reg(u.Rd))
	if err != nil {
		return 0, err
	}
	p.advance(f)
	p.Stats.WaitCycles += uint64(stall)
	return 1 + stall, nil
}

func microTrap(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	pc := f.PC
	p.advance(f) // the service completes the instruction
	cycles, err := p.trap(core.Trap{Kind: core.TrapSyscall, PC: pc, Inst: u.Inst, Service: u.Imm})
	return 1 + cycles, err
}

func microHalt(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.Halted = true
	return 1, nil
}

func microInvalid(p *Processor, f *core.Frame, u *isa.Micro) (int, error) {
	return 0, fmt.Errorf("proc %d: unimplemented opcode %v at pc=%d", p.ID, u.Op, f.PC)
}
