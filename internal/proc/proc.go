package proc

import (
	"errors"
	"fmt"

	"april/internal/core"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/trace"
)

// Handler is the software side of the trap mechanism: the run-time
// system. When the processor traps, the pipeline empties and control
// passes to the handler, which executes in the same task frame as the
// trapped thread (so it can access the thread's registers through the
// engine). The handler returns the cycles it consumed; all trap-path
// cycle charging (the 5-cycle trap entry, the 6-cycle switch handler,
// the 23-cycle future-touch handler, ...) is the handler's
// responsibility, since it depends on the machine profile.
//
// PC contract: for a syscall trap the processor advances the PC past
// the trap instruction before invoking the handler (the service
// completes the instruction); for every other trap the PC still
// addresses the trapping instruction, so the default outcome is to
// retry it — the paper's "immediately return from the trap and retry
// the trapping instruction".
type Handler interface {
	HandleTrap(p *Processor, t core.Trap) (cycles int, err error)

	// Idle is invoked when the active task frame holds no thread. The
	// handler may load a thread (from its ready queue or by stealing
	// work) or report how many cycles the processor idles.
	Idle(p *Processor) (cycles int, err error)
}

// Common execution errors.
var (
	ErrHalted    = errors.New("proc: processor halted")
	ErrNoHandler = errors.New("proc: trap with no handler installed")
)

// Stats aggregates the cycle breakdown needed for the utilization
// analyses of Section 8: useful work, memory wait, trap/switch
// overhead, and idle time.
type Stats struct {
	Instructions uint64
	UsefulCycles uint64 // instruction execution
	WaitCycles   uint64 // processor held for memory (MHOLD)
	TrapCycles   uint64 // trap entry + handler + context switches
	IdleCycles   uint64 // no loaded thread could run
	Traps        [16]uint64
	LoadCount    uint64
	StoreCount   uint64
}

// TotalCycles is the sum of all categories.
func (s *Stats) TotalCycles() uint64 {
	return s.UsefulCycles + s.WaitCycles + s.TrapCycles + s.IdleCycles
}

// Utilization is the fraction of cycles doing useful work.
func (s *Stats) Utilization() float64 {
	t := s.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(s.UsefulCycles) / float64(t)
}

// Processor is one APRIL CPU: the core multithreading engine driven by
// the instruction interpreter, attached to a memory port and a trap
// handler.
type Processor struct {
	ID      int
	Engine  *core.Engine
	Prog    *isa.Program
	Mem     MemPort
	IO      IOPort
	Handler Handler

	Halted bool
	Stats  Stats

	// Trace, when non-nil, records trap events (and is shared with the
	// runtime and memory system for theirs). Tracing never changes
	// simulated behavior.
	Trace *trace.Tracer

	// The IPI queue is drained with a head index rather than by
	// reslicing: popping via pendingIPI = pendingIPI[1:] would both
	// strand delivered payloads in the backing array (keeping them
	// reachable) and force append to grow a fresh array once the
	// original capacity slides out of view. The head index reuses one
	// backing array for the lifetime of the processor, and PostIPI
	// compacts once the head passes half the slice so a queue that is
	// appended to while partially drained cannot grow without bound.
	pendingIPI []isa.Word
	ipiHead    int

	// micro, when non-nil, is the predecoded form of Prog: Step
	// dispatches through the flat handler table in dispatch.go instead
	// of the reference opcode switches. Installed by SetMicro; shared
	// read-only across the machine's processors.
	micro []isa.Micro

	// Kinds counts dispatched instructions by handler kind. All three
	// execution tiers (reference switch, predecoded table, fused
	// blocks) increment once per dispatch attempt, so the counts are
	// tier-invariant; they live outside Stats because they are
	// telemetry (the "isa" counter group), not part of the simulated
	// machine state the differential tests compare.
	Kinds [isa.NumMicroKinds]uint64

	// FusedOps counts dispatches executed inside StepFused windows,
	// InlineSteps the single Steps resolved by the superinstruction
	// handlers outside a window, and EpochOps the ops executed by
	// EpochStep inside multi-node epoch windows — compile-tier coverage
	// telemetry (the "compile" counter group), outside Stats for the
	// same reason as Kinds.
	FusedOps    uint64
	InlineSteps uint64
	EpochOps    uint64

	// Compile-tier state (see compile.go), installed by SetCompile:
	// the machine's block translation set, the run-termination flag the
	// fused loop must observe after every op, and — when the memory
	// port is a PerfectPort — the raw memory behind it, enabling both
	// flavored-access fusion and the plain-access fast path.
	blocks  *isa.BlockSet
	done    *bool
	perfMem *mem.Memory

	// epochPort, when non-nil, is the clock-free cache-hit slice of an
	// ALEWIFE memory port (see epoch.go), letting the superinstruction
	// handlers complete plain cached accesses without the full port
	// call — and letting epoch windows cross them.
	epochPort EpochPort
}

// New creates a processor over the given engine and program.
func New(id int, e *core.Engine, prog *isa.Program, memPort MemPort) *Processor {
	return &Processor{ID: id, Engine: e, Prog: prog, Mem: memPort}
}

// PostIPI queues an interprocessor interrupt; it is delivered as an
// asynchronous trap before the next instruction of whatever thread is
// running (Section 3.4).
func (p *Processor) PostIPI(payload isa.Word) {
	switch {
	case p.ipiHead == len(p.pendingIPI):
		// Queue drained: rewind so the backing array is reused.
		p.pendingIPI = p.pendingIPI[:0]
		p.ipiHead = 0
	case p.ipiHead > len(p.pendingIPI)/2:
		// The head passed the midpoint: slide the undelivered tail to
		// the front. Each payload moves at most once per crossing, so
		// the copy is amortized O(1) and the queue's footprint tracks
		// the undelivered count instead of the delivery history.
		n := copy(p.pendingIPI, p.pendingIPI[p.ipiHead:])
		p.pendingIPI = p.pendingIPI[:n]
		p.ipiHead = 0
	}
	p.pendingIPI = append(p.pendingIPI, payload)
}

// PendingIPIs reports queued, undelivered IPIs.
func (p *Processor) PendingIPIs() int { return len(p.pendingIPI) - p.ipiHead }

// ipiQueueLen reports the backing-queue length including delivered
// slots (tests use it to observe compaction).
func (p *Processor) ipiQueueLen() int { return len(p.pendingIPI) }

// SetMicro installs a predecoded program image (Prog.Predecode()).
// Step then dispatches through the flat handler table; passing nil
// reverts to the reference opcode-switch interpreter. The slice is
// shared read-only — every processor of a machine can use one image.
func (p *Processor) SetMicro(m []isa.Micro) { p.micro = m }

func (p *Processor) trap(t core.Trap) (int, error) {
	p.Stats.Traps[t.Kind]++
	if p.Handler == nil {
		return 0, fmt.Errorf("%w: %v", ErrNoHandler, t)
	}
	frame := p.Engine.FP() // the frame the trap was delivered in
	cycles, err := p.Handler.HandleTrap(p, t)
	p.Stats.TrapCycles += uint64(cycles)
	if err == nil {
		p.Trace.Emit(p.ID, trace.KTrap, int32(t.Kind), int32(t.PC), int32(cycles), int32(frame))
	}
	return cycles, err
}

// Step executes at most one instruction of the active task frame and
// returns the cycles consumed (instruction time, memory wait, trap
// handling, or idling). The caller (the node's cycle loop) advances
// simulated time by the return value.
//
// The body is organized as a fast dispatch path: Step runs once per
// simulated instruction machine-wide, so the common case — running
// thread, in-bounds PC, no pending IPI — resolves the active frame
// once, fetches by direct slice index (no call, no error wrapping),
// and falls through to execute. The rare cases divert to stepSlow.
func (p *Processor) Step() (int, error) {
	if p.Halted || p.ipiHead < len(p.pendingIPI) {
		return p.stepSlow()
	}
	f := p.Engine.Active()
	if f.ThreadID < 0 {
		return p.stepSlow()
	}
	if m := p.micro; m != nil {
		if uint64(f.PC) >= uint64(len(m)) {
			return 0, p.pcBoundsErr(f, len(m))
		}
		u := &m[f.PC]
		p.Kinds[u.Kind]++
		if p.blocks != nil {
			// Compiled tier armed: a single op at the correct cycle may
			// run through the superinstruction handlers even outside a
			// fused window — it is the same state transformation at the
			// same interleaving point, just without the dispatch-table
			// indirection (and, for plain perfect-memory accesses, the
			// port call). Multi-stepper cycles, which can never fuse,
			// still get the tier's per-op win this way.
			if p.fusedOp(f, u) {
				p.InlineSteps++
				p.Stats.Instructions++
				p.Stats.UsefulCycles++
				return 1, nil
			}
		}
		return microTable[u.Kind](p, f, u)
	}
	code := p.Prog.Code
	if uint64(f.PC) >= uint64(len(code)) {
		return 0, p.pcBoundsErr(f, len(code))
	}
	return p.execute(f, code[f.PC])
}

// pcBoundsErr is the out-of-bounds-PC error shared by all three
// execution tiers (reference switch, predecoded table, fused blocks).
func (p *Processor) pcBoundsErr(f *core.Frame, progLen int) error {
	return fmt.Errorf("proc %d frame %d thread %d: isa: PC %d outside program of %d instructions",
		p.ID, p.Engine.FP(), f.ThreadID, f.PC, progLen)
}

// stepSlow handles the uncommon Step cases: a halted processor, a
// pending asynchronous trap, or an empty task frame.
func (p *Processor) stepSlow() (int, error) {
	if p.Halted {
		return 0, ErrHalted
	}

	// Deliver one pending asynchronous trap first.
	if p.ipiHead < len(p.pendingIPI) {
		payload := p.pendingIPI[p.ipiHead]
		p.ipiHead++
		f := p.Engine.Active()
		return p.trap(core.Trap{Kind: core.TrapIPI, PC: f.PC, Value: payload})
	}

	// An empty frame means the scheduler must find work.
	if p.Handler == nil {
		return 0, fmt.Errorf("%w: idle with no handler", ErrNoHandler)
	}
	cycles, err := p.Handler.Idle(p)
	p.Stats.IdleCycles += uint64(cycles)
	return cycles, err
}

// advance moves the active frame's PC chain past the current
// instruction.
func (p *Processor) advance(f *core.Frame) {
	f.PC++
	f.NPC = f.PC + 1
}

func (p *Processor) execute(f *core.Frame, inst isa.Inst) (int, error) {
	p.Kinds[isa.KindOf(inst.Op)]++
	e := p.Engine
	switch inst.Op.Class() {
	case isa.ClassNop:
		p.advance(f)
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		return 1, nil

	case isa.ClassCompute:
		return p.execCompute(f, inst)

	case isa.ClassLoad, isa.ClassStore:
		return p.execMemory(f, inst)

	case isa.ClassBranch:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		if f.PSR.CondHolds(inst.Op.Cond()) {
			f.PC = uint32(int32(f.PC) + inst.Imm)
		} else {
			f.PC++
		}
		f.NPC = f.PC + 1
		return 1, nil

	case isa.ClassJmpl:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		target := inst.Imm
		if inst.Rs1 != isa.RZero {
			base := e.Reg(inst.Rs1)
			if !isa.IsFixnum(base) {
				return 1, fmt.Errorf("proc %d: jmpl through non-fixnum %#x at pc=%d", p.ID, base, f.PC)
			}
			target += isa.FixnumValue(base)
		}
		link := isa.MakeFixnum(int32(f.PC + 1))
		e.SetReg(inst.Rd, link)
		f.PC = uint32(target)
		f.NPC = f.PC + 1
		return 1, nil

	case isa.ClassFrame:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		switch inst.Op {
		case isa.OpIncFP:
			p.advance(f)
			e.IncFP()
		case isa.OpDecFP:
			p.advance(f)
			e.DecFP()
		case isa.OpRdFP:
			e.SetReg(inst.Rd, isa.MakeFixnum(int32(e.FP())))
			p.advance(f)
		case isa.OpStFP:
			p.advance(f)
			e.SetFP(int(isa.FixnumValue(e.Reg(inst.Rs1))))
		case isa.OpRdPSR:
			e.SetReg(inst.Rd, isa.Word(f.PSR))
			p.advance(f)
		case isa.OpWrPSR:
			f.PSR = core.PSR(e.Reg(inst.Rs1))
			p.advance(f)
		}
		return 1, nil

	case isa.ClassCacheOp:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		addr := uint32(int32(uint32(e.Reg(inst.Rs1))) + inst.Imm)
		stall := p.Mem.Flush(addr)
		p.Stats.WaitCycles += uint64(stall)
		p.advance(f)
		return 1 + stall, nil

	case isa.ClassIO:
		return p.execIO(f, inst)

	case isa.ClassTrap:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		pc := f.PC
		p.advance(f) // the service completes the instruction
		cycles, err := p.trap(core.Trap{Kind: core.TrapSyscall, PC: pc, Inst: inst, Service: inst.Imm})
		return 1 + cycles, err

	case isa.ClassHalt:
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		p.Halted = true
		return 1, nil
	}
	return 0, fmt.Errorf("proc %d: unimplemented opcode %v at pc=%d", p.ID, inst.Op, f.PC)
}

func (p *Processor) execCompute(f *core.Frame, inst isa.Inst) (int, error) {
	e := p.Engine
	a := e.Reg(inst.Rs1)
	var b isa.Word
	if inst.UseImm {
		b = isa.Word(inst.Imm)
	} else {
		b = e.Reg(inst.Rs2)
	}

	// Hardware future detection (Section 4): strict operations trap if
	// an operand has its LSB set.
	if inst.Op.Strict() && f.PSR&core.PSRFutureTrap != 0 {
		if isa.IsFuture(a) {
			return p.trap(core.Trap{Kind: core.TrapFuture, PC: f.PC, Inst: inst, Value: a, Reg: inst.Rs1})
		}
		if !inst.UseImm && isa.IsFuture(b) {
			return p.trap(core.Trap{Kind: core.TrapFuture, PC: f.PC, Inst: inst, Value: b, Reg: inst.Rs2})
		}
	}

	var (
		r          isa.Word
		carry, ovf bool
	)
	switch inst.Op {
	case isa.OpAdd, isa.OpAddCC, isa.OpRawAdd:
		sum := uint64(a) + uint64(b)
		r = isa.Word(sum)
		carry = sum>>32 != 0
		ovf = (a>>31 == b>>31) && (r>>31 != a>>31)
	case isa.OpSub, isa.OpSubCC, isa.OpRawSub:
		r = a - b
		carry = a < b
		ovf = (a>>31 != b>>31) && (r>>31 != a>>31)
	case isa.OpAnd, isa.OpAndCC, isa.OpRawAnd:
		r = a & b
	case isa.OpOr, isa.OpOrCC:
		r = a | b
	case isa.OpXor, isa.OpXorCC:
		r = a ^ b
	case isa.OpSll:
		r = a << (uint32(b) & 31)
	case isa.OpSrl:
		r = a >> (uint32(b) & 31)
	case isa.OpSra:
		r = isa.Word(int32(a) >> (uint32(b) & 31))
	case isa.OpMul:
		r = isa.Word(int32(a) * int32(b))
	case isa.OpDiv:
		if b == 0 {
			return 1, fmt.Errorf("proc %d: division by zero at pc=%d", p.ID, f.PC)
		}
		r = isa.Word(int32(a) / int32(b))
	case isa.OpMod:
		if b == 0 {
			return 1, fmt.Errorf("proc %d: modulo by zero at pc=%d", p.ID, f.PC)
		}
		r = isa.Word(int32(a) % int32(b))
	case isa.OpTagCmp:
		// Z <- (tag of rs1 == imm). Fixnums use the two-bit tag.
		var match bool
		if b&isa.TagMask3 == isa.FixnumTag {
			match = a&isa.TagMask2 == isa.FixnumTag
		} else {
			match = a&isa.TagMask3 == b&isa.TagMask3
		}
		f.PSR = f.PSR.WithCC(false, match, false, false)
		p.advance(f)
		p.Stats.Instructions++
		p.Stats.UsefulCycles++
		return 1, nil
	case isa.OpMovI:
		r = isa.Word(inst.Imm)
	default:
		return 0, fmt.Errorf("proc %d: unimplemented compute op %v", p.ID, inst.Op)
	}

	if inst.Op.SetsCC() {
		f.PSR = f.PSR.WithCC(int32(r) < 0, r == 0, ovf, carry)
	}
	e.SetReg(inst.Rd, r)
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	return 1, nil
}

func (p *Processor) execMemory(f *core.Frame, inst isa.Inst) (int, error) {
	e := p.Engine
	base := e.Reg(inst.Rs1)
	offset := inst.Imm
	var index isa.Word
	if !inst.UseImm {
		index = e.Reg(inst.Rs2)
	}

	// Address-operand future detection: "memory instructions also trap
	// if the least significant bit of either of their address operands
	// are non-zero", providing implicit touches for car/cdr (Section 4).
	if f.PSR&core.PSRFutureTrap != 0 {
		if isa.IsFuture(base) {
			return p.trap(core.Trap{Kind: core.TrapAddrFuture, PC: f.PC, Inst: inst, Value: base, Reg: inst.Rs1})
		}
		if !inst.UseImm && isa.IsFuture(index) {
			return p.trap(core.Trap{Kind: core.TrapAddrFuture, PC: f.PC, Inst: inst, Value: index, Reg: inst.Rs2})
		}
	}

	ea := uint32(int32(uint32(base)) + int32(uint32(index)) + offset)
	if ea%4 != 0 {
		return p.trap(core.Trap{Kind: core.TrapAlign, PC: f.PC, Inst: inst, Addr: ea})
	}

	store := inst.Op.IsStore()
	flavor := inst.Op.Flavor()
	var value isa.Word
	if store {
		value = e.Reg(inst.Rd)
	}

	res, err := p.Mem.Access(ea, flavor, store, value)
	if err != nil {
		return 0, fmt.Errorf("proc %d pc=%d: %w", p.ID, f.PC, err)
	}
	if res.Retry {
		// Wait-on-miss flavor with the data still in flight: hold the
		// processor (MHOLD) and re-execute.
		stall := res.Stall
		if stall < 1 {
			stall = 1
		}
		p.Stats.WaitCycles += uint64(stall)
		return stall, nil
	}
	switch res.Outcome {
	case SyncFault:
		kind := core.TrapEmpty
		if store {
			kind = core.TrapFullStore
		}
		return p.trap(core.Trap{Kind: kind, PC: f.PC, Inst: inst, Addr: ea, Store: store})
	case RemoteMiss:
		return p.trap(core.Trap{Kind: core.TrapCacheMiss, PC: f.PC, Inst: inst, Addr: ea, Store: store})
	}

	// Completed. Non-trapping flavors expose the prior full/empty state
	// through the condition bit for Jfull/Jempty.
	f.PSR = f.PSR.WithFull(res.Full)
	if store {
		p.Stats.StoreCount++
	} else {
		e.SetReg(inst.Rd, res.Value)
		p.Stats.LoadCount++
	}
	p.advance(f)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	p.Stats.WaitCycles += uint64(res.Stall)
	return 1 + res.Stall, nil
}

func (p *Processor) execIO(f *core.Frame, inst isa.Inst) (int, error) {
	if p.IO == nil {
		return 0, fmt.Errorf("proc %d: %v with no I/O port at pc=%d", p.ID, inst.Op, f.PC)
	}
	e := p.Engine
	addr := uint32(int32(uint32(e.Reg(inst.Rs1))) + inst.Imm)
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	if inst.Op == isa.OpLdio {
		w, stall, err := p.IO.LoadIO(addr)
		if err != nil {
			return 0, err
		}
		e.SetReg(inst.Rd, w)
		p.advance(f)
		p.Stats.WaitCycles += uint64(stall)
		return 1 + stall, nil
	}
	stall, err := p.IO.StoreIO(addr, e.Reg(inst.Rd))
	if err != nil {
		return 0, err
	}
	p.advance(f)
	p.Stats.WaitCycles += uint64(stall)
	return 1 + stall, nil
}

// Run steps the processor until it halts, errs, or exceeds maxCycles.
// It returns the simulated cycle count. Intended for single-processor
// programs and tests; multiprocessor configurations are driven in
// lockstep by package sim.
func (p *Processor) Run(maxCycles uint64) (uint64, error) {
	var now uint64
	for !p.Halted {
		c, err := p.Step()
		if err != nil {
			return now, err
		}
		if c <= 0 {
			c = 1
		}
		now += uint64(c)
		if now > maxCycles {
			return now, fmt.Errorf("proc %d: exceeded cycle budget %d", p.ID, maxCycles)
		}
	}
	return now, nil
}
