package proc

import (
	"errors"
	"testing"
	"testing/quick"

	"april/internal/core"
	"april/internal/isa"
	"april/internal/mem"
)

// recordingHandler captures traps and can perform canned responses.
type recordingHandler struct {
	traps   []core.Trap
	onTrap  func(p *Processor, t core.Trap) (int, error)
	onIdle  func(p *Processor) (int, error)
	idleCnt int
}

func (h *recordingHandler) HandleTrap(p *Processor, t core.Trap) (int, error) {
	h.traps = append(h.traps, t)
	if h.onTrap != nil {
		return h.onTrap(p, t)
	}
	return 0, errors.New("unexpected trap: " + t.String())
}

func (h *recordingHandler) Idle(p *Processor) (int, error) {
	h.idleCnt++
	if h.onIdle != nil {
		return h.onIdle(p)
	}
	return 0, errors.New("unexpected idle")
}

// newProc builds a single-frame-active processor around code.
func newProc(t *testing.T, code []isa.Inst) (*Processor, *mem.Memory) {
	t.Helper()
	m := mem.New(1 << 16)
	e := core.NewEngine(4, core.TrapEntryCycles+core.SwitchHandlerCyclesSPARC)
	e.Frames[0].ThreadID = 1
	e.Frames[0].PSR |= core.PSRFutureTrap
	prog := &isa.Program{Code: code}
	p := New(0, e, prog, &PerfectPort{Mem: m})
	return p, m
}

func run(t *testing.T, p *Processor) {
	t.Helper()
	if _, err := p.Run(1 << 20); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestArithLoop(t *testing.T) {
	// sum = 0; for i = 10 downto 1: sum += i. Fixnum-tagged values, as
	// compiled code would use (raw odd integers would read as futures).
	one := int32(isa.MakeFixnum(1))
	code := []isa.Inst{
		isa.MovI(8, isa.MakeFixnum(10)), // r8 = i = 10
		isa.MovI(9, isa.MakeFixnum(0)),  // r9 = sum
		isa.R3(isa.OpAdd, 9, 9, 8),      // sum += i
		isa.RI(isa.OpSubCC, 8, 8, one),  // i--
		isa.Br(isa.OpBg, -2),            // loop while i > 0
		isa.Halt,
	}
	p, _ := newProc(t, code)
	run(t, p)
	if got := isa.FixnumValue(p.Engine.Reg(9)); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if !p.Halted {
		t.Error("not halted")
	}
}

func TestComputeOpsMatchGo(t *testing.T) {
	ops := []struct {
		op isa.Opcode
		f  func(a, b int32) int32
		ok func(a, b int32) bool
	}{
		{isa.OpAdd, func(a, b int32) int32 { return a + b }, nil},
		{isa.OpSub, func(a, b int32) int32 { return a - b }, nil},
		{isa.OpAnd, func(a, b int32) int32 { return a & b }, nil},
		{isa.OpOr, func(a, b int32) int32 { return a | b }, nil},
		{isa.OpXor, func(a, b int32) int32 { return a ^ b }, nil},
		{isa.OpMul, func(a, b int32) int32 { return a * b }, nil},
		{isa.OpDiv, func(a, b int32) int32 { return a / b }, func(a, b int32) bool { return b != 0 && !(a == -2147483648 && b == -1) }},
		{isa.OpMod, func(a, b int32) int32 { return a % b }, func(a, b int32) bool { return b != 0 && !(a == -2147483648 && b == -1) }},
		{isa.OpSll, func(a, b int32) int32 { return a << (uint32(b) & 31) }, nil},
		{isa.OpSrl, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }, nil},
		{isa.OpSra, func(a, b int32) int32 { return a >> (uint32(b) & 31) }, nil},
	}
	for _, o := range ops {
		o := o
		f := func(a, b int32) bool {
			// Avoid LSB-set operands: strict ops trap on "futures".
			a &^= 1
			b &^= 1
			if o.ok != nil && !o.ok(a, b) {
				return true
			}
			code := []isa.Inst{
				isa.MovI(8, isa.Word(a)),
				isa.MovI(9, isa.Word(b)),
				isa.R3(o.op, 10, 8, 9),
				isa.Halt,
			}
			p, _ := newProc(t, code)
			if _, err := p.Run(100); err != nil {
				return false
			}
			return int32(p.Engine.Reg(10)) == o.f(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", o.op.Name(), err)
		}
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	code := []isa.Inst{
		isa.MovI(8, 10),
		isa.RI(isa.OpDiv, 9, 8, 0),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	if _, err := p.Run(100); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestJmplCallReturn(t *testing.T) {
	// main: call f; after return r9 = r8+1; halt. f: r8 = 42; return.
	code := []isa.Inst{
		isa.Jmpl(isa.RLink, isa.RZero, 3), // 0: call f (at 3)
		isa.RI(isa.OpAdd, 9, 8, 2),        // 1: r9 = r8 + 2
		isa.Halt,                          // 2
		isa.MovI(8, 42),                   // 3: f
		isa.Jmpl(isa.RZero, isa.RLink, 0), // 4: return
	}
	p, _ := newProc(t, code)
	run(t, p)
	if got := uint32(p.Engine.Reg(9)); got != 44 {
		t.Errorf("r9 = %d, want 44", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	code := []isa.Inst{
		isa.MovI(8, 0x2000),
		isa.MovI(9, isa.Word(isa.MakeFixnum(7))),
		isa.St(isa.OpStnt, 8, 0, 9),
		isa.Ld(isa.OpLdnt, 10, 8, 0),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	run(t, p)
	if got := isa.FixnumValue(p.Engine.Reg(10)); got != 7 {
		t.Errorf("loaded %d, want 7", got)
	}
}

func TestIndexedAddressing(t *testing.T) {
	code := []isa.Inst{
		isa.MovI(8, 0x2000), // base
		isa.MovI(9, 8),      // index
		isa.MovI(10, 0x123<<2),
		isa.StX(isa.OpStnt, 8, 9, 10),
		isa.LdX(isa.OpLdnt, 11, 8, 9),
		isa.Halt,
	}
	p, m := newProc(t, code)
	run(t, p)
	if got := m.MustLoad(0x2008); got != 0x123<<2 {
		t.Errorf("memory at base+index = %#x", got)
	}
	if p.Engine.Reg(11) != 0x123<<2 {
		t.Errorf("indexed load got %#x", p.Engine.Reg(11))
	}
}

// TestLoadFlavors exercises Table 2 semantics end to end.
func TestLoadFlavors(t *testing.T) {
	const addr = 0x2000

	t.Run("trapping load of empty location traps", func(t *testing.T) {
		for _, op := range []isa.Opcode{isa.OpLdtt, isa.OpLdett, isa.OpLdtw, isa.OpLdetw} {
			code := []isa.Inst{isa.MovI(8, addr), isa.Ld(op, 9, 8, 0), isa.Halt}
			p, m := newProc(t, code)
			m.MustSetFE(addr, false)
			h := &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
				p.Halted = true // stop the test program
				return 0, nil
			}}
			p.Handler = h
			run(t, p)
			if len(h.traps) != 1 || h.traps[0].Kind != core.TrapEmpty {
				t.Errorf("%s: traps = %v, want one empty-location trap", op.Name(), h.traps)
			}
			if h.traps[0].Addr != addr {
				t.Errorf("%s: trap addr %#x", op.Name(), h.traps[0].Addr)
			}
		}
	})

	t.Run("non-trapping load of empty location sets condition bit", func(t *testing.T) {
		for _, op := range []isa.Opcode{isa.OpLdnt, isa.OpLdent, isa.OpLdnw, isa.OpLdenw} {
			code := []isa.Inst{isa.MovI(8, addr), isa.Ld(op, 9, 8, 0), isa.Halt}
			p, m := newProc(t, code)
			m.MustStore(addr, isa.MakeFixnum(5))
			m.MustSetFE(addr, false)
			run(t, p)
			if p.Engine.Frames[0].PSR.Full() {
				t.Errorf("%s: condition bit reads full for empty location", op.Name())
			}
			if isa.FixnumValue(p.Engine.Reg(9)) != 5 {
				t.Errorf("%s: load did not complete", op.Name())
			}
		}
	})

	t.Run("resetting loads empty the location", func(t *testing.T) {
		for _, op := range []isa.Opcode{isa.OpLdett, isa.OpLdent, isa.OpLdenw, isa.OpLdetw} {
			code := []isa.Inst{isa.MovI(8, addr), isa.Ld(op, 9, 8, 0), isa.Halt}
			p, m := newProc(t, code)
			run(t, p) // location starts full
			if m.MustFE(addr) {
				t.Errorf("%s: location still full after resetting load", op.Name())
			}
			if !p.Engine.Frames[0].PSR.Full() {
				t.Errorf("%s: condition bit should report prior (full) state", op.Name())
			}
		}
	})

	t.Run("non-resetting loads preserve the bit", func(t *testing.T) {
		for _, op := range []isa.Opcode{isa.OpLdtt, isa.OpLdnt, isa.OpLdnw, isa.OpLdtw} {
			code := []isa.Inst{isa.MovI(8, addr), isa.Ld(op, 9, 8, 0), isa.Halt}
			p, m := newProc(t, code)
			run(t, p)
			if !m.MustFE(addr) {
				t.Errorf("%s: load changed the full/empty bit", op.Name())
			}
		}
	})
}

func TestStoreFlavors(t *testing.T) {
	const addr = 0x2000

	t.Run("trapping store to full location traps", func(t *testing.T) {
		code := []isa.Inst{isa.MovI(8, addr), isa.St(isa.OpSttt, 8, 0, 9), isa.Halt}
		p, m := newProc(t, code)
		h := &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
			p.Halted = true
			return 0, nil
		}}
		p.Handler = h
		run(t, p) // location starts full
		if len(h.traps) != 1 || h.traps[0].Kind != core.TrapFullStore {
			t.Errorf("traps = %v, want full-location store trap", h.traps)
		}
		if m.MustLoad(addr) != 0 {
			t.Error("trapping store had side effects")
		}
	})

	t.Run("filling store sets the bit full", func(t *testing.T) {
		code := []isa.Inst{
			isa.MovI(8, addr),
			isa.MovI(9, isa.Word(isa.MakeFixnum(3))),
			isa.St(isa.OpStftt, 8, 0, 9), // traps on full, so empty it first below
			isa.Halt,
		}
		p, m := newProc(t, code)
		m.MustSetFE(addr, false)
		run(t, p)
		if !m.MustFE(addr) {
			t.Error("stftt did not fill the location")
		}
		if isa.FixnumValue(m.MustLoad(addr)) != 3 {
			t.Error("stftt did not store")
		}
	})

	t.Run("producer-consumer via Jempty/Jfull", func(t *testing.T) {
		// Writer fills an empty slot; reader tests with a non-trapping
		// load and branches on the condition bit.
		code := []isa.Inst{
			isa.MovI(8, addr),
			isa.Ld(isa.OpLdnt, 9, 8, 0), // probe
			isa.Br(isa.OpJfull, 4),      // full? -> consume at 5
			isa.MovI(10, isa.Word(isa.MakeFixnum(9))),
			isa.St(isa.OpStfnt, 8, 0, 10), // produce, fill
			isa.Br(isa.OpBa, -4),          // retry probe
			isa.Ld(isa.OpLdent, 11, 8, 0), // 6: consume & empty
			isa.Halt,
		}
		p, m := newProc(t, code)
		m.MustSetFE(addr, false)
		run(t, p)
		if isa.FixnumValue(p.Engine.Reg(11)) != 9 {
			t.Errorf("consumed %v", p.Engine.Reg(11))
		}
		if m.MustFE(addr) {
			t.Error("consuming load did not empty the slot")
		}
	})
}

func TestFutureDetectionOnCompute(t *testing.T) {
	fut := isa.MakeFuture(0x2000)
	code := []isa.Inst{
		isa.MovI(8, fut),
		isa.RI(isa.OpAdd, 9, 8, 4), // strict op on a future
		isa.Halt,
	}
	p, _ := newProc(t, code)
	var got core.Trap
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		got = tr
		p.Halted = true
		return 23, nil // paper's resolved future-touch handler cost
	}}
	run(t, p)
	if got.Kind != core.TrapFuture {
		t.Fatalf("trap = %v, want future trap", got)
	}
	if got.Value != fut || got.Reg != 8 {
		t.Errorf("trap value=%#x reg=%d", got.Value, got.Reg)
	}
	if p.Stats.TrapCycles != 23 {
		t.Errorf("TrapCycles = %d", p.Stats.TrapCycles)
	}
}

func TestFutureDetectionDisabled(t *testing.T) {
	// With PSRFutureTrap clear (the Encore profile), strict ops do not
	// trap on futures.
	fut := isa.MakeFuture(0x2000)
	code := []isa.Inst{
		isa.MovI(8, fut),
		isa.RI(isa.OpRawAdd, 9, 8, 0),
		isa.RI(isa.OpAdd, 10, 8, 4),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	p.Engine.Frames[0].PSR &^= core.PSRFutureTrap
	run(t, p)
	if p.Engine.Reg(9) != fut {
		t.Error("rawadd mangled the future")
	}
}

func TestRawOpsNeverTrapOnFutures(t *testing.T) {
	fut := isa.MakeFuture(0x2000)
	code := []isa.Inst{
		isa.MovI(8, fut),
		isa.RI(isa.OpRawAnd, 9, 8, 7), // extract tag
		isa.Halt,
	}
	p, _ := newProc(t, code) // future traps ENABLED
	run(t, p)
	if p.Engine.Reg(9) != isa.FutureTag {
		t.Errorf("tag = %#x, want future tag", p.Engine.Reg(9))
	}
}

func TestAddressFutureTrap(t *testing.T) {
	fut := isa.MakeFuture(0x2000)
	code := []isa.Inst{
		isa.MovI(8, fut),
		isa.Ld(isa.OpLdnt, 9, 8, 0), // dereference a future: implicit touch
		isa.Halt,
	}
	p, _ := newProc(t, code)
	var got core.Trap
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		got = tr
		p.Halted = true
		return 0, nil
	}}
	run(t, p)
	if got.Kind != core.TrapAddrFuture || got.Value != fut {
		t.Errorf("trap = %+v, want addr-future with the future pointer", got)
	}
}

func TestAlignmentTrap(t *testing.T) {
	code := []isa.Inst{
		isa.MovI(8, 0x2002), // even but not word aligned (not a future)
		isa.Ld(isa.OpLdnt, 9, 8, 0),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	var got core.Trap
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		got = tr
		p.Halted = true
		return 0, nil
	}}
	run(t, p)
	if got.Kind != core.TrapAlign || got.Addr != 0x2002 {
		t.Errorf("trap = %+v", got)
	}
}

func TestTagCmp(t *testing.T) {
	cases := []struct {
		v    isa.Word
		tag  isa.Word
		want bool
	}{
		{isa.MakeFixnum(5), isa.FixnumTag, true},
		{isa.MakeFixnum(-5), isa.FixnumTag, true},
		{isa.MakeCons(0x2000), isa.FixnumTag, false},
		{isa.MakeCons(0x2000), isa.ConsTag, true},
		{isa.MakeFuture(0x2000), isa.FutureTag, true},
		{isa.Nil, isa.OtherTag, true},
		{isa.MakeFixnum(4), isa.ConsTag, false}, // fixnum 4 = raw 0b10000
	}
	for _, c := range cases {
		code := []isa.Inst{
			isa.MovI(8, c.v),
			isa.RI(isa.OpTagCmp, 0, 8, int32(c.tag)),
			isa.Br(isa.OpBe, 3), // Z set -> matched
			isa.MovI(9, 0),
			isa.Halt,
			isa.MovI(9, 1),
			isa.Halt,
		}
		p, _ := newProc(t, code)
		run(t, p)
		if got := p.Engine.Reg(9) == 1; got != c.want {
			t.Errorf("tagcmp %#x vs tag %#x = %v, want %v", c.v, c.tag, got, c.want)
		}
	}
}

func TestFrameInstructions(t *testing.T) {
	code := []isa.Inst{
		isa.Inst{Op: isa.OpRdFP, Rd: 8}, // r8 = 0
		isa.Inst{Op: isa.OpIncFP},       // now in frame 1... but frame 1 has no thread
	}
	p, _ := newProc(t, code)
	// Give frame 1 a thread so Step doesn't go idle; have it halt.
	p.Engine.Frames[1].ThreadID = 2
	p.Engine.Frames[1].PC = 2
	full := append(code, isa.Halt)
	p.Prog = &isa.Program{Code: full}
	run(t, p)
	if p.Engine.FP() != 1 {
		t.Errorf("FP = %d after incfp", p.Engine.FP())
	}
	if isa.FixnumValue(p.Engine.Frames[0].R[8]) != 0 {
		t.Error("rdfp wrong")
	}
}

func TestSyscallAdvancesPCFirst(t *testing.T) {
	code := []isa.Inst{
		isa.Trap(7),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	var pcAtTrap uint32
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		pcAtTrap = p.Engine.Active().PC
		if tr.Service != 7 {
			t.Errorf("service = %d", tr.Service)
		}
		return 2, nil
	}}
	run(t, p)
	if pcAtTrap != 1 {
		t.Errorf("PC during syscall = %d, want 1 (advanced past trap)", pcAtTrap)
	}
}

func TestIPIDelivery(t *testing.T) {
	code := []isa.Inst{isa.Nop, isa.Halt}
	p, _ := newProc(t, code)
	p.PostIPI(isa.MakeFixnum(99))
	var got core.Trap
	p.Handler = &recordingHandler{onTrap: func(p *Processor, tr core.Trap) (int, error) {
		got = tr
		return 1, nil
	}}
	run(t, p)
	if got.Kind != core.TrapIPI || isa.FixnumValue(got.Value) != 99 {
		t.Errorf("IPI trap = %+v", got)
	}
	if p.PendingIPIs() != 0 {
		t.Error("IPI not consumed")
	}
}

func TestIdleInvokesHandler(t *testing.T) {
	code := []isa.Inst{isa.Halt}
	p, _ := newProc(t, code)
	p.Engine.Frames[0].ThreadID = -1 // no thread loaded
	h := &recordingHandler{onIdle: func(p *Processor) (int, error) {
		p.Halted = true
		return 3, nil
	}}
	p.Handler = h
	if _, err := p.Step(); err != nil {
		t.Fatal(err)
	}
	if h.idleCnt != 1 || p.Stats.IdleCycles != 3 {
		t.Errorf("idle count %d cycles %d", h.idleCnt, p.Stats.IdleCycles)
	}
}

func TestStatsBreakdown(t *testing.T) {
	code := []isa.Inst{
		isa.MovI(8, 0x2000),
		isa.Ld(isa.OpLdnt, 9, 8, 0),
		isa.St(isa.OpStnt, 8, 4, 9),
		isa.Halt,
	}
	p, _ := newProc(t, code)
	run(t, p)
	if p.Stats.Instructions != 4 {
		t.Errorf("instructions = %d", p.Stats.Instructions)
	}
	if p.Stats.LoadCount != 1 || p.Stats.StoreCount != 1 {
		t.Errorf("loads=%d stores=%d", p.Stats.LoadCount, p.Stats.StoreCount)
	}
	if p.Stats.UsefulCycles != 4 || p.Stats.TotalCycles() != 4 {
		t.Errorf("cycles = %+v", p.Stats)
	}
	if p.Stats.Utilization() != 1.0 {
		t.Errorf("utilization = %v", p.Stats.Utilization())
	}
}

func TestWildPCErrors(t *testing.T) {
	p, _ := newProc(t, []isa.Inst{isa.Br(isa.OpBa, 100)})
	if _, err := p.Run(100); err == nil {
		t.Error("wild PC did not error")
	}
}

func TestTrapWithoutHandlerErrors(t *testing.T) {
	code := []isa.Inst{isa.Trap(1)}
	p, _ := newProc(t, code)
	_, err := p.Run(100)
	if !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestHaltedProcessorStaysHalted(t *testing.T) {
	p, _ := newProc(t, []isa.Inst{isa.Halt})
	run(t, p)
	if _, err := p.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestPSRAndFPInstructions(t *testing.T) {
	// rdpsr/wrpsr round-trip the PSR through a general register;
	// stfp/decfp move the frame pointer.
	code := []isa.Inst{
		{Op: isa.OpRdPSR, Rd: 8},        // r8 = PSR (has PSRFutureTrap)
		isa.RI(isa.OpRawAdd, 9, 8, 0),   // copy
		{Op: isa.OpWrPSR, Rs1: 9},       // PSR = r9 (unchanged)
		isa.MovI(10, isa.MakeFixnum(2)), //
		{Op: isa.OpStFP, Rs1: 10},       // FP = 2
	}
	p, _ := newProc(t, code)
	p.Engine.Frames[2].ThreadID = 3
	p.Engine.Frames[2].PC = uint32(len(code))
	full := append(code, isa.Halt)
	p.Prog = &isa.Program{Code: full}
	run(t, p)
	if p.Engine.FP() != 2 {
		t.Errorf("FP = %d after stfp", p.Engine.FP())
	}
	if p.Engine.Frames[0].PSR&core.PSRFutureTrap == 0 {
		t.Error("wrpsr lost the future-trap bit")
	}
	if isa.Word(p.Engine.Frames[0].R[8])&isa.Word(core.PSRFutureTrap) == 0 {
		t.Error("rdpsr did not expose the future-trap bit")
	}
}

func TestDecFPWraps(t *testing.T) {
	code := []isa.Inst{{Op: isa.OpDecFP}}
	p, _ := newProc(t, code)
	p.Engine.Frames[3].ThreadID = 4
	p.Engine.Frames[3].PC = 1
	p.Prog = &isa.Program{Code: append(code, isa.Halt)}
	run(t, p)
	if p.Engine.FP() != 3 {
		t.Errorf("FP = %d after decfp from 0", p.Engine.FP())
	}
}

func TestRetryResultHoldsProcessor(t *testing.T) {
	// A port that reports Retry keeps re-executing the instruction
	// without trapping, charging wait cycles (the MHOLD path).
	m := mem.New(1 << 16)
	port := &retryPort{inner: &PerfectPort{Mem: m}, retries: 3}
	e := core.NewEngine(4, 11)
	e.Frames[0].ThreadID = 1
	code := []isa.Inst{
		isa.MovI(8, 0x2000),
		isa.Ld(isa.OpLdnw, 9, 8, 0),
		isa.Halt,
	}
	p := New(0, e, &isa.Program{Code: code}, port)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if port.retries != 0 {
		t.Errorf("%d retries left", port.retries)
	}
	if p.Stats.WaitCycles == 0 {
		t.Error("no wait cycles charged for the held processor")
	}
}

type retryPort struct {
	inner   MemPort
	retries int
}

func (r *retryPort) Access(addr uint32, f isa.MemFlavor, store bool, v isa.Word) (MemResult, error) {
	if r.retries > 0 {
		r.retries--
		return MemResult{Outcome: OK, Retry: true, Stall: 4}, nil
	}
	return r.inner.Access(addr, f, store, v)
}

func (r *retryPort) Flush(addr uint32) int { return 0 }

// TestIPIInterleavedPostDeliver hammers the head-index IPI queue with
// interleaved posts and deliveries: every payload must come out exactly
// once, in FIFO order, each delivered as a TrapIPI before the next
// instruction, and the queue must rewind (reusing its backing array)
// every time it drains.
func TestIPIInterleavedPostDeliver(t *testing.T) {
	code := []isa.Inst{
		isa.RI(isa.OpRawAdd, 8, 8, 1), // r8 counts retired instructions
		isa.Br(isa.OpBa, -1),
	}
	p, _ := newProc(t, code)
	var delivered []isa.Word
	h := &recordingHandler{
		onTrap: func(p *Processor, tr core.Trap) (int, error) {
			if tr.Kind != core.TrapIPI {
				return 0, errors.New("unexpected trap: " + tr.String())
			}
			delivered = append(delivered, tr.Value)
			return 1, nil
		},
	}
	p.Handler = h

	step := func() {
		t.Helper()
		if _, err := p.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	var want []isa.Word
	next := isa.Word(0)
	post := func(n int) {
		for i := 0; i < n; i++ {
			p.PostIPI(next)
			want = append(want, next)
			next++
		}
	}

	// Bursts of posts between varying numbers of steps, including
	// posting while earlier IPIs are still queued (head mid-array) and
	// full drains in between (head rewinds to a reused array).
	for round := 0; round < 50; round++ {
		post(round % 4)
		step() // delivers one IPI if queued, else retires an instruction
		if round%3 == 0 {
			post(1)
		}
		for p.PendingIPIs() > 0 {
			step()
		}
		if p.ipiHead != len(p.pendingIPI) {
			t.Fatalf("round %d: drained queue out of sync: head=%d len=%d",
				round, p.ipiHead, len(p.pendingIPI))
		}
		// The rewind itself happens on the next post: it must land at
		// slot 0 of the reused backing array.
		p.PostIPI(next)
		want = append(want, next)
		next++
		if p.ipiHead != 0 || len(p.pendingIPI) != 1 {
			t.Fatalf("round %d: post after drain did not rewind: head=%d len=%d",
				round, p.ipiHead, len(p.pendingIPI))
		}
		step()
	}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %d IPIs, want %d", len(delivered), len(want))
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivery %d = %d, want %d (FIFO order violated)", i, delivered[i], want[i])
		}
	}
	// The backing array must have stopped growing once it covered the
	// largest burst: capacity bounded by a small constant, not by the
	// total number of IPIs ever posted.
	if c := cap(p.pendingIPI); c > 8 {
		t.Fatalf("IPI backing array grew to %d; rewind is not reusing it", c)
	}
	if h.idleCnt != 0 {
		t.Fatalf("processor went idle %d times during the interleave", h.idleCnt)
	}
}
