// Package proc implements the APRIL processor: an instruction-level
// interpreter over the multithreading engine of package core, in the
// spirit of the paper's own APRIL simulator (Section 7, Figure 4). The
// processor executes one thread at full speed until a remote memory
// request or a failed synchronization attempt raises a trap, at which
// point the software handler (package rts) typically switch-spins to
// the next task frame.
package proc

import (
	"april/internal/isa"
	"april/internal/mem"
)

// Outcome classifies the result of a flavored memory access.
type Outcome uint8

const (
	// OK: the access completed (possibly after a modeled wait).
	OK Outcome = iota
	// SyncFault: the full/empty precondition of a trapping flavor
	// failed (load of empty / store to full). No side effects occurred.
	SyncFault
	// RemoteMiss: the access needs a network transaction. The cache
	// controller has begun the fetch and traps the processor so the
	// handler can context switch; the instruction retries later.
	RemoteMiss
)

// MemResult is the controller's reply to a data access.
type MemResult struct {
	Outcome Outcome
	Value   isa.Word // loaded value (valid for completed loads)
	Full    bool     // full/empty state observed before the access
	Stall   int      // extra cycles the processor is held (MHOLD)

	// Retry (with OK outcome) holds the processor for Stall cycles and
	// re-executes the instruction without trapping — the MHOLD path for
	// wait-on-miss flavors whose data has not arrived yet.
	Retry bool
}

// FEAccess performs a flavored load/store with full/empty semantics
// against m, the shared functional core of every memory port: check
// the synchronization precondition, perform the access, and apply the
// reset/set side effect.
func FEAccess(m *mem.Memory, addr uint32, f isa.MemFlavor, store bool, value isa.Word) (MemResult, error) {
	full, err := m.FE(addr)
	if err != nil {
		return MemResult{}, err
	}
	if f.TrapOnSync && (store == full) {
		// Load of empty (store==false, full==false) or store to full.
		return MemResult{Outcome: SyncFault, Full: full}, nil
	}
	prev, _, err := m.Access(addr, store, value)
	if err != nil {
		return MemResult{}, err
	}
	switch {
	case !store && f.ResetFE:
		m.MustSetFE(addr, false)
	case store && f.SetFE:
		m.MustSetFE(addr, true)
	}
	return MemResult{Outcome: OK, Value: prev, Full: full}, nil
}

// MemPort is the interface between the processor and its cache /
// directory controller. Implementations: PerfectPort (no memory
// hierarchy, the configuration the paper uses for the Table 3
// multiprocessor runs) and the cache+directory+network stack in
// package sim.
type MemPort interface {
	// Access performs a load (store=false) or store with the full/empty
	// semantics of flavor f. value is the store data.
	Access(addr uint32, f isa.MemFlavor, store bool, value isa.Word) (MemResult, error)

	// Flush writes back and invalidates the cache line holding addr
	// (the FLUSH out-of-band instruction). It returns the stall cycles.
	Flush(addr uint32) int
}

// IOPort models the memory-mapped I/O space reached by LDIO/STIO:
// the fence counter, interprocessor interrupts, and block transfers
// (Section 3.4).
type IOPort interface {
	LoadIO(addr uint32) (isa.Word, int, error)
	StoreIO(addr uint32, w isa.Word) (int, error)
}

// PerfectPort is a memory port with no cache and no latency: every
// access completes in the base instruction time. The paper's
// multiprocessor measurements for Table 3 "used the processor simulator
// without the cache and network simulators, in effect simulating a
// shared-memory machine with no memory latency"; this port is that
// configuration. Full/empty semantics are still exact.
type PerfectPort struct {
	Mem *mem.Memory
}

// Access implements MemPort.
func (p *PerfectPort) Access(addr uint32, f isa.MemFlavor, store bool, value isa.Word) (MemResult, error) {
	return FEAccess(p.Mem, addr, f, store, value)
}

// Flush implements MemPort; with no cache there is nothing to do.
func (p *PerfectPort) Flush(addr uint32) int { return 0 }
