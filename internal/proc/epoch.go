package proc

import (
	"april/internal/core"
	"april/internal/isa"
)

// Epoch execution, processor side. The machine's epoch engine (sim's
// epochWindow) proves a multi-cycle safe horizon for a whole group of
// nodes — no network delivery, IPI, wake, sampler boundary, or watchdog
// watermark falls inside the window — and then advances every node
// through it in lockstep, one EpochStep per node per simulated cycle,
// without per-cycle fabric ticks or barriers. EpochStep may therefore
// execute only ops whose effects are provably confined to this
// processor for the cycle: the trap-free superinstruction handlers
// (fusedOp) plus — on a machine with a real memory system — plain
// flavored accesses that hit the local cache with the required
// permission, which the coherence protocol's exclusive-copy guarantee
// confines to words no other node may validly observe this cycle.
// Anything else (traps, syscalls, misses, flushes, I/O, halts, IPIs,
// strict-future operands, full/empty flavors) makes EpochStep refuse
// with no state touched; the machine then falls back to the per-op
// path at that exact cycle, preserving reference interleaving.

// EpochPort is implemented by memory ports that can complete a plain
// flavored access as a clock-free cache hit. It is the narrow slice of
// the ALEWIFE cache controller the epoch engine (and the per-op
// superinstruction path) may drive without a fabric clock: a hit with
// sufficient permission reads or writes the coherence-protected word
// and costs one cycle with zero stall, exactly like the full
// MemPort.Access hit path.
type EpochPort interface {
	// EpochHit completes a plain (no full/empty side effects) load or
	// store iff it is a cache hit with the required permission.
	// ok=false means the access was not a provable hit and NO state was
	// touched; the caller re-executes through the full port. On ok, prev
	// is the word's prior value (the load result) and full its observed
	// full/empty bit, mirroring FEAccess.
	EpochHit(addr uint32, store bool, value isa.Word) (prev isa.Word, full bool, ok bool)
}

// SetEpochPort installs (or, with nil, removes) the clock-free
// cache-hit port. Like the compiled tier it extends, the port changes
// host-side dispatch only: every access it completes is bit-identical
// to the same access through Mem.Access.
func (p *Processor) SetEpochPort(ep EpochPort) { p.epochPort = ep }

// epochMem is fusedMem's counterpart for a machine with a real memory
// system: a plain-flavored load/store that hits the local cache with
// sufficient permission. It mirrors microMem + the controller's hit
// path exactly for the case it handles; any special condition (flavor
// side effects, future-tagged address operands, misalignment, a miss,
// an upgrade) returns false with no state touched, and the caller
// re-executes through the full path. On a hit the op retired at cost
// 1; Instructions/UsefulCycles accounting is the caller's (fusedOp
// contract).
func (p *Processor) epochMem(f *core.Frame, u *isa.Micro) bool {
	ep := p.epochPort
	if ep == nil {
		return false
	}
	fl := u.Flavor
	if fl.TrapOnSync || fl.SetFE || fl.ResetFE {
		return false
	}
	e := p.Engine
	base := e.Reg(u.Rs1)
	var index isa.Word
	if !u.UseImm {
		index = e.Reg(u.Rs2)
	}
	if f.PSR&core.PSRFutureTrap != 0 && (isa.IsFuture(base) || isa.IsFuture(index)) {
		return false
	}
	ea := uint32(int32(uint32(base)) + int32(uint32(index)) + u.Imm)
	if ea%4 != 0 {
		return false
	}
	var value isa.Word
	if u.Store {
		value = e.Reg(u.Rd)
	}
	prev, full, ok := ep.EpochHit(ea, u.Store, value)
	if !ok {
		return false
	}
	f.PSR = f.PSR.WithFull(full)
	if u.Store {
		p.Stats.StoreCount++
	} else {
		e.SetReg(u.Rd, prev)
		p.Stats.LoadCount++
	}
	p.advance(f)
	return true
}

// EpochStep executes the processor's next op iff it is epoch-safe: a
// running thread at an in-bounds PC whose op the superinstruction
// handlers complete without trapping, erroring, or reaching outside
// the node. It returns false with NO state touched otherwise — the
// machine then stops the epoch window before this cycle and resumes
// per-op stepping, so the refused op executes at its exact reference
// cycle through Step. On success the op retired at cost 1 with the
// same state transformation, stats, and dispatch accounting (Kinds) as
// a plain Step.
func (p *Processor) EpochStep() bool {
	if p.Halted || p.ipiHead < len(p.pendingIPI) {
		return false
	}
	f := p.Engine.Active()
	if f.ThreadID < 0 {
		return false
	}
	m := p.micro
	if p.blocks == nil || uint64(f.PC) >= uint64(len(m)) {
		return false
	}
	u := &m[f.PC]
	if !p.fusedOp(f, u) {
		return false
	}
	// Dispatch accounting after the fact: a refused op must leave Kinds
	// untouched (Step will count its own dispatch), while a completed op
	// counts exactly once, keeping the counters tier-invariant.
	p.Kinds[u.Kind]++
	p.EpochOps++
	p.Stats.Instructions++
	p.Stats.UsefulCycles++
	return true
}
