package proc

// The compiled execution tier: profile-guided basic-block
// superinstructions over the predecoded image (see isa.BlockSet for
// discovery/translation). The machine calls StepFused instead of Step
// when it can prove the processor is *isolated* for a window of cycles
// — no other node steps and no network event fires — so executing many
// instructions back-to-back is observably identical to interleaving
// them with the machine loop. Within the window, translated blocks run
// with the per-instruction fetch, PC-bounds, halt and IPI checks
// hoisted to block entry; everything else (traps, syscalls, cold PCs)
// still executes through the per-op dispatch table, so the tier is a
// pure scheduling change plus a specialized memory fast path.
//
// Exactness contract (held by the differential matrices in
// internal/sim): every op observes the same machine state, trap
// payloads, stats increments, and — via the threaded clock — the same
// timestamps as the per-op path; the fused loop stops at anything
// whose effect could reach outside the processor before the window
// ends (run termination, IPI self-posts, halts, cache/IO traffic on
// non-perfect memory).

import (
	"april/internal/core"
	"april/internal/isa"
	"april/internal/mem"
)

// memTouchKinds marks ops that reach the memory or I/O port. On a
// machine with a cache/network fabric these must not execute inside a
// fused window (a miss would stamp network messages mid-window), so
// the fused loop stops before them unless the port is perfect memory.
var memTouchKinds = [isa.NumMicroKinds]bool{
	isa.MMem: true, isa.MFlush: true, isa.MLdio: true, isa.MStio: true,
}

// frameSwitchKinds marks the ops that move the engine's frame pointer
// (Engine.IncFP/DecFP/SetFP). These are the only retiring ops after
// which the active-frame pointer cached by the fused block loop can be
// stale; every other retiring op leaves the frame in place with PC
// advanced past the op.
var frameSwitchKinds = [isa.NumMicroKinds]bool{
	isa.MIncFP: true, isa.MDecFP: true, isa.MStFP: true,
}

// SetCompile arms (or, with a nil set, disarms) the fused-block tier.
// done is the machine's run-termination flag ("main returned"): the
// fused loop re-checks it after every op so it never executes past the
// cycle where the machine would have stopped. When the memory port is
// a PerfectPort the raw memory is captured for the plain-access fast
// path and memory/IO ops become fusable.
func (p *Processor) SetCompile(bs *isa.BlockSet, done *bool) {
	p.blocks = bs
	p.done = done
	p.perfMem = nil
	if bs == nil {
		return
	}
	if pp, ok := p.Mem.(*PerfectPort); ok {
		p.perfMem = pp.Mem
	}
}

// CompileArmed reports whether the fused tier is installed.
func (p *Processor) CompileArmed() bool { return p.blocks != nil }

// Blocks exposes the installed translation set (telemetry and tests).
func (p *Processor) Blocks() *isa.BlockSet { return p.blocks }

// StepFused executes as many instructions as fit in budget cycles,
// assuming the caller proved the processor isolated for that window.
// clock points at the machine's cycle counter: it is advanced to each
// op's start cycle before the op runs (trap handlers and tracers read
// it) and restored before returning.
//
// Returns:
//   - ran: at least one op was dispatched. When false the caller must
//     fall back to a normal Step (the state was not touched).
//   - consumed: total cycles executed; the caller treats the window
//     like one multi-cycle Step.
//   - lastRet: offset (from window start) of the last op that retired
//     an instruction, -1 if none — the machine's progress watermark.
//   - doneAt: offset of the op that set the done flag, -1 otherwise.
//     The machine must then account cycles exactly as if that op had
//     been the window's only step at offset doneAt.
//   - err: an execution error; consumed then counts only the cycles
//     before the erroring op, so the machine reports the same cycle
//     the per-op loop would have.
func (p *Processor) StepFused(budget uint64, clock *uint64) (ran bool, consumed uint64, lastRet, doneAt int64, err error) {
	base := *clock
	// Ops on the inline path (fusedOp hits)
	// accumulate retirement stats in locals; the flush keeps Stats exact
	// on every exit, including the error returns.
	var nret, fops uint64
	defer func() {
		*clock = base
		p.Stats.Instructions += nret
		p.Stats.UsefulCycles += nret
		p.FusedOps += fops
	}()
	lastRet, doneAt = -1, -1
	bs := p.blocks
	micro := p.micro
	plen := uint64(len(micro))
	e := p.Engine
	memOK := p.perfMem != nil
	var t uint64
outer:
	for t < budget {
		if p.Halted || p.ipiHead < len(p.pendingIPI) {
			break
		}
		f := e.Active()
		if f.ThreadID < 0 {
			break
		}
		pc := f.PC
		if uint64(pc) >= plen {
			break // the per-op tier reports the exact bounds error
		}
		if n := bs.Enter(pc); n > 0 {
			// Translated block: fetch and bounds checks are hoisted —
			// ops are micro[pc:pc+n] by construction. The inner loop
			// splits on retirement: an op that retired provably did not
			// trap, so no handler ran — Halted, the IPI queue, and the
			// done flag are unchanged, and the frame is unchanged too
			// unless the op itself switches frames. Those checks run
			// only on the trap/spin path.
			end := pc + uint32(n)
			q := pc
			ran = true
			for t < budget {
				u := &micro[q]
				p.Kinds[u.Kind]++
				fops++
				if p.fusedOp(f, u) {
					// Inline-path hit: retired, cost 1, no trap, no
					// frame switch, PC updated by the op itself.
					lastRet = int64(t)
					t++
					nret++
					q++
					if q >= end || f.PC != q {
						continue outer
					}
					continue
				}
				*clock = base + t
				before := p.Stats.Instructions
				var c int
				var eerr error
				if u.Kind == isa.MMem {
					c, eerr = microMem(p, f, u)
				} else {
					c, eerr = microTable[u.Kind](p, f, u)
				}
				if eerr != nil {
					return true, t, lastRet, doneAt, eerr
				}
				if p.Stats.Instructions != before {
					// Retired without trapping.
					lastRet = int64(t)
					if c == 0 {
						break outer
					}
					t += uint64(c)
					if frameSwitchKinds[u.Kind] {
						f = e.Active()
						if f.ThreadID < 0 {
							break outer
						}
					}
					q++
					if q >= end || f.PC != q {
						// Terminal control transfer or frame switch:
						// re-enter through translation.
						continue outer
					}
					continue
				}
				// Trapped or spun: a handler may have ended the run,
				// halted, posted an IPI, or switched frames.
				if p.done != nil && *p.done {
					doneAt = int64(t)
					t += uint64(c)
					break outer
				}
				if c == 0 {
					// A zero-cost step must not spin inside the window:
					// hand it back to the machine loop, which advances
					// time around it.
					break outer
				}
				t += uint64(c)
				if p.Halted || p.ipiHead < len(p.pendingIPI) {
					break outer
				}
				f = e.Active()
				if f.ThreadID < 0 {
					break outer
				}
				q++
				if q >= end || f.PC != q {
					continue outer
				}
			}
			break // budget exhausted mid-block
		}
		// Cold or unfusable PC: one op through the dispatch table.
		u := &micro[pc]
		if !memOK && memTouchKinds[u.Kind] {
			// Non-perfect memory: the full dispatch path could stamp
			// network messages mid-window, so only a provable clock-free
			// cache hit may run here. epochMem touches no state when it
			// refuses, and Kinds counts only completed dispatches (the
			// caller's fallback Step counts the refused one).
			if u.Kind == isa.MMem && p.epochMem(f, u) {
				p.Kinds[u.Kind]++
				fops++
				nret++
				lastRet = int64(t)
				t++
				ran = true
				continue
			}
			break
		}
		p.Kinds[u.Kind]++
		fops++
		*clock = base + t
		before := p.Stats.Instructions
		c, eerr := microTable[u.Kind](p, f, u)
		if eerr != nil {
			return true, t, lastRet, doneAt, eerr
		}
		ran = true
		if p.Stats.Instructions != before {
			lastRet = int64(t)
		}
		if p.done != nil && *p.done {
			doneAt = int64(t)
			t += uint64(c)
			break
		}
		if c == 0 {
			break
		}
		t += uint64(c)
	}
	return ran, t, lastRet, doneAt, nil
}

// fusedMem is the superinstruction path for a load/store with no
// full/empty side effects on the perfect-memory port — the dominant
// memory operation in the Table 3 workloads. It mirrors microMem +
// FEAccess exactly for the case it handles; any special condition
// (flavor side effects, future-tagged address operands, misalignment,
// out-of-range) returns false with no state touched, and the caller
// re-executes through the full path. On a hit the op retired at cost
// 1; Instructions/UsefulCycles accounting is the caller's (fusedOp
// contract).
func (p *Processor) fusedMem(f *core.Frame, u *isa.Micro) bool {
	mm := p.perfMem
	if mm == nil {
		return false
	}
	fl := u.Flavor
	if fl.TrapOnSync || fl.SetFE || fl.ResetFE {
		return false
	}
	e := p.Engine
	base := e.Reg(u.Rs1)
	var index isa.Word
	if !u.UseImm {
		index = e.Reg(u.Rs2)
	}
	if f.PSR&core.PSRFutureTrap != 0 && (isa.IsFuture(base) || isa.IsFuture(index)) {
		return false
	}
	ea := uint32(int32(uint32(base)) + int32(uint32(index)) + u.Imm)
	if ea%4 != 0 || !mm.InRange(ea) {
		return false
	}
	var value isa.Word
	if u.Store {
		value = e.Reg(u.Rd)
	}
	prev, full := mm.AccessPlain(ea/mem.WordBytes, u.Store, value)
	f.PSR = f.PSR.WithFull(full)
	if u.Store {
		p.Stats.StoreCount++
	} else {
		e.SetReg(u.Rd, prev)
		p.Stats.LoadCount++
	}
	p.advance(f)
	return true
}

// fusedOp executes one op through the superinstruction handlers: the
// trap-free register ops inline plus the plain perfect-memory
// load/store (fusedMem), skipping the dispatch-table indirection, the
// clock store (only trap handlers and tracers read it), and the per-op
// retirement compare. Every case is a line-for-line mirror of its
// dispatch.go handler minus the accounting the caller batches
// (Instructions, UsefulCycles — every op handled here retires at cost
// 1). Anything that could trap or error — a future-tagged strict
// operand, a non-fixnum jmpl base, div/mod (zero divisor), any memory
// special case — returns false with no state touched, and the caller
// re-executes through the full handler.
func (p *Processor) fusedOp(f *core.Frame, u *isa.Micro) bool {
	e := p.Engine
	switch u.Kind {
	case isa.MMem:
		// Perfect memory fuses through the plain-access fast path; an
		// ALEWIFE port fuses exactly the clock-free cache hits (the two
		// are mutually exclusive: perfMem and epochPort are never both
		// set).
		return p.fusedMem(f, u) || p.epochMem(f, u)
	case isa.MNop:
		f.PC++
		f.NPC = f.PC + 1
		return true
	case isa.MBranch:
		if f.PSR.CondHolds(u.Cond) {
			f.PC = uint32(int32(f.PC) + u.Imm)
		} else {
			f.PC++
		}
		f.NPC = f.PC + 1
		return true
	case isa.MAdd, isa.MSub, isa.MAnd, isa.MOr, isa.MXor,
		isa.MSll, isa.MSrl, isa.MSra, isa.MMul, isa.MTagCmp, isa.MMovI:
		a := e.Reg(u.Rs1)
		var b isa.Word
		if u.UseImm {
			b = isa.Word(u.Imm)
		} else {
			b = e.Reg(u.Rs2)
		}
		if u.Strict && f.PSR&core.PSRFutureTrap != 0 &&
			(isa.IsFuture(a) || (!u.UseImm && isa.IsFuture(b))) {
			return false // the full handler takes the future trap
		}
		var r isa.Word
		var carry, ovf bool
		switch u.Kind {
		case isa.MAdd:
			sum := uint64(a) + uint64(b)
			r = isa.Word(sum)
			carry = sum>>32 != 0
			ovf = (a>>31 == b>>31) && (r>>31 != a>>31)
		case isa.MSub:
			r = a - b
			carry = a < b
			ovf = (a>>31 != b>>31) && (r>>31 != a>>31)
		case isa.MAnd:
			r = a & b
		case isa.MOr:
			r = a | b
		case isa.MXor:
			r = a ^ b
		case isa.MSll:
			r = a << (uint32(b) & 31)
		case isa.MSrl:
			r = a >> (uint32(b) & 31)
		case isa.MSra:
			r = isa.Word(int32(a) >> (uint32(b) & 31))
		case isa.MMul:
			r = isa.Word(int32(a) * int32(b))
		case isa.MMovI:
			r = isa.Word(u.Imm)
		case isa.MTagCmp:
			// Z <- (tag of rs1 == imm). Fixnums use the two-bit tag.
			var match bool
			if b&isa.TagMask3 == isa.FixnumTag {
				match = a&isa.TagMask2 == isa.FixnumTag
			} else {
				match = a&isa.TagMask3 == b&isa.TagMask3
			}
			f.PSR = f.PSR.WithCC(false, match, false, false)
			f.PC++
			f.NPC = f.PC + 1
			return true
		}
		if u.SetsCC {
			f.PSR = f.PSR.WithCC(int32(r) < 0, r == 0, ovf, carry)
		}
		e.SetReg(u.Rd, r)
		f.PC++
		f.NPC = f.PC + 1
		return true
	case isa.MJmpl:
		target := u.Imm
		if u.Rs1 != isa.RZero {
			base := e.Reg(u.Rs1)
			if !isa.IsFixnum(base) {
				return false // the full handler reports the error
			}
			target += isa.FixnumValue(base)
		}
		e.SetReg(u.Rd, isa.MakeFixnum(int32(f.PC+1)))
		f.PC = uint32(target)
		f.NPC = f.PC + 1
		return true
	case isa.MRdPSR:
		e.SetReg(u.Rd, isa.Word(f.PSR))
		f.PC++
		f.NPC = f.PC + 1
		return true
	case isa.MWrPSR:
		f.PSR = core.PSR(e.Reg(u.Rs1))
		f.PC++
		f.NPC = f.PC + 1
		return true
	case isa.MRdFP:
		e.SetReg(u.Rd, isa.MakeFixnum(int32(e.FP())))
		f.PC++
		f.NPC = f.PC + 1
		return true
	}
	return false
}
