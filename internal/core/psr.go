// Package core implements the paper's primary contribution: the
// coarse-grain multithreading engine of the APRIL processor. It holds
// the user-visible processor state of Figure 2 — multiple task frames
// (each a register set plus a PC chain and a Processor State Register),
// eight always-visible global registers, and the current frame pointer
// (FP) — and performs the rapid context switch: let the pipeline empty,
// save the PC chain, and bump the FP to another task frame.
//
// The engine is deliberately independent of the instruction set
// interpreter (package proc) and of scheduling policy (package rts):
// the paper's thesis is exactly this separation — a small amount of
// processor hardware (task frames + cheap traps) with everything else
// migrated into the run-time software.
package core

import "april/internal/isa"

// PSR is the Processor State Register: a 32-bit register holding the
// condition codes, the full/empty condition bit used by Jfull/Jempty,
// and mode bits. It can be read into and written from the general
// registers (Section 3).
type PSR isa.Word

// PSR bit assignments.
const (
	PSRCarry    PSR = 1 << 0 // C: carry out of the ALU
	PSROverflow PSR = 1 << 1 // V: signed overflow
	PSRZero     PSR = 1 << 2 // Z: result was zero
	PSRNegative PSR = 1 << 3 // N: result was negative

	// PSRFull is the full/empty condition bit, set by non-trapping
	// memory instructions to the prior state of the accessed word and
	// dispatched on by Jfull/Jempty (Section 4). On the SPARC
	// implementation this is a coprocessor condition bit.
	PSRFull PSR = 1 << 4

	// PSRFutureTrap enables hardware future detection: when set,
	// strict compute instructions trap if an operand's LSB is set, and
	// memory instructions trap if an address operand's LSB is set.
	// The Encore baseline profile runs with this bit clear and relies
	// on compiled-in software checks instead.
	PSRFutureTrap PSR = 1 << 5
)

// CC reports the four integer condition codes.
func (p PSR) N() bool { return p&PSRNegative != 0 }
func (p PSR) Z() bool { return p&PSRZero != 0 }
func (p PSR) V() bool { return p&PSROverflow != 0 }
func (p PSR) C() bool { return p&PSRCarry != 0 }

// Full reports the full/empty condition bit.
func (p PSR) Full() bool { return p&PSRFull != 0 }

// WithCC returns p with the four condition codes replaced.
func (p PSR) WithCC(n, z, v, c bool) PSR {
	p &^= PSRNegative | PSRZero | PSROverflow | PSRCarry
	if n {
		p |= PSRNegative
	}
	if z {
		p |= PSRZero
	}
	if v {
		p |= PSROverflow
	}
	if c {
		p |= PSRCarry
	}
	return p
}

// WithFull returns p with the full/empty condition bit set to full.
func (p PSR) WithFull(full bool) PSR {
	if full {
		return p | PSRFull
	}
	return p &^ PSRFull
}

// CondHolds evaluates a branch condition against the PSR, following the
// SPARC integer condition code semantics the paper's implementation
// inherits.
func (p PSR) CondHolds(c isa.Cond) bool {
	n, z, v, cy := p.N(), p.Z(), p.V(), p.C()
	switch c {
	case isa.CondA:
		return true
	case isa.CondE:
		return z
	case isa.CondNE:
		return !z
	case isa.CondL:
		return n != v
	case isa.CondLE:
		return z || (n != v)
	case isa.CondG:
		return !(z || (n != v))
	case isa.CondGE:
		return n == v
	case isa.CondCS:
		return cy
	case isa.CondCC:
		return !cy
	case isa.CondFull:
		return p.Full()
	case isa.CondEmpty:
		return !p.Full()
	}
	return false
}
