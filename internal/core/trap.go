package core

import (
	"fmt"

	"april/internal/isa"
)

// TrapKind enumerates the exception conditions of Sections 3 and 4.
// On a trap the pipeline empties (TrapEntryCycles) and control passes
// to a software handler executing in the *same* task frame as the
// trapped thread, so the handler can see the thread's registers.
type TrapKind uint8

const (
	TrapNone TrapKind = iota

	// TrapFuture: a strict compute instruction found an operand with
	// its LSB set — a future used by a strict operator (Section 4,
	// "Future Detection and Compute Instructions").
	TrapFuture

	// TrapAddrFuture: a memory instruction found an address operand
	// with its LSB set. This implements implicit touches in operators
	// that dereference pointers (car/cdr) and doubles as the alignment
	// trap on the SPARC implementation.
	TrapAddrFuture

	// TrapAlign: a memory address was not word aligned (and not a
	// future). Objects are word-allocated, so this indicates a type
	// error in the running program.
	TrapAlign

	// TrapEmpty: a load with an EL-trap flavor touched an empty
	// location (full/empty synchronization fault).
	TrapEmpty

	// TrapFullStore: a store with a trap flavor touched a full
	// location.
	TrapFullStore

	// TrapCacheMiss: the cache controller signalled a miss requiring a
	// network request; the controller traps the processor so that the
	// handler can context switch (Section 6.1). Misses that can be
	// satisfied locally make the processor wait instead.
	TrapCacheMiss

	// TrapSyscall: the software trap instruction; the run-time system
	// dispatches on the service number.
	TrapSyscall

	// TrapIPI: an asynchronous interprocessor interrupt delivered via
	// the controller (Section 3.4).
	TrapIPI
)

var trapNames = [...]string{
	TrapNone:       "none",
	TrapFuture:     "future",
	TrapAddrFuture: "addr-future",
	TrapAlign:      "align",
	TrapEmpty:      "empty-location",
	TrapFullStore:  "full-location",
	TrapCacheMiss:  "cache-miss",
	TrapSyscall:    "syscall",
	TrapIPI:        "ipi",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return fmt.Sprintf("trap(%d)", uint8(k))
}

// Trap carries everything a software handler needs about an exception.
type Trap struct {
	Kind TrapKind
	PC   uint32   // address of the trapping instruction
	Inst isa.Inst // the trapping instruction itself (handlers decode it)

	// Value is the offending operand for future traps (the future
	// pointer itself), letting the handler find and resolve it — the
	// paper's handler decodes the trapping instruction to find the
	// register; we hand it the value directly and charge the decode
	// cost in cycles.
	Value isa.Word

	// Reg is the register holding Value (so a resolved future can be
	// replaced in place).
	Reg uint8

	// Addr is the effective address for memory traps.
	Addr uint32

	// Service is the service number of a syscall trap.
	Service int32

	// Store marks full/empty faults raised by stores.
	Store bool
}

func (t Trap) String() string {
	switch t.Kind {
	case TrapSyscall:
		return fmt.Sprintf("%v(service=%d) at pc=%d", t.Kind, t.Service, t.PC)
	case TrapEmpty, TrapFullStore, TrapCacheMiss, TrapAddrFuture, TrapAlign:
		return fmt.Sprintf("%v at pc=%d addr=%#x", t.Kind, t.PC, t.Addr)
	default:
		return fmt.Sprintf("%v at pc=%d", t.Kind, t.PC)
	}
}
