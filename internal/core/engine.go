package core

import (
	"fmt"

	"april/internal/isa"
)

// Timing constants from the paper.
const (
	// TrapEntryCycles: "We count 5 cycles for the trap mechanism to
	// allow the pipeline to empty and save relevant processor state
	// before passing control to the trap handler" (Section 6.1).
	TrapEntryCycles = 5

	// SwitchHandlerCyclesSPARC: the 6-instruction switch-spin trap
	// handler of Section 6.1 (rdpsr/save/save/wrpsr/jmpl/rett), for a
	// total context switch of 11 cycles on the SPARC implementation.
	SwitchHandlerCyclesSPARC = 6

	// SwitchCyclesCustom: "in a custom APRIL implementation ... a
	// four-cycle context switch" (Section 6.1). The custom switch does
	// not take the 5-cycle trap path.
	SwitchCyclesCustom = 4

	// DefaultFrames: the SPARC implementation has eight register
	// windows, two per task frame (user + trap window), yielding four
	// hardware task frames (Section 5).
	DefaultFrames = 4
)

// Frame is one hardware task frame (Figure 2): a register set together
// with a PC chain and a PSR. ThreadID is run-time bookkeeping recording
// which virtual thread is loaded in the frame (-1 when free); the set
// of task frames "acts like a cache on the virtual threads".
type Frame struct {
	R        [isa.NumFrameRegs]isa.Word
	PC, NPC  uint32
	PSR      PSR
	ThreadID int
}

// Reset clears the frame to the free state.
func (f *Frame) Reset() {
	*f = Frame{ThreadID: -1}
}

// Engine is the multithreading core: the task frames, the global
// register file, and the frame pointer, together with the context
// switch mechanics and their cycle accounting.
type Engine struct {
	Frames  []Frame
	Globals [isa.NumGlobalRegs]isa.Word
	fp      int

	// SwitchCycles is the full cost charged per context switch. The
	// SPARC profile is TrapEntryCycles + SwitchHandlerCyclesSPARC = 11;
	// the custom APRIL profile is 4.
	SwitchCycles int

	// OnSwitch, when non-nil, observes every context switch (from, to
	// frame indices). The simulator's tracer hooks it; it must not
	// mutate engine state.
	OnSwitch func(from, to int)

	// Stats.
	Switches uint64 // context switches performed
}

// NewEngine creates an engine with n task frames and the given context
// switch cost in cycles.
func NewEngine(n, switchCycles int) *Engine {
	if n < 1 {
		panic(fmt.Sprintf("core: need at least one task frame, got %d", n))
	}
	e := &Engine{
		Frames:       make([]Frame, n),
		SwitchCycles: switchCycles,
	}
	for i := range e.Frames {
		e.Frames[i].Reset()
	}
	return e
}

// FP returns the current frame pointer.
func (e *Engine) FP() int { return e.fp }

// SetFP sets the frame pointer directly (the STFP instruction).
func (e *Engine) SetFP(fp int) {
	e.fp = ((fp % len(e.Frames)) + len(e.Frames)) % len(e.Frames)
}

// IncFP and DecFP step the frame pointer modulo the number of task
// frames (the INCFP/DECFP instructions of Section 4). They move the
// pointer only; Switch is the full context switch with its cycle cost.
func (e *Engine) IncFP() { e.fp = (e.fp + 1) % len(e.Frames) }
func (e *Engine) DecFP() { e.fp = (e.fp - 1 + len(e.Frames)) % len(e.Frames) }

// Active returns the task frame designated by the FP.
func (e *Engine) Active() *Frame { return &e.Frames[e.fp] }

// Reg reads register n: 0..31 from the active frame (r0 reads as
// fixnum 0), 32..39 from the globals.
func (e *Engine) Reg(n uint8) isa.Word {
	switch {
	case n == isa.RZero:
		return 0
	case int(n) < isa.NumFrameRegs:
		return e.Frames[e.fp].R[n]
	default:
		return e.Globals[int(n)-isa.NumFrameRegs]
	}
}

// SetReg writes register n; writes to r0 are discarded.
func (e *Engine) SetReg(n uint8, w isa.Word) {
	switch {
	case n == isa.RZero:
	case int(n) < isa.NumFrameRegs:
		e.Frames[e.fp].R[n] = w
	default:
		e.Globals[int(n)-isa.NumFrameRegs] = w
	}
}

// Switch performs a context switch to the given frame: the pipeline
// empties, the PC chain of the current frame is saved (it lives in the
// frame already), and the FP moves. It returns the cycle cost.
//
// "A context switch simply involves letting the processor pipeline
// empty while saving the PC-chain and then changing the FP to point to
// another task frame" (Section 3).
func (e *Engine) Switch(to int) int {
	if to < 0 || to >= len(e.Frames) {
		panic(fmt.Sprintf("core: switch to invalid frame %d of %d", to, len(e.Frames)))
	}
	from := e.fp
	e.fp = to
	e.Switches++
	if e.OnSwitch != nil {
		e.OnSwitch(from, to)
	}
	return e.SwitchCycles
}

// SwitchNext switch-spins: context switch to the next task frame in
// sequence without unloading the current thread — the default response
// to cache-miss and synchronization traps in the paper's
// implementation (Section 6.1). Returns the cycle cost.
func (e *Engine) SwitchNext() int {
	return e.Switch((e.fp + 1) % len(e.Frames))
}

// LoadedThreads counts frames holding a live thread.
func (e *Engine) LoadedThreads() int {
	n := 0
	for i := range e.Frames {
		if e.Frames[i].ThreadID >= 0 {
			n++
		}
	}
	return n
}

// FindFrame returns the index of the frame holding thread id, or -1.
func (e *Engine) FindFrame(id int) int {
	for i := range e.Frames {
		if e.Frames[i].ThreadID == id {
			return i
		}
	}
	return -1
}

// FreeFrame returns the index of a frame with no loaded thread,
// preferring the frame after the current one (so a freshly loaded
// thread is the next switch target), or -1 if all frames are occupied.
func (e *Engine) FreeFrame() int {
	n := len(e.Frames)
	for d := 0; d < n; d++ {
		i := (e.fp + 1 + d) % n
		if e.Frames[i].ThreadID < 0 {
			return i
		}
	}
	return -1
}
