package core

import (
	"testing"
	"testing/quick"

	"april/internal/isa"
)

func TestPSRCondCodes(t *testing.T) {
	p := PSR(0).WithCC(true, false, true, false)
	if !p.N() || p.Z() || !p.V() || p.C() {
		t.Errorf("WithCC wrong: %b", p)
	}
	p = p.WithCC(false, true, false, true)
	if p.N() || !p.Z() || p.V() || !p.C() {
		t.Errorf("WithCC replace wrong: %b", p)
	}
}

func TestPSRFullBit(t *testing.T) {
	p := PSR(0)
	if p.Full() {
		t.Error("fresh PSR reads full")
	}
	p = p.WithFull(true)
	if !p.Full() || !p.CondHolds(isa.CondFull) || p.CondHolds(isa.CondEmpty) {
		t.Error("full bit / Jfull semantics wrong")
	}
	p = p.WithFull(false)
	if p.Full() || p.CondHolds(isa.CondFull) || !p.CondHolds(isa.CondEmpty) {
		t.Error("empty bit / Jempty semantics wrong")
	}
}

func TestCondHoldsSignedComparisons(t *testing.T) {
	// Emulate subcc a-b for a few pairs and check branch truth tables.
	sub := func(a, b int32) PSR {
		r := a - b
		n := r < 0
		z := r == 0
		v := (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0)
		c := uint32(a) < uint32(b)
		return PSR(0).WithCC(n, z, v, c)
	}
	cases := []struct{ a, b int32 }{
		{1, 2}, {2, 1}, {5, 5}, {-3, 4}, {4, -3}, {-7, -7}, {-2147483648, 1}, {2147483647, -1},
	}
	for _, cse := range cases {
		p := sub(cse.a, cse.b)
		checks := []struct {
			cond isa.Cond
			want bool
		}{
			{isa.CondE, cse.a == cse.b},
			{isa.CondNE, cse.a != cse.b},
			{isa.CondL, cse.a < cse.b},
			{isa.CondLE, cse.a <= cse.b},
			{isa.CondG, cse.a > cse.b},
			{isa.CondGE, cse.a >= cse.b},
			{isa.CondCS, uint32(cse.a) < uint32(cse.b)},
			{isa.CondA, true},
		}
		for _, ch := range checks {
			if got := p.CondHolds(ch.cond); got != ch.want {
				t.Errorf("a=%d b=%d cond=%v: got %v, want %v", cse.a, cse.b, ch.cond, got, ch.want)
			}
		}
	}
}

func TestCondHoldsProperty(t *testing.T) {
	f := func(a, b int32) bool {
		r := a - b
		v := (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0)
		p := PSR(0).WithCC(r < 0, r == 0, v, uint32(a) < uint32(b))
		return p.CondHolds(isa.CondL) == (a < b) &&
			p.CondHolds(isa.CondGE) == (a >= b) &&
			p.CondHolds(isa.CondLE) == (a <= b) &&
			p.CondHolds(isa.CondG) == (a > b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineRegisterFile(t *testing.T) {
	e := NewEngine(4, 11)
	// r0 is hardwired zero.
	e.SetReg(isa.RZero, isa.MakeFixnum(99))
	if e.Reg(isa.RZero) != 0 {
		t.Error("r0 not hardwired to zero")
	}
	// Frame registers are per-frame.
	e.SetReg(8, isa.MakeFixnum(1))
	e.Switch(1)
	if e.Reg(8) != 0 {
		t.Error("frame 1 sees frame 0's r8")
	}
	e.SetReg(8, isa.MakeFixnum(2))
	e.Switch(0)
	if isa.FixnumValue(e.Reg(8)) != 1 {
		t.Error("frame 0's r8 lost across switches")
	}
	// Globals are visible from every frame (Section 3).
	e.SetReg(isa.GAllocPtr, isa.MakeFixnum(7))
	e.Switch(3)
	if isa.FixnumValue(e.Reg(isa.GAllocPtr)) != 7 {
		t.Error("globals not shared across frames")
	}
}

func TestFPInstructions(t *testing.T) {
	e := NewEngine(4, 11)
	e.IncFP()
	if e.FP() != 1 {
		t.Errorf("IncFP -> %d", e.FP())
	}
	e.DecFP()
	e.DecFP()
	if e.FP() != 3 {
		t.Errorf("DecFP wraparound -> %d, want 3", e.FP())
	}
	e.SetFP(6) // modulo 4
	if e.FP() != 2 {
		t.Errorf("SetFP(6) -> %d, want 2", e.FP())
	}
	e.SetFP(-1)
	if e.FP() != 3 {
		t.Errorf("SetFP(-1) -> %d, want 3", e.FP())
	}
}

func TestSwitchCostAndStats(t *testing.T) {
	e := NewEngine(4, 11)
	if c := e.SwitchNext(); c != 11 {
		t.Errorf("switch cost %d, want 11 (SPARC profile)", c)
	}
	if e.FP() != 1 {
		t.Errorf("SwitchNext went to %d", e.FP())
	}
	ec := NewEngine(4, SwitchCyclesCustom)
	if c := ec.SwitchNext(); c != 4 {
		t.Errorf("custom switch cost %d, want 4", c)
	}
	if e.Switches != 1 || ec.Switches != 1 {
		t.Error("switch counter wrong")
	}
}

func TestSwitchNextCyclesThroughAllFrames(t *testing.T) {
	e := NewEngine(4, 11)
	seen := map[int]bool{e.FP(): true}
	for i := 0; i < 3; i++ {
		e.SwitchNext()
		seen[e.FP()] = true
	}
	if len(seen) != 4 {
		t.Errorf("switch-spinning visited %d frames, want 4", len(seen))
	}
	e.SwitchNext()
	if e.FP() != 0 {
		t.Error("switch-spinning did not wrap to frame 0")
	}
}

func TestThreadBookkeeping(t *testing.T) {
	e := NewEngine(4, 11)
	if e.LoadedThreads() != 0 {
		t.Error("fresh engine has loaded threads")
	}
	e.Frames[0].ThreadID = 10
	e.Frames[2].ThreadID = 11
	if e.LoadedThreads() != 2 {
		t.Errorf("LoadedThreads = %d", e.LoadedThreads())
	}
	if e.FindFrame(11) != 2 || e.FindFrame(99) != -1 {
		t.Error("FindFrame wrong")
	}
	// FreeFrame prefers the frame after FP.
	if f := e.FreeFrame(); f != 1 {
		t.Errorf("FreeFrame = %d, want 1", f)
	}
	e.Frames[1].ThreadID = 12
	e.Frames[3].ThreadID = 13
	if f := e.FreeFrame(); f != -1 {
		t.Errorf("FreeFrame on full engine = %d, want -1", f)
	}
}

func TestFrameReset(t *testing.T) {
	var f Frame
	f.R[5] = isa.MakeFixnum(3)
	f.PC, f.NPC = 10, 11
	f.ThreadID = 7
	f.Reset()
	if f.ThreadID != -1 || f.R[5] != 0 || f.PC != 0 {
		t.Errorf("Reset left state: %+v", f)
	}
}

func TestPaperTimingConstants(t *testing.T) {
	// Section 6.1: 5-cycle trap entry + 6-cycle handler = 11-cycle
	// context switch on SPARC; 4 cycles on a custom implementation.
	if TrapEntryCycles+SwitchHandlerCyclesSPARC != 11 {
		t.Error("SPARC context switch must total 11 cycles")
	}
	if SwitchCyclesCustom != 4 {
		t.Error("custom context switch must be 4 cycles")
	}
	if DefaultFrames != 4 {
		t.Error("SPARC implementation has 4 task frames")
	}
}
