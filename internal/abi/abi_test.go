package abi

import (
	"testing"
	"testing/quick"
)

func TestTrapImmRoundTrip(t *testing.T) {
	f := func(svc, reg uint8, size uint16) bool {
		imm := TrapImm(int(svc), int(reg), int(size))
		return TrapService(imm) == int(svc) &&
			TrapReg(imm) == int(reg) &&
			TrapSize(imm) == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutConstantsConsistent(t *testing.T) {
	if TCBBytes != TCBDequeOff+DequeCapacity*MarkerBytes {
		t.Error("TCB size inconsistent with deque capacity")
	}
	if MarkerBytes%8 != 0 {
		t.Error("markers must stay 8-aligned for pointer tagging")
	}
	if FrameLocalsOff != 12 {
		t.Error("frame header is savedFP/savedLink/savedClos = 12 bytes")
	}
	if StackBytes%8 != 0 {
		t.Error("stacks must be 8-aligned")
	}
	// Future objects: value slot first (its F/E bit is the resolution
	// flag, Section 6.2).
	if FutValueOff != 0 {
		t.Error("future value slot must be at offset 0")
	}
}

func TestServiceNumbersDistinct(t *testing.T) {
	svcs := []int{SvcMainExit, SvcTaskExit, SvcFutureNew, SvcStolen,
		SvcPrint, SvcError, SvcYield, SvcTouchReg, SvcMakeVector, SvcAllocRefill}
	seen := map[int]bool{}
	for _, s := range svcs {
		if s <= 0 || s > 0xff {
			t.Errorf("service %d outside the low byte", s)
		}
		if seen[s] {
			t.Errorf("duplicate service number %d", s)
		}
		seen[s] = true
	}
}
