// Package abi pins down the software contract between the Mul-T
// compiler (package mult) and the run-time system (package rts): heap
// object layouts, the thread control block, the lazy-task-creation
// marker deque, the procedure calling convention, and the software trap
// (syscall) services. Everything here is convention layered over the
// APRIL hardware — the paper's systems-level design keeps the processor
// simple by migrating this machinery into software.
package abi

// Heap object kinds. Cons cells carry their own pointer tag and have no
// header; every "other"-tagged heap object starts with a header word
//
//	header = length<<3 | kind
//
// where length counts elements (vector), captured values (closure), or
// bytes (string/symbol).
const (
	KindVector  = 1
	KindClosure = 2
	KindString  = 3
	KindSymbol  = 4
	KindCell    = 5 // single mutable box (captured set! variables)
)

// HeaderKindMask extracts the kind from a header word.
const HeaderKindMask = 7

// HeaderShift is the length field's shift.
const HeaderShift = 3

// Object layout offsets in bytes.
const (
	// Cons: two words, no header.
	ConsCarOff = 0
	ConsCdrOff = 4
	ConsBytes  = 8

	// Vector: header, then elements.
	VecHeaderOff = 0
	VecElemOff   = 4

	// Closure: header, code entry (fixnum instruction index), captured
	// values.
	ClosHeaderOff = 0
	ClosEntryOff  = 4
	ClosCapOff    = 8

	// Cell: header, value.
	CellValueOff = 4

	// String/symbol: header, then bytes packed 4 per word.
	StrBytesOff = 4

	// Future object (future-tagged, no header): the value slot's
	// full/empty bit is the resolution flag — "the future is resolved
	// if the full/empty bit of the future's value slot is set to full"
	// (Section 6.2). The aux slot holds the eager thunk before the
	// task runs (for debugging) or the stealing marker's address.
	FutValueOff = 0
	FutAuxOff   = 4
	FutBytes    = 8
)

// Thread control block (TCB), reached through the RTP register. The
// lazy task creation marker deque lives directly after the fixed
// fields. Marker entries are two words: the resume PC (a fixnum) and
// the parent's stack pointer; a thief overwrites the resume-PC slot
// with the future it created (future tag distinguishes the two).
const (
	TCBLockOff  = 0  // deque lock word (full = unlocked; F/E-bit lock)
	TCBTopOff   = 4  // raw byte address one past the newest marker
	TCBBotOff   = 8  // raw byte address of the oldest unstolen marker
	TCBIDOff    = 12 // thread id as fixnum (debugging)
	TCBDequeOff = 16 // first marker entry

	// A marker records the continuation resume point, the parent frame
	// (sp == fp at the marker), and the address of the per-site status
	// slot in that frame. A thief stamps the future it created into the
	// status slot, so ANY thread later reaching the matching pop — the
	// original victim, or a continuation thread that inherited the pop
	// of an ancestor marker — finds the future to resolve there.
	MarkerBytes     = 16
	MarkerPCOff     = 0
	MarkerSPOff     = 4
	MarkerStatusOff = 8

	// DequeCapacity bounds the number of simultaneously outstanding
	// lazy markers per thread (the maximum future-nesting depth).
	DequeCapacity = 1024

	TCBBytes = TCBDequeOff + DequeCapacity*MarkerBytes
)

// Stack frame layout. The stack grows down; RSP holds the raw byte
// address of the frame base (lowest address). Callee prologue pushes
// the frame and sets RFP = RSP.
const (
	FrameSavedFPOff   = 0
	FrameSavedLinkOff = 4
	FrameSavedClosOff = 8
	FrameLocalsOff    = 12

	// StackBytes is the stack allotted to each thread.
	StackBytes = 64 << 10
)

// Syscall service numbers for the TRAP instruction. The trap immediate
// packs the service in its low byte plus an optional register number
// and object size: imm = service | reg<<8 | size<<16.
const (
	SvcMainExit    = 1  // value in RArg0; terminates the program
	SvcTaskExit    = 2  // value in RArg0; resolves this thread's future and exits
	SvcFutureNew   = 3  // eager futures: thunk closure in RArg0 -> future in RArg0
	SvcStolen      = 4  // lazy slow path: marker slot addr in RArg0, value in RArg1
	SvcPrint       = 6  // print the value in RArg0
	SvcError       = 7  // fatal program error; code in imm's reg field
	SvcYield       = 8  // voluntary reschedule point
	SvcTouchReg    = 9  // software future touch: resolve the future in reg
	SvcMakeVector  = 10 // n (fixnum) in RArg0, fill in RArg1 -> vector in RArg0
	SvcAllocRefill = 11 // inline bump allocation overflowed: give the
	// thread a fresh arena chunk; reg <- object base, g0/g1 updated
)

// TrapImm packs a trap immediate.
func TrapImm(service, reg, size int) int32 {
	return int32(service | reg<<8 | size<<16)
}

// TrapService, TrapReg and TrapSize unpack a trap immediate.
func TrapService(imm int32) int { return int(imm) & 0xff }
func TrapReg(imm int32) int     { return int(imm) >> 8 & 0xff }
func TrapSize(imm int32) int    { return int(uint32(imm) >> 16) }

// Program stub symbols the compiler defines and the runtime relies on.
const (
	SymTaskExit = "__task_exit" // return point of eager task thunks
	SymMainExit = "__main_exit" // return point of the main procedure
)

// Runtime error codes for SvcError.
const (
	ErrCarOfNonPair = 1
	ErrIndexRange   = 2
	ErrNotProcedure = 3
	ErrDequeFull    = 4
	ErrArity        = 5
)
