package heap

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"april/internal/isa"
	"april/internal/mem"
)

func newHeap() *Heap {
	m := mem.New(1 << 20)
	return New(m, mem.NewArena(isa.HeapBase, 1<<20))
}

func TestConsCarCdr(t *testing.T) {
	h := newHeap()
	c, err := h.Cons(isa.MakeFixnum(1), isa.MakeFixnum(2))
	if err != nil {
		t.Fatal(err)
	}
	if !isa.IsCons(c) {
		t.Fatalf("not cons-tagged: %#x", c)
	}
	car, _ := h.Car(c)
	cdr, _ := h.Cdr(c)
	if isa.FixnumValue(car) != 1 || isa.FixnumValue(cdr) != 2 {
		t.Errorf("car/cdr = %v/%v", car, cdr)
	}
	if _, err := h.Car(isa.MakeFixnum(3)); err == nil {
		t.Error("car of fixnum did not error")
	}
}

func TestListAndFormat(t *testing.T) {
	h := newHeap()
	l, err := h.List(isa.MakeFixnum(1), isa.MakeFixnum(2), isa.MakeFixnum(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Format(l); got != "(1 2 3)" {
		t.Errorf("Format = %q", got)
	}
	if h.Format(isa.Nil) != "()" || h.Format(isa.True) != "#t" || h.Format(isa.False) != "#f" {
		t.Error("immediate formatting wrong")
	}
	// Improper list.
	c, _ := h.Cons(isa.MakeFixnum(1), isa.MakeFixnum(2))
	if got := h.Format(c); got != "(1 . 2)" {
		t.Errorf("improper list Format = %q", got)
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	h := newHeap()
	f := func(vals []int32) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		v, err := h.NewVector(len(vals), isa.Nil)
		if err != nil {
			return false
		}
		for i, x := range vals {
			x = x << 2 >> 2
			if err := h.VectorSet(v, i, isa.MakeFixnum(x)); err != nil {
				return false
			}
		}
		n, err := h.VectorLen(v)
		if err != nil || n != len(vals) {
			return false
		}
		for i, x := range vals {
			x = x << 2 >> 2
			got, err := h.VectorRef(v, i)
			if err != nil || isa.FixnumValue(got) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVectorBounds(t *testing.T) {
	h := newHeap()
	v, _ := h.NewVector(3, isa.MakeFixnum(0))
	if _, err := h.VectorRef(v, 3); err == nil {
		t.Error("out-of-range ref succeeded")
	}
	if err := h.VectorSet(v, -1, 0); err == nil {
		t.Error("negative index set succeeded")
	}
	if _, err := h.NewVector(-1, 0); err == nil {
		t.Error("negative length vector created")
	}
	if _, err := h.VectorLen(isa.MakeFixnum(1)); err == nil {
		t.Error("VectorLen of fixnum succeeded")
	}
}

func TestClosure(t *testing.T) {
	h := newHeap()
	c, err := h.NewClosure(123, []isa.Word{isa.MakeFixnum(5), isa.True})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := h.ClosureEntry(c)
	if err != nil || entry != 123 {
		t.Errorf("entry = %d, %v", entry, err)
	}
	v0, _ := h.ClosureCaptured(c, 0)
	v1, _ := h.ClosureCaptured(c, 1)
	if isa.FixnumValue(v0) != 5 || v1 != isa.True {
		t.Error("captured values wrong")
	}
	if _, err := h.ClosureCaptured(c, 2); err == nil {
		t.Error("captured out of range succeeded")
	}
	if _, err := h.ClosureEntry(isa.Nil); err == nil {
		t.Error("ClosureEntry of nil succeeded")
	}
}

func TestCell(t *testing.T) {
	h := newHeap()
	c, err := h.NewCell(isa.MakeFixnum(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CellSet(c, isa.MakeFixnum(9)); err != nil {
		t.Fatal(err)
	}
	v, err := h.CellGet(c)
	if err != nil || isa.FixnumValue(v) != 9 {
		t.Errorf("cell = %v, %v", v, err)
	}
}

func TestStringsAndSymbols(t *testing.T) {
	h := newHeap()
	for _, s := range []string{"", "a", "abc", "abcd", "hello, world", "exactly8"} {
		w, err := h.NewString(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.BytesOf(w)
		if err != nil || got != s {
			t.Errorf("BytesOf(NewString(%q)) = %q, %v", s, got, err)
		}
	}
	sym, _ := h.NewSymbol("foo")
	if got := h.Format(sym); got != "foo" {
		t.Errorf("symbol Format = %q", got)
	}
	str, _ := h.NewString("hi")
	if got := h.Format(str); got != `"hi"` {
		t.Errorf("string Format = %q", got)
	}
}

func TestFutureLifecycle(t *testing.T) {
	h := newHeap()
	f, err := h.NewFuture()
	if err != nil {
		t.Fatal(err)
	}
	if !isa.IsFuture(f) {
		t.Fatalf("not future-tagged: %#x", f)
	}
	ok, err := h.Resolved(f)
	if err != nil || ok {
		t.Error("fresh future reads resolved")
	}
	if _, err := h.FutureValue(f); err == nil {
		t.Error("FutureValue of unresolved future succeeded")
	}
	if got := h.Format(f); got != "#[future]" {
		t.Errorf("unresolved Format = %q", got)
	}
	if err := h.Resolve(f, isa.MakeFixnum(42)); err != nil {
		t.Fatal(err)
	}
	ok, _ = h.Resolved(f)
	if !ok {
		t.Error("future not resolved after Resolve")
	}
	v, err := h.FutureValue(f)
	if err != nil || isa.FixnumValue(v) != 42 {
		t.Errorf("FutureValue = %v, %v", v, err)
	}
	if got := h.Format(f); got != "42" {
		t.Errorf("resolved Format = %q, want the value", got)
	}
	if err := h.Resolve(isa.Nil, 0); err == nil {
		t.Error("Resolve of non-future succeeded")
	}
}

func TestFutureResolutionIsFullEmptyBit(t *testing.T) {
	// The resolution flag must literally be the value slot's F/E bit
	// (Section 6.2) — the trap handler tests it directly.
	h := newHeap()
	f, _ := h.NewFuture()
	addr := isa.PointerAddress(f)
	if h.Mem.MustFE(addr) {
		t.Error("unresolved future's value slot is full")
	}
	h.Mem.MustStore(addr, isa.MakeFixnum(5))
	h.Mem.MustSetFE(addr, true) // resolve "by hand" through memory
	ok, _ := h.Resolved(f)
	if !ok {
		t.Error("Resolved does not read the F/E bit")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := mem.New(1 << 16)
	h := New(m, mem.NewArena(isa.HeapBase, isa.HeapBase+16))
	if _, err := h.Cons(isa.Nil, isa.Nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Cons(isa.Nil, isa.Nil); err != nil {
		t.Fatal(err)
	}
	_, err := h.Cons(isa.Nil, isa.Nil)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFormatDeepStructureTerminates(t *testing.T) {
	h := newHeap()
	w := isa.Nil
	for i := 0; i < 100; i++ {
		var err error
		w, err = h.Cons(w, isa.Nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	s := h.Format(w)
	if !strings.Contains(s, "...") {
		t.Errorf("deep Format did not truncate: %d chars", len(s))
	}
}
