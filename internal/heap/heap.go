// Package heap builds and inspects tagged Mul-T objects in simulated
// memory: cons cells, vectors, closures, strings, mutable cells, and
// future objects. The run-time system and the compiler's static-data
// emitter use these helpers; compiled code manipulates the same layouts
// with inline instruction sequences (see package abi for the layout
// contract).
package heap

import (
	"errors"
	"fmt"
	"strings"

	"april/internal/abi"
	"april/internal/isa"
	"april/internal/mem"
)

// ErrOutOfMemory is returned when an arena is exhausted. The
// reproduction does not implement garbage collection (DESIGN.md);
// arenas must be sized for the workload.
var ErrOutOfMemory = errors.New("heap: out of memory")

// Heap allocates objects from an arena over a memory.
type Heap struct {
	Mem   *mem.Memory
	Arena *mem.Arena
}

// New creates a heap over the given memory and arena.
func New(m *mem.Memory, a *mem.Arena) *Heap { return &Heap{Mem: m, Arena: a} }

func (h *Heap) alloc(n uint32) (uint32, error) {
	addr := h.Arena.Alloc(n)
	if addr == 0 {
		return 0, fmt.Errorf("%w: need %d bytes, %d remaining", ErrOutOfMemory, n, h.Arena.Remaining())
	}
	return addr, nil
}

func header(kind int, length int) isa.Word {
	return isa.Word(uint32(length)<<abi.HeaderShift | uint32(kind))
}

// Cons allocates a cons cell.
func (h *Heap) Cons(car, cdr isa.Word) (isa.Word, error) {
	addr, err := h.alloc(abi.ConsBytes)
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr+abi.ConsCarOff, car)
	h.Mem.MustStore(addr+abi.ConsCdrOff, cdr)
	return isa.MakeCons(addr), nil
}

// Car and Cdr read a cons cell; they report an error on non-cons words.
func (h *Heap) Car(w isa.Word) (isa.Word, error) {
	if !isa.IsCons(w) {
		return 0, fmt.Errorf("heap: car of non-pair %#x", w)
	}
	return h.Mem.LoadWord(isa.PointerAddress(w) + abi.ConsCarOff)
}

func (h *Heap) Cdr(w isa.Word) (isa.Word, error) {
	if !isa.IsCons(w) {
		return 0, fmt.Errorf("heap: cdr of non-pair %#x", w)
	}
	return h.Mem.LoadWord(isa.PointerAddress(w) + abi.ConsCdrOff)
}

// List builds a proper list from items.
func (h *Heap) List(items ...isa.Word) (isa.Word, error) {
	out := isa.Nil
	for i := len(items) - 1; i >= 0; i-- {
		var err error
		out, err = h.Cons(items[i], out)
		if err != nil {
			return 0, err
		}
	}
	return out, nil
}

// kindOf reads the header kind of an "other"-tagged heap object.
func (h *Heap) kindOf(w isa.Word) (kind, length int, addr uint32, err error) {
	if !isa.IsOther(w) || !isa.IsPointer(w) {
		return 0, 0, 0, fmt.Errorf("heap: %#x is not a heap object", w)
	}
	addr = isa.PointerAddress(w)
	hdr, err := h.Mem.LoadWord(addr)
	if err != nil {
		return 0, 0, 0, err
	}
	return int(hdr & abi.HeaderKindMask), int(uint32(hdr) >> abi.HeaderShift), addr, nil
}

// NewVector allocates a vector of n elements initialized to fill.
func (h *Heap) NewVector(n int, fill isa.Word) (isa.Word, error) {
	if n < 0 {
		return 0, fmt.Errorf("heap: negative vector length %d", n)
	}
	addr, err := h.alloc(uint32(4 + 4*n))
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr, header(abi.KindVector, n))
	for i := 0; i < n; i++ {
		h.Mem.MustStore(addr+abi.VecElemOff+uint32(4*i), fill)
	}
	return isa.MakeOther(addr), nil
}

// VectorLen returns the length of a vector.
func (h *Heap) VectorLen(v isa.Word) (int, error) {
	kind, n, _, err := h.kindOf(v)
	if err != nil {
		return 0, err
	}
	if kind != abi.KindVector {
		return 0, fmt.Errorf("heap: %#x is not a vector (kind %d)", v, kind)
	}
	return n, nil
}

func (h *Heap) vectorSlot(v isa.Word, i int) (uint32, error) {
	n, err := h.VectorLen(v)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("heap: vector index %d out of range [0,%d)", i, n)
	}
	return isa.PointerAddress(v) + abi.VecElemOff + uint32(4*i), nil
}

// VectorRef reads element i.
func (h *Heap) VectorRef(v isa.Word, i int) (isa.Word, error) {
	slot, err := h.vectorSlot(v, i)
	if err != nil {
		return 0, err
	}
	return h.Mem.LoadWord(slot)
}

// VectorSet writes element i.
func (h *Heap) VectorSet(v isa.Word, i int, w isa.Word) error {
	slot, err := h.vectorSlot(v, i)
	if err != nil {
		return err
	}
	return h.Mem.StoreWord(slot, w)
}

// VectorSlotAddr exposes the byte address of element i (for full/empty
// bit manipulation by tests and the runtime).
func (h *Heap) VectorSlotAddr(v isa.Word, i int) (uint32, error) { return h.vectorSlot(v, i) }

// NewClosure allocates a closure with the given code entry point and
// captured values.
func (h *Heap) NewClosure(entry uint32, captured []isa.Word) (isa.Word, error) {
	addr, err := h.alloc(uint32(8 + 4*len(captured)))
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr+abi.ClosHeaderOff, header(abi.KindClosure, len(captured)))
	h.Mem.MustStore(addr+abi.ClosEntryOff, isa.MakeFixnum(int32(entry)))
	for i, w := range captured {
		h.Mem.MustStore(addr+abi.ClosCapOff+uint32(4*i), w)
	}
	return isa.MakeOther(addr), nil
}

// ClosureEntry returns a closure's code entry point.
func (h *Heap) ClosureEntry(c isa.Word) (uint32, error) {
	kind, _, addr, err := h.kindOf(c)
	if err != nil {
		return 0, err
	}
	if kind != abi.KindClosure {
		return 0, fmt.Errorf("heap: %#x is not a closure (kind %d)", c, kind)
	}
	w, err := h.Mem.LoadWord(addr + abi.ClosEntryOff)
	if err != nil {
		return 0, err
	}
	return uint32(isa.FixnumValue(w)), nil
}

// ClosureCaptured returns captured value i of a closure.
func (h *Heap) ClosureCaptured(c isa.Word, i int) (isa.Word, error) {
	kind, n, addr, err := h.kindOf(c)
	if err != nil {
		return 0, err
	}
	if kind != abi.KindClosure || i < 0 || i >= n {
		return 0, fmt.Errorf("heap: bad captured slot %d of %#x", i, c)
	}
	return h.Mem.LoadWord(addr + abi.ClosCapOff + uint32(4*i))
}

// NewCell allocates a mutable box holding v.
func (h *Heap) NewCell(v isa.Word) (isa.Word, error) {
	addr, err := h.alloc(8)
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr, header(abi.KindCell, 1))
	h.Mem.MustStore(addr+abi.CellValueOff, v)
	return isa.MakeOther(addr), nil
}

// CellGet and CellSet access a cell's value.
func (h *Heap) CellGet(c isa.Word) (isa.Word, error) {
	kind, _, addr, err := h.kindOf(c)
	if err != nil {
		return 0, err
	}
	if kind != abi.KindCell {
		return 0, fmt.Errorf("heap: %#x is not a cell", c)
	}
	return h.Mem.LoadWord(addr + abi.CellValueOff)
}

func (h *Heap) CellSet(c isa.Word, v isa.Word) error {
	kind, _, addr, err := h.kindOf(c)
	if err != nil {
		return err
	}
	if kind != abi.KindCell {
		return fmt.Errorf("heap: %#x is not a cell", c)
	}
	return h.Mem.StoreWord(addr+abi.CellValueOff, v)
}

// newBytesObject allocates a string or symbol.
func (h *Heap) newBytesObject(kind int, s string) (isa.Word, error) {
	nw := (len(s) + 3) / 4
	addr, err := h.alloc(uint32(4 + 4*nw))
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr, header(kind, len(s)))
	for w := 0; w < nw; w++ {
		var v uint32
		for b := 0; b < 4; b++ {
			if w*4+b < len(s) {
				v |= uint32(s[w*4+b]) << (8 * b)
			}
		}
		h.Mem.MustStore(addr+abi.StrBytesOff+uint32(4*w), isa.Word(v))
	}
	return isa.MakeOther(addr), nil
}

// NewString allocates a string object.
func (h *Heap) NewString(s string) (isa.Word, error) { return h.newBytesObject(abi.KindString, s) }

// NewSymbol allocates a symbol object (interning is the compiler's
// job; symbols with the same name should be allocated once).
func (h *Heap) NewSymbol(s string) (isa.Word, error) { return h.newBytesObject(abi.KindSymbol, s) }

// BytesOf reads back the contents of a string or symbol.
func (h *Heap) BytesOf(w isa.Word) (string, error) {
	kind, n, addr, err := h.kindOf(w)
	if err != nil {
		return "", err
	}
	if kind != abi.KindString && kind != abi.KindSymbol {
		return "", fmt.Errorf("heap: %#x is not a string/symbol", w)
	}
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		v, err := h.Mem.LoadWord(addr + abi.StrBytesOff + uint32(4*(i/4)))
		if err != nil {
			return "", err
		}
		buf[i] = byte(uint32(v) >> (8 * (i % 4)))
	}
	return string(buf), nil
}

// NewFuture allocates an unresolved future object: its value slot is
// marked empty, which is exactly the "unresolved" state of Section 6.2.
func (h *Heap) NewFuture() (isa.Word, error) {
	addr, err := h.alloc(abi.FutBytes)
	if err != nil {
		return 0, err
	}
	h.Mem.MustStore(addr+abi.FutValueOff, isa.Unspec)
	h.Mem.MustSetFE(addr+abi.FutValueOff, false)
	h.Mem.MustStore(addr+abi.FutAuxOff, isa.Nil)
	return isa.MakeFuture(addr), nil
}

// Resolved reports whether a future's value slot is full.
func (h *Heap) Resolved(f isa.Word) (bool, error) {
	if !isa.IsFuture(f) {
		return false, fmt.Errorf("heap: %#x is not a future", f)
	}
	return h.Mem.FE(isa.PointerAddress(f) + abi.FutValueOff)
}

// Resolve stores v into the future's value slot and marks it full.
func (h *Heap) Resolve(f isa.Word, v isa.Word) error {
	if !isa.IsFuture(f) {
		return fmt.Errorf("heap: resolve of non-future %#x", f)
	}
	addr := isa.PointerAddress(f) + abi.FutValueOff
	if err := h.Mem.StoreWord(addr, v); err != nil {
		return err
	}
	return h.Mem.SetFE(addr, true)
}

// FutureValue reads a resolved future's value.
func (h *Heap) FutureValue(f isa.Word) (isa.Word, error) {
	ok, err := h.Resolved(f)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("heap: future %#x is unresolved", f)
	}
	return h.Mem.LoadWord(isa.PointerAddress(f) + abi.FutValueOff)
}

// Format renders a value for printing, following futures to their
// values when resolved (as touching would). Cycles are cut off by
// depth.
func (h *Heap) Format(w isa.Word) string {
	return h.format(w, 0)
}

func (h *Heap) format(w isa.Word, depth int) string {
	if depth > 16 {
		return "..."
	}
	switch {
	case isa.IsFixnum(w):
		return fmt.Sprintf("%d", isa.FixnumValue(w))
	case w == isa.Nil:
		return "()"
	case w == isa.True:
		return "#t"
	case w == isa.False:
		return "#f"
	case w == isa.Unspec:
		return "#!unspecific"
	case isa.IsFuture(w):
		if ok, err := h.Resolved(w); err == nil && ok {
			v, _ := h.FutureValue(w)
			return h.format(v, depth+1)
		}
		return "#[future]"
	case isa.IsCons(w):
		var b strings.Builder
		b.WriteByte('(')
		first := true
		for isa.IsCons(w) {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			car, err := h.Car(w)
			if err != nil {
				return "#[bad-pair]"
			}
			b.WriteString(h.format(car, depth+1))
			w, err = h.Cdr(w)
			if err != nil {
				return "#[bad-pair]"
			}
		}
		if w != isa.Nil {
			b.WriteString(" . ")
			b.WriteString(h.format(w, depth+1))
		}
		b.WriteByte(')')
		return b.String()
	case isa.IsOther(w) && isa.IsPointer(w):
		kind, n, _, err := h.kindOf(w)
		if err != nil {
			return "#[bad-object]"
		}
		switch kind {
		case abi.KindVector:
			var b strings.Builder
			b.WriteString("#(")
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				e, err := h.VectorRef(w, i)
				if err != nil {
					return "#[bad-vector]"
				}
				b.WriteString(h.format(e, depth+1))
			}
			b.WriteByte(')')
			return b.String()
		case abi.KindClosure:
			return "#[procedure]"
		case abi.KindString:
			s, _ := h.BytesOf(w)
			return fmt.Sprintf("%q", s)
		case abi.KindSymbol:
			s, _ := h.BytesOf(w)
			return s
		case abi.KindCell:
			v, _ := h.CellGet(w)
			return fmt.Sprintf("#[cell %s]", h.format(v, depth+1))
		}
	}
	return fmt.Sprintf("#[%s %#x]", isa.TagName(w), uint32(w))
}
