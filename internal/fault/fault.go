// Package fault is the simulator's robustness subsystem: deterministic
// timing perturbation, runtime invariant checking, and crash forensics.
//
// The paper's central claim is that APRIL tolerates *unpredictable*
// latencies — remote misses and synchronization faults complete at
// arbitrary times and the processor stays correct and busy (Sections 3
// and 8). A deterministic simulator only ever exercises one timing per
// configuration, so this package supplies the adversary: a seeded Plan
// the networks consult to jitter, stall, and delay traffic, moving the
// machine onto a different (but reproducible) timing trajectory for
// every seed. Program results must be identical under any seed; only
// cycle counts may move. The Checker and Report types are the other
// half of the bargain: they verify the protocol invariants on every
// perturbed trajectory and, when the machine does wedge, explain where.
package fault

import (
	"fmt"
	"sort"
)

// Config describes a perturbation plan. The zero value perturbs
// nothing; all draws are pure functions of (Seed, site, sequence
// number), so a plan's behavior is reproducible and — crucially —
// independent of the order in which the simulator's fast and reference
// loops happen to consult it.
type Config struct {
	// Seed selects the trajectory. Two runs with equal Config are
	// bit-identical; different seeds explore different timings.
	Seed uint64

	// MaxHopJitter adds a uniform extra delay in [0, MaxHopJitter]
	// cycles to every channel transmission (torus) or message flight
	// (ideal network).
	MaxHopJitter int

	// StallEvery makes roughly one in StallEvery transmissions stall
	// its link for an extra 1..StallCycles cycles before transmitting
	// (a transient link fault; the channel retries automatically since
	// queued packets simply wait out the stall). 0 disables stalls.
	StallEvery  int
	StallCycles int

	// MaxReplyDelay adds a uniform extra delay in [0, MaxReplyDelay]
	// cycles to directory data replies (Data/DataEx grants), modelling
	// a slow memory controller.
	MaxReplyDelay int

	// StallLinks permanently stalls the listed torus channels: packets
	// queue behind them forever. This is the wedge-induction knob for
	// crash-forensics tests; it has no effect on the ideal network.
	StallLinks []int

	// WedgeAtCycle schedules a node-targeted wedge: at the given cycle
	// every torus output channel owned by WedgeNode becomes permanently
	// stalled, as if the node's router died mid-run. Unlike StallLinks
	// (stalled from cycle zero) the machine runs cleanly up to the arm
	// point, which is what checkpoint-recovery tests need: the wedge
	// lands in the middle of a run that earlier checkpoints predate.
	// 0 disables; no effect on the ideal network.
	WedgeAtCycle uint64
	WedgeNode    int
}

// Default returns the standard perturbation plan for a seed: a few
// cycles of hop jitter, occasional transient stalls, and slow
// directory replies — enough to move every protocol race off its
// deterministic trajectory without wedging anything.
func Default(seed uint64) Config {
	return Config{
		Seed:          seed,
		MaxHopJitter:  3,
		StallEvery:    50,
		StallCycles:   32,
		MaxReplyDelay: 8,
	}
}

// PermanentStall is the per-transmission penalty applied to channels
// listed in Config.StallLinks: large enough that no run completes the
// transmission, small enough that busy-counter arithmetic cannot
// overflow when the run loop advances across billions of cycles.
const PermanentStall = 1 << 40

// Plan is a compiled Config: the object the networks and controllers
// consult on the hot path. All methods are allocation-free and pure —
// the same (site, seq) pair always yields the same draw — so the fast
// and reference run loops, which reach draw sites at different host
// moments, stay bit-identical.
type Plan struct {
	cfg     Config
	stalled []int // sorted copy of cfg.StallLinks (+ armed wedge channels)
	armed   bool  // the scheduled wedge has fired
}

// NewPlan compiles a Config.
func NewPlan(cfg Config) *Plan {
	p := &Plan{cfg: cfg}
	if len(cfg.StallLinks) > 0 {
		p.stalled = append(p.stalled, cfg.StallLinks...)
		sort.Ints(p.stalled)
	}
	return p
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Draw streams: each perturbation site hashes under its own stream id
// so per-site sequence counters never collide.
const (
	streamHop   = 0x68_6f_70 // "hop"
	streamStall = 0x73_74_6c // "stl"
	streamMsg   = 0x6d_73_67 // "msg"
	streamReply = 0x72_70_6c // "rpl"
)

// mix is the splitmix64 finalizer over (seed, stream, site, seq),
// applied twice so every input bit reaches every output bit.
func (p *Plan) mix(stream, site, seq uint64) uint64 {
	x := p.cfg.Seed
	x = splitmix(x + stream*0x9e3779b97f4a7c15)
	x = splitmix(x + site*0xbf58476d1ce4e5b9 + seq*0x94d049bb133111eb)
	return x
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TxPenalty returns the extra cycles the seq'th transmission on the
// given torus channel takes: hop jitter, an occasional transient
// stall, or PermanentStall for wedged links.
func (p *Plan) TxPenalty(channel int, seq uint64) int {
	if p.Stalled(channel) {
		return PermanentStall
	}
	pen := 0
	site := uint64(channel)
	if p.cfg.MaxHopJitter > 0 {
		pen += int(p.mix(streamHop, site, seq) % uint64(p.cfg.MaxHopJitter+1))
	}
	if p.cfg.StallEvery > 0 && p.cfg.StallCycles > 0 {
		r := p.mix(streamStall, site, seq)
		if r%uint64(p.cfg.StallEvery) == 0 {
			pen += 1 + int((r>>32)%uint64(p.cfg.StallCycles))
		}
	}
	return pen
}

// MsgJitter returns the extra flight cycles for the seq'th message on
// the ideal network (which has no channels to stall; StallEvery
// contributes an occasional long flight instead).
func (p *Plan) MsgJitter(seq uint64) int {
	pen := 0
	if p.cfg.MaxHopJitter > 0 {
		pen += int(p.mix(streamMsg, 0, seq) % uint64(p.cfg.MaxHopJitter+1))
	}
	if p.cfg.StallEvery > 0 && p.cfg.StallCycles > 0 {
		r := p.mix(streamStall, ^uint64(0), seq)
		if r%uint64(p.cfg.StallEvery) == 0 {
			pen += 1 + int((r>>32)%uint64(p.cfg.StallCycles))
		}
	}
	return pen
}

// ReplyDelay returns the extra cycles the seq'th directory data reply
// sent by node waits before entering the network.
func (p *Plan) ReplyDelay(node int, seq uint64) int {
	if p.cfg.MaxReplyDelay <= 0 {
		return 0
	}
	return int(p.mix(streamReply, uint64(node), seq) % uint64(p.cfg.MaxReplyDelay+1))
}

// Stalled reports whether a torus channel is permanently stalled.
func (p *Plan) Stalled(channel int) bool {
	// StallLinks is tiny (usually empty); a linear scan beats a map on
	// the transmission hot path and allocates nothing.
	for _, c := range p.stalled {
		if c == channel {
			return true
		}
		if c > channel {
			return false
		}
	}
	return false
}

// StalledLinks returns the sorted permanently-stalled channel list.
func (p *Plan) StalledLinks() []int { return p.stalled }

// WedgePending reports that the plan schedules a wedge that has not
// fired yet. The run loop polls it between execution slices and calls
// ArmWedge once the configured cycle is reached.
func (p *Plan) WedgePending() bool { return p.cfg.WedgeAtCycle > 0 && !p.armed }

// WedgeArmed reports that the scheduled wedge has fired.
func (p *Plan) WedgeArmed() bool { return p.armed }

// ArmWedge fires the scheduled wedge: the given channels (the wedge
// node's output channels, computed by the caller, who knows the torus
// geometry) join the permanently-stalled set. Idempotent; a no-op when
// no wedge is scheduled.
func (p *Plan) ArmWedge(channels []int) {
	if !p.WedgePending() {
		return
	}
	p.armed = true
	p.stalled = append(p.stalled, channels...)
	sort.Ints(p.stalled)
}

// String summarizes the plan for reports.
func (p *Plan) String() string {
	c := p.cfg
	s := fmt.Sprintf("seed=%#x hop-jitter<=%d stall 1/%d<=%d reply<=%d stalled-links=%v",
		c.Seed, c.MaxHopJitter, c.StallEvery, c.StallCycles, c.MaxReplyDelay, p.stalled)
	if c.WedgeAtCycle > 0 {
		state := "pending"
		if p.armed {
			state = "armed"
		}
		s += fmt.Sprintf(" wedge-node=%d@%d(%s)", c.WedgeNode, c.WedgeAtCycle, state)
	}
	return s
}
