package fault

import (
	"fmt"
	"strings"
)

// InvariantError is one recorded invariant violation. Checkers record
// violations instead of panicking so the run loop can stop at a clean
// cycle boundary and attach a full crash Report.
type InvariantError struct {
	Name   string // invariant identifier, e.g. "coherence/single-writer"
	Node   int    // node the violation was observed on (-1: machine-wide)
	Cycle  uint64 // simulated cycle of the observation
	Block  uint32 // memory block involved (0 if not applicable)
	Detail string // human-readable specifics
}

func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %s violated at cycle %d", e.Name, e.Cycle)
	if e.Node >= 0 {
		fmt.Fprintf(&b, " on node %d", e.Node)
	}
	if e.Block != 0 {
		fmt.Fprintf(&b, " (block %#x)", e.Block)
	}
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// checkerLimit bounds how many violations a Checker retains. The first
// violation is the interesting one; later ones are usually cascade
// noise, so past the limit only the count advances.
const checkerLimit = 32

// Checker accumulates invariant violations. It is entirely passive —
// the simulator calls Violate when a check fails, and the run loop
// polls Total to decide whether to abort. A nil *Checker is inert:
// every method is safe to call and Violate on nil panics only if the
// caller skipped the enabled-check, so call sites gate on
// Checker != nil (which also keeps the fast path free of the
// formatting cost).
type Checker struct {
	clock      *uint64 // simulated cycle source (the machine's clock)
	violations []*InvariantError
	total      int
}

// NewChecker builds a checker reading the simulated cycle from clock.
func NewChecker(clock *uint64) *Checker {
	return &Checker{clock: clock}
}

// Violate records a violation. Allocation happens only on this cold
// path, never during clean runs.
func (c *Checker) Violate(name string, node int, block uint32, format string, args ...any) {
	c.total++
	if len(c.violations) >= checkerLimit {
		return
	}
	var cycle uint64
	if c.clock != nil {
		cycle = *c.clock
	}
	c.violations = append(c.violations, &InvariantError{
		Name:   name,
		Node:   node,
		Cycle:  cycle,
		Block:  block,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Total returns the number of violations recorded so far (including
// any dropped past the retention limit). The run loop polls this.
func (c *Checker) Total() int {
	if c == nil {
		return 0
	}
	return c.total
}

// Violations returns the retained violations, oldest first.
func (c *Checker) Violations() []*InvariantError {
	if c == nil {
		return nil
	}
	return c.violations
}

// Err returns the first violation as an error, or nil if clean.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	return c.violations[0]
}
