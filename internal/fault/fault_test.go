package fault

import (
	"strings"
	"testing"
)

func TestPlanDeterministicAndBounded(t *testing.T) {
	cfg := Default(42)
	p := NewPlan(cfg)
	q := NewPlan(cfg)
	for ch := 0; ch < 8; ch++ {
		for seq := uint64(0); seq < 1000; seq++ {
			a, b := p.TxPenalty(ch, seq), q.TxPenalty(ch, seq)
			if a != b {
				t.Fatalf("TxPenalty(%d,%d) not deterministic: %d vs %d", ch, seq, a, b)
			}
			if a < 0 || a > cfg.MaxHopJitter+cfg.StallCycles {
				t.Fatalf("TxPenalty(%d,%d) = %d out of bounds", ch, seq, a)
			}
		}
	}
	for seq := uint64(0); seq < 1000; seq++ {
		if a, b := p.MsgJitter(seq), q.MsgJitter(seq); a != b {
			t.Fatalf("MsgJitter(%d) not deterministic: %d vs %d", seq, a, b)
		}
		for node := 0; node < 4; node++ {
			d := p.ReplyDelay(node, seq)
			if d != q.ReplyDelay(node, seq) {
				t.Fatalf("ReplyDelay(%d,%d) not deterministic", node, seq)
			}
			if d < 0 || d > cfg.MaxReplyDelay {
				t.Fatalf("ReplyDelay(%d,%d) = %d out of bounds", node, seq, d)
			}
		}
	}
}

func TestPlanSeedsDiffer(t *testing.T) {
	p := NewPlan(Default(1))
	q := NewPlan(Default(2))
	same := 0
	const n = 256
	for seq := uint64(0); seq < n; seq++ {
		if p.TxPenalty(0, seq) == q.TxPenalty(0, seq) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical penalty streams")
	}
}

func TestPlanZeroConfigIsQuiet(t *testing.T) {
	p := NewPlan(Config{Seed: 99})
	for seq := uint64(0); seq < 100; seq++ {
		if p.TxPenalty(3, seq) != 0 || p.MsgJitter(seq) != 0 || p.ReplyDelay(1, seq) != 0 {
			t.Fatal("zero config must not perturb anything")
		}
	}
}

func TestPlanStalledLinks(t *testing.T) {
	p := NewPlan(Config{StallLinks: []int{7, 3}})
	if !p.Stalled(3) || !p.Stalled(7) || p.Stalled(5) {
		t.Fatalf("Stalled membership wrong: %v", p.StalledLinks())
	}
	if got := p.TxPenalty(3, 0); got != PermanentStall {
		t.Fatalf("stalled link penalty = %d, want PermanentStall", got)
	}
	if got := p.StalledLinks(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("StalledLinks = %v, want sorted [3 7]", got)
	}
}

func TestCheckerRecordsAndLimits(t *testing.T) {
	var clock uint64 = 123
	c := NewChecker(&clock)
	if c.Total() != 0 || c.Err() != nil {
		t.Fatal("fresh checker not clean")
	}
	c.Violate("coherence/single-writer", 2, 0x40, "nodes %v both exclusive", []int{1, 2})
	if c.Total() != 1 {
		t.Fatalf("Total = %d, want 1", c.Total())
	}
	err := c.Err()
	if err == nil {
		t.Fatal("Err nil after violation")
	}
	for _, want := range []string{"coherence/single-writer", "cycle 123", "node 2", "0x40"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("violation %q missing %q", err.Error(), want)
		}
	}
	for i := 0; i < 100; i++ {
		c.Violate("x", -1, 0, "cascade")
	}
	if c.Total() != 101 {
		t.Fatalf("Total = %d, want 101", c.Total())
	}
	if len(c.Violations()) != checkerLimit {
		t.Fatalf("retained %d, want limit %d", len(c.Violations()), checkerLimit)
	}
	var nilC *Checker
	if nilC.Total() != 0 || nilC.Err() != nil || nilC.Violations() != nil {
		t.Fatal("nil checker must be inert")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{
		Reason:  ReasonDeadlock,
		Cycle:   5000,
		Message: "no instruction retired",
		Nodes: []NodeStatus{{
			Node: 1, PC: 0x200, Frame: 2, ThreadID: 5, Resident: 3, Ready: 1,
			Retired: 900, LastRetired: 4200,
			Outstanding: []MissStatus{{Block: 0x1a0, Home: 0, Write: true, Age: 800}},
		}},
		Sched: SchedStatus{Live: 4, Ready: 1, Blocked: 2,
			Waiters: []WaiterStatus{{Addr: 0x3000, Threads: []int{7, 9}}}},
		Net: &NetStatus{InFlight: 1, Live: 1,
			Links:        []LinkState{{Channel: 6, Node: 1, Dim: 1, Dir: 0, Busy: 1 << 30, Queued: 2, Stalled: true}},
			StalledLinks: []int{6}},
	}
	out := r.Render()
	for _, want := range []string{
		"autopsy: deadlock at cycle 5000",
		"scheduler: 4 live, 1 ready, 2 blocked",
		"wait 0x3000: threads [7 9]",
		"node  1:",
		"miss block 0x1a0 home=0 write age=800",
		"STALLED (fault plan)",
		"permanently stalls links [6]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
}
