package fault

import (
	"fmt"
	"strings"
)

// Report reasons.
const (
	ReasonDeadlock  = "deadlock"  // no instruction retired for the watchdog window
	ReasonLivelock  = "livelock"  // retiring, but remote operations stuck beyond any protocol bound
	ReasonBudget    = "cycle-budget" // MaxCycles exhausted before main returned
	ReasonInvariant = "invariant" // a Checker recorded a violation
	ReasonMemFault  = "memory-fault" // runtime access outside the simulated arena
)

// Report is the crash forensics record: a machine-wide snapshot taken
// when a run aborts. It replaces the old one-line ErrDeadlock string
// with enough state to localize the wedge — which nodes are stuck on
// which blocks, what the network still holds, and which links (if any)
// a fault plan has pinned.
type Report struct {
	Reason  string // one of the Reason* constants
	Cycle   uint64 // simulated cycle of the snapshot
	Message string // the underlying error text

	Nodes []NodeStatus
	Sched SchedStatus
	Net   *NetStatus // nil for machines without an interconnect model

	Violations []*InvariantError // non-empty iff Reason == ReasonInvariant

	// TraceTails holds the last few trace-ring events per traced node,
	// already rendered ("[cycle] node kind ..."), oldest first. Empty
	// when tracing was not enabled.
	TraceTails map[int][]string

	// Checkpoint recovery: when the run was writing periodic machine
	// images, the most recent one's cycle and the command line that
	// resumes from it. HasCheckpoint distinguishes "checkpointing off"
	// from "crashed at cycle 0 before the first image".
	HasCheckpoint   bool
	CheckpointCycle uint64
	RestoreCmd      string
}

// NodeStatus is one processor's state at crash time.
type NodeStatus struct {
	Node        int
	PC          uint32 // active frame's program counter
	Frame       int    // active hardware frame index
	ThreadID    int    // thread bound to the active frame (-1: none)
	Resident    int    // threads loaded in hardware frames
	Halted      bool
	Retired     uint64 // instructions retired by this node
	LastRetired uint64 // cycle of this node's most recent retirement
	PendingIPIs int
	Ready       int // ready threads queued on this node
	// Outstanding lists this node's in-flight remote operations,
	// sorted by block.
	Outstanding []MissStatus
}

// MissStatus is one outstanding remote cache operation.
type MissStatus struct {
	Block    uint32
	Home     int
	Write    bool
	Age      uint64 // cycles since the request was issued
	Poisoned bool   // fill will be dropped and retried (protocol recall hit mid-miss)
}

// SchedStatus summarizes the scheduler at crash time.
type SchedStatus struct {
	Live    int // threads not yet dead
	Ready   int
	Blocked int
	// Waiters lists full/empty wait addresses with the threads queued
	// on each, sorted by address.
	Waiters []WaiterStatus
}

// WaiterStatus is one blocked-waiter list.
type WaiterStatus struct {
	Addr    uint32
	Threads []int
}

// NetStatus is the interconnect census at crash time.
type NetStatus struct {
	InFlight int // messages in channels and inboxes
	Live     int // pool-tracked live messages (should equal InFlight at a tick boundary)
	// Links lists non-idle torus channels (busy or queued); empty for
	// the ideal network, which has no channel structure.
	Links []LinkState
	// StalledLinks echoes the fault plan's permanently-stalled
	// channels, if a plan was active.
	StalledLinks []int
}

// LinkState is one torus channel's occupancy.
type LinkState struct {
	Channel int // flat channel id
	Node    int // owning node
	Dim     int // torus dimension
	Dir     int // 0: negative, 1: positive
	Busy    int // cycles until the head packet finishes transmitting
	Queued  int // packets waiting on this channel
	Stalled bool
}

// Render formats the report as a multi-section text block — the
// output of `cmd/april -autopsy`.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== april autopsy: %s at cycle %d ==\n", r.Reason, r.Cycle)
	if r.Message != "" {
		fmt.Fprintf(&b, "cause: %s\n", r.Message)
	}
	if r.HasCheckpoint {
		fmt.Fprintf(&b, "last checkpoint: cycle %d (%d cycles before the crash)\n",
			r.CheckpointCycle, r.Cycle-r.CheckpointCycle)
		if r.RestoreCmd != "" {
			fmt.Fprintf(&b, "resume with: %s\n", r.RestoreCmd)
		}
	}

	fmt.Fprintf(&b, "\nscheduler: %d live, %d ready, %d blocked\n",
		r.Sched.Live, r.Sched.Ready, r.Sched.Blocked)
	for _, w := range r.Sched.Waiters {
		fmt.Fprintf(&b, "  wait %#x: threads %v\n", w.Addr, w.Threads)
	}

	b.WriteString("\nnodes:\n")
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "  node %2d: pc=%#x frame=%d thread=%d resident=%d ready=%d retired=%d last-retired@%d",
			n.Node, n.PC, n.Frame, n.ThreadID, n.Resident, n.Ready, n.Retired, n.LastRetired)
		if n.Halted {
			b.WriteString(" HALTED")
		}
		if n.PendingIPIs > 0 {
			fmt.Fprintf(&b, " ipis=%d", n.PendingIPIs)
		}
		b.WriteByte('\n')
		for _, ms := range n.Outstanding {
			op := "read"
			if ms.Write {
				op = "write"
			}
			fmt.Fprintf(&b, "    miss block %#x home=%d %s age=%d", ms.Block, ms.Home, op, ms.Age)
			if ms.Poisoned {
				b.WriteString(" poisoned")
			}
			b.WriteByte('\n')
		}
	}

	if r.Net != nil {
		fmt.Fprintf(&b, "\nnetwork: %d in flight (%d pool-live)\n", r.Net.InFlight, r.Net.Live)
		for _, l := range r.Net.Links {
			fmt.Fprintf(&b, "  link %3d (node %d dim %d dir %d): busy=%d queued=%d",
				l.Channel, l.Node, l.Dim, l.Dir, l.Busy, l.Queued)
			if l.Stalled {
				b.WriteString(" STALLED (fault plan)")
			}
			b.WriteByte('\n')
		}
		if len(r.Net.StalledLinks) > 0 {
			fmt.Fprintf(&b, "  fault plan permanently stalls links %v\n", r.Net.StalledLinks)
		}
	}

	if len(r.Violations) > 0 {
		b.WriteString("\ninvariant violations:\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v.Error())
		}
	}

	if len(r.TraceTails) > 0 {
		b.WriteString("\ntrace tails:\n")
		// Nodes slice is already sorted; use it to order the tails.
		for _, n := range r.Nodes {
			tail := r.TraceTails[n.Node]
			if len(tail) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  node %d:\n", n.Node)
			for _, line := range tail {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}
