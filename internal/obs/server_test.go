package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"april/internal/trace"
)

// scripted builds a server over deterministic hook fakes: no machine,
// every response fully scripted by the test.
func scripted(t *testing.T, hooks Hooks) (*Server, string) {
	t.Helper()
	s := NewServer(hooks)
	url, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, url
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestObsServerProgress(t *testing.T) {
	s, url := scripted(t, Hooks{
		Progress: func() Progress {
			return Progress{Cycle: 500_000, BudgetCycles: 1_000_000,
				Instructions: 123, Utilization: 0.75, Nodes: 64, Shards: 2}
		},
		Counters: func() map[string]map[string]uint64 { return nil },
	})

	var p Progress
	if err := json.Unmarshal(get(t, url+"/progress"), &p); err != nil {
		t.Fatal(err)
	}
	if p.Cycle != 500_000 || p.Nodes != 64 || p.Shards != 2 || p.Done {
		t.Errorf("unexpected progress: %+v", p)
	}
	if p.WallSeconds <= 0 {
		t.Errorf("wall seconds not filled: %+v", p)
	}
	if p.CyclesPerSecond <= 0 || p.EtaBudgetSeconds <= 0 {
		t.Errorf("rate/ETA not derived: %+v", p)
	}

	s.Finish("(42 . done)")
	if err := json.Unmarshal(get(t, url+"/progress"), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.Result != "(42 . done)" {
		t.Errorf("after Finish: %+v", p)
	}
	if p.EtaBudgetSeconds != 0 {
		t.Errorf("done run should have zero ETA: %+v", p)
	}
}

func TestObsServerCountersAndMetrics(t *testing.T) {
	snap := map[string]map[string]uint64{
		"pdes":        {"parallel_cycles": 9000, "fallback_stop": 3},
		"shard0.pdes": {"local_steps": 100},
		"shard1.pdes": {"local_steps": 101},
		"network":     {"cross_shard_messages": 77},
	}
	_, url := scripted(t, Hooks{
		Progress: func() Progress { return Progress{} },
		Counters: func() map[string]map[string]uint64 { return snap },
	})

	var got map[string]map[string]uint64
	if err := json.Unmarshal(get(t, url+"/counters"), &got); err != nil {
		t.Fatal(err)
	}
	if got["shard1.pdes"]["local_steps"] != 101 || got["pdes"]["parallel_cycles"] != 9000 {
		t.Errorf("counters snapshot mismatch: %v", got)
	}

	metrics := string(get(t, url+"/metrics"))
	for _, want := range []string{
		`april_pdes_local_steps{shard="0"} 100`,
		`april_pdes_local_steps{shard="1"} 101`,
		"april_pdes_parallel_cycles 9000",
		"april_network_cross_shard_messages 77",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, metrics)
		}
	}
}

// readEvent consumes one SSE event (through its blank-line terminator)
// and returns the event name and the joined data payload.
func readEvent(t *testing.T, r *bufio.Reader) (event, data string) {
	t.Helper()
	var dataLines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE: %v (event %q data %v)", err, event, dataLines)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event == "" && len(dataLines) == 0 {
				continue // leading keep-alive blank
			}
			return event, strings.Join(dataLines, "\n")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			dataLines = append(dataLines, strings.TrimPrefix(line, "data: "))
		}
	}
}

func TestObsServerTimelineSSE(t *testing.T) {
	var rows []trace.Sample
	s, url := scripted(t, Hooks{
		Progress: func() Progress { return Progress{} },
		Counters: func() map[string]map[string]uint64 { return nil },
		Timeline: func(from int) []trace.Sample { return rows[from:] },
	})

	// One window closed before the client connects: arrives as backlog.
	s.Step(func() { rows = append(rows, trace.Sample{Cycle: 4096, Node: 0}) })

	resp, err := http.Get(url + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)

	event, data := readEvent(t, r)
	var sample trace.Sample
	if err := json.Unmarshal([]byte(data), &sample); err != nil {
		t.Fatal(err)
	}
	if event != "window" || sample.Cycle != 4096 {
		t.Errorf("backlog event %q %+v", event, sample)
	}

	// A window closed while connected: arrives live. Step on a second
	// goroutine so a (hypothetical) handler deadlock fails the test
	// instead of hanging it.
	stepDone := make(chan struct{})
	go func() {
		s.Step(func() { rows = append(rows, trace.Sample{Cycle: 8192, Node: 1}) })
		close(stepDone)
	}()
	event, data = readEvent(t, r)
	if err := json.Unmarshal([]byte(data), &sample); err != nil {
		t.Fatal(err)
	}
	if event != "window" || sample.Cycle != 8192 || sample.Node != 1 {
		t.Errorf("live event %q %+v", event, sample)
	}
	select {
	case <-stepDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Step blocked on a connected subscriber")
	}

	s.Finish("done-result")
	event, data = readEvent(t, r)
	if event != "done" || !strings.Contains(data, "done-result") {
		t.Errorf("terminal event %q %q", event, data)
	}
}

// TestObsServerTimelineReplay: ?from=N skips that many backlog rows,
// and a connection after Finish still replays then terminates.
func TestObsServerTimelineReplay(t *testing.T) {
	rows := []trace.Sample{{Cycle: 1}, {Cycle: 2}, {Cycle: 3}}
	s, url := scripted(t, Hooks{
		Progress: func() Progress { return Progress{} },
		Counters: func() map[string]map[string]uint64 { return nil },
		Timeline: func(from int) []trace.Sample { return rows[from:] },
	})
	s.Step(func() {}) // publishes all three rows
	s.Finish("r")

	resp, err := http.Get(url + "/timeline?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	event, data := readEvent(t, r)
	var sample trace.Sample
	if err := json.Unmarshal([]byte(data), &sample); err != nil {
		t.Fatal(err)
	}
	if event != "window" || sample.Cycle != 3 {
		t.Errorf("replay skipped wrong rows: %q %+v", event, sample)
	}
	if event, _ = readEvent(t, r); event != "done" {
		t.Errorf("want done terminator, got %q", event)
	}
}

func TestObsServerTraceDownload(t *testing.T) {
	_, url := scripted(t, Hooks{
		Progress:    func() Progress { return Progress{} },
		Counters:    func() map[string]map[string]uint64 { return nil },
		ChromeTrace: func(w io.Writer) error { _, err := io.WriteString(w, `[{"ph":"X"}]`); return err },
	})
	if got := string(get(t, url+"/trace")); got != `[{"ph":"X"}]` {
		t.Errorf("trace body %q", got)
	}
}

// TestObsServerDisabledEndpoints: hooks left nil answer 404, not panic.
func TestObsServerDisabledEndpoints(t *testing.T) {
	_, url := scripted(t, Hooks{
		Progress: func() Progress { return Progress{} },
		Counters: func() map[string]map[string]uint64 { return nil },
	})
	for _, ep := range []string{"/timeline", "/trace"} {
		resp, err := http.Get(url + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: want 404, got %s", ep, resp.Status)
		}
	}
}
