package obs

import (
	"io"
	"strings"
)

// WriteSSEEvent frames one Server-Sent Events message: an optional
// "event:" line, the payload split across "data:" lines (SSE cannot
// carry a raw newline inside one data line — the browser EventSource
// joins consecutive data lines with "\n" on receipt), and the blank
// line that terminates the event. An empty payload still emits one
// empty data line so the event is dispatched at all.
func WriteSSEEvent(w io.Writer, event string, data string) error {
	var b strings.Builder
	if event != "" {
		b.WriteString("event: ")
		b.WriteString(event)
		b.WriteByte('\n')
	}
	lines := strings.Split(data, "\n")
	for _, line := range lines {
		b.WriteString("data: ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
