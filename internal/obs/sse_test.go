package obs

import (
	"bytes"
	"testing"
)

// TestObsSSEFraming checks the wire framing: event line, data line,
// blank-line terminator.
func TestObsSSEFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSSEEvent(&buf, "window", `{"cycle":4096}`); err != nil {
		t.Fatal(err)
	}
	want := "event: window\ndata: {\"cycle\":4096}\n\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

// TestObsSSEMultiline: a payload containing newlines must split into
// consecutive data lines (EventSource rejoins them with \n), never a
// raw newline inside one data field.
func TestObsSSEMultiline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSSEEvent(&buf, "", "line1\nline2\nline3"); err != nil {
		t.Fatal(err)
	}
	want := "data: line1\ndata: line2\ndata: line3\n\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

// TestObsSSEEmptyData: an empty payload still needs a data line or the
// client never dispatches the event.
func TestObsSSEEmptyData(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSSEEvent(&buf, "done", ""); err != nil {
		t.Fatal(err)
	}
	want := "event: done\ndata: \n\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}
