// Package obs is the run observatory: a live introspection surface
// over a running (or finished) machine. It converts the simulator's
// existing observability primitives — the counter registry
// (trace.Registry), the timeline sampler (trace.Sampler), and the
// Chrome-trace exporter — into HTTP endpoints (server.go), Prometheus
// text exposition (this file), and Server-Sent Events (sse.go).
//
// Everything here is strictly read-only over snapshots taken while the
// machine is quiescent; nothing in this package can perturb simulated
// results (the differential matrix in the repo root holds it to that).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// gaugeKeys lists registry counter names that expose instantaneous
// state rather than monotonic totals: they may go down, so Prometheus
// must treat them as gauges. Every other key is a counter.
var gaugeKeys = map[string]bool{
	"in_flight":           true, // network messages currently in flight
	"outstanding_remote":  true, // cache controller: pending remote ops
	"pending_home_tx":     true, // cache controller: open home transactions
	"deferred_recalls":    true, // cache controller: queued recalls
	"outstanding_flushes": true, // cache controller: unacked flushes
	"threads":             true, // scheduler: live thread count
	"max_latency":         true, // network: high-water mark, not a sum
	"nodes":               true, // shard size (static)
}

// promRow is one exposition line: an optional single label pair plus
// the value.
type promRow struct {
	labelName  string
	labelValue string
	order      int // numeric sort key for numeric label values
	value      uint64
}

// promFamily collects every row of one metric family.
type promFamily struct {
	name string
	typ  string // "counter" or "gauge"
	rows []promRow
}

// splitGroup decomposes a registry group name into a metric-family
// component and an optional label. Per-instance groups follow the
// "<kind><index>.<subsystem>" convention ("node3.proc", "node3.memory",
// "shard1.pdes"): the subsystem becomes the family component and the
// kind/index pair becomes a label ({node="3"}, {shard="1"}). Plain
// groups ("scheduler", "network", "pdes", "machine") map to unlabeled
// families.
func splitGroup(group string) (family, labelName, labelValue string, order int) {
	dot := strings.IndexByte(group, '.')
	if dot < 0 {
		return group, "", "", 0
	}
	head, tail := group[:dot], group[dot+1:]
	// Split head into a letter prefix and a digit suffix.
	i := len(head)
	for i > 0 && head[i-1] >= '0' && head[i-1] <= '9' {
		i--
	}
	if i == 0 || i == len(head) || tail == "" {
		// No letter prefix, no digits, or nothing after the dot: treat
		// the whole group as a family component, dot replaced later by
		// sanitization.
		return group, "", "", 0
	}
	n := 0
	for _, c := range head[i:] {
		n = n*10 + int(c-'0')
	}
	return tail, head[:i], head[i:], n
}

// sanitizeMetric maps an arbitrary string onto the Prometheus metric
// name alphabet [a-zA-Z0-9_] (':' is reserved for recording rules).
func sanitizeMetric(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders a registry snapshot (trace.Registry.Snapshot)
// in the Prometheus text exposition format (version 0.0.4). Every
// metric is prefixed "april_"; per-node and per-shard groups become
// labeled series of one family (april_proc_instructions{node="5"}),
// so a scrape of a 64-node machine yields a handful of families, not
// thousands. Output is deterministic: families sort by name, series by
// numeric label value, so diffing two scrapes diffs the numbers.
func WritePrometheus(w io.Writer, snap map[string]map[string]uint64) error {
	fams := map[string]*promFamily{}
	for group, counters := range snap {
		famComp, labelName, labelValue, order := splitGroup(group)
		for key, val := range counters {
			name := "april_" + sanitizeMetric(famComp) + "_" + sanitizeMetric(key)
			f := fams[name]
			if f == nil {
				typ := "counter"
				if gaugeKeys[key] {
					typ = "gauge"
				}
				f = &promFamily{name: name, typ: typ}
				fams[name] = f
			}
			f.rows = append(f.rows, promRow{
				labelName:  labelName,
				labelValue: labelValue,
				order:      order,
				value:      val,
			})
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.rows, func(i, j int) bool {
			a, b := &f.rows[i], &f.rows[j]
			if a.order != b.order {
				return a.order < b.order
			}
			return a.labelValue < b.labelValue
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, r := range f.rows {
			var err error
			if r.labelName == "" {
				_, err = fmt.Fprintf(w, "%s %d\n", f.name, r.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n",
					f.name, sanitizeMetric(r.labelName), escapeLabel(r.labelValue), r.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
