package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"april/internal/trace"
)

// Hooks are the read-only views the server exposes. Every hook is
// invoked only while the caller's gate guarantees the machine is
// quiescent (between RunWindow slices or after the run), so hooks may
// read live machine state directly. Progress and Counters are
// required; Timeline and ChromeTrace may be nil when the sampler or
// tracer is off, disabling /timeline and /trace with a 404.
type Hooks struct {
	Progress    func() Progress
	Counters    func() map[string]map[string]uint64
	Timeline    func(from int) []trace.Sample
	ChromeTrace func(w io.Writer) error
	// Checkpoint serializes the machine into a restorable image
	// (sim.Snapshot); nil disables /checkpoint with a 404.
	Checkpoint func() ([]byte, error)
}

// Progress is the /progress payload. The hook fills the simulated
// fields (cycle, budget, instructions, utilization, shape); the server
// overlays host-side fields — wall time, simulation rate, the
// remaining-budget ETA, and completion state.
type Progress struct {
	Cycle        uint64  `json:"cycle"`
	BudgetCycles uint64  `json:"budget_cycles"`
	Instructions uint64  `json:"instructions"`
	Utilization  float64 `json:"utilization"`
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`

	Done   bool   `json:"done"`
	Result string `json:"result,omitempty"`

	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	// EtaBudgetSeconds projects the current rate to the cycle budget —
	// an upper bound on remaining wall time, since most runs exit long
	// before the budget.
	EtaBudgetSeconds float64 `json:"eta_budget_seconds"`
}

// Server is the live introspection endpoint set. The design premise:
// the run loop advances the machine one RunWindow slice at a time and
// holds the gate for each slice; handlers take the gate between
// slices, snapshot what they need into private buffers, release, and
// only then write the response. A curl therefore waits at most one
// window, the coordinator at most one snapshot, and no hook ever
// observes a machine mid-cycle.
type Server struct {
	hooks Hooks

	// gate serializes machine access between the run loop and handlers.
	gate sync.Mutex

	httpSrv *http.Server
	ln      net.Listener
	started time.Time

	// Subscriber state: the published timeline backlog and live SSE
	// fans. subMu is ordered after gate (publish runs under both).
	subMu  sync.Mutex
	rows   []trace.Sample
	subs   map[chan trace.Sample]struct{}
	done   bool
	result string
}

// NewServer builds a server over the given hooks (not yet listening).
func NewServer(hooks Hooks) *Server {
	return &Server{
		hooks: hooks,
		subs:  map[chan trace.Sample]struct{}{},
	}
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// in a background goroutine. It returns the base URL, e.g.
// "http://127.0.0.1:41873".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.started = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/counters", s.handleCounters)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Step runs one slice of simulation under the gate and publishes any
// timeline windows the slice closed. The run loop must funnel every
// machine mutation through here (or Finish) so handlers only ever see
// quiescent state.
func (s *Server) Step(fn func()) {
	s.gate.Lock()
	defer s.gate.Unlock()
	fn()
	s.publishLocked()
}

// Finish marks the run complete: publishes the final timeline rows,
// records the formatted result for /progress, and closes every SSE
// stream with a terminal "done" event.
func (s *Server) Finish(result string) {
	s.gate.Lock()
	s.publishLocked()
	s.gate.Unlock()
	s.subMu.Lock()
	s.done = true
	s.result = result
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan trace.Sample]struct{}{}
	s.subMu.Unlock()
}

// Close shuts the listener down. Safe after Finish; if the run aborted
// before Finish, pending SSE streams are closed unterminated.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	s.subMu.Lock()
	if !s.done {
		for ch := range s.subs {
			close(ch)
		}
		s.subs = map[chan trace.Sample]struct{}{}
	}
	s.subMu.Unlock()
	return err
}

// publishLocked (gate held) appends newly closed sampler windows to
// the backlog and fans them out. Slow subscribers drop rows rather
// than stall the coordinator: each channel is buffered, and a full
// buffer skips that subscriber for this row (it still has the backlog
// endpoint to recover from).
func (s *Server) publishLocked() {
	if s.hooks.Timeline == nil {
		return
	}
	fresh := s.hooks.Timeline(len(s.rows))
	if len(fresh) == 0 {
		return
	}
	s.subMu.Lock()
	s.rows = append(s.rows, fresh...)
	for _, row := range fresh {
		for ch := range s.subs {
			select {
			case ch <- row:
			default:
			}
		}
	}
	s.subMu.Unlock()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, `april run observatory
/progress   cycle, instructions, utilization, rate, ETA (JSON)
/counters   full counter-registry snapshot (JSON)
/metrics    Prometheus text exposition of the same counters
/timeline   sampler windows as Server-Sent Events (?from=N to replay)
/trace      Chrome-trace download of the event rings
/checkpoint restorable machine image download (april -restore)
`)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.gate.Lock()
	p := s.hooks.Progress()
	s.gate.Unlock()
	s.subMu.Lock()
	p.Done, p.Result = s.done, s.result
	s.subMu.Unlock()
	wall := time.Since(s.started).Seconds()
	p.WallSeconds = wall
	if wall > 0 {
		p.CyclesPerSecond = float64(p.Cycle) / wall
	}
	if p.CyclesPerSecond > 0 && !p.Done && p.BudgetCycles > p.Cycle {
		p.EtaBudgetSeconds = float64(p.BudgetCycles-p.Cycle) / p.CyclesPerSecond
	}
	writeJSON(w, p)
}

func (s *Server) handleCounters(w http.ResponseWriter, r *http.Request) {
	s.gate.Lock()
	snap := s.hooks.Counters()
	s.gate.Unlock()
	writeJSON(w, snap)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.gate.Lock()
	snap := s.hooks.Counters()
	s.gate.Unlock()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// handleTimeline streams sampler windows as SSE: first the backlog
// (from ?from=N, default 0), then live rows as the run publishes them,
// then one "done" event carrying the formatted result.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if s.hooks.Timeline == nil {
		http.Error(w, "timeline sampler not armed", http.StatusNotFound)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		from = n
	}
	fl, canFlush := w.(http.Flusher)

	// Atomically: copy the backlog and subscribe, so no row falls in
	// between. A finished run skips the subscription.
	s.subMu.Lock()
	backlog := s.rows
	var ch chan trace.Sample
	if !s.done {
		ch = make(chan trace.Sample, 256)
		s.subs[ch] = struct{}{}
	}
	s.subMu.Unlock()
	if ch != nil {
		defer func() {
			s.subMu.Lock()
			delete(s.subs, ch)
			s.subMu.Unlock()
		}()
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	if from > len(backlog) {
		from = len(backlog)
	}
	for _, row := range backlog[from:] {
		if writeSample(w, row) != nil {
			return
		}
	}
	if canFlush {
		fl.Flush()
	}
	if ch == nil {
		s.writeDone(w)
		return
	}
	ctx := r.Context()
	for {
		select {
		case row, ok := <-ch:
			if !ok {
				s.writeDone(w)
				return
			}
			if writeSample(w, row) != nil {
				return
			}
			if canFlush {
				fl.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.hooks.ChromeTrace == nil {
		http.Error(w, "tracer not armed", http.StatusNotFound)
		return
	}
	// Buffer under the gate: the exporter walks the live event rings,
	// so the machine must stay quiescent for the whole render — but
	// the client's download must not hold the run hostage.
	var buf bytes.Buffer
	s.gate.Lock()
	err := s.hooks.ChromeTrace(&buf)
	s.gate.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="april-trace.json"`)
	w.Write(buf.Bytes())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.hooks.Checkpoint == nil {
		http.Error(w, "checkpointing not armed", http.StatusNotFound)
		return
	}
	// Serialize under the gate — the snapshot walks live machine state
	// — then stream the image without holding the run hostage.
	s.gate.Lock()
	img, err := s.hooks.Checkpoint()
	s.gate.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="april-checkpoint.img"`)
	w.Write(img)
}

func (s *Server) writeDone(w io.Writer) {
	s.subMu.Lock()
	result := s.result
	s.subMu.Unlock()
	payload, _ := json.Marshal(map[string]string{"result": result})
	WriteSSEEvent(w, "done", string(payload))
}

func writeSample(w io.Writer, row trace.Sample) error {
	payload, err := json.Marshal(row)
	if err != nil {
		return err
	}
	return WriteSSEEvent(w, "window", string(payload))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(w, "\n// encode error: %v\n", err)
	}
}
