package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestObsPrometheusExposition renders a miniature registry snapshot
// and checks the full output byte-for-byte: family naming, labeled vs
// unlabeled series, counter vs gauge typing, and deterministic
// ordering (families sorted by name, series by numeric label value —
// node 2 before node 10, which a string sort would invert).
func TestObsPrometheusExposition(t *testing.T) {
	snap := map[string]map[string]uint64{
		"scheduler":   {"steals": 7},
		"node2.proc":  {"instructions": 22},
		"node10.proc": {"instructions": 1010},
		"shard0.pdes": {"local_steps": 40, "nodes": 32},
		"shard1.pdes": {"local_steps": 41, "nodes": 32},
		"network":     {"in_flight": 3, "messages": 9},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE april_network_in_flight gauge
april_network_in_flight 3
# TYPE april_network_messages counter
april_network_messages 9
# TYPE april_pdes_local_steps counter
april_pdes_local_steps{shard="0"} 40
april_pdes_local_steps{shard="1"} 41
# TYPE april_pdes_nodes gauge
april_pdes_nodes{shard="0"} 32
april_pdes_nodes{shard="1"} 32
# TYPE april_proc_instructions counter
april_proc_instructions{node="2"} 22
april_proc_instructions{node="10"} 1010
# TYPE april_scheduler_steals counter
april_scheduler_steals 7
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestObsPrometheusDeterministic re-renders the same snapshot many
// times; Go map iteration order must never leak into the output.
func TestObsPrometheusDeterministic(t *testing.T) {
	snap := map[string]map[string]uint64{}
	for _, g := range []string{"node0.proc", "node1.proc", "node2.proc", "node3.proc", "machine"} {
		snap[g] = map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4}
	}
	var first string
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, snap); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("iteration %d differs from first render", i)
		}
	}
}

// TestObsPrometheusLabelEscaping covers the text-format escapes for
// label values (backslash, quote, newline) and metric-name
// sanitization of characters outside [a-zA-Z0-9_].
func TestObsPrometheusLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	if got := sanitizeMetric("cache-hits.total"); got != "cache_hits_total" {
		t.Errorf("sanitizeMetric: got %q", got)
	}
	if got := sanitizeMetric("9lives"); got != "_9lives" {
		t.Errorf("sanitizeMetric leading digit: got %q", got)
	}

	// A group that doesn't match the <kind><index>.<subsystem> shape
	// must not invent labels; its dot sanitizes into the family name.
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, map[string]map[string]uint64{
		"odd.group": {"k": 1},
	}); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE april_odd_group_k counter\napril_odd_group_k 1\n"
	if buf.String() != want {
		t.Errorf("odd group: got %q, want %q", buf.String(), want)
	}
}

// TestObsPrometheusGaugeTyping spot-checks the gauge key set against
// the counter default.
func TestObsPrometheusGaugeTyping(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, map[string]map[string]uint64{
		"node0.memory": {"outstanding_remote": 1, "cache_hits": 2},
		"machine":      {"threads": 3, "cycles": 4},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE april_memory_outstanding_remote gauge",
		"# TYPE april_memory_cache_hits counter",
		"# TYPE april_machine_threads gauge",
		"# TYPE april_machine_cycles counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
