package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, useImm bool, imm int32) bool {
		i := Inst{
			Op:     Opcode(int(op) % NumOpcodes),
			Rd:     rd % NumRegs,
			Rs1:    rs1 % NumRegs,
			Rs2:    rs2 % NumRegs,
			UseImm: useImm,
			Imm:    imm,
		}
		got, err := Decode(Encode(i))
		return err == nil && got == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	w := Encode(Inst{Op: Opcode(200)})
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted undefined opcode 200")
	}
}

func TestDecodeRejectsBadRegister(t *testing.T) {
	// Register 45 is out of range (max is 39).
	w := Encode(Inst{Op: OpAdd, Rd: 45})
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted register 45")
	}
}

func TestTable2LoadAttributes(t *testing.T) {
	// Table 2 of the paper, row by row.
	want := []struct {
		op     Opcode
		reset  bool
		elTrap bool
		cmTrap bool // CM response "Trap" (vs "Wait")
	}{
		{OpLdtt, false, true, true},
		{OpLdett, true, true, true},
		{OpLdnt, false, false, true},
		{OpLdent, true, false, true},
		{OpLdnw, false, false, false},
		{OpLdenw, true, false, false},
		{OpLdtw, false, true, false},
		{OpLdetw, true, true, false},
	}
	for i, w := range want {
		if LoadFlavors[i] != w.op {
			t.Errorf("LoadFlavors[%d] = %v, want %v", i, LoadFlavors[i], w.op)
		}
		f := w.op.Flavor()
		if f.ResetFE != w.reset || f.TrapOnSync != w.elTrap || f.WaitOnMiss == w.cmTrap {
			t.Errorf("%s flavor = %+v, want reset=%v elTrap=%v cmTrap=%v",
				w.op.Name(), f, w.reset, w.elTrap, w.cmTrap)
		}
		if !w.op.IsLoad() {
			t.Errorf("%s not classified as load", w.op.Name())
		}
	}
}

func TestStoreAttributesMirrorLoads(t *testing.T) {
	for i, ld := range LoadFlavors {
		st := StoreFlavors[i]
		lf, sf := ld.Flavor(), st.Flavor()
		if sf.SetFE != lf.ResetFE {
			t.Errorf("%s SetFE=%v, want to mirror %s ResetFE=%v", st.Name(), sf.SetFE, ld.Name(), lf.ResetFE)
		}
		if sf.TrapOnSync != lf.TrapOnSync || sf.WaitOnMiss != lf.WaitOnMiss {
			t.Errorf("%s attributes %+v don't mirror %s %+v", st.Name(), sf, ld.Name(), lf)
		}
		if !st.IsStore() {
			t.Errorf("%s not classified as store", st.Name())
		}
	}
}

func TestComputeOpsAreStrict(t *testing.T) {
	strict := []Opcode{OpAdd, OpAddCC, OpSub, OpSubCC, OpAnd, OpOr, OpXor}
	for _, op := range strict {
		if !op.Strict() {
			t.Errorf("%s should be strict (trap on future operands)", op.Name())
		}
	}
	// Shifts/mul/div work on untagged intermediates and must not trap;
	// the compiler touches their tagged sources explicitly.
	nonStrict := []Opcode{OpTagCmp, OpRawAdd, OpRawSub, OpRawAnd, OpMovI, OpNop, OpLdtt, OpBa,
		OpSll, OpSrl, OpSra, OpMul, OpDiv, OpMod}
	for _, op := range nonStrict {
		if op.Strict() {
			t.Errorf("%s should not be strict", op.Name())
		}
	}
}

func TestCCAttributes(t *testing.T) {
	if !OpAddCC.SetsCC() || !OpSubCC.SetsCC() || !OpTagCmp.SetsCC() {
		t.Error("CC variants must set condition codes")
	}
	if OpAdd.SetsCC() || OpSub.SetsCC() {
		t.Error("non-CC variants must not set condition codes")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{R3(OpAdd, 8, 9, 10), "add r8, r9, r10"},
		{RI(OpSubCC, 16, 8, 4), "subcc r16, r8, 4"},
		{MovI(GAllocPtr, 0x2000), "movi g0, 0x2000"},
		{Ld(OpLdtt, 8, 9, -6), "ldtt r8, [r9+-6]"},
		{St(OpStfnt, 1, 8, 16), "stfnt [r1+8], r16"},
		{Br(OpBne, -3), "bne -3"},
		{Br(OpJempty, 2), "jempty +2"},
		{Jmpl(RLink, RZero, 100), "jmpl r5, 100"},
		{Trap(3), "trap 3"},
		{Nop, "nop"},
		{Halt, "halt"},
		{Inst{Op: OpIncFP}, "incfp"},
		{Inst{Op: OpRdFP, Rd: 8}, "rdfp r8"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAllOpcodesHaveNames(t *testing.T) {
	for op := 0; op < NumOpcodes; op++ {
		name := Opcode(op).Name()
		if name == "" {
			t.Errorf("opcode %d has empty name", op)
		}
		if op != int(OpNop) && name == "nop" && Opcode(op) != OpNop {
			t.Errorf("opcode %d missing from opInfo table", op)
		}
	}
	// Names must be unique.
	seen := map[string]Opcode{}
	for op := 0; op < NumOpcodes; op++ {
		name := Opcode(op).Name()
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, name)
		}
		seen[name] = Opcode(op)
	}
}

func TestRegNames(t *testing.T) {
	if RegName(0) != "r0" || RegName(31) != "r31" || RegName(32) != "g0" || RegName(39) != "g7" {
		t.Error("RegName convention broken")
	}
	if !strings.HasPrefix(RegName(40), "badreg") {
		t.Error("RegName should flag out-of-range registers")
	}
	if ValidReg(40) || !ValidReg(39) {
		t.Error("ValidReg boundary wrong")
	}
}
