package isa

// Opcode enumerates APRIL instructions. The set follows Table 1 of the
// paper (compute, memory, branch, jmpl) extended with the full/empty
// flavored memory operations of Table 2, the frame pointer
// instructions, the full/empty conditional branches, and the
// "out-of-band" instructions of Section 3.4 (FLUSH, LDIO, STIO).
type Opcode uint8

const (
	OpNop Opcode = iota

	// Compute instructions: three-address register-to-register
	// arithmetic/logic operations. All compute instructions are strict:
	// the hardware traps (TrapFuture) if an operand has its LSB set.
	// The CC variants additionally set the condition codes.
	OpAdd
	OpAddCC
	OpSub
	OpSubCC
	OpAnd
	OpAndCC
	OpOr
	OpOrCC
	OpXor
	OpXorCC
	OpSll
	OpSrl
	OpSra
	OpMul
	OpDiv
	OpMod

	// OpTagCmp compares the three-bit tag of rs1 with the immediate and
	// sets Z accordingly. It is NOT strict (never traps on futures):
	// software future detection on the Encore baseline is compiled from
	// it, and trap handlers use it to inspect values.
	OpTagCmp
	// OpRawAdd/OpRawSub/OpRawAnd are non-strict variants used by the
	// run-time system and software-check sequences to manipulate tagged
	// values without tripping the future-detection hardware.
	OpRawAdd
	OpRawSub
	OpRawAnd

	// OpMovI loads a 32-bit immediate into rd (SETHI+OR pair on the
	// SPARC implementation; charged as a single cycle here, matching
	// the paper's instruction-level simulator).
	OpMovI

	// Memory instructions. Loads per Table 2; stores are symmetric
	// (trap on *full* rather than empty; optionally set the bit full).
	// Effective address: R[rs1] + imm (or R[rs2] when register-indexed).
	// Loads write rd; stores write the value in R[rd] to memory.
	//
	// Name key:   ld e? {t|n} {t|w}
	//   e  = reset the full/empty bit to empty after the load
	//   t|n (first)  = trap / don't trap when the location is empty
	//   t|w (second) = trap / wait on a cache miss
	// and sttt etc. with f = set the bit full after the store.
	OpLdtt  // load, trap on empty, trap on miss
	OpLdett // load & empty, trap on empty, trap on miss
	OpLdnt  // load, no empty trap, trap on miss
	OpLdent // load & empty, no empty trap, trap on miss
	OpLdnw  // load, no empty trap, wait on miss
	OpLdenw // load & empty, no empty trap, wait on miss
	OpLdtw  // load, trap on empty, wait on miss
	OpLdetw // load & empty, trap on empty, wait on miss

	OpSttt  // store, trap on full, trap on miss
	OpStftt // store & fill, trap on full, trap on miss
	OpStnt  // store, no full trap, trap on miss
	OpStfnt // store & fill, no full trap, trap on miss
	OpStnw  // store, no full trap, wait on miss
	OpStfnw // store & fill, no full trap, wait on miss
	OpSttw  // store, trap on full, wait on miss
	OpStftw // store & fill, trap on full, wait on miss

	// Branches: PC-relative on the condition codes (offset in
	// instructions, in the immediate field).
	OpBa  // always
	OpBe  // Z
	OpBne // !Z
	OpBl  // N^V
	OpBle // Z | (N^V)
	OpBg  // !(Z | (N^V))
	OpBge // !(N^V)
	OpBcs // C (carry set; unsigned less-than)
	OpBcc // !C

	// Full/empty conditional branches (Section 4): dispatch on the
	// full/empty condition bit set by the most recent non-trapping
	// memory instruction. Implemented as coprocessor branches on the
	// SPARC version.
	OpJfull
	OpJempty

	// OpJmpl: jump and link. PC <- R[rs1] + imm (instruction index);
	// rd <- fixnum(return address). With rs1 = r0 this is an absolute
	// call; with rd = r0 a plain indirect jump.
	OpJmpl

	// Frame pointer instructions (Section 4).
	OpIncFP // FP <- FP+1 mod frames
	OpDecFP // FP <- FP-1 mod frames
	OpRdFP  // rd <- fixnum(FP)
	OpStFP  // FP <- fixnum value of R[rs1]

	// PSR access.
	OpRdPSR // rd <- PSR
	OpWrPSR // PSR <- R[rs1]

	// Out-of-band instructions (Section 3.4): software-enforced cache
	// management and memory-mapped I/O for IPIs, block transfers and
	// the fence counter.
	OpFlush // write back + invalidate the cache line at R[rs1]+imm
	OpLdio  // rd <- IO[R[rs1]+imm]   (fence counter, IPI status, ...)
	OpStio  // IO[R[rs1]+imm] <- R[rd] (send IPI, start block transfer)

	// OpTrap: software trap to the run-time system; the immediate
	// selects the service (see the rts package). This models the
	// SPARC "ticc" instruction used by the Mul-T runtime.
	OpTrap

	// OpHalt stops the processor (end of program / idle loop exit).
	OpHalt

	opLast // sentinel; must remain final
)

// NumOpcodes is the count of defined opcodes.
const NumOpcodes = int(opLast)

// Class partitions opcodes by execution semantics.
type Class uint8

const (
	ClassNop Class = iota
	ClassCompute
	ClassLoad
	ClassStore
	ClassBranch
	ClassJmpl
	ClassFrame // FP and PSR manipulation
	ClassCacheOp
	ClassIO
	ClassTrap
	ClassHalt
)

// MemFlavor captures the Table 2 attributes of a memory instruction.
type MemFlavor struct {
	ResetFE    bool // load: set location empty after reading
	SetFE      bool // store: set location full after writing
	TrapOnSync bool // trap on empty (load) / full (store) location
	WaitOnMiss bool // wait (stall) rather than trap on a cache miss
}

// info is the static decode table entry for an opcode.
type info struct {
	name    string
	class   Class
	setsCC  bool
	strict  bool // traps if an operand is a future (LSB set)
	flavor  MemFlavor
	hasMem  bool
	condEnc Cond // for branch opcodes
}

// Cond enumerates branch conditions.
type Cond uint8

const (
	CondA Cond = iota
	CondE
	CondNE
	CondL
	CondLE
	CondG
	CondGE
	CondCS
	CondCC
	CondFull
	CondEmpty
)

var opInfo = [NumOpcodes]info{
	OpNop:   {name: "nop", class: ClassNop},
	OpAdd:   {name: "add", class: ClassCompute, strict: true},
	OpAddCC: {name: "addcc", class: ClassCompute, strict: true, setsCC: true},
	OpSub:   {name: "sub", class: ClassCompute, strict: true},
	OpSubCC: {name: "subcc", class: ClassCompute, strict: true, setsCC: true},
	OpAnd:   {name: "and", class: ClassCompute, strict: true},
	OpAndCC: {name: "andcc", class: ClassCompute, strict: true, setsCC: true},
	OpOr:    {name: "or", class: ClassCompute, strict: true},
	OpOrCC:  {name: "orcc", class: ClassCompute, strict: true, setsCC: true},
	OpXor:   {name: "xor", class: ClassCompute, strict: true},
	OpXorCC: {name: "xorcc", class: ClassCompute, strict: true, setsCC: true},
	// Shifts, multiply and divide are NOT strict: on the SPARC
	// implementation they are multi-step sequences / software routines
	// whose intermediates are untagged (an untagged odd value would
	// spuriously read as a future). The compiler emits explicit touches
	// on their tagged source operands instead.
	OpSll:    {name: "sll", class: ClassCompute},
	OpSrl:    {name: "srl", class: ClassCompute},
	OpSra:    {name: "sra", class: ClassCompute},
	OpMul:    {name: "mul", class: ClassCompute},
	OpDiv:    {name: "div", class: ClassCompute},
	OpMod:    {name: "mod", class: ClassCompute},
	OpTagCmp: {name: "tagcmp", class: ClassCompute, setsCC: true},
	OpRawAdd: {name: "rawadd", class: ClassCompute},
	OpRawSub: {name: "rawsub", class: ClassCompute},
	OpRawAnd: {name: "rawand", class: ClassCompute},
	OpMovI:   {name: "movi", class: ClassCompute},

	OpLdtt:  {name: "ldtt", class: ClassLoad, hasMem: true, flavor: MemFlavor{TrapOnSync: true}},
	OpLdett: {name: "ldett", class: ClassLoad, hasMem: true, flavor: MemFlavor{ResetFE: true, TrapOnSync: true}},
	OpLdnt:  {name: "ldnt", class: ClassLoad, hasMem: true, flavor: MemFlavor{}},
	OpLdent: {name: "ldent", class: ClassLoad, hasMem: true, flavor: MemFlavor{ResetFE: true}},
	OpLdnw:  {name: "ldnw", class: ClassLoad, hasMem: true, flavor: MemFlavor{WaitOnMiss: true}},
	OpLdenw: {name: "ldenw", class: ClassLoad, hasMem: true, flavor: MemFlavor{ResetFE: true, WaitOnMiss: true}},
	OpLdtw:  {name: "ldtw", class: ClassLoad, hasMem: true, flavor: MemFlavor{TrapOnSync: true, WaitOnMiss: true}},
	OpLdetw: {name: "ldetw", class: ClassLoad, hasMem: true, flavor: MemFlavor{ResetFE: true, TrapOnSync: true, WaitOnMiss: true}},

	OpSttt:  {name: "sttt", class: ClassStore, hasMem: true, flavor: MemFlavor{TrapOnSync: true}},
	OpStftt: {name: "stftt", class: ClassStore, hasMem: true, flavor: MemFlavor{SetFE: true, TrapOnSync: true}},
	OpStnt:  {name: "stnt", class: ClassStore, hasMem: true, flavor: MemFlavor{}},
	OpStfnt: {name: "stfnt", class: ClassStore, hasMem: true, flavor: MemFlavor{SetFE: true}},
	OpStnw:  {name: "stnw", class: ClassStore, hasMem: true, flavor: MemFlavor{WaitOnMiss: true}},
	OpStfnw: {name: "stfnw", class: ClassStore, hasMem: true, flavor: MemFlavor{SetFE: true, WaitOnMiss: true}},
	OpSttw:  {name: "sttw", class: ClassStore, hasMem: true, flavor: MemFlavor{TrapOnSync: true, WaitOnMiss: true}},
	OpStftw: {name: "stftw", class: ClassStore, hasMem: true, flavor: MemFlavor{SetFE: true, TrapOnSync: true, WaitOnMiss: true}},

	OpBa:     {name: "ba", class: ClassBranch, condEnc: CondA},
	OpBe:     {name: "be", class: ClassBranch, condEnc: CondE},
	OpBne:    {name: "bne", class: ClassBranch, condEnc: CondNE},
	OpBl:     {name: "bl", class: ClassBranch, condEnc: CondL},
	OpBle:    {name: "ble", class: ClassBranch, condEnc: CondLE},
	OpBg:     {name: "bg", class: ClassBranch, condEnc: CondG},
	OpBge:    {name: "bge", class: ClassBranch, condEnc: CondGE},
	OpBcs:    {name: "bcs", class: ClassBranch, condEnc: CondCS},
	OpBcc:    {name: "bcc", class: ClassBranch, condEnc: CondCC},
	OpJfull:  {name: "jfull", class: ClassBranch, condEnc: CondFull},
	OpJempty: {name: "jempty", class: ClassBranch, condEnc: CondEmpty},

	OpJmpl: {name: "jmpl", class: ClassJmpl},

	OpIncFP: {name: "incfp", class: ClassFrame},
	OpDecFP: {name: "decfp", class: ClassFrame},
	OpRdFP:  {name: "rdfp", class: ClassFrame},
	OpStFP:  {name: "stfp", class: ClassFrame},
	OpRdPSR: {name: "rdpsr", class: ClassFrame},
	OpWrPSR: {name: "wrpsr", class: ClassFrame},

	OpFlush: {name: "flush", class: ClassCacheOp, hasMem: true},
	OpLdio:  {name: "ldio", class: ClassIO, hasMem: true},
	OpStio:  {name: "stio", class: ClassIO, hasMem: true},

	OpTrap: {name: "trap", class: ClassTrap},
	OpHalt: {name: "halt", class: ClassHalt},
}

// Name returns the assembler mnemonic for op.
func (op Opcode) Name() string {
	if int(op) < NumOpcodes {
		return opInfo[op].name
	}
	return "invalid"
}

// Class returns op's execution class.
func (op Opcode) Class() Class {
	if int(op) < NumOpcodes {
		return opInfo[op].class
	}
	return ClassNop
}

// SetsCC reports whether op writes the integer condition codes.
func (op Opcode) SetsCC() bool { return int(op) < NumOpcodes && opInfo[op].setsCC }

// Strict reports whether op traps when an operand is a future
// (hardware future detection, Section 4).
func (op Opcode) Strict() bool { return int(op) < NumOpcodes && opInfo[op].strict }

// Flavor returns the Table 2 attributes for a memory opcode.
func (op Opcode) Flavor() MemFlavor {
	if int(op) < NumOpcodes {
		return opInfo[op].flavor
	}
	return MemFlavor{}
}

// Cond returns the branch condition encoded by a branch opcode.
func (op Opcode) Cond() Cond {
	if int(op) < NumOpcodes {
		return opInfo[op].condEnc
	}
	return CondA
}

// IsLoad and IsStore classify memory opcodes.
func (op Opcode) IsLoad() bool  { return op.Class() == ClassLoad }
func (op Opcode) IsStore() bool { return op.Class() == ClassStore }

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// LoadFlavors lists the eight load opcodes in Table 2 order (types 1-8).
var LoadFlavors = [8]Opcode{OpLdtt, OpLdett, OpLdnt, OpLdent, OpLdnw, OpLdenw, OpLdtw, OpLdetw}

// StoreFlavors lists the eight store opcodes in the symmetric order.
var StoreFlavors = [8]Opcode{OpSttt, OpStftt, OpStnt, OpStfnt, OpStnw, OpStfnw, OpSttw, OpStftw}
