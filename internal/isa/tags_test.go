package isa

import (
	"testing"
	"testing/quick"
)

func TestFixnumRoundTrip(t *testing.T) {
	cases := []int32{0, 1, -1, 42, -42, 1 << 28, -(1 << 28), (1 << 29) - 1, -(1 << 29)}
	for _, n := range cases {
		w := MakeFixnum(n)
		if !IsFixnum(w) {
			t.Errorf("MakeFixnum(%d) = %#x: not tagged fixnum", n, w)
		}
		if got := FixnumValue(w); got != n {
			t.Errorf("FixnumValue(MakeFixnum(%d)) = %d", n, got)
		}
		if IsFuture(w) {
			t.Errorf("fixnum %d detected as future", n)
		}
	}
}

func TestFixnumRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		// Clamp to the 30-bit fixnum range the tag scheme supports.
		n = n << 2 >> 2
		w := MakeFixnum(n)
		return IsFixnum(w) && FixnumValue(w) == n && !IsFuture(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointerTagging(t *testing.T) {
	addrs := []uint32{HeapBase, HeapBase + 8, 0x10000, 0xfffffff8}
	for _, a := range addrs {
		cons := MakeCons(a)
		fut := MakeFuture(a)
		oth := MakeOther(a)
		if !IsCons(cons) || IsFuture(cons) || IsFixnum(cons) {
			t.Errorf("cons tag wrong for %#x: %#x", a, cons)
		}
		if !IsFuture(fut) || IsCons(fut) || IsFixnum(fut) {
			t.Errorf("future tag wrong for %#x: %#x", a, fut)
		}
		if !IsOther(oth) || IsFuture(oth) || IsFixnum(oth) || IsCons(oth) {
			t.Errorf("other tag wrong for %#x: %#x", a, oth)
		}
		for _, w := range []Word{cons, fut, oth} {
			if PointerAddress(w) != a&^7 {
				t.Errorf("PointerAddress(%#x) = %#x, want %#x", w, PointerAddress(w), a&^7)
			}
		}
	}
}

// TestFutureDetectionIsLSB checks the paper's key hardware property:
// a word is a future exactly when its least significant bit is set
// (Section 4, "Future pointers are easily detected by their non-zero
// least significant bit").
func TestFutureDetectionIsLSB(t *testing.T) {
	f := func(raw uint32) bool {
		w := Word(raw)
		return IsFuture(w) == (raw&1 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And the four Figure 3 encodings are mutually exclusive.
	f2 := func(raw uint32) bool {
		w := Word(raw &^ 7)
		n := 0
		for _, x := range []Word{w | FixnumTag, w | OtherTag, w | ConsTag, w | FutureTag} {
			if IsFuture(x) {
				n++
			}
		}
		return n == 1 // only the future tag has the LSB set
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}
}

func TestImmediates(t *testing.T) {
	for _, w := range []Word{Nil, False, True, Unspec, EOFObj} {
		if !IsOther(w) {
			t.Errorf("immediate %#x not 'other'-tagged", w)
		}
		if IsPointer(w) {
			t.Errorf("immediate %#x classified as pointer", w)
		}
	}
	if Truthy(False) {
		t.Error("#f is truthy")
	}
	for _, w := range []Word{True, Nil, MakeFixnum(0)} {
		if !Truthy(w) {
			t.Errorf("%#x should be truthy (only #f is false)", w)
		}
	}
	if MakeBool(true) != True || MakeBool(false) != False {
		t.Error("MakeBool wrong")
	}
}

func TestTagName(t *testing.T) {
	cases := map[Word]string{
		MakeFixnum(7):            "fixnum",
		MakeCons(HeapBase):       "cons",
		MakeFuture(HeapBase):     "future",
		Nil:                      "other",
		MakeOther(HeapBase + 16): "other",
	}
	for w, want := range cases {
		if got := TagName(w); got != want {
			t.Errorf("TagName(%#x) = %q, want %q", w, got, want)
		}
	}
}

func TestFixnumArithPreservesTag(t *testing.T) {
	// The compiler relies on tagged fixnum add/sub working directly on
	// the tagged representation.
	f := func(a, b int32) bool {
		a, b = a<<2>>2, b<<2>>2
		sum := int32(a+b) << 2 >> 2 // wrapped 30-bit result
		w := Word(uint32(MakeFixnum(a)) + uint32(MakeFixnum(b)))
		return IsFixnum(w) && FixnumValue(w) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
