package isa

// Micro is a predecoded instruction: the original Inst together with
// every per-instruction decision the interpreter would otherwise make
// on the hot path — the handler index (Kind), the condition-code /
// strictness / memory attributes that live behind the opcode-info
// table, and the branch condition. Predecoding a Program once turns
// the interpreter's nested opcode switches into a single flat table
// dispatch per executed instruction.
//
// A Micro carries no execution state: predecode is a pure function of
// the instruction, so a predecoded program can be shared read-only by
// every processor of a machine.
type Micro struct {
	Inst             // the original instruction (trap payloads, errors)
	Kind   MicroKind // flat handler index
	SetsCC bool
	Strict bool // traps if an operand is a future (LSB set)
	Store  bool // memory kind: store rather than load
	Cond   Cond // branch kind: the encoded condition
	Flavor MemFlavor
}

// MicroKind is the flat handler index of a predecoded instruction.
// Compute opcodes that differ only in condition-code or strictness
// behavior (add/addcc/rawadd) share a kind and dispatch on the
// predecoded SetsCC/Strict flags.
type MicroKind uint8

const (
	MNop MicroKind = iota
	MAdd
	MSub
	MAnd
	MOr
	MXor
	MSll
	MSrl
	MSra
	MMul
	MDiv
	MMod
	MTagCmp
	MMovI
	MMem // flavored load/store (Store + Flavor select the behavior)
	MBranch
	MJmpl
	MIncFP
	MDecFP
	MRdFP
	MStFP
	MRdPSR
	MWrPSR
	MFlush
	MLdio
	MStio
	MTrap
	MHalt
	MInvalid // undefined opcode: the handler reports the decode error

	numMicroKinds // sentinel; must remain final
)

// NumMicroKinds sizes a flat handler table.
const NumMicroKinds = int(numMicroKinds)

// computeKinds maps the compute opcodes onto their shared handler
// kinds.
var computeKinds = map[Opcode]MicroKind{
	OpAdd: MAdd, OpAddCC: MAdd, OpRawAdd: MAdd,
	OpSub: MSub, OpSubCC: MSub, OpRawSub: MSub,
	OpAnd: MAnd, OpAndCC: MAnd, OpRawAnd: MAnd,
	OpOr: MOr, OpOrCC: MOr,
	OpXor: MXor, OpXorCC: MXor,
	OpSll: MSll, OpSrl: MSrl, OpSra: MSra,
	OpMul: MMul, OpDiv: MDiv, OpMod: MMod,
	OpTagCmp: MTagCmp, OpMovI: MMovI,
}

// frameKinds maps the FP/PSR opcodes onto their handler kinds.
var frameKinds = map[Opcode]MicroKind{
	OpIncFP: MIncFP, OpDecFP: MDecFP, OpRdFP: MRdFP,
	OpStFP: MStFP, OpRdPSR: MRdPSR, OpWrPSR: MWrPSR,
}

// PredecodeInst predecodes one instruction.
func PredecodeInst(in Inst) Micro {
	u := Micro{
		Inst:   in,
		Kind:   MInvalid,
		SetsCC: in.Op.SetsCC(),
		Strict: in.Op.Strict(),
		Cond:   in.Op.Cond(),
		Flavor: in.Op.Flavor(),
	}
	switch in.Op.Class() {
	case ClassNop:
		// Class() maps undefined opcodes to ClassNop, and the reference
		// interpreter consequently executes them as nops; mirror that so
		// the two paths agree on every representable instruction.
		u.Kind = MNop
	case ClassCompute:
		if k, ok := computeKinds[in.Op]; ok {
			u.Kind = k
		}
	case ClassLoad:
		u.Kind = MMem
	case ClassStore:
		u.Kind = MMem
		u.Store = true
	case ClassBranch:
		u.Kind = MBranch
	case ClassJmpl:
		u.Kind = MJmpl
	case ClassFrame:
		if k, ok := frameKinds[in.Op]; ok {
			u.Kind = k
		}
	case ClassCacheOp:
		u.Kind = MFlush
	case ClassIO:
		if in.Op == OpLdio {
			u.Kind = MLdio
		} else {
			u.Kind = MStio
		}
	case ClassTrap:
		u.Kind = MTrap
	case ClassHalt:
		u.Kind = MHalt
	}
	return u
}

// Predecode lowers the program's code to micro-op form. The result
// aliases nothing in p and is immutable by convention: every processor
// of a machine shares one predecoded image.
func (p *Program) Predecode() []Micro {
	out := make([]Micro, len(p.Code))
	for i, in := range p.Code {
		out[i] = PredecodeInst(in)
	}
	return out
}
