package isa

import (
	"math/rand"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; sum 1..5 with a loop
        movi r8, 20          ; i = fixnum 5... stored tagged by hand
        movi r9, 0
loop:   add r9, r9, r8
        subcc r8, r8, 4
        bg loop
        halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 6 {
		t.Fatalf("assembled %d instructions", len(p.Code))
	}
	if p.Symbols["loop"] != 2 {
		t.Errorf("label loop at %d", p.Symbols["loop"])
	}
	if p.Code[4].Op != OpBg || p.Code[4].Imm != -2 {
		t.Errorf("branch = %+v", p.Code[4])
	}
}

func TestAssembleEntryDirectiveAndMarker(t *testing.T) {
	p, err := Assemble(".entry main\n nop\nmain: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d", p.Entry)
	}
	p2, err := Assemble(" nop\n=> halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Entry != 1 {
		t.Errorf("marker entry = %d", p2.Entry)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",          // wrong arity
		"add r99, r1, r2",     // bad register
		"bne nowhere",         // undefined label
		"x: nop\nx: nop",      // duplicate label
		"ldnt r1, r2",         // missing brackets
		".entry missing\nnop", // undefined entry
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid program %q", src)
		}
	}
}

func TestAssembleJmplForms(t *testing.T) {
	p, err := Assemble(`
f:      jmpl r5, f
        jmpl r5, 7
        jmpl r0, r5+0
        jmpl r0, r5+12
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Inst{
		{Op: OpJmpl, Rd: RLink, UseImm: true, Imm: 0},
		{Op: OpJmpl, Rd: RLink, UseImm: true, Imm: 7},
		{Op: OpJmpl, Rd: 0, Rs1: RLink, UseImm: true, Imm: 0},
		{Op: OpJmpl, Rd: 0, Rs1: RLink, UseImm: true, Imm: 12},
	}
	for i, w := range want {
		if p.Code[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Code[i], w)
		}
	}
}

// TestAsmDisasmRoundTrip: for random valid instructions, assembling the
// disassembly reproduces the same semantics (compared through a second
// disassembly, since ignored operand fields need not survive).
func TestAsmDisasmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		in := Inst{
			Op:     Opcode(rng.Intn(NumOpcodes)),
			Rd:     uint8(rng.Intn(NumRegs)),
			Rs1:    uint8(rng.Intn(NumRegs)),
			Rs2:    uint8(rng.Intn(NumRegs)),
			UseImm: rng.Intn(2) == 0,
			Imm:    int32(rng.Uint32()),
		}
		if in.Op.Class() == ClassBranch {
			// Branches always carry an immediate offset.
			in.UseImm = true
		}
		text := in.String()
		p, err := Assemble(text)
		if err != nil {
			t.Fatalf("#%d: assemble %q (from %+v): %v", i, text, in, err)
		}
		if len(p.Code) != 1 {
			t.Fatalf("#%d: %q assembled to %d instructions", i, text, len(p.Code))
		}
		if got := p.Code[0].String(); got != text {
			t.Fatalf("#%d: round trip %q -> %q (in %+v out %+v)", i, text, got, in, p.Code[0])
		}
	}
}

// TestListingRoundTrip assembles a full disassembler listing with
// labels and entry marker back into an equivalent program.
func TestListingRoundTrip(t *testing.T) {
	orig := &Program{
		Code: []Inst{
			Trap(2),
			Halt,
			MovI(8, MakeFixnum(3)),
			RI(OpSubCC, 0, 8, 4),
			Br(OpBg, -1),
			Jmpl(RLink, RZero, 2),
			Halt,
		},
		Entry:   2,
		Symbols: map[string]uint32{"__main_exit": 0, "main": 2},
	}
	listing := orig.Disassemble()
	back, err := Assemble(listing)
	if err != nil {
		t.Fatalf("assemble listing:\n%s\nerror: %v", listing, err)
	}
	if back.Entry != orig.Entry {
		t.Errorf("entry %d, want %d", back.Entry, orig.Entry)
	}
	if len(back.Code) != len(orig.Code) {
		t.Fatalf("code length %d, want %d", len(back.Code), len(orig.Code))
	}
	for i := range orig.Code {
		if back.Code[i].String() != orig.Code[i].String() {
			t.Errorf("inst %d: %q != %q", i, back.Code[i], orig.Code[i])
		}
	}
	for name, addr := range orig.Symbols {
		if back.Symbols[name] != addr {
			t.Errorf("symbol %s at %d, want %d", name, back.Symbols[name], addr)
		}
	}
}
