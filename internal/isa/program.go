package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an executable APRIL program image: decoded instructions
// indexed by instruction address (the PC is an instruction index, not a
// byte address), an entry point, and an optional symbol table mapping
// procedure names to entry addresses for disassembly and debugging.
type Program struct {
	Code    []Inst
	Entry   uint32
	Symbols map[string]uint32

	// symAt is the lazily built reverse index for SymbolAt, rebuilt
	// whenever Symbols has grown since the last build (the assembler's
	// callers may append runtime stubs after Assemble returns).
	symAt map[uint32]string
	symN  int
}

// Fetch returns the instruction at pc, or an error for a wild PC.
func (p *Program) Fetch(pc uint32) (Inst, error) {
	if int(pc) >= len(p.Code) {
		return Inst{}, fmt.Errorf("isa: PC %d outside program of %d instructions", pc, len(p.Code))
	}
	return p.Code[pc], nil
}

// SymbolAt returns the name of the symbol defined exactly at pc, if
// any. The reverse index is built once and reused (the disassembler
// asks per instruction); when several names share an address the
// lexicographically smallest wins, so the answer is deterministic.
// Not safe for concurrent use with symbol-table mutation.
func (p *Program) SymbolAt(pc uint32) (string, bool) {
	if p.symAt == nil || p.symN != len(p.Symbols) {
		p.symAt = make(map[uint32]string, len(p.Symbols))
		for name, addr := range p.Symbols {
			if prev, ok := p.symAt[addr]; !ok || name < prev {
				p.symAt[addr] = name
			}
		}
		p.symN = len(p.Symbols)
	}
	name, ok := p.symAt[pc]
	return name, ok
}

// EncodeImage serializes the program's code to its binary form.
func (p *Program) EncodeImage() []uint64 {
	img := make([]uint64, len(p.Code))
	for i, in := range p.Code {
		img[i] = Encode(in)
	}
	return img
}

// LoadImage decodes a binary image into a program.
func LoadImage(img []uint64, entry uint32) (*Program, error) {
	p := &Program{Code: make([]Inst, len(img)), Entry: entry}
	for i, w := range img {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at instruction %d: %w", i, err)
		}
		p.Code[i] = in
	}
	if int(entry) > len(img) {
		return nil, fmt.Errorf("isa: entry %d outside image of %d instructions", entry, len(img))
	}
	return p, nil
}

// Disassemble renders the program as an assembler listing with symbol
// labels.
func (p *Program) Disassemble() string {
	// Invert the symbol table once; sort co-located labels so the
	// listing does not depend on map iteration order.
	labels := make(map[uint32][]string, len(p.Symbols))
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}
	var b strings.Builder
	for pc, in := range p.Code {
		for _, l := range labels[uint32(pc)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		marker := "  "
		if uint32(pc) == p.Entry {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s%6d:  %s\n", marker, pc, in)
	}
	return b.String()
}
