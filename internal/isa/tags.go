// Package isa defines the APRIL instruction set architecture: machine
// words with their low-bit data type tags (Figure 3 of the paper),
// register numbering, opcodes with their timing-relevant attributes,
// the binary instruction encoding, and a disassembler.
//
// APRIL is a 32-bit tagged RISC. Every data word carries its type in
// its low-order bits so that the hardware can detect futures (and other
// type errors) for free: a future pointer always has its least
// significant bit set, so strict (compute) instructions trap on futures
// with a single wired-OR of the operand LSBs.
package isa

// Word is a 32-bit APRIL machine word. The low-order bits carry the
// data type tag per Figure 3 of the paper:
//
//	Fixnum  ....00   30-bit signed integer in bits 31..2
//	Other   ...010   immediates (nil, booleans, chars) and non-cons heap pointers
//	Cons    ...110   pointer to a cons cell
//	Future  ...101   pointer to a future object (LSB = 1)
//
// Heap objects are aligned to 8-byte boundaries so that the low three
// bits of a pointer are free to hold the tag.
type Word uint32

// Tag values from Figure 3. FixnumTag uses only the low two bits; the
// other tags use the low three.
const (
	FixnumTag Word = 0x0 // ....00
	OtherTag  Word = 0x2 // ...010
	ConsTag   Word = 0x6 // ...110
	FutureTag Word = 0x5 // ...101
)

// TagMask3 extracts a three-bit tag; TagMask2 the fixnum tag.
const (
	TagMask2 Word = 0x3
	TagMask3 Word = 0x7
)

// Distinguished "other"-tagged immediates. They live below HeapBase so
// they can never be confused with heap pointers.
const (
	Nil    Word = 0<<3 | 2 // the empty list '()
	False  Word = 1<<3 | 2 // #f
	True   Word = 2<<3 | 2 // #t
	Unspec Word = 3<<3 | 2 // unspecified value (result of set!, etc.)
	EOFObj Word = 4<<3 | 2 // end-of-input marker
)

// HeapBase is the lowest byte address used for heap-allocated objects.
// Anything "other"-tagged below HeapBase is an immediate.
const HeapBase = 0x1000

// MakeFixnum boxes a signed integer as a fixnum word. Values outside
// the 30-bit range wrap (as the silicon would).
func MakeFixnum(n int32) Word { return Word(uint32(n) << 2) }

// FixnumValue extracts the signed integer from a fixnum word.
func FixnumValue(w Word) int32 { return int32(uint32(w)) >> 2 }

// IsFixnum reports whether w carries the fixnum tag.
func IsFixnum(w Word) bool { return w&TagMask2 == FixnumTag }

// IsFuture reports whether w is a future pointer. Per Section 4 of the
// paper, futures are the only values with a set least significant bit,
// which is what the hardware future-detection logic tests.
func IsFuture(w Word) bool { return w&1 == 1 }

// IsCons reports whether w is a cons pointer.
func IsCons(w Word) bool { return w&TagMask3 == ConsTag }

// IsOther reports whether w carries the "other" tag (immediates and
// non-cons heap pointers such as vectors, closures and strings).
func IsOther(w Word) bool { return w&TagMask3 == OtherTag }

// IsPointer reports whether w points into the heap (any tag, address at
// or above HeapBase).
func IsPointer(w Word) bool {
	if IsFixnum(w) {
		return false
	}
	return PointerAddress(w) >= HeapBase
}

// PointerAddress strips the tag from a pointer word, yielding the byte
// address of the referenced object (8-byte aligned).
func PointerAddress(w Word) uint32 { return uint32(w) &^ 7 }

// MakePointer tags an 8-byte-aligned byte address with the given tag.
func MakePointer(addr uint32, tag Word) Word { return Word(addr&^7) | tag }

// MakeCons tags addr as a cons pointer.
func MakeCons(addr uint32) Word { return MakePointer(addr, ConsTag) }

// MakeFuture tags addr as a future pointer.
func MakeFuture(addr uint32) Word { return MakePointer(addr, FutureTag) }

// MakeOther tags addr as an "other" heap pointer.
func MakeOther(addr uint32) Word { return MakePointer(addr, OtherTag) }

// MakeBool returns the canonical boolean word for b.
func MakeBool(b bool) Word {
	if b {
		return True
	}
	return False
}

// Truthy implements Scheme truth: everything except #f is true.
func Truthy(w Word) bool { return w != False }

// TagName returns a short human-readable name for w's tag, for
// disassembly and debugging.
func TagName(w Word) string {
	switch {
	case IsFixnum(w):
		return "fixnum"
	case IsFuture(w):
		return "future"
	case IsCons(w):
		return "cons"
	case IsOther(w):
		return "other"
	default:
		return "invalid"
	}
}
