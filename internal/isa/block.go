package isa

// Basic-block discovery over a predecoded program: the third execution
// tier's translation unit. A block is a maximal straight-line run of
// fusable micro-ops starting at an entry PC, optionally ending with a
// control transfer (branch/jmpl). The superinstruction executor
// (internal/proc, compile.go) runs a whole block per dispatch with the
// per-instruction fetch and PC-bounds checks hoisted to block entry,
// falling back to the per-op path at block exits, on any trap, and on
// anything the fuse classification excludes.
//
// Translation is profile-guided: every entry PC carries an execution
// counter, and a block is discovered only once the counter crosses the
// BlockSet's threshold, so short runs never pay translation. Blocks
// alias the shared predecoded image — translation writes only the
// side tables (lens, counts), never a Micro, so the image stays pure
// and shareable exactly as Predecode promises.

// FuseClass says whether a micro-op may live inside a fused block.
type FuseClass uint8

const (
	// FuseNever ends a block before the op: the op has side effects the
	// fused executor must not reorder against the machine loop (traps,
	// halts, I/O, cache management) or is an undefined opcode.
	FuseNever FuseClass = iota
	// FuseStep ops touch only the executing frame's registers, PSR, and
	// frame pointer — fusable under every memory configuration.
	FuseStep
	// FuseMem is the flavored load/store: fusable only when the machine
	// proves memory accesses cannot involve the cache/network fabric
	// (the perfect-memory configuration).
	FuseMem
)

// fuseClasses classifies every MicroKind. MBranch and MJmpl are
// fusable but terminal (blockTerminal): they end the block after
// executing.
var fuseClasses = [NumMicroKinds]FuseClass{
	MNop: FuseStep, MAdd: FuseStep, MSub: FuseStep, MAnd: FuseStep,
	MOr: FuseStep, MXor: FuseStep, MSll: FuseStep, MSrl: FuseStep,
	MSra: FuseStep, MMul: FuseStep, MDiv: FuseStep, MMod: FuseStep,
	MTagCmp: FuseStep, MMovI: FuseStep, MBranch: FuseStep,
	MJmpl: FuseStep, MIncFP: FuseStep, MDecFP: FuseStep,
	MRdFP: FuseStep, MStFP: FuseStep, MRdPSR: FuseStep,
	MWrPSR: FuseStep,
	MMem:   FuseMem,
	// MFlush, MLdio, MStio, MTrap, MHalt, MInvalid: FuseNever (zero).
}

// Fuse returns the fuse classification of a kind.
func (k MicroKind) Fuse() FuseClass { return fuseClasses[k] }

// blockTerminal reports whether the op ends a block after executing.
func blockTerminal(k MicroKind) bool { return k == MBranch || k == MJmpl }

// MaxBlockLen caps a fused block. Long enough that real basic blocks
// (compiler output rarely exceeds a few dozen straight-line ops) fuse
// whole; short enough that the executor's budget accounting stays
// fine-grained.
const MaxBlockLen = 96

// BlockSet is one machine's translation state over a shared predecoded
// image: per-entry-PC profile counters and the discovered block
// lengths. The zero-allocation contract of the steady state holds
// because both side tables are sized at construction — translation
// only writes them.
//
// Mutability contract: Enter (the only mutating method) may be called
// from exactly one goroutine at a time. The machine guarantees this by
// fusing only on the coordinating goroutine (the sharded loop's
// parallel phases never fuse).
type BlockSet struct {
	// Micro is the shared predecoded image the blocks alias.
	Micro []Micro
	// Threshold is how many times an entry PC must execute cold before
	// it is translated.
	Threshold uint32

	// lens[pc] encodes the translation state of entry PC pc:
	// 0 = cold (not yet profiled past threshold), 1 = translated to "no
	// block" (the op at pc is unfusable here), n+1 = block of n ops.
	lens []uint8
	// counts[pc] profiles cold entries; unused once lens[pc] != 0.
	counts []uint32
	// memOK admits FuseMem ops (perfect-memory machines).
	memOK bool

	// Blocks and NoBlocks count translation outcomes: entry PCs that
	// became fused blocks vs. ones pinned per-op (telemetry).
	Blocks   uint64
	NoBlocks uint64
}

// DefaultCompileThreshold is the profile-guided translation trigger
// when the configuration does not override it.
const DefaultCompileThreshold = 8

// NewBlockSet builds the translation state for a predecoded image.
// threshold <= 0 selects DefaultCompileThreshold. memOK admits
// flavored loads/stores into blocks (perfect-memory machines only).
func NewBlockSet(micro []Micro, threshold int, memOK bool) *BlockSet {
	if threshold <= 0 {
		threshold = DefaultCompileThreshold
	}
	return &BlockSet{
		Micro:     micro,
		Threshold: uint32(threshold),
		lens:      make([]uint8, len(micro)),
		counts:    make([]uint32, len(micro)),
		memOK:     memOK,
	}
}

// Enter is the executor's per-dispatch entry: it returns the length of
// the translated block at pc, or 0 when execution must proceed per-op
// (cold PC still warming up, or an unfusable op). Cold entries are
// profiled; crossing the threshold translates. pc must be in range.
func (b *BlockSet) Enter(pc uint32) int {
	switch v := b.lens[pc]; {
	case v >= 2:
		return int(v - 1)
	case v == 1:
		return 0
	}
	c := b.counts[pc] + 1
	b.counts[pc] = c
	if c < b.Threshold {
		return 0
	}
	return b.translate(pc)
}

// Translated reports the block length at pc without profiling (tests
// and telemetry).
func (b *BlockSet) Translated(pc uint32) int {
	if v := b.lens[pc]; v >= 2 {
		return int(v - 1)
	}
	return 0
}

// translate discovers the straight-line block at pc and records its
// length. Discovery only reads the shared image and writes lens.
func (b *BlockSet) translate(pc uint32) int {
	n := 0
	for i := pc; i < uint32(len(b.Micro)) && n < MaxBlockLen; i++ {
		k := b.Micro[i].Kind
		cls := fuseClasses[k]
		if cls == FuseNever || (cls == FuseMem && !b.memOK) {
			break
		}
		n++
		if blockTerminal(k) {
			break
		}
	}
	if n == 0 {
		b.lens[pc] = 1
		b.NoBlocks++
		return 0
	}
	b.lens[pc] = uint8(n + 1)
	b.Blocks++
	return n
}

// microKindNames index MicroKind; used by the "isa" counter group and
// telemetry output.
var microKindNames = [NumMicroKinds]string{
	MNop: "nop", MAdd: "add", MSub: "sub", MAnd: "and", MOr: "or",
	MXor: "xor", MSll: "sll", MSrl: "srl", MSra: "sra", MMul: "mul",
	MDiv: "div", MMod: "mod", MTagCmp: "tagcmp", MMovI: "movi",
	MMem: "mem", MBranch: "branch", MJmpl: "jmpl", MIncFP: "incfp",
	MDecFP: "decfp", MRdFP: "rdfp", MStFP: "stfp", MRdPSR: "rdpsr",
	MWrPSR: "wrpsr", MFlush: "flush", MLdio: "ldio", MStio: "stio",
	MTrap: "trap", MHalt: "halt", MInvalid: "invalid",
}

// String names the kind ("add", "mem", "branch", ...).
func (k MicroKind) String() string {
	if int(k) < len(microKindNames) {
		return microKindNames[k]
	}
	return "unknown"
}

// opKinds maps every opcode to its handler kind — the reference
// interpreter's path to the same per-kind execution counters the
// predecoded tiers read off the Micro directly. Kind is a function of
// the opcode alone (PredecodeInst derives it from Op), so the table is
// exact.
var opKinds = func() (t [256]MicroKind) {
	for op := 0; op < 256; op++ {
		t[op] = PredecodeInst(Inst{Op: Opcode(op)}).Kind
	}
	return t
}()

// KindOf returns the handler kind of an opcode.
func KindOf(op Opcode) MicroKind { return opKinds[op] }
