package isa

import "fmt"

// Register numbering. APRIL exposes four task frames of 32 general
// purpose registers plus eight global registers that are visible
// regardless of the frame pointer (Section 3 of the paper). In the
// instruction encoding, register numbers 0..31 select the active
// frame's registers (r0 is hardwired to zero) and 32..39 select the
// globals g0..g7.
const (
	NumFrameRegs  = 32
	NumGlobalRegs = 8
	NumRegs       = NumFrameRegs + NumGlobalRegs

	// RZero is hardwired to the fixnum 0; writes are discarded.
	RZero = 0
)

// Software register convention used by the Mul-T compiler and the
// run-time system. These assignments are convention only; the hardware
// treats all of r1..r31 alike.
const (
	RSP   = 1 // stack pointer (byte address, grows down, fixnum-tagged)
	RFP   = 2 // procedure frame pointer
	RTP   = 3 // thread pointer: byte address of the thread control block
	RClos = 4 // closure register: the closure being invoked
	RLink = 5 // return address (fixnum instruction index)
	RArg0 = 8 // first argument / result register
	// RArg0..RArg0+NumArgRegs-1 carry procedure arguments.
	NumArgRegs = 6
	RTmp0      = 16 // first of the caller-saved temporaries r16..r31
	NumTmpRegs = 16
)

// Global register convention.
const (
	GAllocPtr   = NumFrameRegs + 0 // g0: heap allocation pointer (byte address)
	GAllocLimit = NumFrameRegs + 1 // g1: heap allocation limit
	GSelf       = NumFrameRegs + 2 // g2: this processor's node id (fixnum)
	GScratch0   = NumFrameRegs + 3 // g3: trap-handler scratch
	GScratch1   = NumFrameRegs + 4 // g4: trap-handler scratch
	GScratch2   = NumFrameRegs + 5 // g5
	GScratch3   = NumFrameRegs + 6 // g6
	GScratch4   = NumFrameRegs + 7 // g7
)

// RegName renders register r using the r/g convention.
func RegName(r uint8) string {
	switch {
	case int(r) < NumFrameRegs:
		return fmt.Sprintf("r%d", r)
	case int(r) < NumRegs:
		return fmt.Sprintf("g%d", int(r)-NumFrameRegs)
	default:
		return fmt.Sprintf("badreg%d", r)
	}
}

// ValidReg reports whether r is a legal register number.
func ValidReg(r uint8) bool { return int(r) < NumRegs }
