package isa

import "fmt"

// Inst is a decoded APRIL instruction. The simulator executes decoded
// instructions directly; Encode/Decode define the binary format used
// for program images and exercised by the encoding round-trip tests.
//
// Operand roles by class:
//
//	compute:  rd <- rs1 op (imm | rs2)
//	load:     rd <- mem[rs1 + (imm | rs2)]
//	store:    mem[rs1 + (imm | rs2)] <- rd
//	branch:   pc-relative offset in imm
//	jmpl:     rd <- link; pc <- rs1 + imm
//	trap:     service number in imm
type Inst struct {
	Op     Opcode
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	UseImm bool
	Imm    int32
}

// Binary layout of an encoded instruction (64 bits):
//
//	bits  0..7   opcode
//	bits  8..13  rd
//	bits 14..19  rs1
//	bits 20..25  rs2
//	bit  26      useImm
//	bits 32..63  imm (two's complement)
const (
	encOpShift  = 0
	encRdShift  = 8
	encRs1Shift = 14
	encRs2Shift = 20
	encImmFlag  = 1 << 26
	encImmShift = 32
)

// Encode packs i into its 64-bit binary representation.
func Encode(i Inst) uint64 {
	w := uint64(i.Op) << encOpShift
	w |= uint64(i.Rd&0x3f) << encRdShift
	w |= uint64(i.Rs1&0x3f) << encRs1Shift
	w |= uint64(i.Rs2&0x3f) << encRs2Shift
	if i.UseImm {
		w |= encImmFlag
	}
	w |= uint64(uint32(i.Imm)) << encImmShift
	return w
}

// Decode unpacks a 64-bit instruction word. It returns an error for an
// undefined opcode or register field so that corrupted program images
// fail loudly at load time rather than mid-simulation.
func Decode(w uint64) (Inst, error) {
	i := Inst{
		Op:     Opcode(w >> encOpShift & 0xff),
		Rd:     uint8(w >> encRdShift & 0x3f),
		Rs1:    uint8(w >> encRs1Shift & 0x3f),
		Rs2:    uint8(w >> encRs2Shift & 0x3f),
		UseImm: w&encImmFlag != 0,
		Imm:    int32(uint32(w >> encImmShift)),
	}
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: undefined opcode %d", i.Op)
	}
	if !ValidReg(i.Rd) || !ValidReg(i.Rs1) || !ValidReg(i.Rs2) {
		return Inst{}, fmt.Errorf("isa: register field out of range in %q", i.Op.Name())
	}
	return i, nil
}

// String disassembles the instruction.
func (i Inst) String() string {
	op := i.Op
	src2 := func() string {
		if i.UseImm {
			return fmt.Sprintf("%d", i.Imm)
		}
		return RegName(i.Rs2)
	}
	// Memory effective addresses may combine a register index AND a
	// displacement; render both so listings assemble back losslessly.
	ea := func() string {
		if i.UseImm {
			return fmt.Sprintf("[%s+%d]", RegName(i.Rs1), i.Imm)
		}
		if i.Imm != 0 {
			return fmt.Sprintf("[%s+%s+%d]", RegName(i.Rs1), RegName(i.Rs2), i.Imm)
		}
		return fmt.Sprintf("[%s+%s]", RegName(i.Rs1), RegName(i.Rs2))
	}
	switch op.Class() {
	case ClassNop:
		return "nop"
	case ClassCompute:
		if op == OpMovI {
			return fmt.Sprintf("movi %s, 0x%x", RegName(i.Rd), uint32(i.Imm))
		}
		if op == OpTagCmp {
			return fmt.Sprintf("tagcmp %s, %s", RegName(i.Rs1), src2())
		}
		return fmt.Sprintf("%s %s, %s, %s", op.Name(), RegName(i.Rd), RegName(i.Rs1), src2())
	case ClassLoad:
		return fmt.Sprintf("%s %s, %s", op.Name(), RegName(i.Rd), ea())
	case ClassStore:
		return fmt.Sprintf("%s %s, %s", op.Name(), ea(), RegName(i.Rd))
	case ClassBranch:
		return fmt.Sprintf("%s %+d", op.Name(), i.Imm)
	case ClassJmpl:
		if i.Rs1 == RZero {
			return fmt.Sprintf("jmpl %s, %d", RegName(i.Rd), i.Imm)
		}
		return fmt.Sprintf("jmpl %s, %s+%d", RegName(i.Rd), RegName(i.Rs1), i.Imm)
	case ClassFrame:
		switch op {
		case OpIncFP, OpDecFP:
			return op.Name()
		case OpRdFP, OpRdPSR:
			return fmt.Sprintf("%s %s", op.Name(), RegName(i.Rd))
		default:
			return fmt.Sprintf("%s %s", op.Name(), RegName(i.Rs1))
		}
	case ClassCacheOp:
		return fmt.Sprintf("flush [%s+%d]", RegName(i.Rs1), i.Imm)
	case ClassIO:
		if op == OpLdio {
			return fmt.Sprintf("ldio %s, [%s+%d]", RegName(i.Rd), RegName(i.Rs1), i.Imm)
		}
		return fmt.Sprintf("stio [%s+%d], %s", RegName(i.Rs1), i.Imm, RegName(i.Rd))
	case ClassTrap:
		return fmt.Sprintf("trap %d", i.Imm)
	case ClassHalt:
		return "halt"
	}
	return fmt.Sprintf("?%d", op)
}

// Convenience constructors used by the code generator and tests.

// R3 builds a three-register compute instruction.
func R3(op Opcode, rd, rs1, rs2 uint8) Inst { return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2} }

// RI builds a register-immediate compute instruction.
func RI(op Opcode, rd, rs1 uint8, imm int32) Inst {
	return Inst{Op: op, Rd: rd, Rs1: rs1, UseImm: true, Imm: imm}
}

// MovI builds a 32-bit immediate move.
func MovI(rd uint8, v Word) Inst { return Inst{Op: OpMovI, Rd: rd, UseImm: true, Imm: int32(v)} }

// Ld builds a load with an immediate offset.
func Ld(op Opcode, rd, base uint8, off int32) Inst {
	return Inst{Op: op, Rd: rd, Rs1: base, UseImm: true, Imm: off}
}

// LdX builds a register-indexed load.
func LdX(op Opcode, rd, base, index uint8) Inst {
	return Inst{Op: op, Rd: rd, Rs1: base, Rs2: index}
}

// St builds a store with an immediate offset; val is the register whose
// contents are written.
func St(op Opcode, base uint8, off int32, val uint8) Inst {
	return Inst{Op: op, Rd: val, Rs1: base, UseImm: true, Imm: off}
}

// StX builds a register-indexed store.
func StX(op Opcode, base, index, val uint8) Inst {
	return Inst{Op: op, Rd: val, Rs1: base, Rs2: index}
}

// Br builds a branch with a PC-relative offset (in instructions).
func Br(op Opcode, off int32) Inst { return Inst{Op: op, UseImm: true, Imm: off} }

// Jmpl builds a jump-and-link.
func Jmpl(rd, base uint8, target int32) Inst {
	return Inst{Op: OpJmpl, Rd: rd, Rs1: base, UseImm: true, Imm: target}
}

// Trap builds a software trap with the given service number.
func Trap(service int32) Inst { return Inst{Op: OpTrap, UseImm: true, Imm: service} }

// Nop and Halt are the fixed instructions.
var (
	Nop  = Inst{Op: OpNop}
	Halt = Inst{Op: OpHalt}
)
