package isa

import "testing"

func TestSymbolAt(t *testing.T) {
	p := &Program{
		Code:    make([]Inst, 8),
		Symbols: map[string]uint32{"main": 0, "loop": 3, "also_loop": 3},
	}
	if name, ok := p.SymbolAt(0); !ok || name != "main" {
		t.Fatalf("SymbolAt(0) = %q, %v", name, ok)
	}
	// Co-located symbols resolve deterministically (smallest name).
	if name, _ := p.SymbolAt(3); name != "also_loop" {
		t.Fatalf("SymbolAt(3) = %q, want also_loop", name)
	}
	if _, ok := p.SymbolAt(5); ok {
		t.Fatal("SymbolAt(5) found a symbol at an unlabeled pc")
	}

	// Symbols appended after the reverse index was built (as
	// RunAssembly does with runtime stubs) must be visible.
	p.Symbols["__task_exit"] = 6
	if name, ok := p.SymbolAt(6); !ok || name != "__task_exit" {
		t.Fatalf("SymbolAt(6) after append = %q, %v", name, ok)
	}
}
