package isa

import (
	"reflect"
	"testing"
)

// mk builds a micro image from a kind sequence; BlockSet only reads
// Kind during discovery.
func mk(kinds ...MicroKind) []Micro {
	m := make([]Micro, len(kinds))
	for i, k := range kinds {
		m[i].Kind = k
	}
	return m
}

func TestBlockSetThresholdGatesTranslation(t *testing.T) {
	bs := NewBlockSet(mk(MAdd, MSub, MBranch), 3, true)
	for i := 0; i < 2; i++ {
		if n := bs.Enter(0); n != 0 {
			t.Fatalf("Enter #%d translated early: got %d, want 0", i+1, n)
		}
		if bs.Translated(0) != 0 {
			t.Fatalf("Translated(0) nonzero before threshold")
		}
	}
	if n := bs.Enter(0); n != 3 {
		t.Fatalf("Enter at threshold: got %d, want 3", n)
	}
	if bs.Translated(0) != 3 || bs.Blocks != 1 {
		t.Fatalf("post-translation state: len %d blocks %d", bs.Translated(0), bs.Blocks)
	}
}

func TestBlockEndsAtUnfusableAndTerminal(t *testing.T) {
	// add, add, trap, add: block at 0 stops before the trap.
	bs := NewBlockSet(mk(MAdd, MAdd, MTrap, MAdd), 1, true)
	if n := bs.Enter(0); n != 2 {
		t.Fatalf("block before trap: got %d, want 2", n)
	}
	// The trap PC itself pins per-op execution forever.
	if n := bs.Enter(2); n != 0 {
		t.Fatalf("trap entry fused: got %d, want 0", n)
	}
	if bs.NoBlocks != 1 {
		t.Fatalf("NoBlocks = %d, want 1", bs.NoBlocks)
	}
	// A terminal control transfer is included, then ends the block.
	bs = NewBlockSet(mk(MAdd, MBranch, MAdd, MAdd), 1, true)
	if n := bs.Enter(0); n != 2 {
		t.Fatalf("block through branch: got %d, want 2", n)
	}
}

func TestBlockMemOpsRequirePerfectMemory(t *testing.T) {
	img := mk(MAdd, MMem, MAdd, MBranch)
	if n := NewBlockSet(img, 1, true).Enter(0); n != 4 {
		t.Fatalf("perfect memory: got %d, want 4", n)
	}
	if n := NewBlockSet(img, 1, false).Enter(0); n != 1 {
		t.Fatalf("fabric memory: got %d, want 1 (block must stop before the load)", n)
	}
}

func TestBlockInteriorEntryTranslatesIndependently(t *testing.T) {
	// A branch into the interior of an already-translated block (PC 2
	// inside the block at 0) profiles and translates its own,
	// overlapping block — both stay live, and neither touches the
	// shared image.
	img := mk(MAdd, MSub, MAnd, MOr, MBranch)
	fresh := mk(MAdd, MSub, MAnd, MOr, MBranch)
	bs := NewBlockSet(img, 1, true)
	if n := bs.Enter(0); n != 5 {
		t.Fatalf("outer block: got %d, want 5", n)
	}
	if n := bs.Enter(2); n != 3 {
		t.Fatalf("interior entry: got %d, want 3", n)
	}
	if bs.Translated(0) != 5 || bs.Translated(2) != 3 {
		t.Fatalf("overlapping blocks lost: %d/%d", bs.Translated(0), bs.Translated(2))
	}
	if !reflect.DeepEqual(img, fresh) {
		t.Fatal("translation mutated the shared image")
	}
}

func TestBlockLenCapped(t *testing.T) {
	img := make([]Micro, MaxBlockLen+32)
	for i := range img {
		img[i].Kind = MAdd
	}
	bs := NewBlockSet(img, 1, true)
	if n := bs.Enter(0); n != MaxBlockLen {
		t.Fatalf("uncapped block: got %d, want %d", n, MaxBlockLen)
	}
}

func TestKindOfAgreesWithPredecode(t *testing.T) {
	for op := 0; op < 256; op++ {
		want := PredecodeInst(Inst{Op: Opcode(op)}).Kind
		if got := KindOf(Opcode(op)); got != want {
			t.Fatalf("KindOf(%d) = %v, want %v", op, got, want)
		}
	}
}
