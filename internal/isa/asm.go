package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses APRIL assembly text into a program. The syntax is
// exactly what Inst.String and Program.Disassemble emit, so listings
// round-trip:
//
//	fib:                      ; labels end with ':'
//	=>   12:  subcc r0, r8, 8 ; disassembler prefixes are accepted
//	          bge done        ; branch targets may be labels
//	          jmpl r5, fib    ; and jmpl targets too
//	done:     halt
//
// A line whose disassembler prefix is "=>" (or a ".entry label"
// directive) sets the program entry point.
func Assemble(src string) (*Program, error) {
	p := &Program{Symbols: map[string]uint32{}}
	type fix struct {
		at    int
		label string
		rel   bool
		line  int
	}
	var fixes []fix
	entrySet := false
	var entryLabel string

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives.
		if rest, ok := strings.CutPrefix(line, ".entry"); ok {
			entryLabel = strings.TrimSpace(rest)
			continue
		}
		// Disassembler prefixes: "=>" marker and "NNN:" address.
		if rest, ok := strings.CutPrefix(line, "=>"); ok {
			line = strings.TrimSpace(rest)
			p.Entry = uint32(len(p.Code))
			entrySet = true
		}
		if f := strings.Fields(line); len(f) > 0 {
			if n := strings.TrimSuffix(f[0], ":"); n != f[0] {
				if _, err := strconv.Atoi(n); err == nil {
					// An address prefix from a listing; drop it.
					line = strings.TrimSpace(strings.TrimPrefix(line, f[0]))
				}
			}
		}
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			f := strings.Fields(line)
			if len(f) == 0 {
				break
			}
			name := strings.TrimSuffix(f[0], ":")
			if name == f[0] || name == "" {
				break
			}
			if _, err := strconv.Atoi(name); err == nil {
				break // numeric: an address prefix, already handled
			}
			if _, dup := p.Symbols[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			p.Symbols[name] = uint32(len(p.Code))
			line = strings.TrimSpace(strings.TrimPrefix(line, f[0]))
		}
		if line == "" {
			continue
		}

		inst, labelRef, rel, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixes = append(fixes, fix{at: len(p.Code), label: labelRef, rel: rel, line: lineNo + 1})
		}
		p.Code = append(p.Code, inst)
	}

	for _, f := range fixes {
		addr, ok := p.Symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		if f.rel {
			p.Code[f.at].Imm = int32(addr) - int32(f.at)
		} else {
			p.Code[f.at].Imm = int32(addr)
		}
	}
	if entryLabel != "" {
		addr, ok := p.Symbols[entryLabel]
		if !ok {
			return nil, fmt.Errorf(".entry: undefined label %q", entryLabel)
		}
		p.Entry = addr
	} else if !entrySet {
		p.Entry = 0
	}
	return p, nil
}

// opByName resolves a mnemonic.
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := 0; op < NumOpcodes; op++ {
		m[Opcode(op).Name()] = Opcode(op)
	}
	return m
}()

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= NumFrameRegs {
			return 0, fmt.Errorf("register %q out of range", s)
		}
		return uint8(n), nil
	case 'g':
		if n < 0 || n >= NumGlobalRegs {
			return 0, fmt.Errorf("register %q out of range", s)
		}
		return uint8(NumFrameRegs + n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow the full uint32 range for movi-style hex constants.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int32(uint32(u)), nil
		}
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if n < -(1<<31) || n > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of range", s)
	}
	return int32(n), nil
}

// parseEA parses "[base+off]", "[base+idx]" or "[base+idx+off]".
func parseEA(s string) (rs1, rs2 uint8, imm int32, useImm bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("bad effective address %q", s)
	}
	parts := splitEA(s[1 : len(s)-1])
	if len(parts) < 1 || len(parts) > 3 {
		return 0, 0, 0, false, fmt.Errorf("bad effective address %q", s)
	}
	rs1, err = parseReg(parts[0])
	if err != nil {
		return 0, 0, 0, false, err
	}
	switch len(parts) {
	case 1:
		return rs1, 0, 0, true, nil
	case 2:
		if r, rerr := parseReg(parts[1]); rerr == nil {
			return rs1, r, 0, false, nil
		}
		imm, err = parseImm(parts[1])
		return rs1, 0, imm, true, err
	default:
		rs2, rerr := parseReg(parts[1])
		if rerr != nil {
			return 0, 0, 0, false, rerr
		}
		imm, err = parseImm(parts[2])
		return rs1, rs2, imm, false, err
	}
}

// splitEA splits "r9+-6" / "r9+r10+2" on '+' while keeping a leading
// '-' attached to its number ("r9+-6" -> ["r9", "-6"]).
func splitEA(s string) []string {
	var parts []string
	cur := strings.Builder{}
	for i := 0; i < len(s); i++ {
		if s[i] == '+' && cur.Len() > 0 {
			parts = append(parts, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(s[i])
	}
	if cur.Len() > 0 {
		parts = append(parts, cur.String())
	}
	return parts
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	raw := strings.Split(s, ",")
	out := make([]string, len(raw))
	for i, p := range raw {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// parseInst parses one instruction line, returning an optional label
// reference to patch (rel = PC-relative branch vs absolute jmpl).
func parseInst(line string) (inst Inst, labelRef string, rel bool, err error) {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := opByName[mnem]
	if !ok {
		return Inst{}, "", false, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	switch op.Class() {
	case ClassNop, ClassHalt:
		return Inst{Op: op}, "", false, need(0)

	case ClassCompute:
		switch op {
		case OpMovI:
			if err := need(2); err != nil {
				return Inst{}, "", false, err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return Inst{}, "", false, err
			}
			imm, err := parseImm(ops[1])
			return Inst{Op: op, Rd: rd, UseImm: true, Imm: imm}, "", false, err
		case OpTagCmp:
			if err := need(2); err != nil {
				return Inst{}, "", false, err
			}
			rs1, err := parseReg(ops[0])
			if err != nil {
				return Inst{}, "", false, err
			}
			if r, rerr := parseReg(ops[1]); rerr == nil {
				return Inst{Op: op, Rs1: rs1, Rs2: r}, "", false, nil
			}
			imm, err := parseImm(ops[1])
			return Inst{Op: op, Rs1: rs1, UseImm: true, Imm: imm}, "", false, err
		default:
			if err := need(3); err != nil {
				return Inst{}, "", false, err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return Inst{}, "", false, err
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return Inst{}, "", false, err
			}
			if r, rerr := parseReg(ops[2]); rerr == nil {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: r}, "", false, nil
			}
			imm, err := parseImm(ops[2])
			return Inst{Op: op, Rd: rd, Rs1: rs1, UseImm: true, Imm: imm}, "", false, err
		}

	case ClassLoad:
		if err := need(2); err != nil {
			return Inst{}, "", false, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", false, err
		}
		rs1, rs2, imm, useImm, err := parseEA(ops[1])
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm}, "", false, err

	case ClassStore:
		if err := need(2); err != nil {
			return Inst{}, "", false, err
		}
		rs1, rs2, imm, useImm, err := parseEA(ops[0])
		if err != nil {
			return Inst{}, "", false, err
		}
		rd, err := parseReg(ops[1])
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm}, "", false, err

	case ClassBranch:
		if err := need(1); err != nil {
			return Inst{}, "", false, err
		}
		if imm, ierr := parseImm(ops[0]); ierr == nil {
			return Inst{Op: op, UseImm: true, Imm: imm}, "", false, nil
		}
		return Inst{Op: op, UseImm: true}, ops[0], true, nil

	case ClassJmpl:
		if err := need(2); err != nil {
			return Inst{}, "", false, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", false, err
		}
		t := ops[1]
		if i := strings.IndexByte(t, '+'); i > 0 {
			rs1, rerr := parseReg(t[:i])
			if rerr == nil {
				imm, ierr := parseImm(t[i+1:])
				return Inst{Op: op, Rd: rd, Rs1: rs1, UseImm: true, Imm: imm}, "", false, ierr
			}
		}
		if r, rerr := parseReg(t); rerr == nil {
			return Inst{Op: op, Rd: rd, Rs1: r, UseImm: true}, "", false, nil
		}
		if imm, ierr := parseImm(t); ierr == nil {
			return Inst{Op: op, Rd: rd, UseImm: true, Imm: imm}, "", false, nil
		}
		return Inst{Op: op, Rd: rd, UseImm: true}, t, false, nil

	case ClassFrame:
		switch op {
		case OpIncFP, OpDecFP:
			return Inst{Op: op}, "", false, need(0)
		case OpRdFP, OpRdPSR:
			if err := need(1); err != nil {
				return Inst{}, "", false, err
			}
			rd, err := parseReg(ops[0])
			return Inst{Op: op, Rd: rd}, "", false, err
		default: // STFP, WRPSR
			if err := need(1); err != nil {
				return Inst{}, "", false, err
			}
			rs1, err := parseReg(ops[0])
			return Inst{Op: op, Rs1: rs1}, "", false, err
		}

	case ClassCacheOp:
		if err := need(1); err != nil {
			return Inst{}, "", false, err
		}
		rs1, _, imm, _, err := parseEA(ops[0])
		return Inst{Op: op, Rs1: rs1, Imm: imm, UseImm: true}, "", false, err

	case ClassIO:
		if err := need(2); err != nil {
			return Inst{}, "", false, err
		}
		if op == OpLdio {
			rd, err := parseReg(ops[0])
			if err != nil {
				return Inst{}, "", false, err
			}
			rs1, _, imm, _, err := parseEA(ops[1])
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}, "", false, err
		}
		rs1, _, imm, _, err := parseEA(ops[0])
		if err != nil {
			return Inst{}, "", false, err
		}
		rd, err := parseReg(ops[1])
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}, "", false, err

	case ClassTrap:
		if err := need(1); err != nil {
			return Inst{}, "", false, err
		}
		imm, err := parseImm(ops[0])
		return Inst{Op: op, UseImm: true, Imm: imm}, "", false, err
	}
	return Inst{}, "", false, fmt.Errorf("cannot assemble %q", line)
}
