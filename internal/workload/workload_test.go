package workload

import (
	"math"
	"testing"
)

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || r2 < 0.999 {
		t.Errorf("fit = %v + %v x, r2=%v", a, b, r2)
	}
	// Degenerate inputs.
	if _, _, r2 := LinearFit([]float64{1}, []float64{2}); r2 != 0 {
		t.Error("single-point fit should report r2=0")
	}
	if a, b, _ := LinearFit([]float64{2, 2}, []float64{1, 3}); b != 0 || a != 2 {
		t.Errorf("vertical data fit = %v + %v x", a, b)
	}
}

func TestBuildProgramLoops(t *testing.T) {
	p := buildProgram(4)
	last := p.Code[len(p.Code)-1]
	if int(last.Imm) != -(len(p.Code) - 1) {
		t.Errorf("back branch %d for %d instructions", last.Imm, len(p.Code))
	}
}

func TestRunMeasures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cycles = 60_000
	cfg.WarmupCycles = 20_000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		t.Errorf("utilization %v", m.Utilization)
	}
	if m.MissPerCycle <= 0 {
		t.Errorf("no misses measured: %+v", m)
	}
	if m.RemoteLatency <= 10 {
		t.Errorf("remote latency %v should exceed the memory latency", m.RemoteLatency)
	}
}

// TestModelAssumptionsHold is experiment E6 at test scale: m(p) and
// T(p) grow roughly linearly with p, and utilization rises from p=1 to
// a plateau — the behavior equation (1) is built on.
func TestModelAssumptionsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := DefaultConfig()
	cfg.Cycles = 150_000
	cfg.WarmupCycles = 40_000
	ms, err := Sweep(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ps, misses, lats, utils []float64
	for _, m := range ms {
		ps = append(ps, float64(m.ThreadsPerNode))
		misses = append(misses, m.MissPerCycle)
		lats = append(lats, m.RemoteLatency)
		utils = append(utils, m.Utilization)
	}
	// Utilization improves with multithreading before interference
	// takes over.
	if utils[1] <= utils[0] {
		t.Errorf("p=2 utilization %.3f did not beat p=1 %.3f", utils[1], utils[0])
	}
	// m(p): increasing and well fit by a line.
	_, bm, r2m := LinearFit(ps, misses)
	if bm <= 0 {
		t.Errorf("miss rate slope %v not positive: %v", bm, misses)
	}
	if r2m < 0.85 {
		t.Errorf("m(p) poorly linear: r2=%.3f data=%v", r2m, misses)
	}
	// T(p): non-decreasing trend with load.
	_, bt, _ := LinearFit(ps, lats)
	if bt < 0 {
		t.Errorf("latency slope %v negative: %v", bt, lats)
	}
}
