// Package workload generates the synthetic multithreaded workloads
// used to validate the Section 8 analytical model (experiment E6):
// each thread alternates a fixed compute burst with one reference into
// a private working set whose blocks are distributed across the
// machine, exactly the structure the model assumes. Sweeping the
// number of resident threads p measures m(p), T(p), and U(p) on the
// full cache + directory + network simulator, revalidating the paper's
// claim that the cache and network terms are "the sum of two
// components: one component independent of the number of threads p and
// the other linearly related to p (to first order)."
package workload

import (
	"fmt"

	"april/internal/cache"
	"april/internal/harness"
	"april/internal/isa"
	"april/internal/rts"
	"april/internal/sim"
)

// Config shapes the synthetic threads.
type Config struct {
	Nodes            int
	ThreadsPerNode   int // p
	WorkingSetBlocks int // per thread (Table 4: 250)
	BlockBytes       uint32
	ComputePerRef    int // filler ALU ops between memory references
	CacheBytes       uint32
	MemLatency       int
	Cycles           uint64 // measurement window
	WarmupCycles     uint64

	// Workers bounds the host goroutines running sweep points in
	// parallel (each point is an independent machine); <= 0 means one
	// per available host core.
	Workers int
}

// DefaultConfig scales Table 4's shape down to a simulable machine: a
// 2-ary 3-cube with a cache small enough that p working sets interfere.
func DefaultConfig() Config {
	return Config{
		Nodes:            8,
		ThreadsPerNode:   2,
		WorkingSetBlocks: 32,
		BlockBytes:       16,
		ComputePerRef:    6,
		CacheBytes:       2 << 10,
		MemLatency:       10,
		Cycles:           300_000,
		WarmupCycles:     60_000,
	}
}

// buildProgram emits the per-thread loop. Most references hit the
// thread's private working set (interference among resident threads
// gives the p-dependent miss component); one in eight goes to a large
// streaming region that never caches, giving the fixed component the
// model attributes to first-time fetches and coherence traffic.
//
//	loop: state = state*1664525 + 1013904223          (LCG)
//	      if state & 7 == 0:  load stream[state' & smask]
//	      else:               load wset[state' & wmask]
//	      <ComputePerRef filler ops>
//	      goto loop
//
// Registers: r8 = LCG state (seeded per thread), r9/r10 = working-set
// base/mask, r14/r15 = stream base/mask, r11..r13 scratch.
func buildProgram(computePerRef int) *isa.Program {
	var code []isa.Inst
	emit := func(is ...isa.Inst) {
		code = append(code, is...)
	}
	label := func() int32 { return int32(len(code)) }
	br := func(op isa.Opcode) int {
		code = append(code, isa.Br(op, 0))
		return len(code) - 1
	}
	patch := func(at int, target int32) { code[at].Imm = target - int32(at) }

	emit(
		isa.RI(isa.OpMul, 8, 8, 1664525),
		isa.RI(isa.OpRawAdd, 8, 8, 1013904223),
		// Use the higher LCG bits for the offset (low bits are weak).
		isa.RI(isa.OpSrl, 13, 8, 8),
		isa.RI(isa.OpRawAnd, 11, 8, 7),
		// Tag the selector as a fixnum before the strict compare: an
		// odd raw value would trip the future-detection hardware.
		isa.RI(isa.OpSll, 11, 11, 2),
		isa.RI(isa.OpSubCC, isa.RZero, 11, 0),
	)
	toStream := br(isa.OpBe)
	emit(
		isa.R3(isa.OpRawAnd, 11, 13, 10),
		isa.R3(isa.OpRawAdd, 11, 11, 9),
	)
	toLoad := br(isa.OpBa)
	patch(toStream, label())
	emit(
		isa.R3(isa.OpRawAnd, 11, 13, 15),
		isa.R3(isa.OpRawAdd, 11, 11, 14),
	)
	patch(toLoad, label())
	emit(isa.Ld(isa.OpLdnt, 12, 11, 0))
	for i := 0; i < computePerRef; i++ {
		emit(isa.RI(isa.OpRawAdd, 13, 13, 1))
	}
	emit(isa.Br(isa.OpBa, int32(-(len(code))))) // back to 0
	return &isa.Program{Code: code}
}

// streamBytes is the per-thread streaming region (must dwarf the
// cache so stream references always miss).
const streamBytes = 32 << 10

// Measurement is one sweep point.
type Measurement struct {
	ThreadsPerNode int
	Utilization    float64 // useful cycles / total cycles
	MissPerCycle   float64 // cache misses per useful cycle: the model's m(p)
	RemoteLatency  float64 // average remote service time: the model's T(p)
	MissRatio      float64 // misses per reference
}

// Run measures one configuration.
func Run(cfg Config) (Measurement, error) {
	if cfg.ThreadsPerNode < 1 {
		return Measurement{}, fmt.Errorf("workload: need at least one thread per node")
	}
	prof := rts.APRIL
	m, err := sim.New(sim.Config{
		Nodes:   cfg.Nodes,
		Profile: prof,
		Alewife: &sim.AlewifeConfig{
			MemLatency: cfg.MemLatency,
			Cache: cache.Config{
				SizeBytes:  cfg.CacheBytes,
				BlockBytes: cfg.BlockBytes,
				Assoc:      4,
			},
		},
	})
	if err != nil {
		return Measurement{}, err
	}
	prog := buildProgram(cfg.ComputePerRef)
	m.LoadRaw(prog)

	// One private region per thread; regions interleave across homes
	// at block granularity via the machine's distribution.
	regionBytes := uint32(cfg.WorkingSetBlocks) * cfg.BlockBytes
	mask := regionBytes - 1
	if regionBytes&mask != 0 {
		return Measurement{}, fmt.Errorf("workload: working set (%d blocks) must give a power-of-two region", cfg.WorkingSetBlocks)
	}
	seed := int32(12345)
	for node := 0; node < cfg.Nodes; node++ {
		for k := 0; k < cfg.ThreadsPerNode; k++ {
			base, _, err := m.Sched.HeapChunk(regionBytes)
			if err != nil {
				return Measurement{}, err
			}
			// Align the region so masking stays inside it.
			base = (base + mask) &^ mask
			sbase, _, err := m.Sched.HeapChunk(2 * streamBytes)
			if err != nil {
				return Measurement{}, err
			}
			sbase = (sbase + streamBytes - 1) &^ (streamBytes - 1)
			m.SpawnRaw(node, 0, map[uint8]isa.Word{
				8:  isa.Word(seed),
				9:  isa.Word(base),
				10: isa.Word(mask &^ 3),
				14: isa.Word(sbase),
				15: isa.Word(uint32(streamBytes-1) &^ 3),
			})
			seed = seed*1103515245 + 12345
		}
	}

	if err := m.RunFor(cfg.WarmupCycles); err != nil {
		return Measurement{}, err
	}
	// Snapshot, run the window, and diff.
	s0 := m.TotalStats()
	ms0 := m.MemSystemStats()
	if err := m.RunFor(cfg.Cycles); err != nil {
		return Measurement{}, err
	}
	s1 := m.TotalStats()
	ms1 := m.MemSystemStats()

	useful := float64(s1.UsefulCycles - s0.UsefulCycles)
	total := float64(cfg.Cycles) * float64(cfg.Nodes)
	// Count miss TRANSACTIONS (a pending miss retried by a switch-
	// spinning thread is one miss, not many lookups).
	misses := float64((ms1.LocalMisses + ms1.RemoteMisses) - (ms0.LocalMisses + ms0.RemoteMisses))
	refs := float64((s1.LoadCount + s1.StoreCount) - (s0.LoadCount + s0.StoreCount))
	remote := float64(ms1.RemoteMisses - ms0.RemoteMisses)
	remLat := float64(ms1.RemoteLatency - ms0.RemoteLatency)

	meas := Measurement{
		ThreadsPerNode: cfg.ThreadsPerNode,
		Utilization:    useful / total,
	}
	if useful > 0 {
		meas.MissPerCycle = misses / useful
	}
	if refs > 0 {
		meas.MissRatio = misses / refs
	}
	if remote > 0 {
		meas.RemoteLatency = remLat / remote
	}
	return meas, nil
}

// Sweep measures p = 1..maxThreads threads per node. The points are
// independent machines and run in parallel on the host; results come
// back in p order regardless of worker count.
func Sweep(base Config, maxThreads int) ([]Measurement, error) {
	return harness.Map(base.Workers, maxThreads, func(i int) (Measurement, error) {
		cfg := base
		cfg.ThreadsPerNode = i + 1
		meas, err := Run(cfg)
		if err != nil {
			return Measurement{}, fmt.Errorf("p=%d: %w", i+1, err)
		}
		return meas, nil
	})
}

// LinearFit returns the least-squares a + b·x fit and its R².
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		fy := a + b*xs[i]
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
		ssRes += (ys[i] - fy) * (ys[i] - fy)
	}
	if ssTot == 0 {
		return a, b, 1
	}
	return a, b, 1 - ssRes/ssTot
}

// BuildProgramForTest exposes the synthetic loop for debugging tools.
func BuildProgramForTest(computePerRef int) *isa.Program { return buildProgram(computePerRef) }
