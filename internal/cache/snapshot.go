package cache

import "fmt"

// Snapshot support. Replacement is observable: Insert picks the first
// Invalid slot, else the lowest-lru way, so a bit-identical restore
// must reproduce slot positions, per-line lru stamps, and the lru
// clock — not just the set of valid blocks. The accessors below walk
// slots in (set, way) order so encodings are deterministic.

// Geometry returns the number of sets and ways.
func (c *Cache) Geometry() (sets, ways int) { return len(c.sets), c.cfg.Assoc }

// Clock returns the LRU clock.
func (c *Cache) Clock() uint64 { return c.clock }

// SetClock restores the LRU clock.
func (c *Cache) SetClock(v uint64) { c.clock = v }

// DumpSlots calls fn for every slot (valid or not) in (set, way)
// order.
func (c *Cache) DumpSlots(fn func(set, way int, block uint32, st State, dirty bool, lru uint64)) {
	for si, set := range c.sets {
		for wi := range set {
			l := &set[wi]
			fn(si, wi, l.block, l.state, l.dirty, l.lru)
		}
	}
}

// SetSlot restores one slot. It is the restore-side counterpart of
// DumpSlots and performs no stats or LRU bookkeeping.
func (c *Cache) SetSlot(set, way int, block uint32, st State, dirty bool, lru uint64) error {
	if set < 0 || set >= len(c.sets) || way < 0 || way >= len(c.sets[set]) {
		return fmt.Errorf("cache: slot (%d,%d) out of range (%d sets × %d ways)",
			set, way, len(c.sets), c.cfg.Assoc)
	}
	if st > Exclusive {
		return fmt.Errorf("cache: slot (%d,%d) has invalid state %d", set, way, st)
	}
	c.sets[set][way] = line{block: block, state: st, dirty: dirty, lru: lru}
	return nil
}
