// Package cache implements the per-node cache of an ALEWIFE node. The
// simulator separates timing state from data: the cache tracks which
// blocks are present and with what permissions (the coherence protocol
// serializes writers, so values can live in the flat functional memory),
// which is the same structure as the paper's cache simulator driving a
// functional interpreter (Figure 4).
package cache

import "fmt"

// State is a block's local coherence state.
type State uint8

const (
	Invalid   State = iota
	Shared          // read-only copy
	Exclusive       // sole read-write copy
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	}
	return "?"
}

// Config sizes the cache. Table 4 defaults: 64 KB, 16-byte blocks.
type Config struct {
	SizeBytes  uint32
	BlockBytes uint32
	Assoc      int
}

// DefaultConfig is the Table 4 cache.
func DefaultConfig() Config {
	return Config{SizeBytes: 64 << 10, BlockBytes: 16, Assoc: 4}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.BlockBytes == 0 || c.SizeBytes%c.BlockBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of block %d", c.SizeBytes, c.BlockBytes)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity %d", c.Assoc)
	}
	blocks := c.SizeBytes / c.BlockBytes
	if blocks%uint32(c.Assoc) != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, c.Assoc)
	}
	return nil
}

type line struct {
	block uint32 // block number (addr / BlockBytes)
	state State
	dirty bool
	lru   uint64
}

// Cache is a set-associative cache indexed by block number.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64

	// Stats.
	Hits, Misses, Evictions, Writebacks, Invalidations uint64
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := int(cfg.SizeBytes/cfg.BlockBytes) / cfg.Assoc
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Block maps a byte address to its block number.
func (c *Cache) Block(addr uint32) uint32 { return addr / c.cfg.BlockBytes }

func (c *Cache) set(block uint32) []line {
	return c.sets[block%uint32(len(c.sets))]
}

func (c *Cache) find(block uint32) *line {
	set := c.set(block)
	for i := range set {
		if set[i].state != Invalid && set[i].block == block {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the block's state, touching LRU on a hit.
func (c *Cache) Lookup(block uint32) (State, bool) {
	if l := c.find(block); l != nil {
		c.clock++
		l.lru = c.clock
		c.Hits++
		return l.state, true
	}
	c.Misses++
	return Invalid, false
}

// Probe reads the state without touching LRU or stats.
func (c *Cache) Probe(block uint32) (State, bool) {
	if l := c.find(block); l != nil {
		return l.state, true
	}
	return Invalid, false
}

// MarkDirty notes that the (exclusive) block was written.
func (c *Cache) MarkDirty(block uint32) {
	if l := c.find(block); l != nil {
		l.dirty = true
	}
}

// Dirty reports whether a cached block is dirty.
func (c *Cache) Dirty(block uint32) bool {
	l := c.find(block)
	return l != nil && l.dirty
}

// Victim describes an evicted block.
type Victim struct {
	Block uint32
	State State
	Dirty bool
}

// Insert installs block with the given state, returning the evicted
// victim if the set was full.
func (c *Cache) Insert(block uint32, st State) (Victim, bool) {
	if l := c.find(block); l != nil {
		// Upgrade/downgrade in place.
		l.state = st
		c.clock++
		l.lru = c.clock
		return Victim{}, false
	}
	set := c.set(block)
	vi := 0
	for i := range set {
		if set[i].state == Invalid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	var victim Victim
	evicted := set[vi].state != Invalid
	if evicted {
		victim = Victim{Block: set[vi].block, State: set[vi].state, Dirty: set[vi].dirty}
		c.Evictions++
		if victim.Dirty {
			c.Writebacks++
		}
	}
	c.clock++
	set[vi] = line{block: block, state: st, lru: c.clock}
	return victim, evicted
}

// SetState changes a cached block's state (downgrades clear dirty).
func (c *Cache) SetState(block uint32, st State) bool {
	l := c.find(block)
	if l == nil {
		return false
	}
	l.state = st
	if st != Exclusive {
		l.dirty = false
	}
	if st == Invalid {
		c.Invalidations++
	}
	return true
}

// Invalidate removes a block, reporting whether it was present and
// dirty.
func (c *Cache) Invalidate(block uint32) (wasDirty, wasPresent bool) {
	l := c.find(block)
	if l == nil {
		return false, false
	}
	wasDirty = l.dirty
	l.state = Invalid
	l.dirty = false
	c.Invalidations++
	return wasDirty, true
}

// Occupancy counts valid lines (for interference studies).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.state != Invalid {
				n++
			}
		}
	}
	return n
}

// ForEach calls fn for every valid line, in set order. Cold path: the
// fault checker's coherence audits iterate whole caches with it.
func (c *Cache) ForEach(fn func(block uint32, st State, dirty bool)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				fn(set[i].block, set[i].state, set[i].dirty)
			}
		}
	}
}

// MissRatio is misses / (hits + misses).
func (c *Cache) MissRatio() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}
