package cache

import "testing"

// The cache hit path runs on every simulated memory access; it must
// not allocate. (Insert may allocate only through set growth at
// construction time, which New performs up front.)
func TestHitPathAllocFree(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, evicted := c.Insert(7, Exclusive); evicted {
		t.Fatal("unexpected eviction in empty cache")
	}
	hit := func() {
		if _, ok := c.Lookup(7); !ok {
			t.Fatal("lookup missed a resident block")
		}
		c.MarkDirty(7)
		if !c.Dirty(7) {
			t.Fatal("block not dirty after MarkDirty")
		}
	}
	if n := testing.AllocsPerRun(1000, hit); n != 0 {
		t.Errorf("cache hit allocates %v/op, want 0", n)
	}
}
