package cache

import (
	"testing"
	"testing/quick"
)

func newCache(t *testing.T, size, block uint32, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, BlockBytes: block, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, BlockBytes: 16, Assoc: 1}, // size not multiple
		{SizeBytes: 64, BlockBytes: 16, Assoc: 3},  // blocks not divisible
		{SizeBytes: 64, BlockBytes: 16, Assoc: 0},
		{SizeBytes: 64, BlockBytes: 0, Assoc: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDefaultIsTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SizeBytes != 64<<10 || cfg.BlockBytes != 16 {
		t.Errorf("default %+v, want 64KB/16B per Table 4", cfg)
	}
}

func TestHitMissAndStates(t *testing.T) {
	c := newCache(t, 256, 16, 2)
	if _, hit := c.Lookup(5); hit {
		t.Error("hit in empty cache")
	}
	c.Insert(5, Shared)
	if st, hit := c.Lookup(5); !hit || st != Shared {
		t.Errorf("lookup after insert = %v,%v", st, hit)
	}
	c.Insert(5, Exclusive) // upgrade in place
	if st, _ := c.Lookup(5); st != Exclusive {
		t.Errorf("upgrade failed: %v", st)
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 16B blocks in 256B.
	c := newCache(t, 256, 16, 2)
	// Blocks 0, 8, 16 map to set 0.
	c.Insert(0, Shared)
	c.Insert(8, Shared)
	c.Lookup(0) // touch 0 so 8 is LRU
	v, evicted := c.Insert(16, Shared)
	if !evicted || v.Block != 8 {
		t.Errorf("evicted %+v, want block 8", v)
	}
	if _, hit := c.Probe(0); !hit {
		t.Error("recently used block 0 evicted")
	}
}

func TestDirtyVictims(t *testing.T) {
	c := newCache(t, 256, 16, 2)
	c.Insert(0, Exclusive)
	c.MarkDirty(0)
	c.Insert(8, Shared)
	v, evicted := c.Insert(16, Shared) // 0 is LRU
	if !evicted || v.Block != 0 || !v.Dirty || v.State != Exclusive {
		t.Errorf("victim = %+v", v)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := newCache(t, 256, 16, 2)
	c.Insert(3, Exclusive)
	c.MarkDirty(3)
	if !c.Dirty(3) {
		t.Error("dirty bit lost")
	}
	c.SetState(3, Shared) // downgrade clears dirty
	if c.Dirty(3) {
		t.Error("downgrade kept dirty bit")
	}
	wasDirty, present := c.Invalidate(3)
	if wasDirty || !present {
		t.Errorf("invalidate = %v,%v", wasDirty, present)
	}
	if _, hit := c.Probe(3); hit {
		t.Error("block present after invalidate")
	}
	if _, present := c.Invalidate(99); present {
		t.Error("invalidate of absent block reported present")
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := newCache(t, 1024, 16, 4)
	f := func(blocks []uint16) bool {
		for _, b := range blocks {
			c.Insert(uint32(b), Shared)
		}
		return c.Occupancy() <= 64 // 1024/16 lines total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInsertedAlwaysFindable(t *testing.T) {
	c := newCache(t, 4096, 16, 4)
	f := func(b uint32) bool {
		b %= 1 << 20
		c.Insert(b, Exclusive)
		st, hit := c.Probe(b)
		return hit && st == Exclusive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMissRatio(t *testing.T) {
	c := newCache(t, 256, 16, 2)
	c.Lookup(1) // miss
	c.Insert(1, Shared)
	c.Lookup(1) // hit
	c.Lookup(1) // hit
	if r := c.MissRatio(); r < 0.32 || r > 0.34 {
		t.Errorf("miss ratio %v, want 1/3", r)
	}
}

func TestBlockMapping(t *testing.T) {
	c := newCache(t, 256, 16, 2)
	if c.Block(0) != 0 || c.Block(15) != 0 || c.Block(16) != 1 || c.Block(161) != 10 {
		t.Error("block mapping wrong")
	}
}
