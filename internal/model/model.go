// Package model implements the analytical multithreaded-processor
// model of Section 8 (derived from Agarwal, "Performance Tradeoffs in
// Multithreaded Processors" [1]):
//
//	         p / (1 + T(p)·m(p))     for p <  p*
//	U(p) = {
//	         1 / (1 + C·m(p))        for p >= p*
//
//	p* = (1 + T(p)·m(p)) / (1 + C·m(p))
//
// where p is the number of threads resident on the processor, m(p) the
// cache miss rate (misses per useful cycle), T(p) the round-trip
// network latency of a remote request, and C the context switch
// overhead. Both m and T are, to first order, a fixed component plus a
// component linear in p — the property the paper validates by
// simulation and that experiment E6 revalidates here.
package model

import (
	"fmt"
	"math"
	"strings"

	"april/internal/harness"
)

// Params are the system parameters of Table 4 plus the calibration
// coefficients for the interference and contention components.
type Params struct {
	// Table 4 defaults.
	MemLatency float64 // memory latency in cycles (10)
	Dim        int     // network dimension n (3)
	Radix      int     // network radix k (20); Dim^Radix... k^n nodes
	FixedMiss  float64 // fixed miss rate per useful cycle (0.02)
	PacketSize float64 // average packet size in flits (4)
	BlockBytes int     // cache block size (16)
	WorkingSet int     // per-thread working set in blocks (250)
	CacheBytes int     // cache size (64 KB)
	SwitchCost float64 // context switch overhead C in cycles (10)

	// Calibration knobs (see DESIGN.md): cache interference and
	// network contention coefficients for the linear-in-p components,
	// and the extra traffic factor for the strong-coherence protocol's
	// invalidation and acknowledgment messages (Section 2.1 notes the
	// "long-latency acknowledgment messages resulting from a strong
	// cache coherence protocol").
	InterferenceCoeff float64
	ContentionCoeff   float64
	CoherenceTraffic  float64
}

// Default returns the Table 4 parameter set with a 10-cycle context
// switch.
func Default() Params {
	return Params{
		MemLatency:        10,
		Dim:               3,
		Radix:             20,
		FixedMiss:         0.02,
		PacketSize:        4,
		BlockBytes:        16,
		WorkingSet:        250,
		CacheBytes:        64 << 10,
		SwitchCost:        10,
		InterferenceCoeff: 0.03,
		ContentionCoeff:   0.35,
		CoherenceTraffic:  1.3,
	}
}

// Nodes returns the machine size k^n (8000 for the defaults).
func (p Params) Nodes() int {
	return int(math.Round(math.Pow(float64(p.Radix), float64(p.Dim))))
}

// AvgHops is the average hop count between a random pair of nodes,
// nk/3 for the low-dimension direct network (Section 8).
func (p Params) AvgHops() float64 {
	return float64(p.Dim) * float64(p.Radix) / 3
}

// BaseLatency is the unloaded round-trip latency of a remote request:
// two network traversals plus the packet transmission time and the
// memory latency. For the Table 4 defaults this is the paper's
// "average base network latency of 55 cycles".
func (p Params) BaseLatency() float64 {
	return 2*p.AvgHops() + p.PacketSize + p.MemLatency + 1
}

// MissRate m(p): the fixed component (first-time fetches plus
// coherence invalidations, Table 4's 2%) plus cache interference
// among the p resident threads' working sets, linear in p to first
// order. The interference slope scales with the fraction of the cache
// each additional working set occupies.
func (p Params) MissRate(threads float64) float64 {
	if threads < 1 {
		threads = 1
	}
	cacheBlocks := float64(p.CacheBytes) / float64(p.BlockBytes)
	occupancy := float64(p.WorkingSet) / cacheBlocks
	return p.FixedMiss + p.InterferenceCoeff*(threads-1)*occupancy
}

// channelLoad estimates the per-channel utilization given the request
// rate per node: each miss moves request+reply packets of B flits over
// AvgHops hops, spread over the node's 2n channels.
func (p Params) channelLoad(missesPerCycle float64) float64 {
	coh := p.CoherenceTraffic
	if coh < 1 {
		coh = 1
	}
	rho := missesPerCycle * coh * 2 * p.PacketSize * p.AvgHops() / (2 * float64(p.Dim))
	if rho > 0.995 {
		rho = 0.995
	}
	return rho
}

// Latency T(p) for a given per-node request rate: the unloaded base
// latency plus queueing contention in the switches. The contention
// term follows the open-network model of [1]: per-hop delay grows as
// rho*B/(2(1-rho)).
func (p Params) Latency(missesPerCycle float64) float64 {
	rho := p.channelLoad(missesPerCycle)
	contention := 2 * p.AvgHops() * p.ContentionCoeff * rho * p.PacketSize / (2 * (1 - rho))
	return p.BaseLatency() + contention
}

// Utilization solves the model self-consistently for p resident
// threads: the network load depends on the achieved utilization, which
// depends on the latency, which depends on the load. A short damped
// fixed-point iteration converges quickly.
func (p Params) Utilization(threads float64) Breakdown {
	if threads <= 0 {
		return Breakdown{}
	}
	m := p.MissRate(threads)
	// F(u) = eq1(p, m, T(m·u), C) is decreasing in u (higher achieved
	// utilization loads the network and raises T), so F(u) = u has a
	// unique fixed point; find it by bisection.
	f := func(u float64) float64 {
		return eq1(threads, m, p.Latency(m*u), p.SwitchCost) - u
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	u := (lo + hi) / 2
	T := p.Latency(m * u)
	sat := threads >= (1+T*m)/(1+p.SwitchCost*m)
	return Breakdown{
		Threads:     threads,
		MissRate:    m,
		Latency:     T,
		ChannelLoad: p.channelLoad(m * u),
		Utilization: u,
		Saturated:   sat,
	}
}

// Eq1 is equation (1) of the paper, exposed for measured-vs-model
// cross-validation: utilization for p resident threads given a miss
// rate m (misses per useful cycle), a remote latency T, and a context
// switch cost C — all four of which a simulation run can measure.
func Eq1(p, m, T, C float64) float64 {
	return eq1(p, m, T, C)
}

// eq1 is equation (1) of the paper.
func eq1(p, m, T, C float64) float64 {
	pstar := (1 + T*m) / (1 + C*m)
	if p < pstar {
		return p / (1 + T*m)
	}
	return 1 / (1 + C*m)
}

// Breakdown is the model solution at one thread count.
type Breakdown struct {
	Threads     float64
	MissRate    float64
	Latency     float64
	ChannelLoad float64
	Utilization float64
	Saturated   bool
}

// Figure5Point carries the component curves of Figure 5 at one p:
// utilization under progressively more realistic assumptions. The gaps
// between successive curves are the figure's shaded regions (network
// effects, cache effects, context-switch overhead).
type Figure5Point struct {
	Threads float64

	Ideal        float64 // m, T fixed at their single-thread values; no C
	NetworkOnly  float64 // T grows with load; m fixed; no C
	CacheNetwork float64 // m and T both grow; no C
	UsefulWork   float64 // the full model with C (equation 1)
}

// Figure5 computes the component curves for p = 0..maxThreads.
func (p Params) Figure5(maxThreads int) []Figure5Point {
	out := make([]Figure5Point, 0, maxThreads+1)

	m1 := p.MissRate(1)
	T1 := p.BaseLatency()

	for i := 0; i <= maxThreads; i++ {
		pt := Figure5Point{Threads: float64(i)}
		if i > 0 {
			th := float64(i)
			// Ideal: single-thread miss rate and unloaded latency.
			pt.Ideal = math.Min(1, th/(1+m1*T1))

			// Network effects: latency responds to load (fixed m1).
			noC := p
			noC.SwitchCost = 0
			noC.InterferenceCoeff = 0
			pt.NetworkOnly = noC.Utilization(th).Utilization

			// Cache + network effects: m grows too.
			noC2 := p
			noC2.SwitchCost = 0
			pt.CacheNetwork = noC2.Utilization(th).Utilization

			// Full model with the context switch overhead.
			pt.UsefulWork = p.Utilization(th).Utilization
		}
		out = append(out, pt)
	}
	return out
}

// FormatFigure5 renders the curves as a table (one row per p).
func FormatFigure5(points []Figure5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%2s  %6s  %8s  %10s  %7s  %10s\n",
		"p", "ideal", "network", "cache+net", "useful", "CS-overhd")
	for _, pt := range points {
		fmt.Fprintf(&b, "%2.0f  %6.3f  %8.3f  %10.3f  %7.3f  %10.3f\n",
			pt.Threads, pt.Ideal, pt.NetworkOnly, pt.CacheNetwork, pt.UsefulWork,
			math.Max(0, pt.CacheNetwork-pt.UsefulWork))
	}
	return b.String()
}

// SweepSwitchCost computes U(p) for each context switch cost,
// reproducing the Section 6.1 design question (11-cycle SPARC switch
// vs 4-cycle custom switch) as an ablation. The per-cost curves are
// independent closed-form evaluations and fan across host cores like
// the simulation sweeps; the cost -> curve mapping is deterministic.
func SweepSwitchCost(base Params, costs []float64, maxThreads int) map[float64][]Breakdown {
	curves, _ := harness.Map(0, len(costs), func(i int) ([]Breakdown, error) {
		p := base
		p.SwitchCost = costs[i]
		curve := make([]Breakdown, 0, maxThreads)
		for t := 1; t <= maxThreads; t++ {
			curve = append(curve, p.Utilization(float64(t)))
		}
		return curve, nil
	})
	out := map[float64][]Breakdown{}
	for i, c := range costs {
		out[c] = curves[i]
	}
	return out
}
