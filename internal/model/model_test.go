package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable4Geometry(t *testing.T) {
	p := Default()
	if p.Nodes() != 8000 {
		t.Errorf("nodes = %d, want 8000 (20^3)", p.Nodes())
	}
	if got := p.AvgHops(); got != 20 {
		t.Errorf("avg hops = %v, want nk/3 = 20", got)
	}
	// "average round trip network latency of 55 cycles for an unloaded
	// network, when memory latency and average packet size are taken
	// into account" (Section 8).
	if got := p.BaseLatency(); got != 55 {
		t.Errorf("base latency = %v, want 55", got)
	}
}

func TestHeadlineUtilization(t *testing.T) {
	// "as few as three processes yield close to 80%% utilization for a
	// ten-cycle context-switch overhead" (Section 8).
	p := Default()
	u3 := p.Utilization(3).Utilization
	if u3 < 0.74 || u3 > 0.86 {
		t.Errorf("U(3) = %.3f, want close to 0.80", u3)
	}
	// Single thread: U(1) = 1/(1+m(1)*T(1)) ~ 1/(1+0.02*55) = 0.476.
	u1 := p.Utilization(1).Utilization
	if u1 < 0.40 || u1 > 0.55 {
		t.Errorf("U(1) = %.3f, want about 0.476", u1)
	}
	// "utilization limited to a maximum of about 0.80 despite an ample
	// supply of threads".
	for _, th := range []float64{4, 5, 6, 7, 8} {
		u := p.Utilization(th).Utilization
		if u > 0.86 {
			t.Errorf("U(%v) = %.3f exceeds the ~0.80 plateau", th, u)
		}
	}
}

func TestMarginalBenefitDecreases(t *testing.T) {
	// "The marginal benefits of additional processes is seen to
	// decrease due to network and cache interference": gains shrink
	// monotonically while utilization is still climbing, and once past
	// the peak more threads never help again.
	p := Default()
	var us []float64
	for i := 1; i <= 8; i++ {
		us = append(us, p.Utilization(float64(i)).Utilization)
	}
	peak := 0
	for i, u := range us {
		if u > us[peak] {
			peak = i
		}
	}
	prevGain := math.Inf(1)
	for i := 1; i <= peak; i++ {
		gain := us[i] - us[i-1]
		if gain > prevGain+1e-9 {
			t.Errorf("marginal gain increased at p=%d: %.4f > %.4f", i+1, gain, prevGain)
		}
		prevGain = gain
	}
	for i := peak + 1; i < len(us); i++ {
		if us[i] > us[i-1]+1e-9 {
			t.Errorf("utilization rebounded past the peak at p=%d", i+1)
		}
	}
	if peak+1 < 3 || peak+1 > 5 {
		t.Errorf("utilization peak at p=%d, expected around 3-4 as in Figure 5", peak+1)
	}
}

func TestEq1Regions(t *testing.T) {
	// Below saturation, utilization grows ~linearly with p; above, the
	// switch-overhead cap applies.
	if got := eq1(1, 0.02, 55, 10); math.Abs(got-1/(1+0.02*55)) > 1e-12 {
		t.Errorf("eq1 linear region = %v", got)
	}
	if got := eq1(100, 0.02, 55, 10); math.Abs(got-1/(1+10*0.02)) > 1e-12 {
		t.Errorf("eq1 saturated region = %v", got)
	}
	// Continuity at p*.
	m, T, C := 0.02, 55.0, 10.0
	pstar := (1 + T*m) / (1 + C*m)
	lo := eq1(pstar-1e-9, m, T, C)
	hi := eq1(pstar+1e-9, m, T, C)
	if math.Abs(lo-hi) > 1e-6 {
		t.Errorf("eq1 discontinuous at p*: %v vs %v", lo, hi)
	}
}

func TestEq1Properties(t *testing.T) {
	f := func(pRaw, mRaw, tRaw, cRaw uint16) bool {
		p := 1 + float64(pRaw%16)
		m := 0.001 + float64(mRaw%100)/1000 // 0.001..0.1
		T := 10 + float64(tRaw%200)
		C := float64(cRaw % 64)
		u := eq1(p, m, T, C)
		if u <= 0 || u > 1 {
			return false
		}
		// More threads never hurt in eq1 itself (degradation enters
		// through m(p), T(p)).
		return eq1(p+1, m, T, C) >= u-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheSizeEffect(t *testing.T) {
	// "caches greater than 64 Kbytes comfortably sustain the working
	// sets of four processes. Smaller caches suffer more interference
	// and reduce the benefits of multithreading."
	big := Default()
	small := Default()
	small.CacheBytes = 16 << 10
	ub := big.Utilization(4).Utilization
	us := small.Utilization(4).Utilization
	if us >= ub {
		t.Errorf("smaller cache should reduce utilization: 16KB %.3f vs 64KB %.3f", us, ub)
	}
	if ub-us < 0.02 {
		t.Errorf("cache interference effect too weak: %.3f vs %.3f", ub, us)
	}
}

func TestSwitchCostSweep(t *testing.T) {
	// "The relatively large ten-cycle context switch overhead does not
	// significantly impact performance for the default set of
	// parameters" — but a very large C does.
	curves := SweepSwitchCost(Default(), []float64{1, 4, 10, 16, 64}, 8)
	u4 := func(c float64) float64 { return curves[c][3].Utilization }
	// The utilization cost of C=10 over C=4 stays modest (the product
	// of switch frequency and overhead is small in a cache-based
	// system) ...
	if (u4(4)-u4(10))/u4(4) > 0.15 {
		t.Errorf("C=4 vs C=10 at p=4 differ too much: %.3f vs %.3f", u4(4), u4(10))
	}
	if u4(10)-u4(64) < 0.15 {
		t.Errorf("C=64 should hurt substantially: C10=%.3f C64=%.3f", u4(10), u4(64))
	}
	// Monotone: cheaper switches never reduce utilization.
	for i := 0; i < 8; i++ {
		if curves[1][i].Utilization < curves[10][i].Utilization-1e-9 {
			t.Errorf("p=%d: C=1 worse than C=10", i+1)
		}
	}
}

func TestFigure5Ordering(t *testing.T) {
	// The component curves must be ordered: ideal >= network-only >=
	// cache+network >= useful work, at every p.
	pts := Default().Figure5(8)
	if len(pts) != 9 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts[1:] {
		if pt.Ideal < pt.NetworkOnly-1e-9 || pt.NetworkOnly < pt.CacheNetwork-1e-9 ||
			pt.CacheNetwork < pt.UsefulWork-1e-9 {
			t.Errorf("p=%v: curves out of order: %+v", pt.Threads, pt)
		}
		if pt.UsefulWork <= 0 || pt.Ideal > 1 {
			t.Errorf("p=%v: out of range: %+v", pt.Threads, pt)
		}
	}
	// Ideal reaches 1.0 once p >= 1 + m1*T1 (~2.1).
	if pts[3].Ideal < 0.999 {
		t.Errorf("ideal at p=3 should saturate at 1.0, got %.3f", pts[3].Ideal)
	}
	// The rendering includes every p.
	s := FormatFigure5(pts)
	if len(s) == 0 {
		t.Error("empty Figure 5 rendering")
	}
}

func TestMissRateLinearInP(t *testing.T) {
	// The model's m(p) is affine in p by construction; check the slope
	// matches the working-set occupancy scaling.
	p := Default()
	d1 := p.MissRate(2) - p.MissRate(1)
	d2 := p.MissRate(5) - p.MissRate(4)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("m(p) not linear: %v vs %v", d1, d2)
	}
	p2 := p
	p2.WorkingSet *= 2
	if p2.MissRate(4) <= p.MissRate(4) {
		t.Error("larger working sets must raise interference")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	p := Default()
	if p.Latency(0) != p.BaseLatency() {
		t.Errorf("unloaded latency %v != base %v", p.Latency(0), p.BaseLatency())
	}
	prev := p.Latency(0)
	for _, rate := range []float64{0.005, 0.01, 0.02, 0.04} {
		l := p.Latency(rate)
		if l <= prev {
			t.Errorf("latency not increasing at rate %v: %v <= %v", rate, l, prev)
		}
		prev = l
	}
}
