package directory

import "slices"

// DumpEntries calls fn for every allocated entry in ascending block
// order. Snapshot encoders use it: re-inserting the same entries in
// the same order on restore rebuilds an equivalent table (the probe
// layout may differ, but only Entry/Probe behavior is observable, and
// that depends solely on the block→entry mapping).
func (d *Directory) DumpEntries(fn func(block uint32, e *Entry)) {
	idx := make([]int, 0, d.used)
	for i := range d.slots {
		if d.slots[i].live {
			idx = append(idx, i)
		}
	}
	slices.SortFunc(idx, func(a, b int) int {
		if d.slots[a].block < d.slots[b].block {
			return -1
		}
		return 1
	})
	for _, i := range idx {
		fn(d.slots[i].block, &d.slots[i].entry)
	}
}

// Members returns the sharer set as an ascending node list (a
// snapshot-friendly form of AppendMembers).
func (s *Sharers) Members() []int { return s.AppendMembers(nil, -1) }
