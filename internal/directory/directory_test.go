package directory

import (
	"testing"
	"testing/quick"
)

func TestSharersBasics(t *testing.T) {
	var s Sharers
	if s.Count() != 0 || s.Has(0) {
		t.Error("fresh set not empty")
	}
	s.Add(3)
	s.Add(70)
	s.Add(3) // idempotent
	if s.Count() != 2 || !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Errorf("set state wrong: %s", s.String())
	}
	s.Remove(3)
	if s.Count() != 1 || s.Has(3) {
		t.Error("remove failed")
	}
	s.Remove(99) // absent: no-op
	s.Clear()
	if s.Count() != 0 {
		t.Error("clear failed")
	}
}

func TestSharersForEachOrdered(t *testing.T) {
	var s Sharers
	for _, n := range []int{64, 1, 200, 0} {
		s.Add(n)
	}
	var got []int
	s.ForEach(func(n int) { got = append(got, n) })
	want := []int{0, 1, 64, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSharersProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		var s Sharers
		ref := map[int]bool{}
		for _, a := range adds {
			s.Add(int(a))
			ref[int(a)] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for n := range ref {
			if !s.Has(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectoryEntries(t *testing.T) {
	d := New()
	e := d.Entry(42)
	if e.State != Uncached || e.Owner != -1 {
		t.Errorf("fresh entry %+v", e)
	}
	e.State = Exclusive
	e.Owner = 7
	if again := d.Entry(42); again != e {
		t.Error("Entry not stable")
	}
	if _, ok := d.Probe(43); ok {
		t.Error("Probe invented an entry")
	}
	if d.Entries() != 1 {
		t.Errorf("entries = %d", d.Entries())
	}
}

func TestMsgSizes(t *testing.T) {
	// Control messages are 2 flits; data messages add the block
	// payload (16 B block = 4 words), giving the mix behind Table 4's
	// "average packet size 4".
	req := Msg{Kind: ReadReq}
	if req.Size(16) != 2 {
		t.Errorf("RREQ size %d", req.Size(16))
	}
	data := Msg{Kind: Data}
	if data.Size(16) != 6 {
		t.Errorf("DATA size %d", data.Size(16))
	}
	for _, k := range []MsgKind{Data, DataEx, FetchAck, WBNotify, FlushWB} {
		if !k.CarriesData() {
			t.Errorf("%v should carry data", k)
		}
	}
	for _, k := range []MsgKind{ReadReq, WriteReq, Inv, InvAck, Fetch, FlushAck} {
		if k.CarriesData() {
			t.Errorf("%v should not carry data", k)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k := ReadReq; k <= FlushAck; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
