package directory

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestSharersBasics(t *testing.T) {
	var s Sharers
	if s.Count() != 0 || s.Has(0) {
		t.Error("fresh set not empty")
	}
	s.Add(3)
	s.Add(70)
	s.Add(3) // idempotent
	if s.Count() != 2 || !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Errorf("set state wrong: %s", s.String())
	}
	s.Remove(3)
	if s.Count() != 1 || s.Has(3) {
		t.Error("remove failed")
	}
	s.Remove(99) // absent: no-op
	s.Clear()
	if s.Count() != 0 {
		t.Error("clear failed")
	}
}

func TestSharersForEachOrdered(t *testing.T) {
	var s Sharers
	for _, n := range []int{64, 1, 200, 0} {
		s.Add(n)
	}
	var got []int
	s.ForEach(func(n int) { got = append(got, n) })
	want := []int{0, 1, 64, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSharersProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		var s Sharers
		ref := map[int]bool{}
		for _, a := range adds {
			s.Add(int(a))
			ref[int(a)] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for n := range ref {
			if !s.Has(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectoryEntries(t *testing.T) {
	d := New()
	e := d.Entry(42)
	if e.State != Uncached || e.Owner != -1 {
		t.Errorf("fresh entry %+v", e)
	}
	e.State = Exclusive
	e.Owner = 7
	if again := d.Entry(42); again != e {
		t.Error("Entry not stable")
	}
	if _, ok := d.Probe(43); ok {
		t.Error("Probe invented an entry")
	}
	if d.Entries() != 1 {
		t.Errorf("entries = %d", d.Entries())
	}
}

func TestMsgSizes(t *testing.T) {
	// Control messages are 2 flits; data messages add the block
	// payload (16 B block = 4 words), giving the mix behind Table 4's
	// "average packet size 4".
	req := Msg{Kind: ReadReq}
	if req.Size(16) != 2 {
		t.Errorf("RREQ size %d", req.Size(16))
	}
	data := Msg{Kind: Data}
	if data.Size(16) != 6 {
		t.Errorf("DATA size %d", data.Size(16))
	}
	for _, k := range []MsgKind{Data, DataEx, FetchAck, WBNotify, FlushWB} {
		if !k.CarriesData() {
			t.Errorf("%v should carry data", k)
		}
	}
	for _, k := range []MsgKind{ReadReq, WriteReq, Inv, InvAck, Fetch, FlushAck} {
		if k.CarriesData() {
			t.Errorf("%v should not carry data", k)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k := ReadReq; k <= FlushAck; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestBlocksSortedAscending(t *testing.T) {
	d := New()
	// Insertion order scrambled relative to block numbers, with enough
	// blocks to force at least one table growth.
	blocks := []uint32{77, 3, 1029, 5, 64, 2, 500, 12, 9999, 1}
	for i := uint32(0); i < 100; i++ {
		blocks = append(blocks, 2000+i*37)
	}
	for _, b := range blocks {
		d.Entry(b)
	}
	got := d.Blocks()
	if len(got) != len(blocks) {
		t.Fatalf("Blocks() returned %d blocks, want %d", len(got), len(blocks))
	}
	if !slices.IsSorted(got) {
		t.Errorf("Blocks() not ascending: %v", got)
	}
	want := append([]uint32(nil), blocks...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Errorf("Blocks() = %v, want %v", got, want)
	}
}

// Steady-state directory traffic — entry lookups on resident blocks and
// sharer-set updates within the inline 64-node word — must not allocate.
func TestSteadyStateOpsAllocFree(t *testing.T) {
	d := New()
	for b := uint32(0); b < 128; b++ {
		d.Entry(b)
	}
	var targets []int
	ops := func() {
		e := d.Entry(77)
		e.Sharers.Add(5)
		e.Sharers.Add(63)
		if e.Sharers.CountExcept(5) != 1 {
			t.Fatal("CountExcept wrong")
		}
		targets = e.Sharers.AppendMembers(targets[:0], 5)
		if len(targets) != 1 || targets[0] != 63 {
			t.Fatalf("AppendMembers = %v", targets)
		}
		e.Sharers.Remove(5)
		e.Sharers.Remove(63)
		if _, ok := d.Probe(77); !ok {
			t.Fatal("Probe missed a resident block")
		}
	}
	ops() // size the scratch buffer
	if n := testing.AllocsPerRun(1000, ops); n != 0 {
		t.Errorf("steady-state directory ops allocate %v/op, want 0", n)
	}
}
