// Package directory implements ALEWIFE's full-map directory-based
// cache coherence (Chaiken et al. [5]): each block of distributed
// shared memory has a home node whose directory entry records the
// global state — uncached, read-shared by a set of nodes, or held
// exclusively by one owner. The controller logic that exchanges the
// protocol messages lives in package sim; this package provides the
// entries, the sharer sets, and the message vocabulary.
package directory

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"
)

// State is a block's global state at its home directory.
type State uint8

const (
	Uncached State = iota
	Shared
	Exclusive
)

func (s State) String() string {
	switch s {
	case Uncached:
		return "uncached"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	}
	return "?"
}

// Sharers is a set of node ids. The first 64 nodes live in an inline
// word so machines up to 64 processors (the paper's largest ALEWIFE
// configuration) never allocate; larger machines spill into the lazily
// grown overflow words.
type Sharers struct {
	word0 uint64   // nodes 0..63
	rest  []uint64 // rest[i] covers nodes 64*(i+1) .. 64*(i+2)-1
}

// Add inserts node.
func (s *Sharers) Add(node int) {
	if node < 64 {
		s.word0 |= 1 << node
		return
	}
	w := node/64 - 1
	for len(s.rest) <= w {
		s.rest = append(s.rest, 0)
	}
	s.rest[w] |= 1 << (node % 64)
}

// Remove deletes node.
func (s *Sharers) Remove(node int) {
	if node < 64 {
		s.word0 &^= 1 << node
		return
	}
	if w := node/64 - 1; w < len(s.rest) {
		s.rest[w] &^= 1 << (node % 64)
	}
}

// Has reports membership.
func (s *Sharers) Has(node int) bool {
	if node < 64 {
		return s.word0&(1<<node) != 0
	}
	w := node/64 - 1
	return w < len(s.rest) && s.rest[w]&(1<<(node%64)) != 0
}

// Count returns the set size.
func (s *Sharers) Count() int {
	n := bits.OnesCount64(s.word0)
	for _, w := range s.rest {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountExcept returns the set size not counting node (whether or not
// it is a member) — the common "how many other caches hold this"
// question, without a closure.
func (s *Sharers) CountExcept(node int) int {
	n := s.Count()
	if s.Has(node) {
		n--
	}
	return n
}

// ForEach visits members in ascending order.
func (s *Sharers) ForEach(f func(node int)) {
	for w := s.word0; w != 0; w &= w - 1 {
		f(bits.TrailingZeros64(w))
	}
	for wi, w := range s.rest {
		for ; w != 0; w &= w - 1 {
			f((wi+1)*64 + bits.TrailingZeros64(w))
		}
	}
}

// AppendMembers appends the members in ascending order to buf,
// skipping except (pass a negative node to keep everyone). It is the
// allocation-free form of ForEach for hot paths: the closure-less
// signature lets buf stay on the caller's reusable scratch.
func (s *Sharers) AppendMembers(buf []int, except int) []int {
	for w := s.word0; w != 0; w &= w - 1 {
		if n := bits.TrailingZeros64(w); n != except {
			buf = append(buf, n)
		}
	}
	for wi, w := range s.rest {
		for ; w != 0; w &= w - 1 {
			if n := (wi+1)*64 + bits.TrailingZeros64(w); n != except {
				buf = append(buf, n)
			}
		}
	}
	return buf
}

// Clear empties the set.
func (s *Sharers) Clear() {
	s.word0 = 0
	s.rest = s.rest[:0]
}

// String renders the set.
func (s *Sharers) String() string {
	var parts []string
	s.ForEach(func(n int) { parts = append(parts, fmt.Sprint(n)) })
	return "{" + strings.Join(parts, ",") + "}"
}

// Entry is one block's directory state.
type Entry struct {
	State   State
	Sharers Sharers
	Owner   int
}

// dirSlot is one slot of the open-addressed entry table.
type dirSlot struct {
	block uint32
	live  bool
	entry Entry
}

// Directory holds the entries homed at one node. Entries live inline
// in an open-addressed hash table (linear probing, power-of-two size,
// multiplicative hash): looking one up is an array index instead of a
// map access plus a pointer chase, and creating one allocates nothing
// beyond the amortized table growth. The table is sized from the
// demand-paged footprint — it grows geometrically with the number of
// distinct blocks actually touched, never with the address space — and
// entries are never deleted (an entry that returns to Uncached keeps
// its slot), so no tombstone machinery is needed.
type Directory struct {
	slots []dirSlot // power-of-two length
	shift uint      // 32 - log2(len(slots)), for the multiplicative hash
	used  int

	// Stats.
	ReadMisses, WriteMisses, InvalsSent, Fetches, Writebacks uint64
}

// New creates an empty directory.
func New() *Directory {
	d := &Directory{}
	d.initTable(64)
	return d
}

func (d *Directory) initTable(n int) {
	d.slots = make([]dirSlot, n)
	shift := uint(32)
	for m := n; m > 1; m >>= 1 {
		shift--
	}
	d.shift = shift
}

// slotFor returns the index of block's slot: its live slot if present,
// otherwise the empty slot where it would be inserted.
func (d *Directory) slotFor(block uint32) int {
	mask := uint32(len(d.slots) - 1)
	i := (block * 2654435761) >> d.shift // Fibonacci hashing
	for {
		s := &d.slots[i]
		if !s.live || s.block == block {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

func (d *Directory) grow() {
	old := d.slots
	d.initTable(len(old) * 2)
	for i := range old {
		if old[i].live {
			d.slots[d.slotFor(old[i].block)] = old[i]
		}
	}
}

// Entry returns (creating) the entry for block. The pointer aliases
// the table: it stays valid only until the next Entry call that
// inserts a new block (table growth moves entries), so callers must
// not hold it across insertions.
func (d *Directory) Entry(block uint32) *Entry {
	i := d.slotFor(block)
	if !d.slots[i].live {
		if (d.used+1)*4 > len(d.slots)*3 { // keep load below 3/4
			d.grow()
			i = d.slotFor(block)
		}
		s := &d.slots[i]
		s.live = true
		s.block = block
		s.entry = Entry{Owner: -1}
		d.used++
	}
	return &d.slots[i].entry
}

// Probe returns the entry if it exists, under the same aliasing rule
// as Entry.
func (d *Directory) Probe(block uint32) (*Entry, bool) {
	s := &d.slots[d.slotFor(block)]
	if !s.live {
		return nil, false
	}
	return &s.entry, true
}

// Entries counts allocated entries.
func (d *Directory) Entries() int { return d.used }

// Blocks lists every block with an allocated entry, ascending, so
// inspection and invariant-check output is deterministic.
func (d *Directory) Blocks() []uint32 {
	out := make([]uint32, 0, d.used)
	for i := range d.slots {
		if d.slots[i].live {
			out = append(out, d.slots[i].block)
		}
	}
	slices.Sort(out)
	return out
}

// MsgKind enumerates the coherence protocol messages.
type MsgKind uint8

const (
	// Requester -> home.
	ReadReq  MsgKind = iota
	WriteReq         // also upgrade
	WBNotify         // eviction writeback of a dirty exclusive block

	// Home -> requester.
	Data   // read reply, shared copy
	DataEx // write reply, exclusive copy

	// Home -> third parties and their replies.
	Inv      // invalidate a shared copy
	InvAck   // -> home
	Fetch    // recall the exclusive copy from its owner
	FetchAck // owner -> home, carries the data

	// Cache management (Section 3.4).
	FlushWB  // FLUSH writeback -> home
	FlushAck // home -> flusher (decrements the fence counter)
)

var kindNames = [...]string{
	ReadReq: "RREQ", WriteReq: "WREQ", WBNotify: "WB",
	Data: "DATA", DataEx: "DATAEX",
	Inv: "INV", InvAck: "INVACK", Fetch: "FETCH", FetchAck: "FETCHACK",
	FlushWB: "FLUSHWB", FlushAck: "FLUSHACK",
}

func (k MsgKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// CarriesData reports whether the message includes a memory block (and
// so pays the data packet size).
func (k MsgKind) CarriesData() bool {
	switch k {
	case Data, DataEx, FetchAck, WBNotify, FlushWB:
		return true
	}
	return false
}

// Msg is one protocol message.
type Msg struct {
	Kind      MsgKind
	Block     uint32
	From      int
	Requester int  // original requester for three-party transactions
	Write     bool // Fetch: recall for a writer (invalidate) vs reader (downgrade)
}

// Size returns the packet size in flits: a two-flit header plus the
// block payload for data-bearing messages.
func (m Msg) Size(blockBytes uint32) int {
	if m.Kind.CarriesData() {
		return 2 + int(blockBytes/4)
	}
	return 2
}
