// Package directory implements ALEWIFE's full-map directory-based
// cache coherence (Chaiken et al. [5]): each block of distributed
// shared memory has a home node whose directory entry records the
// global state — uncached, read-shared by a set of nodes, or held
// exclusively by one owner. The controller logic that exchanges the
// protocol messages lives in package sim; this package provides the
// entries, the sharer sets, and the message vocabulary.
package directory

import (
	"fmt"
	"strings"
)

// State is a block's global state at its home directory.
type State uint8

const (
	Uncached State = iota
	Shared
	Exclusive
)

func (s State) String() string {
	switch s {
	case Uncached:
		return "uncached"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	}
	return "?"
}

// Sharers is a set of node ids.
type Sharers struct {
	bits []uint64
}

// Add inserts node.
func (s *Sharers) Add(node int) {
	w := node / 64
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (node % 64)
}

// Remove deletes node.
func (s *Sharers) Remove(node int) {
	w := node / 64
	if w < len(s.bits) {
		s.bits[w] &^= 1 << (node % 64)
	}
}

// Has reports membership.
func (s *Sharers) Has(node int) bool {
	w := node / 64
	return w < len(s.bits) && s.bits[w]&(1<<(node%64)) != 0
}

// Count returns the set size.
func (s *Sharers) Count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ForEach visits members in ascending order.
func (s *Sharers) ForEach(f func(node int)) {
	for wi, w := range s.bits {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				f(wi*64 + b)
			}
		}
	}
}

// Clear empties the set.
func (s *Sharers) Clear() { s.bits = s.bits[:0] }

// String renders the set.
func (s *Sharers) String() string {
	var parts []string
	s.ForEach(func(n int) { parts = append(parts, fmt.Sprint(n)) })
	return "{" + strings.Join(parts, ",") + "}"
}

// Entry is one block's directory state.
type Entry struct {
	State   State
	Sharers Sharers
	Owner   int
}

// Directory holds the entries homed at one node (allocated lazily; an
// absent entry is Uncached).
type Directory struct {
	entries map[uint32]*Entry

	// Stats.
	ReadMisses, WriteMisses, InvalsSent, Fetches, Writebacks uint64
}

// New creates an empty directory.
func New() *Directory {
	return &Directory{entries: map[uint32]*Entry{}}
}

// Entry returns (creating) the entry for block.
func (d *Directory) Entry(block uint32) *Entry {
	e, ok := d.entries[block]
	if !ok {
		e = &Entry{Owner: -1}
		d.entries[block] = e
	}
	return e
}

// Probe returns the entry if it exists.
func (d *Directory) Probe(block uint32) (*Entry, bool) {
	e, ok := d.entries[block]
	return e, ok
}

// Entries counts allocated entries.
func (d *Directory) Entries() int { return len(d.entries) }

// Blocks lists every block with an allocated entry (inspection and
// invariant checking).
func (d *Directory) Blocks() []uint32 {
	out := make([]uint32, 0, len(d.entries))
	for b := range d.entries {
		out = append(out, b)
	}
	return out
}

// MsgKind enumerates the coherence protocol messages.
type MsgKind uint8

const (
	// Requester -> home.
	ReadReq  MsgKind = iota
	WriteReq         // also upgrade
	WBNotify         // eviction writeback of a dirty exclusive block

	// Home -> requester.
	Data   // read reply, shared copy
	DataEx // write reply, exclusive copy

	// Home -> third parties and their replies.
	Inv      // invalidate a shared copy
	InvAck   // -> home
	Fetch    // recall the exclusive copy from its owner
	FetchAck // owner -> home, carries the data

	// Cache management (Section 3.4).
	FlushWB  // FLUSH writeback -> home
	FlushAck // home -> flusher (decrements the fence counter)
)

var kindNames = [...]string{
	ReadReq: "RREQ", WriteReq: "WREQ", WBNotify: "WB",
	Data: "DATA", DataEx: "DATAEX",
	Inv: "INV", InvAck: "INVACK", Fetch: "FETCH", FetchAck: "FETCHACK",
	FlushWB: "FLUSHWB", FlushAck: "FLUSHACK",
}

func (k MsgKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// CarriesData reports whether the message includes a memory block (and
// so pays the data packet size).
func (k MsgKind) CarriesData() bool {
	switch k {
	case Data, DataEx, FetchAck, WBNotify, FlushWB:
		return true
	}
	return false
}

// Msg is one protocol message.
type Msg struct {
	Kind      MsgKind
	Block     uint32
	From      int
	Requester int  // original requester for three-party transactions
	Write     bool // Fetch: recall for a writer (invalidate) vs reader (downgrade)
}

// Size returns the packet size in flits: a two-flit header plus the
// block payload for data-bearing messages.
func (m Msg) Size(blockBytes uint32) int {
	if m.Kind.CarriesData() {
		return 2 + int(blockBytes/4)
	}
	return 2
}
