// Package harness runs independent simulation experiments in parallel
// across host cores. The natural unit of parallelism is the whole run:
// build a machine, run it, report. The harness fans a list of such runs
// over a bounded worker pool and commits results in submission order,
// so the output of an experiment grid is byte-identical whether it ran
// on one core or sixteen. A run may additionally shard its machine
// across goroutines (sim.Config.Shards); nested parallelism like that
// must be budgeted with Budget so the product of sweep workers and
// per-run shards never oversubscribes the host.
package harness

import (
	"runtime"
	"sync"
	"time"
)

// Workers resolves a worker-count knob: n > 0 is used as given, any
// other value (0, negative) means one worker per available host core.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Budget resolves a sweep's worker count when each run is itself a
// sharded simulation occupying shards goroutines: the product
// workers*shards is capped at GOMAXPROCS so the sweep and the sharded
// run loops never oversubscribe the host, while always granting at
// least one worker so sweeps whose runs alone saturate the machine
// still make progress (their shard goroutines time-slice). workers
// follows the Workers convention (<= 0 means one per core); shards
// below one is treated as an unsharded run.
func Budget(workers, shards int) int {
	workers = Workers(workers)
	if shards < 1 {
		shards = 1
	}
	if cores := runtime.GOMAXPROCS(0); workers*shards > cores {
		workers = cores / shards
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// Occupancy reports how a pool's workers spent a sweep: per-worker run
// counts and busy wall time against the sweep's total wall time. It is
// host-side telemetry only — the simulated results are unaffected, and
// each worker writes only its own slot, so recording is race-free.
type Occupancy struct {
	Workers int      `json:"workers"`
	Runs    []int    `json:"runs_per_worker"`
	BusyNS  []uint64 `json:"busy_ns_per_worker"`
	WallNS  uint64   `json:"wall_ns"`
}

// BusyFraction is the pool's mean utilization: summed busy time over
// workers times wall time. 1.0 means no worker ever sat idle; low
// values flag a sweep whose tail run dominates.
func (o Occupancy) BusyFraction() float64 {
	if o.Workers == 0 || o.WallNS == 0 {
		return 0
	}
	var busy uint64
	for _, b := range o.BusyNS {
		busy += b
	}
	return float64(busy) / (float64(o.Workers) * float64(o.WallNS))
}

// Map runs fn(i) for i in [0, n) on a pool of workers and returns the
// results indexed by i. Determinism guarantees:
//
//   - results[i] is always the value fn produced for index i, no matter
//     which worker ran it or in what order the calls finished;
//   - if any call fails, Map returns the error of the lowest failing
//     index (not the first to fail in wall-clock order);
//   - after a failure, no index above the lowest failing one is
//     *started*; indices already in flight are allowed to finish, and
//     results below the failing index are still filled in.
//
// fn must be safe to call concurrently from multiple goroutines; the
// intended shape is "construct everything the run needs inside fn" so
// distinct indices share nothing mutable.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results, _, err := MapOccupancy(workers, n, fn)
	return results, err
}

// MapOccupancy is Map plus a per-worker occupancy report: which worker
// ran how many indices and for how long, against the pool's wall time.
func MapOccupancy[T any](workers, n int, fn func(i int) (T, error)) ([]T, Occupancy, error) {
	results := make([]T, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	occ := Occupancy{
		Workers: workers,
		Runs:    make([]int, workers),
		BusyNS:  make([]uint64, workers),
	}
	if n == 0 {
		return results, occ, nil
	}
	wallStart := time.Now()

	var (
		mu       sync.Mutex
		next     int     // next index to hand out
		failedAt int = n // lowest failing index so far
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				// Indices are issued in ascending order, so stopping the
				// issue at the lowest failure never skips an index below it.
				if next >= n || next > failedAt {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				start := time.Now()
				v, err := fn(i)
				occ.Runs[w]++
				occ.BusyNS[w] += uint64(time.Since(start))

				mu.Lock()
				if err != nil {
					if i < failedAt {
						failedAt, firstErr = i, err
					}
				} else {
					results[i] = v
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	occ.WallNS = uint64(time.Since(wallStart))
	if firstErr != nil {
		return results, occ, firstErr
	}
	return results, occ, nil
}

// ForEach is Map without result values.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
