package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Indices 10 and 30 both fail; whatever the scheduling, the error
	// must be index 10's, and every result below 10 must be present.
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (string, error) {
			if i == 10 || i == 30 {
				return "", fmt.Errorf("boom %d", i)
			}
			return fmt.Sprintf("ok %d", i), nil
		})
		if err == nil || err.Error() != "boom 10" {
			t.Fatalf("workers=%d: err = %v, want boom 10", workers, err)
		}
		for i := 0; i < 10; i++ {
			if got[i] != fmt.Sprintf("ok %d", i) {
				t.Fatalf("workers=%d: results[%d] = %q", workers, i, got[i])
			}
		}
	}
}

func TestMapStopsIssuingAfterFailure(t *testing.T) {
	// With one worker the issue order is fully deterministic: after
	// index 10 fails, no later index may be started.
	var calls atomic.Int64
	_, err := Map(1, 50, func(i int) (int, error) {
		calls.Add(1)
		if i == 10 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n != 11 {
		t.Fatalf("%d calls, want 11 (indices 0..10)", n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	want := errors.New("bad")
	err := ForEach(4, 20, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) <= 0 || Workers(-1) <= 0 {
		t.Fatal("defaulted worker count not positive")
	}
}

// TestMapConcurrentStress hammers the pool under -race: many small
// tasks, shared counters, every worker count on the same data.
func TestMapConcurrentStress(t *testing.T) {
	var sum atomic.Int64
	got, err := Map(8, 1000, func(i int) (int, error) {
		sum.Add(int64(i))
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 999*1000/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}
