package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Indices 10 and 30 both fail; whatever the scheduling, the error
	// must be index 10's, and every result below 10 must be present.
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (string, error) {
			if i == 10 || i == 30 {
				return "", fmt.Errorf("boom %d", i)
			}
			return fmt.Sprintf("ok %d", i), nil
		})
		if err == nil || err.Error() != "boom 10" {
			t.Fatalf("workers=%d: err = %v, want boom 10", workers, err)
		}
		for i := 0; i < 10; i++ {
			if got[i] != fmt.Sprintf("ok %d", i) {
				t.Fatalf("workers=%d: results[%d] = %q", workers, i, got[i])
			}
		}
	}
}

func TestMapStopsIssuingAfterFailure(t *testing.T) {
	// With one worker the issue order is fully deterministic: after
	// index 10 fails, no later index may be started.
	var calls atomic.Int64
	_, err := Map(1, 50, func(i int) (int, error) {
		calls.Add(1)
		if i == 10 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n != 11 {
		t.Fatalf("%d calls, want 11 (indices 0..10)", n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	want := errors.New("bad")
	err := ForEach(4, 20, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) <= 0 || Workers(-1) <= 0 {
		t.Fatal("defaulted worker count not positive")
	}
}

// TestShardBudget pins the nested-parallelism contract: sweep workers
// times per-run shards never exceeds GOMAXPROCS, but a sweep always
// gets at least one worker even when a single sharded run already
// saturates the host. GOMAXPROCS is pinned so the expectations don't
// depend on the machine running the tests.
func TestShardBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	for _, tc := range []struct {
		workers, shards, want int
	}{
		{0, 1, 8},  // default workers, unsharded: one per core
		{0, 0, 8},  // shards <= 0 treated as unsharded
		{0, 2, 4},  // default workers halved by 2-way sharding
		{0, 3, 2},  // floor(8/3)
		{0, 8, 1},  // one run saturates the host
		{0, 16, 1}, // oversized shard count still gets one worker
		{3, 2, 3},  // explicit request within budget is honored
		{6, 2, 4},  // explicit request over budget is clamped
		{2, 5, 1},  // clamp can go below the explicit request
	} {
		if got := Budget(tc.workers, tc.shards); got != tc.want {
			t.Errorf("Budget(%d, %d) = %d, want %d", tc.workers, tc.shards, got, tc.want)
		}
		if got := Budget(tc.workers, tc.shards); got*max(tc.shards, 1) > 8 && got != 1 {
			t.Errorf("Budget(%d, %d) = %d oversubscribes 8 cores", tc.workers, tc.shards, got)
		}
	}
}

// TestMapConcurrentStress hammers the pool under -race: many small
// tasks, shared counters, every worker count on the same data.
func TestMapConcurrentStress(t *testing.T) {
	var sum atomic.Int64
	got, err := Map(8, 1000, func(i int) (int, error) {
		sum.Add(int64(i))
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 999*1000/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

func TestObsMapOccupancy(t *testing.T) {
	results, occ, err := MapOccupancy(3, 10, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Errorf("results[%d] = %d", i, v)
		}
	}
	if occ.Workers != 3 || len(occ.Runs) != 3 || len(occ.BusyNS) != 3 {
		t.Fatalf("occupancy shape: %+v", occ)
	}
	var runs int
	for _, r := range occ.Runs {
		runs += r
	}
	if runs != 10 {
		t.Errorf("runs sum = %d, want 10", runs)
	}
	if occ.WallNS == 0 {
		t.Error("wall time not recorded")
	}
	if f := occ.BusyFraction(); f < 0 || f > 1.000001 {
		t.Errorf("busy fraction %v out of range", f)
	}
}

func TestObsMapOccupancyEmptyAndZero(t *testing.T) {
	_, occ, err := MapOccupancy(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if occ.BusyFraction() != 0 {
		t.Errorf("empty sweep busy fraction = %v", occ.BusyFraction())
	}
	if (Occupancy{}).BusyFraction() != 0 {
		t.Error("zero-value occupancy must not divide by zero")
	}
}
