package rts

import (
	"fmt"
	"io"
	"slices"

	"april/internal/abi"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/trace"
)

// Stats counts scheduler events across the machine.
type Stats struct {
	TasksCreated      uint64 // eager tasks
	Steals            uint64 // lazy continuations stolen
	StealWords        uint64 // stack words copied by steals
	Blocks            uint64 // threads blocked on unresolved futures
	Requeues          uint64 // threads requeued after F/E sync faults
	Wakes             uint64
	ThreadSteals      uint64 // eager tasks taken from a remote ready queue
	TouchesResolved   uint64
	TouchesUnresolved uint64
}

// Scheduler is the machine-wide thread system shared by all node
// runtimes. The simulator runs nodes in lockstep (one instruction per
// node per turn), so scheduler operations are atomic with respect to
// simulated instructions and need no Go-level locking.
type Scheduler struct {
	Mem  *mem.Memory
	Prof *Profile
	Lazy bool
	Out  io.Writer

	TaskExitPC uint32
	MainExitPC uint32

	MainDone   bool
	MainResult isa.Word

	Stats Stats

	// Trace records machine-wide scheduler events (wakes); nil when
	// tracing is disabled.
	Trace *trace.Tracer

	threads []*Thread
	ready   [][]int // per-node LIFO (newest at the end)
	waiters map[uint32][]int
	// waiterPool recycles waiter slices freed by Resolve so the
	// block/resolve steady state does not churn the allocator.
	waiterPool [][]int

	// readyQueues counts nonempty ready queues, so an idle node's steal
	// probe is O(1) when the whole machine is out of work — the common
	// case in low-parallelism phases — instead of scanning every queue.
	// ScanSteal restores the scanning probe (the reference cost profile
	// used for before/after throughput measurement; the probe's result
	// is identical either way).
	readyQueues int
	ScanSteal   bool

	stackAlloc *chunkAlloc
	freeStacks []uint32 // recycled stack chunk bases
	freeTCBs   []uint32

	heapAlloc *chunkAlloc

	stealRR int // round-robin cursor over threads for marker stealing
}

// Memory chunk sizes.
const (
	stackChunkBytes = abi.StackBytes
	heapChunkBytes  = 256 << 10
)

// NewScheduler creates the thread system over the given memory regions.
func NewScheduler(m *mem.Memory, prof *Profile, lazy bool, nodes int,
	stackArena, heapArena *mem.Arena, out io.Writer) *Scheduler {
	if out == nil {
		out = io.Discard
	}
	return &Scheduler{
		Mem:        m,
		Prof:       prof,
		Lazy:       lazy,
		Out:        out,
		ready:      make([][]int, nodes),
		waiters:    map[uint32][]int{},
		stackAlloc: &chunkAlloc{arena: stackArena, what: "stack"},
		heapAlloc:  &chunkAlloc{arena: heapArena, what: "heap"},
	}
}

// HeapChunk hands a node a fresh allocation chunk (for both the
// compiled code's bump allocator and the runtime's own allocations).
func (s *Scheduler) HeapChunk(minBytes uint32) (base, limit uint32, err error) {
	n := uint32(heapChunkBytes)
	if minBytes > n {
		n = (minBytes + 7) &^ 7
	}
	base, err = s.heapAlloc.alloc(n)
	if err != nil {
		return 0, 0, err
	}
	return base, base + n, nil
}

// NewThread registers a fresh thread (stackless until first load).
func (s *Scheduler) NewThread(home int) *Thread {
	t := &Thread{ID: len(s.threads), State: ThreadReady, Home: home}
	s.threads = append(s.threads, t)
	return t
}

// Thread returns a thread by id.
func (s *Scheduler) Thread(id int) *Thread { return s.threads[id] }

// NumThreads returns the number of threads ever created.
func (s *Scheduler) NumThreads() int { return len(s.threads) }

// PushReady enqueues t on its home node's ready queue (LIFO: the
// scheduler favors the most recently created task, which keeps the
// live-task set depth-first and bounded).
func (s *Scheduler) PushReady(t *Thread) {
	t.State = ThreadReady
	if len(s.ready[t.Home]) == 0 {
		s.readyQueues++
	}
	s.ready[t.Home] = append(s.ready[t.Home], t.ID)
}

// PushReadyOldest enqueues t at the OLD end of its home queue, so it
// is the last local choice (and the first steal candidate). Used when
// requeueing a thread that just failed a synchronization attempt:
// putting it back on top would starve the very thread that must run to
// satisfy it (the paper's switch-spin starvation problem).
func (s *Scheduler) PushReadyOldest(t *Thread) {
	t.State = ThreadReady
	q := s.ready[t.Home]
	if len(q) == 0 {
		s.readyQueues++
	}
	// In-place prepend: this runs on every failed synchronization
	// retry, so it must not allocate a fresh slice each time.
	q = append(q, 0)
	copy(q[1:], q)
	q[0] = t.ID
	s.ready[t.Home] = q
}

// PopReadyLocal takes the newest ready thread of node, if any.
func (s *Scheduler) PopReadyLocal(node int) *Thread {
	q := s.ready[node]
	if len(q) == 0 {
		return nil
	}
	id := q[len(q)-1]
	s.ready[node] = q[:len(q)-1]
	if len(q) == 1 {
		s.readyQueues--
	}
	return s.threads[id]
}

// StealReady takes the OLDEST ready thread from some other node
// (oldest-first stealing takes the biggest pending work, as in lazy
// task stealing).
func (s *Scheduler) StealReady(node int) *Thread {
	if s.readyQueues == 0 && !s.ScanSteal {
		return nil
	}
	n := len(s.ready)
	for d := 1; d < n; d++ {
		v := (node + d) % n
		if len(s.ready[v]) > 0 {
			q := s.ready[v]
			id := q[0]
			// Shift down instead of reslicing q[1:]: reslicing loses
			// front capacity, so later pushes would reallocate; queues
			// are short, so the copy is cheap.
			copy(q, q[1:])
			s.ready[v] = q[:len(q)-1]
			if len(s.ready[v]) == 0 {
				s.readyQueues--
			}
			s.Stats.ThreadSteals++
			return s.threads[id]
		}
	}
	return nil
}

// ReadyCount reports queued threads across all nodes.
func (s *Scheduler) ReadyCount() int {
	n := 0
	for _, q := range s.ready {
		n += len(q)
	}
	return n
}

// ReadyOn reports the number of ready threads queued on one node
// (crash-report detail; ReadyCount gives the machine-wide total).
func (s *Scheduler) ReadyOn(node int) int { return len(s.ready[node]) }

// ForEachWaiter calls fn for every blocked-waiter list in ascending
// address order. Cold path (crash reports and end-of-run audits): the
// key sort allocates.
func (s *Scheduler) ForEachWaiter(fn func(addr uint32, threads []int)) {
	addrs := make([]uint32, 0, len(s.waiters))
	for a := range s.waiters {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		fn(a, s.waiters[a])
	}
}

// BlockedByNode counts blocked threads by home node into counts
// (len(counts) must cover every node id). Cold path: crash reports.
func (s *Scheduler) BlockedByNode(counts []int) {
	for _, ids := range s.waiters {
		for _, id := range ids {
			counts[s.threads[id].Home]++
		}
	}
}

// AddWaiter blocks thread t on the future object at addr.
func (s *Scheduler) AddWaiter(addr uint32, t *Thread) {
	t.State = ThreadBlocked
	q, ok := s.waiters[addr]
	if !ok && len(s.waiterPool) > 0 {
		n := len(s.waiterPool) - 1
		q = s.waiterPool[n]
		s.waiterPool[n] = nil
		s.waiterPool = s.waiterPool[:n]
	}
	s.waiters[addr] = append(q, t.ID)
	s.Stats.Blocks++
}

// Resolve writes value into the future f, marks it full, and wakes all
// waiters.
func (s *Scheduler) Resolve(f isa.Word, value isa.Word) error {
	if !isa.IsFuture(f) {
		return fmt.Errorf("rts: resolving non-future %#x", f)
	}
	addr := isa.PointerAddress(f) + abi.FutValueOff
	if err := s.Mem.StoreWord(addr, value); err != nil {
		return err
	}
	s.Mem.MustSetFE(addr, true)
	base := isa.PointerAddress(f)
	for _, id := range s.waiters[base] {
		t := s.threads[id]
		if t.State == ThreadBlocked {
			s.PushReady(t)
			s.Stats.Wakes++
			// Attributed to the woken thread's home node: that is whose
			// ready queue receives it.
			s.Trace.Emit(t.Home, trace.KWake, int32(t.ID), int32(base), 0, 0)
		}
	}
	if q, ok := s.waiters[base]; ok {
		s.waiterPool = append(s.waiterPool, q[:0])
		delete(s.waiters, base)
	}
	return nil
}

// BlockedCount reports threads blocked on futures.
func (s *Scheduler) BlockedCount() int {
	n := 0
	for _, ids := range s.waiters {
		n += len(ids)
	}
	return n
}

// allocStack gives t a stack chunk and (in lazy mode) a TCB, setting
// the corresponding registers in its image.
func (s *Scheduler) allocStack(t *Thread) error {
	if t.HasStack() {
		return nil
	}
	var base uint32
	if n := len(s.freeStacks); n > 0 {
		base = s.freeStacks[n-1]
		s.freeStacks = s.freeStacks[:n-1]
	} else {
		var err error
		base, err = s.stackAlloc.alloc(stackChunkBytes)
		if err != nil {
			return err
		}
	}
	t.StackLow = base
	// Stack coloring: stagger each thread's stack top so that frames
	// at equal call depth in different threads do not alias to the
	// same cache sets (power-of-two-aligned stacks would otherwise
	// turn p resident threads into a p-way conflict on every frame
	// slot — a multithreading-specific thrashing pathology).
	skew := uint32((t.ID*7)%128) * 16
	t.StackTop = base + stackChunkBytes - skew
	t.Regs[isa.RSP] = isa.Word(t.StackTop)
	t.Regs[isa.RFP] = 0 // chain sentinel
	if s.Lazy {
		tcb, err := s.allocTCB()
		if err != nil {
			return err
		}
		InitTCB(s.Mem, tcb, t.ID)
		t.TCB = tcb
		t.Regs[isa.RTP] = isa.Word(tcb)
	}
	return nil
}

func (s *Scheduler) allocTCB() (uint32, error) {
	if n := len(s.freeTCBs); n > 0 {
		tcb := s.freeTCBs[n-1]
		s.freeTCBs = s.freeTCBs[:n-1]
		return tcb, nil
	}
	return s.stackAlloc.alloc(abi.TCBBytes)
}

// Kill retires a thread, recycling its stack and TCB.
func (s *Scheduler) Kill(t *Thread) {
	t.State = ThreadDead
	if t.StackLow != 0 {
		s.freeStacks = append(s.freeStacks, t.StackLow)
		t.StackLow, t.StackTop = 0, 0
	}
	if t.TCB != 0 {
		s.freeTCBs = append(s.freeTCBs, t.TCB)
		t.TCB = 0
	}
}

// LiveThreads reports non-dead threads (for deadlock diagnostics).
func (s *Scheduler) LiveThreads() int {
	n := 0
	for _, t := range s.threads {
		if t.State != ThreadDead {
			n++
		}
	}
	return n
}

// FindMarker scans threads round-robin for a stealable lazy marker and
// returns the owning thread, or nil. The scan order is deterministic.
func (s *Scheduler) FindMarker() *Thread {
	n := len(s.threads)
	for i := 0; i < n; i++ {
		t := s.threads[(s.stealRR+i)%n]
		if t.State == ThreadDead || t.TCB == 0 {
			continue
		}
		bot, top := DequeBounds(s.Mem, t.TCB)
		if bot < top {
			s.stealRR = (s.stealRR + i + 1) % n
			return t
		}
	}
	return nil
}
