package rts

import (
	"fmt"

	"april/internal/isa"
)

// Snapshot support. The scheduler's queues, waiter map, freelists and
// arena cursors are all simulated state: queue order decides which
// thread runs next, freelist order decides which recycled stack a new
// thread receives, and the arena cursors decide the addresses of
// future allocations — so all of them round-trip exactly. waiterPool
// and readyQueues are host-side (recycling scratch and a derived
// count) and are reconstructed.

// WaiterImage is one blocked-waiter list keyed by future address.
type WaiterImage struct {
	Addr    uint32
	Threads []int
}

// SchedImage is a Scheduler's complete snapshot state.
type SchedImage struct {
	MainDone   bool
	MainResult isa.Word
	Stats      Stats

	Threads    []Thread // by ID
	Ready      [][]int  // per node, oldest first
	Waiters    []WaiterImage
	FreeStacks []uint32 // LIFO order (next alloc pops the end)
	FreeTCBs   []uint32
	StealRR    int

	StackNext, StackLimit uint32 // stack-region bump cursor
	HeapNext, HeapLimit   uint32 // heap-region bump cursor
}

// DumpState captures the scheduler.
func (s *Scheduler) DumpState() SchedImage {
	img := SchedImage{
		MainDone:   s.MainDone,
		MainResult: s.MainResult,
		Stats:      s.Stats,
		Threads:    make([]Thread, len(s.threads)),
		Ready:      make([][]int, len(s.ready)),
		FreeStacks: append([]uint32(nil), s.freeStacks...),
		FreeTCBs:   append([]uint32(nil), s.freeTCBs...),
		StealRR:    s.stealRR,
		StackNext:  s.stackAlloc.arena.Next,
		StackLimit: s.stackAlloc.arena.Limit,
		HeapNext:   s.heapAlloc.arena.Next,
		HeapLimit:  s.heapAlloc.arena.Limit,
	}
	for i, t := range s.threads {
		img.Threads[i] = *t
	}
	for node, q := range s.ready {
		img.Ready[node] = append([]int(nil), q...)
	}
	s.ForEachWaiter(func(addr uint32, threads []int) {
		img.Waiters = append(img.Waiters, WaiterImage{Addr: addr, Threads: append([]int(nil), threads...)})
	})
	return img
}

// RestoreState installs a dumped scheduler state into a freshly
// constructed scheduler with the same node count.
func (s *Scheduler) RestoreState(img SchedImage) error {
	if len(img.Ready) != len(s.ready) {
		return fmt.Errorf("rts: image has %d ready queues, scheduler has %d nodes", len(img.Ready), len(s.ready))
	}
	nthreads := len(img.Threads)
	for i, t := range img.Threads {
		if t.ID != i {
			return fmt.Errorf("rts: image thread %d has ID %d", i, t.ID)
		}
		if t.State > ThreadDead {
			return fmt.Errorf("rts: image thread %d has invalid state %d", i, t.State)
		}
	}
	checkIDs := func(where string, ids []int) error {
		for _, id := range ids {
			if id < 0 || id >= nthreads {
				return fmt.Errorf("rts: image %s references thread %d of %d", where, id, nthreads)
			}
		}
		return nil
	}
	for node, q := range img.Ready {
		if err := checkIDs(fmt.Sprintf("ready[%d]", node), q); err != nil {
			return err
		}
	}
	for _, w := range img.Waiters {
		if err := checkIDs(fmt.Sprintf("waiters[%#x]", w.Addr), w.Threads); err != nil {
			return err
		}
	}

	s.MainDone = img.MainDone
	s.MainResult = img.MainResult
	s.Stats = img.Stats
	s.threads = make([]*Thread, nthreads)
	for i := range img.Threads {
		t := img.Threads[i]
		s.threads[i] = &t
	}
	s.readyQueues = 0
	for node, q := range img.Ready {
		s.ready[node] = append([]int(nil), q...)
		if len(q) > 0 {
			s.readyQueues++
		}
	}
	s.waiters = make(map[uint32][]int, len(img.Waiters))
	for _, w := range img.Waiters {
		s.waiters[w.Addr] = append([]int(nil), w.Threads...)
	}
	s.freeStacks = append(s.freeStacks[:0], img.FreeStacks...)
	s.freeTCBs = append(s.freeTCBs[:0], img.FreeTCBs...)
	s.stealRR = img.StealRR
	s.stackAlloc.arena.Next = img.StackNext
	s.stackAlloc.arena.Limit = img.StackLimit
	s.heapAlloc.arena.Next = img.HeapNext
	s.heapAlloc.arena.Limit = img.HeapLimit
	return nil
}

// CorruptThreadState deliberately breaks thread conservation: the
// lowest-ID live thread is marked dead without recycling its stack or
// TCB, so the scheduler's live count drops while the thread remains
// queued, blocked, or resident. The sim layer's sabotage hook
// (sim.Config.SabotageCycle) uses it to plant a deterministic
// invariant violation for divergence-bisection tests; the checkers'
// sched/conservation invariant detects it at the next audit. Returns
// false when no live thread exists.
func (s *Scheduler) CorruptThreadState() bool {
	for _, t := range s.threads {
		if t.State != ThreadDead {
			t.State = ThreadDead
			return true
		}
	}
	return false
}

// StuckImage is one task frame's switch-spin retry tracker.
type StuckImage struct {
	PC    uint32
	Count int
}

// DumpStuck captures the per-frame retry trackers (nil when the node
// has never tracked a retry).
func (n *NodeRT) DumpStuck() []StuckImage {
	if n.stuck == nil {
		return nil
	}
	out := make([]StuckImage, len(n.stuck))
	for i, st := range n.stuck {
		out[i] = StuckImage{PC: st.pc, Count: st.count}
	}
	return out
}

// RestoreStuck installs retry trackers dumped by DumpStuck.
func (n *NodeRT) RestoreStuck(imgs []StuckImage) {
	if imgs == nil {
		n.stuck = nil
		return
	}
	n.stuck = make([]stuckState, len(imgs))
	for i, st := range imgs {
		n.stuck[i] = stuckState{pc: st.PC, count: st.Count}
	}
}
