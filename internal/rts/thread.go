package rts

import (
	"fmt"

	"april/internal/abi"
	"april/internal/core"
	"april/internal/isa"
	"april/internal/mem"
)

// ThreadState tracks a virtual thread through its life. Threads are
// "virtual and unlimited" (Section 3): only a few are loaded in task
// frames; the rest wait on queues in memory.
type ThreadState uint8

const (
	ThreadReady ThreadState = iota
	ThreadLoaded
	ThreadBlocked // waiting on an unresolved future
	ThreadDead
)

func (s ThreadState) String() string {
	switch s {
	case ThreadReady:
		return "ready"
	case ThreadLoaded:
		return "loaded"
	case ThreadBlocked:
		return "blocked"
	case ThreadDead:
		return "dead"
	}
	return "?"
}

// Thread is a virtual thread: the register image plus runtime
// bookkeeping. The register image lives here (Go-side) when unloaded;
// stacks, TCBs, markers and all synchronization state live in simulated
// memory so the full/empty machinery works exactly as in the paper.
type Thread struct {
	ID    int
	State ThreadState

	Regs [isa.NumFrameRegs]isa.Word
	PC   uint32
	NPC  uint32
	PSR  core.PSR

	// TCB and stack in simulated memory (0 = not yet assigned; stacks
	// and TCBs are allocated lazily when the thread first runs so that
	// queued-but-never-started tasks cost nothing).
	TCB      uint32
	StackLow uint32 // lowest usable stack address
	StackTop uint32 // initial SP (stack grows down from here)

	// Future is the future object this thread resolves when its thunk
	// returns (eager task creation). Zero for the main thread and for
	// stolen continuations, which resolve futures through markers.
	Future isa.Word

	// Home is the node whose ready queue the thread prefers.
	Home int
}

// HasStack reports whether the thread has been given its stack and TCB.
func (t *Thread) HasStack() bool { return t.StackTop != 0 }

// InitTCB writes a fresh thread control block at addr.
func InitTCB(m *mem.Memory, addr uint32, id int) {
	m.MustStore(addr+abi.TCBLockOff, 0)
	m.MustSetFE(addr+abi.TCBLockOff, true)
	deque := addr + abi.TCBDequeOff
	m.MustStore(addr+abi.TCBTopOff, isa.Word(deque))
	m.MustStore(addr+abi.TCBBotOff, isa.Word(deque))
	m.MustStore(addr+abi.TCBIDOff, isa.MakeFixnum(int32(id)))
}

// DequeBounds reads a thread's marker deque pointers from memory.
func DequeBounds(m *mem.Memory, tcb uint32) (bot, top uint32) {
	return uint32(m.MustLoad(tcb + abi.TCBBotOff)), uint32(m.MustLoad(tcb + abi.TCBTopOff))
}

// chunkAlloc hands out chunks of simulated memory from a region. It is
// shared by all nodes (the simulator runs nodes in lockstep, so no
// locking is needed).
type chunkAlloc struct {
	arena *mem.Arena
	what  string
}

func (c *chunkAlloc) alloc(n uint32) (uint32, error) {
	addr := c.arena.Alloc(n)
	if addr == 0 {
		return 0, fmt.Errorf("rts: out of %s memory (requested %d bytes, %d left); raise Config.MemoryBytes", c.what, n, c.arena.Remaining())
	}
	return addr, nil
}
