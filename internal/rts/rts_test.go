package rts

import (
	"strings"
	"testing"

	"april/internal/abi"
	"april/internal/core"
	"april/internal/isa"
	"april/internal/mem"
)

func newSched(t *testing.T, nodes int, lazy bool) *Scheduler {
	t.Helper()
	m := mem.New(16 << 20)
	l := mem.DefaultLayout(16 << 20)
	prof := APRIL
	return NewScheduler(m, &prof, lazy, nodes,
		mem.NewArena(l.StackBase, l.StackEnd),
		mem.NewArena(l.HeapStart, l.End), nil)
}

func TestReadyQueueLIFOAndSteal(t *testing.T) {
	s := newSched(t, 2, false)
	a := s.NewThread(0)
	b := s.NewThread(0)
	c := s.NewThread(0)
	s.PushReady(a)
	s.PushReady(b)
	s.PushReady(c)
	// Local pops are LIFO (newest first).
	if got := s.PopReadyLocal(0); got != c {
		t.Errorf("local pop = %d, want %d", got.ID, c.ID)
	}
	// Remote steals take the OLDEST.
	if got := s.StealReady(1); got != a {
		t.Errorf("steal = %d, want %d", got.ID, a.ID)
	}
	if got := s.PopReadyLocal(0); got != b {
		t.Errorf("local pop = %d, want %d", got.ID, b.ID)
	}
	if s.PopReadyLocal(0) != nil || s.StealReady(1) != nil {
		t.Error("queues should be empty")
	}
	if s.Stats.ThreadSteals != 1 {
		t.Errorf("steals = %d", s.Stats.ThreadSteals)
	}
}

func TestResolveWakesWaiters(t *testing.T) {
	s := newSched(t, 1, false)
	// Build a future by hand in memory.
	futAddr := uint32(0x100000) &^ 7
	s.Mem.MustSetFE(futAddr, false)
	fut := isa.MakeFuture(futAddr)

	w1 := s.NewThread(0)
	w2 := s.NewThread(0)
	s.AddWaiter(futAddr, w1)
	s.AddWaiter(futAddr, w2)
	if w1.State != ThreadBlocked || s.BlockedCount() != 2 {
		t.Error("waiters not blocked")
	}
	if err := s.Resolve(fut, isa.MakeFixnum(9)); err != nil {
		t.Fatal(err)
	}
	if !s.Mem.MustFE(futAddr) || isa.FixnumValue(s.Mem.MustLoad(futAddr)) != 9 {
		t.Error("future value/FE not set")
	}
	if s.ReadyCount() != 2 || s.BlockedCount() != 0 {
		t.Errorf("ready=%d blocked=%d after resolve", s.ReadyCount(), s.BlockedCount())
	}
	if w1.State != ThreadReady || w2.State != ThreadReady {
		t.Error("waiters not ready")
	}
	if err := s.Resolve(isa.Nil, 0); err == nil {
		t.Error("resolving a non-future succeeded")
	}
}

func TestStackAllocationAndRecycling(t *testing.T) {
	s := newSched(t, 1, false)
	a := s.NewThread(0)
	if a.HasStack() {
		t.Error("thread born with stack")
	}
	if err := s.allocStack(a); err != nil {
		t.Fatal(err)
	}
	if !a.HasStack() || a.StackTop-a.StackLow != abi.StackBytes {
		t.Errorf("stack [%#x,%#x)", a.StackLow, a.StackTop)
	}
	if uint32(a.Regs[isa.RSP]) != a.StackTop || a.Regs[isa.RFP] != 0 {
		t.Error("sp/fp registers not initialized")
	}
	base := a.StackLow
	s.Kill(a)
	if a.State != ThreadDead || a.HasStack() {
		t.Error("kill did not clean up")
	}
	// The recycled chunk goes to the next thread.
	b := s.NewThread(0)
	if err := s.allocStack(b); err != nil {
		t.Fatal(err)
	}
	if b.StackLow != base {
		t.Errorf("stack not recycled: %#x vs %#x", b.StackLow, base)
	}
}

func TestLazyTCBSetup(t *testing.T) {
	s := newSched(t, 1, true)
	a := s.NewThread(0)
	if err := s.allocStack(a); err != nil {
		t.Fatal(err)
	}
	if a.TCB == 0 || uint32(a.Regs[isa.RTP]) != a.TCB {
		t.Fatal("lazy thread needs a TCB in RTP")
	}
	bot, top := DequeBounds(s.Mem, a.TCB)
	if bot != top || bot != a.TCB+abi.TCBDequeOff {
		t.Errorf("fresh deque bounds [%#x,%#x)", bot, top)
	}
	if isa.FixnumValue(s.Mem.MustLoad(a.TCB+abi.TCBIDOff)) != int32(a.ID) {
		t.Error("TCB id wrong")
	}
	// Eager mode allocates no TCB.
	se := newSched(t, 1, false)
	b := se.NewThread(0)
	if err := se.allocStack(b); err != nil {
		t.Fatal(err)
	}
	if b.TCB != 0 {
		t.Error("eager thread got a TCB")
	}
}

func TestFindMarker(t *testing.T) {
	s := newSched(t, 1, true)
	a := s.NewThread(0)
	if err := s.allocStack(a); err != nil {
		t.Fatal(err)
	}
	if s.FindMarker() != nil {
		t.Error("found marker in empty deque")
	}
	// Push a marker by hand.
	_, top := DequeBounds(s.Mem, a.TCB)
	s.Mem.MustStore(top+abi.MarkerPCOff, isa.MakeFixnum(123))
	s.Mem.MustStore(top+abi.MarkerSPOff, isa.Word(a.StackTop-64))
	s.Mem.MustStore(top+abi.MarkerStatusOff, isa.Word(a.StackTop-64+abi.FrameLocalsOff))
	s.Mem.MustStore(a.TCB+abi.TCBTopOff, isa.Word(top+abi.MarkerBytes))
	if got := s.FindMarker(); got != a {
		t.Errorf("FindMarker = %v, want thread %d", got, a.ID)
	}
	// Dead threads are skipped.
	tcb := a.TCB
	a.TCB = 0
	if s.FindMarker() != nil {
		t.Error("found marker on TCB-less thread")
	}
	a.TCB = tcb
	a.State = ThreadDead
	if s.FindMarker() != nil {
		t.Error("found marker on dead thread")
	}
}

func TestHeapChunks(t *testing.T) {
	s := newSched(t, 1, false)
	b1, l1, err := s.HeapChunk(0)
	if err != nil || l1-b1 != heapChunkBytes {
		t.Fatalf("chunk [%#x,%#x) err %v", b1, l1, err)
	}
	b2, _, err := s.HeapChunk(0)
	if err != nil || b2 == b1 {
		t.Fatalf("second chunk reused first")
	}
	// Oversized requests are honored.
	b3, l3, err := s.HeapChunk(heapChunkBytes * 3)
	if err != nil || l3-b3 < heapChunkBytes*3 {
		t.Fatalf("big chunk [%#x,%#x)", b3, l3)
	}
}

func TestOutOfStackMemoryError(t *testing.T) {
	m := mem.New(1 << 20)
	prof := APRIL
	s := NewScheduler(m, &prof, false, 1,
		mem.NewArena(0x2000, 0x2000+abi.StackBytes), // room for exactly one stack
		mem.NewArena(0x80000, 1<<20), nil)
	a := s.NewThread(0)
	if err := s.allocStack(a); err != nil {
		t.Fatal(err)
	}
	b := s.NewThread(0)
	err := s.allocStack(b)
	if err == nil || !strings.Contains(err.Error(), "stack") {
		t.Errorf("err = %v, want stack exhaustion", err)
	}
}

func TestProfileInvariants(t *testing.T) {
	// Paper-pinned numbers.
	if APRIL.SwitchCycles != 11 {
		t.Errorf("APRIL switch = %d, want 11 (Section 6.1)", APRIL.SwitchCycles)
	}
	if APRILCustom.SwitchCycles != 4 {
		t.Errorf("custom switch = %d, want 4", APRILCustom.SwitchCycles)
	}
	if APRIL.TouchResolvedHandler != 23 {
		t.Errorf("future-touch handler = %d, want 23 (Section 6.2)", APRIL.TouchResolvedHandler)
	}
	if APRIL.Frames != core.DefaultFrames || Encore.Frames != 1 {
		t.Error("frame counts wrong")
	}
	if !APRIL.HardwareFutures || Encore.HardwareFutures {
		t.Error("future-detection flags wrong")
	}
	// Encore task machinery costs roughly double APRIL's (Section 7).
	if Encore.FutureNew < 3*APRIL.FutureNew/2 {
		t.Error("Encore task creation should be substantially costlier")
	}
}

func TestThreadStateString(t *testing.T) {
	for st, want := range map[ThreadState]string{
		ThreadReady: "ready", ThreadLoaded: "loaded", ThreadBlocked: "blocked", ThreadDead: "dead",
	} {
		if st.String() != want {
			t.Errorf("%d -> %q", st, st.String())
		}
	}
}
