// Package rts is the APRIL run-time system: the software half of the
// paper's systems-level design. It implements the trap handlers
// (context switching, future touches, full/empty synchronization
// faults), the virtual-thread scheduler with its ready and suspended
// queues (Figure 2), eager task creation, lazy task creation with
// marker stealing [17], and the machine cost profiles used for the
// Table 3 comparison (APRIL on SPARC, a custom APRIL, and the Encore
// Multimax baseline).
package rts

import "april/internal/core"

// Profile is a machine cost model. All costs are in processor cycles
// and are charged by the trap handlers, matching how the paper accounts
// for its run-time system (Section 6).
type Profile struct {
	Name string

	// Frames is the number of hardware task frames (4 on the
	// SPARC-based APRIL; 1 on the Encore, a conventional processor).
	Frames int

	// HardwareFutures: tag-trap future detection (false for Encore).
	HardwareFutures bool

	// TrapEntry is the hardware trap overhead (pipeline squash + vector),
	// 5 cycles on SPARC (Section 6.1).
	TrapEntry int

	// SwitchCycles is the full context-switch cost including its trap
	// entry: 11 on the SPARC implementation, 4 on a custom APRIL.
	SwitchCycles int

	// TouchResolvedHandler is the future-touch handler cost when the
	// future is resolved: 23 cycles (Section 6.2), plus TrapEntry.
	TouchResolvedHandler int

	// TouchDecide is the handler cost to decide what to do with an
	// unresolved future before switch-spinning or blocking.
	TouchDecide int

	// FutureNew is the eager task-creation service: allocate the
	// future and task descriptor and enqueue it.
	FutureNew int

	// TaskExit is the task-exit service: resolve the future and wake
	// waiters.
	TaskExit int

	// ThreadLoad/ThreadUnload move a thread's register state between
	// memory and a hardware task frame (Section 6.2 calls these
	// "expensive operations": roughly a store/load per register).
	ThreadLoad   int
	ThreadUnload int

	// Steal is the cost of claiming a lazy marker, creating the future
	// and building the continuation thread (plus StealPerWord for each
	// word of parent stack copied).
	Steal        int
	StealPerWord int

	// StolenResolve is the victim-side cost of SvcStolen.
	StolenResolve int

	// Enqueue/Dequeue cover ready-queue operations within other
	// services; Idle is one idle poll of the queues.
	Enqueue int
	Dequeue int
	Idle    int

	// MakeVectorBase/PerWord and Print cost the remaining services.
	MakeVectorBase    int
	MakeVectorPerWord int
	Print             int

	// AllocRefill is the arena-refill service.
	AllocRefill int

	// BlockRounds is how many consecutive fruitless switch-spin rounds
	// (times Frames) the runtime tolerates before blocking the thread —
	// the paper's guard against the spin-starvation problem of
	// Section 3.1.
	BlockRounds int
}

// APRIL is the SPARC-based APRIL implementation of Section 5/6:
// 4 task frames, 11-cycle context switch, hardware future detection.
var APRIL = Profile{
	Name:                 "APRIL",
	Frames:               core.DefaultFrames,
	HardwareFutures:      true,
	TrapEntry:            core.TrapEntryCycles,
	SwitchCycles:         core.TrapEntryCycles + core.SwitchHandlerCyclesSPARC,
	TouchResolvedHandler: 23,
	TouchDecide:          6,
	FutureNew:            100,
	TaskExit:             30,
	ThreadLoad:           40,
	ThreadUnload:         40,
	Steal:                60,
	StealPerWord:         2,
	StolenResolve:        30,
	Enqueue:              8,
	Dequeue:              8,
	Idle:                 4,
	MakeVectorBase:       20,
	MakeVectorPerWord:    1,
	Print:                20,
	AllocRefill:          20,
	BlockRounds:          2,
}

// APRILCustom is the hypothetical custom implementation of Section 6.1:
// a four-cycle context switch with no trap-entry overhead on switches.
var APRILCustom = func() Profile {
	p := APRIL
	p.Name = "APRIL-custom"
	p.SwitchCycles = core.SwitchCyclesCustom
	return p
}()

// Encore models the Encore Multimax baseline of Section 7: a
// conventional single-context processor with software future detection
// (compiled-in tag checks), test&set-based synchronization, and
// heavyweight task management. Costs are roughly double APRIL's, which
// reproduces the paper's observation that APRIL's trap-based mechanisms
// cut task overhead by about 2x.
var Encore = Profile{
	Name:                 "Encore",
	Frames:               1,
	HardwareFutures:      false,
	TrapEntry:            5,
	SwitchCycles:         120, // software thread switch, no register frames
	TouchResolvedHandler: 40,  // software decode + test&set on the lock
	TouchDecide:          12,
	FutureNew:            220,
	TaskExit:             60,
	ThreadLoad:           120,
	ThreadUnload:         120,
	Steal:                150,
	StealPerWord:         3,
	StolenResolve:        60,
	Enqueue:              20,
	Dequeue:              20,
	Idle:                 8,
	MakeVectorBase:       20,
	MakeVectorPerWord:    1,
	Print:                20,
	AllocRefill:          20,
	BlockRounds:          1,
}
