package rts

import (
	"fmt"

	"april/internal/abi"
	"april/internal/core"
	"april/internal/fault"
	"april/internal/heap"
	"april/internal/isa"
	"april/internal/mem"
	"april/internal/proc"
	"april/internal/trace"
)

// NodeRT is the per-processor runtime: the trap handlers and the idle
// (scheduling) loop. It implements proc.Handler.
type NodeRT struct {
	Sched *Scheduler
	Prof  *Profile
	Node  int
	Heap  *heap.Heap // runtime-side allocation arena (refilled in chunks)

	// IPIHook, when set, receives interprocessor interrupts (§3.4).
	IPIHook func(payload isa.Word)

	// Trace records scheduler events and context-switch causes; nil
	// when tracing is disabled.
	Trace *trace.Tracer

	// Check, when non-nil, validates full/empty-bit consistency at trap
	// boundaries: a TrapEmpty must observe the bit empty and a
	// TrapFullStore must observe it full (trap raise and handling are
	// atomic within one Step, so nothing can legally intervene).
	Check *fault.Checker

	// stuck tracks, per task frame, how many times the loaded thread
	// has consecutively retried the same trapping PC without success;
	// past the profile's threshold the thread is blocked or requeued
	// (the paper's guard against switch-spin starvation, Section 3.1).
	stuck []stuckState
}

type stuckState struct {
	pc    uint32
	count int
}

// NewNodeRT builds the runtime for one node, giving it an initial heap
// chunk.
func NewNodeRT(s *Scheduler, node int) (*NodeRT, error) {
	base, limit, err := s.HeapChunk(0)
	if err != nil {
		return nil, err
	}
	return &NodeRT{
		Sched: s,
		Prof:  s.Prof,
		Node:  node,
		Heap:  heap.New(s.Mem, mem.NewArena(base, limit)),
	}, nil
}

// allocRetry runs an allocation, refilling the node's runtime arena
// once on exhaustion.
func (n *NodeRT) allocRetry(f func() (isa.Word, error)) (isa.Word, error) {
	w, err := f()
	if err == nil {
		return w, nil
	}
	base, limit, cerr := n.Sched.HeapChunk(0)
	if cerr != nil {
		return 0, cerr
	}
	n.Heap.Arena = mem.NewArena(base, limit)
	return f()
}

func (n *NodeRT) newFuture() (isa.Word, error) {
	return n.allocRetry(n.Heap.NewFuture)
}

// stuckCount bumps and returns the retry count for the active frame at
// pc; a different pc resets the count.
func (n *NodeRT) stuckCount(p *proc.Processor, pc uint32) int {
	if n.stuck == nil {
		n.stuck = make([]stuckState, len(p.Engine.Frames))
	}
	st := &n.stuck[p.Engine.FP()]
	if st.pc != pc {
		*st = stuckState{pc: pc, count: 0}
	}
	st.count++
	return st.count
}

// clearStuck resets the active frame's retry tracking (a new thread is
// loaded or the stuck one departs).
func (n *NodeRT) clearStuck(p *proc.Processor) {
	if n.stuck != nil {
		n.stuck[p.Engine.FP()] = stuckState{}
	}
}

// currentThread returns the thread loaded in the active frame.
func (n *NodeRT) currentThread(p *proc.Processor) *Thread {
	id := p.Engine.Active().ThreadID
	if id < 0 {
		return nil
	}
	return n.Sched.Thread(id)
}

// HandleTrap implements proc.Handler.
func (n *NodeRT) HandleTrap(p *proc.Processor, t core.Trap) (int, error) {
	switch t.Kind {
	case core.TrapFuture, core.TrapAddrFuture:
		return n.touch(p, t.Value, t.Reg, t.PC, false)
	case core.TrapEmpty, core.TrapFullStore:
		if n.Check != nil {
			n.checkSyncFault(t)
		}
		return n.syncFault(p, t.PC)
	case core.TrapCacheMiss:
		// The controller forces a context switch while it services the
		// remote request (Section 3.1); the instruction retries when
		// the thread next runs.
		n.Trace.SetSwitchCause(n.Node, trace.CauseCacheMiss)
		return p.Engine.SwitchNext(), nil
	case core.TrapSyscall:
		return n.syscall(p, t)
	case core.TrapAlign:
		return 0, fmt.Errorf("rts: alignment fault at pc=%d addr=%#x (type error in program?)", t.PC, t.Addr)
	case core.TrapIPI:
		if n.IPIHook != nil {
			n.IPIHook(t.Value)
		}
		return n.Prof.TrapEntry, nil
	}
	return 0, fmt.Errorf("rts: unhandled trap %v", t)
}

// checkSyncFault validates the full/empty bit against the trap that
// just fired: the bit state the access observed must still hold when
// the handler runs.
func (n *NodeRT) checkSyncFault(t core.Trap) {
	full, err := n.Sched.Mem.FE(t.Addr)
	if err != nil {
		n.Check.Violate("fe/trap-address", n.Node, 0,
			"sync fault at pc=%d addr=%#x but FE lookup failed: %v", t.PC, t.Addr, err)
		return
	}
	if t.Kind == core.TrapEmpty && full {
		n.Check.Violate("fe/empty-trap-on-full", n.Node, 0,
			"TrapEmpty at pc=%d but addr %#x is full", t.PC, t.Addr)
	}
	if t.Kind == core.TrapFullStore && !full {
		n.Check.Violate("fe/full-trap-on-empty", n.Node, 0,
			"TrapFullStore at pc=%d but addr %#x is empty", t.PC, t.Addr)
	}
}

// touch handles a future touch: resolved futures are replaced in the
// register and the instruction retried; unresolved ones switch-spin or
// block (Section 3, "spinning / switch spinning / blocking"). software
// marks the Encore-style SvcTouchReg path, which must back the PC up to
// retry the checking trap itself.
func (n *NodeRT) touch(p *proc.Processor, f isa.Word, reg uint8, pc uint32, software bool) (int, error) {
	if !isa.IsFuture(f) {
		return 0, fmt.Errorf("rts: touch trap on non-future %#x", f)
	}
	s := n.Sched
	valueAddr := isa.PointerAddress(f) + abi.FutValueOff
	full, err := s.Mem.FE(valueAddr)
	if err != nil {
		return 0, err
	}
	if full {
		v := s.Mem.MustLoad(valueAddr)
		p.Engine.SetReg(reg, v)
		if software {
			// Re-execute the checking trap: the future may have
			// resolved to another future (a chain), which the
			// re-executed check catches. (The hardware path retries
			// the trapping instruction automatically.)
			p.Engine.Active().PC--
		}
		n.clearStuck(p)
		s.Stats.TouchesResolved++
		return n.Prof.TrapEntry + n.Prof.TouchResolvedHandler, nil
	}
	s.Stats.TouchesUnresolved++
	cost := n.Prof.TrapEntry + n.Prof.TouchDecide
	if software {
		// Retry the checking trap instruction when the thread resumes.
		p.Engine.Active().PC--
	}
	if n.stuckCount(p, pc) > n.Prof.BlockRounds {
		// Block: unload the thread onto the future's waiter list.
		t := n.currentThread(p)
		if t != nil {
			n.unloadThread(p, t)
			s.AddWaiter(isa.PointerAddress(f), t)
			n.Trace.Emit(n.Node, trace.KBlock, int32(t.ID), int32(isa.PointerAddress(f)), 0, 0)
			n.clearStuck(p)
			return cost + n.Prof.ThreadUnload, nil
		}
	}
	n.Trace.SetSwitchCause(n.Node, trace.CauseFuture)
	return cost + p.Engine.SwitchNext(), nil
}

// syncFault handles full/empty synchronization faults by switch
// spinning; after enough fruitless rounds the thread is requeued so
// other threads can run (the paper's guard against synchronization
// starvation).
func (n *NodeRT) syncFault(p *proc.Processor, pc uint32) (int, error) {
	if n.stuckCount(p, pc) > n.Prof.BlockRounds {
		if t := n.currentThread(p); t != nil {
			n.unloadThread(p, t)
			n.Sched.PushReadyOldest(t)
			n.Sched.Stats.Requeues++
			n.clearStuck(p)
			return n.Prof.TrapEntry + n.Prof.TouchDecide + n.Prof.ThreadUnload, nil
		}
	}
	n.Trace.SetSwitchCause(n.Node, trace.CauseSync)
	return n.Prof.TrapEntry + p.Engine.SwitchNext(), nil
}

func (n *NodeRT) syscall(p *proc.Processor, t core.Trap) (int, error) {
	s := n.Sched
	e := p.Engine
	switch abi.TrapService(t.Service) {
	case abi.SvcMainExit:
		s.MainDone = true
		s.MainResult = e.Reg(isa.RArg0)
		if th := n.currentThread(p); th != nil {
			s.Kill(th)
		}
		e.Active().Reset()
		return n.Prof.TaskExit, nil

	case abi.SvcTaskExit:
		th := n.currentThread(p)
		if th == nil {
			return 0, fmt.Errorf("rts: task exit with no thread")
		}
		if th.Future != 0 {
			if err := s.Resolve(th.Future, e.Reg(isa.RArg0)); err != nil {
				return 0, err
			}
		}
		s.Kill(th)
		e.Active().Reset()
		return n.Prof.TaskExit, nil

	case abi.SvcFutureNew:
		clos := e.Reg(isa.RArg0)
		entry, err := n.Heap.ClosureEntry(clos)
		if err != nil {
			return 0, fmt.Errorf("rts: future of non-thunk: %w", err)
		}
		fut, err := n.newFuture()
		if err != nil {
			return 0, err
		}
		th := s.NewThread(n.Node)
		th.Regs[isa.RClos] = clos
		th.Regs[isa.RLink] = isa.MakeFixnum(int32(s.TaskExitPC))
		th.PC = entry
		th.NPC = entry + 1
		th.PSR = n.threadPSR()
		th.Future = fut
		s.PushReady(th)
		s.Stats.TasksCreated++
		n.Trace.Emit(n.Node, trace.KTaskCreate, int32(th.ID), int32(entry), 0, 0)
		e.SetReg(isa.RArg0, fut)
		return n.Prof.FutureNew, nil

	case abi.SvcStolen:
		// RArg0 holds the future the thief stamped into the frame's
		// status slot; RArg1 the value that resolves it.
		fut := e.Reg(isa.RArg0)
		if !isa.IsFuture(fut) {
			return 0, fmt.Errorf("rts: stolen-marker status slot holds non-future %#x", fut)
		}
		if err := s.Resolve(fut, e.Reg(isa.RArg0+1)); err != nil {
			return 0, err
		}
		th := n.currentThread(p)
		if th == nil {
			return 0, fmt.Errorf("rts: stolen-marker trap with no thread")
		}
		s.Kill(th)
		e.Active().Reset()
		n.clearStuck(p)
		return n.Prof.StolenResolve, nil

	case abi.SvcTouchReg:
		reg := uint8(abi.TrapReg(t.Service))
		v := e.Reg(reg)
		if !isa.IsFuture(v) {
			return n.Prof.TrapEntry, nil
		}
		return n.touch(p, v, reg, t.PC, true)

	case abi.SvcAllocRefill:
		reg := uint8(abi.TrapReg(t.Service))
		size := uint32(abi.TrapSize(t.Service))
		base, limit, err := s.HeapChunk(size)
		if err != nil {
			return 0, err
		}
		e.SetReg(reg, isa.Word(base))
		e.SetReg(isa.GAllocPtr, isa.Word(base+size))
		e.SetReg(isa.GAllocLimit, isa.Word(limit))
		return n.Prof.AllocRefill, nil

	case abi.SvcMakeVector:
		count := isa.FixnumValue(e.Reg(isa.RArg0))
		if count < 0 {
			return 0, fmt.Errorf("rts: make-vector of negative length %d", count)
		}
		fill := e.Reg(isa.RArg0 + 1)
		v, err := n.allocRetry(func() (isa.Word, error) { return n.Heap.NewVector(int(count), fill) })
		if err != nil {
			return 0, err
		}
		e.SetReg(isa.RArg0, v)
		return n.Prof.MakeVectorBase + n.Prof.MakeVectorPerWord*int(count), nil

	case abi.SvcPrint:
		fmt.Fprintln(s.Out, n.Heap.Format(e.Reg(isa.RArg0)))
		return n.Prof.Print, nil

	case abi.SvcError:
		code := abi.TrapReg(t.Service)
		return 0, fmt.Errorf("rts: program error %d at pc=%d (%s)", code, t.PC, errName(code))
	case abi.SvcYield:
		n.Trace.SetSwitchCause(n.Node, trace.CauseYield)
		return e.SwitchNext(), nil
	}
	return 0, fmt.Errorf("rts: unknown syscall %d", abi.TrapService(t.Service))
}

func errName(code int) string {
	switch code {
	case abi.ErrCarOfNonPair:
		return "car/cdr of non-pair"
	case abi.ErrIndexRange:
		return "index out of range"
	case abi.ErrNotProcedure:
		return "call of non-procedure"
	case abi.ErrDequeFull:
		return "lazy marker deque overflow"
	case abi.ErrArity:
		return "wrong argument count"
	}
	return "unknown"
}

func (n *NodeRT) threadPSR() core.PSR {
	if n.Prof.HardwareFutures {
		return core.PSRFutureTrap
	}
	return 0
}

// loadThread installs t in the processor's active frame.
func (n *NodeRT) loadThread(p *proc.Processor, t *Thread) (int, error) {
	if err := n.Sched.allocStack(t); err != nil {
		return 0, err
	}
	n.clearStuck(p)
	f := p.Engine.Active()
	f.R = t.Regs
	f.PC, f.NPC = t.PC, t.NPC
	f.PSR = t.PSR
	f.ThreadID = t.ID
	t.State = ThreadLoaded
	n.Trace.Emit(n.Node, trace.KThreadLoad, int32(p.Engine.FP()), int32(t.ID), 0, 0)
	return n.Prof.ThreadLoad, nil
}

// unloadThread saves the active frame back into t and frees the frame.
func (n *NodeRT) unloadThread(p *proc.Processor, t *Thread) {
	f := p.Engine.Active()
	t.Regs = f.R
	t.PC, t.NPC = f.PC, f.NPC
	t.PSR = f.PSR
	f.Reset()
	n.Trace.Emit(n.Node, trace.KThreadUnload, int32(p.Engine.FP()), int32(t.ID), 0, 0)
}

// Idle implements proc.Handler: the active frame is empty, so find
// work — local ready queue first, then remote queues, then (in lazy
// mode) steal a continuation marker; otherwise spin briefly or rotate
// to a loaded frame.
func (n *NodeRT) Idle(p *proc.Processor) (int, error) {
	s := n.Sched
	if t := s.PopReadyLocal(n.Node); t != nil {
		c, err := n.loadThread(p, t)
		return n.Prof.Dequeue + c, err
	}
	if t := s.StealReady(n.Node); t != nil {
		n.Trace.Emit(n.Node, trace.KThreadSteal, int32(t.ID), int32(t.Home), 0, 0)
		c, err := n.loadThread(p, t)
		return n.Prof.Dequeue + c, err
	}
	if s.Lazy {
		if cycles, ok, err := n.stealMarker(p); ok || err != nil {
			return cycles, err
		}
	}
	// Nothing to load: if other frames hold threads, rotate to them.
	if p.Engine.LoadedThreads() > 0 {
		n.Trace.SetSwitchCause(n.Node, trace.CauseIdle)
		return p.Engine.SwitchNext(), nil
	}
	return n.Prof.Idle, nil
}

// stealMarker implements the thief side of lazy task creation: claim
// the oldest marker of some thread, create the future the victim will
// resolve, copy the parent frames onto a fresh stack, and run the
// continuation here (see DESIGN.md substitution 7).
func (n *NodeRT) stealMarker(p *proc.Processor) (int, bool, error) {
	s := n.Sched
	victim := s.FindMarker()
	if victim == nil {
		return 0, false, nil
	}
	m := s.Mem
	bot, _ := DequeBounds(m, victim.TCB)
	resumePC := m.MustLoad(bot + abi.MarkerPCOff)
	parentSP := uint32(m.MustLoad(bot + abi.MarkerSPOff))
	statusAddr := uint32(m.MustLoad(bot + abi.MarkerStatusOff))
	if !isa.IsFixnum(resumePC) {
		return 0, false, fmt.Errorf("rts: corrupt marker at %#x: pc=%#x", bot, resumePC)
	}
	if parentSP < victim.StackLow || parentSP >= victim.StackTop {
		return 0, false, fmt.Errorf("rts: marker sp %#x outside victim %d stack [%#x,%#x)",
			parentSP, victim.ID, victim.StackLow, victim.StackTop)
	}

	fut, err := n.newFuture()
	if err != nil {
		return 0, false, err
	}
	// Claim: stamp the future into the frame's status slot and advance
	// bot. These stores are atomic with respect to simulated
	// instructions (the victim observes either the unclaimed or the
	// claimed state), and the stamp happens before any later thief
	// copies this frame, so inherited pops see it.
	m.MustStore(statusAddr, fut)
	m.MustStore(victim.TCB+abi.TCBBotOff, isa.Word(bot+abi.MarkerBytes))

	// Build the continuation thread on a fresh stack.
	t := s.NewThread(n.Node)
	if err := s.allocStack(t); err != nil {
		return 0, false, err
	}
	region := victim.StackTop - parentSP
	newSP := t.StackTop - region
	delta := newSP - parentSP
	for off := uint32(0); off < region; off += 4 {
		m.MustStore(newSP+off, m.MustLoad(parentSP+off))
	}
	// Relocate the saved-FP chain within the copied region.
	for cur := newSP; ; {
		saved := uint32(m.MustLoad(cur + abi.FrameSavedFPOff))
		if saved < parentSP || saved >= victim.StackTop {
			break
		}
		m.MustStore(cur+abi.FrameSavedFPOff, isa.Word(saved+delta))
		cur = saved + delta
	}

	t.Regs[isa.RSP] = isa.Word(newSP)
	t.Regs[isa.RFP] = isa.Word(newSP)
	t.Regs[isa.RClos] = m.MustLoad(newSP + abi.FrameSavedClosOff)
	t.Regs[isa.RTmp0] = fut // the future stands in for the body's value
	t.PC = uint32(isa.FixnumValue(resumePC))
	t.NPC = t.PC + 1
	t.PSR = n.threadPSR()
	t.State = ThreadReady

	s.Stats.Steals++
	s.Stats.StealWords += uint64(region / 4)
	n.Trace.Emit(n.Node, trace.KSteal, int32(victim.ID), int32(t.ID), int32(region/4), 0)

	cost := n.Prof.Steal + n.Prof.StealPerWord*int(region/4)
	loadCost, err := n.loadThread(p, t)
	return cost + loadCost, true, err
}

var _ proc.Handler = (*NodeRT)(nil)
