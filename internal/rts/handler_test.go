package rts_test

// External runtime tests: drive the trap handlers directly through
// small assembly programs on a real machine (package sim wires the
// processor to this runtime, so these tests live outside package rts).

import (
	"strconv"
	"strings"
	"testing"

	"april/internal/abi"
	"april/internal/isa"
	"april/internal/rts"
	"april/internal/sim"
)

func runAsm(t *testing.T, src string, cfg sim.Config) (sim.Result, *sim.Machine, error) {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := src + `
__task_exit: trap 2
        halt
__main_exit: trap 1
        halt
`
	prog, err := isa.Assemble(full)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	return res, m, err
}

func aprilCfg() sim.Config {
	return sim.Config{Nodes: 1, Profile: rts.APRIL}
}

func TestSvcPrintAndYield(t *testing.T) {
	var out strings.Builder
	cfg := aprilCfg()
	cfg.Out = &out
	res, _, err := runAsm(t, `
.entry main
main:   movi r8, 12        ; fixnum 3
        trap 6             ; print
        trap 8             ; yield (switch-spins harmlessly)
        jmpl r0, r5+0
`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "3\n" {
		t.Errorf("printed %q", out.String())
	}
	if res.Formatted != "3" {
		t.Errorf("result %s", res.Formatted)
	}
}

func TestSvcErrorAborts(t *testing.T) {
	_, _, err := runAsm(t, `
.entry main
main:   trap 1031          ; SvcError with code 4 (deque overflow)
`, aprilCfg())
	if err == nil || !strings.Contains(err.Error(), "deque overflow") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownSyscall(t *testing.T) {
	_, _, err := runAsm(t, `
.entry main
main:   trap 200
`, aprilCfg())
	if err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Errorf("err = %v", err)
	}
}

func TestAlignmentFaultIsFatal(t *testing.T) {
	_, _, err := runAsm(t, `
.entry main
main:   movi r9, 0x2002
        ldnt r8, [r9+0]
`, aprilCfg())
	if err == nil || !strings.Contains(err.Error(), "alignment") {
		t.Errorf("err = %v", err)
	}
}

func TestSvcMakeVectorAndRefill(t *testing.T) {
	// make-vector via the runtime service, then bump-allocate conses
	// until the arena refills (SvcAllocRefill), proving g0/g1 get a
	// fresh chunk.
	res, m, err := runAsm(t, `
.entry main
main:   movi r8, 40        ; fixnum 10 elements
        movi r9, 28        ; fill = fixnum 7
        trap 10            ; SvcMakeVector -> vector in r8
        ; read back element 9: [v + 9*4 + 4 - 2]
        ldnt r8, [r8+38]
        jmpl r0, r5+0
`, aprilCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Formatted != "7" {
		t.Errorf("vector fill read back %s", res.Formatted)
	}
	_ = m
}

func TestTouchRegOnNonFutureIsNoop(t *testing.T) {
	// The software-check service on a plain value returns immediately.
	imm := abi.TrapImm(abi.SvcTouchReg, 8, 0)
	res, _, err := runAsm(t, `
.entry main
main:   movi r8, 168       ; fixnum 42
        trap `+itoa(imm)+`
        jmpl r0, r5+0
`, aprilCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Formatted != "42" {
		t.Errorf("got %s", res.Formatted)
	}
}

func TestFutureTouchThroughHandler(t *testing.T) {
	// Build a resolved future by hand in static memory, touch it with a
	// strict add: the handler must substitute the value.
	m, err := sim.New(aprilCfg())
	if err != nil {
		t.Fatal(err)
	}
	futAddr := uint32(0x2000)
	m.Mem.MustStore(futAddr, isa.MakeFixnum(5))
	m.Mem.MustSetFE(futAddr, true) // resolved
	fut := isa.MakeFuture(futAddr)

	prog, err := isa.Assemble(`
.entry main
main:   movi r8, ` + itoa(int32(fut)) + `
        add r8, r8, r0     ; strict: traps, handler resolves
        jmpl r0, r5+0
__task_exit: trap 2
        halt
__main_exit: trap 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Formatted != "5" {
		t.Errorf("touched value = %s", res.Formatted)
	}
	if m.Sched.Stats.TouchesResolved == 0 {
		t.Error("resolved-touch path not taken")
	}
}

func TestUnresolvedTouchDeadlocks(t *testing.T) {
	// Touching a future nobody will resolve must end in the deadlock
	// detector, after the thread blocked on the waiter list.
	m, err := sim.New(aprilCfg())
	if err != nil {
		t.Fatal(err)
	}
	futAddr := uint32(0x2000)
	m.Mem.MustSetFE(futAddr, false) // unresolved forever
	fut := isa.MakeFuture(futAddr)
	prog, err := isa.Assemble(`
.entry main
main:   movi r8, ` + itoa(int32(fut)) + `
        add r8, r8, r0
        jmpl r0, r5+0
__task_exit: trap 2
        halt
__main_exit: trap 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v", err)
	}
	if m.Sched.Stats.Blocks == 0 {
		t.Error("thread never blocked on the unresolved future")
	}
}

func itoa(n int32) string { return strconv.FormatInt(int64(n), 10) }
