// Package snapshot is the machine-image container format: a
// self-describing header plus a checksummed binary payload, with
// sticky-error primitive codecs for the encoders in internal/sim.
//
// The format is deliberately dumb — fixed-width little-endian scalars,
// length-prefixed slices, no compression, no framing beyond the one
// header — because the consumers are a deterministic simulator's
// checkpoint loop and its divergence bisector: what matters is that
// encode(decode(x)) is the identity, that a truncated or corrupted
// file fails with a structured error instead of a panic or a silently
// wrong machine, and that two images of the same run can be recognized
// as such (the config hash) without decoding their payloads.
//
// Layout:
//
//	offset size
//	0      8    magic "APRILIMG"
//	8      4    format version (little-endian uint32)
//	12     8    config hash (FNV-64a over the machine-defining prefix
//	            of the payload; images of the same run share it)
//	20     8    simulated cycle at which the image was taken
//	28     8    payload length in bytes
//	36     8    FNV-64a checksum of the payload
//	44     -    payload
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Version is the current image format version. Bump on any payload
// layout change; Open rejects other versions with ErrVersion.
const Version = 1

var magic = [8]byte{'A', 'P', 'R', 'I', 'L', 'I', 'M', 'G'}

// headerLen is the fixed byte length of the image header.
const headerLen = 8 + 4 + 8 + 8 + 8 + 8

// Structured open/decode failures. All errors returned by Open and by
// Reader methods wrap one of these, so callers can classify with
// errors.Is.
var (
	ErrMagic     = errors.New("snapshot: not an APRIL machine image")
	ErrVersion   = errors.New("snapshot: unsupported image format version")
	ErrTruncated = errors.New("snapshot: image truncated")
	ErrChecksum  = errors.New("snapshot: image checksum mismatch")
	ErrCorrupt   = errors.New("snapshot: image payload corrupt")
)

// Header is the decoded image header.
type Header struct {
	Version    uint32
	ConfigHash uint64 // identity of the run this image belongs to
	Cycle      uint64 // simulated cycle of the snapshot
}

// Hash is the checksum used throughout: FNV-64a.
func Hash(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Seal wraps an encoded payload in a header. configHash identifies the
// run (images from the same run must carry the same hash) and cycle is
// the simulated cycle of the snapshot.
func Seal(payload []byte, configHash, cycle uint64) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint64(out[12:], configHash)
	binary.LittleEndian.PutUint64(out[20:], cycle)
	binary.LittleEndian.PutUint64(out[28:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(out[36:], Hash(payload))
	copy(out[headerLen:], payload)
	return out
}

// Open validates an image's header and checksum and returns the header
// plus a Reader positioned at the start of the payload.
func Open(img []byte) (Header, *Reader, error) {
	var h Header
	if len(img) < headerLen {
		return h, nil, fmt.Errorf("%w: %d bytes, header is %d", ErrTruncated, len(img), headerLen)
	}
	if [8]byte(img[:8]) != magic {
		return h, nil, ErrMagic
	}
	h.Version = binary.LittleEndian.Uint32(img[8:])
	if h.Version != Version {
		return h, nil, fmt.Errorf("%w: image is v%d, this build reads v%d", ErrVersion, h.Version, Version)
	}
	h.ConfigHash = binary.LittleEndian.Uint64(img[12:])
	h.Cycle = binary.LittleEndian.Uint64(img[20:])
	plen := binary.LittleEndian.Uint64(img[28:])
	sum := binary.LittleEndian.Uint64(img[36:])
	payload := img[headerLen:]
	if uint64(len(payload)) != plen {
		return h, nil, fmt.Errorf("%w: header says %d payload bytes, file has %d", ErrTruncated, plen, len(payload))
	}
	if Hash(payload) != sum {
		return h, nil, fmt.Errorf("%w (cycle %d)", ErrChecksum, h.Cycle)
	}
	return h, &Reader{buf: payload}, nil
}

// PeekHeader validates and returns just the header, skipping the
// payload checksum — for listing checkpoint directories cheaply.
func PeekHeader(img []byte) (Header, error) {
	var h Header
	if len(img) < headerLen {
		return h, fmt.Errorf("%w: %d bytes, header is %d", ErrTruncated, len(img), headerLen)
	}
	if [8]byte(img[:8]) != magic {
		return h, ErrMagic
	}
	h.Version = binary.LittleEndian.Uint32(img[8:])
	if h.Version != Version {
		return h, fmt.Errorf("%w: image is v%d, this build reads v%d", ErrVersion, h.Version, Version)
	}
	h.ConfigHash = binary.LittleEndian.Uint64(img[12:])
	h.Cycle = binary.LittleEndian.Uint64(img[20:])
	return h, nil
}

// Writer encodes primitives into a growing buffer. Writes cannot fail,
// so there is no error state; the encoders stay straight-line code.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }
func (w *Writer) Int(v int)    { w.I64(int64(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Count prefixes a sequence with its length.
func (w *Writer) Count(n int) { w.U32(uint32(n)) }

// String encodes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Count(len(s))
	w.buf = append(w.buf, s...)
}

// Ints encodes a length-prefixed []int.
func (w *Writer) Ints(vs []int) {
	w.Count(len(vs))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// U32s encodes a length-prefixed []uint32.
func (w *Writer) U32s(vs []uint32) {
	w.Count(len(vs))
	for _, v := range vs {
		w.U32(v)
	}
}

// U64s encodes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.Count(len(vs))
	for _, v := range vs {
		w.U64(v)
	}
}

// Reader decodes primitives with a sticky error: after the first
// failure every subsequent read returns zero values, so decoders can
// run straight-line and check Err once per section. All failures wrap
// ErrTruncated or ErrCorrupt — never a panic, whatever the bytes.
type Reader struct {
	buf []byte
	off int
	err error
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrTruncated, what, r.off, len(r.buf))
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }
func (r *Reader) Int() int   { return int(r.I64()) }

func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Corrupt("bool out of range")
		return false
	}
}

// Count decodes a sequence length and bounds-checks it: a count can
// never exceed the remaining payload (every element is at least one
// byte), so a corrupted length fails here instead of in a giant
// allocation.
func (r *Reader) Count(what string) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining() {
		r.err = fmt.Errorf("%w: %s count %d exceeds %d remaining payload bytes", ErrCorrupt, what, n, r.Remaining())
		return 0
	}
	return n
}

// CountAtMost is Count with an additional domain bound (e.g. a
// per-node list cannot exceed the node count).
func (r *Reader) CountAtMost(what string, max int) int {
	n := r.Count(what)
	if r.err == nil && n > max {
		r.err = fmt.Errorf("%w: %s count %d exceeds bound %d", ErrCorrupt, what, n, max)
		return 0
	}
	return n
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count("string")
	b := r.take(n, "string body")
	return string(b)
}

// Ints decodes a length-prefixed []int (nil when empty).
func (r *Reader) Ints(what string) []int {
	n := r.Count(what)
	if n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}

// U32s decodes a length-prefixed []uint32 (nil when empty).
func (r *Reader) U32s(what string) []uint32 {
	n := r.Count(what)
	if n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.U32()
	}
	return vs
}

// U64s decodes a length-prefixed []uint64 (nil when empty).
func (r *Reader) U64s(what string) []uint64 {
	n := r.Count(what)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// Corrupt records a semantic validation failure at the current offset
// (value decoded fine but is out of domain).
func (r *Reader) Corrupt(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}
