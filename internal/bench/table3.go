package bench

import (
	"fmt"
	"io"
	"strings"

	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

// System identifies a Table 3 row group.
type System string

const (
	SysEncore    System = "Encore"
	SysAPRIL     System = "APRIL"
	SysAPRILLazy System = "Apr-lazy"
)

// Row is one row of Table 3: normalized execution times for one
// program on one system. Values are execution time divided by the
// sequential T-compiled time ("T seq"), exactly as in the paper.
type Row struct {
	Program string
	System  System
	TSeq    float64         // always 1.0 (the baseline itself)
	MulTSeq float64         // sequential code with future detection
	Par     map[int]float64 // processors -> normalized time
	Result  string          // program result (for cross-checking)
	RawSeq  uint64          // T seq cycles (the normalization base)
}

// Table3Config drives the harness.
type Table3Config struct {
	Sizes       Sizes
	AprilProcs  []int // paper: 1 2 4 8 16
	EncoreProcs []int // paper measured the Multimax up to 8
	Verbose     io.Writer
}

// DefaultTable3Config mirrors the paper's configurations.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		Sizes:       PaperSizes,
		AprilProcs:  []int{1, 2, 4, 8, 16},
		EncoreProcs: []int{1, 2, 4, 8},
	}
}

// runOnce compiles and runs src and returns the cycle count.
func runOnce(src string, mode mult.Mode, prof rts.Profile, lazy bool, nodes int) (uint64, string, error) {
	m, err := sim.New(sim.Config{Nodes: nodes, Profile: prof, Lazy: lazy})
	if err != nil {
		return 0, "", err
	}
	prog, err := mult.Compile(src, mode, m.StaticHeap())
	if err != nil {
		return 0, "", err
	}
	if err := m.Load(prog); err != nil {
		return 0, "", err
	}
	res, err := m.Run()
	if err != nil {
		return 0, "", err
	}
	return res.Cycles, res.Formatted, nil
}

// systemSetup captures how each Table 3 system compiles and runs.
type systemSetup struct {
	sys   System
	prof  rts.Profile
	mode  mult.Mode // parallel-mode flags
	lazy  bool
	procs func(cfg *Table3Config) []int
}

func setups() []systemSetup {
	return []systemSetup{
		{
			sys:   SysEncore,
			prof:  rts.Encore,
			mode:  mult.Mode{HardwareFutures: false},
			lazy:  false,
			procs: func(cfg *Table3Config) []int { return cfg.EncoreProcs },
		},
		{
			sys:   SysAPRIL,
			prof:  rts.APRIL,
			mode:  mult.Mode{HardwareFutures: true},
			lazy:  false,
			procs: func(cfg *Table3Config) []int { return cfg.AprilProcs },
		},
		{
			sys:   SysAPRILLazy,
			prof:  rts.APRIL,
			mode:  mult.Mode{HardwareFutures: true, LazyFutures: true},
			lazy:  true,
			procs: func(cfg *Table3Config) []int { return cfg.AprilProcs },
		},
	}
}

// Table3 regenerates the paper's Table 3: for each benchmark and each
// system it measures "T seq" (sequential code, no future detection),
// "Mul-T seq" (sequential code with the machine's future detection),
// and the parallel runs at each processor count, all normalized to
// T seq.
func Table3(cfg Table3Config) ([]Row, error) {
	var rows []Row
	for _, name := range Names {
		src := cfg.Sizes.Source(name)
		for _, su := range setups() {
			row, err := table3Row(name, src, su, &cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, su.sys, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func table3Row(name, src string, su systemSetup, cfg *Table3Config) (Row, error) {
	log := func(format string, args ...interface{}) {
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, format+"\n", args...)
		}
	}
	// "T seq": the optimized sequential compilation (no futures, no
	// detection overhead).
	tseqMode := mult.Mode{HardwareFutures: true, Sequential: true}
	tseq, wantResult, err := runOnce(src, tseqMode, su.prof, false, 1)
	if err != nil {
		return Row{}, fmt.Errorf("T seq: %w", err)
	}
	log("%-7s %-9s T-seq %d cycles (result %s)", name, su.sys, tseq, wantResult)

	// "Mul-T seq": sequential code compiled by the Mul-T compiler for
	// this machine — on the Encore that inserts software future checks
	// before strict operations; on APRIL the tag hardware makes it
	// free.
	mulTSeqMode := mult.Mode{HardwareFutures: su.mode.HardwareFutures, Sequential: true}
	mulTSeq, r2, err := runOnce(src, mulTSeqMode, su.prof, false, 1)
	if err != nil {
		return Row{}, fmt.Errorf("Mul-T seq: %w", err)
	}
	if r2 != wantResult {
		return Row{}, fmt.Errorf("Mul-T seq result %s != %s", r2, wantResult)
	}

	row := Row{
		Program: name,
		System:  su.sys,
		TSeq:    1.0,
		MulTSeq: float64(mulTSeq) / float64(tseq),
		Par:     map[int]float64{},
		Result:  wantResult,
		RawSeq:  tseq,
	}
	for _, p := range su.procs(cfg) {
		cycles, r, err := runOnce(src, su.mode, su.prof, su.lazy, p)
		if err != nil {
			return Row{}, fmt.Errorf("%d procs: %w", p, err)
		}
		if r != wantResult {
			return Row{}, fmt.Errorf("%d procs: result %s != %s", p, r, wantResult)
		}
		row.Par[p] = float64(cycles) / float64(tseq)
		log("%-7s %-9s %2dp   %.2f (%d cycles)", name, su.sys, p, row.Par[p], cycles)
	}
	return row, nil
}

// FormatTable renders rows in the paper's layout.
func FormatTable(rows []Row, procs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-9s %6s %8s", "Program", "System", "T seq", "Mul-T")
	for _, p := range procs {
		fmt.Fprintf(&b, " %6d", p)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-9s %6.1f %8.2f", r.Program, r.System, r.TSeq, r.MulTSeq)
		for _, p := range procs {
			if v, ok := r.Par[p]; ok {
				fmt.Fprintf(&b, " %6.2f", v)
			} else {
				fmt.Fprintf(&b, " %6s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
