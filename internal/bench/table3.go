package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"april/internal/harness"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

// System identifies a Table 3 row group.
type System string

const (
	SysEncore    System = "Encore"
	SysAPRIL     System = "APRIL"
	SysAPRILLazy System = "Apr-lazy"
)

// Row is one row of Table 3: normalized execution times for one
// program on one system. Values are execution time divided by the
// sequential T-compiled time ("T seq"), exactly as in the paper.
type Row struct {
	Program string
	System  System
	TSeq    float64         // always 1.0 (the baseline itself)
	MulTSeq float64         // sequential code with future detection
	Par     map[int]float64 // processors -> normalized time
	Result  string          // program result (for cross-checking)
	RawSeq  uint64          // T seq cycles (the normalization base)
}

// Table3Config drives the harness.
type Table3Config struct {
	Sizes       Sizes
	AprilProcs  []int // paper: 1 2 4 8 16
	EncoreProcs []int // paper measured the Multimax up to 8
	Verbose     io.Writer

	// Workers bounds the host goroutines running machines in parallel;
	// <= 0 means one per available host core. The grid's simulated
	// results are identical at any worker count.
	Workers int

	// Shards runs every machine in the grid with that many simulation
	// shards (sim.Config.Shards); results are bit-identical at any
	// value. The effective worker count is budgeted so that
	// workers * shards never exceeds GOMAXPROCS (harness.Budget).
	Shards int

	// Naive forces every machine onto the reference per-cycle stepping
	// loop and opcode-switch interpreter (sim.Config.DisableFastForward
	// + DisablePredecode) — the A side of the before/after throughput
	// comparison in Table3Perf.
	Naive bool

	// NoCompile turns off the compiled execution tier
	// (sim.Config.DisableCompile), leaving predecoded per-op dispatch —
	// the middle column of Table3Perf's three-way comparison. Results
	// are bit-identical with the tier on or off.
	NoCompile bool

	// CompileThreshold overrides how hot a block entry must run before
	// the compiled tier translates it (0 = the default, 8).
	CompileThreshold int

	// NoEpoch turns off the epoch engine (sim.Config.DisableEpoch) —
	// multi-node lockstep windows through the compiled tier — and
	// Horizon caps its windows in cycles (sim.Config.Horizon; 0 =
	// unbounded). Results are bit-identical at any setting.
	NoEpoch bool
	Horizon uint64

	// Perf, when non-nil, receives the whole grid's aggregate host-side
	// throughput (simulated cycles and instructions over the grid's
	// wall-clock time).
	Perf *proc.Perf

	// Stats, when non-nil, receives every run's full statistics dump in
	// grid order (the -stats-json payload): machine totals, per-node
	// breakdowns, and host-side throughput.
	Stats *[]RunStats

	// Occupancy, when non-nil, receives the harness worker pool's
	// per-worker run counts and busy time for the grid.
	Occupancy *harness.Occupancy
}

// RunStats is one grid run's statistics dump, JSON-exportable.
type RunStats struct {
	Label           string       `json:"label"`
	Nodes           int          `json:"nodes"`
	Cycles          uint64       `json:"cycles"`
	Result          string       `json:"result"`
	ContextSwitches uint64       `json:"context_switches"`
	Total           proc.Stats   `json:"total"`
	PerNode         []proc.Stats `json:"per_node"`
	Perf            proc.Perf    `json:"perf"`

	// Kinds is the machine-wide per-micro-kind execution count — the
	// opcode mix that drives the compiled tier's profile-guided
	// translation. Maintained identically by all three execution tiers.
	Kinds map[string]uint64 `json:"kinds,omitempty"`

	// CrossShardMessages and Shard appear only for sharded runs:
	// coherence traffic that crossed a shard boundary, and the PDES
	// loop's host-side telemetry.
	CrossShardMessages uint64         `json:"cross_shard_messages,omitempty"`
	Shard              *ShardOverhead `json:"shard,omitempty"`

	// Epoch appears when the epoch engine committed at least one
	// window: multi-node lockstep execution through the compiled tier
	// (sim's epoch.go). Purely observational, like Shard.
	Epoch *EpochOverhead `json:"epoch,omitempty"`
}

// ShardOverhead is the sharded run loop's host-side telemetry for one
// run: how cycles were classified and executed, where the wall time
// went, and how evenly the shards were loaded. Purely observational —
// the simulated results are bit-identical with or without sharding.
type ShardOverhead struct {
	Shards           int    `json:"shards"`
	ParallelCycles   uint64 `json:"parallel_cycles"`
	SequentialCycles uint64 `json:"sequential_cycles"`
	FallbackStop     uint64 `json:"fallback_stop"`
	FallbackSmall    uint64 `json:"fallback_small"`
	FallbackEpoch    uint64 `json:"fallback_epoch"`
	Barriers         uint64 `json:"barriers"`
	LocalSteps       uint64 `json:"local_steps"`
	GlobalSteps      uint64 `json:"global_steps"`
	StopSteps        uint64 `json:"stop_steps"`
	BarrierWaitNS    uint64 `json:"barrier_wait_ns"`
	LoopWallNS       uint64 `json:"loop_wall_ns"`

	// BarrierWaitFraction is barrier wait over the sharded loop's wall
	// time: the coordinator's cost of waiting for straggler shards.
	BarrierWaitFraction float64 `json:"barrier_wait_fraction"`
	// FallbackPct is the percentage of executed cycles that ran on the
	// sequential fallback path instead of the parallel one.
	FallbackPct float64 `json:"fallback_pct"`
	// BarriersPer1k is worker-pool joins per 1000 simulated cycles —
	// the bulk-synchronous overhead epoch batches amortize away.
	BarriersPer1k float64 `json:"barriers_per_1k_cycles"`

	// Per-shard load: executed steps and busy wall time, indexed by
	// shard.
	ShardLocalSteps []uint64 `json:"shard_local_steps"`
	ShardBusyNS     []uint64 `json:"shard_busy_ns"`
}

// EpochOverhead is the epoch engine's telemetry for one run: lockstep
// windows committed, the cycles and node-steps they absorbed, and how
// they ended (sim.EpochStats, serialized).
type EpochOverhead struct {
	Windows    uint64 `json:"windows"`
	Cycles     uint64 `json:"cycles"`
	Ops        uint64 `json:"ops"`
	PartialOps uint64 `json:"partial_ops"`
	Fallbacks  uint64 `json:"fallbacks"`
	// LenHist is the committed-window-length histogram in power-of-two
	// buckets (index b counts windows of bit-length-b complete cycles).
	LenHist []uint64 `json:"len_hist"`
	// EpochCyclesPct is the share of simulated cycles committed inside
	// windows.
	EpochCyclesPct float64 `json:"epoch_cycles_pct"`
}

// epochOverhead summarizes m's epoch telemetry; nil when the engine
// never committed a window.
func epochOverhead(m *sim.Machine) *EpochOverhead {
	t := m.EpochTelemetry()
	if t.Windows == 0 {
		return nil
	}
	eo := &EpochOverhead{
		Windows:    t.Windows,
		Cycles:     t.Cycles,
		Ops:        t.Ops,
		PartialOps: t.PartialOps,
		Fallbacks:  t.Fallbacks,
	}
	hist := t.LenHist
	last := len(hist)
	for last > 0 && hist[last-1] == 0 {
		last--
	}
	eo.LenHist = append(eo.LenHist, hist[:last]...)
	if now := m.Now(); now > 0 {
		eo.EpochCyclesPct = 100 * float64(t.Cycles) / float64(now)
	}
	return eo
}

// shardOverhead summarizes m's PDES telemetry; nil for unsharded runs.
func shardOverhead(m *sim.Machine) *ShardOverhead {
	tel := m.ShardTelemetry()
	if len(tel) <= 1 {
		return nil
	}
	p := m.PDES()
	so := &ShardOverhead{
		Shards:           len(tel),
		ParallelCycles:   p.ParallelCycles,
		SequentialCycles: p.SequentialCycles,
		FallbackStop:     p.FallbackStop,
		FallbackSmall:    p.FallbackSmall,
		FallbackEpoch:    p.FallbackEpoch,
		Barriers:         p.Barriers,
		LocalSteps:       p.LocalSteps,
		GlobalSteps:      p.GlobalSteps,
		StopSteps:        p.StopSteps,
		BarrierWaitNS:    p.BarrierWaitNS,
		LoopWallNS:       p.LoopWallNS,
	}
	if p.LoopWallNS > 0 {
		so.BarrierWaitFraction = float64(p.BarrierWaitNS) / float64(p.LoopWallNS)
	}
	if total := p.ParallelCycles + p.SequentialCycles; total > 0 {
		so.FallbackPct = 100 * float64(p.SequentialCycles) / float64(total)
	}
	if now := m.Now(); now > 0 {
		so.BarriersPer1k = 1000 * float64(p.Barriers) / float64(now)
	}
	for _, t := range tel {
		so.ShardLocalSteps = append(so.ShardLocalSteps, t.LocalSteps)
		so.ShardBusyNS = append(so.ShardBusyNS, t.BusyNS)
	}
	return so
}

// DefaultTable3Config mirrors the paper's configurations.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		Sizes:       PaperSizes,
		AprilProcs:  []int{1, 2, 4, 8, 16},
		EncoreProcs: []int{1, 2, 4, 8},
	}
}

// runOut is what one simulated run reports back to the grid.
type runOut struct {
	cycles uint64
	result string
	perf   proc.Perf
	stats  RunStats
	cross  uint64 // cross-shard messages, when the run was sharded
}

// runOnce compiles and runs src on a fresh machine. naive selects the
// pre-overhaul cost profile — the reference per-cycle loop, the
// opcode-switch interpreter, and eagerly materialized memory — so
// Table3Perf's baseline measures what the simulator cost before the
// throughput work; simulated results are identical either way.
func runOnce(src string, mode mult.Mode, prof rts.Profile, lazy bool, nodes int, cfg *Table3Config) (runOut, error) {
	start := time.Now()
	m, err := sim.New(sim.Config{Nodes: nodes, Profile: prof, Lazy: lazy,
		DisableFastForward: cfg.Naive, DisablePredecode: cfg.Naive, Shards: cfg.Shards,
		DisableCompile: cfg.NoCompile, CompileThreshold: cfg.CompileThreshold,
		DisableEpoch: cfg.NoEpoch, Horizon: cfg.Horizon})
	naive := cfg.Naive
	if err != nil {
		return runOut{}, err
	}
	if naive {
		m.Mem.Materialize()
	}
	prog, err := mult.Compile(src, mode, m.StaticHeap())
	if err != nil {
		return runOut{}, err
	}
	if err := m.Load(prog); err != nil {
		return runOut{}, err
	}
	res, err := m.Run()
	if err != nil {
		return runOut{}, err
	}
	perf := proc.NewPerf(res.Cycles, m.TotalStats().Instructions, time.Since(start))
	rs := RunStats{
		Nodes:   nodes,
		Cycles:  res.Cycles,
		Result:  res.Formatted,
		Total:   m.TotalStats(),
		PerNode: make([]proc.Stats, 0, len(m.Nodes)),
		Perf:    perf,
		Kinds:   m.KindTotals(),
	}
	for _, n := range m.Nodes {
		rs.PerNode = append(rs.PerNode, n.Proc.Stats)
		rs.ContextSwitches += n.Proc.Engine.Switches
	}
	rs.CrossShardMessages = m.CrossShardMessages()
	rs.Shard = shardOverhead(m)
	rs.Epoch = epochOverhead(m)
	return runOut{
		cycles: res.Cycles,
		result: res.Formatted,
		perf:   perf,
		stats:  rs,
		cross:  rs.CrossShardMessages,
	}, nil
}

// systemSetup captures how each Table 3 system compiles and runs.
type systemSetup struct {
	sys   System
	prof  rts.Profile
	mode  mult.Mode // parallel-mode flags
	lazy  bool
	procs func(cfg *Table3Config) []int
}

func setups() []systemSetup {
	return []systemSetup{
		{
			sys:   SysEncore,
			prof:  rts.Encore,
			mode:  mult.Mode{HardwareFutures: false},
			lazy:  false,
			procs: func(cfg *Table3Config) []int { return cfg.EncoreProcs },
		},
		{
			sys:   SysAPRIL,
			prof:  rts.APRIL,
			mode:  mult.Mode{HardwareFutures: true},
			lazy:  false,
			procs: func(cfg *Table3Config) []int { return cfg.AprilProcs },
		},
		{
			sys:   SysAPRILLazy,
			prof:  rts.APRIL,
			mode:  mult.Mode{HardwareFutures: true, LazyFutures: true},
			lazy:  true,
			procs: func(cfg *Table3Config) []int { return cfg.AprilProcs },
		},
	}
}

// runSpec is one independent machine run in the flattened grid.
type runSpec struct {
	label string // "fib/APRIL 4p" — prefixes run errors
	src   string
	mode  mult.Mode
	prof  rts.Profile
	lazy  bool
	nodes int
}

// rowPlan remembers which grid indices belong to one output row.
type rowPlan struct {
	name    string
	su      systemSetup
	tseq    int   // spec index of the "T seq" run
	mulTSeq int   // spec index of the "Mul-T seq" run
	procs   []int // processor counts of the parallel runs
	parIdx  []int // their spec indices, parallel to procs
}

// Table3 regenerates the paper's Table 3: for each benchmark and each
// system it measures "T seq" (sequential code, no future detection),
// "Mul-T seq" (sequential code with the machine's future detection),
// and the parallel runs at each processor count, all normalized to
// T seq.
//
// Every measurement is an independent machine (optionally itself
// sharded via cfg.Shards), so the whole grid is flattened into one run
// list and fanned across host cores by the harness under the
// workers-times-shards budget; rows are assembled (and cross-checked)
// in grid order afterwards, making the output independent of worker
// count.
func Table3(cfg Table3Config) ([]Row, error) {
	start := time.Now()
	var (
		specs []runSpec
		plans []rowPlan
	)
	add := func(s runSpec) int {
		specs = append(specs, s)
		return len(specs) - 1
	}
	for _, name := range Names {
		src := cfg.Sizes.Source(name)
		for _, su := range setups() {
			pl := rowPlan{name: name, su: su}
			// "T seq": the optimized sequential compilation (no futures,
			// no detection overhead).
			pl.tseq = add(runSpec{
				label: fmt.Sprintf("%s/%s: T seq", name, su.sys),
				src:   src,
				mode:  mult.Mode{HardwareFutures: true, Sequential: true},
				prof:  su.prof,
				nodes: 1,
			})
			// "Mul-T seq": sequential code compiled by the Mul-T
			// compiler for this machine — on the Encore that inserts
			// software future checks before strict operations; on APRIL
			// the tag hardware makes it free.
			pl.mulTSeq = add(runSpec{
				label: fmt.Sprintf("%s/%s: Mul-T seq", name, su.sys),
				src:   src,
				mode:  mult.Mode{HardwareFutures: su.mode.HardwareFutures, Sequential: true},
				prof:  su.prof,
				nodes: 1,
			})
			for _, p := range su.procs(&cfg) {
				pl.procs = append(pl.procs, p)
				pl.parIdx = append(pl.parIdx, add(runSpec{
					label: fmt.Sprintf("%s/%s: %d procs", name, su.sys, p),
					src:   src,
					mode:  su.mode,
					prof:  su.prof,
					lazy:  su.lazy,
					nodes: p,
				}))
			}
			plans = append(plans, pl)
		}
	}

	outs, occ, err := harness.MapOccupancy(harness.Budget(cfg.Workers, cfg.Shards), len(specs), func(i int) (runOut, error) {
		s := specs[i]
		out, err := runOnce(s.src, s.mode, s.prof, s.lazy, s.nodes, &cfg)
		if err != nil {
			return runOut{}, fmt.Errorf("%s: %w", s.label, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.Occupancy != nil {
		*cfg.Occupancy = occ
	}

	if cfg.Stats != nil {
		// Grid order, so the dump is independent of worker count.
		all := make([]RunStats, len(outs))
		for i, o := range outs {
			rs := o.stats
			rs.Label = specs[i].label
			all[i] = rs
		}
		*cfg.Stats = all
	}

	log := func(format string, args ...interface{}) {
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, format+"\n", args...)
		}
	}
	var rows []Row
	for _, pl := range plans {
		tseq := outs[pl.tseq]
		log("%-7s %-9s T-seq result %s: %s", pl.name, pl.su.sys, tseq.result, tseq.perf)
		mulTSeq := outs[pl.mulTSeq]
		if mulTSeq.result != tseq.result {
			return nil, fmt.Errorf("%s/%s: Mul-T seq result %s != %s",
				pl.name, pl.su.sys, mulTSeq.result, tseq.result)
		}
		row := Row{
			Program: pl.name,
			System:  pl.su.sys,
			TSeq:    1.0,
			MulTSeq: float64(mulTSeq.cycles) / float64(tseq.cycles),
			Par:     map[int]float64{},
			Result:  tseq.result,
			RawSeq:  tseq.cycles,
		}
		for k, p := range pl.procs {
			out := outs[pl.parIdx[k]]
			if out.result != tseq.result {
				return nil, fmt.Errorf("%s/%s: %d procs: result %s != %s",
					pl.name, pl.su.sys, p, out.result, tseq.result)
			}
			row.Par[p] = float64(out.cycles) / float64(tseq.cycles)
			log("%-7s %-9s %2dp   %.2f vs T-seq: %s", pl.name, pl.su.sys, p, row.Par[p], out.perf)
		}
		rows = append(rows, row)
	}

	if cfg.Perf != nil {
		// Aggregate throughput over the grid's wall time (not the sum of
		// per-run wall times, which would double-count parallel workers).
		var cycles, instructions uint64
		for _, o := range outs {
			cycles += o.perf.SimCycles
			instructions += o.perf.Instructions
		}
		*cfg.Perf = proc.NewPerf(cycles, instructions, time.Since(start))
	}
	return rows, nil
}

// FormatTable renders rows in the paper's layout.
func FormatTable(rows []Row, procs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-9s %6s %8s", "Program", "System", "T seq", "Mul-T")
	for _, p := range procs {
		fmt.Fprintf(&b, " %6d", p)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-9s %6.1f %8.2f", r.Program, r.System, r.TSeq, r.MulTSeq)
		for _, p := range procs {
			if v, ok := r.Par[p]; ok {
				fmt.Fprintf(&b, " %6.2f", v)
			} else {
				fmt.Fprintf(&b, " %6s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
