// Package bench contains the paper's benchmark programs (Section 7)
// written in Mul-T mini, and the harnesses that regenerate the
// evaluation artifacts: Table 3 (execution time of fib, factor, queens
// and speech on the Encore Multimax and on APRIL with normal and lazy
// task creation) and the supporting overhead measurements.
package bench

import "fmt"

// FibSource is the ubiquitous doubly recursive Fibonacci program with
// futures around each of its recursive calls.
func FibSource(n int) string {
	return fmt.Sprintf(`
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(fib %d)
`, n)
}

// FactorSource finds the largest prime factor of each number in a
// range of numbers and sums them up, with a future per number.
func FactorSource(lo, hi int) string {
	return fmt.Sprintf(`
(define (largest-prime-factor n)
  (let loop ((n n) (f 2) (best 1))
    (cond ((> (* f f) n) (max best n))
          ((= (remainder n f) 0) (loop (quotient n f) f (max best f)))
          (else (loop n (+ f 1) best)))))
(define (sum-factors lo hi)
  (cond ((>= lo hi) 0)
        ((= (+ lo 1) hi) (largest-prime-factor lo))
        (else
         (let ((mid (quotient (+ lo hi) 2)))
           (+ (future (sum-factors lo mid)) (sum-factors mid hi))))))
(sum-factors %d %d)
`, lo, hi)
}

// QueensSource counts all solutions to the n-queens problem, spawning
// a future per safe placement.
func QueensSource(n int) string {
	return fmt.Sprintf(`
(define board-size %d)
(define (safe? row dist placed)
  (cond ((null? placed) #t)
        ((= (car placed) row) #f)
        ((= (abs (- (car placed) row)) dist) #f)
        (else (safe? row (+ dist 1) (cdr placed)))))
(define (try-row placed len row)
  (cond ((> row board-size) 0)
        ((safe? row 1 placed)
         (+ (future (extend (cons row placed) (+ len 1)))
            (try-row placed len (+ row 1))))
        (else (try-row placed len (+ row 1)))))
(define (extend placed len)
  (if (= len board-size) 1 (try-row placed len 1)))
(extend '() 0)
`, n)
}

// SpeechSource is the stand-in for the paper's SUMMIT benchmark: a
// modified Viterbi best-path search over a synthetic layered lattice
// with deterministic pseudo-random transition weights (DESIGN.md,
// substitution 4). Each layer relaxes its nodes in parallel with one
// future per node; the next layer touches the previous layer's scores,
// giving the medium-grain, pipeline-parallel structure of the original
// graph search.
func SpeechSource(layers, width int) string {
	return fmt.Sprintf(`
(define nlayers %d)
(define width %d)
(define (weight l i j)
  (remainder (+ (* 7919 (+ (* l width) i)) (* 10079 j)) 1000))
(define (best-into j prev l)
  (let loop ((i 0) (best 99999999))
    (if (= i width)
        best
        (loop (+ i 1) (min best (+ (vector-ref prev i) (weight l i j)))))))
(define (next-layer prev l)
  (let ((cur (make-vector width 0)))
    (let loop ((j 0))
      (if (= j width)
          cur
          (begin
            (vector-set! cur j (future (best-into j prev l)))
            (loop (+ j 1)))))))
(define (min-over v)
  (let loop ((i 0) (best 99999999))
    (if (= i width) best (loop (+ i 1) (min best (vector-ref v i))))))
(define (run)
  (let loop ((l 1) (prev (make-vector width 0)))
    (if (> l nlayers)
        (min-over prev)
        (loop (+ l 1) (next-layer prev l)))))
(run)
`, layers, width)
}

// Sizes bundles the benchmark parameters.
type Sizes struct {
	FibN               int
	FactorLo, FactorHi int
	QueensN            int
	SpeechLayers       int
	SpeechWidth        int
}

// PaperSizes approximates the paper's workloads at a scale an
// instruction-level simulation completes in seconds.
var PaperSizes = Sizes{
	FibN:     18,
	FactorLo: 2000, FactorHi: 2150,
	QueensN:      8,
	SpeechLayers: 30,
	SpeechWidth:  14,
}

// TestSizes are small variants for unit tests.
var TestSizes = Sizes{
	FibN:     12,
	FactorLo: 100, FactorHi: 130,
	QueensN:      6,
	SpeechLayers: 6,
	SpeechWidth:  6,
}

// Program names in paper order.
var Names = []string{"fib", "factor", "queens", "speech"}

// Source returns the named benchmark's source at the given sizes.
func (s Sizes) Source(name string) string {
	switch name {
	case "fib":
		return FibSource(s.FibN)
	case "factor":
		return FactorSource(s.FactorLo, s.FactorHi)
	case "queens":
		return QueensSource(s.QueensN)
	case "speech":
		return SpeechSource(s.SpeechLayers, s.SpeechWidth)
	}
	panic("bench: unknown program " + name)
}
