package bench

import (
	"fmt"
	"strings"

	"april/internal/core"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

// FramesSweep measures the central claim of the architecture on a real
// workload: processor utilization as a function of the number of
// hardware task frames (resident threads), running a future-parallel
// program on the full ALEWIFE memory system where remote misses force
// context switches. It is the empirical, end-to-end counterpart of the
// Figure 5 model curves (experiment E9 in EXPERIMENTS.md).
type FramesPoint struct {
	Frames      int
	Cycles      uint64
	Utilization float64 // useful cycles / total busy+idle cycles
	Switches    uint64
	MissTraps   uint64
}

// FramesSweepConfig drives the sweep.
type FramesSweepConfig struct {
	Nodes  int
	Frames []int
	FibN   int
	Lazy   bool
}

// DefaultFramesSweep runs fib on an 8-node machine at 1-8 frames.
func DefaultFramesSweep() FramesSweepConfig {
	return FramesSweepConfig{
		Nodes:  8,
		Frames: []int{1, 2, 3, 4, 6, 8},
		FibN:   15,
		Lazy:   false,
	}
}

// FramesSweep runs the sweep.
func FramesSweep(cfg FramesSweepConfig) ([]FramesPoint, error) {
	src := FibSource(cfg.FibN)
	var out []FramesPoint
	var want string
	for _, frames := range cfg.Frames {
		prof := rts.APRIL
		prof.Frames = frames
		m, err := sim.New(sim.Config{
			Nodes:   cfg.Nodes,
			Profile: prof,
			Lazy:    cfg.Lazy,
			Alewife: &sim.AlewifeConfig{},
		})
		if err != nil {
			return nil, err
		}
		mode := mult.Mode{HardwareFutures: true, LazyFutures: cfg.Lazy}
		prog, err := mult.Compile(src, mode, m.StaticHeap())
		if err != nil {
			return nil, err
		}
		if err := m.Load(prog); err != nil {
			return nil, err
		}
		res, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("frames=%d: %w", frames, err)
		}
		if want == "" {
			want = res.Formatted
		} else if res.Formatted != want {
			return nil, fmt.Errorf("frames=%d: result %s != %s", frames, res.Formatted, want)
		}
		stats := m.TotalStats()
		var switches uint64
		for _, n := range m.Nodes {
			switches += n.Proc.Engine.Switches
		}
		out = append(out, FramesPoint{
			Frames:      frames,
			Cycles:      res.Cycles,
			Utilization: stats.Utilization(),
			Switches:    switches,
			MissTraps:   stats.Traps[core.TrapCacheMiss],
		})
	}
	return out, nil
}

// FormatFramesSweep renders the sweep.
func FormatFramesSweep(points []FramesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s  %12s  %12s  %10s  %10s\n",
		"frames", "cycles", "utilization", "switches", "miss-traps")
	for _, p := range points {
		fmt.Fprintf(&b, "%7d  %12d  %12.3f  %10d  %10d\n",
			p.Frames, p.Cycles, p.Utilization, p.Switches, p.MissTraps)
	}
	return b.String()
}
