package bench

import (
	"fmt"
	"strings"

	"april/internal/core"
	"april/internal/harness"
	"april/internal/mult"
	"april/internal/rts"
	"april/internal/sim"
)

// FramesSweep measures the central claim of the architecture on a real
// workload: processor utilization as a function of the number of
// hardware task frames (resident threads), running a future-parallel
// program on the full ALEWIFE memory system where remote misses force
// context switches. It is the empirical, end-to-end counterpart of the
// Figure 5 model curves (experiment E9 in EXPERIMENTS.md).
type FramesPoint struct {
	Frames      int
	Cycles      uint64
	Utilization float64 // useful cycles / total busy+idle cycles
	Switches    uint64
	MissTraps   uint64
}

// FramesSweepConfig drives the sweep.
type FramesSweepConfig struct {
	Nodes  int
	Frames []int
	FibN   int
	Lazy   bool

	// Workers bounds the host goroutines running sweep points in
	// parallel; <= 0 means one per available host core.
	Workers int
}

// DefaultFramesSweep runs fib on an 8-node machine at 1-8 frames.
func DefaultFramesSweep() FramesSweepConfig {
	return FramesSweepConfig{
		Nodes:  8,
		Frames: []int{1, 2, 3, 4, 6, 8},
		FibN:   15,
		Lazy:   false,
	}
}

// FramesSweep runs the sweep. Each point is an independent machine, so
// the points fan across host cores via the harness; the cross-check
// that every frame count computes the same result happens afterwards,
// in frame order.
func FramesSweep(cfg FramesSweepConfig) ([]FramesPoint, error) {
	src := FibSource(cfg.FibN)
	type pointOut struct {
		point  FramesPoint
		result string
	}
	outs, err := harness.Map(cfg.Workers, len(cfg.Frames), func(i int) (pointOut, error) {
		frames := cfg.Frames[i]
		prof := rts.APRIL
		prof.Frames = frames
		m, err := sim.New(sim.Config{
			Nodes:   cfg.Nodes,
			Profile: prof,
			Lazy:    cfg.Lazy,
			Alewife: &sim.AlewifeConfig{},
		})
		if err != nil {
			return pointOut{}, err
		}
		mode := mult.Mode{HardwareFutures: true, LazyFutures: cfg.Lazy}
		prog, err := mult.Compile(src, mode, m.StaticHeap())
		if err != nil {
			return pointOut{}, err
		}
		if err := m.Load(prog); err != nil {
			return pointOut{}, err
		}
		res, err := m.Run()
		if err != nil {
			return pointOut{}, fmt.Errorf("frames=%d: %w", frames, err)
		}
		stats := m.TotalStats()
		var switches uint64
		for _, n := range m.Nodes {
			switches += n.Proc.Engine.Switches
		}
		return pointOut{
			point: FramesPoint{
				Frames:      frames,
				Cycles:      res.Cycles,
				Utilization: stats.Utilization(),
				Switches:    switches,
				MissTraps:   stats.Traps[core.TrapCacheMiss],
			},
			result: res.Formatted,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []FramesPoint
	for _, o := range outs {
		if o.result != outs[0].result {
			return nil, fmt.Errorf("frames=%d: result %s != %s", o.point.Frames, o.result, outs[0].result)
		}
		out = append(out, o.point)
	}
	return out, nil
}

// FormatFramesSweep renders the sweep.
func FormatFramesSweep(points []FramesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s  %12s  %12s  %10s  %10s\n",
		"frames", "cycles", "utilization", "switches", "miss-traps")
	for _, p := range points {
		fmt.Fprintf(&b, "%7d  %12d  %12.3f  %10d  %10d\n",
			p.Frames, p.Cycles, p.Utilization, p.Switches, p.MissTraps)
	}
	return b.String()
}
