package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"april/internal/harness"
	"april/internal/model"
	"april/internal/mult"
	"april/internal/network"
	"april/internal/rts"
	"april/internal/sim"
)

// ModelCheck cross-validates the Section 8 analytical model against the
// simulator (ROADMAP item 5): it runs benchmarks on the full ALEWIFE
// memory system across the Figure 5 processor range, measures the
// model's inputs from each run — resident threads p, miss rate m(p),
// remote latency T(p) — and compares the measured utilization U(p)
// against two predictions:
//
//   - equation (1) evaluated directly on the measured m, T, and C
//     (PredictedEq1): errors here isolate the equation's form;
//   - the full self-consistent model (model.Params.Utilization) with
//     the miss rate pinned to the measurement but the latency derived
//     from the machine's own torus geometry under load
//     (PredictedModel): errors here add the network model's error.
//
// The model describes a processor that is executing, waiting on
// memory, or context switching; it has no notion of idle starvation
// (too few runnable tasks) or non-switch trap overhead (future
// creation, tag traps). Predictions are therefore scored against the
// model-scope utilization useful/(useful + wait + C·switches); the
// overall utilization is recorded alongside so the gap is visible.

// ModelCheckConfig drives the measured-vs-model grid.
type ModelCheckConfig struct {
	Sizes      Sizes
	Benchmarks []string
	Procs      []int
	Workers    int
	// SampleInterval is the timeline sampling window in cycles used to
	// measure mean resident threads (0 = the sampler default).
	SampleInterval uint64
	Verbose        io.Writer
}

// DefaultModelCheckConfig covers fib and queens over the Figure 5
// processor range that the Table 3 grid also visits.
func DefaultModelCheckConfig() ModelCheckConfig {
	return ModelCheckConfig{
		Sizes:      PaperSizes,
		Benchmarks: []string{"fib", "queens"},
		Procs:      []int{2, 4, 8, 16},
	}
}

// ModelCheckRow is one grid cell: one benchmark at one machine size,
// with the measured model inputs, both predictions, and their errors.
type ModelCheckRow struct {
	Benchmark string `json:"benchmark"`
	Procs     int    `json:"procs"`
	Cycles    uint64 `json:"cycles"`
	Result    string `json:"result"`

	// Measured model inputs.
	MeanResident  float64 `json:"mean_resident_threads"` // p̄, sampler-weighted
	MissRate      float64 `json:"measured_miss_rate"`    // m, misses per useful cycle
	RemoteLatency float64 `json:"measured_remote_latency"`
	SwitchCost    float64 `json:"switch_cost"` // C, from the machine profile

	// MeasuredUtil is the run's overall utilization: useful cycles over
	// all cycles, including idle starvation and non-switch trap
	// overhead (future creation, tag traps) that equation (1) does not
	// model. MeasuredModelScope restricts the denominator to the three
	// components the model describes — executing, waiting on memory,
	// and context switching (C cycles per switch) — and is the quantity
	// the predictions are scored against.
	MeasuredUtil       float64 `json:"measured_utilization"`
	MeasuredModelScope float64 `json:"measured_model_scope_utilization"`

	PredictedEq1   float64 `json:"predicted_eq1"`
	PredictedModel float64 `json:"predicted_model"`
	// ModelLatency is the full model's own T(p) at the matched
	// geometry, for comparison against MeasuredRemoteLatency.
	ModelLatency float64 `json:"model_latency"`

	AbsErrEq1   float64 `json:"abs_err_eq1"`
	RelErrEq1   float64 `json:"rel_err_eq1"`
	AbsErrModel float64 `json:"abs_err_model"`
	RelErrModel float64 `json:"rel_err_model"`
}

// ModelCheckReport is the grid result, serialized to the stats JSON.
type ModelCheckReport struct {
	Sizes string          `json:"sizes"`
	Rows  []ModelCheckRow `json:"rows"`
}

// JSON renders the report for the -stats-json / BENCH_modelcheck.json
// output.
func (r ModelCheckReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// modelCheckOnce runs one cell and measures the model inputs.
func modelCheckOnce(src string, nodes int, interval uint64) (ModelCheckRow, error) {
	m, err := sim.New(sim.Config{
		Nodes:   nodes,
		Profile: rts.APRIL,
		Alewife: &sim.AlewifeConfig{},
	})
	if err != nil {
		return ModelCheckRow{}, err
	}
	m.EnableTimeline(interval)
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		return ModelCheckRow{}, err
	}
	if err := m.Load(prog); err != nil {
		return ModelCheckRow{}, err
	}
	res, err := m.Run()
	if err != nil {
		return ModelCheckRow{}, err
	}

	stats := m.TotalStats()
	mem := m.MemSystemStats()
	row := ModelCheckRow{
		Benchmark:     "",
		Procs:         nodes,
		Cycles:        res.Cycles,
		Result:        res.Formatted,
		RemoteLatency: mem.AvgRemoteLatency(),
		SwitchCost:    float64(rts.APRIL.SwitchCycles),
	}
	if total := stats.TotalCycles(); total > 0 {
		row.MeasuredUtil = float64(stats.UsefulCycles) / float64(total)
	}
	if stats.UsefulCycles > 0 {
		row.MissRate = float64(mem.LocalMisses+mem.RemoteMisses) / float64(stats.UsefulCycles)
	}
	var switches uint64
	for _, n := range m.Nodes {
		switches += n.Proc.Engine.Switches
	}
	if scope := float64(stats.UsefulCycles+stats.WaitCycles) +
		row.SwitchCost*float64(switches); scope > 0 {
		row.MeasuredModelScope = float64(stats.UsefulCycles) / scope
	}
	// Mean resident threads per processor, weighted by each sample
	// window's accounted cycles so idle tails don't skew the mean.
	var residentSum, weightSum float64
	for _, s := range m.Sampler().Rows() {
		w := float64(s.Total())
		residentSum += float64(s.Resident) * w
		weightSum += w
	}
	if weightSum > 0 {
		row.MeanResident = residentSum / weightSum
	}
	return row, nil
}

// predict fills both model predictions and the error columns.
func predict(row *ModelCheckRow) {
	p := row.MeanResident
	if p < 1 {
		p = 1
	}
	row.PredictedEq1 = model.Eq1(p, row.MissRate, row.RemoteLatency, row.SwitchCost)

	// Full model at matching parameters: the machine's own torus
	// geometry, its context switch cost, and the miss rate pinned to
	// the measurement (interference is already inside the measured m,
	// so the linear-in-p term is disabled). The model then derives
	// T(p) from geometry and load by its own fixed point.
	geo := network.FitGeometry(row.Procs)
	params := model.Default()
	params.Dim, params.Radix = geo.Dim, geo.Radix
	params.SwitchCost = row.SwitchCost
	params.FixedMiss = row.MissRate
	params.InterferenceCoeff = 0
	sol := params.Utilization(p)
	row.PredictedModel = sol.Utilization
	row.ModelLatency = sol.Latency

	row.AbsErrEq1 = row.PredictedEq1 - row.MeasuredModelScope
	row.AbsErrModel = row.PredictedModel - row.MeasuredModelScope
	if row.MeasuredModelScope > 0 {
		row.RelErrEq1 = row.AbsErrEq1 / row.MeasuredModelScope
		row.RelErrModel = row.AbsErrModel / row.MeasuredModelScope
	}
}

// ModelCheck runs the measured-vs-model grid. Cells are independent
// machines fanned across host cores; rows come back in grid order, so
// the report is byte-identical at any worker count.
func ModelCheck(cfg ModelCheckConfig) (ModelCheckReport, error) {
	type cell struct {
		bench string
		procs int
	}
	var cells []cell
	for _, b := range cfg.Benchmarks {
		for _, p := range cfg.Procs {
			cells = append(cells, cell{b, p})
		}
	}
	rows, err := harness.Map(cfg.Workers, len(cells), func(i int) (ModelCheckRow, error) {
		c := cells[i]
		row, err := modelCheckOnce(cfg.Sizes.Source(c.bench), c.procs, cfg.SampleInterval)
		if err != nil {
			return ModelCheckRow{}, fmt.Errorf("model check %s %dp: %w", c.bench, c.procs, err)
		}
		row.Benchmark = c.bench
		predict(&row)
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "model-check %-7s %2dp: U=%.3f eq1=%.3f model=%.3f\n",
				c.bench, c.procs, row.MeasuredUtil, row.PredictedEq1, row.PredictedModel)
		}
		return row, nil
	})
	if err != nil {
		return ModelCheckReport{}, err
	}
	return ModelCheckReport{Rows: rows}, nil
}

// FormatModelCheck renders the measured-vs-predicted table. "U" is the
// run's overall utilization; "U-scope" excludes idle starvation and
// non-switch trap overhead (the components outside the model) and is
// what the predictions are scored against.
func FormatModelCheck(r ModelCheckReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %4s  %5s %6s %6s  %6s %7s  %8s %7s  %8s %7s\n",
		"Program", "p", "p̄", "m(p)", "T(p)", "U", "U-scope", "eq1", "rel%", "model", "rel%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %4d  %5.2f %6.4f %6.1f  %6.3f %7.3f  %8.3f %+6.1f%%  %8.3f %+6.1f%%\n",
			row.Benchmark, row.Procs, row.MeanResident, row.MissRate, row.RemoteLatency,
			row.MeasuredUtil, row.MeasuredModelScope,
			row.PredictedEq1, 100*row.RelErrEq1,
			row.PredictedModel, 100*row.RelErrModel)
	}
	return b.String()
}
