package bench

import (
	"strings"
	"testing"
)

// TestObsModelCheckShape runs the measured-vs-model grid at test sizes
// and checks every cell measured its inputs and scored both
// predictions.
func TestObsModelCheckShape(t *testing.T) {
	cfg := DefaultModelCheckConfig()
	cfg.Sizes = TestSizes
	cfg.Benchmarks = []string{"queens"}
	cfg.Procs = []int{2, 4}
	rep, err := ModelCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Benchmark != "queens" || row.Cycles == 0 || row.Result == "" {
			t.Errorf("row not filled: %+v", row)
		}
		if row.MeanResident <= 0 || row.MissRate <= 0 || row.RemoteLatency <= 0 {
			t.Errorf("%s %dp: model inputs not measured: p̄=%v m=%v T=%v",
				row.Benchmark, row.Procs, row.MeanResident, row.MissRate, row.RemoteLatency)
		}
		if row.SwitchCost != 11 {
			t.Errorf("%s %dp: switch cost %v, want the APRIL profile's 11",
				row.Benchmark, row.Procs, row.SwitchCost)
		}
		if row.MeasuredModelScope <= 0 || row.MeasuredModelScope > 1 ||
			row.MeasuredUtil > row.MeasuredModelScope {
			t.Errorf("%s %dp: scope utilization %v vs overall %v",
				row.Benchmark, row.Procs, row.MeasuredModelScope, row.MeasuredUtil)
		}
		if row.PredictedEq1 <= 0 || row.PredictedEq1 > 1 ||
			row.PredictedModel <= 0 || row.PredictedModel > 1 {
			t.Errorf("%s %dp: predictions out of range: eq1=%v model=%v",
				row.Benchmark, row.Procs, row.PredictedEq1, row.PredictedModel)
		}
		if row.AbsErrEq1 != row.PredictedEq1-row.MeasuredModelScope {
			t.Errorf("%s %dp: abs error inconsistent", row.Benchmark, row.Procs)
		}
	}

	// The grid must be deterministic: a second run at one worker
	// reproduces the same rows.
	cfg.Workers = 1
	rep2, err := ModelCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Rows {
		if rep.Rows[i] != rep2.Rows[i] {
			t.Errorf("row %d not deterministic:\n%+v\n%+v", i, rep.Rows[i], rep2.Rows[i])
		}
	}

	table := FormatModelCheck(rep)
	if !strings.Contains(table, "queens") || !strings.Contains(table, "U-scope") {
		t.Errorf("table missing content:\n%s", table)
	}
}
