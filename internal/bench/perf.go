package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"april/internal/harness"
	"april/internal/isa"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

// PerfReport is the simulator-throughput measurement that
// cmd/april-bench -perf serializes to BENCH_simperf.json: the full
// Table 3 grid run three times on the same host — at the pre-overhaul
// cost profile (reference per-cycle loop, eagerly materialized memory,
// a single worker), with fast-forward, predecoded dispatch, demand
// paging and the parallel harness but the compiled tier off, and
// finally with profile-guided basic-block superinstructions on — with
// a bit-identity cross-check across the three sets of rows.
type PerfReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Sizes       string `json:"sizes"`
	Workers     int    `json:"workers"` // workers used by the optimized grid

	// Baseline: naive loop, one worker. Predecode: fast-forward and
	// predecoded per-op dispatch on Workers workers with the compiled
	// tier off. Optimized: the same plus profile-guided basic-block
	// superinstructions. All three cover the identical run grid.
	Baseline  proc.Perf `json:"baseline"`
	Predecode proc.Perf `json:"predecode"`
	Optimized proc.Perf `json:"optimized"`

	// Speedup is baseline wall time / optimized wall time;
	// CompiledVsPredecode is predecode wall time / optimized wall time
	// (the compiled tier's own contribution, workers held equal).
	Speedup             float64 `json:"speedup"`
	CompiledVsPredecode float64 `json:"compiled_vs_predecode"`

	// CompileThreshold is the block-translation threshold the compiled
	// grid ran with (the isa.DefaultCompileThreshold unless overridden).
	CompileThreshold int `json:"compile_threshold"`

	// RowsIdentical asserts the three grids produced byte-identical
	// simulated results (same cycle counts, same program outputs).
	RowsIdentical bool `json:"rows_identical"`

	// Alewife is the same before/after comparison on the full memory
	// system (caches + directory + torus) at a machine size the Table 3
	// grid never reaches — where the work-proportional run loop,
	// predecoded dispatch, and idle-router skip matter most.
	Alewife *AlewifeRow `json:"alewife,omitempty"`

	// ShardScaling sweeps the sharded run loop (sim.Config.Shards) over
	// large ALEWIFE machines: one benchmark at several machine sizes,
	// each size run at 1/2/4/8 shards with a bit-identity cross-check
	// against the sequential run. Shard speedups only materialize when
	// GOMAXPROCS grants the shards real cores; on a single-core host the
	// sweep still proves determinism and records the barrier overhead.
	ShardScaling []ShardRow `json:"shard_scaling,omitempty"`

	// WorkerOccupancy reports how the optimized grid's harness workers
	// spent the sweep: runs and busy time per worker against wall time.
	WorkerOccupancy *harness.Occupancy `json:"worker_occupancy,omitempty"`
}

// AlewifeRow is one ALEWIFE-mode throughput measurement: a single
// benchmark on the full memory system, run with the reference cost
// profile and then optimized, with a bit-identity cross-check.
type AlewifeRow struct {
	Benchmark string    `json:"benchmark"`
	Nodes     int       `json:"nodes"`
	Cycles    uint64    `json:"cycles"`
	Result    string    `json:"result"`
	Baseline  proc.Perf `json:"baseline"`
	Optimized proc.Perf `json:"optimized"`
	Speedup   float64   `json:"speedup"`

	// Identical asserts the two runs agreed on cycles, result, and
	// every node's full statistics.
	Identical bool `json:"identical"`
}

// ShardRow is one cell of the shard-scaling sweep: a benchmark on an
// ALEWIFE machine of Nodes nodes run with Shards host goroutines.
// Speedup and Identical compare against the Shards=1 row at the same
// machine size.
type ShardRow struct {
	Benchmark string    `json:"benchmark"`
	Nodes     int       `json:"nodes"`
	Shards    int       `json:"shards"`
	Cycles    uint64    `json:"cycles"`
	Result    string    `json:"result"`
	Perf      proc.Perf `json:"perf"`
	// CrossMessages counts coherence messages that crossed a shard
	// boundary — the traffic the horizon barriers staged.
	CrossMessages uint64 `json:"cross_shard_messages"`
	// BarrierWaitFraction is the coordinator's barrier wait over the
	// sharded loop's wall time; FallbackPct is the percentage of cycles
	// executed on the sequential fallback path. Both are zero for the
	// 1-shard rows (the sequential loop has no barriers or fallbacks).
	BarrierWaitFraction float64 `json:"barrier_wait_fraction"`
	FallbackPct         float64 `json:"fallback_pct"`
	Speedup             float64 `json:"speedup_vs_1shard"`
	Identical           bool    `json:"identical"`
}

// ShardSweep measures ShardRows for one benchmark across machine sizes
// and shard counts. Every row is cross-checked bit-identical (cycles,
// result, per-node statistics) against the sequential run of the same
// machine size.
func ShardSweep(benchName string, sizes Sizes, nodeSizes, shardCounts []int) ([]ShardRow, error) {
	src := sizes.Source(benchName)
	var rows []ShardRow
	for _, nodes := range nodeSizes {
		var base runOut
		for _, shards := range shardCounts {
			// A quarter of simulated memory is the stack arena; eager
			// task trees on hundreds of nodes need thousands of 64 KB
			// stacks, so give large machines a 2 GB address space.
			out, err := alewifeOnce(src, nodes, false, shards, 2<<30)
			if err != nil {
				return nil, fmt.Errorf("shard sweep %dp/%dshards: %w", nodes, shards, err)
			}
			row := ShardRow{
				Benchmark:     benchName,
				Nodes:         nodes,
				Shards:        shards,
				Cycles:        out.cycles,
				Result:        out.result,
				Perf:          out.perf,
				CrossMessages: out.cross,
			}
			if so := out.stats.Shard; so != nil {
				row.BarrierWaitFraction = so.BarrierWaitFraction
				row.FallbackPct = so.FallbackPct
			}
			if shards <= 1 {
				base = out
				row.Speedup, row.Identical = 1, true
			} else {
				row.Identical = out.cycles == base.cycles && out.result == base.result &&
					reflect.DeepEqual(out.stats.PerNode, base.stats.PerNode)
				if out.perf.WallSeconds > 0 {
					row.Speedup = base.perf.WallSeconds / out.perf.WallSeconds
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// alewifeOnce runs one benchmark on a fresh full-memory-system machine.
// reference selects the pre-overhaul cost profile: reference stepping
// loop, opcode-switch interpreter, eagerly materialized memory. shards
// > 1 runs the sharded loop (mutually exclusive with reference, which
// forces one shard). memBytes sizes simulated memory (0 = the 256 MB
// default); memory is demand-paged, so a large address space costs
// only what the run touches.
func alewifeOnce(src string, nodes int, reference bool, shards int, memBytes uint32) (runOut, error) {
	// The GC bracket matches the wall-clock bracket: it covers machine
	// construction too, so the baseline pays for eager materialization
	// where the optimized side demand-pages only the touched footprint.
	gcBefore := proc.TakeGCSnapshot()
	start := time.Now()
	m, err := sim.New(sim.Config{
		Nodes:              nodes,
		Profile:            rts.APRIL,
		Alewife:            &sim.AlewifeConfig{},
		DisableFastForward: reference,
		DisablePredecode:   reference,
		Shards:             shards,
		MemoryBytes:        memBytes,
	})
	if err != nil {
		return runOut{}, err
	}
	if reference {
		m.Mem.Materialize()
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		return runOut{}, err
	}
	if err := m.Load(prog); err != nil {
		return runOut{}, err
	}
	res, err := m.Run()
	if err != nil {
		return runOut{}, err
	}
	gcAfter := proc.TakeGCSnapshot()
	out := runOut{
		cycles: res.Cycles,
		result: res.Formatted,
		perf:   proc.NewPerf(res.Cycles, m.TotalStats().Instructions, time.Since(start)),
		cross:  m.CrossShardMessages(),
	}
	out.perf.SetGC(gcBefore, gcAfter)
	for _, n := range m.Nodes {
		out.stats.PerNode = append(out.stats.PerNode, n.Proc.Stats)
	}
	out.stats.CrossShardMessages = out.cross
	out.stats.Shard = shardOverhead(m)
	return out, nil
}

// AlewifePerf measures one AlewifeRow: the named benchmark on an
// ALEWIFE machine of the given size, reference vs optimized.
func AlewifePerf(benchName string, sizes Sizes, nodes int) (AlewifeRow, error) {
	src := sizes.Source(benchName)
	base, err := alewifeOnce(src, nodes, true, 1, 0)
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife reference run: %w", err)
	}
	opt, err := alewifeOnce(src, nodes, false, 1, 0)
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife optimized run: %w", err)
	}
	row := AlewifeRow{
		Benchmark: benchName,
		Nodes:     nodes,
		Cycles:    opt.cycles,
		Result:    opt.result,
		Baseline:  base.perf,
		Optimized: opt.perf,
		Identical: base.cycles == opt.cycles && base.result == opt.result &&
			reflect.DeepEqual(base.stats.PerNode, opt.stats.PerNode),
	}
	if row.Optimized.WallSeconds > 0 {
		row.Speedup = row.Baseline.WallSeconds / row.Optimized.WallSeconds
	}
	return row, nil
}

// Table3Perf measures PerfReport for the given grid configuration
// (cfg.Naive, cfg.Workers and cfg.Perf are overridden per side).
func Table3Perf(cfg Table3Config, sizesName string) (PerfReport, error) {
	rep := PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Sizes:       sizesName,
	}

	base := cfg
	base.Naive, base.Workers, base.Perf = true, 1, &rep.Baseline
	runtime.GC()
	gcBefore := proc.TakeGCSnapshot()
	baseRows, err := Table3(base)
	if err != nil {
		return PerfReport{}, fmt.Errorf("baseline grid: %w", err)
	}
	rep.Baseline.SetGC(gcBefore, proc.TakeGCSnapshot())

	pre := cfg
	pre.Naive, pre.NoCompile, pre.Perf = false, true, &rep.Predecode
	// Collect before each timed grid so no side inherits the previous
	// grid's heap target: the naive grid's allocation churn otherwise
	// leaves the pacer with a bloated goal that flatters whichever
	// side runs next (observed as a 2x GC-count skew between the
	// predecode and compiled grids despite identical alloc rates).
	runtime.GC()
	gcBefore = proc.TakeGCSnapshot()
	preRows, err := Table3(pre)
	if err != nil {
		return PerfReport{}, fmt.Errorf("predecode grid: %w", err)
	}
	rep.Predecode.SetGC(gcBefore, proc.TakeGCSnapshot())

	opt := cfg
	opt.Naive, opt.NoCompile, opt.Perf = false, false, &rep.Optimized
	var occ harness.Occupancy
	opt.Occupancy = &occ
	rep.Workers = harness.Workers(opt.Workers)
	rep.CompileThreshold = opt.CompileThreshold
	if rep.CompileThreshold == 0 {
		rep.CompileThreshold = isa.DefaultCompileThreshold
	}
	runtime.GC()
	gcBefore = proc.TakeGCSnapshot()
	optRows, err := Table3(opt)
	if err != nil {
		return PerfReport{}, fmt.Errorf("optimized grid: %w", err)
	}
	rep.Optimized.SetGC(gcBefore, proc.TakeGCSnapshot())
	rep.WorkerOccupancy = &occ

	rep.RowsIdentical = reflect.DeepEqual(baseRows, optRows) && reflect.DeepEqual(preRows, optRows)
	if rep.Optimized.WallSeconds > 0 {
		rep.Speedup = rep.Baseline.WallSeconds / rep.Optimized.WallSeconds
		rep.CompiledVsPredecode = rep.Predecode.WallSeconds / rep.Optimized.WallSeconds
	}

	// ALEWIFE-mode row: a 64-node full-memory-system run, the regime
	// the Table 3 grid (perfect memory, <= 16 nodes) never exercises.
	// queens is the longest-running benchmark that fits the default
	// stack arena at this node count (fib's eager task tree does not).
	alw, err := AlewifePerf("queens", cfg.Sizes, 64)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Alewife = &alw

	// Shard-scaling sweep: large tori (the sizes Section 8's model
	// targets and the Table 3 grid never reaches), each run at several
	// shard counts with a bit-identity cross-check.
	rep.ShardScaling, err = ShardSweep("queens", cfg.Sizes, []int{256, 512, 1024}, []int{1, 2, 4, 8})
	if err != nil {
		return PerfReport{}, err
	}
	return rep, nil
}

// ShardsIdentical reports whether every shard-scaling row reproduced
// its sequential baseline bit-identically.
func (r PerfReport) ShardsIdentical() bool {
	for _, row := range r.ShardScaling {
		if !row.Identical {
			return false
		}
	}
	return true
}

// JSON renders the report for BENCH_simperf.json.
func (r PerfReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // the report is plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// Summary is the one-line human rendering.
func (r PerfReport) Summary() string {
	ident := "IDENTICAL"
	if !r.RowsIdentical {
		ident = "MISMATCH"
	}
	s := fmt.Sprintf("baseline %.2fs -> predecode %.2fs -> compiled %.2fs (%.2fx overall, %.2fx from compile @ threshold %d, %d workers, results %s)",
		r.Baseline.WallSeconds, r.Predecode.WallSeconds, r.Optimized.WallSeconds,
		r.Speedup, r.CompiledVsPredecode, r.CompileThreshold, r.Workers, ident)
	s += fmt.Sprintf("\n  gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle, %d -> %d GCs",
		r.Baseline.AllocsPerMcycle, r.Optimized.AllocsPerMcycle,
		r.Baseline.BytesPerMcycle/1024, r.Optimized.BytesPerMcycle/1024,
		r.Baseline.HostNumGC, r.Optimized.HostNumGC)
	if a := r.Alewife; a != nil {
		aident := "IDENTICAL"
		if !a.Identical {
			aident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  alewife %s %dp: %.2fs -> %.2fs (%.2fx, results %s)",
			a.Benchmark, a.Nodes, a.Baseline.WallSeconds, a.Optimized.WallSeconds, a.Speedup, aident)
		s += fmt.Sprintf("\n  alewife gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle",
			a.Baseline.AllocsPerMcycle, a.Optimized.AllocsPerMcycle,
			a.Baseline.BytesPerMcycle/1024, a.Optimized.BytesPerMcycle/1024)
	}
	for _, row := range r.ShardScaling {
		sident := "IDENTICAL"
		if !row.Identical {
			sident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  shards %s %4dp x%d: %6.2fs (%.2fx vs 1 shard, %d cross msgs, barrier %4.1f%%, fallback %4.1f%%, results %s)",
			row.Benchmark, row.Nodes, row.Shards, row.Perf.WallSeconds, row.Speedup,
			row.CrossMessages, 100*row.BarrierWaitFraction, row.FallbackPct, sident)
	}
	if o := r.WorkerOccupancy; o != nil {
		s += fmt.Sprintf("\n  harness: %d workers, %.0f%% busy over %.2fs",
			o.Workers, 100*o.BusyFraction(), float64(o.WallNS)/1e9)
	}
	return s
}
