package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"april/internal/harness"
	"april/internal/proc"
)

// PerfReport is the before/after simulator-throughput measurement that
// cmd/april-bench -perf serializes to BENCH_simperf.json: the full
// Table 3 grid run twice on the same host — once at the pre-overhaul
// cost profile (reference per-cycle loop, eagerly materialized memory,
// a single worker), once with fast-forward, demand paging and the
// parallel harness — with a bit-identity cross-check between the two
// sets of rows.
type PerfReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Sizes       string `json:"sizes"`
	Workers     int    `json:"workers"` // workers used by the optimized grid

	// Baseline: naive loop, one worker. Optimized: fast-forward,
	// Workers workers. Both cover the identical run grid.
	Baseline  proc.Perf `json:"baseline"`
	Optimized proc.Perf `json:"optimized"`

	// Speedup is baseline wall time / optimized wall time.
	Speedup float64 `json:"speedup"`

	// RowsIdentical asserts the two grids produced byte-identical
	// simulated results (same cycle counts, same program outputs).
	RowsIdentical bool `json:"rows_identical"`
}

// Table3Perf measures PerfReport for the given grid configuration
// (cfg.Naive, cfg.Workers and cfg.Perf are overridden per side).
func Table3Perf(cfg Table3Config, sizesName string) (PerfReport, error) {
	rep := PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Sizes:       sizesName,
	}

	base := cfg
	base.Naive, base.Workers, base.Perf = true, 1, &rep.Baseline
	baseRows, err := Table3(base)
	if err != nil {
		return PerfReport{}, fmt.Errorf("baseline grid: %w", err)
	}

	opt := cfg
	opt.Naive, opt.Perf = false, &rep.Optimized
	rep.Workers = harness.Workers(opt.Workers)
	optRows, err := Table3(opt)
	if err != nil {
		return PerfReport{}, fmt.Errorf("optimized grid: %w", err)
	}

	rep.RowsIdentical = reflect.DeepEqual(baseRows, optRows)
	if rep.Optimized.WallSeconds > 0 {
		rep.Speedup = rep.Baseline.WallSeconds / rep.Optimized.WallSeconds
	}
	return rep, nil
}

// JSON renders the report for BENCH_simperf.json.
func (r PerfReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // the report is plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// Summary is the one-line human rendering.
func (r PerfReport) Summary() string {
	ident := "IDENTICAL"
	if !r.RowsIdentical {
		ident = "MISMATCH"
	}
	return fmt.Sprintf("baseline %.2fs -> optimized %.2fs (%.2fx, %d workers, results %s)",
		r.Baseline.WallSeconds, r.Optimized.WallSeconds, r.Speedup, r.Workers, ident)
}
