package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"april/internal/harness"
	"april/internal/mult"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

// PerfReport is the before/after simulator-throughput measurement that
// cmd/april-bench -perf serializes to BENCH_simperf.json: the full
// Table 3 grid run twice on the same host — once at the pre-overhaul
// cost profile (reference per-cycle loop, eagerly materialized memory,
// a single worker), once with fast-forward, demand paging and the
// parallel harness — with a bit-identity cross-check between the two
// sets of rows.
type PerfReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Sizes       string `json:"sizes"`
	Workers     int    `json:"workers"` // workers used by the optimized grid

	// Baseline: naive loop, one worker. Optimized: fast-forward,
	// Workers workers. Both cover the identical run grid.
	Baseline  proc.Perf `json:"baseline"`
	Optimized proc.Perf `json:"optimized"`

	// Speedup is baseline wall time / optimized wall time.
	Speedup float64 `json:"speedup"`

	// RowsIdentical asserts the two grids produced byte-identical
	// simulated results (same cycle counts, same program outputs).
	RowsIdentical bool `json:"rows_identical"`

	// Alewife is the same before/after comparison on the full memory
	// system (caches + directory + torus) at a machine size the Table 3
	// grid never reaches — where the work-proportional run loop,
	// predecoded dispatch, and idle-router skip matter most.
	Alewife *AlewifeRow `json:"alewife,omitempty"`
}

// AlewifeRow is one ALEWIFE-mode throughput measurement: a single
// benchmark on the full memory system, run with the reference cost
// profile and then optimized, with a bit-identity cross-check.
type AlewifeRow struct {
	Benchmark string    `json:"benchmark"`
	Nodes     int       `json:"nodes"`
	Cycles    uint64    `json:"cycles"`
	Result    string    `json:"result"`
	Baseline  proc.Perf `json:"baseline"`
	Optimized proc.Perf `json:"optimized"`
	Speedup   float64   `json:"speedup"`

	// Identical asserts the two runs agreed on cycles, result, and
	// every node's full statistics.
	Identical bool `json:"identical"`
}

// alewifeOnce runs one benchmark on a fresh full-memory-system machine.
// reference selects the pre-overhaul cost profile: reference stepping
// loop, opcode-switch interpreter, eagerly materialized memory.
func alewifeOnce(src string, nodes int, reference bool) (runOut, error) {
	// The GC bracket matches the wall-clock bracket: it covers machine
	// construction too, so the baseline pays for eager materialization
	// where the optimized side demand-pages only the touched footprint.
	gcBefore := proc.TakeGCSnapshot()
	start := time.Now()
	m, err := sim.New(sim.Config{
		Nodes:              nodes,
		Profile:            rts.APRIL,
		Alewife:            &sim.AlewifeConfig{},
		DisableFastForward: reference,
		DisablePredecode:   reference,
	})
	if err != nil {
		return runOut{}, err
	}
	if reference {
		m.Mem.Materialize()
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		return runOut{}, err
	}
	if err := m.Load(prog); err != nil {
		return runOut{}, err
	}
	res, err := m.Run()
	if err != nil {
		return runOut{}, err
	}
	gcAfter := proc.TakeGCSnapshot()
	out := runOut{
		cycles: res.Cycles,
		result: res.Formatted,
		perf:   proc.NewPerf(res.Cycles, m.TotalStats().Instructions, time.Since(start)),
	}
	out.perf.SetGC(gcBefore, gcAfter)
	for _, n := range m.Nodes {
		out.stats.PerNode = append(out.stats.PerNode, n.Proc.Stats)
	}
	return out, nil
}

// AlewifePerf measures one AlewifeRow: the named benchmark on an
// ALEWIFE machine of the given size, reference vs optimized.
func AlewifePerf(benchName string, sizes Sizes, nodes int) (AlewifeRow, error) {
	src := sizes.Source(benchName)
	base, err := alewifeOnce(src, nodes, true)
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife reference run: %w", err)
	}
	opt, err := alewifeOnce(src, nodes, false)
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife optimized run: %w", err)
	}
	row := AlewifeRow{
		Benchmark: benchName,
		Nodes:     nodes,
		Cycles:    opt.cycles,
		Result:    opt.result,
		Baseline:  base.perf,
		Optimized: opt.perf,
		Identical: base.cycles == opt.cycles && base.result == opt.result &&
			reflect.DeepEqual(base.stats.PerNode, opt.stats.PerNode),
	}
	if row.Optimized.WallSeconds > 0 {
		row.Speedup = row.Baseline.WallSeconds / row.Optimized.WallSeconds
	}
	return row, nil
}

// Table3Perf measures PerfReport for the given grid configuration
// (cfg.Naive, cfg.Workers and cfg.Perf are overridden per side).
func Table3Perf(cfg Table3Config, sizesName string) (PerfReport, error) {
	rep := PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Sizes:       sizesName,
	}

	base := cfg
	base.Naive, base.Workers, base.Perf = true, 1, &rep.Baseline
	gcBefore := proc.TakeGCSnapshot()
	baseRows, err := Table3(base)
	if err != nil {
		return PerfReport{}, fmt.Errorf("baseline grid: %w", err)
	}
	rep.Baseline.SetGC(gcBefore, proc.TakeGCSnapshot())

	opt := cfg
	opt.Naive, opt.Perf = false, &rep.Optimized
	rep.Workers = harness.Workers(opt.Workers)
	gcBefore = proc.TakeGCSnapshot()
	optRows, err := Table3(opt)
	if err != nil {
		return PerfReport{}, fmt.Errorf("optimized grid: %w", err)
	}
	rep.Optimized.SetGC(gcBefore, proc.TakeGCSnapshot())

	rep.RowsIdentical = reflect.DeepEqual(baseRows, optRows)
	if rep.Optimized.WallSeconds > 0 {
		rep.Speedup = rep.Baseline.WallSeconds / rep.Optimized.WallSeconds
	}

	// ALEWIFE-mode row: a 64-node full-memory-system run, the regime
	// the Table 3 grid (perfect memory, <= 16 nodes) never exercises.
	// queens is the longest-running benchmark that fits the default
	// stack arena at this node count (fib's eager task tree does not).
	alw, err := AlewifePerf("queens", cfg.Sizes, 64)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Alewife = &alw
	return rep, nil
}

// JSON renders the report for BENCH_simperf.json.
func (r PerfReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // the report is plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// Summary is the one-line human rendering.
func (r PerfReport) Summary() string {
	ident := "IDENTICAL"
	if !r.RowsIdentical {
		ident = "MISMATCH"
	}
	s := fmt.Sprintf("baseline %.2fs -> optimized %.2fs (%.2fx, %d workers, results %s)",
		r.Baseline.WallSeconds, r.Optimized.WallSeconds, r.Speedup, r.Workers, ident)
	s += fmt.Sprintf("\n  gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle, %d -> %d GCs",
		r.Baseline.AllocsPerMcycle, r.Optimized.AllocsPerMcycle,
		r.Baseline.BytesPerMcycle/1024, r.Optimized.BytesPerMcycle/1024,
		r.Baseline.HostNumGC, r.Optimized.HostNumGC)
	if a := r.Alewife; a != nil {
		aident := "IDENTICAL"
		if !a.Identical {
			aident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  alewife %s %dp: %.2fs -> %.2fs (%.2fx, results %s)",
			a.Benchmark, a.Nodes, a.Baseline.WallSeconds, a.Optimized.WallSeconds, a.Speedup, aident)
		s += fmt.Sprintf("\n  alewife gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle",
			a.Baseline.AllocsPerMcycle, a.Optimized.AllocsPerMcycle,
			a.Baseline.BytesPerMcycle/1024, a.Optimized.BytesPerMcycle/1024)
	}
	return s
}
