package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"april/internal/harness"
	"april/internal/isa"
	"april/internal/mult"
	"april/internal/network"
	"april/internal/proc"
	"april/internal/rts"
	"april/internal/sim"
)

// PerfReport is the simulator-throughput measurement that
// cmd/april-bench -perf serializes to BENCH_simperf.json: the full
// Table 3 grid run three times on the same host — at the pre-overhaul
// cost profile (reference per-cycle loop, eagerly materialized memory,
// a single worker), with fast-forward, predecoded dispatch, demand
// paging and the parallel harness but the compiled tier off, and
// finally with profile-guided basic-block superinstructions on — with
// a bit-identity cross-check across the three sets of rows.
type PerfReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Sizes       string `json:"sizes"`
	Workers     int    `json:"workers"` // workers used by the optimized grid

	// Baseline: naive loop, one worker. Predecode: fast-forward and
	// predecoded per-op dispatch on Workers workers with the compiled
	// tier off. Optimized: the same plus profile-guided basic-block
	// superinstructions. All three cover the identical run grid.
	Baseline  proc.Perf `json:"baseline"`
	Predecode proc.Perf `json:"predecode"`
	Optimized proc.Perf `json:"optimized"`

	// Speedup is baseline wall time / optimized wall time;
	// CompiledVsPredecode is predecode wall time / optimized wall time
	// (the compiled tier's own contribution, workers held equal).
	Speedup             float64 `json:"speedup"`
	CompiledVsPredecode float64 `json:"compiled_vs_predecode"`

	// CompileThreshold is the block-translation threshold the compiled
	// grid ran with (the isa.DefaultCompileThreshold unless overridden).
	CompileThreshold int `json:"compile_threshold"`

	// RowsIdentical asserts the three grids produced byte-identical
	// simulated results (same cycle counts, same program outputs).
	RowsIdentical bool `json:"rows_identical"`

	// Alewife is the same before/after comparison on the full memory
	// system (caches + directory + torus) at a machine size the Table 3
	// grid never reaches — where the work-proportional run loop,
	// predecoded dispatch, and idle-router skip matter most.
	Alewife *AlewifeRow `json:"alewife,omitempty"`

	// ShardScaling sweeps the sharded run loop (sim.Config.Shards) over
	// large ALEWIFE machines: one benchmark at several machine sizes,
	// each size run at 1/2/4/8 shards with a bit-identity cross-check
	// against the sequential run. Shard speedups only materialize when
	// GOMAXPROCS grants the shards real cores; on a single-core host the
	// sweep still proves determinism and records the barrier overhead.
	ShardScaling []ShardRow `json:"shard_scaling,omitempty"`

	// HorizonSweep holds the epoch-window-cap sweep (sim.Config.Horizon
	// = k) on a sharded machine: the same run at k in {1, 2, 4,
	// slab-width}, bit-identical across the board, with barriers per
	// 1000 cycles falling as the cap rises.
	HorizonSweep []ShardRow `json:"horizon_sweep,omitempty"`

	// CheckpointOverhead measures the snapshot/restore path across
	// machine sizes: serialize latency, image size, restore latency, and
	// a bit-identity cross-check of the restored run against the donor.
	CheckpointOverhead []CheckpointRow `json:"checkpoint_overhead,omitempty"`

	// WorkerOccupancy reports how the optimized grid's harness workers
	// spent the sweep: runs and busy time per worker against wall time.
	WorkerOccupancy *harness.Occupancy `json:"worker_occupancy,omitempty"`
}

// AlewifeRow is one ALEWIFE-mode throughput measurement: a single
// benchmark on the full memory system, run with the reference cost
// profile, with the compiled tier but epoch windows off (the
// pre-epoch configuration), and fully optimized (compiled tier plus
// multi-node epoch windows), with a bit-identity cross-check across
// all three.
type AlewifeRow struct {
	Benchmark string    `json:"benchmark"`
	Nodes     int       `json:"nodes"`
	Cycles    uint64    `json:"cycles"`
	Result    string    `json:"result"`
	Baseline  proc.Perf `json:"baseline"`
	Compiled  proc.Perf `json:"compiled_no_epoch"`
	Optimized proc.Perf `json:"optimized"`
	Speedup   float64   `json:"speedup"`
	// EpochSpeedup is compiled-without-epochs wall time over optimized
	// wall time: the epoch engine's own contribution on a multi-node
	// machine, everything else held equal.
	EpochSpeedup float64 `json:"epoch_speedup"`
	// Epoch is the optimized run's epoch telemetry.
	Epoch *EpochOverhead `json:"epoch,omitempty"`

	// Identical asserts the three runs agreed on cycles, result, and
	// every node's full statistics.
	Identical bool `json:"identical"`
}

// ShardRow is one cell of the shard-scaling sweep: a benchmark on an
// ALEWIFE machine of Nodes nodes run with Shards host goroutines.
// Speedup and Identical compare against the Shards=1 row at the same
// machine size.
type ShardRow struct {
	Benchmark string `json:"benchmark"`
	Nodes     int    `json:"nodes"`
	Shards    int    `json:"shards"`
	// Horizon is the epoch-window cap the row ran with (0 = unbounded,
	// the default; 1 degenerates to per-cycle stepping).
	Horizon   uint64    `json:"horizon,omitempty"`
	Cycles    uint64    `json:"cycles"`
	Result    string    `json:"result"`
	Perf      proc.Perf `json:"perf"`
	// CrossMessages counts coherence messages that crossed a shard
	// boundary — the traffic the horizon barriers staged.
	CrossMessages uint64 `json:"cross_shard_messages"`
	// BarrierWaitFraction is the coordinator's barrier wait over the
	// sharded loop's wall time; FallbackPct is the percentage of cycles
	// executed on the sequential fallback path. Both are zero for the
	// 1-shard rows (the sequential loop has no barriers or fallbacks).
	BarrierWaitFraction float64 `json:"barrier_wait_fraction"`
	FallbackPct         float64 `json:"fallback_pct"`
	// BarriersPer1k is worker-pool joins per 1000 simulated cycles;
	// EpochCyclesPct is the share of cycles committed inside epoch
	// windows (the cycles that paid no barrier at all).
	BarriersPer1k  float64 `json:"barriers_per_1k_cycles"`
	EpochCyclesPct float64 `json:"epoch_cycles_pct"`
	Speedup        float64 `json:"speedup_vs_1shard"`
	Identical      bool    `json:"identical"`
}

// CheckpointRow is one checkpoint-overhead measurement: the benchmark
// run to a mid-run cycle on an ALEWIFE machine, snapshotted, restored,
// and both copies run to completion with a bit-identity cross-check.
type CheckpointRow struct {
	Benchmark  string `json:"benchmark"`
	Nodes      int    `json:"nodes"`
	Cycle      uint64 `json:"cycle"` // cycle the image captures
	ImageBytes int    `json:"image_bytes"`
	// SnapshotMS is the mean serialize latency over several snapshots of
	// the same quiescent machine; RestoreMS is one full image-to-machine
	// reconstruction (parse, rebuild, reinstall resident pages).
	SnapshotMS float64 `json:"snapshot_ms"`
	RestoreMS  float64 `json:"restore_ms"`
	// Identical asserts the donor and the restored machine agreed on
	// final cycles, result, and every node's full statistics.
	Identical bool `json:"identical"`
}

// CheckpointSweep measures CheckpointRows for one benchmark across
// machine sizes: the cost of writing a restorable image mid-run (the
// -checkpoint-every price) and the proof that restoring it loses
// nothing.
func CheckpointSweep(benchName string, sizes Sizes, nodeSizes []int) ([]CheckpointRow, error) {
	src := sizes.Source(benchName)
	var rows []CheckpointRow
	for _, nodes := range nodeSizes {
		row, err := checkpointOnce(src, benchName, nodes)
		if err != nil {
			return nil, fmt.Errorf("checkpoint sweep %dp: %w", nodes, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func checkpointOnce(src, benchName string, nodes int) (CheckpointRow, error) {
	m, err := sim.New(sim.Config{
		Nodes:       nodes,
		Profile:     rts.APRIL,
		Alewife:     &sim.AlewifeConfig{},
		MemoryBytes: 2 << 30,
	})
	if err != nil {
		return CheckpointRow{}, err
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		return CheckpointRow{}, err
	}
	if err := m.Load(prog); err != nil {
		return CheckpointRow{}, err
	}
	// Snapshot mid-run so the image carries real state: warm caches,
	// live threads, in-flight coherence traffic.
	const warm = 20000
	done, err := m.RunWindow(warm)
	if err != nil {
		return CheckpointRow{}, err
	}
	if done {
		return CheckpointRow{}, fmt.Errorf("%s finished before cycle %d; pick a longer benchmark", benchName, warm)
	}
	const iters = 3
	var img []byte
	start := time.Now()
	for i := 0; i < iters; i++ {
		if img, err = m.Snapshot(); err != nil {
			return CheckpointRow{}, err
		}
	}
	snapMS := time.Since(start).Seconds() * 1e3 / iters
	row := CheckpointRow{
		Benchmark:  benchName,
		Nodes:      nodes,
		Cycle:      m.Now(),
		ImageBytes: len(img),
		SnapshotMS: snapMS,
	}
	start = time.Now()
	twin, err := sim.Restore(img, sim.RestoreOverrides{})
	if err != nil {
		return CheckpointRow{}, err
	}
	row.RestoreMS = time.Since(start).Seconds() * 1e3
	donorRes, err := m.Run()
	if err != nil {
		return CheckpointRow{}, err
	}
	twinRes, err := twin.Run()
	if err != nil {
		return CheckpointRow{}, err
	}
	row.Identical = donorRes.Cycles == twinRes.Cycles && donorRes.Formatted == twinRes.Formatted
	for i := range m.Nodes {
		if !reflect.DeepEqual(m.Nodes[i].Proc.Stats, twin.Nodes[i].Proc.Stats) {
			row.Identical = false
			break
		}
	}
	return row, nil
}

// ShardSweep measures ShardRows for one benchmark across machine sizes
// and shard counts. Every row is cross-checked bit-identical (cycles,
// result, per-node statistics) against the sequential run of the same
// machine size.
func ShardSweep(benchName string, sizes Sizes, nodeSizes, shardCounts []int) ([]ShardRow, error) {
	src := sizes.Source(benchName)
	var rows []ShardRow
	for _, nodes := range nodeSizes {
		var base runOut
		for _, shards := range shardCounts {
			// A quarter of simulated memory is the stack arena; eager
			// task trees on hundreds of nodes need thousands of 64 KB
			// stacks, so give large machines a 2 GB address space.
			out, err := alewifeOnce(src, nodes, alewifeOpts{shards: shards, memBytes: 2 << 30})
			if err != nil {
				return nil, fmt.Errorf("shard sweep %dp/%dshards: %w", nodes, shards, err)
			}
			row := shardRow(benchName, nodes, shards, 0, out)
			if shards <= 1 {
				base = out
				row.Speedup, row.Identical = 1, true
			} else {
				row.Speedup, row.Identical = compareShardRuns(out, base)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// shardRow packages one sweep cell from a finished run.
func shardRow(benchName string, nodes, shards int, horizon uint64, out runOut) ShardRow {
	row := ShardRow{
		Benchmark:     benchName,
		Nodes:         nodes,
		Shards:        shards,
		Horizon:       horizon,
		Cycles:        out.cycles,
		Result:        out.result,
		Perf:          out.perf,
		CrossMessages: out.cross,
	}
	if so := out.stats.Shard; so != nil {
		row.BarrierWaitFraction = so.BarrierWaitFraction
		row.FallbackPct = so.FallbackPct
		row.BarriersPer1k = so.BarriersPer1k
	}
	if eo := out.stats.Epoch; eo != nil {
		row.EpochCyclesPct = eo.EpochCyclesPct
	}
	return row
}

// compareShardRuns cross-checks a sweep cell against its baseline run.
func compareShardRuns(out, base runOut) (speedup float64, identical bool) {
	identical = out.cycles == base.cycles && out.result == base.result &&
		reflect.DeepEqual(out.stats.PerNode, base.stats.PerNode)
	if out.perf.WallSeconds > 0 {
		speedup = base.perf.WallSeconds / out.perf.WallSeconds
	}
	return speedup, identical
}

// HorizonSweep measures the epoch-window cap's effect on a sharded
// machine: the same benchmark and shard count at several -horizon
// values (1 degenerates to per-cycle barriers, 0 is unbounded), each
// cross-checked bit-identical against the k=1 row. The interesting
// columns are BarriersPer1k and EpochCyclesPct: raising the cap must
// monotonically shift cycles from the phased path into windows without
// moving a single simulated result.
func HorizonSweep(benchName string, sizes Sizes, nodes, shards int, horizons []uint64) ([]ShardRow, error) {
	src := sizes.Source(benchName)
	var rows []ShardRow
	var base runOut
	for i, k := range horizons {
		out, err := alewifeOnce(src, nodes, alewifeOpts{shards: shards, memBytes: 2 << 30, horizon: k})
		if err != nil {
			return nil, fmt.Errorf("horizon sweep %dp/%dshards/k=%d: %w", nodes, shards, k, err)
		}
		row := shardRow(benchName, nodes, shards, k, out)
		if i == 0 {
			base = out
			row.Speedup, row.Identical = 1, true
		} else {
			row.Speedup, row.Identical = compareShardRuns(out, base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// alewifeOpts selects the machine variant alewifeOnce measures.
type alewifeOpts struct {
	// reference selects the pre-overhaul cost profile: reference
	// stepping loop, opcode-switch interpreter, eagerly materialized
	// memory.
	reference bool
	// shards > 1 runs the sharded loop (mutually exclusive with
	// reference, which forces one shard).
	shards int
	// memBytes sizes simulated memory (0 = the 256 MB default); memory
	// is demand-paged, so a large address space costs only what the run
	// touches.
	memBytes uint32
	// disableEpoch keeps the compiled tier but turns multi-node epoch
	// windows off (sim.Config.DisableEpoch) — the PR 8 configuration.
	disableEpoch bool
	// horizon caps epoch windows at this many cycles (0 = unbounded).
	horizon uint64
}

// alewifeOnce runs one benchmark on a fresh full-memory-system machine.
func alewifeOnce(src string, nodes int, o alewifeOpts) (runOut, error) {
	// The GC bracket matches the wall-clock bracket: it covers machine
	// construction too, so the baseline pays for eager materialization
	// where the optimized side demand-pages only the touched footprint.
	gcBefore := proc.TakeGCSnapshot()
	start := time.Now()
	m, err := sim.New(sim.Config{
		Nodes:              nodes,
		Profile:            rts.APRIL,
		Alewife:            &sim.AlewifeConfig{},
		DisableFastForward: o.reference,
		DisablePredecode:   o.reference,
		Shards:             o.shards,
		MemoryBytes:        o.memBytes,
		DisableEpoch:       o.disableEpoch,
		Horizon:            o.horizon,
	})
	if err != nil {
		return runOut{}, err
	}
	if o.reference {
		m.Mem.Materialize()
	}
	prog, err := mult.Compile(src, mult.Mode{HardwareFutures: true}, m.StaticHeap())
	if err != nil {
		return runOut{}, err
	}
	if err := m.Load(prog); err != nil {
		return runOut{}, err
	}
	res, err := m.Run()
	if err != nil {
		return runOut{}, err
	}
	gcAfter := proc.TakeGCSnapshot()
	out := runOut{
		cycles: res.Cycles,
		result: res.Formatted,
		perf:   proc.NewPerf(res.Cycles, m.TotalStats().Instructions, time.Since(start)),
		cross:  m.CrossShardMessages(),
	}
	out.perf.SetGC(gcBefore, gcAfter)
	for _, n := range m.Nodes {
		out.stats.PerNode = append(out.stats.PerNode, n.Proc.Stats)
	}
	out.stats.CrossShardMessages = out.cross
	out.stats.Shard = shardOverhead(m)
	out.stats.Epoch = epochOverhead(m)
	return out, nil
}

// AlewifePerf measures one AlewifeRow: the named benchmark on an
// ALEWIFE machine of the given size, reference vs compiled-without-
// epochs vs fully optimized.
func AlewifePerf(benchName string, sizes Sizes, nodes int) (AlewifeRow, error) {
	src := sizes.Source(benchName)
	base, err := alewifeOnce(src, nodes, alewifeOpts{reference: true})
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife reference run: %w", err)
	}
	comp, err := alewifeOnce(src, nodes, alewifeOpts{disableEpoch: true})
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife compiled-no-epoch run: %w", err)
	}
	opt, err := alewifeOnce(src, nodes, alewifeOpts{})
	if err != nil {
		return AlewifeRow{}, fmt.Errorf("alewife optimized run: %w", err)
	}
	same := func(a, b runOut) bool {
		return a.cycles == b.cycles && a.result == b.result &&
			reflect.DeepEqual(a.stats.PerNode, b.stats.PerNode)
	}
	row := AlewifeRow{
		Benchmark: benchName,
		Nodes:     nodes,
		Cycles:    opt.cycles,
		Result:    opt.result,
		Baseline:  base.perf,
		Compiled:  comp.perf,
		Optimized: opt.perf,
		Epoch:     opt.stats.Epoch,
		Identical: same(base, opt) && same(comp, opt),
	}
	if row.Optimized.WallSeconds > 0 {
		row.Speedup = row.Baseline.WallSeconds / row.Optimized.WallSeconds
		row.EpochSpeedup = row.Compiled.WallSeconds / row.Optimized.WallSeconds
	}
	return row, nil
}

// Table3Perf measures PerfReport for the given grid configuration
// (cfg.Naive, cfg.Workers and cfg.Perf are overridden per side).
func Table3Perf(cfg Table3Config, sizesName string) (PerfReport, error) {
	rep := PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Sizes:       sizesName,
	}

	base := cfg
	base.Naive, base.Workers, base.Perf = true, 1, &rep.Baseline
	runtime.GC()
	gcBefore := proc.TakeGCSnapshot()
	baseRows, err := Table3(base)
	if err != nil {
		return PerfReport{}, fmt.Errorf("baseline grid: %w", err)
	}
	rep.Baseline.SetGC(gcBefore, proc.TakeGCSnapshot())

	pre := cfg
	pre.Naive, pre.NoCompile, pre.Perf = false, true, &rep.Predecode
	// Collect before each timed grid so no side inherits the previous
	// grid's heap target: the naive grid's allocation churn otherwise
	// leaves the pacer with a bloated goal that flatters whichever
	// side runs next (observed as a 2x GC-count skew between the
	// predecode and compiled grids despite identical alloc rates).
	runtime.GC()
	gcBefore = proc.TakeGCSnapshot()
	preRows, err := Table3(pre)
	if err != nil {
		return PerfReport{}, fmt.Errorf("predecode grid: %w", err)
	}
	rep.Predecode.SetGC(gcBefore, proc.TakeGCSnapshot())

	opt := cfg
	opt.Naive, opt.NoCompile, opt.Perf = false, false, &rep.Optimized
	var occ harness.Occupancy
	opt.Occupancy = &occ
	rep.Workers = harness.Workers(opt.Workers)
	rep.CompileThreshold = opt.CompileThreshold
	if rep.CompileThreshold == 0 {
		rep.CompileThreshold = isa.DefaultCompileThreshold
	}
	runtime.GC()
	gcBefore = proc.TakeGCSnapshot()
	optRows, err := Table3(opt)
	if err != nil {
		return PerfReport{}, fmt.Errorf("optimized grid: %w", err)
	}
	rep.Optimized.SetGC(gcBefore, proc.TakeGCSnapshot())
	rep.WorkerOccupancy = &occ

	rep.RowsIdentical = reflect.DeepEqual(baseRows, optRows) && reflect.DeepEqual(preRows, optRows)
	if rep.Optimized.WallSeconds > 0 {
		rep.Speedup = rep.Baseline.WallSeconds / rep.Optimized.WallSeconds
		rep.CompiledVsPredecode = rep.Predecode.WallSeconds / rep.Optimized.WallSeconds
	}

	// ALEWIFE-mode row: a 64-node full-memory-system run, the regime
	// the Table 3 grid (perfect memory, <= 16 nodes) never exercises.
	// queens is the longest-running benchmark that fits the default
	// stack arena at this node count (fib's eager task tree does not).
	alw, err := AlewifePerf("queens", cfg.Sizes, 64)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Alewife = &alw

	// Shard-scaling sweep: large tori (the sizes Section 8's model
	// targets and the Table 3 grid never reaches), each run at several
	// shard counts with a bit-identity cross-check.
	rep.ShardScaling, err = ShardSweep("queens", cfg.Sizes, []int{256, 512, 1024}, []int{1, 2, 4, 8})
	if err != nil {
		return PerfReport{}, err
	}

	// Horizon sweep: the epoch-window cap on the 64-node 2-shard
	// machine, from the degenerate per-cycle k=1 up to the slab width
	// (rows of the torus per shard — the depth of the contiguous slab
	// each shard owns).
	rep.HorizonSweep, err = HorizonSweep("queens", cfg.Sizes, 64, 2, horizonCaps(64, 2))
	if err != nil {
		return PerfReport{}, err
	}

	// Checkpoint overhead: what -checkpoint-every costs per image at
	// several machine sizes, and proof the image restores losslessly.
	rep.CheckpointOverhead, err = CheckpointSweep("queens", cfg.Sizes, []int{16, 64, 256})
	if err != nil {
		return PerfReport{}, err
	}
	return rep, nil
}

// horizonCaps is the sweep schedule {1, 2, 4, slab-width}: slab width
// is the number of torus rows per shard — the depth of the contiguous
// slab a shard owns, and the natural upper bound a decoupled-fabric
// lookahead could justify (network.PartitionLookahead).
func horizonCaps(nodes, shards int) []uint64 {
	geo := network.FitGeometry(nodes)
	rows := geo.Nodes() / geo.Radix
	slab := uint64(rows / shards)
	caps := []uint64{1, 2, 4}
	if slab > 4 {
		caps = append(caps, slab)
	}
	return caps
}

// ShardsIdentical reports whether every shard-scaling row reproduced
// its sequential baseline bit-identically.
func (r PerfReport) ShardsIdentical() bool {
	for _, row := range r.ShardScaling {
		if !row.Identical {
			return false
		}
	}
	for _, row := range r.HorizonSweep {
		if !row.Identical {
			return false
		}
	}
	return true
}

// JSON renders the report for BENCH_simperf.json.
func (r PerfReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // the report is plain data; marshal cannot fail
	}
	return append(b, '\n')
}

// Summary is the one-line human rendering.
func (r PerfReport) Summary() string {
	ident := "IDENTICAL"
	if !r.RowsIdentical {
		ident = "MISMATCH"
	}
	s := fmt.Sprintf("baseline %.2fs -> predecode %.2fs -> compiled %.2fs (%.2fx overall, %.2fx from compile @ threshold %d, %d workers, results %s)",
		r.Baseline.WallSeconds, r.Predecode.WallSeconds, r.Optimized.WallSeconds,
		r.Speedup, r.CompiledVsPredecode, r.CompileThreshold, r.Workers, ident)
	s += fmt.Sprintf("\n  gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle, %d -> %d GCs",
		r.Baseline.AllocsPerMcycle, r.Optimized.AllocsPerMcycle,
		r.Baseline.BytesPerMcycle/1024, r.Optimized.BytesPerMcycle/1024,
		r.Baseline.HostNumGC, r.Optimized.HostNumGC)
	if a := r.Alewife; a != nil {
		aident := "IDENTICAL"
		if !a.Identical {
			aident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  alewife %s %dp: %.2fs -> %.2fs -> %.2fs (%.2fx overall, %.2fx from epochs, results %s)",
			a.Benchmark, a.Nodes, a.Baseline.WallSeconds, a.Compiled.WallSeconds,
			a.Optimized.WallSeconds, a.Speedup, a.EpochSpeedup, aident)
		if e := a.Epoch; e != nil {
			s += fmt.Sprintf("\n  alewife epochs: %d windows, %.1f%% of cycles inside, %d fallbacks",
				e.Windows, e.EpochCyclesPct, e.Fallbacks)
		}
		s += fmt.Sprintf("\n  alewife gc: %.0f -> %.0f allocs/Mcycle, %.0f -> %.0f KB/Mcycle",
			a.Baseline.AllocsPerMcycle, a.Optimized.AllocsPerMcycle,
			a.Baseline.BytesPerMcycle/1024, a.Optimized.BytesPerMcycle/1024)
	}
	for _, row := range r.ShardScaling {
		sident := "IDENTICAL"
		if !row.Identical {
			sident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  shards %s %4dp x%d: %6.2fs (%.2fx vs 1 shard, %d cross msgs, barrier %4.1f%%, fallback %4.1f%%, %.0f barriers/1k, epoch %4.1f%%, results %s)",
			row.Benchmark, row.Nodes, row.Shards, row.Perf.WallSeconds, row.Speedup,
			row.CrossMessages, 100*row.BarrierWaitFraction, row.FallbackPct,
			row.BarriersPer1k, row.EpochCyclesPct, sident)
	}
	for _, row := range r.HorizonSweep {
		sident := "IDENTICAL"
		if !row.Identical {
			sident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  horizon %s %4dp x%d k=%-3d %6.2fs (%.0f barriers/1k, epoch %4.1f%%, results %s)",
			row.Benchmark, row.Nodes, row.Shards, row.Horizon, row.Perf.WallSeconds,
			row.BarriersPer1k, row.EpochCyclesPct, sident)
	}
	for _, row := range r.CheckpointOverhead {
		cident := "IDENTICAL"
		if !row.Identical {
			cident = "MISMATCH"
		}
		s += fmt.Sprintf("\n  checkpoint %s %4dp @%d: %5.1f MB image, snapshot %6.2f ms, restore %6.2f ms, results %s",
			row.Benchmark, row.Nodes, row.Cycle, float64(row.ImageBytes)/(1<<20),
			row.SnapshotMS, row.RestoreMS, cident)
	}
	if o := r.WorkerOccupancy; o != nil {
		s += fmt.Sprintf("\n  harness: %d workers, %.0f%% busy over %.2fs",
			o.Workers, 100*o.BusyFraction(), float64(o.WallNS)/1e9)
	}
	return s
}
