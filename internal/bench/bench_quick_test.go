package bench

import (
	"testing"

	"april/internal/mult"
)

// TestBenchmarkProgramsCorrect cross-checks each benchmark program at
// test sizes: interpreter result == compiled result in every Table 3
// system configuration.
func TestBenchmarkProgramsCorrect(t *testing.T) {
	want := map[string]string{
		"fib":    "144",
		"factor": "",  // pinned by the interpreter below
		"queens": "4", // 6-queens has 4 solutions
		"speech": "",
	}
	quick := &Table3Config{Sizes: TestSizes}
	for _, name := range Names {
		src := TestSizes.Source(name)
		iv, err := mult.NewInterp(nil, 0).RunSource(src)
		if err != nil {
			t.Fatalf("%s: interpreter: %v", name, err)
		}
		ref := mult.FormatValue(iv)
		if w := want[name]; w != "" && ref != w {
			t.Errorf("%s: interpreter says %s, want %s", name, ref, w)
		}
		for _, su := range setups() {
			// Sequential flavors.
			for _, mode := range []mult.Mode{
				{HardwareFutures: true, Sequential: true},
				{HardwareFutures: su.mode.HardwareFutures, Sequential: true},
			} {
				out, err := runOnce(src, mode, su.prof, false, 1, quick)
				if err != nil {
					t.Fatalf("%s/%s seq: %v", name, su.sys, err)
				}
				if out.result != ref {
					t.Errorf("%s/%s seq: got %s, want %s", name, su.sys, out.result, ref)
				}
			}
			// Parallel at a couple of machine sizes.
			for _, p := range []int{1, 4} {
				out, err := runOnce(src, su.mode, su.prof, su.lazy, p, quick)
				if err != nil {
					t.Fatalf("%s/%s %dp: %v", name, su.sys, p, err)
				}
				if out.result != ref {
					t.Errorf("%s/%s %dp: got %s, want %s", name, su.sys, p, out.result, ref)
				}
			}
		}
	}
}

// TestTable3SmallShape runs the full harness at test sizes and checks
// the paper's qualitative claims hold:
//   - Encore Mul-T seq overhead is well above APRIL's (which is ~1.0);
//   - eager futures cost far more than lazy on fine-grain fib;
//   - parallel runs speed up with processors.
func TestTable3SmallShape(t *testing.T) {
	cfg := Table3Config{
		Sizes:       TestSizes,
		AprilProcs:  []int{1, 4},
		EncoreProcs: []int{1},
	}
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Program+"/"+string(r.System)] = r
	}

	for _, name := range Names {
		enc := byKey[name+"/Encore"]
		apr := byKey[name+"/APRIL"]
		lazy := byKey[name+"/Apr-lazy"]

		if apr.MulTSeq > 1.01 {
			t.Errorf("%s: APRIL Mul-T seq overhead %.3f, want ~1.0 (hardware detection is free)", name, apr.MulTSeq)
		}
		if enc.MulTSeq < 1.2 {
			t.Errorf("%s: Encore Mul-T seq overhead %.3f, want well above 1 (software checks)", name, enc.MulTSeq)
		}
		if lazy.Par[1] >= apr.Par[1] {
			t.Errorf("%s: lazy 1p %.2f should beat eager 1p %.2f", name, lazy.Par[1], apr.Par[1])
		}
		if apr.Par[4] >= apr.Par[1] {
			t.Errorf("%s: APRIL does not speed up: 1p %.2f -> 4p %.2f", name, apr.Par[1], apr.Par[4])
		}
		if lazy.Par[4] >= lazy.Par[1] {
			t.Errorf("%s: lazy does not speed up: 1p %.2f -> 4p %.2f", name, lazy.Par[1], lazy.Par[4])
		}
	}

	// fib specifically: eager overhead should dwarf lazy overhead
	// (paper: 14x vs 1.5x).
	fibE := byKey["fib/APRIL"].Par[1]
	fibL := byKey["fib/Apr-lazy"].Par[1]
	if fibE < 3*fibL {
		t.Errorf("fib: eager %.2f vs lazy %.2f — eager should be several times worse", fibE, fibL)
	}
	t.Logf("\n%s", FormatTable(rows, []int{1, 4}))
}
