package bench

import "testing"

// TestFramesSweepShape is experiment E9 at test scale: on the full
// memory system, utilization and run time improve as task frames are
// added, with diminishing returns — the architecture's core claim.
func TestFramesSweepShape(t *testing.T) {
	cfg := FramesSweepConfig{
		Nodes:  4,
		Frames: []int{1, 2, 4},
		FibN:   12,
	}
	pts, err := FramesSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	if pts[1].Cycles >= pts[0].Cycles {
		t.Errorf("2 frames (%d cycles) should beat 1 frame (%d)", pts[1].Cycles, pts[0].Cycles)
	}
	if pts[1].Utilization <= pts[0].Utilization {
		t.Errorf("utilization did not improve with a second frame: %.3f -> %.3f",
			pts[0].Utilization, pts[1].Utilization)
	}
	// Diminishing returns: the 2->4 gain is smaller than the 1->2 gain.
	g12 := pts[1].Utilization - pts[0].Utilization
	g24 := pts[2].Utilization - pts[1].Utilization
	if g24 > g12 {
		t.Errorf("marginal benefit grew: +%.3f then +%.3f", g12, g24)
	}
	if s := FormatFramesSweep(pts); len(s) == 0 {
		t.Error("empty rendering")
	}
}
