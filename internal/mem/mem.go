// Package mem implements APRIL's word-addressed memory. Every 32-bit
// data word carries an additional synchronization bit — the full/empty
// bit of Section 3.3 of the paper — stored here as a parallel bitmap.
// Full/empty bits are the substrate for fine-grain word-level
// synchronization: loads may trap on empty locations, stores on full
// ones, and the bits double as cheap locks for the run-time system
// (e.g. for lazy task creation markers).
package mem

import (
	"errors"
	"fmt"

	"april/internal/isa"
)

// Errors reported by memory accesses. Unaligned accesses normally never
// reach memory — the processor traps on them first (they signal future
// pointers used as addresses) — so these indicate simulator bugs or
// hand-written test programs.
var (
	ErrUnaligned  = errors.New("mem: unaligned word access")
	ErrOutOfRange = errors.New("mem: address out of range")
)

// WordBytes is the size of a machine word in bytes.
const WordBytes = 4

// Memory is a word-addressed physical memory with one full/empty bit
// per word. In ALEWIFE the physical memory is distributed among the
// nodes; the Distribution type maps addresses to their home nodes while
// the backing store stays flat (the simulator equivalent of the
// globally shared address space the controllers synthesize).
//
// A freshly created memory is all zeros with every full/empty bit set
// to full, matching the paper's convention that ordinary (non-
// synchronizing) data lives in full locations and only I-structure
// style slots start out empty.
//
// The store is demand-paged: a run typically touches a small fraction
// of the (default 256 MB) simulated memory, and materializing only the
// touched pages keeps machine construction O(pages touched) instead of
// O(memory size) — zeroing the flat array dominated whole-experiment
// profiles before this. A nil data page reads as zero; a nil
// full/empty page reads as all-full. Observable behavior is identical
// to the flat layout.
type Memory struct {
	pages []dataPage // indexed by word index >> pageShift; nil = untouched
	fe    []fePage   // same geometry; nil = all full
	size  uint32     // in bytes
}

type (
	dataPage = []isa.Word
	fePage   = []uint64 // 1 bit per word; 1 = full
)

const (
	// pageShift sizes a page at 1<<pageShift words (256 KB of simulated
	// memory): small enough that sparse runs stay sparse, large enough
	// that page-table indirection is negligible.
	pageShift = 16
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// New creates a memory of the given size in bytes (rounded up to a
// multiple of 64 words). All words are zero and full.
func New(size uint32) *Memory {
	nw := (int(size/WordBytes) + 63) &^ 63
	np := (nw + pageWords - 1) / pageWords
	return &Memory{
		pages: make([]dataPage, np),
		fe:    make([]fePage, np),
		size:  uint32(nw * WordBytes),
	}
}

// page materializes the data page holding word index idx.
func (m *Memory) page(idx uint32) dataPage {
	p := m.pages[idx>>pageShift]
	if p == nil {
		p = make(dataPage, pageWords)
		m.pages[idx>>pageShift] = p
	}
	return p
}

// fepage materializes the full/empty page holding word index idx.
func (m *Memory) fepage(idx uint32) fePage {
	p := m.fe[idx>>pageShift]
	if p == nil {
		p = make(fePage, pageWords/64)
		for i := range p {
			p[i] = ^uint64(0) // all full
		}
		m.fe[idx>>pageShift] = p
	}
	return p
}

// Materialize allocates every page up front, restoring the flat-array
// layout (and its O(memory size) construction cost) that demand paging
// replaced. Observable behavior is unchanged; it exists so throughput
// baselines can reproduce the pre-paging simulator's cost profile.
func (m *Memory) Materialize() {
	for i := range m.pages {
		m.page(uint32(i) << pageShift)
		m.fepage(uint32(i) << pageShift)
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// InRange reports whether a word access at addr would pass the bounds
// check (alignment aside). The sharded run loop's classifier uses it to
// route out-of-range accesses — which must abort the run with the exact
// reference error — to the sequential path.
func (m *Memory) InRange(addr uint32) bool {
	return addr/WordBytes < m.size/WordBytes
}

// PageResident reports whether the data page holding addr is already
// materialized (false for out-of-range addresses). A store to a
// non-resident page allocates the page as a side effect; the sharded
// run loop only executes stores in its parallel phase when the page is
// resident, so page materialization — a write to the page table itself
// — always happens on the coordinating goroutine.
func (m *Memory) PageResident(addr uint32) bool {
	idx := addr / WordBytes
	if idx >= m.size/WordBytes {
		return false
	}
	return m.pages[idx>>pageShift] != nil
}

func (m *Memory) check(addr uint32) (uint32, error) {
	if addr%WordBytes != 0 {
		return 0, fmt.Errorf("%w: %#x", ErrUnaligned, addr)
	}
	idx := addr / WordBytes
	if idx >= m.size/WordBytes {
		return 0, fmt.Errorf("%w: %#x (size %#x)", ErrOutOfRange, addr, m.size)
	}
	return idx, nil
}

// LoadWord reads the word at byte address addr.
func (m *Memory) LoadWord(addr uint32) (isa.Word, error) {
	idx, err := m.check(addr)
	if err != nil {
		return 0, err
	}
	if p := m.pages[idx>>pageShift]; p != nil {
		return p[idx&pageMask], nil
	}
	return 0, nil
}

// StoreWord writes the word at byte address addr.
func (m *Memory) StoreWord(addr uint32, w isa.Word) error {
	idx, err := m.check(addr)
	if err != nil {
		return err
	}
	m.page(idx)[idx&pageMask] = w
	return nil
}

// FE returns the full/empty bit of the word at addr (true = full).
func (m *Memory) FE(addr uint32) (bool, error) {
	idx, err := m.check(addr)
	if err != nil {
		return false, err
	}
	if p := m.fe[idx>>pageShift]; p != nil {
		return p[(idx&pageMask)/64]&(1<<(idx%64)) != 0, nil
	}
	return true, nil
}

// SetFE sets the full/empty bit of the word at addr.
func (m *Memory) SetFE(addr uint32, full bool) error {
	idx, err := m.check(addr)
	if err != nil {
		return err
	}
	bit := uint64(1) << (idx % 64)
	if full {
		// Avoid materializing a page to set a bit that is already set.
		if p := m.fe[idx>>pageShift]; p != nil {
			p[(idx&pageMask)/64] |= bit
		}
	} else {
		m.fepage(idx)[(idx&pageMask)/64] &^= bit
	}
	return nil
}

// Access performs a combined load-or-store with full/empty semantics in
// one step, returning the prior value and prior full/empty state. It is
// the primitive the cache controller and the perfect-memory port build
// the Table 2 operations from: the caller decides whether the prior
// state constitutes a synchronization fault before committing.
//
// For a load (store == false) the value argument is ignored.
func (m *Memory) Access(addr uint32, store bool, value isa.Word) (prev isa.Word, full bool, err error) {
	idx, err := m.check(addr)
	if err != nil {
		return 0, false, err
	}
	full = true
	if p := m.fe[idx>>pageShift]; p != nil {
		full = p[(idx&pageMask)/64]&(1<<(idx%64)) != 0
	}
	if p := m.pages[idx>>pageShift]; p != nil {
		prev = p[idx&pageMask]
		if store {
			p[idx&pageMask] = value
		}
	} else if store {
		m.page(idx)[idx&pageMask] = value
	}
	return prev, full, nil
}

// AccessPlain is Access for a pre-validated address (aligned and in
// range — callers check with InRange) with no full/empty side effects:
// the fused execution tier's fast path for plain-flavored loads and
// stores on the perfect-memory port. idx is the word index
// (addr / WordBytes). Behavior matches FE followed by Access exactly:
// a nil data page reads zero, a nil full/empty page reads full, and a
// store materializes its page.
func (m *Memory) AccessPlain(idx uint32, store bool, value isa.Word) (prev isa.Word, full bool) {
	pg := idx >> pageShift
	full = true
	if p := m.fe[pg]; p != nil {
		full = p[(idx&pageMask)/64]&(1<<(idx%64)) != 0
	}
	if p := m.pages[pg]; p != nil {
		prev = p[idx&pageMask]
		if store {
			p[idx&pageMask] = value
		}
	} else if store {
		m.page(idx)[idx&pageMask] = value
	}
	return prev, full
}

// Fault is the panic value raised by the Must* accessors: a runtime
// access to simulator-internal state went outside the simulated arena.
// Carrying the operation, address, and memory size lets the machine's
// run loop recover it into a structured crash report instead of a
// bare stack trace.
type Fault struct {
	Op   string // "load", "store", "fe", "set-fe"
	Addr uint32
	Size uint32 // simulated memory size
	Err  error  // the underlying ErrUnaligned / ErrOutOfRange
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s at %#x (memory size %#x): %v", f.Op, f.Addr, f.Size, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

func (m *Memory) fault(op string, addr uint32, err error) {
	panic(&Fault{Op: op, Addr: addr, Size: m.size, Err: err})
}

// MustLoad and MustStore panic with a *Fault on error; they are for
// simulator-internal structures whose addresses are known valid
// (run-time system state).
func (m *Memory) MustLoad(addr uint32) isa.Word {
	w, err := m.LoadWord(addr)
	if err != nil {
		m.fault("load", addr, err)
	}
	return w
}

func (m *Memory) MustStore(addr uint32, w isa.Word) {
	if err := m.StoreWord(addr, w); err != nil {
		m.fault("store", addr, err)
	}
}

// MustFE and MustSetFE are the panicking full/empty accessors.
func (m *Memory) MustFE(addr uint32) bool {
	b, err := m.FE(addr)
	if err != nil {
		m.fault("fe", addr, err)
	}
	return b
}

func (m *Memory) MustSetFE(addr uint32, full bool) {
	if err := m.SetFE(addr, full); err != nil {
		m.fault("set-fe", addr, err)
	}
}
